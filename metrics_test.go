package multiclock

import (
	"bytes"
	"testing"

	"multiclock/internal/mem"
	"multiclock/internal/metrics"
	"multiclock/internal/sim"
)

// ycsbA drives workload A on a small oversubscribed system, optionally with
// metrics collection, and returns the collector (nil when disabled) and the
// stopped system.
func ycsbA(seed uint64, traceEvents int, enable bool) (*Metrics, *System) {
	sys := NewSystem(Config{DRAMPages: 256, PMPages: 1024, ScanInterval: 5 * Millisecond, Seed: seed})
	var col *Metrics
	if enable {
		col = sys.EnableMetrics(traceEvents)
	}
	store := sys.NewKVStore(3000)
	client := sys.NewYCSB(store, 3000)
	client.Load()
	client.Run(WorkloadA, 50000)
	sys.Stop()
	return col, sys
}

// TestMetricsExportGolden is the determinism contract: two same-seed
// instrumented runs must export byte-identical JSON, the document must
// validate, and the two headline histograms must hold samples.
func TestMetricsExportGolden(t *testing.T) {
	col1, _ := ycsbA(7, 128, true)
	col2, _ := ycsbA(7, 128, true)
	b1, err := ExportMetricsJSON(col1.Run("ycsb-a"))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ExportMetricsJSON(col2.Run("ycsb-a"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same-seed metrics exports differ")
	}
	ex, err := metrics.ReadExport(b1)
	if err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
	hists := map[string]metrics.HistExport{}
	for _, h := range ex.Runs[0].Histograms {
		hists[h.Name] = h
	}
	for _, name := range []string{metrics.HistMigrationLatency, metrics.HistDaemonPassWork} {
		if hists[name].N == 0 {
			t.Fatalf("histogram %q recorded no samples", name)
		}
	}
	if tr := ex.Runs[0].Trace; tr == nil || len(tr.Events) == 0 {
		t.Fatal("event trace is empty")
	}
}

// TestMetricsDisabledIsNoOp: enabling metrics must not move the simulation —
// virtual time and every vmstat counter match a metrics-free run exactly.
func TestMetricsDisabledIsNoOp(t *testing.T) {
	_, plain := ycsbA(3, 0, false)
	_, inst := ycsbA(3, 256, true)
	if plain.Elapsed() != inst.Elapsed() {
		t.Fatalf("metrics changed virtual time: %v vs %v", plain.Elapsed(), inst.Elapsed())
	}
	var names []string
	var want []int64
	plain.Counters().Each(func(name string, v int64) {
		names = append(names, name)
		want = append(want, v)
	})
	i := 0
	inst.Counters().Each(func(name string, v int64) {
		if name != names[i] || v != want[i] {
			t.Fatalf("counter %s: %d with metrics vs %d without", name, v, want[i])
		}
		i++
	})
}

// TestMultipleObservers attaches a PromotionTracker and a metrics collector
// simultaneously; both must see the full event stream.
func TestMultipleObservers(t *testing.T) {
	sys := NewSystem(Config{DRAMPages: 256, PMPages: 1024, ScanInterval: 5 * Millisecond, Seed: 11})
	defer sys.Stop()
	col := sys.EnableMetrics(0)
	tracker := sys.NewPromotionTracker(100 * Millisecond)
	sys.Attach(tracker)
	store := sys.NewKVStore(3000)
	client := sys.NewYCSB(store, 3000)
	client.Load()
	client.Run(WorkloadA, 50000)

	promos := sys.Counters().Promotions
	if promos == 0 {
		t.Fatal("no promotions on an oversubscribed multiclock system")
	}
	if got := tracker.TotalPromotions(); int64(got) != promos {
		t.Fatalf("tracker saw %d promotions, machine counted %d", got, promos)
	}
	if got := col.Registry().Counter("promotions").Value(); got != promos {
		t.Fatalf("collector counted %d promotions, machine counted %d", got, promos)
	}
	if col.Registry().Histogram(metrics.HistMigrationLatency).N() == 0 {
		t.Fatal("collector histograms empty while tracker is attached")
	}
}

// faultCounter is a minimal observer for the detach test.
type faultCounter struct{ faults int }

func (f *faultCounter) OnAccess(pg *mem.Page, write bool, now sim.Time)         {}
func (f *faultCounter) OnMigrate(pg *mem.Page, from, to mem.NodeID, n sim.Time) {}
func (f *faultCounter) OnFault(pg *mem.Page, hint bool, now sim.Time)           { f.faults++ }

func TestAttachDetach(t *testing.T) {
	sys := NewSystem(Config{DRAMPages: 256, PMPages: 1024, Seed: 5})
	defer sys.Stop()
	obs := &faultCounter{}
	detach := sys.Attach(obs)

	store := sys.NewKVStore(1000)
	client := sys.NewYCSB(store, 1000)
	client.Load()
	if obs.faults == 0 {
		t.Fatal("attached observer saw no faults during load")
	}
	seen := obs.faults
	detach()
	detach() // second detach is a harmless no-op
	client.Run(WorkloadA, 5000)
	if obs.faults != seen {
		t.Fatal("detached observer still receives events")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range append(Policies(), ExtensionPolicies()...) {
		got, err := ParsePolicy(string(p))
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %q, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("clockwork"); err == nil {
		t.Fatal("unknown policy parsed")
	}
}

// TestScanIntervalDefaultShared: a zero ScanInterval and an explicit 1 s
// must build identical systems — the defaulting rule lives in one place.
func TestScanIntervalDefaultShared(t *testing.T) {
	run := func(interval Duration) int64 {
		sys := NewSystem(Config{DRAMPages: 256, PMPages: 1024, Seed: 9, ScanInterval: interval})
		defer sys.Stop()
		store := sys.NewKVStore(2000)
		client := sys.NewYCSB(store, 2000)
		client.Load()
		client.Run(WorkloadB, 20000)
		return int64(sys.Elapsed())
	}
	if a, b := run(0), run(1*Second); a != b {
		t.Fatalf("defaulted interval diverges from explicit 1s: %d vs %d", a, b)
	}
}
