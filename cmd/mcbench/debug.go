package main

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"time"
)

// Wall-clock progress counters exported on /debug/vars. These observe the
// host process only — the simulation itself is untouched, so enabling the
// endpoint cannot move a single virtual-time result.
var (
	expExperimentsDone   = expvar.NewInt("mcbench.experiments_done")
	expExperimentsFailed = expvar.NewInt("mcbench.experiments_failed")
	expStartUnixNano     = expvar.NewInt("mcbench.start_unix_nano")
)

// serveDebug starts the opt-in expvar/pprof endpoint on addr. Long full-scale
// batches are single-process and CPU-bound; this is the hook for profiling
// them from outside (go tool pprof http://addr/debug/pprof/profile) without
// instrumenting the run. Failure to bind is fatal: a user who asked for the
// endpoint should not silently profile nothing.
func serveDebug(addr string) {
	expStartUnixNano.Set(time.Now().UnixNano())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: -http %s: %v\n", addr, err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "mcbench: debug endpoint on http://%s/debug/pprof (expvar at /debug/vars)\n", ln.Addr())
	go func() {
		// expvar and pprof both register on http.DefaultServeMux.
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: debug endpoint: %v\n", err)
		}
	}()
}
