package main

import "expvar"

// Wall-clock progress counters exported on /debug/vars when -http enables
// the shared cliutil debug endpoint. These observe the host process only —
// the simulation itself is untouched, so enabling the endpoint cannot move
// a single virtual-time result.
var (
	expExperimentsDone   = expvar.NewInt("mcbench.experiments_done")
	expExperimentsFailed = expvar.NewInt("mcbench.experiments_failed")
)
