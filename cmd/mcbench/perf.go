package main

import (
	"fmt"
	"os"

	"multiclock/internal/bench"
)

// runPerfSuite executes the simulator perf suite (-bench-out), writes the
// JSON report, and optionally enforces a throughput floor against a
// checked-in baseline (-bench-compare). Returns the process exit code; a
// regression is a loud failure, never a silent pass.
func runPerfSuite(opt bench.Options, outPath, comparePath string, tolerance float64) int {
	rep := bench.RunPerf(opt)
	data, err := bench.MarshalPerf(rep)
	if err == nil {
		err = os.WriteFile(outPath, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: writing perf report: %v\n", err)
		return 1
	}
	fmt.Print(bench.FormatPerf(rep))
	fmt.Fprintf(os.Stderr, "perf: report written to %s\n", outPath)
	if comparePath == "" {
		return 0
	}
	baseData, err := os.ReadFile(comparePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: reading perf baseline: %v\n", err)
		return 1
	}
	base, err := bench.ParsePerf(baseData)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: perf baseline %s: %v\n", comparePath, err)
		return 1
	}
	if violations := bench.ComparePerf(rep, base, tolerance); len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "mcbench: PERF REGRESSION against baseline %s:\n", comparePath)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  - %s\n", v)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "perf: throughput within %.1fx of baseline %s\n", tolerance, comparePath)
	return 0
}
