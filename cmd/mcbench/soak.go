package main

import (
	"fmt"
	"os"

	"multiclock/internal/bench"
	"multiclock/internal/cliutil"
	"multiclock/internal/metrics"
)

// runSoak drives the resumable long-soak mode: one policy over the paper's
// workload sequence, stepped op by op, with optional checkpoints, divergence
// audit fingerprints and periodic invariant sweeps. A `-restore`d soak
// resumes where the snapshot left off and prints the report the straight run
// would have.
func runSoak(policy string, opt bench.Options, ops int64, snap cliutil.SnapshotFlags, metricsOut string, traceEvents int) int {
	cfg := bench.SoakConfigFor(policy, opt, ops, metricsOut != "", traceEvents)
	hooks := bench.SoakHooks{
		SnapshotPath:    snap.Snapshot,
		SnapshotEvery:   snap.SnapshotEvery,
		InvariantsEvery: snap.InvariantsEvery,
	}
	report, sess, err := bench.RunSoakCLI(cfg, snap.Restore, hooks, snap.Audit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
		return 1
	}
	os.Stdout.WriteString(report)

	if metricsOut != "" {
		run := sess.MetricsRun("soak/" + sess.Cfg.Policy)
		if run == nil {
			fmt.Fprintln(os.Stderr, "mcbench: snapshot carries no telemetry registry; cannot export metrics")
			return 1
		}
		data, err := metrics.ExportJSON(*run)
		if err == nil {
			err = os.WriteFile(metricsOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: writing metrics: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "metrics: 1 run(s) written to %s\n", metricsOut)
	}
	return 0
}
