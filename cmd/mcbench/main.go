// mcbench regenerates the paper's tables and figures on the simulated
// hybrid-memory machine.
//
// Usage:
//
//	mcbench -exp fig5            # one experiment at full scale
//	mcbench -exp all -quick      # everything, CI-speed
//	mcbench -list                # show available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"multiclock/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (fig1, fig2, table1, table2, fig5..fig10, ablation-*, or 'all')")
	quick := flag.Bool("quick", false, "compressed runs (~10× fewer ops and shorter daemon intervals)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, n := range bench.Names() {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("  table2 (module inventory / LoC)")
		fmt.Println("  all")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := bench.Options{Quick: *quick, Seed: *seed}
	names := []string{*exp}
	if *exp == "all" {
		names = append(bench.Names(), "table2")
	}
	for _, name := range names {
		start := time.Now()
		var out string
		var err error
		if name == "table2" {
			out, err = table2()
		} else {
			out, err = bench.Run(name, opt)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%.1fs wall) ====\n%s\n", name, time.Since(start).Seconds(), out)
	}
}

// table2 locates the module root and renders the package inventory.
func table2() (string, error) {
	wd, err := os.Getwd()
	if err != nil {
		return "", err
	}
	root, err := bench.FindModuleRoot(wd)
	if err != nil {
		return "", err
	}
	return bench.Table2(root)
}
