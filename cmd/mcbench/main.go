// mcbench regenerates the paper's tables and figures on the simulated
// hybrid-memory machine.
//
// Usage:
//
//	mcbench -exp fig5                  # one experiment at full scale
//	mcbench -exp all -quick            # everything, CI-speed
//	mcbench -exp all -parallel 0       # fan runs out across all cores
//	mcbench -exp fig5 -chaos 42,0.01   # run under deterministic fault injection
//	mcbench -exp all -deadline 30m     # abort (exit 3) past a wall-clock budget
//	mcbench -exp fig9 -metrics out.json -series 10ms -lifecycle 1
//	                                   # ride time-series + lifecycle spans
//	mcbench -exp fig5 -metrics out.json -trace-out trace.json
//	                                   # export a Perfetto virtual-time trace
//	mcbench -exp fig5 -metrics out.json -slo 'p99(access_latency_dram_read_ns) < 400ns over 10ms'
//	                                   # evaluate latency SLOs + burn-rate alerts
//	mcbench -exp all -http :6060       # expvar/pprof for wall-clock profiling
//	mcbench -list                      # show available experiment ids
//
// Every simulated machine is an independent single-threaded system, so
// -parallel N schedules runs across goroutines without changing any
// result: stdout is byte-identical at every parallelism level; progress
// and per-run wall-clock timing go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"multiclock/internal/bench"
	"multiclock/internal/cliutil"
	"multiclock/internal/fault"
	"multiclock/internal/metrics"
	"multiclock/internal/runner"
	"multiclock/internal/sim"
	"multiclock/internal/slo"
	"multiclock/internal/traceexport"
)

func main() {
	exp := flag.String("exp", "", "experiment id (fig1, fig2, table1, table2, fig5..fig10, ablation-*, or 'all')")
	quick := flag.Bool("quick", false, "compressed runs (~10× fewer ops and shorter daemon intervals)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 1, "max simulation runs in flight (0 = GOMAXPROCS, 1 = sequential)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	chaosSpec := flag.String("chaos", "", "deterministic fault injection as seed,rate (e.g. 42,0.01); empty disables")
	deadline := flag.Duration("deadline", 0, "abort with a non-zero exit if wall-clock runtime exceeds this (0 = no limit)")
	metricsOut := flag.String("metrics", "", "write a deterministic metrics JSON export for the instrumented experiments (figs. 5, 7-10) to this file")
	traceEvents := flag.Int("trace-events", 0, "structured trace ring capacity per machine in the metrics export (0 = no event trace)")
	series := flag.Duration("series", 0, "sample a windowed occupancy time series per instrumented machine on this virtual period (0 = off; requires -metrics)")
	lifecycleMod := flag.Uint64("lifecycle", 0, "trace per-page lifecycle spans per instrumented machine with this sampling modulus (1 = every page, 0 = off; requires -metrics)")
	httpAddr := flag.String("http", "", "serve expvar/pprof on this address (e.g. localhost:6060) for wall-clock profiling of long runs")
	var tf cliutil.TraceFlags
	tf.Register(flag.CommandLine)
	benchOut := flag.String("bench-out", "", "run the simulator perf suite and write its JSON report (pages/sec, ns/access per workload) to this file")
	benchCompare := flag.String("bench-compare", "", "with -bench-out: compare against this baseline BENCH_*.json and exit 1 on regression")
	benchTolerance := flag.Float64("bench-tolerance", 5, "with -bench-compare: allowed slowdown factor vs the baseline before failing")
	tiers := flag.String("tiers", "", "explicit tier hierarchy as name:frames pairs, fastest first (e.g. dram:1024,cxl:2048,pm:8192,ssd:*), applied to every machine the experiments build")
	soak := flag.String("soak", "", "run a resumable soak of this policy over the paper's workload sequence (composes with -snapshot/-restore/-audit/-invariants-every)")
	soakOps := flag.Int64("soak-ops", 0, "with -soak: ops per workload (0 = the -quick/full scale default)")
	var snap cliutil.SnapshotFlags
	snap.Register(flag.CommandLine)
	flag.Parse()

	chaos, err := fault.ParseSpec(*chaosSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
		os.Exit(2)
	}
	if *deadline < 0 {
		fmt.Fprintf(os.Stderr, "mcbench: -deadline must be non-negative, got %v\n", *deadline)
		os.Exit(2)
	}
	if *deadline > 0 {
		// A runaway experiment (bad flag combination, pathological scale)
		// must not hang CI forever: kill the whole process once the budget
		// is spent, loudly and with a distinctive exit code.
		d := *deadline
		time.AfterFunc(d, func() {
			fmt.Fprintf(os.Stderr, "mcbench: wall-clock deadline %v exceeded; aborting\n", d)
			os.Exit(3)
		})
	}

	if *tiers != "" {
		if _, err := cliutil.ParseTierSpec(*tiers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(cliutil.ExitUsage)
		}
	}
	if err := cliutil.ValidateExportFlags(*series, *lifecycleMod, *metricsOut, tf.SLO, tf.TraceOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(cliutil.ExitUsage)
	}
	if tf.SLO != "" {
		if _, err := slo.Parse(tf.SLO); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(cliutil.ExitUsage)
		}
	}
	if err := snap.Validate(*series, *lifecycleMod, tf.SLO, tf.TraceOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(cliutil.ExitUsage)
	}
	if *soak == "" && (snap.Active() || snap.InvariantsEvery > 0 || *soakOps != 0) {
		fmt.Fprintln(os.Stderr, "mcbench: -snapshot/-restore/-audit/-invariants-every/-soak-ops need -soak POLICY (experiments are not checkpointable)")
		os.Exit(cliutil.ExitUsage)
	}
	if *soak != "" {
		if *exp != "" || *benchOut != "" {
			fmt.Fprintln(os.Stderr, "mcbench: -soak is its own mode; drop -exp/-bench-out")
			os.Exit(cliutil.ExitUsage)
		}
		if tf.SLO != "" || tf.TraceOut != "" {
			fmt.Fprintln(os.Stderr, "mcbench: -slo/-trace-out are experiment-mode flags (soaks are checkpointable; see mcmetrics slo/perfetto for post-hoc analysis)")
			os.Exit(cliutil.ExitUsage)
		}
		os.Exit(runSoak(*soak, bench.Options{Quick: *quick, Seed: *seed, Chaos: chaos, Tiers: *tiers},
			*soakOps, snap, *metricsOut, *traceEvents))
	}

	if *benchOut != "" {
		// Perf-suite mode: measure the simulator itself. Runs are
		// sequential by construction (wall-clock numbers need the machine
		// to themselves); -quick selects the small grid.
		stopDebug := func() {}
		if *httpAddr != "" {
			stopDebug = cliutil.ServeDebug("mcbench", *httpAddr)
		}
		code := runPerfSuite(bench.Options{Quick: *quick, Seed: *seed},
			*benchOut, *benchCompare, *benchTolerance)
		stopDebug()
		os.Exit(code)
	}
	if *benchCompare != "" {
		fmt.Fprintln(os.Stderr, "mcbench: -bench-compare requires -bench-out")
		os.Exit(2)
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, n := range bench.Names() {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("  table2 (module inventory / LoC)")
		fmt.Println("  all")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	workers := *parallel
	if workers <= 0 {
		workers = -1 // GOMAXPROCS, resolved by the runner
	}
	stopDebug := func() {}
	if *httpAddr != "" {
		stopDebug = cliutil.ServeDebug("mcbench", *httpAddr)
	}
	opt := bench.Options{
		Quick: *quick, Seed: *seed, Parallel: workers, Chaos: chaos,
		Series: sim.Duration(series.Nanoseconds()), Lifecycle: *lifecycleMod,
		Tiers: *tiers, SLO: tf.SLO, Trace: tf.TraceOut != "",
	}
	var pool *metrics.Pool
	if *metricsOut != "" {
		ring := *traceEvents
		if tf.TraceOut != "" && ring == 0 {
			// A Perfetto export without the structured event ring would carry
			// no migrations, daemon passes or page faults; default it on.
			ring = cliutil.DefaultTraceRing
		}
		pool = metrics.NewPool(ring)
		opt.Metrics = pool
	}
	names := []string{*exp}
	if *exp == "all" {
		names = append(bench.Names(), "table2")
	}

	tasks := make([]runner.Task[string], 0, len(names))
	for _, name := range names {
		name := name
		tasks = append(tasks, runner.Task[string]{Name: name, Fn: func() (string, error) {
			if name == "table2" {
				return table2()
			}
			return bench.Run(name, opt)
		}})
	}

	// Experiments are scheduled across the same worker budget as their
	// inner cells; output streams to stdout in presentation order as each
	// head-of-line experiment completes. A failing experiment no longer
	// aborts the batch: the error prints inline and the rest keep going.
	failed := 0
	runner.Stream(workers, os.Stderr, tasks, func(_ int, r runner.TaskResult[string]) {
		expExperimentsDone.Add(1)
		if r.Err != nil {
			failed++
			expExperimentsFailed.Add(1)
			fmt.Printf("==== %s ====\nerror: %v\n\n", r.Name, r.Err)
			return
		}
		fmt.Printf("==== %s ====\n%s\n", r.Name, r.Value)
	})
	if pool != nil {
		data, err := pool.ExportJSON()
		if err == nil {
			err = os.WriteFile(*metricsOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: writing metrics: %v\n", err)
			stopDebug()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: %d run(s) written to %s\n", pool.Len(), *metricsOut)
		if tf.TraceOut != "" {
			trace := traceexport.Build(pool.Runs())
			if err := os.WriteFile(tf.TraceOut, trace, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "mcbench: writing trace: %v\n", err)
				stopDebug()
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "trace: perfetto timeline written to %s\n", tf.TraceOut)
		}
	}
	stopDebug()
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mcbench: %d of %d experiments failed\n", failed, len(tasks))
		os.Exit(1)
	}
}

// table2 locates the module root and renders the package inventory.
func table2() (string, error) {
	wd, err := os.Getwd()
	if err != nil {
		return "", err
	}
	root, err := bench.FindModuleRoot(wd)
	if err != nil {
		return "", err
	}
	return bench.Table2(root)
}
