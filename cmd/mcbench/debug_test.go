package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
)

// TestStartDebugStopsCleanly pins the -http endpoint lifecycle: it serves
// while running, a clean end-of-run stop is not counted as a serve
// failure, and the listener is actually released — the pre-fix code leaked
// it for the life of the process.
func TestStartDebugStopsCleanly(t *testing.T) {
	addr, stop, err := startDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		stop()
		t.Fatalf("endpoint not serving: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		stop()
		t.Fatalf("/debug/vars: status %d", resp.StatusCode)
	}

	before := expDebugServeFailures.Value()
	stop() // blocks until the serve loop has exited
	if got := expDebugServeFailures.Value(); got != before {
		t.Fatalf("clean stop was counted as a serve failure (%d -> %d)", before, got)
	}

	// The port must be free again immediately.
	ln, err := net.Listen("tcp", addr.String())
	if err != nil {
		t.Fatalf("listener leaked after stop: %v", err)
	}
	ln.Close()

	// And the endpoint must be restartable on the same address.
	_, stop2, err := startDebug(addr.String())
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	stop2()
}
