package main

import (
	"fmt"
	"os"

	"multiclock/internal/bench"
	"multiclock/internal/cliutil"
	"multiclock/internal/metrics"
	"multiclock/internal/ycsb"
)

// runSnapshotMode drives a checkpointable run: a single policy on the YCSB
// workload (or the paper sequence), stepped op by op so snapshots, audit
// fingerprints and invariant sweeps land on quiescent boundaries. A restored
// run resumes where the snapshot left off and prints the same report the
// straight run would have.
func runSnapshotMode(cfg config, snap cliutil.SnapshotFlags, metricsOut string) int {
	workloads := []string{cfg.workload}
	if cfg.sequence {
		workloads = workloads[:0]
		for _, w := range ycsb.PaperSequence {
			workloads = append(workloads, w.Name)
		}
	}
	soakCfg := bench.SoakConfig{
		Policy:      cfg.policy,
		Workloads:   workloads,
		Records:     cfg.records,
		Ops:         cfg.ops,
		DRAMPages:   cfg.dram,
		PMPages:     cfg.pm,
		Tiers:       cfg.tiers,
		Interval:    cfg.scan,
		Seed:        cfg.seed,
		Chaos:       cfg.chaos,
		Metrics:     cfg.metrics,
		TraceEvents: cfg.traceEvents,
	}
	hooks := bench.SoakHooks{
		SnapshotPath:    snap.Snapshot,
		SnapshotEvery:   snap.SnapshotEvery,
		InvariantsEvery: snap.InvariantsEvery,
	}
	report, sess, err := bench.RunSoakCLI(soakCfg, snap.Restore, hooks, snap.Audit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
		return 1
	}
	os.Stdout.WriteString(report)

	if metricsOut != "" {
		run := sess.MetricsRun(sess.Cfg.Policy)
		if run == nil {
			fmt.Fprintln(os.Stderr, "mcsim: snapshot carries no telemetry registry; cannot export metrics")
			return 1
		}
		data, err := metrics.ExportJSON(*run)
		if err == nil {
			err = os.WriteFile(metricsOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcsim: writing metrics: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "metrics: 1 run(s) written to %s\n", metricsOut)
	}
	return 0
}
