// mcsim runs one workload under one tiering policy on the simulated
// hybrid-memory machine and prints the outcome — a quick way to poke at a
// configuration without the full benchmark harness.
//
// Usage:
//
//	mcsim -policy multiclock -workload A -records 20000 -ops 500000
//	mcsim -policy static -gapbs PR -vertices 40000
package main

import (
	"flag"
	"fmt"
	"os"

	"multiclock"
	"multiclock/internal/tracereplay"
)

func main() {
	pol := flag.String("policy", "multiclock", "static | multiclock | nimble | at-cpm | at-opm | memory-mode | thermostat | amp-{lru,lfu,random}")
	workload := flag.String("workload", "A", "YCSB workload (A-F, W)")
	sequence := flag.Bool("sequence", false, "run the paper's full YCSB sequence (Load,A,B,C,F,W,D)")
	gapbs := flag.String("gapbs", "", "run a GAPBS kernel instead (BFS, SSSP, PR, CC, BC, TC)")
	records := flag.Int64("records", 20000, "YCSB record count")
	ops := flag.Int64("ops", 500000, "YCSB operations")
	vertices := flag.Int("vertices", 40000, "graph vertices")
	degree := flag.Int("degree", 8, "graph average degree")
	record := flag.String("record", "", "write the access trace to this file")
	replay := flag.String("replay", "", "replay a recorded trace instead of a workload")
	replayFast := flag.Bool("replay-fast", false, "replay back-to-back instead of original pacing")
	dram := flag.Int("dram", 1024, "DRAM pages")
	pm := flag.Int("pm", 8192, "PM pages")
	interval := flag.Duration("interval", 0, "scan interval (virtual; default 100ms)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	scan := multiclock.Duration(100 * 1e6)
	if *interval > 0 {
		scan = multiclock.Duration(interval.Nanoseconds())
	}
	sys := multiclock.NewSystem(multiclock.Config{
		Policy:       multiclock.Policy(*pol),
		DRAMPages:    *dram,
		PMPages:      *pm,
		ScanInterval: scan,
		Seed:         *seed,
	})
	defer sys.Stop()

	var recorder *tracereplay.Recorder
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		recorder, err = tracereplay.NewRecorder(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
			os.Exit(1)
		}
		sys.Machine().Observer = recorder
	}

	switch {
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		mode := tracereplay.Timed
		if *replayFast {
			mode = tracereplay.Fast
		}
		res, err := tracereplay.Replay(sys.Machine(), f, mode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcsim: replay: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("replayed %d accesses in %v (virtual)\n", res.Records, res.Elapsed)
	case *gapbs != "":
		runGAPBS(sys, *gapbs, *vertices, *degree, *seed)
	case *sequence:
		runSequence(sys, *records, *ops)
	default:
		runYCSB(sys, *workload, *records, *ops)
	}

	if recorder != nil {
		if err := recorder.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "mcsim: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d accesses written to %s\n", recorder.Records(), *record)
	}

	fmt.Printf("\npolicy: %s\nvirtual time: %v\n", sys.PolicyName(), sys.Elapsed())
	fmt.Println(sys.Counters())
}

// runSequence executes the prescribed workload order (§V-B) and prints a
// per-workload summary.
func runSequence(sys *multiclock.System, records, ops int64) {
	store := sys.NewKVStore(int(records))
	client := sys.NewYCSB(store, records)
	fmt.Printf("loading %d records...\n", records)
	client.Load()
	fmt.Printf("%-8s %14s %10s %10s %10s\n", "workload", "ops/s", "p50", "p95", "p99")
	for _, w := range multiclock.PaperSequence {
		res := client.Run(w, ops)
		fmt.Printf("%-8s %14.0f %10v %10v %10v\n", w.Name, res.Throughput, res.P50, res.P95, res.P99)
	}
}

func runYCSB(sys *multiclock.System, name string, records, ops int64) {
	var w multiclock.Workload
	switch name {
	case "A":
		w = multiclock.WorkloadA
	case "B":
		w = multiclock.WorkloadB
	case "C":
		w = multiclock.WorkloadC
	case "D":
		w = multiclock.WorkloadD
	case "E":
		w = multiclock.WorkloadE
	case "F":
		w = multiclock.WorkloadF
	case "W":
		w = multiclock.WorkloadW
	default:
		fmt.Fprintf(os.Stderr, "mcsim: unknown workload %q\n", name)
		os.Exit(2)
	}
	store := sys.NewKVStore(int(records))
	client := sys.NewYCSB(store, records)
	fmt.Printf("loading %d records...\n", records)
	client.Load()
	fmt.Printf("running YCSB workload %s for %d ops...\n", name, ops)
	res := client.Run(w, ops)
	if res.Unsupported {
		fmt.Println("workload is non-operational on this back-end (memcached has no SCAN)")
		return
	}
	fmt.Printf("throughput: %.0f ops/s (virtual)\n", res.Throughput)
	fmt.Printf("latency: mean %v, p50 %v, p95 %v, p99 %v\n",
		res.MeanLatency, res.P50, res.P95, res.P99)
}

func runGAPBS(sys *multiclock.System, kernel string, vertices, degree int, seed uint64) {
	g := sys.NewGraph(multiclock.GraphConfig{
		Vertices:  vertices,
		Degree:    degree,
		Kronecker: true,
		Seed:      seed,
	})
	fmt.Printf("loaded %v; running %s...\n", g, kernel)
	start := sys.Elapsed()
	switch kernel {
	case "BFS":
		g.BFS(0)
	case "SSSP":
		g.SSSP(0, 64)
	case "PR":
		g.PageRank(5)
	case "CC":
		g.CC()
	case "BC":
		g.BC([]int32{0, 1, 2, 3})
	case "TC":
		fmt.Printf("triangles: %d\n", g.TC())
	default:
		fmt.Fprintf(os.Stderr, "mcsim: unknown kernel %q\n", kernel)
		os.Exit(2)
	}
	fmt.Printf("kernel time: %v (virtual)\n", sys.Elapsed()-start)
}
