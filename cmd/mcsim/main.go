// mcsim runs one workload under one or more tiering policies on the
// simulated hybrid-memory machine and prints the outcome — a quick way to
// poke at a configuration without the full benchmark harness.
//
// Usage:
//
//	mcsim -policy multiclock -workload A -records 20000 -ops 500000
//	mcsim -policy static -gapbs PR -vertices 40000
//	mcsim -policy static,nimble,multiclock -workload D -parallel 0
//	mcsim -policy multiclock -workload A -chaos 42,0.01
//	mcsim -policy multiclock -workload A -metrics out.json -trace-events 128
//	mcsim -policy multiclock -workload A -metrics out.json -series 10ms -lifecycle 1
//	mcsim -policy multiclock -workload A -metrics out.json -trace-out trace.json
//	mcsim -policy multiclock -workload A -metrics out.json -slo 'p99(access_latency_dram_read_ns) < 400ns over 10ms'
//
// With a comma-separated policy list every policy gets its own machine;
// -parallel N fans them out across goroutines. Each machine is an
// independent single-threaded simulation, so output is printed in list
// order and is byte-identical at every parallelism level; per-policy
// wall-clock timing goes to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"multiclock"
	"multiclock/internal/cliutil"
	"multiclock/internal/runner"
	"multiclock/internal/tracereplay"
)

// config carries the flag values one policy run needs.
type config struct {
	policy      string
	workload    string
	sequence    bool
	gapbs       string
	records     int64
	ops         int64
	vertices    int
	degree      int
	record      string
	replay      string
	replayFast  bool
	dram        int
	pm          int
	tiers       string
	scan        multiclock.Duration
	seed        uint64
	chaos       multiclock.FaultConfig
	metrics     bool
	traceEvents int
	series      multiclock.Duration
	lifecycle   uint64
	slo         string
	trace       bool
	label       string
}

func main() {
	pol := flag.String("policy", "multiclock", "comma-separated list of static | multiclock | multiclock-gated | nimble | nimble-gated | at-cpm | at-opm | memory-mode | thermostat | amp-{lru,lfu,random} | nomad | s3fifo")
	workload := flag.String("workload", "A", "YCSB workload (A-F, W)")
	sequence := flag.Bool("sequence", false, "run the paper's full YCSB sequence (Load,A,B,C,F,W,D)")
	gapbs := flag.String("gapbs", "", "run a GAPBS kernel instead (BFS, SSSP, PR, CC, BC, TC)")
	records := flag.Int64("records", 20000, "YCSB record count")
	ops := flag.Int64("ops", 500000, "YCSB operations")
	vertices := flag.Int("vertices", 40000, "graph vertices")
	degree := flag.Int("degree", 8, "graph average degree")
	record := flag.String("record", "", "write the access trace to this file (single policy only)")
	replay := flag.String("replay", "", "replay a recorded trace instead of a workload")
	replayFast := flag.Bool("replay-fast", false, "replay back-to-back instead of original pacing")
	dram := flag.Int("dram", 1024, "DRAM pages")
	pm := flag.Int("pm", 8192, "PM pages")
	tiers := flag.String("tiers", "", "explicit tier hierarchy as name:frames pairs, fastest first (e.g. dram:1024,cxl:2048,pm:8192,ssd:*); overrides -dram/-pm")
	interval := flag.Duration("interval", 0, "scan interval (virtual; default 100ms)")
	parallel := flag.Int("parallel", 1, "max policies simulated at once (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	chaosSpec := flag.String("chaos", "", "deterministic fault injection as seed,rate (e.g. 42,0.01); empty disables")
	metricsOut := flag.String("metrics", "", "write a deterministic metrics JSON export to this file")
	traceEvents := flag.Int("trace-events", 0, "structured trace ring capacity in the metrics export (0 = no event trace)")
	series := flag.Duration("series", 0, "sample a windowed occupancy time series on this virtual period into the metrics export (0 = off)")
	lifecycleMod := flag.Uint64("lifecycle", 0, "trace per-page lifecycle spans with this sampling modulus (1 = every page, 0 = off) into the metrics export")
	httpAddr := flag.String("http", "", "serve expvar/pprof on this address (e.g. localhost:6060) for wall-clock profiling of long runs")
	var tf cliutil.TraceFlags
	tf.Register(flag.CommandLine)
	var snap cliutil.SnapshotFlags
	snap.Register(flag.CommandLine)
	flag.Parse()

	chaos, err := multiclock.ParseFaultSpec(*chaosSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
		os.Exit(2)
	}
	if *tiers != "" {
		if _, err := cliutil.ParseTierSpec(*tiers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(cliutil.ExitUsage)
		}
	}
	if err := cliutil.ValidateExportFlags(*series, *lifecycleMod, *metricsOut, tf.SLO, tf.TraceOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(cliutil.ExitUsage)
	}
	if tf.SLO != "" {
		if _, err := multiclock.ParseSLOSpec(tf.SLO); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(cliutil.ExitUsage)
		}
	}
	if err := snap.Validate(*series, *lifecycleMod, tf.SLO, tf.TraceOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(cliutil.ExitUsage)
	}
	ring := *traceEvents
	if tf.TraceOut != "" && ring == 0 {
		// A Perfetto export without the structured event ring would carry no
		// migrations, daemon passes or page faults; default it on.
		ring = cliutil.DefaultTraceRing
	}

	scan := multiclock.Duration(100 * 1e6)
	if *interval > 0 {
		scan = multiclock.Duration(interval.Nanoseconds())
	}
	policies := make([]string, 0, 4)
	for _, p := range strings.Split(*pol, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		parsed, err := multiclock.ParsePolicy(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
			os.Exit(2)
		}
		policies = append(policies, string(parsed))
	}
	if len(policies) == 0 {
		fmt.Fprintln(os.Stderr, "mcsim: -policy needs at least one policy name")
		os.Exit(2)
	}
	if *record != "" && len(policies) > 1 {
		fmt.Fprintln(os.Stderr, "mcsim: -record needs a single policy (the trace is one machine's access stream)")
		os.Exit(2)
	}
	if snap.Active() || snap.InvariantsEvery > 0 {
		// Checkpointable runs (and periodic invariant sweeps) are one machine
		// stepped op by op; the trace and graph paths have no
		// quiescent-boundary driver.
		if len(policies) > 1 {
			fmt.Fprintln(os.Stderr, "mcsim: checkpointing (-snapshot/-restore/-audit) needs a single policy")
			os.Exit(cliutil.ExitUsage)
		}
		if *gapbs != "" || *record != "" || *replay != "" {
			fmt.Fprintln(os.Stderr, "mcsim: checkpointing supports YCSB workloads only (no -gapbs/-record/-replay)")
			os.Exit(cliutil.ExitUsage)
		}
		if tf.SLO != "" || tf.TraceOut != "" {
			// snap.Validate catches the checkpointing combinations; this
			// covers the -invariants-every-only stepping mode.
			fmt.Fprintln(os.Stderr, "mcsim: -slo/-trace-out are not supported in checkpoint/invariant-stepping mode")
			os.Exit(cliutil.ExitUsage)
		}
		cfg := config{
			policy: policies[0], workload: *workload, sequence: *sequence,
			records: *records, ops: *ops, dram: *dram, pm: *pm, tiers: *tiers,
			scan: scan, seed: *seed, chaos: chaos,
			metrics: *metricsOut != "", traceEvents: *traceEvents,
		}
		os.Exit(runSnapshotMode(cfg, snap, *metricsOut))
	}

	workers := *parallel
	if workers <= 0 {
		workers = -1 // GOMAXPROCS, resolved by the runner
	}
	// Each policy's metrics snapshot lands in its own slot, so the export
	// is identical at every -parallel setting. Labels disambiguate repeated
	// policy names with the list position.
	seen := map[string]int{}
	metricsRuns := make([]*multiclock.MetricsRun, len(policies))
	tasks := make([]runner.Task[string], 0, len(policies))
	for i, p := range policies {
		label := p
		if n := seen[p]; n > 0 {
			label = fmt.Sprintf("%s#%d", p, n)
		}
		seen[p]++
		cfg := config{
			policy: p, workload: *workload, sequence: *sequence, gapbs: *gapbs,
			records: *records, ops: *ops, vertices: *vertices, degree: *degree,
			record: *record, replay: *replay, replayFast: *replayFast,
			dram: *dram, pm: *pm, tiers: *tiers, scan: scan, seed: *seed, chaos: chaos,
			metrics: *metricsOut != "", traceEvents: ring,
			series: multiclock.Duration(series.Nanoseconds()), lifecycle: *lifecycleMod,
			slo: tf.SLO, trace: tf.TraceOut != "",
			label: label,
		}
		slot := &metricsRuns[i]
		tasks = append(tasks, runner.Task[string]{Name: p, Fn: func() (string, error) {
			var b strings.Builder
			run, err := runOne(&b, cfg)
			*slot = run
			return b.String(), err
		}})
	}

	var progress io.Writer
	if len(policies) > 1 {
		progress = os.Stderr
	}
	stopDebug := func() {}
	if *httpAddr != "" {
		stopDebug = cliutil.ServeDebug("mcsim", *httpAddr)
	}
	failed := 0
	runner.Stream(workers, progress, tasks, func(_ int, r runner.TaskResult[string]) {
		if len(tasks) > 1 {
			fmt.Printf("==== %s ====\n", r.Name)
		}
		os.Stdout.WriteString(r.Value)
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "mcsim: %s: %v\n", r.Name, r.Err)
		}
	})
	if *metricsOut != "" {
		runs := make([]multiclock.MetricsRun, 0, len(metricsRuns))
		for _, r := range metricsRuns {
			if r != nil {
				runs = append(runs, *r)
			}
		}
		data, err := multiclock.ExportMetricsJSON(runs...)
		if err == nil {
			err = os.WriteFile(*metricsOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcsim: writing metrics: %v\n", err)
			stopDebug()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: %d run(s) written to %s\n", len(runs), *metricsOut)
		if tf.TraceOut != "" {
			trace := multiclock.ExportPerfettoJSON(runs...)
			if err := os.WriteFile(tf.TraceOut, trace, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "mcsim: writing trace: %v\n", err)
				stopDebug()
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "trace: perfetto timeline written to %s\n", tf.TraceOut)
		}
	}
	stopDebug()
	if failed > 0 {
		os.Exit(1)
	}
}

// runOne builds one system, drives it per the config, writes the
// human-readable outcome to w, and returns the metrics snapshot when
// collection was requested.
func runOne(w io.Writer, cfg config) (*multiclock.MetricsRun, error) {
	syscfg := multiclock.Config{
		Policy:       multiclock.Policy(cfg.policy),
		DRAMPages:    cfg.dram,
		PMPages:      cfg.pm,
		ScanInterval: cfg.scan,
		Seed:         cfg.seed,
		Chaos:        cfg.chaos,
	}
	if cfg.tiers != "" {
		// Validated at flag-parse time; re-parse for the topology value.
		top, err := cliutil.ParseTierSpec(cfg.tiers)
		if err != nil {
			return nil, err
		}
		syscfg.Tiers = &top
	}
	sys := multiclock.NewSystem(syscfg)
	defer sys.Stop()

	var collector *multiclock.Metrics
	var sampler *multiclock.SeriesSampler
	var tracer *multiclock.LifecycleTracer
	var sloEng *multiclock.SLOEngine
	if cfg.metrics {
		collector = sys.EnableMetrics(cfg.traceEvents)
		if cfg.series > 0 {
			sampler = sys.EnableTimeSeries(cfg.series)
		}
		if cfg.lifecycle > 0 {
			tracer = sys.EnableLifecycle(multiclock.LifecycleConfig{SampleMod: cfg.lifecycle})
		}
		if cfg.slo != "" {
			var err error
			if sloEng, err = sys.EnableSLO(cfg.slo); err != nil {
				return nil, err
			}
		}
		if cfg.trace {
			sys.EnableTraceRecording()
		}
	}

	var recorder *tracereplay.Recorder
	if cfg.record != "" {
		f, err := os.Create(cfg.record)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recorder, err = tracereplay.NewRecorder(f)
		if err != nil {
			return nil, err
		}
		sys.Attach(recorder)
	}

	switch {
	case cfg.replay != "":
		f, err := os.Open(cfg.replay)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		mode := tracereplay.Timed
		if cfg.replayFast {
			mode = tracereplay.Fast
		}
		res, err := tracereplay.Replay(sys.Machine(), f, mode)
		if err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
		fmt.Fprintf(w, "replayed %d accesses in %v (virtual)\n", res.Records, res.Elapsed)
	case cfg.gapbs != "":
		if err := runGAPBS(w, sys, cfg); err != nil {
			return nil, err
		}
	case cfg.sequence:
		runSequence(w, sys, cfg.records, cfg.ops)
	default:
		if err := runYCSB(w, sys, cfg); err != nil {
			return nil, err
		}
	}

	if recorder != nil {
		if err := recorder.Close(); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(w, "trace: %d accesses written to %s\n", recorder.Records(), cfg.record)
	}

	fmt.Fprintf(w, "\npolicy: %s\nvirtual time: %v\n", sys.PolicyName(), sys.Elapsed())
	fmt.Fprintln(w, sys.Counters())
	if fr := sys.FaultReport(); fr != "" {
		fmt.Fprintln(w, fr)
		if err := sys.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("invariant check after chaos run: %w", err)
		}
	}
	if collector != nil {
		run := collector.Run(cfg.label)
		if sampler != nil {
			run.Series = sampler.Export()
		}
		if tracer != nil {
			run.Lifecycle = tracer.Export()
		}
		if sloEng != nil {
			run.SLO = sloEng.Export()
		}
		if cfg.trace {
			sys.AttachTraceSections(&run)
		}
		return &run, nil
	}
	return nil, nil
}

// runSequence executes the prescribed workload order (§V-B) and prints a
// per-workload summary.
func runSequence(w io.Writer, sys *multiclock.System, records, ops int64) {
	store := sys.NewKVStore(int(records))
	client := sys.NewYCSB(store, records)
	fmt.Fprintf(w, "loading %d records...\n", records)
	client.Load()
	fmt.Fprintf(w, "%-8s %14s %10s %10s %10s\n", "workload", "ops/s", "p50", "p95", "p99")
	for _, wl := range multiclock.PaperSequence {
		res := client.Run(wl, ops)
		fmt.Fprintf(w, "%-8s %14.0f %10v %10v %10v\n", wl.Name, res.Throughput, res.P50, res.P95, res.P99)
	}
}

func runYCSB(w io.Writer, sys *multiclock.System, cfg config) error {
	var wl multiclock.Workload
	switch cfg.workload {
	case "A":
		wl = multiclock.WorkloadA
	case "B":
		wl = multiclock.WorkloadB
	case "C":
		wl = multiclock.WorkloadC
	case "D":
		wl = multiclock.WorkloadD
	case "E":
		wl = multiclock.WorkloadE
	case "F":
		wl = multiclock.WorkloadF
	case "W":
		wl = multiclock.WorkloadW
	default:
		return fmt.Errorf("unknown workload %q", cfg.workload)
	}
	store := sys.NewKVStore(int(cfg.records))
	client := sys.NewYCSB(store, cfg.records)
	fmt.Fprintf(w, "loading %d records...\n", cfg.records)
	client.Load()
	fmt.Fprintf(w, "running YCSB workload %s for %d ops...\n", cfg.workload, cfg.ops)
	res := client.Run(wl, cfg.ops)
	if res.Unsupported {
		fmt.Fprintln(w, "workload is non-operational on this back-end (memcached has no SCAN)")
		return nil
	}
	fmt.Fprintf(w, "throughput: %.0f ops/s (virtual)\n", res.Throughput)
	fmt.Fprintf(w, "latency: mean %v, p50 %v, p95 %v, p99 %v\n",
		res.MeanLatency, res.P50, res.P95, res.P99)
	return nil
}

func runGAPBS(w io.Writer, sys *multiclock.System, cfg config) error {
	g := sys.NewGraph(multiclock.GraphConfig{
		Vertices:  cfg.vertices,
		Degree:    cfg.degree,
		Kronecker: true,
		Seed:      cfg.seed,
	})
	fmt.Fprintf(w, "loaded %v; running %s...\n", g, cfg.gapbs)
	start := sys.Elapsed()
	switch cfg.gapbs {
	case "BFS":
		g.BFS(0)
	case "SSSP":
		g.SSSP(0, 64)
	case "PR":
		g.PageRank(5)
	case "CC":
		g.CC()
	case "BC":
		g.BC([]int32{0, 1, 2, 3})
	case "TC":
		fmt.Fprintf(w, "triangles: %d\n", g.TC())
	default:
		return fmt.Errorf("unknown kernel %q", cfg.gapbs)
	}
	fmt.Fprintf(w, "kernel time: %v (virtual)\n", sys.Elapsed()-start)
	return nil
}
