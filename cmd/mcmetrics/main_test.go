package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exec drives the CLI entry point against argv and returns (exit, stdout,
// stderr). The golden fixture under testdata carries two runs: an
// instrumented "demo/multiclock" with series and lifecycle sections
// (including a known ping-pong page at 0/0x2000) and a bare "demo/static".
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

const golden = "testdata/golden.json"

func TestValidateGolden(t *testing.T) {
	code, out, _ := exec(t, "-validate", golden)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "valid (version 1, 2 runs)") {
		t.Fatalf("unexpected validate output: %q", out)
	}
}

func TestSummaryMentionsSections(t *testing.T) {
	code, out, _ := exec(t, "-run", "demo/multiclock", golden)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"== demo/multiclock",
		"series: 2 window(s) of 10.000ms",
		"lifecycle: 3 traced page(s), sample_mod=1",
		"migration_latency_ns",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestLegacyCSV(t *testing.T) {
	code, out, _ := exec(t, "-csv", golden)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "label,histogram,le,count,n,sum\n") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	if !strings.Contains(out, "demo/multiclock,migration_latency_ns,1023,1,2,3000") {
		t.Fatalf("bucket row missing:\n%s", out)
	}
}

func TestTimelineLadder(t *testing.T) {
	code, out, _ := exec(t, "timeline", "0/0x1000", golden)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "page 0/0x1000  (1 migration(s), 8 event(s))") {
		t.Fatalf("timeline header missing:\n%s", out)
	}
	// The full ladder, in order.
	rungs := []string{"birth", "access", "promote-select", "putback", "promoted"}
	pos := 0
	for _, r := range rungs {
		i := strings.Index(out[pos:], r)
		if i < 0 {
			t.Fatalf("rung %q missing or out of order:\n%s", r, out)
		}
		pos += i
	}
}

func TestTimelineBareVAMatchesAllSpaces(t *testing.T) {
	// va 0x1000 exists in spaces 0 and 1; a bare spec prints both.
	code, out, _ := exec(t, "timeline", "4096", golden)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "page 0/0x1000") || !strings.Contains(out, "page 1/0x1000") {
		t.Fatalf("bare va did not match both spaces:\n%s", out)
	}
}

func TestTimelineUntracedPage(t *testing.T) {
	code, _, errb := exec(t, "timeline", "0xdead000", golden)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "not traced") {
		t.Fatalf("stderr: %q", errb)
	}
}

func TestTimelineBadSpec(t *testing.T) {
	for _, spec := range []string{"zzz", "-3/0x10", "1/xyz"} {
		if code, _, _ := exec(t, "timeline", spec, golden); code != 2 {
			t.Fatalf("spec %q: exit %d, want 2", spec, code)
		}
	}
}

func TestPingpongRanking(t *testing.T) {
	code, out, _ := exec(t, "pingpong", "--top", "2", golden)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	// 0/0x2000 ping-pongs 6 times; 1/0x1000 migrated twice; 0/0x1000 once
	// (cut by --top 2).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var ranks []string
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) == 5 && (f[0] == "1" || f[0] == "2") {
			ranks = append(ranks, f[0]+" "+f[1]+"/"+f[2]+" x"+f[3])
		}
	}
	want := []string{"1 0/0x2000 x6", "2 1/0x1000 x2"}
	if len(ranks) != 2 || ranks[0] != want[0] || ranks[1] != want[1] {
		t.Fatalf("ranking = %v, want %v\n%s", ranks, want, out)
	}
	if strings.Contains(out, "0x1000 ") && strings.Contains(out, " 1 ") && len(lines) > 4+2 {
		// --top 2 must have cut the single-migration page.
		for _, l := range lines {
			if strings.HasPrefix(strings.TrimSpace(l), "3 ") {
				t.Fatalf("--top 2 printed a third rank:\n%s", out)
			}
		}
	}
}

func TestPingpongWithoutLifecycle(t *testing.T) {
	code, _, errb := exec(t, "pingpong", "-run", "demo/static", golden)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "lifecycle") {
		t.Fatalf("stderr: %q", errb)
	}
}

func TestSeriesCSV(t *testing.T) {
	code, out, _ := exec(t, "series", golden)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+4 { // header + 2 windows × 2 nodes
		t.Fatalf("series rows = %d, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "run,window,start_ns,end_ns,node,tier,") {
		t.Fatalf("header: %q", lines[0])
	}
	// Window 0, node 0: occupancy columns then the window deltas and the
	// window's DRAM hit ratio 450/560.
	want := "demo/multiclock,0,0,10000000,0,DRAM,100,36,20,8,2,0,0,0,0,400,100,50,10,6,2,1,0,0,128,0.8036"
	if lines[1] != want {
		t.Fatalf("row 1:\n got %s\nwant %s", lines[1], want)
	}
}

func TestSeriesWithoutSection(t *testing.T) {
	if code, _, _ := exec(t, "series", "-run", "demo/static", golden); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestUnknownRunLabel(t *testing.T) {
	code, _, errb := exec(t, "-run", "nope", golden)
	if code != 1 || !strings.Contains(errb, "no run labeled") {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestMissingFile(t *testing.T) {
	if code, _, _ := exec(t, "-validate", "testdata/absent.json"); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestUsageOnNoArgs(t *testing.T) {
	if code, _, _ := exec(t); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestValidateTruncatedExport: a truncated export must fail validation with
// the typed parse error naming the file and the byte offset, not a bare
// "unexpected end of JSON input".
func TestValidateTruncatedExport(t *testing.T) {
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	trunc := filepath.Join(dir, "truncated.json")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := exec(t, "-validate", trunc)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	for _, want := range []string{trunc, "not valid JSON", "byte offset"} {
		if !strings.Contains(errOut, want) {
			t.Fatalf("stderr missing %q:\n%s", want, errOut)
		}
	}

	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("{\"version\": 1, \"runs\": [nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = exec(t, "-validate", garbage)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	for _, want := range []string{garbage, "not valid JSON", "byte offset"} {
		if !strings.Contains(errOut, want) {
			t.Fatalf("stderr missing %q:\n%s", want, errOut)
		}
	}
}

// TestSLOReport renders the burn-rate report from the fixture's slo section.
func TestSLOReport(t *testing.T) {
	code, out, _ := exec(t, "slo", golden)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"demo/multiclock",
		"spec: p99(migration_latency_ns) < 1.5µs over 10ms, 99%",
		"VIOLATED",
		"windows: 3/4 compliant (75%, target 99%)",
		"events: 1/2 over threshold; budget burn 50.00x",
		"alerts (1, burn >= 6.00x fast+slow):",
		"[10ms, 30ms) 2 windows, peak fast 50.00x slow 8.33x",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("slo report missing %q:\n%s", want, out)
		}
	}
}

func TestSLOWithoutSection(t *testing.T) {
	code, _, errb := exec(t, "slo", "-run", "demo/static", golden)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "slo section") {
		t.Fatalf("stderr: %q", errb)
	}
}

// TestPerfettoRebuild: the subcommand rebuilds the timeline from an export
// deterministically and carries the fixture's lifecycle spans, fault window
// and burn-rate alert.
func TestPerfettoRebuild(t *testing.T) {
	code, out, _ := exec(t, "perfetto", golden)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, `{"displayTimeUnit":"ns",`) {
		t.Fatalf("not a trace-event JSON envelope:\n%.120s", out)
	}
	for _, want := range []string{
		`"thread_name"`, "pm-slowdown", "burn-rate alert", "promote-ref",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q", want)
		}
	}
	_, again, _ := exec(t, "perfetto", golden)
	if out != again {
		t.Fatal("perfetto output is not deterministic across invocations")
	}

	dir := t.TempDir()
	traceFile := filepath.Join(dir, "trace.json")
	code, _, errb := exec(t, "perfetto", "-o", traceFile, golden)
	if code != 0 || !strings.Contains(errb, traceFile) {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out {
		t.Fatal("-o file differs from stdout bytes")
	}
}

// TestTrendTable aggregates synthetic BENCH_*.json reports: baseline first,
// then prN ascending by number (pr10 after pr2), with deltas vs the previous
// column and "-" for a workload a report skipped.
func TestTrendTable(t *testing.T) {
	dir := t.TempDir()
	write := func(name, workloads string) {
		body := fmt.Sprintf(`{"schema":"mcbench/perf/v1","quick":true,"seed":1,"go":"go1.24.0","workloads":[%s]}`, workloads)
		if err := os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	row := func(wl string, pps float64) string {
		return fmt.Sprintf(`{"workload":%q,"ops":10,"accesses":10,"wall_ns":10,"virtual_ns":10,"pages_per_sec":%g,"ns_per_access":1}`, wl, pps)
	}
	write("baseline", row("ycsb-a", 1000))
	write("pr2", row("ycsb-a", 2000)+","+row("kvstore", 500))
	write("pr10", row("ycsb-a", 3000)+","+row("kvstore", 600))

	code, out, _ := exec(t, "trend", dir)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 workloads
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	header := strings.Fields(lines[1])
	wantHeader := []string{"workload", "baseline", "pr2", "pr10"}
	if len(header) != 4 || header[1] != "baseline" || header[2] != "pr2" || header[3] != "pr10" {
		t.Fatalf("column order = %v, want %v", header, wantHeader)
	}
	if !strings.Contains(lines[2], "ycsb-a") ||
		!strings.Contains(lines[2], "2000 (+100.0%)") || !strings.Contains(lines[2], "3000 (+50.0%)") {
		t.Fatalf("ycsb-a row wrong:\n%s", out)
	}
	// kvstore is absent from the baseline: first column "-", and pr10's
	// delta compares against pr2 (the previous report that measured it).
	kv := lines[3]
	if !strings.Contains(kv, "kvstore") || !strings.Contains(kv, "-") ||
		!strings.Contains(kv, "600 (+20.0%)") {
		t.Fatalf("kvstore row wrong:\n%s", out)
	}
}

// TestTrendRejectsCorruptReport: one unparseable BENCH_*.json fails the whole
// aggregation — this is the CI gate against a silently rotten baseline.
func TestTrendRejectsCorruptReport(t *testing.T) {
	dir := t.TempDir()
	good := `{"schema":"mcbench/perf/v1","quick":true,"seed":1,"go":"go1.24.0","workloads":[{"workload":"ycsb-a","ops":10,"accesses":10,"wall_ns":10,"virtual_ns":10,"pages_per_sec":1000,"ns_per_access":1}]}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_baseline.json"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_pr3.json"), []byte(`{"schema":"wrong/v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := exec(t, "trend", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "BENCH_pr3.json") {
		t.Fatalf("stderr does not name the corrupt file: %q", errb)
	}

	if code, _, _ := exec(t, "trend", t.TempDir()); code != 1 {
		t.Fatal("empty directory should fail (no reports)")
	}
}

// TestTrendOnRepoRoot parses every checked-in BENCH_*.json — the same
// invocation CI runs as the trend gate.
func TestTrendOnRepoRoot(t *testing.T) {
	code, out, errb := exec(t, "trend", "../..")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, want := range []string{"baseline", "pr6", "pr9", "ycsb-a", "motivation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("repo-root trend missing %q:\n%s", want, out)
		}
	}
}

// TestDivergeCLI drives the audit-bisection subcommand on synthetic trails.
func TestDivergeCLI(t *testing.T) {
	dir := t.TempDir()
	line := func(op int, mem string) string {
		return fmt.Sprintf(`{"op":%d,"vtime_ns":%d,"hashes":{"mem":"%s","clock":"c"}}`, op, op*10, mem) + "\n"
	}
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	if err := os.WriteFile(a, []byte(line(100, "x")+line(200, "y")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(line(100, "x")+line(200, "y")), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := exec(t, "diverge", a, b)
	if code != 0 || !strings.Contains(out, "identical") {
		t.Fatalf("identical trails: exit %d, out %q", code, out)
	}

	if err := os.WriteFile(b, []byte(line(100, "x")+line(200, "Z")), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = exec(t, "diverge", a, b)
	if code != 1 {
		t.Fatalf("diverged trails: exit %d, want 1", code)
	}
	for _, want := range []string{"checkpoint 1", "op 200", "mem"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diverge output missing %q:\n%s", want, out)
		}
	}

	code, _, errOut := exec(t, "diverge", a)
	if code != 2 || !strings.Contains(errOut, "usage") {
		t.Fatalf("missing-arg usage: exit %d, stderr %q", code, errOut)
	}
	code, _, errOut = exec(t, "diverge", a, filepath.Join(dir, "missing.jsonl"))
	if code != 1 {
		t.Fatalf("missing file: exit %d, want 1 (%s)", code, errOut)
	}
}
