// mcmetrics inspects the deterministic metrics exports that mcsim -metrics
// and mcbench -metrics write: it validates a file against the schema and
// renders a human-readable summary (histogram quantiles, counters, trace
// tail), a flat CSV for plotting, or — for exports carrying the optional
// observability sections — per-page lifecycle timelines, ping-pong rankings
// and the windowed occupancy time series.
//
// Usage:
//
//	mcmetrics out.json                   # validate + summarize
//	mcmetrics -validate out.json         # schema check only (CI smoke)
//	mcmetrics -csv out.json              # histogram buckets as CSV
//	mcmetrics -run fig10/multiclock@10ms out.json   # one run only
//	mcmetrics timeline 0x7f0000 out.json # one page's Fig. 4 span walk
//	mcmetrics timeline 2/0x1000 out.json # page in address space 2
//	mcmetrics pingpong --top 5 out.json  # worst migration ping-pongers
//	mcmetrics series out.json            # time-series windows as CSV
//	mcmetrics slo out.json               # SLO compliance + burn-rate report
//	mcmetrics perfetto -o t.json out.json# rebuild the Perfetto timeline
//	mcmetrics trend .                    # pages/sec trajectory across the
//	                                     # checked-in BENCH_*.json reports
//	mcmetrics diverge a.jsonl b.jsonl    # bisect two -audit trails to the
//	                                     # first diverging checkpoint
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"multiclock/internal/bench"
	"multiclock/internal/metrics"
	"multiclock/internal/sim"
	"multiclock/internal/slo"
	"multiclock/internal/snapshot"
	"multiclock/internal/traceexport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: argv (without the program name) in,
// exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "timeline":
			return cmdTimeline(args[1:], stdout, stderr)
		case "pingpong":
			return cmdPingpong(args[1:], stdout, stderr)
		case "series":
			return cmdSeries(args[1:], stdout, stderr)
		case "slo":
			return cmdSLO(args[1:], stdout, stderr)
		case "perfetto":
			return cmdPerfetto(args[1:], stdout, stderr)
		case "trend":
			return cmdTrend(args[1:], stdout, stderr)
		case "diverge":
			return cmdDiverge(args[1:], stdout, stderr)
		}
	}
	return cmdSummary(args, stdout, stderr)
}

// loadRuns reads and validates an export, optionally filtered to one label.
// On failure it reports to stderr and returns nil.
func loadRuns(path, runFilter string, stderr io.Writer) ([]metrics.RunExport, *metrics.Export) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "mcmetrics: %v\n", err)
		return nil, nil
	}
	ex, err := metrics.ReadExport(data)
	if err != nil {
		fmt.Fprintf(stderr, "mcmetrics: %s: %v\n", path, err)
		return nil, nil
	}
	runs := ex.Runs
	if runFilter != "" {
		runs = nil
		for _, r := range ex.Runs {
			if r.Label == runFilter {
				runs = append(runs, r)
			}
		}
		if len(runs) == 0 {
			fmt.Fprintf(stderr, "mcmetrics: no run labeled %q (have %s)\n", runFilter, labels(ex.Runs))
			return nil, nil
		}
	}
	return runs, ex
}

// cmdSummary is the original flag-driven path: validate, CSV, or summary.
func cmdSummary(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcmetrics", flag.ContinueOnError)
	fs.SetOutput(stderr)
	validateOnly := fs.Bool("validate", false, "schema-check the export and exit (0 = valid)")
	csv := fs.Bool("csv", false, "print histogram buckets as CSV instead of the summary")
	runFilter := fs.String("run", "", "restrict output to the run with this label")
	events := fs.Int("events", 10, "trace events to show per run in the summary")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mcmetrics [-validate|-csv] [-run label] <export.json>")
		fmt.Fprintln(stderr, "       mcmetrics timeline|pingpong|series [flags] ... <export.json>")
		return 2
	}
	path := fs.Arg(0)
	runs, ex := loadRuns(path, *runFilter, stderr)
	if runs == nil {
		return 1
	}
	if *validateOnly {
		fmt.Fprintf(stdout, "%s: valid (version %d, %d runs)\n", path, ex.Version, len(ex.Runs))
		return 0
	}
	if *csv {
		fmt.Fprint(stdout, metrics.ExportCSV(runs...))
		return 0
	}
	for i, r := range runs {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		summarize(stdout, r, *events)
	}
	return 0
}

// cmdTimeline prints one page's lifecycle span walk from each selected run.
func cmdTimeline(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcmetrics timeline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runFilter := fs.String("run", "", "restrict output to the run with this label")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: mcmetrics timeline [-run label] <[space/]va> <export.json>")
		return 2
	}
	space, anySpace, va, err := parsePageSpec(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "mcmetrics: %v\n", err)
		return 2
	}
	runs, _ := loadRuns(fs.Arg(1), *runFilter, stderr)
	if runs == nil {
		return 1
	}
	found := 0
	for _, r := range runs {
		if r.Lifecycle == nil {
			continue
		}
		for i := range r.Lifecycle.Pages {
			p := &r.Lifecycle.Pages[i]
			if p.VA != va || (!anySpace && p.Space != space) {
				continue
			}
			found++
			fmt.Fprintf(stdout, "== %s  page %d/%#x  (%d migration(s), %d event(s))\n",
				r.Label, p.Space, p.VA, p.Migrations, len(p.Events))
			for _, ev := range p.Events {
				fmt.Fprintf(stdout, "  %14s  %-16s %-16s node %d\n",
					sim.Duration(ev.At).String(), ev.State, ev.Reason, ev.Node)
			}
		}
	}
	if found == 0 {
		fmt.Fprintf(stderr, "mcmetrics: page %s not traced in any selected run (was -lifecycle on and the page sampled?)\n", fs.Arg(0))
		return 1
	}
	return 0
}

// cmdPingpong ranks traced pages by successful migrations — the pages
// bouncing between tiers — and prints the top N per run.
func cmdPingpong(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcmetrics pingpong", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runFilter := fs.String("run", "", "restrict output to the run with this label")
	top := fs.Int("top", 10, "pages to show per run")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 1 || *top < 1 {
		fmt.Fprintln(stderr, "usage: mcmetrics pingpong [-run label] [--top N] <export.json>")
		return 2
	}
	runs, _ := loadRuns(fs.Arg(0), *runFilter, stderr)
	if runs == nil {
		return 1
	}
	shown := false
	for _, r := range runs {
		if r.Lifecycle == nil {
			continue
		}
		shown = true
		// Exported pages are (space,va)-sorted, so a stable selection sort
		// by migrations descending inherits the (space,va) tie-break.
		ranked := make([]*metrics.PageTimeline, 0, len(r.Lifecycle.Pages))
		for i := range r.Lifecycle.Pages {
			if r.Lifecycle.Pages[i].Migrations > 0 {
				ranked = append(ranked, &r.Lifecycle.Pages[i])
			}
		}
		for i := 0; i < len(ranked) && i < *top; i++ {
			best := i
			for j := i + 1; j < len(ranked); j++ {
				if ranked[j].Migrations > ranked[best].Migrations {
					best = j
				}
			}
			// Rotate (not swap) to keep the (space,va) order among ties.
			p := ranked[best]
			copy(ranked[i+1:best+1], ranked[i:best])
			ranked[i] = p
		}
		fmt.Fprintf(stdout, "== %s  (%d traced page(s), %d with migrations)\n",
			r.Label, len(r.Lifecycle.Pages), len(ranked))
		if len(ranked) == 0 {
			fmt.Fprintln(stdout, "  no migrations recorded")
			continue
		}
		fmt.Fprintf(stdout, "  %4s %6s %18s %11s %7s\n", "rank", "space", "va", "migrations", "events")
		for i := 0; i < len(ranked) && i < *top; i++ {
			p := ranked[i]
			fmt.Fprintf(stdout, "  %4d %6d %#18x %11d %7d\n",
				i+1, p.Space, p.VA, p.Migrations, len(p.Events))
		}
	}
	if !shown {
		fmt.Fprintln(stderr, "mcmetrics: no run in the export carries a lifecycle section (run with -lifecycle)")
		return 1
	}
	return 0
}

// cmdSeries flattens the windowed time series to CSV: one row per
// (window, node), with the window-global deltas and DRAM hit ratio repeated
// on each row so a plotting tool needs no joins.
func cmdSeries(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcmetrics series", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runFilter := fs.String("run", "", "restrict output to the run with this label")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mcmetrics series [-run label] <export.json>")
		return 2
	}
	runs, _ := loadRuns(fs.Arg(0), *runFilter, stderr)
	if runs == nil {
		return 1
	}
	shown := false
	fmt.Fprintln(stdout, "run,window,start_ns,end_ns,node,tier,free_frames,low_distance,"+
		"anon_inactive,anon_active,anon_promote,file_inactive,file_active,file_promote,unevictable,"+
		"reads_dram,reads_pm,writes_dram,writes_pm,promotions,demotions,migrate_fails,"+
		"swap_outs,swap_ins,pages_scanned,dram_hit")
	for _, r := range runs {
		if r.Series == nil {
			continue
		}
		shown = true
		for i := range r.Series.Windows {
			w := &r.Series.Windows[i]
			for _, n := range w.Nodes {
				fmt.Fprintf(stdout, "%s,%d,%d,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f\n",
					r.Label, w.Index, w.Start, w.End, n.Node, n.Tier, n.Free, n.LowDistance,
					n.AnonInactive, n.AnonActive, n.AnonPromote,
					n.FileInactive, n.FileActive, n.FilePromote, n.Unevictable,
					w.ReadsDRAM, w.ReadsPM, w.WritesDRAM, w.WritesPM,
					w.Promotions, w.Demotions, w.MigrateFails,
					w.SwapOuts, w.SwapIns, w.PagesScanned, w.DRAMHitRatio())
			}
		}
	}
	if !shown {
		fmt.Fprintln(stderr, "mcmetrics: no run in the export carries a series section (run with -series)")
		return 1
	}
	return 0
}

// cmdSLO renders the human burn-rate report for every selected run that
// carries an slo section (mcsim/mcbench -slo ... -metrics out.json).
func cmdSLO(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcmetrics slo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runFilter := fs.String("run", "", "restrict output to the run with this label")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mcmetrics slo [-run label] <export.json>")
		return 2
	}
	runs, _ := loadRuns(fs.Arg(0), *runFilter, stderr)
	if runs == nil {
		return 1
	}
	shown := false
	for _, r := range runs {
		if r.SLO == nil {
			continue
		}
		shown = true
		fmt.Fprint(stdout, slo.Format(r.Label, r.SLO))
	}
	if !shown {
		fmt.Fprintln(stderr, "mcmetrics: no run in the export carries an slo section (run with -slo)")
		return 1
	}
	return 0
}

// cmdPerfetto rebuilds the Perfetto/Chrome trace-event timeline from an
// export after the fact — the same bytes mcsim/mcbench -trace-out would have
// written for the selected runs. Open the result in ui.perfetto.dev.
func cmdPerfetto(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcmetrics perfetto", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runFilter := fs.String("run", "", "restrict output to the run with this label")
	out := fs.String("o", "", "write the trace to this file instead of stdout")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mcmetrics perfetto [-run label] [-o trace.json] <export.json>")
		return 2
	}
	runs, _ := loadRuns(fs.Arg(0), *runFilter, stderr)
	if runs == nil {
		return 1
	}
	trace := traceexport.Build(runs)
	if *out == "" {
		if _, err := stdout.Write(trace); err != nil {
			fmt.Fprintf(stderr, "mcmetrics: %v\n", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(*out, trace, 0o644); err != nil {
		fmt.Fprintf(stderr, "mcmetrics: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "trace: perfetto timeline written to %s\n", *out)
	return 0
}

// cmdTrend aggregates every BENCH_*.json perf report in a directory into the
// per-workload pages/sec trajectory, oldest report first. Any file matching
// the pattern that fails to parse is a hard error — CI runs this over the
// repo root so a corrupt checked-in baseline can't silently drop out of the
// perf gate.
func cmdTrend(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcmetrics trend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "usage: mcmetrics trend [dir]")
		return 2
	}
	dir := "."
	if fs.NArg() == 1 {
		dir = fs.Arg(0)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		fmt.Fprintf(stderr, "mcmetrics: %v\n", err)
		return 1
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "mcmetrics: no BENCH_*.json reports in %s\n", dir)
		return 1
	}
	entries := make([]bench.TrendEntry, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintf(stderr, "mcmetrics: %v\n", err)
			return 1
		}
		rep, err := bench.ParsePerf(data)
		if err != nil {
			fmt.Fprintf(stderr, "mcmetrics: %s: %v\n", p, err)
			return 1
		}
		name := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
		entries = append(entries, bench.TrendEntry{Name: name, Report: rep})
	}
	bench.SortTrend(entries)
	fmt.Fprint(stdout, bench.FormatTrend(entries))
	return 0
}

// cmdDiverge bisects two audit trails (the JSONL files mcsim/mcbench write
// under -audit) to the first checkpoint where any subsystem hash differs —
// turning "two runs that should match don't" into the op, virtual time and
// subsystems of the first divergence. Exit 0 means identical trails.
func cmdDiverge(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcmetrics diverge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: mcmetrics diverge <a.jsonl> <b.jsonl>")
		return 2
	}
	trails := make([][]snapshot.AuditRecord, 2)
	for i := 0; i < 2; i++ {
		f, err := os.Open(fs.Arg(i))
		if err != nil {
			fmt.Fprintf(stderr, "mcmetrics: %v\n", err)
			return 1
		}
		trails[i], err = snapshot.ReadAudit(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "mcmetrics: %s: %v\n", fs.Arg(i), err)
			return 1
		}
	}
	d := snapshot.Diverge(trails[0], trails[1])
	fmt.Fprintln(stdout, d.String())
	if d == nil {
		return 0
	}
	return 1
}

// parsePageSpec parses "va" or "space/va"; va accepts 0x-prefixed hex or
// decimal. A bare va matches the page in any address space.
func parsePageSpec(s string) (space int32, anySpace bool, va uint64, err error) {
	vaStr := s
	anySpace = true
	if i := strings.IndexByte(s, '/'); i >= 0 {
		sp, err := strconv.ParseInt(s[:i], 10, 32)
		if err != nil || sp < 0 {
			return 0, false, 0, fmt.Errorf("bad page spec %q: space must be a non-negative integer", s)
		}
		space, anySpace, vaStr = int32(sp), false, s[i+1:]
	}
	va, err = strconv.ParseUint(vaStr, 0, 64)
	if err != nil {
		return 0, false, 0, fmt.Errorf("bad page spec %q: va must be 0x-hex or decimal", s)
	}
	return space, anySpace, va, nil
}

func labels(runs []metrics.RunExport) string {
	out := make([]string, len(runs))
	for i, r := range runs {
		out[i] = r.Label
	}
	return strings.Join(out, ", ")
}

func summarize(stdout io.Writer, r metrics.RunExport, maxEvents int) {
	fmt.Fprintf(stdout, "== %s  (virtual time %v)\n", r.Label, sim.Duration(r.Now))
	if len(r.Counters) > 0 {
		fmt.Fprintln(stdout, "counters:")
		for _, c := range r.Counters {
			fmt.Fprintf(stdout, "  %-28s %12d\n", c.Name, c.Value)
		}
	}
	if len(r.Gauges) > 0 {
		fmt.Fprintln(stdout, "gauges:")
		for _, g := range r.Gauges {
			fmt.Fprintf(stdout, "  %-28s last=%d max=%d\n", g.Name, g.Last, g.Max)
		}
	}
	if len(r.Histograms) > 0 {
		fmt.Fprintln(stdout, "histograms:")
		fmt.Fprintf(stdout, "  %-28s %10s %14s %12s %12s %12s %12s\n", "name", "n", "mean", "p50", "p99", "p999", "max")
		for _, h := range r.Histograms {
			mean := int64(0)
			if h.N > 0 {
				mean = h.Sum / h.N
			}
			fmt.Fprintf(stdout, "  %-28s %10d %14d %12d %12d %12d %12d\n",
				h.Name, h.N, mean, h.P50, h.P99, h.P999, h.Max)
		}
		fmt.Fprintln(stdout, "  (quantiles interpolate within log2 buckets, clamped to [min, max])")
	}
	if len(r.Vmstat) > 0 {
		fmt.Fprintln(stdout, "vmstat:")
		for _, c := range r.Vmstat {
			fmt.Fprintf(stdout, "  %-28s %12d\n", c.Name, c.Value)
		}
	}
	if s := r.Series; s != nil {
		fmt.Fprintf(stdout, "series: %d window(s) of %v (see `mcmetrics series`)\n",
			len(s.Windows), sim.Duration(s.WindowNS))
	}
	if l := r.Lifecycle; l != nil {
		fmt.Fprintf(stdout, "lifecycle: %d traced page(s), sample_mod=%d (see `mcmetrics timeline`, `mcmetrics pingpong`)\n",
			len(l.Pages), l.SampleMod)
	}
	if se := r.SLO; se != nil {
		met := 0
		for _, o := range se.Objectives {
			if o.Met {
				met++
			}
		}
		fmt.Fprintf(stdout, "slo: %d/%d objective(s) met (see `mcmetrics slo`)\n", met, len(se.Objectives))
	}
	if f := r.Faults; f != nil {
		fmt.Fprintf(stdout, "faults: %d injected window(s), %d dropped\n", len(f.Windows), f.Dropped)
	}
	if t := r.Trace; t != nil {
		fmt.Fprintf(stdout, "trace: %d events (capacity %d, %d dropped)\n", len(t.Events), t.Capacity, t.Dropped)
		start := len(t.Events) - maxEvents
		if start < 0 {
			start = 0
		}
		if start > 0 {
			fmt.Fprintf(stdout, "  ... %d earlier events\n", start)
		}
		for _, ev := range t.Events[start:] {
			fmt.Fprintf(stdout, "  %14s %-10s", sim.Duration(ev.At).String(), ev.Kind)
			switch ev.Kind {
			case "promote", "demote":
				fmt.Fprintf(stdout, " node %d -> %d, %d page(s)", ev.From, ev.To, ev.Pages)
			case "scan":
				fmt.Fprintf(stdout, " %s work=%v", ev.Name, sim.Duration(ev.Work))
			case "fault", "hint-fault":
				fmt.Fprintf(stdout, " va=%#x", ev.VA)
			}
			fmt.Fprintln(stdout)
		}
	}
}
