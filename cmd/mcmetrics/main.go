// mcmetrics inspects the deterministic metrics exports that mcsim -metrics
// and mcbench -metrics write: it validates a file against the schema and
// renders a human-readable summary (histogram quantiles, counters, trace
// tail) or a flat CSV for plotting.
//
// Usage:
//
//	mcmetrics out.json                   # validate + summarize
//	mcmetrics -validate out.json         # schema check only (CI smoke)
//	mcmetrics -csv out.json              # histogram buckets as CSV
//	mcmetrics -run fig10/multiclock@10ms out.json   # one run only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multiclock/internal/metrics"
	"multiclock/internal/sim"
)

func main() {
	validateOnly := flag.Bool("validate", false, "schema-check the export and exit (0 = valid)")
	csv := flag.Bool("csv", false, "print histogram buckets as CSV instead of the summary")
	runFilter := flag.String("run", "", "restrict output to the run with this label")
	events := flag.Int("events", 10, "trace events to show per run in the summary")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mcmetrics [-validate|-csv] [-run label] <export.json>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcmetrics: %v\n", err)
		os.Exit(1)
	}
	ex, err := metrics.ReadExport(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcmetrics: %s: %v\n", path, err)
		os.Exit(1)
	}

	runs := ex.Runs
	if *runFilter != "" {
		runs = nil
		for _, r := range ex.Runs {
			if r.Label == *runFilter {
				runs = append(runs, r)
			}
		}
		if len(runs) == 0 {
			fmt.Fprintf(os.Stderr, "mcmetrics: no run labeled %q (have %s)\n", *runFilter, labels(ex.Runs))
			os.Exit(1)
		}
	}

	if *validateOnly {
		fmt.Printf("%s: valid (version %d, %d runs)\n", path, ex.Version, len(ex.Runs))
		return
	}
	if *csv {
		fmt.Print(metrics.ExportCSV(runs...))
		return
	}
	for i, r := range runs {
		if i > 0 {
			fmt.Println()
		}
		summarize(r, *events)
	}
}

func labels(runs []metrics.RunExport) string {
	out := make([]string, len(runs))
	for i, r := range runs {
		out[i] = r.Label
	}
	return strings.Join(out, ", ")
}

func summarize(r metrics.RunExport, maxEvents int) {
	fmt.Printf("== %s  (virtual time %v)\n", r.Label, sim.Duration(r.Now))
	if len(r.Counters) > 0 {
		fmt.Println("counters:")
		for _, c := range r.Counters {
			fmt.Printf("  %-28s %12d\n", c.Name, c.Value)
		}
	}
	if len(r.Gauges) > 0 {
		fmt.Println("gauges:")
		for _, g := range r.Gauges {
			fmt.Printf("  %-28s last=%d max=%d\n", g.Name, g.Last, g.Max)
		}
	}
	if len(r.Histograms) > 0 {
		fmt.Println("histograms:")
		fmt.Printf("  %-28s %10s %14s %12s %12s %12s\n", "name", "n", "mean", "~p50", "~p99", "max")
		for _, h := range r.Histograms {
			mean := int64(0)
			if h.N > 0 {
				mean = h.Sum / h.N
			}
			fmt.Printf("  %-28s %10d %14d %12d %12d %12d\n",
				h.Name, h.N, mean, quantile(h, 0.5), quantile(h, 0.99), h.Max)
		}
		fmt.Println("  (quantiles are log2-bucket upper bounds: exact within 2x)")
	}
	if len(r.Vmstat) > 0 {
		fmt.Println("vmstat:")
		for _, c := range r.Vmstat {
			fmt.Printf("  %-28s %12d\n", c.Name, c.Value)
		}
	}
	if t := r.Trace; t != nil {
		fmt.Printf("trace: %d events (capacity %d, %d dropped)\n", len(t.Events), t.Capacity, t.Dropped)
		start := len(t.Events) - maxEvents
		if start < 0 {
			start = 0
		}
		if start > 0 {
			fmt.Printf("  ... %d earlier events\n", start)
		}
		for _, ev := range t.Events[start:] {
			fmt.Printf("  %14s %-10s", sim.Duration(ev.At).String(), ev.Kind)
			switch ev.Kind {
			case "promote", "demote":
				fmt.Printf(" node %d -> %d, %d page(s)", ev.From, ev.To, ev.Pages)
			case "scan":
				fmt.Printf(" %s work=%v", ev.Name, sim.Duration(ev.Work))
			case "fault", "hint-fault":
				fmt.Printf(" va=%#x", ev.VA)
			}
			fmt.Println()
		}
	}
}

// quantile re-estimates a quantile from exported buckets (the in-memory
// Histogram.Quantile over the wire format).
func quantile(h metrics.HistExport, q float64) int64 {
	if h.N == 0 {
		return 0
	}
	rank := int64(q * float64(h.N))
	if rank >= h.N {
		rank = h.N - 1
	}
	var seen int64
	for _, b := range h.Buckets {
		seen += b.Count
		if seen > rank {
			if b.LE > h.Max {
				return h.Max
			}
			return b.LE
		}
	}
	return h.Max
}
