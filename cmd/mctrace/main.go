// mctrace reproduces the paper's motivation measurements interactively:
// page-access heatmaps over sampled pages (Fig. 1 style) and the
// observation/performance window frequency analysis (Fig. 2 style) for the
// built-in synthetic workload patterns.
//
// Usage:
//
//	mctrace -pattern rubis -samples 50 -csv
//	mctrace -pattern xalan -analysis
package main

import (
	"flag"
	"fmt"
	"os"

	"multiclock/internal/machine"
	"multiclock/internal/pagetable"
	"multiclock/internal/policy"
	"multiclock/internal/sim"
	"multiclock/internal/trace"
)

func main() {
	name := flag.String("pattern", "rubis", "rubis | specpower | xalan | lusearch")
	samples := flag.Int("samples", 50, "pages to sample for the heatmap")
	duration := flag.Duration("duration", 0, "virtual run length (default 2s)")
	csv := flag.Bool("csv", false, "emit the heatmap matrix as CSV")
	analysis := flag.Bool("analysis", false, "run the Fig. 2 window-frequency analysis instead")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	var pattern trace.Pattern
	found := false
	for _, p := range trace.Patterns {
		if p.Name == *name {
			pattern, found = p, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "mctrace: unknown pattern %q\n", *name)
		os.Exit(2)
	}

	dur := 2 * sim.Second
	if *duration > 0 {
		dur = sim.Duration(duration.Nanoseconds())
	}
	// Scale the preset's phase geometry to the requested duration.
	pattern.Phase = sim.Duration(float64(pattern.Phase) * float64(dur) / float64(20*sim.Second))
	if pattern.Phase <= 0 {
		pattern.Phase = dur / 8
	}

	cfg := machine.DefaultConfig()
	cfg.Seed = *seed
	m := machine.New(cfg, policy.NewStatic())
	as := m.NewSpace()

	if *analysis {
		wf := trace.NewWindowFreq(dur/12, dur/12)
		m.Attach(wf)
		trace.RunPattern(m, as, pattern, dur, *seed)
		res := wf.Result()
		fmt.Printf("pattern %s over %v\n", pattern.Name, dur)
		fmt.Printf("single-access pages: %d, mean next-window accesses %.2f\n", res.SinglePages, res.SingleMean)
		fmt.Printf("multi-access pages:  %d, mean next-window accesses %.2f\n", res.MultiPages, res.MultiMean)
		return
	}

	// The pattern VMA is the first mapping in the space, so its VPNs are
	// deterministic: plan the samples before running.
	probe := as.Mmap(1, false, "probe")
	base := probe.End + 1
	rng := sim.NewRNG(*seed ^ 77)
	n := *samples
	if n > pattern.Pages {
		n = pattern.Pages
	}
	var vpns []pagetable.VPN
	for _, idx := range rng.Perm(pattern.Pages)[:n] {
		vpns = append(vpns, base+pagetable.VPN(idx))
	}
	h := trace.NewHeatmap(vpns, []int32{as.ID}, dur/40)
	m.Attach(h)
	trace.RunPattern(m, as, pattern, dur, *seed)

	if *csv {
		fmt.Print(h.CSV())
	} else {
		fmt.Print(h.Render())
	}
}
