package graph

import (
	"math"
	"testing"

	"multiclock/internal/machine"
	"multiclock/internal/policy"
)

func newM() *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{4096}
	cfg.Mem.PMNodes = []int{16384}
	cfg.OpCost = 0
	return machine.New(cfg, policy.NewStatic())
}

// buildFromEdges builds a graph from explicit undirected edges.
func buildFromEdges(edges []Edge, n int) (*machine.Machine, *Graph) {
	m := newM()
	return m, Build(m, edges, n, 7)
}

// hostAdj reproduces the symmetrized, deduped adjacency in host memory.
func hostAdj(edges []Edge, n int) [][]int32 {
	adj := make([][]int32, n)
	seen := make([]map[int32]bool, n)
	for i := range seen {
		seen[i] = map[int32]bool{}
	}
	add := func(u, v int32) {
		if !seen[u][v] {
			seen[u][v] = true
			adj[u] = append(adj[u], v)
		}
	}
	for _, e := range edges {
		add(e.U, e.V)
		add(e.V, e.U)
	}
	return adj
}

var diamond = []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}}

func TestBuildCSRShape(t *testing.T) {
	_, g := buildFromEdges(diamond, 5)
	if g.N != 5 || g.M != 10 { // symmetrized
		t.Fatalf("n=%d m=%d", g.N, g.M)
	}
	if g.Degree(0) != 2 || g.Degree(3) != 3 || g.Degree(4) != 1 {
		t.Fatal("degrees wrong")
	}
	// Adjacency sorted and deduped.
	var prev int32 = -1
	g.Neighbors(3, func(v int32, _ int) {
		if v <= prev {
			t.Fatal("adjacency not sorted/deduped")
		}
		prev = v
	})
	if g.FootprintPages() <= 0 {
		t.Fatal("footprint")
	}
	if g.String() == "" {
		t.Fatal("String")
	}
}

func TestBuildDedupes(t *testing.T) {
	_, g := buildFromEdges([]Edge{{0, 1}, {0, 1}, {1, 0}}, 2)
	if g.M != 2 {
		t.Fatalf("m=%d, want 2 after dedupe+symmetrize", g.M)
	}
}

func TestBFSDistancesMatchReference(t *testing.T) {
	edges := GenerateEdges(GenConfig{Vertices: 200, Degree: 4, Seed: 5})
	m, g := buildFromEdges(edges, 200)
	parent := g.BFS(0)
	_ = m
	// Reference BFS on host adjacency.
	adj := hostAdj(edges, 200)
	dist := make([]int, 200)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int32{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	for v := 0; v < 200; v++ {
		if (dist[v] == -1) != (parent[v] == -1) {
			t.Fatalf("reachability mismatch at %d", v)
		}
		if v != 0 && parent[v] >= 0 {
			// Parent must be exactly one level above.
			if dist[parent[v]] != dist[v]-1 {
				t.Fatalf("parent of %d at wrong level", v)
			}
		}
	}
	if parent[0] != 0 {
		t.Fatal("source parent")
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	edges := GenerateEdges(GenConfig{Vertices: 150, Degree: 4, Seed: 11})
	_, g := buildFromEdges(edges, 150)
	got := g.SSSP(0, 32)

	// Reference Dijkstra over the same CSR (reading weights via Peek-like
	// traversal must match — reconstruct weights from the graph itself).
	type arc struct {
		v int32
		w int32
	}
	adj := make([][]arc, g.N)
	for u := int32(0); int(u) < g.N; u++ {
		g.Neighbors(u, func(v int32, e int) {
			adj[u] = append(adj[u], arc{v, g.Weight(e)})
		})
	}
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = math.MaxInt64
	}
	dist[0] = 0
	visited := make([]bool, g.N)
	for {
		u, best := -1, int64(math.MaxInt64)
		for i, d := range dist {
			if !visited[i] && d < best {
				u, best = i, d
			}
		}
		if u < 0 {
			break
		}
		visited[u] = true
		for _, a := range adj[u] {
			if nd := dist[u] + int64(a.w); nd < dist[a.v] {
				dist[a.v] = nd
			}
		}
	}
	for v := 0; v < g.N; v++ {
		want := dist[v]
		if want == math.MaxInt64 {
			if got[v] != infDist {
				t.Fatalf("vertex %d should be unreachable", v)
			}
			continue
		}
		if int64(got[v]) != want {
			t.Fatalf("sssp[%d] = %d, want %d", v, got[v], want)
		}
	}
}

func TestPageRankProperties(t *testing.T) {
	edges := GenerateEdges(GenConfig{Vertices: 300, Degree: 5, Kronecker: true, Seed: 3})
	_, g := buildFromEdges(edges, 300)
	scores := g.PageRank(10)
	var sum float64
	for _, s := range scores {
		if s < 0 {
			t.Fatal("negative score")
		}
		sum += s
	}
	// Scores sum to ≈1 (dangling mass leaks slightly; tolerance covers it).
	if sum < 0.5 || sum > 1.01 {
		t.Fatalf("score sum %v", sum)
	}
	// A hub (max degree vertex) should outscore the median vertex.
	hub, hubDeg := 0, 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(int32(v)); d > hubDeg {
			hub, hubDeg = v, d
		}
	}
	above := 0
	for _, s := range scores {
		if scores[hub] >= s {
			above++
		}
	}
	if float64(above)/float64(g.N) < 0.95 {
		t.Fatalf("hub not near the top (beats %d/%d)", above, g.N)
	}
}

func TestCCMatchesUnionFind(t *testing.T) {
	// Two deliberate components plus random edges inside each half.
	var edges []Edge
	for i := int32(0); i < 49; i++ {
		edges = append(edges, Edge{i, i + 1}) // chain 0..49
	}
	for i := int32(50); i < 99; i++ {
		edges = append(edges, Edge{i, i + 1}) // chain 50..99
	}
	_, g := buildFromEdges(edges, 100)
	comp := g.CC()
	for v := 0; v < 50; v++ {
		if comp[v] != comp[0] {
			t.Fatalf("vertex %d not in component of 0", v)
		}
	}
	for v := 50; v < 100; v++ {
		if comp[v] != comp[50] {
			t.Fatalf("vertex %d not in component of 50", v)
		}
	}
	if comp[0] == comp[50] {
		t.Fatal("components merged")
	}
}

func TestBCPathGraph(t *testing.T) {
	// Path 0-1-2-3-4: exact BC from all sources (undirected, unnormalized,
	// directed-pairs accumulation like Brandes) gives the middle vertex
	// the highest score.
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	_, g := buildFromEdges(edges, 5)
	bc := g.BC([]int32{0, 1, 2, 3, 4})
	if !(bc[2] > bc[1] && bc[2] > bc[3] && bc[1] > bc[0] && bc[3] > bc[4]) {
		t.Fatalf("path BC shape wrong: %v", bc)
	}
	// Path graph: vertex 2 lies on 0-3,0-4,1-3,1-4 (and reverses) plus
	// endpoints' pairs: exact value 8 for directed pair counting.
	if math.Abs(bc[2]-8) > 1e-9 {
		t.Fatalf("bc[2] = %v, want 8", bc[2])
	}
}

func TestTCCountsKnownGraphs(t *testing.T) {
	// A triangle plus a pendant: exactly 1 triangle.
	_, g := buildFromEdges([]Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}}, 4)
	if got := g.TC(); got != 1 {
		t.Fatalf("TC = %d, want 1", got)
	}
	// K4 has 4 triangles.
	_, k4 := buildFromEdges([]Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 4)
	if got := k4.TC(); got != 4 {
		t.Fatalf("K4 TC = %d, want 4", got)
	}
	// A path has none.
	_, p := buildFromEdges([]Edge{{0, 1}, {1, 2}, {2, 3}}, 4)
	if got := p.TC(); got != 0 {
		t.Fatalf("path TC = %d, want 0", got)
	}
}

func TestGeneratorShapes(t *testing.T) {
	uni := GenerateEdges(GenConfig{Vertices: 1000, Degree: 8, Seed: 1})
	if len(uni) != 8000 {
		t.Fatalf("uniform edges = %d", len(uni))
	}
	for _, e := range uni {
		if e.U == e.V || e.U < 0 || int(e.U) >= 1000 || e.V < 0 || int(e.V) >= 1000 {
			t.Fatalf("bad edge %+v", e)
		}
	}
	kron := GenerateEdges(GenConfig{Vertices: 1024, Degree: 8, Kronecker: true, Seed: 1})
	if len(kron) != 8192 {
		t.Fatalf("kron edges = %d", len(kron))
	}
	// Kronecker graphs are skewed: max degree far above average.
	deg := make(map[int32]int)
	for _, e := range kron {
		deg[e.U]++
		deg[e.V]++
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 64 { // average is 16
		t.Fatalf("kronecker max degree %d, expected heavy skew", maxDeg)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := GenerateEdges(GenConfig{Vertices: 100, Degree: 4, Kronecker: true, Seed: 9})
	b := GenerateEdges(GenConfig{Vertices: 100, Degree: 4, Kronecker: true, Seed: 9})
	if len(a) != len(b) {
		t.Fatal("length differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("edge stream differs")
		}
	}
}

func TestGenerateBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GenerateEdges(GenConfig{Vertices: 1, Degree: 1})
}

func TestKernelsChargeSimulatedAccesses(t *testing.T) {
	m, g := buildFromEdges(diamond, 5)
	before := m.Mem.Counters.TotalAccesses()
	g.BFS(0)
	if m.Mem.Counters.TotalAccesses() == before {
		t.Fatal("BFS issued no simulated accesses")
	}
}

func TestGenerateOnMachine(t *testing.T) {
	m := newM()
	g := Generate(m, GenConfig{Vertices: 500, Degree: 4, Seed: 2})
	if g.N != 500 || g.M == 0 {
		t.Fatal("Generate")
	}
	if m.Mem.Counters.MinorFaults == 0 {
		t.Fatal("load phase faulted nothing")
	}
}

func TestBFSUnreachableComponent(t *testing.T) {
	// Vertex 3 is isolated.
	_, g := buildFromEdges([]Edge{{0, 1}, {1, 2}}, 4)
	parent := g.BFS(0)
	if parent[3] != -1 {
		t.Fatal("isolated vertex reported reachable")
	}
	if parent[1] != 0 && parent[1] != 2 {
		t.Fatal("parent of 1")
	}
}

func TestSSSPUnreachable(t *testing.T) {
	_, g := buildFromEdges([]Edge{{0, 1}}, 3)
	dist := g.SSSP(0, 16)
	if dist[2] != infDist {
		t.Fatalf("unreachable distance = %d", dist[2])
	}
	if dist[0] != 0 {
		t.Fatal("source distance")
	}
}

func TestSSSPDeltaInvariance(t *testing.T) {
	edges := GenerateEdges(GenConfig{Vertices: 120, Degree: 4, Seed: 21})
	_, g := buildFromEdges(edges, 120)
	a := g.SSSP(0, 1)
	_, g2 := buildFromEdges(edges, 120)
	b := g2.SSSP(0, 1024)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("delta changed distances at %d: %d vs %d", v, a[v], b[v])
		}
	}
}

func TestPageRankUniformOnRegularGraph(t *testing.T) {
	// A cycle is 2-regular: all scores equal.
	var edges []Edge
	const n = 50
	for i := int32(0); i < n; i++ {
		edges = append(edges, Edge{i, (i + 1) % n})
	}
	_, g := buildFromEdges(edges, n)
	scores := g.PageRank(20)
	for v := 1; v < n; v++ {
		if math.Abs(scores[v]-scores[0]) > 1e-9 {
			t.Fatalf("regular graph scores differ: %v vs %v", scores[v], scores[0])
		}
	}
}

func TestCCSingletons(t *testing.T) {
	// No edges at all: every vertex is its own component.
	_, g := buildFromEdges([]Edge{{0, 1}}, 5) // vertices 2,3,4 isolated
	comp := g.CC()
	if comp[2] != 2 || comp[3] != 3 || comp[4] != 4 {
		t.Fatalf("singletons mislabeled: %v", comp)
	}
	if comp[0] != comp[1] {
		t.Fatal("edge endpoints split")
	}
}

func TestBCStarGraph(t *testing.T) {
	// Star: center 0 lies on every pair path; leaves have zero BC.
	edges := []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
	_, g := buildFromEdges(edges, 5)
	bc := g.BC([]int32{0, 1, 2, 3, 4})
	if bc[0] <= 0 {
		t.Fatal("center has no centrality")
	}
	for v := 1; v < 5; v++ {
		if bc[v] != 0 {
			t.Fatalf("leaf %d has centrality %v", v, bc[v])
		}
	}
	// Exact: center lies on 4×3 = 12 directed leaf pairs.
	if math.Abs(bc[0]-12) > 1e-9 {
		t.Fatalf("bc[0] = %v, want 12", bc[0])
	}
}
