// Package graph is the GAP Benchmark Suite substrate (§V-B): CSR graphs
// stored in simulated memory, the uniform and Kronecker (RMAT) generators,
// and the six GAPBS kernels — BFS, SSSP, PageRank, Connected Components,
// Betweenness Centrality, and Triangle Counting. The graph is loaded into
// (simulated) memory first and the kernels then run over the
// memory-resident representation, exactly the two-phase shape the paper
// describes.
package graph

import (
	"fmt"
	"sort"

	"multiclock/internal/machine"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
	"multiclock/internal/simdata"
)

// Edge is one directed edge.
type Edge struct {
	U, V int32
}

// GenConfig shapes a synthetic graph.
type GenConfig struct {
	// Vertices is the vertex count.
	Vertices int
	// Degree is the average out-degree (edges = Vertices × Degree).
	Degree int
	// Kronecker selects the RMAT generator (GAPBS's default synthetic
	// graph); false gives a uniform random graph.
	Kronecker bool
	Seed      uint64
}

// GenerateEdges produces the edge list for cfg.
func GenerateEdges(cfg GenConfig) []Edge {
	if cfg.Vertices <= 1 || cfg.Degree <= 0 {
		panic("graph: need at least 2 vertices and positive degree")
	}
	rng := sim.NewRNG(cfg.Seed)
	m := cfg.Vertices * cfg.Degree
	edges := make([]Edge, 0, m)
	if cfg.Kronecker {
		// RMAT with GAPBS's (A,B,C) = (0.57, 0.19, 0.19).
		bits := 0
		for 1<<bits < cfg.Vertices {
			bits++
		}
		n := int32(1) << bits
		for len(edges) < m {
			var u, v int32
			for b := 0; b < bits; b++ {
				p := rng.Float64()
				switch {
				case p < 0.57: // quadrant A: (0,0)
				case p < 0.76: // B: (0,1)
					v |= 1 << b
				case p < 0.95: // C: (1,0)
					u |= 1 << b
				default: // D: (1,1)
					u |= 1 << b
					v |= 1 << b
				}
			}
			if int(u) < cfg.Vertices && int(v) < cfg.Vertices && u != v {
				edges = append(edges, Edge{u, v})
			}
			_ = n
		}
	} else {
		for len(edges) < m {
			u := int32(rng.Intn(cfg.Vertices))
			v := int32(rng.Intn(cfg.Vertices))
			if u != v {
				edges = append(edges, Edge{u, v})
			}
		}
	}
	return edges
}

// Graph is a CSR graph in simulated memory. Offsets and targets (and
// weights for SSSP) are simulated arrays; building the graph touches them
// with writes, which is the GAPBS load phase.
type Graph struct {
	N int
	M int

	m  *machine.Machine
	as *pagetable.AddressSpace

	offsets *simdata.Array[int64] // N+1
	targets *simdata.Array[int32] // M
	weights *simdata.Array[int32] // M, SSSP edge weights
}

// Build constructs a CSR graph from edges, symmetrizing (every edge in
// both directions, as GAPBS does for its synthetic graphs), sorting and
// deduplicating adjacency lists, and writing the result into simulated
// memory on m.
func Build(m *machine.Machine, edges []Edge, n int, seed uint64) *Graph {
	// Symmetrize and dedupe in host memory (the builder's scratch), then
	// stream into simulated arrays (the load phase the machine observes).
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	total := 0
	for u := range adj {
		l := adj[u]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		out := l[:0]
		var prev int32 = -1
		for _, v := range l {
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
		adj[u] = out
		total += len(out)
	}

	as := m.NewSpace()
	g := &Graph{N: n, M: total, m: m, as: as}
	g.offsets = simdata.NewArray[int64](m, as, "csr-offsets", n+1, 8)
	g.targets = simdata.NewArray[int32](m, as, "csr-targets", max(total, 1), 4)
	g.weights = simdata.NewArray[int32](m, as, "csr-weights", max(total, 1), 4)

	rng := sim.NewRNG(seed ^ 0x5eed)
	pos := 0
	for u := 0; u < n; u++ {
		g.offsets.Set(u, int64(pos))
		for _, v := range adj[u] {
			g.targets.Set(pos, v)
			g.weights.Set(pos, int32(rng.Intn(255))+1)
			pos++
		}
	}
	g.offsets.Set(n, int64(pos))
	return g
}

// Generate builds a synthetic graph per cfg directly on machine m.
func Generate(m *machine.Machine, cfg GenConfig) *Graph {
	return Build(m, GenerateEdges(cfg), cfg.Vertices, cfg.Seed)
}

// FootprintPages returns the simulated pages the CSR arrays span.
func (g *Graph) FootprintPages() int {
	return g.offsets.Pages() + g.targets.Pages() + g.weights.Pages()
}

// Space returns the graph's address space.
func (g *Graph) Space() *pagetable.AddressSpace { return g.as }

// Degree returns the out-degree of u (simulated reads of the offset
// array).
func (g *Graph) Degree(u int32) int {
	return int(g.offsets.Get(int(u)+1) - g.offsets.Get(int(u)))
}

// Neighbors calls fn for each neighbor of u with the edge index, charging
// the CSR reads.
func (g *Graph) Neighbors(u int32, fn func(v int32, edge int)) {
	lo := g.offsets.Get(int(u))
	hi := g.offsets.Get(int(u) + 1)
	for e := lo; e < hi; e++ {
		fn(g.targets.Get(int(e)), int(e))
	}
}

// Weight returns the weight of edge index e (simulated read).
func (g *Graph) Weight(e int) int32 { return g.weights.Get(e) }

// newVertexArray allocates an n-vertex scratch array in the graph's space.
func vertexArray[T any](g *Graph, name string, elemSize int) *simdata.Array[T] {
	return simdata.NewArray[T](g.m, g.as, name, g.N, elemSize)
}

func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, %d pages)", g.N, g.M, g.FootprintPages())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
