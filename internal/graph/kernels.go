package graph

import "math"

// The six GAPBS kernels. Each charges its data-structure traffic to the
// simulated memory; small control state (frontier queues, bucket lists)
// lives in host memory, standing in for the cache-resident working set a
// tuned implementation keeps hot.

// infDist marks unreached vertices.
const infDist = math.MaxInt32

// BFS runs breadth-first search from source and returns the parent array
// (host copy). Unreached vertices have parent -1.
func (g *Graph) BFS(source int32) []int32 {
	parent := vertexArray[int32](g, "bfs-parent", 4)
	for i := 0; i < g.N; i++ {
		parent.Set(i, -1)
	}
	parent.Set(int(source), source)
	frontier := []int32{source}
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			g.Neighbors(u, func(v int32, _ int) {
				if parent.Get(int(v)) == -1 {
					parent.Set(int(v), u)
					next = append(next, v)
				}
			})
		}
		frontier = next
	}
	out := make([]int32, g.N)
	for i := range out {
		out[i] = parent.Peek(i)
	}
	return out
}

// SSSP runs delta-stepping single-source shortest paths from source over
// the weighted graph and returns the distance array; unreached vertices
// get infDist.
func (g *Graph) SSSP(source int32, delta int32) []int32 {
	if delta <= 0 {
		delta = 64
	}
	dist := vertexArray[int32](g, "sssp-dist", 4)
	for i := 0; i < g.N; i++ {
		dist.Set(i, infDist)
	}
	dist.Set(int(source), 0)

	buckets := map[int][]int32{0: {source}}
	maxBucket := 0
	for b := 0; b <= maxBucket; b++ {
		for len(buckets[b]) > 0 {
			work := buckets[b]
			buckets[b] = nil
			for _, u := range work {
				du := dist.Get(int(u))
				if int(du/delta) != b {
					continue // stale entry
				}
				g.Neighbors(u, func(v int32, e int) {
					nd := du + g.Weight(e)
					if nd < dist.Get(int(v)) {
						dist.Set(int(v), nd)
						nb := int(nd / delta)
						buckets[nb] = append(buckets[nb], v)
						if nb > maxBucket {
							maxBucket = nb
						}
					}
				})
			}
		}
	}
	out := make([]int32, g.N)
	for i := range out {
		out[i] = dist.Peek(i)
	}
	return out
}

// PageRank runs iters pull-style PageRank iterations with damping 0.85 and
// returns the scores.
func (g *Graph) PageRank(iters int) []float64 {
	const damping = 0.85
	scores := vertexArray[float64](g, "pr-scores", 8)
	outgoing := vertexArray[float64](g, "pr-contrib", 8)
	init := 1 / float64(g.N)
	for i := 0; i < g.N; i++ {
		scores.Set(i, init)
	}
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(g.N)
		for u := 0; u < g.N; u++ {
			d := g.Degree(int32(u))
			if d > 0 {
				outgoing.Set(u, scores.Get(u)/float64(d))
			} else {
				outgoing.Set(u, 0)
			}
		}
		for u := 0; u < g.N; u++ {
			var sum float64
			g.Neighbors(int32(u), func(v int32, _ int) {
				sum += outgoing.Get(int(v))
			})
			scores.Set(u, base+damping*sum)
		}
	}
	out := make([]float64, g.N)
	for i := range out {
		out[i] = scores.Peek(i)
	}
	return out
}

// CC computes connected components by label propagation and returns the
// component label of every vertex (the minimum vertex id in its
// component).
func (g *Graph) CC() []int32 {
	comp := vertexArray[int32](g, "cc-comp", 4)
	for i := 0; i < g.N; i++ {
		comp.Set(i, int32(i))
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < g.N; u++ {
			cu := comp.Get(u)
			best := cu
			g.Neighbors(int32(u), func(v int32, _ int) {
				if cv := comp.Get(int(v)); cv < best {
					best = cv
				}
			})
			if best < cu {
				comp.Set(u, best)
				changed = true
			}
		}
	}
	out := make([]int32, g.N)
	for i := range out {
		out[i] = comp.Peek(i)
	}
	return out
}

// BC computes approximate betweenness centrality using Brandes' algorithm
// from the given source vertices and returns the centrality scores.
func (g *Graph) BC(sources []int32) []float64 {
	bc := vertexArray[float64](g, "bc-scores", 8)
	sigma := vertexArray[float64](g, "bc-sigma", 8)
	depth := vertexArray[int32](g, "bc-depth", 4)
	delta := vertexArray[float64](g, "bc-delta", 8)
	for i := 0; i < g.N; i++ {
		bc.Set(i, 0)
	}
	for _, s := range sources {
		for i := 0; i < g.N; i++ {
			sigma.Set(i, 0)
			depth.Set(i, -1)
			delta.Set(i, 0)
		}
		sigma.Set(int(s), 1)
		depth.Set(int(s), 0)
		levels := [][]int32{{s}}
		for len(levels[len(levels)-1]) > 0 {
			cur := levels[len(levels)-1]
			var next []int32
			d := int32(len(levels) - 1)
			for _, u := range cur {
				su := sigma.Get(int(u))
				g.Neighbors(u, func(v int32, _ int) {
					dv := depth.Get(int(v))
					if dv == -1 {
						depth.Set(int(v), d+1)
						dv = d + 1
						next = append(next, v)
					}
					if dv == d+1 {
						sigma.Set(int(v), sigma.Get(int(v))+su)
					}
				})
			}
			levels = append(levels, next)
		}
		// Dependency accumulation, deepest level first.
		for l := len(levels) - 1; l > 0; l-- {
			for _, u := range levels[l] {
				du := depth.Get(int(u))
				var acc float64
				g.Neighbors(u, func(v int32, _ int) {
					if depth.Get(int(v)) == du+1 {
						sv := sigma.Get(int(v))
						if sv > 0 {
							acc += sigma.Get(int(u)) / sv * (1 + delta.Get(int(v)))
						}
					}
				})
				delta.Set(int(u), acc)
				if u != s {
					bc.Set(int(u), bc.Get(int(u))+acc)
				}
			}
		}
	}
	out := make([]float64, g.N)
	for i := range out {
		out[i] = bc.Peek(i)
	}
	return out
}

// TC counts triangles using ordered adjacency intersection (each triangle
// counted once).
func (g *Graph) TC() int64 {
	var count int64
	for u := int32(0); int(u) < g.N; u++ {
		// Gather u's larger neighbors (ordered adjacency).
		var uAdj []int32
		g.Neighbors(u, func(v int32, _ int) {
			if v > u {
				uAdj = append(uAdj, v)
			}
		})
		for _, v := range uAdj {
			// Intersect uAdj with v's larger neighbors.
			var vAdj []int32
			g.Neighbors(v, func(w int32, _ int) {
				if w > v {
					vAdj = append(vAdj, w)
				}
			})
			i, j := 0, 0
			for i < len(uAdj) && j < len(vAdj) {
				switch {
				case uAdj[i] < vAdj[j]:
					i++
				case uAdj[i] > vAdj[j]:
					j++
				default:
					count++
					i++
					j++
				}
			}
		}
	}
	return count
}
