package trace

import (
	"strings"
	"testing"

	"multiclock/internal/core"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/policy"
	"multiclock/internal/sim"
)

func staticMachine(dram, pm int) *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{dram}
	cfg.Mem.PMNodes = []int{pm}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	return machine.New(cfg, policy.NewStatic())
}

func TestHeatmapRecordsWindows(t *testing.T) {
	m := staticMachine(512, 512)
	as := m.NewSpace()
	v := as.Mmap(10, false, "x")
	vpns := []pagetable.VPN{v.Start, v.Start + 1}
	h := NewHeatmap(vpns, []int32{as.ID}, 1*sim.Second)
	m.Attach(h)

	m.Access(as, v.Start, false)
	m.Access(as, v.Start, false)
	m.Access(as, v.Start+1, false)
	m.Access(as, v.Start+5, false) // unsampled
	m.Compute(1500 * sim.Millisecond)
	m.Access(as, v.Start, false)

	if h.Count(0, 0) != 2 || h.Count(1, 0) != 1 {
		t.Fatalf("window 0 counts: %d, %d", h.Count(0, 0), h.Count(1, 0))
	}
	if h.Count(0, 1) != 1 {
		t.Fatalf("window 1 count: %d", h.Count(0, 1))
	}
	if h.Count(5, 0) != 0 || h.Count(0, 99) != 0 {
		t.Fatal("out-of-range counts must be 0")
	}
	if h.Windows() != 2 {
		t.Fatalf("windows = %d", h.Windows())
	}
	out := h.Render()
	if !strings.Contains(out, "2 sampled pages") {
		t.Fatalf("render:\n%s", out)
	}
	csv := h.CSV()
	if !strings.HasPrefix(csv, "page,w0,w1") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestHeatmapIgnoresOtherSpaces(t *testing.T) {
	m := staticMachine(512, 512)
	as1 := m.NewSpace()
	as2 := m.NewSpace()
	v1 := as1.Mmap(1, false, "a")
	v2 := as2.Mmap(1, false, "b")
	h := NewHeatmap([]pagetable.VPN{v1.Start}, []int32{as1.ID}, sim.Second)
	m.Attach(h)
	m.Access(as2, v2.Start, false) // may share the VPN value
	if h.Count(0, 0) != 0 {
		t.Fatal("foreign space counted")
	}
}

func TestHeatmapBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHeatmap(nil, nil, 0)
}

func TestPromotionTrackerCountsAndReaccess(t *testing.T) {
	mc := core.New(core.DefaultConfig())
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{256}
	cfg.Mem.PMNodes = []int{1024}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	m := machine.New(cfg, mc)
	pt := NewPromotionTracker(20 * sim.Second).Bind(m)
	m.Attach(pt)

	as := m.NewSpace()
	v := as.Mmap(500, false, "data")
	for i := 0; i < 500; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	var hot []pagetable.VPN
	as.WalkVMA(v, func(vpn pagetable.VPN, pg *mem.Page) {
		if len(hot) < 16 && m.Mem.Tier(pg) == mem.TierPM {
			hot = append(hot, vpn)
		}
	})
	for round := 0; round < 10; round++ {
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
		m.Compute(1100 * sim.Millisecond)
	}
	if pt.TotalPromotions() == 0 {
		t.Fatal("tracker saw no promotions")
	}
	// The hot pages get re-accessed every round, so re-access % is high.
	if pct := pt.MeanReaccessPercent(); pct < 90 {
		t.Fatalf("re-access %% = %v, want ≥90 for always-hot pages", pct)
	}
	if len(pt.Promotions()) == 0 || len(pt.ReaccessPercent()) == 0 {
		t.Fatal("series empty")
	}
	if pt.Demotions() != m.Mem.Counters.Demotions {
		t.Fatalf("tracker demotions %d != counter %d", pt.Demotions(), m.Mem.Counters.Demotions)
	}
}

func TestPromotionTrackerUnbound(t *testing.T) {
	pt := NewPromotionTracker(0)
	if pt.Window != 20*sim.Second {
		t.Fatal("default window")
	}
	pt.OnMigrate(&mem.Page{}, 0, 1, 0) // unbound: must not panic
	if pt.TotalPromotions() != 0 {
		t.Fatal("unbound tracker counted")
	}
	if pt.MeanReaccessPercent() != 0 {
		t.Fatal("empty mean")
	}
}

func TestWindowFreqSeparatesClasses(t *testing.T) {
	m := staticMachine(2048, 2048)
	as := m.NewSpace()
	v := as.Mmap(20, false, "x")
	wf := NewWindowFreq(1*sim.Second, 1*sim.Second)
	m.Attach(wf)

	// Pages 0-4: multi-access in observation windows AND heavily accessed
	// in performance windows. Pages 10-14: single-access in observation,
	// barely touched after.
	for pair := 0; pair < 5; pair++ {
		// Observation half.
		for rep := 0; rep < 3; rep++ {
			for i := 0; i < 5; i++ {
				m.Access(as, v.Start+pagetable.VPN(i), false)
			}
		}
		for i := 10; i < 15; i++ {
			m.Access(as, v.Start+pagetable.VPN(i), false)
		}
		m.Compute(1 * sim.Second)
		// Performance half.
		for rep := 0; rep < 10; rep++ {
			for i := 0; i < 5; i++ {
				m.Access(as, v.Start+pagetable.VPN(i), false)
			}
		}
		m.Access(as, v.Start+10, false)
		// Advance to the next pair boundary.
		next := (sim.Time(pair) + 1) * sim.Time(2*sim.Second)
		m.Clock.AdvanceTo(next)
	}
	res := wf.Result()
	if res.MultiPages == 0 || res.SinglePages == 0 {
		t.Fatalf("classes empty: %+v", res)
	}
	if res.MultiMean <= res.SingleMean {
		t.Fatalf("multi-access pages must dominate: %+v", res)
	}
	if res.MultiMean < 5*res.SingleMean {
		t.Fatalf("expected a wide gap (paper's Fig. 2): %+v", res)
	}
}

func TestWindowFreqValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewWindowFreq(0, sim.Second)
}

func TestMultiFansOut(t *testing.T) {
	m := staticMachine(128, 128)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	h1 := NewHeatmap([]pagetable.VPN{v.Start}, []int32{as.ID}, sim.Second)
	h2 := NewHeatmap([]pagetable.VPN{v.Start}, []int32{as.ID}, sim.Second)
	m.Attach(Multi{h1, h2})
	m.Access(as, v.Start, false)
	if h1.Count(0, 0) != 1 || h2.Count(0, 0) != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestRunPatternProducesClassedAccesses(t *testing.T) {
	m := staticMachine(2048, 2048)
	as := m.NewSpace()
	p := PatternRUBiS
	p.Pages = 100
	p.OpGap = 10 * sim.Microsecond
	vma := RunPattern(m, as, p, 2*sim.Second, 1)
	if vma.Pages() != 100 {
		t.Fatal("population size")
	}
	if m.Ops < 1000 {
		t.Fatalf("pattern issued only %d ops", m.Ops)
	}
}

func TestRunPatternHeatmapShape(t *testing.T) {
	m := staticMachine(4096, 4096)
	as := m.NewSpace()
	p := PatternXalan
	p.Pages = 100
	p.OpGap = 5 * sim.Microsecond
	// Sample all pages.
	base := pagetable.VPN(1)
	_ = base
	var vpns []pagetable.VPN
	// RunPattern maps its own VMA; pre-compute by running once to learn
	// the VMA, then re-run with a fresh machine and matching sampling.
	vma := RunPattern(m, as, p, 100*sim.Millisecond, 1)
	m2 := staticMachine(4096, 4096)
	as2 := m2.NewSpace()
	for i := 0; i < p.Pages; i++ {
		vpns = append(vpns, vma.Start+pagetable.VPN(i))
	}
	h := NewHeatmap(vpns, []int32{as2.ID}, 1*sim.Second)
	m2.Attach(h)
	RunPattern(m2, as2, p, 10*sim.Second, 1)

	// DRAM-friendly rows (first 10%) must be consistently hotter than the
	// cold tail.
	hotTotal, coldTotal := int64(0), int64(0)
	for w := 0; w < h.Windows(); w++ {
		for r := 0; r < 10; r++ {
			hotTotal += h.Count(r, w)
		}
		for r := 90; r < 100; r++ {
			coldTotal += h.Count(r, w)
		}
	}
	if hotTotal < 10*coldTotal {
		t.Fatalf("hot rows %d vs cold rows %d — class structure missing", hotTotal, coldTotal)
	}
}

func TestPatternPresets(t *testing.T) {
	if len(Patterns) != 4 {
		t.Fatal("four presets expected (Fig. 1)")
	}
	for _, p := range Patterns {
		if p.Pages <= 0 || p.DRAMFriendly+p.TierFriendly >= 1 {
			t.Fatalf("preset %s malformed", p.Name)
		}
	}
}

func TestRunPatternValidation(t *testing.T) {
	m := staticMachine(128, 128)
	as := m.NewSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RunPattern(m, as, Pattern{Name: "bad"}, sim.Second, 1)
}
