package trace

import (
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// WindowFreq performs the Fig. 2 analysis: execution time is divided into
// (observation window, performance window) pairs; pages accessed exactly
// once in an observation window are compared against pages accessed
// multiple times, by their mean access counts in the following performance
// window. The paper's finding — multi-access pages are accessed much more
// afterwards — is MULTI-CLOCK's design hypothesis.
type WindowFreq struct {
	ObsWidth, PerfWidth sim.Duration

	curPair             int64
	obsCnt              map[uint64]int64 // page VA → obs-window accesses (current pair)
	perfCnt             map[uint64]int64 // page VA → perf-window accesses (current pair)
	finSingle, finMulti struct {
		pages    int64
		accesses int64
	}
}

// NewWindowFreq creates the analyzer with the given window widths.
func NewWindowFreq(obs, perf sim.Duration) *WindowFreq {
	if obs <= 0 || perf <= 0 {
		panic("trace: window widths must be positive")
	}
	return &WindowFreq{
		ObsWidth:  obs,
		PerfWidth: perf,
		obsCnt:    make(map[uint64]int64),
		perfCnt:   make(map[uint64]int64),
	}
}

// OnAccess implements machine.Observer.
func (w *WindowFreq) OnAccess(pg *mem.Page, write bool, now sim.Time) {
	period := int64(w.ObsWidth + w.PerfWidth)
	pair := int64(now) / period
	if pair != w.curPair {
		w.finishPair()
		w.curPair = pair
	}
	if int64(now)%period < int64(w.ObsWidth) {
		w.obsCnt[pg.VA]++
	} else {
		w.perfCnt[pg.VA]++
	}
}

// OnMigrate implements machine.Observer.
func (w *WindowFreq) OnMigrate(pg *mem.Page, from, to mem.NodeID, now sim.Time) {}

// OnFault implements machine.Observer.
func (w *WindowFreq) OnFault(pg *mem.Page, hint bool, now sim.Time) {}

// finishPair folds the current pair's counts into the aggregates.
func (w *WindowFreq) finishPair() {
	for va, oc := range w.obsCnt {
		pc := w.perfCnt[va]
		if oc == 1 {
			w.finSingle.pages++
			w.finSingle.accesses += pc
		} else if oc > 1 {
			w.finMulti.pages++
			w.finMulti.accesses += pc
		}
	}
	clear(w.obsCnt)
	clear(w.perfCnt)
}

// Result reports the Fig. 2 comparison.
type WindowFreqResult struct {
	SinglePages, MultiPages int64
	// MeanPerfAccesses is the average performance-window access count for
	// each class.
	SingleMean, MultiMean float64
}

// Result finalizes any open pair and returns the aggregate comparison.
func (w *WindowFreq) Result() WindowFreqResult {
	w.finishPair()
	r := WindowFreqResult{
		SinglePages: w.finSingle.pages,
		MultiPages:  w.finMulti.pages,
	}
	if r.SinglePages > 0 {
		r.SingleMean = float64(w.finSingle.accesses) / float64(r.SinglePages)
	}
	if r.MultiPages > 0 {
		r.MultiMean = float64(w.finMulti.accesses) / float64(r.MultiPages)
	}
	return r
}
