// Package trace provides the telemetry used by the paper's motivation and
// analysis experiments: page-access heatmaps over sampled pages (Fig. 1),
// observation/performance window frequency analysis (Fig. 2), promotion
// counts per time window (Fig. 8), and re-access percentages of recently
// promoted pages (Fig. 9). All of it hangs off the machine's Observer hook.
package trace

import (
	"fmt"
	"strings"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
	"multiclock/internal/stats"
)

// Multi fans Observer events out to several observers.
type Multi []machine.Observer

// OnAccess implements machine.Observer.
func (m Multi) OnAccess(pg *mem.Page, write bool, now sim.Time) {
	for _, o := range m {
		o.OnAccess(pg, write, now)
	}
}

// OnMigrate implements machine.Observer.
func (m Multi) OnMigrate(pg *mem.Page, from, to mem.NodeID, now sim.Time) {
	for _, o := range m {
		o.OnMigrate(pg, from, to, now)
	}
}

// OnFault implements machine.Observer.
func (m Multi) OnFault(pg *mem.Page, hint bool, now sim.Time) {
	for _, o := range m {
		o.OnFault(pg, hint, now)
	}
}

// Heatmap records access counts for a sampled set of pages over fixed time
// windows — the Fig. 1 measurement ("we randomly sampled pages from memory,
// assigned them unique identifiers, and traced the accesses").
type Heatmap struct {
	rows   map[uint64]int // page VA base → row
	window sim.Duration
	counts [][]int64 // [row][window]
	spaces map[int32]bool
}

// NewHeatmap samples the given VPNs of the given address-space IDs.
func NewHeatmap(vpns []pagetable.VPN, spaces []int32, window sim.Duration) *Heatmap {
	if window <= 0 {
		panic("trace: heatmap window must be positive")
	}
	h := &Heatmap{
		rows:   make(map[uint64]int, len(vpns)),
		window: window,
		counts: make([][]int64, len(vpns)),
		spaces: make(map[int32]bool, len(spaces)),
	}
	for i, v := range vpns {
		h.rows[v.Addr()] = i
	}
	for _, s := range spaces {
		h.spaces[s] = true
	}
	return h
}

// OnAccess implements machine.Observer.
func (h *Heatmap) OnAccess(pg *mem.Page, write bool, now sim.Time) {
	if !h.spaces[pg.Space] {
		return
	}
	row, ok := h.rows[pg.VA]
	if !ok {
		return
	}
	w := int(now / sim.Time(h.window))
	for len(h.counts[row]) <= w {
		h.counts[row] = append(h.counts[row], 0)
	}
	h.counts[row][w]++
}

// OnMigrate implements machine.Observer.
func (h *Heatmap) OnMigrate(pg *mem.Page, from, to mem.NodeID, now sim.Time) {}

// OnFault implements machine.Observer.
func (h *Heatmap) OnFault(pg *mem.Page, hint bool, now sim.Time) {}

// Windows returns the widest row length.
func (h *Heatmap) Windows() int {
	w := 0
	for _, row := range h.counts {
		if len(row) > w {
			w = len(row)
		}
	}
	return w
}

// Count returns the access count of sample row in window w.
func (h *Heatmap) Count(row, w int) int64 {
	if row < 0 || row >= len(h.counts) || w < 0 || w >= len(h.counts[row]) {
		return 0
	}
	return h.counts[row][w]
}

// Render draws the heatmap as ASCII art: one row per sampled page, darker
// glyphs for higher access intensity.
func (h *Heatmap) Render() string {
	glyphs := []byte(" .:-=+*#%@")
	windows := h.Windows()
	var max int64 = 1
	for _, row := range h.counts {
		for _, c := range row {
			if c > max {
				max = c
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "heatmap: %d sampled pages × %d windows of %v (max %d accesses)\n",
		len(h.counts), windows, h.window, max)
	for i, row := range h.counts {
		fmt.Fprintf(&b, "%3d |", i)
		for w := 0; w < windows; w++ {
			var c int64
			if w < len(row) {
				c = row[w]
			}
			idx := int(c * int64(len(glyphs)-1) / max)
			b.WriteByte(glyphs[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV emits the raw matrix for external plotting.
func (h *Heatmap) CSV() string {
	var b strings.Builder
	windows := h.Windows()
	b.WriteString("page")
	for w := 0; w < windows; w++ {
		fmt.Fprintf(&b, ",w%d", w)
	}
	b.WriteByte('\n')
	for i, row := range h.counts {
		fmt.Fprintf(&b, "%d", i)
		for w := 0; w < windows; w++ {
			var c int64
			if w < len(row) {
				c = row[w]
			}
			fmt.Fprintf(&b, ",%d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// tierFunc resolves a node to its memory tier.
type tierFunc func(mem.NodeID) mem.Tier

// PromotionTracker measures Fig. 8 (promotions per window) and Fig. 9
// (re-access percentage of recently promoted pages). Bind must be called
// with the machine before events arrive so migrations can be classified as
// promotions or demotions.
type PromotionTracker struct {
	Window sim.Duration

	promos *stats.WindowSeries
	tierOf tierFunc

	pending   map[*mem.Page]int // page → promotion window, until re-accessed
	promoted  map[int64]int64   // window → promotions
	reaccess  map[int64]int64   // window → promoted pages re-accessed
	demotions int64
}

// NewPromotionTracker uses the paper's 20-second windows by default.
func NewPromotionTracker(window sim.Duration) *PromotionTracker {
	if window <= 0 {
		window = 20 * sim.Second
	}
	return &PromotionTracker{
		Window:   window,
		promos:   stats.NewWindowSeries(int64(window)),
		pending:  make(map[*mem.Page]int),
		promoted: make(map[int64]int64),
		reaccess: make(map[int64]int64),
	}
}

// OnMigrate implements machine.Observer.
func (p *PromotionTracker) OnMigrate(pg *mem.Page, from, to mem.NodeID, now sim.Time) {
	if p.tierOf == nil {
		return
	}
	if p.tierOf(to) < p.tierOf(from) {
		w := int64(now) / int64(p.Window)
		p.promos.Count(int64(now))
		p.promoted[w]++
		p.pending[pg] = int(w)
	} else if p.tierOf(to) > p.tierOf(from) {
		p.demotions++
		delete(p.pending, pg)
	}
}

// Bind supplies the node→tier mapping (from the machine's memory system).
func (p *PromotionTracker) Bind(m *machine.Machine) *PromotionTracker {
	p.tierOf = func(id mem.NodeID) mem.Tier { return m.Mem.Nodes[id].Tier }
	return p
}

// OnAccess implements machine.Observer: the first access to a page after
// its promotion marks it re-accessed.
func (p *PromotionTracker) OnAccess(pg *mem.Page, write bool, now sim.Time) {
	w, ok := p.pending[pg]
	if !ok {
		return
	}
	delete(p.pending, pg)
	p.reaccess[int64(w)]++
}

// OnFault implements machine.Observer.
func (p *PromotionTracker) OnFault(pg *mem.Page, hint bool, now sim.Time) {}

// Promotions returns per-window promotion counts (Fig. 8 series).
func (p *PromotionTracker) Promotions() []float64 { return p.promos.Sums() }

// ReaccessPercent returns the per-window percentage of promoted pages that
// were re-accessed after promotion (Fig. 9 series).
func (p *PromotionTracker) ReaccessPercent() []float64 {
	n := p.promos.Windows()
	out := make([]float64, n)
	for w := 0; w < n; w++ {
		if total := p.promoted[int64(w)]; total > 0 {
			out[w] = 100 * float64(p.reaccess[int64(w)]) / float64(total)
		}
	}
	return out
}

// TotalPromotions returns the total promotions observed.
func (p *PromotionTracker) TotalPromotions() int64 {
	var t int64
	for _, c := range p.promoted {
		t += c
	}
	return t
}

// MeanReaccessPercent returns the overall re-access percentage.
func (p *PromotionTracker) MeanReaccessPercent() float64 {
	var promoted, re int64
	for w, c := range p.promoted {
		promoted += c
		re += p.reaccess[w]
	}
	if promoted == 0 {
		return 0
	}
	return 100 * float64(re) / float64(promoted)
}

// Demotions returns the demotion count observed.
func (p *PromotionTracker) Demotions() int64 { return p.demotions }
