package trace

import (
	"multiclock/internal/machine"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// The paper's Fig. 1/2 traces come from RUBiS, SPECpower, and two Dacapo
// workloads. Those applications (and their JVMs) are not reproducible
// here; per the substitution rule, Pattern generators synthesize access
// streams with the page-class structure §II-A identifies in them:
// DRAM-friendly pages (frequently accessed throughout), tier-friendly
// pages (bimodal: phases of heavy access alternating with idleness), and
// cold pages (rare accesses). The per-workload presets vary only the mix
// and the phase geometry, which is what the figures demonstrate.
type Pattern struct {
	Name string
	// Pages is the population size.
	Pages int
	// Fractions of each class; the remainder is cold.
	DRAMFriendly float64
	TierFriendly float64
	// Phase is the tier-friendly on/off phase length.
	Phase sim.Duration
	// PhaseGroups staggers tier-friendly pages into this many groups with
	// offset phases, so different pages are hot at different times.
	PhaseGroups int
	// OpGap is the think time between accesses.
	OpGap sim.Duration
}

// Presets loosely mirroring the four Fig. 1 workloads.
var (
	// PatternRUBiS: OLTP with a solid hot set and many bimodal pages.
	PatternRUBiS = Pattern{Name: "rubis", Pages: 400, DRAMFriendly: 0.15, TierFriendly: 0.35, Phase: 4 * sim.Second, PhaseGroups: 4, OpGap: 2 * sim.Microsecond}
	// PatternSPECpower: steady OLTP at 80% load — larger always-hot set.
	PatternSPECpower = Pattern{Name: "specpower", Pages: 400, DRAMFriendly: 0.3, TierFriendly: 0.2, Phase: 6 * sim.Second, PhaseGroups: 3, OpGap: 2 * sim.Microsecond}
	// PatternXalan: XML transform — strong phase behaviour.
	PatternXalan = Pattern{Name: "xalan", Pages: 400, DRAMFriendly: 0.1, TierFriendly: 0.5, Phase: 3 * sim.Second, PhaseGroups: 5, OpGap: 2 * sim.Microsecond}
	// PatternLusearch: search over a corpus — mostly cold with a small
	// hot index.
	PatternLusearch = Pattern{Name: "lusearch", Pages: 400, DRAMFriendly: 0.1, TierFriendly: 0.15, Phase: 5 * sim.Second, PhaseGroups: 2, OpGap: 2 * sim.Microsecond}
)

// Patterns lists the four presets in figure order.
var Patterns = []Pattern{PatternRUBiS, PatternSPECpower, PatternXalan, PatternLusearch}

// RunPattern drives the pattern on machine m for the given virtual
// duration, returning the VMA holding the page population (its VPNs are
// what a Heatmap should sample).
func RunPattern(m *machine.Machine, as *pagetable.AddressSpace, p Pattern, duration sim.Duration, seed uint64) *pagetable.VMA {
	if p.Pages <= 0 {
		panic("trace: pattern needs pages")
	}
	rng := sim.NewRNG(seed)
	vma := as.Mmap(p.Pages, false, "pattern-"+p.Name)
	// Touch everything once so the population exists.
	m.AccessRange(as, vma.Start, p.Pages, false, 1)

	nDRAM := int(float64(p.Pages) * p.DRAMFriendly)
	nTier := int(float64(p.Pages) * p.TierFriendly)
	groups := p.PhaseGroups
	if groups <= 0 {
		groups = 1
	}

	end := m.Clock.Now() + sim.Time(duration)
	for m.Clock.Now() < end {
		r := rng.Float64()
		var idx int
		switch {
		case r < 0.55:
			// DRAM-friendly class takes most accesses.
			idx = rng.Intn(maxInt(nDRAM, 1))
		case r < 0.93:
			// Tier-friendly: only pages whose group is in its hot phase
			// get accessed.
			if nTier == 0 {
				idx = rng.Intn(p.Pages)
				break
			}
			phase := int(m.Clock.Now()/sim.Time(p.Phase)) % groups
			gsize := maxInt(nTier/groups, 1)
			lo := nDRAM + phase*gsize
			idx = lo + rng.Intn(gsize)
			if idx >= nDRAM+nTier {
				idx = nDRAM + nTier - 1
			}
		default:
			// Cold tail.
			coldLo := nDRAM + nTier
			if coldLo >= p.Pages {
				coldLo = p.Pages - 1
			}
			idx = coldLo + rng.Intn(maxInt(p.Pages-coldLo, 1))
		}
		m.Access(as, vma.Start+pagetable.VPN(idx), rng.Intn(4) == 0)
		if p.OpGap > 0 {
			m.Compute(p.OpGap)
		}
		m.EndOp()
	}
	return vma
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
