package slo

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"multiclock/internal/metrics"
	"multiclock/internal/sim"
)

func TestParseCanonicalRoundTrip(t *testing.T) {
	cases := []struct {
		in, canonical string
	}{
		{
			"p99(access_latency_dram_read_ns) < 400ns over 10ms, 99.9%",
			"p99(access_latency_dram_read_ns) < 400ns over 10ms, 99.9%",
		},
		{
			// Defaulted compliance target, loose spacing.
			"p50(migration_latency_ns)<2us over 1ms",
			"p50(migration_latency_ns) < 2µs over 1ms, 99.9%",
		},
		{
			// Fractional quantile, multiple objectives, stray separators.
			" p99.9(daemon_pass_work_ns) < 1ms over 100ms, 95% ; p90(x_ns) < 500ns over 5ms ;",
			"p99.9(daemon_pass_work_ns) < 1ms over 100ms, 95%; p90(x_ns) < 500ns over 5ms, 99.9%",
		},
	}
	for _, c := range cases {
		sp, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := sp.String(); got != c.canonical {
			t.Fatalf("Parse(%q).String() = %q, want %q", c.in, got, c.canonical)
		}
		// The canonical form is a fixed point.
		again, err := Parse(sp.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", sp.String(), err)
		}
		if again.String() != c.canonical {
			t.Fatalf("canonical form is not a fixed point: %q", again.String())
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, in := range []string{
		"",
		" ; ",
		"p99(x) < 400ns",                      // missing window
		"p99 x < 400ns over 10ms",             // missing metric parens
		"p0(x) < 400ns over 10ms",             // quantile at 0
		"p100(x) < 400ns over 10ms",           // quantile at 100
		"p99(x) < abc over 10ms",              // bad threshold
		"p99(x) < 400ns over abc",             // bad window
		"p99(x) < 400ns over 10ms, 0%",        // zero compliance target
		"p99(x) < 400ns over 10ms, 101%",      // compliance target over 100
		"p99(Access) < 400ns over 10ms",       // uppercase metric
		"p99(x) < 400ns over 10ms, 99.9% foo", // trailing garbage
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

// buildRun drives one synthetic scenario: per 1ms window, 100 samples of
// which bad[i] are far above the 1000ns threshold. Returns the exported
// section.
func buildRun(t *testing.T, bad []int) *metrics.SLOExport {
	t.Helper()
	clock := sim.NewClock()
	reg := metrics.NewRegistry(0)
	sp, err := Parse("p99(lat_ns) < 1000ns over 1ms")
	if err != nil {
		t.Fatal(err)
	}
	eng := New(clock, reg, sp, 0)
	h := reg.Histogram("lat_ns")
	for _, nbad := range bad {
		for i := 0; i < 100-nbad; i++ {
			h.Observe(100) // bucket [64,127]: entirely under the threshold
		}
		for i := 0; i < nbad; i++ {
			h.Observe(1_000_000) // bucket [524288,1048575]: entirely over
		}
		clock.Advance(1 * sim.Millisecond)
	}
	eng.Stop()
	out := eng.Export()
	if err := metrics.ValidateSLOSections(out, nil); err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
	return out
}

func TestEngineComplianceTally(t *testing.T) {
	// 6 clean windows, 3 heavily violating, 1 clean.
	out := buildRun(t, []int{0, 0, 0, 0, 0, 0, 50, 50, 50, 0})
	if len(out.Objectives) != 1 {
		t.Fatalf("objectives = %d", len(out.Objectives))
	}
	o := out.Objectives[0]
	if o.Windows != 10 || o.CompliantWindows != 7 {
		t.Fatalf("windows %d/%d compliant, want 7/10", o.CompliantWindows, o.Windows)
	}
	if o.TotalEvents != 1000 || o.BadEvents != 150 {
		t.Fatalf("events %d/%d, want 150/1000", o.BadEvents, o.TotalEvents)
	}
	if o.CompliancePPM != 700_000 || o.Met {
		t.Fatalf("compliance %d ppm met=%v, want 700000/false", o.CompliancePPM, o.Met)
	}
	// Whole-run burn: 15% bad against a 1% budget = 15×.
	if o.BudgetBurnMilli != 15_000 {
		t.Fatalf("budget burn %d milli, want 15000", o.BudgetBurnMilli)
	}
}

func TestBurnRateAlertMergesConsecutiveWindows(t *testing.T) {
	out := buildRun(t, []int{0, 0, 0, 0, 0, 0, 50, 50, 50, 0})
	o := out.Objectives[0]
	if len(o.Alerts) != 1 {
		t.Fatalf("alerts = %+v, want one merged interval", o.Alerts)
	}
	a := o.Alerts[0]
	// Fires at window 6 (fast 50×, slow over windows 1-6 = 8.33×) through
	// window 8; window 9's fast burn is 0.
	if a.StartNS != 6_000_000 || a.EndNS != 9_000_000 || a.Windows != 3 {
		t.Fatalf("alert = %+v, want [6ms, 9ms) over 3 windows", a)
	}
	if a.PeakFastBurnMilli != 50_000 {
		t.Fatalf("peak fast burn %d, want 50000", a.PeakFastBurnMilli)
	}
	if a.PeakSlowBurnMilli < o.BurnThresholdMilli {
		t.Fatalf("peak slow burn %d below threshold", a.PeakSlowBurnMilli)
	}
}

func TestSlowBurnGateSuppressesIsolatedSpike(t *testing.T) {
	// One window with 7% bad: fast burn 7× clears the threshold, but the
	// slow (6-window) burn is 7/600 bad ≈ 1.17× — no alert.
	out := buildRun(t, []int{0, 0, 0, 0, 0, 7, 0, 0})
	o := out.Objectives[0]
	if len(o.Alerts) != 0 {
		t.Fatalf("isolated spike alerted: %+v", o.Alerts)
	}
	// The spike window itself is still non-compliant.
	if o.CompliantWindows != 7 {
		t.Fatalf("compliant windows %d, want 7", o.CompliantWindows)
	}
}

func TestEmptyWindowsAreCompliant(t *testing.T) {
	out := buildRun(t, []int{0, 0, 0}) // wait: every window has 100 good samples
	clockOnly := buildRunNoTraffic(t, 5)
	for _, o := range append(out.Objectives, clockOnly.Objectives...) {
		if o.CompliantWindows != o.Windows || !o.Met {
			t.Fatalf("clean run not fully compliant: %+v", o)
		}
	}
	if o := clockOnly.Objectives[0]; o.TotalEvents != 0 || o.BudgetBurnMilli != 0 {
		t.Fatalf("zero-traffic run tallied events: %+v", o)
	}
}

// buildRunNoTraffic advances n windows with no samples at all.
func buildRunNoTraffic(t *testing.T, n int) *metrics.SLOExport {
	t.Helper()
	clock := sim.NewClock()
	reg := metrics.NewRegistry(0)
	sp, err := Parse("p99(lat_ns) < 1000ns over 1ms")
	if err != nil {
		t.Fatal(err)
	}
	eng := New(clock, reg, sp, 0)
	clock.Advance(sim.Duration(n) * sim.Millisecond)
	eng.Stop()
	out := eng.Export()
	if err := metrics.ValidateSLOSections(out, nil); err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
	if out.Objectives[0].Windows != n {
		t.Fatalf("windows = %d, want %d", out.Objectives[0].Windows, n)
	}
	return out
}

func TestExportSynthesizesTrailingPartialWindow(t *testing.T) {
	clock := sim.NewClock()
	reg := metrics.NewRegistry(0)
	sp, _ := Parse("p99(lat_ns) < 1000ns over 1ms")
	eng := New(clock, reg, sp, 0)
	h := reg.Histogram("lat_ns")
	clock.Advance(1 * sim.Millisecond) // one full, empty window
	h.Observe(5_000)                   // lands in the partial window
	clock.Advance(300 * sim.Microsecond)
	o := eng.Export().Objectives[0]
	if o.Windows != 2 {
		t.Fatalf("windows = %d, want full + partial", o.Windows)
	}
	if o.TotalEvents != 1 || o.BadEvents != 1 {
		t.Fatalf("partial window events %d/%d, want 1/1", o.BadEvents, o.TotalEvents)
	}
	// Export is repeatable and does not mutate the engine.
	again := eng.Export().Objectives[0]
	if again.Windows != 2 || again.TotalEvents != 1 {
		t.Fatalf("second export diverged: %+v", again)
	}
	eng.Stop()
}

func TestEngineNeverAdvancesVirtualTime(t *testing.T) {
	run := func(withSLO bool) sim.Time {
		clock := sim.NewClock()
		reg := metrics.NewRegistry(0)
		var eng *Engine
		if withSLO {
			sp, _ := Parse("p99(lat_ns) < 1000ns over 700us; p50(lat_ns) < 100ns over 1ms")
			eng = New(clock, reg, sp, 0)
		}
		h := reg.Histogram("lat_ns")
		for i := 0; i < 10; i++ {
			h.Observe(int64(i) * 100)
			clock.Advance(500 * sim.Microsecond)
		}
		if eng != nil {
			eng.Stop()
		}
		clock.Drain()
		return clock.Now()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("SLO engine moved the clock: %v vs %v", a, b)
	}
}

func TestExportDeterministicBytes(t *testing.T) {
	render := func() []byte {
		out := buildRun(t, []int{0, 3, 0, 50, 50, 0, 0, 9})
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Fatal("equal runs exported different slo bytes")
	}
}

func TestFormatReport(t *testing.T) {
	out := buildRun(t, []int{0, 0, 0, 0, 0, 0, 50, 50, 50, 0})
	got := Format("mcsim/multiclock", out)
	for _, want := range []string{
		"mcsim/multiclock",
		"spec: p99(lat_ns) < 1µs over 1ms, 99.9%",
		"VIOLATED",
		"windows: 7/10 compliant (70%, target 99.9%)",
		"events: 150/1000 over threshold; budget burn 15.00x",
		"[6ms, 9ms) 3 windows, peak fast 50.00x",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("report missing %q:\n%s", want, got)
		}
	}
	clean := buildRunNoTraffic(t, 3)
	if rep := Format("x", clean); !strings.Contains(rep, "alerts: none") || !strings.Contains(rep, "MET") {
		t.Fatalf("clean report:\n%s", rep)
	}
}
