package slo

import (
	"fmt"
	"strings"
	"time"

	"multiclock/internal/metrics"
)

// Format renders one run's slo section as the human report behind
// `mcmetrics slo`: per-objective compliance, whole-run error-budget burn,
// and the alert timeline. All values derive from the section's integers, so
// equal sections render equal bytes.
func Format(label string, se *metrics.SLOExport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n  spec: %s\n", label, se.Spec)
	for _, o := range se.Objectives {
		verdict := "MET"
		if !o.Met {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(&b, "  %s: %s\n", o.Name, verdict)
		fmt.Fprintf(&b, "    windows: %d/%d compliant (%s%%, target %s%%)\n",
			o.CompliantWindows, o.Windows,
			formatPPMPercent(o.CompliancePPM), formatPPMPercent(o.TargetPPM))
		fmt.Fprintf(&b, "    events: %d/%d over threshold; budget burn %s\n",
			o.BadEvents, o.TotalEvents, formatBurn(o.BudgetBurnMilli))
		if len(o.Alerts) == 0 {
			fmt.Fprintf(&b, "    alerts: none\n")
			continue
		}
		fmt.Fprintf(&b, "    alerts (%d, burn >= %s fast+slow):\n",
			len(o.Alerts), formatBurn(o.BurnThresholdMilli))
		for _, a := range o.Alerts {
			fmt.Fprintf(&b, "      [%s, %s) %d windows, peak fast %s slow %s\n",
				time.Duration(a.StartNS), time.Duration(a.EndNS), a.Windows,
				formatBurn(a.PeakFastBurnMilli), formatBurn(a.PeakSlowBurnMilli))
		}
	}
	return b.String()
}

// formatBurn renders a milli burn rate as a multiplier ("6.25x").
func formatBurn(milli int64) string {
	return fmt.Sprintf("%d.%02dx", milli/1000, (milli%1000)/10)
}
