// Package slo is the virtual-time service-level-objective engine: it parses
// declarative latency objectives ("p99(access_latency_dram_read_ns) < 400ns
// over 10ms, 99.9%"), evaluates them deterministically over fixed windows of
// the simulated timeline, and produces Google-SRE-style multi-window
// multi-burn-rate alerts plus a whole-run compliance verdict.
//
// Like the timeseries sampler, evaluation is purely observational: each
// objective re-arms itself with plain clock.Schedule calls (not a
// sim.Daemon), so an SLO-instrumented run's simulated timeline is identical
// to an uninstrumented one. At every window boundary the engine diffs the
// target histogram's cumulative log2 bucket counts, recovering the window's
// sample distribution without keeping samples; the fraction of the window's
// samples above the threshold ("bad events", within-bucket linearly
// interpolated) drives both the window's compliance verdict and the burn
// rates. All arithmetic is integer (parts-per-million fractions, milli burn
// rates), so equal runs export equal bytes.
package slo

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"time"

	"multiclock/internal/metrics"
	"multiclock/internal/sim"
)

// Defaults for the spec's optional clauses and the engine's bounds.
const (
	// DefaultTargetPPM is the windowed-compliance target when the spec
	// omits a percentage: 99.9% of windows must meet the quantile bound.
	DefaultTargetPPM = 999_000
	// DefaultBurnThresholdMilli is the burn-rate firing threshold: 6× the
	// error budget (the SRE workbook's fast-burn page threshold).
	DefaultBurnThresholdMilli = 6000
	// FastWindows and SlowWindows are the two burn-rate lookbacks, in
	// evaluation windows; an alert fires only while both burn at or above
	// the threshold.
	FastWindows = 1
	SlowWindows = 6
	// DefaultMaxWindows bounds each objective's recorded windows.
	DefaultMaxWindows = 1 << 16
)

// Objective is one parsed latency objective.
type Objective struct {
	// Metric is the target histogram's registry name.
	Metric string
	// QuantilePPM is the bounded quantile in parts per million (990000 =
	// p99); ThresholdNS the latency bound; WindowNS the evaluation window.
	QuantilePPM int64
	ThresholdNS int64
	WindowNS    int64
	// TargetPPM is the required fraction of compliant windows.
	TargetPPM int64
	// BurnThresholdMilli is the burn-rate firing threshold in thousandths.
	BurnThresholdMilli int64
}

// Name returns the objective's canonical spec text.
func (o Objective) Name() string {
	return fmt.Sprintf("p%s(%s) < %s over %s, %s%%",
		formatPPMPercent(o.QuantilePPM), o.Metric,
		time.Duration(o.ThresholdNS), time.Duration(o.WindowNS),
		formatPPMPercent(o.TargetPPM))
}

// formatPPMPercent renders a parts-per-million fraction as a percentage with
// trailing zeros trimmed (990000 → "99", 999000 → "99.9").
func formatPPMPercent(ppm int64) string {
	s := strconv.FormatFloat(float64(ppm)/10_000, 'f', -1, 64)
	return s
}

// Spec is a parsed objective list.
type Spec struct {
	Objectives []Objective
}

// String returns the canonical spec text: objectives joined by "; ".
func (sp *Spec) String() string {
	names := make([]string, len(sp.Objectives))
	for i, o := range sp.Objectives {
		names[i] = o.Name()
	}
	return strings.Join(names, "; ")
}

// objectiveRE matches one objective clause:
//
//	p<quantile>(<metric>) < <duration> over <window>[, <pct>%]
var objectiveRE = regexp.MustCompile(
	`^p([0-9]+(?:\.[0-9]+)?)\(([a-z0-9_]+)\)\s*<\s*(\S+)\s+over\s+(\S+?)(?:\s*,\s*([0-9]+(?:\.[0-9]+)?)%)?$`)

// Parse parses a ';'-separated objective spec. The empty string is an
// error: callers gate on the flag being set.
func Parse(s string) (*Spec, error) {
	sp := &Spec{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		o, err := parseObjective(clause)
		if err != nil {
			return nil, err
		}
		sp.Objectives = append(sp.Objectives, o)
	}
	if len(sp.Objectives) == 0 {
		return nil, fmt.Errorf("slo: empty spec (want e.g. %q)",
			"p99(access_latency_dram_read_ns) < 400ns over 10ms, 99.9%")
	}
	return sp, nil
}

func parseObjective(clause string) (Objective, error) {
	m := objectiveRE.FindStringSubmatch(clause)
	if m == nil {
		return Objective{}, fmt.Errorf("slo: cannot parse objective %q (want %q)",
			clause, "pNN(metric) < 400ns over 10ms[, 99.9%]")
	}
	o := Objective{Metric: m[2], TargetPPM: DefaultTargetPPM, BurnThresholdMilli: DefaultBurnThresholdMilli}
	var err error
	if o.QuantilePPM, err = parsePercentPPM(m[1]); err != nil || o.QuantilePPM <= 0 || o.QuantilePPM >= 1_000_000 {
		return Objective{}, fmt.Errorf("slo: objective %q: quantile p%s outside (0, 100)", clause, m[1])
	}
	if o.ThresholdNS, err = parseDurationNS(m[3]); err != nil || o.ThresholdNS <= 0 {
		return Objective{}, fmt.Errorf("slo: objective %q: bad threshold %q", clause, m[3])
	}
	if o.WindowNS, err = parseDurationNS(m[4]); err != nil || o.WindowNS <= 0 {
		return Objective{}, fmt.Errorf("slo: objective %q: bad window %q", clause, m[4])
	}
	if m[5] != "" {
		if o.TargetPPM, err = parsePercentPPM(m[5]); err != nil || o.TargetPPM <= 0 || o.TargetPPM > 1_000_000 {
			return Objective{}, fmt.Errorf("slo: objective %q: compliance target %s%% outside (0, 100]", clause, m[5])
		}
	}
	return o, nil
}

// parsePercentPPM converts a percentage literal to parts per million.
func parsePercentPPM(s string) (int64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return int64(math.Round(f * 10_000)), nil
}

// parseDurationNS parses a Go duration literal to nanoseconds.
func parseDurationNS(s string) (int64, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return int64(d), nil
}

// window is one closed evaluation window's tally.
type window struct {
	start, end sim.Time
	total, bad int64
}

// evaluator tracks one objective against one registry histogram.
type evaluator struct {
	obj        Objective
	hist       *metrics.Histogram
	maxWindows int

	start sim.Time
	base  [65]int64

	windows []window
	dropped int64
	ev      *sim.Event
}

// Engine evaluates a Spec over one machine's registry on its virtual clock.
type Engine struct {
	spec  *Spec
	clock *sim.Clock
	evals []*evaluator
}

// New starts evaluating spec against reg's histograms on clock (the target
// instruments are get-or-create, so the engine may start before producers
// record anything). maxWindows <= 0 takes DefaultMaxWindows. Call Stop
// before draining the clock if evaluation should end earlier.
func New(clock *sim.Clock, reg *metrics.Registry, spec *Spec, maxWindows int) *Engine {
	if maxWindows <= 0 {
		maxWindows = DefaultMaxWindows
	}
	e := &Engine{spec: spec, clock: clock}
	for _, o := range spec.Objectives {
		ev := &evaluator{
			obj:        o,
			hist:       reg.Histogram(o.Metric),
			maxWindows: maxWindows,
			start:      clock.Now(),
		}
		ev.base = ev.hist.Counts()
		e.evals = append(e.evals, ev)
		e.arm(ev)
	}
	return e
}

// arm schedules ev's next window boundary.
func (e *Engine) arm(ev *evaluator) {
	ev.ev = e.clock.Schedule(sim.Duration(ev.obj.WindowNS), func() {
		ev.close(e.clock.Now())
		ev.start = e.clock.Now()
		ev.base = ev.hist.Counts()
		e.arm(ev)
	})
}

// Stop cancels every pending boundary event; a stopped engine can never
// advance virtual time (Drain skips cancelled events).
func (e *Engine) Stop() {
	for _, ev := range e.evals {
		ev.ev.Cancel()
	}
}

// close records the window [ev.start, end) from the histogram's growth since
// the window opened.
func (ev *evaluator) close(end sim.Time) {
	if len(ev.windows) >= ev.maxWindows {
		ev.dropped++
		return
	}
	ev.windows = append(ev.windows, ev.tally(end))
}

// tally builds the window record for [ev.start, end) without mutating the
// evaluator.
func (ev *evaluator) tally(end sim.Time) window {
	w := window{start: ev.start, end: end}
	cur := ev.hist.Counts()
	for k := range cur {
		delta := cur[k] - ev.base[k]
		if delta <= 0 {
			continue
		}
		w.total += delta
		w.bad += badInBucket(k, delta, ev.obj.ThresholdNS)
	}
	return w
}

// badInBucket estimates how many of delta samples in bucket k exceed
// threshold t, assuming samples uniform on the bucket's value range (the
// same assumption Histogram.Quantile interpolates under).
func badInBucket(k int, delta, t int64) int64 {
	lo, hi := metrics.BucketRange(k)
	switch {
	case lo > t:
		return delta
	case hi <= t:
		return 0
	default:
		// Values in (t, hi] are bad: that is hi-t of the hi-lo+1 equally
		// likely values.
		return delta * (hi - t) / (hi - lo + 1)
	}
}

// compliant reports whether the window meets the objective: the bad-event
// fraction within the error budget 1 - quantile. Empty windows are
// vacuously compliant.
func (w window) compliant(o Objective) bool {
	if w.total == 0 {
		return true
	}
	budgetPPM := 1_000_000 - o.QuantilePPM
	return w.bad*1_000_000 <= w.total*budgetPPM
}

// burnMilli returns the burn rate of the aggregate (bad, total) against the
// objective's error budget, in thousandths (1000 = burning the budget
// exactly). Empty aggregates burn nothing.
func burnMilli(bad, total int64, o Objective) int64 {
	if total == 0 {
		return 0
	}
	budgetPPM := 1_000_000 - o.QuantilePPM
	return bad * 1_000_000_000 / (total * budgetPPM)
}

// Export renders the evaluation as the wire-format slo section, synthesizing
// a trailing partial window up to the current virtual instant when time has
// passed since the last boundary. Export does not mutate the engine and may
// be called repeatedly.
func (e *Engine) Export() *metrics.SLOExport {
	out := &metrics.SLOExport{Spec: e.spec.String()}
	for _, ev := range e.evals {
		out.Objectives = append(out.Objectives, ev.export(e.clock.Now()))
	}
	return out
}

func (ev *evaluator) export(now sim.Time) metrics.SLOObjectiveExport {
	o := ev.obj
	windows := ev.windows
	if now > ev.start && len(windows) < ev.maxWindows {
		// Synthesize the trailing partial window (same contract as the
		// timeseries sampler's Export).
		windows = append(append([]window(nil), windows...), ev.tally(now))
	}
	oe := metrics.SLOObjectiveExport{
		Name:               o.Name(),
		Metric:             o.Metric,
		QuantilePPM:        o.QuantilePPM,
		ThresholdNS:        o.ThresholdNS,
		WindowNS:           o.WindowNS,
		TargetPPM:          o.TargetPPM,
		BurnThresholdMilli: o.BurnThresholdMilli,
		Windows:            len(windows),
	}

	// Per-window verdicts and the run totals.
	for _, w := range windows {
		if w.compliant(o) {
			oe.CompliantWindows++
		}
		oe.TotalEvents += w.total
		oe.BadEvents += w.bad
	}
	if oe.Windows > 0 {
		oe.CompliancePPM = int64(oe.CompliantWindows) * 1_000_000 / int64(oe.Windows)
	} else {
		oe.CompliancePPM = 1_000_000
	}
	oe.BudgetBurnMilli = burnMilli(oe.BadEvents, oe.TotalEvents, o)
	oe.Met = oe.CompliancePPM >= o.TargetPPM

	// Multi-window burn-rate alerting: at each window boundary compute the
	// fast (trailing FastWindows) and slow (trailing SlowWindows) burn
	// rates; the alert condition holds while both are at or above the
	// threshold, and consecutive firing windows merge into one interval.
	var cur *metrics.SLOAlertExport
	for i := range windows {
		fast := trailingBurn(windows, i, FastWindows, o)
		slow := trailingBurn(windows, i, SlowWindows, o)
		if fast >= o.BurnThresholdMilli && slow >= o.BurnThresholdMilli {
			w := windows[i]
			if cur != nil && cur.EndNS == int64(w.start) {
				cur.EndNS = int64(w.end)
				cur.Windows++
				if fast > cur.PeakFastBurnMilli {
					cur.PeakFastBurnMilli = fast
				}
				if slow > cur.PeakSlowBurnMilli {
					cur.PeakSlowBurnMilli = slow
				}
			} else {
				oe.Alerts = append(oe.Alerts, metrics.SLOAlertExport{
					StartNS: int64(w.start), EndNS: int64(w.end), Windows: 1,
					PeakFastBurnMilli: fast, PeakSlowBurnMilli: slow,
				})
				cur = &oe.Alerts[len(oe.Alerts)-1]
			}
		} else {
			cur = nil
		}
	}
	return oe
}

// trailingBurn aggregates the burn rate over the n windows ending at index i.
func trailingBurn(ws []window, i, n int, o Objective) int64 {
	var bad, total int64
	for j := i; j > i-n && j >= 0; j-- {
		bad += ws[j].bad
		total += ws[j].total
	}
	return burnMilli(bad, total, o)
}
