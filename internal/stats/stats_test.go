package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 ||
		h.Percentile(50) != 0 || h.Stddev() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram should be all zeros")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Add(v)
	}
	if h.N() != 5 || h.Sum() != 15 || h.Mean() != 3 {
		t.Fatalf("N=%d Sum=%v Mean=%v", h.N(), h.Sum(), h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatal("min/max")
	}
	if h.Percentile(50) != 3 {
		t.Fatalf("p50 = %v", h.Percentile(50))
	}
	if h.Percentile(0) != 1 || h.Percentile(100) != 5 {
		t.Fatal("extreme percentiles")
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if math.Abs(h.Stddev()-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", h.Stddev(), want)
	}
}

func TestHistogramAddAfterQuery(t *testing.T) {
	var h Histogram
	h.Add(10)
	_ = h.Max()
	h.Add(20)
	if h.Max() != 20 {
		t.Fatal("re-sort after Add broken")
	}
}

func TestPercentileMatchesNearestRank(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Add(v)
		}
		pct := float64(p % 101)
		got := h.Percentile(pct)
		sort.Float64s(vals)
		rank := int(math.Ceil(pct/100*float64(len(vals)))) - 1
		if rank < 0 {
			rank = 0
		}
		return got == vals[rank]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowSeries(t *testing.T) {
	w := NewWindowSeries(20)
	w.Count(5)
	w.Count(19)
	w.Observe(25, 10)
	w.Observe(65, 4)
	if w.Windows() != 4 {
		t.Fatalf("windows = %d, want 4", w.Windows())
	}
	if w.Sum(0) != 2 || w.N(0) != 2 {
		t.Fatal("window 0")
	}
	if w.Sum(1) != 10 || w.Mean(1) != 10 {
		t.Fatal("window 1")
	}
	if w.Sum(2) != 0 || w.Mean(2) != 0 {
		t.Fatal("empty window 2")
	}
	sums := w.Sums()
	if len(sums) != 4 || sums[3] != 4 {
		t.Fatalf("Sums = %v", sums)
	}
}

func TestWindowSeriesEmpty(t *testing.T) {
	w := NewWindowSeries(10)
	if w.Windows() != 0 || len(w.Sums()) != 0 {
		t.Fatal("empty series")
	}
}

func TestWindowSeriesBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewWindowSeries(0)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "workload", "static", "multiclock")
	tb.AddRow("A", "1.000", "1.350")
	tb.AddNumRow("B", 1, 1.22)
	out := tb.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "workload") {
		t.Fatalf("missing title/header:\n%s", out)
	}
	if !strings.Contains(out, "1.350") || !strings.Contains(out, "1.220") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	// Alignment: all data lines same width as header line.
	if len(lines[1]) != len(lines[2]) {
		t.Fatal("separator misaligned")
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	if !strings.Contains(tb.String(), "only") {
		t.Fatal("short row lost")
	}
}

// TestTableOverfullRowPanics pins the AddRow contract: a row wider than
// the header is a caller bug, and silently dropping the extra cells (the
// old behavior) would hide a miscounted column in a regenerated figure.
func TestTableOverfullRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on overfull row")
		}
	}()
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "2", "dropped-before-this-fix")
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		1234567: "1234567",
		250.5:   "250.5",
		0.125:   "0.125",
	}
	for v, want := range cases {
		if got := FormatNum(v); got != want {
			t.Errorf("FormatNum(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize(2, []float64{2, 4, 1})
	want := []float64{1, 2, 0.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v", got)
		}
	}
	if z := Normalize(0, []float64{1, 2}); z[0] != 0 || z[1] != 0 {
		t.Fatal("zero base")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", g)
	}
	if g := GeoMean([]float64{2, 0, -1}); math.Abs(g-2) > 1e-12 {
		t.Fatal("non-positive values must be ignored")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
}
