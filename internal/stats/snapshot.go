package stats

import (
	"fmt"
	"math"

	"multiclock/internal/snapcodec"
)

// Checkpoint serialization for Histogram. Samples are written in their exact
// in-memory order along with the incrementally accumulated sum — float
// addition order matters bit-for-bit — and the sorted flag, so a restored
// histogram answers every query with the identical result.

// SnapshotState encodes the histogram.
func (h *Histogram) SnapshotState(enc *snapcodec.Encoder) {
	enc.Int(len(h.samples))
	for _, v := range h.samples {
		enc.U64(math.Float64bits(v))
	}
	enc.U64(math.Float64bits(h.sum))
	enc.Bool(h.sorted)
}

// RestoreState decodes into an empty histogram.
func (h *Histogram) RestoreState(dec *snapcodec.Decoder) error {
	n := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if n < 0 || n > dec.Remaining()/8 {
		return fmt.Errorf("stats: snapshot claims %d samples in %d bytes", n, dec.Remaining())
	}
	h.samples = h.samples[:0]
	h.Reserve(n)
	for i := 0; i < n; i++ {
		h.samples = append(h.samples, math.Float64frombits(dec.U64()))
	}
	h.sum = math.Float64frombits(dec.U64())
	h.sorted = dec.Bool()
	return dec.Err()
}
