// Package stats provides the small statistics toolkit the evaluation
// harness uses: histograms with percentiles, time-windowed series (the
// paper reports several metrics per 20-second window), and plain-text table
// rendering for regenerated figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates float64 samples and answers order statistics.
// Samples are kept exactly; the evaluation's sample counts are modest.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Reserve grows the sample buffer to hold at least n samples, so callers
// that know their sample count up front avoid append's doubling churn.
func (h *Histogram) Reserve(n int) {
	if n > cap(h.samples) {
		grown := make([]float64, len(h.samples), n)
		copy(grown, h.samples)
		h.samples = grown
	}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
}

// N returns the number of samples.
func (h *Histogram) N() int { return len(h.samples) }

// Sum returns the total of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Percentile returns the p-th percentile (0–100) by nearest-rank, or 0 with
// no samples.
func (h *Histogram) Percentile(p float64) float64 {
	h.ensureSorted()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[n-1]
	}
	rank := int(math.Ceil(p/100*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.samples[rank]
}

// Stddev returns the population standard deviation.
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// WindowSeries buckets event values into fixed-width windows of a scalar
// key (virtual time, usually), as the paper does for promotions per
// 20-second window (Fig. 8) and re-access percentages (Fig. 9).
type WindowSeries struct {
	Width   int64
	count   map[int64]int64
	sum     map[int64]float64
	maxSeen int64
	any     bool
}

// NewWindowSeries creates a series with the given window width. Width must
// be positive.
func NewWindowSeries(width int64) *WindowSeries {
	if width <= 0 {
		panic("stats: window width must be positive")
	}
	return &WindowSeries{
		Width: width,
		count: make(map[int64]int64),
		sum:   make(map[int64]float64),
	}
}

// Observe adds value v at key position t.
func (w *WindowSeries) Observe(t int64, v float64) {
	id := t / w.Width
	w.count[id]++
	w.sum[id] += v
	if id > w.maxSeen {
		w.maxSeen = id
	}
	w.any = true
}

// Count returns one event with value 1 at t (counting series).
func (w *WindowSeries) Count(t int64) { w.Observe(t, 1) }

// Windows returns the number of windows from 0 through the last observed.
func (w *WindowSeries) Windows() int {
	if !w.any {
		return 0
	}
	return int(w.maxSeen) + 1
}

// Sum returns the total value in window id.
func (w *WindowSeries) Sum(id int) float64 { return w.sum[int64(id)] }

// N returns the event count in window id.
func (w *WindowSeries) N(id int) int64 { return w.count[int64(id)] }

// Mean returns the mean value in window id, or 0 when empty.
func (w *WindowSeries) Mean(id int) float64 {
	c := w.count[int64(id)]
	if c == 0 {
		return 0
	}
	return w.sum[int64(id)] / float64(c)
}

// Sums returns the per-window totals for all windows.
func (w *WindowSeries) Sums() []float64 {
	out := make([]float64, w.Windows())
	for i := range out {
		out[i] = w.Sum(i)
	}
	return out
}

// Table renders aligned plain-text tables for the regenerated figures.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	numeric []bool
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; missing cells render empty. Passing more cells
// than the table has headers panics: silently dropping the extras (the
// old behavior) could hide a miscounted column in a regenerated figure.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		panic(fmt.Sprintf("stats: AddRow with %d cells into %d-column table %q",
			len(cells), len(t.header), t.Title))
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddNumRow appends a row of a label followed by formatted numbers.
func (t *Table) AddNumRow(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, FormatNum(v))
	}
	t.AddRow(cells...)
}

// FormatNum renders a float compactly: integers plainly, large values with
// thousands grouping left off, small values with 3 significant decimals.
func FormatNum(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Normalize divides each value by base, the paper's normalized-to-static
// presentation. A zero base yields zeros.
func Normalize(base float64, vals []float64) []float64 {
	out := make([]float64, len(vals))
	if base == 0 {
		return out
	}
	for i, v := range vals {
		out[i] = v / base
	}
	return out
}

// GeoMean returns the geometric mean of positive values, ignoring
// non-positive entries.
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
