package policy

import (
	"fmt"
	"sort"

	"multiclock/internal/lru"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// AMPSelector picks one of AMP's page-selection mechanisms (§II-D): the
// classic cache-replacement policies applied to tier placement.
type AMPSelector int

const (
	// AMPLRU selects by exact recency (least/most recently used).
	AMPLRU AMPSelector = iota
	// AMPLFU selects by exact frequency — the policy the paper deems
	// impractical to track on a real system but evaluable on an
	// emulator; our simulator is exactly such an emulator.
	AMPLFU
	// AMPRandom selects uniformly at random.
	AMPRandom
)

// String names the selector as the policy name suffix.
func (s AMPSelector) String() string {
	switch s {
	case AMPLRU:
		return "amp-lru"
	case AMPLFU:
		return "amp-lfu"
	default:
		return "amp-random"
	}
}

// AMPConfig tunes the AMP baseline.
type AMPConfig struct {
	Selector     AMPSelector
	ScanInterval sim.Duration
	// MigrateBatch bounds promotions (and matching demotions) per
	// interval.
	MigrateBatch int
	// Decay halves frequency counters every interval when true, aging
	// LFU's history.
	Decay bool
	Seed  uint64
}

// DefaultAMPConfig mirrors the evaluation cadence.
func DefaultAMPConfig(sel AMPSelector) AMPConfig {
	return AMPConfig{Selector: sel, ScanInterval: 1 * sim.Second, MigrateBatch: 512, Decay: true}
}

// AMP reimplements the AMP tiered-memory baseline: full per-page profiling
// of every access (exact recency and frequency — feasible only because
// this is a simulator, which is the paper's §II-D point about AMP being
// emulator-only), with periodic exchange of the hottest PM pages against
// the coldest DRAM pages under the chosen selector.
type AMP struct {
	machine.Base
	cfg     AMPConfig
	daemons []*sim.Daemon
	rng     *sim.RNG

	Promotions int64
}

// NewAMP returns the baseline for the given configuration.
func NewAMP(cfg AMPConfig) *AMP {
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 1 * sim.Second
	}
	if cfg.MigrateBatch <= 0 {
		cfg.MigrateBatch = 512
	}
	return &AMP{cfg: cfg, rng: sim.NewRNG(cfg.Seed ^ 0xa3b)}
}

// Name implements machine.Policy.
func (a *AMP) Name() string { return a.cfg.Selector.String() }

// Attach starts the periodic migration daemon.
func (a *AMP) Attach(m *machine.Machine) {
	a.Base.Attach(m)
	var d *sim.Daemon
	d = m.Clock.StartDaemon("amp", a.cfg.ScanInterval, func(now sim.Time) {
		a.rebalance()
		m.FinishDaemonPass(d)
	})
	a.daemons = append(a.daemons, d)
}

// Stop halts the daemon.
func (a *AMP) Stop() {
	for _, d := range a.daemons {
		d.Stop()
	}
}

// Access profiles every access exactly — AMP's defining (and, on real
// hardware, disqualifying) requirement — then charges base latency.
func (a *AMP) Access(pg *mem.Page, write bool) sim.Duration {
	pg.Freq++
	pg.LastUse = a.M.Clock.Now()
	return a.Base.Access(pg, write)
}

// hotness scores a page for promotion under the selector; higher is
// hotter.
func (a *AMP) hotness(pg *mem.Page) float64 {
	switch a.cfg.Selector {
	case AMPLFU:
		return float64(pg.Freq)
	case AMPLRU:
		return float64(pg.LastUse)
	default:
		return a.rng.Float64()
	}
}

// collect gathers every evictable page of one tier with its score.
type scored struct {
	pg    *mem.Page
	score float64
}

func (a *AMP) collect(t mem.Tier) []scored {
	var out []scored
	for _, id := range a.M.Mem.TierNodes(t) {
		vec := a.M.Vecs[id]
		for k := lru.Kind(0); k < lru.Unevictable; k++ {
			vec.List(k).Each(func(pg *mem.Page) {
				out = append(out, scored{pg, a.hotness(pg)})
			})
		}
	}
	return out
}

// collectLower gathers every evictable page below the fastest tier, in tier
// order (promotion candidates).
func (a *AMP) collectLower() []scored {
	var out []scored
	for _, t := range a.M.Mem.BirthOrder()[1:] {
		out = append(out, a.collect(t)...)
	}
	return out
}

// rebalance is one daemon run: scan and score the full page population
// (AMP's design scans every page — the cost the paper calls impractical),
// then exchange the hottest lower-tier pages against the coldest pages of
// the fastest tier.
func (a *AMP) rebalance() {
	m := a.M
	fastest := m.Mem.FastestTier()
	pmPages := a.collectLower()
	dramPages := a.collect(fastest)
	m.Mem.Counters.PagesScanned += int64(len(pmPages) + len(dramPages))
	m.ChargeTax(m.Mem.Lat.DaemonWakeup +
		sim.Duration(len(pmPages)+len(dramPages))*m.Mem.Lat.DaemonScanPage)

	sort.Slice(pmPages, func(i, j int) bool { return pmPages[i].score > pmPages[j].score }) // hottest first
	sort.Slice(dramPages, func(i, j int) bool { return dramPages[i].score < dramPages[j].score })

	batch := a.cfg.MigrateBatch
	di := 0
	for i := 0; i < len(pmPages) && i < batch; i++ {
		hot := pmPages[i].pg
		if !hot.OnList() {
			continue
		}
		dst := m.Mem.PickNode(fastest)
		if dst == mem.NoNode || m.Mem.Nodes[dst].UnderMin() {
			// Exchange: demote the coldest fastest-tier page first.
			for di < len(dramPages) && !dramPages[di].pg.OnList() {
				di++
			}
			if di >= len(dramPages) {
				break
			}
			cold := dramPages[di].pg
			di++
			// Don't displace a page hotter than the one arriving.
			if a.cfg.Selector != AMPRandom && a.hotness(cold) >= pmPages[i].score {
				break
			}
			pmDst := m.Mem.PickNodeBelow(fastest)
			if pmDst == mem.NoNode || !m.MigratePage(cold, pmDst) {
				break
			}
			dst = m.Mem.PickNode(fastest)
			if dst == mem.NoNode {
				break
			}
		}
		if m.MigratePage(hot, dst) {
			a.Promotions++
		}
	}

	if a.cfg.Selector == AMPLFU && a.cfg.Decay {
		for _, s := range pmPages {
			s.pg.Freq /= 2
		}
		for _, s := range dramPages {
			s.pg.Freq /= 2
		}
	}
}

// DefaultAMPName parses "amp-lru" style names.
func DefaultAMPName(name string) (AMPSelector, error) {
	switch name {
	case "amp-lru":
		return AMPLRU, nil
	case "amp-lfu":
		return AMPLFU, nil
	case "amp-random":
		return AMPRandom, nil
	default:
		return 0, fmt.Errorf("policy: unknown AMP selector %q", name)
	}
}

var _ machine.Policy = (*AMP)(nil)
