package policy

import (
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// Thermostat reimplements the page-selection idea of Thermostat (Agarwal &
// Wenisch, ASPLOS'17), which the paper lists in Table I but could not
// evaluate ("Not Open Source", §II-D): huge-page-granularity cold-data
// detection via software sampling. Regions of 512 base pages are sampled
// each period by poisoning a few of their PTEs; the hint-fault rate
// estimates the region's access rate; regions colder than the threshold
// are demoted wholesale to PM, and demoted regions that turn out hot
// (their fault rate rebounds) are promoted back — misclassification
// correction.
//
// The granularity trade-off this exposes is exactly why the paper manages
// base pages: one hot base page keeps 2 MiB resident, and one cold
// classification demotes hot neighbours with it.
type Thermostat struct {
	machine.Base
	cfg     ThermostatConfig
	daemons []*sim.Daemon
	rng     *sim.RNG

	regions map[regionKey]*regionStats

	Demotions  int64
	Promotions int64
}

// ThermostatConfig tunes the baseline.
type ThermostatConfig struct {
	ScanInterval sim.Duration
	// RegionPages is the classification granularity (512 = 2 MiB huge
	// pages).
	RegionPages int
	// SampleFrac is the fraction of each region's resident pages poisoned
	// per period.
	SampleFrac float64
	// ColdThreshold: regions with at most this many sampled faults per
	// period are classified cold.
	ColdThreshold int
	// DemoteBatch caps region demotions per period.
	DemoteBatch int
	Seed        uint64
}

// DefaultThermostatConfig mirrors Thermostat's published operating point
// scaled to the simulator.
func DefaultThermostatConfig() ThermostatConfig {
	return ThermostatConfig{
		ScanInterval:  1 * sim.Second,
		RegionPages:   512,
		SampleFrac:    0.05,
		ColdThreshold: 0,
		DemoteBatch:   8,
	}
}

type regionKey struct {
	space int32
	base  pagetable.VPN
}

type regionStats struct {
	faults   int // hint faults this period
	sampled  int
	demoted  bool
	hotScore int
}

// NewThermostat returns the baseline policy.
func NewThermostat(cfg ThermostatConfig) *Thermostat {
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 1 * sim.Second
	}
	if cfg.RegionPages <= 0 {
		cfg.RegionPages = 512
	}
	if cfg.SampleFrac <= 0 || cfg.SampleFrac > 1 {
		cfg.SampleFrac = 0.05
	}
	if cfg.DemoteBatch <= 0 {
		cfg.DemoteBatch = 8
	}
	return &Thermostat{
		cfg:     cfg,
		rng:     sim.NewRNG(cfg.Seed ^ 0x7e45),
		regions: make(map[regionKey]*regionStats),
	}
}

// Name implements machine.Policy.
func (th *Thermostat) Name() string { return "thermostat" }

// Attach starts the sampling daemon.
func (th *Thermostat) Attach(m *machine.Machine) {
	th.Base.Attach(m)
	var d *sim.Daemon
	d = m.Clock.StartDaemon("thermostat", th.cfg.ScanInterval, func(now sim.Time) {
		th.period()
		m.FinishDaemonPass(d)
	})
	th.daemons = append(th.daemons, d)
}

// Stop halts the daemon.
func (th *Thermostat) Stop() {
	for _, d := range th.daemons {
		d.Stop()
	}
}

// regionOf returns the key for a page's region.
func (th *Thermostat) regionOf(pg *mem.Page) regionKey {
	vpn := pagetable.VPNOf(pg.VA)
	return regionKey{
		space: pg.Space,
		base:  vpn - vpn%pagetable.VPN(th.cfg.RegionPages),
	}
}

// HintFault counts sampled accesses per region.
func (th *Thermostat) HintFault(pg *mem.Page, write bool) {
	st, ok := th.regions[th.regionOf(pg)]
	if !ok {
		return
	}
	st.faults++
}

// period is one Thermostat cycle: classify last period's samples, migrate,
// then poison the next sample set.
func (th *Thermostat) period() {
	m := th.M

	// Classify and migrate based on the period that just ended. Thermostat
	// is a two-state classifier: hot regions live in the fastest tier, cold
	// regions one tier below it.
	fastest := m.Mem.FastestTier()
	coldTier, _ := m.Mem.Below(fastest)
	demoted := 0
	for key, st := range th.regions {
		if st.sampled == 0 {
			continue
		}
		switch {
		case !st.demoted && st.faults <= th.cfg.ColdThreshold && demoted < th.cfg.DemoteBatch:
			// Cold region: demote every resident page.
			if th.migrateRegion(key, coldTier) > 0 {
				st.demoted = true
				th.Demotions++
				demoted++
			}
		case st.demoted && st.faults > th.cfg.ColdThreshold+1:
			// Misclassified: the "cold" region is being accessed from the
			// slow tier.
			if th.migrateRegion(key, fastest) > 0 {
				st.demoted = false
				th.Promotions++
			}
		}
		st.faults = 0
		st.sampled = 0
	}

	// Poison the next sample set: a fraction of each space's resident
	// pages, region-tagged.
	for _, as := range m.Spaces() {
		budget := int(float64(as.Mapped()) * th.cfg.SampleFrac)
		if budget == 0 && as.Mapped() > 0 {
			budget = 1
		}
		poisoned := 0
		as.Walk(0, pagetable.MaxVPN+1, func(vpn pagetable.VPN, pg *mem.Page) {
			if poisoned >= budget || pg.Flags.Has(mem.FlagUnevictable) {
				return
			}
			// Sample pseudo-randomly so coverage rotates.
			if th.rng.Float64() > th.cfg.SampleFrac*4 {
				return
			}
			key := th.regionOf(pg)
			st, ok := th.regions[key]
			if !ok {
				st = &regionStats{}
				th.regions[key] = st
			}
			pagetable.Poison(pg)
			st.sampled++
			poisoned++
			m.ChargeTax(300 * sim.Nanosecond)
		})
		m.Mem.Counters.PagesScanned += int64(poisoned)
	}
}

// migrateRegion moves every resident page of the region to tier t,
// returning how many pages moved.
func (th *Thermostat) migrateRegion(key regionKey, t mem.Tier) int {
	m := th.M
	if int(key.space) >= len(m.Spaces()) {
		return 0
	}
	as := m.Space(key.space)
	moved := 0
	as.Walk(key.base, key.base+pagetable.VPN(th.cfg.RegionPages), func(vpn pagetable.VPN, pg *mem.Page) {
		if m.Mem.Tier(pg) == t || !pg.OnList() {
			return
		}
		dst := m.Mem.PickNode(t)
		if dst == mem.NoNode {
			return
		}
		if t == m.Mem.FastestTier() && m.Mem.Nodes[dst].UnderMin() {
			return
		}
		if m.MigratePage(pg, dst) {
			moved++
		}
	})
	return moved
}

var _ machine.Policy = (*Thermostat)(nil)
