package policy

import (
	"testing"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

func newMachine(dram, pm int, p machine.Policy) *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{dram}
	cfg.Mem.PMNodes = []int{pm}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	return machine.New(cfg, p)
}

// fillOver allocates n pages and returns the VMA; sized above DRAM it
// leaves the overflow (or demoted cold pages) in PM.
func fillOver(m *machine.Machine, as *pagetable.AddressSpace, n int) *pagetable.VMA {
	v := as.Mmap(n, false, "data")
	for i := 0; i < n; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	return v
}

func pmVPNs(m *machine.Machine, as *pagetable.AddressSpace, v *pagetable.VMA, max int) []pagetable.VPN {
	var out []pagetable.VPN
	as.WalkVMA(v, func(vpn pagetable.VPN, pg *mem.Page) {
		if len(out) < max && m.Mem.Tier(pg) == mem.TierPM {
			out = append(out, vpn)
		}
	})
	return out
}

// --- Static ---

func TestStaticNeverMigrates(t *testing.T) {
	m := newMachine(64, 512, NewStatic())
	as := m.NewSpace()
	v := fillOver(m, as, 200)
	hot := pmVPNs(m, as, v, 16)
	if len(hot) == 0 {
		t.Fatal("setup: no PM pages under static tiering")
	}
	for round := 0; round < 10; round++ {
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
		m.Compute(1100 * sim.Millisecond)
	}
	if m.Mem.Counters.Promotions != 0 || m.Mem.Counters.Demotions != 0 {
		t.Fatalf("static tiering migrated pages: %+v", m.Mem.Counters)
	}
	for _, vpn := range hot {
		if m.Mem.Tier(as.Lookup(vpn)) != mem.TierPM {
			t.Fatal("static page changed tier")
		}
	}
	if NewStatic().Name() != "static" {
		t.Fatal("name")
	}
}

func TestStaticBornInDRAMFirst(t *testing.T) {
	m := newMachine(64, 64, NewStatic())
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	if m.Mem.Tier(pg) != mem.TierDRAM {
		t.Fatal("first page not in DRAM")
	}
}

// --- Nimble ---

func TestNimbleDefaults(t *testing.T) {
	cfg := DefaultNimbleConfig()
	if cfg.ScanInterval != 1*sim.Second || cfg.ScanBatch != 1024 {
		t.Fatal("defaults should mirror the paper")
	}
	nb := NewNimble(NimbleConfig{})
	if nb.cfg.ScanInterval != 1*sim.Second || nb.cfg.ScanBatch != 1024 {
		t.Fatal("zero config not normalized")
	}
	if nb.Name() != "nimble" {
		t.Fatal("name")
	}
}

func TestNimblePromotesOnSingleRecency(t *testing.T) {
	nb := NewNimble(DefaultNimbleConfig())
	m := newMachine(128, 1024, nb)
	as := m.NewSpace()
	v := fillOver(m, as, 400)
	hot := pmVPNs(m, as, v, 16)
	if len(hot) != 16 {
		t.Fatalf("setup: %d PM pages", len(hot))
	}
	for round := 0; round < 6; round++ {
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
		m.Compute(1100 * sim.Millisecond)
	}
	if nb.Promotions == 0 {
		t.Fatal("nimble promoted nothing")
	}
	promoted := 0
	for _, vpn := range hot {
		if pg := as.Lookup(vpn); pg != nil && m.Mem.Tier(pg) == mem.TierDRAM {
			promoted++
		}
	}
	if promoted < 12 {
		t.Fatalf("only %d/16 hot pages promoted", promoted)
	}
}

// TestNimbleLessSelectiveThanMultiClock: under a workload with one-touch
// noise, Nimble promotes more pages than a frequency-based selector should
// — the Fig. 8 behaviour. Here: pages touched a single time right before a
// scan still get promoted by Nimble.
func TestNimblePromotesOneTouchPages(t *testing.T) {
	nb := NewNimble(DefaultNimbleConfig())
	m := newMachine(256, 1024, nb)
	as := m.NewSpace()
	v := fillOver(m, as, 600)
	noise := pmVPNs(m, as, v, 64)
	// Two warm-up rounds activate the pages (recency ladder), then a
	// single touch qualifies them.
	for round := 0; round < 4; round++ {
		for _, vpn := range noise {
			m.Access(as, vpn, false)
		}
		m.Compute(1100 * sim.Millisecond)
	}
	if nb.Promotions == 0 {
		t.Fatal("expected one-touch promotions from recency-only selection")
	}
}

func TestNimbleStop(t *testing.T) {
	nb := NewNimble(DefaultNimbleConfig())
	m := newMachine(64, 64, nb)
	nb.Stop()
	m.Compute(5 * sim.Second)
	if m.Mem.Counters.PagesScanned != 0 {
		t.Fatal("stopped nimble scanned")
	}
}

func TestNimbleSetScanInterval(t *testing.T) {
	nb := NewNimble(DefaultNimbleConfig())
	m := newMachine(64, 64, nb)
	as := m.NewSpace()
	fillOver(m, as, 32)
	nb.SetScanInterval(100 * sim.Millisecond)
	m.Compute(1 * sim.Second)
	if m.Mem.Counters.PagesScanned < 9*32 {
		t.Fatalf("scanned %d pages; retuned interval not applied", m.Mem.Counters.PagesScanned)
	}
}

// --- AutoTiering ---

func TestATDefaults(t *testing.T) {
	cfg := DefaultATConfig(CPM)
	if cfg.Mode != CPM || cfg.ScanInterval != 1*sim.Second || cfg.HistBits != 4 {
		t.Fatalf("defaults: %+v", cfg)
	}
	at := NewAutoTiering(ATConfig{Mode: OPM})
	if at.cfg.PoisonFrac != 0.125 || at.cfg.PromoteWindow != 0 {
		t.Fatal("zero config not normalized")
	}
	if NewAutoTiering(DefaultATConfig(CPM)).Name() != "at-cpm" {
		t.Fatal("cpm name")
	}
	if NewAutoTiering(DefaultATConfig(OPM)).Name() != "at-opm" {
		t.Fatal("opm name")
	}
}

func TestATPoisonsPages(t *testing.T) {
	at := NewAutoTiering(DefaultATConfig(CPM))
	m := newMachine(256, 256, at)
	as := m.NewSpace()
	v := fillOver(m, as, 128)
	m.Compute(1100 * sim.Millisecond) // one scanner pass
	poisoned := 0
	as.WalkVMA(v, func(vpn pagetable.VPN, pg *mem.Page) {
		if pg.Flags.Has(mem.FlagPoisoned) {
			poisoned++
		}
	})
	want := int(0.125 * 128)
	if poisoned < want-2 || poisoned > want+2 {
		t.Fatalf("poisoned %d pages, want ≈%d", poisoned, want)
	}
}

func TestATHintFaultsCostTheApplication(t *testing.T) {
	at := NewAutoTiering(DefaultATConfig(CPM))
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{256}
	cfg.Mem.PMNodes = []int{256}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	m := machine.New(cfg, at)
	as := m.NewSpace()
	v := fillOver(m, as, 128)
	m.Compute(1100 * sim.Millisecond)
	// Touch everything: poisoned pages take hint faults.
	for i := 0; i < 128; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	if m.Mem.Counters.HintFaults == 0 {
		t.Fatal("no hint faults after a poisoning pass")
	}
}

func TestATCPMPromotesOnRepeatedFaults(t *testing.T) {
	cfg := DefaultATConfig(CPM)
	cfg.PoisonFrac = 1.0 // full coverage for a deterministic test
	at := NewAutoTiering(cfg)
	m := newMachine(128, 1024, at)
	as := m.NewSpace()
	v := fillOver(m, as, 400)
	hot := pmVPNs(m, as, v, 8)
	for round := 0; round < 6; round++ {
		m.Compute(1100 * sim.Millisecond)
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
	}
	if at.Promotions == 0 {
		t.Fatal("AT-CPM promoted nothing despite repeated faults within window")
	}
}

func TestATCPMExchangesBlindVictims(t *testing.T) {
	cfg := DefaultATConfig(CPM)
	cfg.PoisonFrac = 1.0
	at := NewAutoTiering(cfg)
	m := newMachine(64, 1024, at)
	as := m.NewSpace()
	v := fillOver(m, as, 300)
	hot := pmVPNs(m, as, v, 32)
	for round := 0; round < 8; round++ {
		m.Compute(1100 * sim.Millisecond)
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
	}
	if at.Exchanges == 0 {
		t.Fatal("CPM never exchanged despite full DRAM")
	}
}

func TestATOPMDemotesColdPages(t *testing.T) {
	cfg := DefaultATConfig(OPM)
	cfg.PoisonFrac = 1.0
	at := NewAutoTiering(cfg)
	m := newMachine(64, 1024, at)
	as := m.NewSpace()
	v := fillOver(m, as, 300)
	hot := pmVPNs(m, as, v, 16)
	// DRAM pages go cold (never faulted again); history empties; OPM
	// demotes them while hot PM pages fault repeatedly.
	for round := 0; round < 10; round++ {
		m.Compute(1100 * sim.Millisecond)
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
	}
	if at.Demotions == 0 {
		t.Fatal("OPM never demoted history-cold pages")
	}
	if at.Promotions == 0 {
		t.Fatal("OPM never promoted")
	}
}

func TestATStop(t *testing.T) {
	at := NewAutoTiering(DefaultATConfig(CPM))
	m := newMachine(64, 64, at)
	as := m.NewSpace()
	fillOver(m, as, 32)
	at.Stop()
	scanned := m.Mem.Counters.PagesScanned
	m.Compute(5 * sim.Second)
	if m.Mem.Counters.PagesScanned != scanned {
		t.Fatal("stopped scanner kept poisoning")
	}
}

// --- Memory-mode ---

func TestMemoryModeBornInPM(t *testing.T) {
	mm := NewMemoryMode()
	m := newMachine(64, 512, mm)
	as := m.NewSpace()
	v := as.Mmap(32, false, "x")
	for i := 0; i < 32; i++ {
		pg := m.Access(as, v.Start+pagetable.VPN(i), false)
		if m.Mem.Tier(pg) != mem.TierPM {
			t.Fatal("memory-mode page born outside PM")
		}
	}
	if mm.Name() != "memory-mode" {
		t.Fatal("name")
	}
}

func TestMemoryModeCacheHitsAreDRAMSpeed(t *testing.T) {
	mm := NewMemoryMode()
	m := newMachine(64, 512, mm)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	m.Access(as, v.Start, false) // miss, fills
	before := m.Clock.Now()
	m.Access(as, v.Start, false) // hit
	got := sim.Duration(m.Clock.Now() - before)
	if got != m.Mem.Lat.Read[mem.TierDRAM] {
		t.Fatalf("cache hit cost %v, want DRAM read", got)
	}
	if mm.Hits != 1 || mm.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", mm.Hits, mm.Misses)
	}
}

func TestMemoryModeMissCostsMoreThanPM(t *testing.T) {
	mm := NewMemoryMode()
	m := newMachine(64, 512, mm)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	before := m.Clock.Now()
	// Evict by touching a conflicting page? Simpler: invalidate.
	mm.PageFreed(pg)
	m.Access(as, v.Start, false)
	got := sim.Duration(m.Clock.Now() - before)
	if got <= m.Mem.Lat.Read[mem.TierPM] {
		t.Fatalf("miss cost %v, should exceed raw PM read (fill traffic)", got)
	}
}

func TestMemoryModeThrashesWhenHotSetExceedsDRAM(t *testing.T) {
	mm := NewMemoryMode()
	m := newMachine(64, 1024, mm)
	as := m.NewSpace()
	v := as.Mmap(256, false, "big") // hot set 4× the cache
	for round := 0; round < 4; round++ {
		for i := 0; i < 256; i++ {
			m.Access(as, v.Start+pagetable.VPN(i), false)
		}
	}
	if ratio := mm.HitRatio(); ratio > 0.5 {
		t.Fatalf("hit ratio %v with 4× oversubscribed cache", ratio)
	}
}

func TestMemoryModeSmallHotSetHitsHigh(t *testing.T) {
	mm := NewMemoryMode()
	m := newMachine(256, 1024, mm)
	as := m.NewSpace()
	v := as.Mmap(32, false, "hot")
	for round := 0; round < 10; round++ {
		for i := 0; i < 32; i++ {
			m.Access(as, v.Start+pagetable.VPN(i), false)
		}
	}
	if ratio := mm.HitRatio(); ratio < 0.8 {
		t.Fatalf("hit ratio %v for DRAM-fitting hot set", ratio)
	}
}

func TestMemoryModeWritebackOnDirtyEviction(t *testing.T) {
	mm := NewMemoryMode()
	m := newMachine(1, 64, mm) // one-set cache: every distinct page conflicts
	as := m.NewSpace()
	v := as.Mmap(2, false, "x")
	m.Access(as, v.Start, true)    // dirty fill
	m.Access(as, v.Start+1, false) // conflict evicts dirty page
	if mm.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", mm.Writebacks)
	}
}

func TestMemoryModeNeverMigrates(t *testing.T) {
	mm := NewMemoryMode()
	m := newMachine(64, 512, mm)
	as := m.NewSpace()
	fillOver(m, as, 200)
	m.Compute(10 * sim.Second)
	if m.Mem.Counters.Promotions+m.Mem.Counters.Demotions != 0 {
		t.Fatal("memory-mode migrated pages")
	}
}

func TestMemoryModeHitRatioEmpty(t *testing.T) {
	if NewMemoryMode().HitRatio() != 0 {
		t.Fatal("empty hit ratio")
	}
}

func TestATModeString(t *testing.T) {
	if CPM.String() != "at-cpm" || OPM.String() != "at-opm" {
		t.Fatal("mode names")
	}
}
