package policy

import (
	"multiclock/internal/lru"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// NomadConfig tunes the Nomad-style non-exclusive tiering policy.
type NomadConfig struct {
	// ScanInterval is the promotion daemon's wakeup period (1 s to match
	// the other systems).
	ScanInterval sim.Duration
	// ScanBatch is pages examined per wakeup.
	ScanBatch int
}

// DefaultNomadConfig matches the shared operating point of the bake-off.
func DefaultNomadConfig() NomadConfig {
	return NomadConfig{ScanInterval: 1 * sim.Second, ScanBatch: 1024}
}

// nomadTx is one in-flight transactional promotion: begun at a daemon
// wakeup, committed (or aborted by an intervening write) at the next.
type nomadTx struct {
	aborted bool
}

// Nomad implements Nomad-style non-exclusive memory tiering (transactional
// page migration, arXiv:2401.13154) on MULTI-CLOCK's selection machinery:
// pages qualify for promotion through the same two-touch promote list, but
// promotion retains the PM source frame as a shadow copy instead of freeing
// it. While the page stays clean, demoting it back is free — a remap onto
// the still-valid shadow with no page copy. The copy itself is transactional
// and spans two daemon wakeups: a write landing between begin and commit
// aborts the transaction and the page falls back to an ordinary exclusive
// migration.
type Nomad struct {
	machine.Base
	cfg     NomadConfig
	daemons []*sim.Daemon

	// inflight tracks begun-but-uncommitted promotion transactions. Indexed
	// only, never iterated (determinism). Entries die at commit, abort, or
	// page death.
	inflight map[*mem.Page]*nomadTx

	// shadowed is a lazily-invalidated FIFO of pages that committed a
	// shadow promotion, in commit order: the reclaim scan for PM pressure
	// walks it oldest-first. Entries whose shadow is already gone (write,
	// ordinary migration, or page death) are skipped and compacted away.
	shadowed []*mem.Page

	// Transaction stats for the bake-off report.
	TxBegins    int64
	TxCommits   int64
	TxAborts    int64
	FreeDemotes int64

	// Reusable candidate buffers; promoteBuf and demoteBuf stay distinct
	// because makeRoom nests inside the promotion loop.
	promoteBuf []*mem.Page
	demoteBuf  []*mem.Page
}

// NewNomad returns the Nomad-style non-exclusive tiering policy.
func NewNomad(cfg NomadConfig) *Nomad {
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 1 * sim.Second
	}
	if cfg.ScanBatch <= 0 {
		cfg.ScanBatch = 1024
	}
	return &Nomad{cfg: cfg, inflight: make(map[*mem.Page]*nomadTx)}
}

// Name implements machine.Policy.
func (nd *Nomad) Name() string { return "nomad" }

// SetScanInterval retunes the daemon period (interval sweeps).
func (nd *Nomad) SetScanInterval(d sim.Duration) {
	nd.cfg.ScanInterval = d
	for _, dm := range nd.daemons {
		dm.SetInterval(d)
	}
}

// Attach starts the per-node scanning daemon.
func (nd *Nomad) Attach(m *machine.Machine) {
	nd.Base.Attach(m)
	for _, n := range m.Mem.Nodes {
		node := n.ID
		var d *sim.Daemon
		d = m.Clock.StartDaemon("nomad-scan", nd.cfg.ScanInterval, func(now sim.Time) {
			nd.scan(node)
			m.FinishDaemonPass(d)
		})
		nd.daemons = append(nd.daemons, d)
	}
}

// Stop halts the daemons.
func (nd *Nomad) Stop() {
	for _, d := range nd.daemons {
		d.Stop()
	}
}

// Access watches writes: a write aborts any in-flight promotion transaction
// on the page (the replica being copied is stale) and invalidates a
// committed shadow (the retained copy no longer matches). Keeping the
// invalidation here means HasShadow implies the page is clean relative to
// its shadow, so shadow demotions never need a dirtiness check.
func (nd *Nomad) Access(pg *mem.Page, write bool) sim.Duration {
	if write {
		if tx := nd.inflight[pg]; tx != nil {
			tx.aborted = true
		}
		if pg.HasShadow() {
			nd.M.Mem.DropShadow(pg)
		}
	}
	return nd.Base.Access(pg, write)
}

// PageFreed drops transaction bookkeeping for a dying page (the shadow frame
// itself is released by mem.Free).
func (nd *Nomad) PageFreed(pg *mem.Page) {
	delete(nd.inflight, pg)
}

// scan is one daemon wakeup: MULTI-CLOCK aging, then the two-phase
// promotion protocol over the promote list.
func (nd *Nomad) scan(node mem.NodeID) {
	m := nd.M
	vec := m.Vecs[node]
	stats := vec.ScanCycle(nd.cfg.ScanBatch)
	nd.ScanTax(stats)

	tier := m.Mem.Nodes[node].Tier
	candidates := vec.AppendPromote(nd.promoteBuf[:0], -1)
	nd.promoteBuf = candidates[:0]
	if m.Metrics != nil {
		m.Metrics.QueueDepth("promote_queue_depth", len(candidates), m.Clock.Now())
	}
	if tier == m.Mem.FastestTier() {
		// Top tier: promote-list residents are simply the hottest pages
		// where they are.
		for _, pg := range candidates {
			lru.ClearPromote(pg)
			vec.Putback(pg)
		}
		if m.Mem.Nodes[node].UnderLow() {
			nd.makeRoom(tier)
		}
		return
	}

	for _, pg := range candidates {
		tx := nd.inflight[pg]
		switch {
		case pg.IsHuge():
			// Shadow frames cover base pages only; compound pages take the
			// exclusive path directly.
			lru.ClearPromote(pg)
			if !nd.promoteExclusive(pg) {
				vec.Putback(pg)
			}
		case tx == nil:
			// Phase 1: begin the copy. The page keeps serving accesses
			// from PM while the replica is "in flight" until the next
			// wakeup; RequeuePromote re-arms the referenced flag so the
			// wait survives the intervening scan cycle's decay.
			nd.inflight[pg] = &nomadTx{}
			nd.TxBegins++
			lru.RequeuePromote(pg)
			vec.Putback(pg)
		default:
			// Phase 2: commit, or abort if a write raced the copy.
			delete(nd.inflight, pg)
			lru.ClearPromote(pg)
			if tx.aborted {
				nd.TxAborts++
				// The replica is stale; retry as an ordinary exclusive
				// migration (a fresh copy with nothing left to invalidate).
				if !nd.promoteExclusive(pg) {
					vec.Putback(pg)
				}
				continue
			}
			if nd.promoteShadow(pg) {
				nd.TxCommits++
			} else {
				// Destination full or pinned: drop to the active list like
				// a failed MULTI-CLOCK promotion.
				vec.Putback(pg)
			}
		}
	}

	// Amortized compaction: the shadowed FIFO only shrinks during PM
	// pressure, so trim dead entries once they dominate.
	if live := m.Mem.ShadowFrames(); len(nd.shadowed) > 2*live+64 {
		kept := nd.shadowed[:0]
		for _, pg := range nd.shadowed {
			if pg.HasShadow() {
				kept = append(kept, pg)
			}
		}
		nd.shadowed = kept
	}
}

// promoteShadow commits one transactional promotion: the page moves one
// tier up and its source frame stays behind as the shadow.
func (nd *Nomad) promoteShadow(pg *mem.Page) bool {
	dst, ok := nd.dstAbove(pg)
	if !ok {
		return false
	}
	// A page climbing its second tier still holds the shadow of its first
	// promotion, two tiers down. That copy is no longer the demotion
	// target, so give it back before retaining the new source frame.
	// (Never the case with only two tiers: a page below the fastest tier
	// cannot hold a shadow there.)
	nd.M.Mem.DropShadow(pg)
	if !nd.M.PromoteShadowIsolated(pg, dst) {
		return false
	}
	nd.shadowed = append(nd.shadowed, pg)
	return true
}

// promoteExclusive is the fallback ordinary migration (aborted transactions
// and compound pages).
func (nd *Nomad) promoteExclusive(pg *mem.Page) bool {
	dst, ok := nd.dstAbove(pg)
	if !ok {
		return false
	}
	return nd.M.MigrateIsolated(pg, dst)
}

// dstAbove picks the destination one tier above pg, demoting cold pages
// from that tier first when it is under pressure.
func (nd *Nomad) dstAbove(pg *mem.Page) (mem.NodeID, bool) {
	m := nd.M
	up, ok := m.Mem.Above(m.Mem.Tier(pg))
	if !ok {
		return mem.NoNode, false
	}
	return promoteDst(m, up, nd.makeRoom)
}

// makeRoom demotes cold pages from pressured nodes of tier t — for free
// when the victim still holds a valid shadow (Nomad's headline win: a clean
// shadowed page demotes by remap alone), by ordinary migration otherwise.
func (nd *Nomad) makeRoom(t mem.Tier) {
	m := nd.M
	nd.demoteBuf = relieveTier(m, t, nd.cfg.ScanBatch, nd.demoteBuf, func(victim *mem.Page) bool {
		if m.DemoteShadowIsolated(victim) {
			nd.FreeDemotes++
			return true
		}
		return false
	})
}

// Pressure relieves pressure on a tier that can demote by demotion, and on
// any other tier by giving shadow frames back — the non-exclusive copies
// are strictly expendable.
func (nd *Nomad) Pressure(node mem.NodeID) {
	t := nd.M.Mem.Nodes[node].Tier
	if demotable(nd.M, t) {
		nd.makeRoom(t)
		return
	}
	nd.reclaimShadows(node)
}

// reclaimShadows drops shadow copies held on the pressured node,
// oldest-committed first, until it climbs back above its low watermark.
func (nd *Nomad) reclaimShadows(node mem.NodeID) {
	m := nd.M
	n := m.Mem.Nodes[node]
	kept := nd.shadowed[:0]
	for _, pg := range nd.shadowed {
		if !pg.HasShadow() {
			continue
		}
		if pg.ShadowNode == node && n.UnderLow() {
			m.Mem.DropShadow(pg)
			continue
		}
		kept = append(kept, pg)
	}
	nd.shadowed = kept
}

// DirectReclaim frees shadow frames before touching any mapped page: they
// cost nothing to give up.
func (nd *Nomad) DirectReclaim(frames int) int {
	freed := 0
	kept := nd.shadowed[:0]
	for _, pg := range nd.shadowed {
		if !pg.HasShadow() {
			continue
		}
		if freed < frames {
			nd.M.Mem.DropShadow(pg)
			freed++
			continue
		}
		kept = append(kept, pg)
	}
	nd.shadowed = kept
	if freed < frames {
		freed += nd.Base.DirectReclaim(frames - freed)
	}
	return freed
}

var _ machine.Policy = (*Nomad)(nil)
var _ machine.Stopper = (*Nomad)(nil)
