package policy

import (
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// MemoryMode models persistent memory in Memory-mode (§II-B): the system
// recognizes only PM as memory; DRAM is invisible to the OS and acts as a
// direct-mapped cache in front of PM, managed by the memory controller.
// Pages are therefore born in PM only, never migrate, and each access hits
// or misses the DRAM cache.
//
// The cache is modelled at page granularity, which matches the simulator's
// access granularity; the determining behaviour — hits at DRAM speed,
// misses at PM speed plus fill traffic, hot sets larger than DRAM thrash —
// is preserved.
type MemoryMode struct {
	machine.Base

	// tags[set] is the frame cached in each direct-mapped set (keyed by a
	// compact per-page cache key), or -1.
	tags  []int64
	dirty []bool

	// backing is the tier whose latency misses are charged at: the tier
	// directly below the cache (PM in the default hierarchy).
	backing mem.Tier

	Hits, Misses int64
	Writebacks   int64
}

// NewMemoryMode returns the Memory-mode baseline.
func NewMemoryMode() *MemoryMode { return &MemoryMode{} }

// Name implements machine.Policy.
func (mm *MemoryMode) Name() string { return "memory-mode" }

// Attach sizes the cache to the capacity of the machine's fastest tier
// (the tier the memory controller hides behind the cache).
func (mm *MemoryMode) Attach(m *machine.Machine) {
	mm.Base.Attach(m)
	fastest := m.Mem.FastestTier()
	sets := m.Mem.TierCapacity(fastest)
	if sets == 0 {
		panic("policy: Memory-mode needs a fast tier to use as cache")
	}
	var ok bool
	if mm.backing, ok = m.Mem.Below(fastest); !ok {
		panic("policy: Memory-mode needs a tier below the cache tier")
	}
	mm.tags = make([]int64, sets)
	for i := range mm.tags {
		mm.tags[i] = -1
	}
	mm.dirty = make([]bool, sets)
}

// AllocOrder hides the cache tier from the system: pages are born in every
// tier below it (PM only, in the default hierarchy).
func (mm *MemoryMode) AllocOrder() []mem.Tier { return mm.M.Mem.BirthOrder()[1:] }

// cacheKey identifies a PM page for tag comparison.
func cacheKey(pg *mem.Page) int64 {
	return int64(pg.Node)<<32 | int64(pg.Frame)
}

// Access implements the direct-mapped near-memory cache: a tag hit is
// served at DRAM latency; a miss pays the PM access plus the fill (and a
// write-back when the displaced page is dirty).
func (mm *MemoryMode) Access(pg *mem.Page, write bool) sim.Duration {
	lat := mm.M.Mem.Lat
	fastest := mm.M.Mem.FastestTier()
	key := cacheKey(pg)
	set := int(uint64(key) % uint64(len(mm.tags)))
	if mm.tags[set] == key {
		mm.Hits++
		if write {
			mm.dirty[set] = true
			return lat.Write[fastest]
		}
		return lat.Read[fastest]
	}
	// Miss: serve from the backing tier and fill the set.
	mm.Misses++
	cost := lat.AccessCost(mm.backing, write)
	if mm.tags[set] >= 0 && mm.dirty[set] {
		// Write the displaced page back to the backing tier.
		mm.Writebacks++
		cost += lat.Write[mm.backing] / 4
	}
	mm.tags[set] = key
	mm.dirty[set] = write
	// Fill traffic: the demand data must also be written into the cache
	// tier before use (memory-mode misses are slower than raw backing-tier
	// reads).
	cost += lat.Write[fastest]
	return cost
}

// PageFreed invalidates any cached copy of the page.
func (mm *MemoryMode) PageFreed(pg *mem.Page) {
	key := cacheKey(pg)
	set := int(uint64(key) % uint64(len(mm.tags)))
	if mm.tags[set] == key {
		mm.tags[set] = -1
		mm.dirty[set] = false
	}
}

// HitRatio reports the DRAM-cache hit fraction.
func (mm *MemoryMode) HitRatio() float64 {
	total := mm.Hits + mm.Misses
	if total == 0 {
		return 0
	}
	return float64(mm.Hits) / float64(total)
}

var _ machine.Policy = (*MemoryMode)(nil)
