package policy

import (
	"fmt"
	"sort"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
	"multiclock/internal/snapcodec"
)

// Checkpoint serialization for the baseline policies. Maps indexed by page
// pointer are written sorted by page sequence (they are never iterated during
// a run, so the canonical order is behaviorally exact); queue slices are
// written in their exact order, including stale entries for dead pages —
// lazy invalidation means a stale entry still shapes future wakeups, so the
// restore side materializes zombie descriptors for them via the registry.

// --- Static ---

// SnapshotState implements machine.StateSnapshotter: static tiering holds no
// mutable policy state.
func (s *Static) SnapshotState(enc *snapcodec.Encoder) error { return nil }

// RestoreState implements machine.StateSnapshotter.
func (s *Static) RestoreState(dec *snapcodec.Decoder, reg *machine.PageRegistry) error {
	return nil
}

// --- BandwidthGate ---

// SnapshotState implements machine.StateSnapshotter (nested inside a gated
// policy's section).
func (g *BandwidthGate) SnapshotState(enc *snapcodec.Encoder) error {
	enc.I64(int64(g.windowStart))
	enc.I64(int64(g.busyAtStart))
	enc.I64(g.Admits)
	enc.I64(g.Rejects)
	return nil
}

// RestoreState implements machine.StateSnapshotter.
func (g *BandwidthGate) RestoreState(dec *snapcodec.Decoder, reg *machine.PageRegistry) error {
	g.windowStart = sim.Time(dec.I64())
	g.busyAtStart = sim.Duration(dec.I64())
	g.Admits = dec.I64()
	g.Rejects = dec.I64()
	return dec.Err()
}

// --- Nimble ---

// SnapshotState implements machine.StateSnapshotter.
func (nb *Nimble) SnapshotState(enc *snapcodec.Encoder) error {
	enc.I64(nb.Promotions)
	return machine.SnapshotGate(enc, nb.cfg.Gate)
}

// RestoreState implements machine.StateSnapshotter.
func (nb *Nimble) RestoreState(dec *snapcodec.Decoder, reg *machine.PageRegistry) error {
	nb.Promotions = dec.I64()
	if dec.Err() != nil {
		return dec.Err()
	}
	return machine.RestoreGate(dec, reg, nb.cfg.Gate)
}

// --- Nomad ---

// SnapshotState implements machine.StateSnapshotter.
func (nd *Nomad) SnapshotState(enc *snapcodec.Encoder) error {
	type txEntry struct {
		seq     uint64
		aborted bool
	}
	entries := make([]txEntry, 0, len(nd.inflight))
	for pg, tx := range nd.inflight {
		entries = append(entries, txEntry{pg.Seq, tx.aborted})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	enc.Int(len(entries))
	for _, e := range entries {
		enc.U64(e.seq)
		enc.Bool(e.aborted)
	}
	enc.Int(len(nd.shadowed))
	for _, pg := range nd.shadowed {
		enc.U64(pg.Seq)
	}
	for _, v := range []int64{nd.TxBegins, nd.TxCommits, nd.TxAborts, nd.FreeDemotes} {
		enc.I64(v)
	}
	return nil
}

// RestoreState implements machine.StateSnapshotter.
func (nd *Nomad) RestoreState(dec *snapcodec.Decoder, reg *machine.PageRegistry) error {
	n := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	for i := 0; i < n; i++ {
		seq := dec.U64()
		aborted := dec.Bool()
		if dec.Err() != nil {
			return dec.Err()
		}
		pg, ok := reg.Live(seq)
		if !ok {
			// Inflight entries die with the page, so only live pages appear.
			return fmt.Errorf("policy: snapshot nomad transaction names unknown page %d", seq)
		}
		if _, dup := nd.inflight[pg]; dup {
			return fmt.Errorf("policy: snapshot repeats nomad transaction for page %d", seq)
		}
		nd.inflight[pg] = &nomadTx{aborted: aborted}
	}
	var err error
	if nd.shadowed, err = restorePageList(dec, reg, nd.shadowed); err != nil {
		return err
	}
	for _, p := range []*int64{&nd.TxBegins, &nd.TxCommits, &nd.TxAborts, &nd.FreeDemotes} {
		*p = dec.I64()
	}
	return dec.Err()
}

// --- S3FIFO ---

// SnapshotState implements machine.StateSnapshotter.
func (s *S3FIFO) SnapshotState(enc *snapcodec.Encoder) error {
	type stEntry struct {
		seq uint64
		v   uint8
	}
	entries := make([]stEntry, 0, len(s.state))
	for pg, v := range s.state {
		entries = append(entries, stEntry{pg.Seq, v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	enc.Int(len(entries))
	for _, e := range entries {
		enc.U64(e.seq)
		enc.U8(e.v)
	}
	enc.Int(len(s.queues))
	for _, q := range s.queues {
		enc.Bool(q != nil)
		if q == nil {
			continue
		}
		for _, list := range [][]*mem.Page{q.small, q.main, q.ghost} {
			enc.Int(len(list))
			for _, pg := range list {
				enc.U64(pg.Seq)
			}
		}
	}
	for _, v := range []int64{s.SmallToMain, s.GhostHits, s.Promotions} {
		enc.I64(v)
	}
	return nil
}

// RestoreState implements machine.StateSnapshotter.
func (s *S3FIFO) RestoreState(dec *snapcodec.Decoder, reg *machine.PageRegistry) error {
	n := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	for i := 0; i < n; i++ {
		seq := dec.U64()
		v := dec.U8()
		if dec.Err() != nil {
			return dec.Err()
		}
		pg, ok := reg.Live(seq)
		if !ok {
			// State entries die with the page (PageFreed / CauseDelete), so
			// only live pages appear.
			return fmt.Errorf("policy: snapshot s3fifo state names unknown page %d", seq)
		}
		if _, dup := s.state[pg]; dup {
			return fmt.Errorf("policy: snapshot repeats s3fifo state for page %d", seq)
		}
		s.state[pg] = v
	}
	nq := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if nq != len(s.queues) {
		return fmt.Errorf("policy: snapshot has %d s3fifo queue sets, policy %d", nq, len(s.queues))
	}
	for i, q := range s.queues {
		has := dec.Bool()
		if dec.Err() != nil {
			return dec.Err()
		}
		if has != (q != nil) {
			return fmt.Errorf("policy: snapshot s3fifo queue presence on node %d does not match policy", i)
		}
		if q == nil {
			continue
		}
		var err error
		if q.small, err = restorePageList(dec, reg, q.small); err != nil {
			return err
		}
		if q.main, err = restorePageList(dec, reg, q.main); err != nil {
			return err
		}
		if q.ghost, err = restorePageList(dec, reg, q.ghost); err != nil {
			return err
		}
	}
	for _, p := range []*int64{&s.SmallToMain, &s.GhostHits, &s.Promotions} {
		*p = dec.I64()
	}
	return dec.Err()
}

// restorePageList decodes one exact-order page reference list into buf,
// resolving dead references to zombie descriptors.
func restorePageList(dec *snapcodec.Decoder, reg *machine.PageRegistry, buf []*mem.Page) ([]*mem.Page, error) {
	n := dec.Int()
	if dec.Err() != nil {
		return buf, dec.Err()
	}
	if n < 0 || n > dec.Remaining()/8 {
		return buf, fmt.Errorf("policy: snapshot claims %d page references in %d bytes", n, dec.Remaining())
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, reg.Resolve(dec.U64()))
	}
	return buf, dec.Err()
}

var (
	_ machine.StateSnapshotter = (*Static)(nil)
	_ machine.StateSnapshotter = (*BandwidthGate)(nil)
	_ machine.StateSnapshotter = (*Nimble)(nil)
	_ machine.StateSnapshotter = (*Nomad)(nil)
	_ machine.StateSnapshotter = (*S3FIFO)(nil)
)
