package policy

import (
	"fmt"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// BandwidthGateConfig tunes the TierBPF-style promotion admission gate.
type BandwidthGateConfig struct {
	// Window is the virtual-time accounting window over which migration
	// bandwidth consumption is measured (default 1 s).
	Window sim.Duration
	// Budget is the fraction of each window migration copies may consume
	// before the gate starts rejecting (default 0.05 — migration traffic
	// beyond a few percent of wall time means the copy engine is stealing
	// the bandwidth the promotions were meant to win back).
	Budget float64
	// HardLimit is the multiple of Budget beyond which everything is
	// rejected, including high-benefit candidates (default 2).
	HardLimit float64
}

// DefaultBandwidthGateConfig returns the default operating point.
func DefaultBandwidthGateConfig() BandwidthGateConfig {
	return BandwidthGateConfig{Window: 1 * sim.Second, Budget: 0.05, HardLimit: 2}
}

// BandwidthGate is a TierBPF-style admission controller for promotions
// (arXiv:2604.12300): scanning daemons consult it before each migration,
// and it tracks how much virtual time the machine's copy engine has spent
// inside the current accounting window. Under the budget everything is
// admitted; over it only high-expected-benefit candidates pass (dirty
// pages, whose continued residence in PM pays the tier's expensive writes);
// past the hard limit nothing does. Rejected pages return to their LRU and
// may requalify once bandwidth pressure subsides.
//
// The gate reads only the machine's MigrationBusy counter and virtual
// clock, so it is deterministic and adds no state to any page.
type BandwidthGate struct {
	cfg BandwidthGateConfig
	m   *machine.Machine

	// The current window: where it started and how much migration busy
	// time the machine had accumulated at that point.
	windowStart sim.Time
	busyAtStart sim.Duration

	// Admits/Rejects count gate decisions (rejects also aggregate into
	// mem.Counters.AdmissionRejects).
	Admits  int64
	Rejects int64
}

// NewBandwidthGate returns an admission gate with the given configuration.
func NewBandwidthGate(cfg BandwidthGateConfig) *BandwidthGate {
	if cfg.Window <= 0 {
		cfg.Window = 1 * sim.Second
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 0.05
	}
	if cfg.HardLimit < 1 {
		cfg.HardLimit = 2
	}
	return &BandwidthGate{cfg: cfg}
}

// Name implements machine.PromotionGate.
func (g *BandwidthGate) Name() string {
	return fmt.Sprintf("bandwidth-gate(%.0f%%/%v)", g.cfg.Budget*100, g.cfg.Window)
}

// Attach implements machine.PromotionGate.
func (g *BandwidthGate) Attach(m *machine.Machine) { g.m = m }

// Admit implements machine.PromotionGate.
func (g *BandwidthGate) Admit(pg *mem.Page, now sim.Time) bool {
	if now-g.windowStart >= sim.Time(g.cfg.Window) {
		g.windowStart = now
		g.busyAtStart = g.m.Mem.Counters.MigrationBusy
	}
	spent := g.m.Mem.Counters.MigrationBusy - g.busyAtStart
	budget := sim.Duration(float64(g.cfg.Window) * g.cfg.Budget)
	switch {
	case spent < budget:
		g.Admits++
		return true
	case spent < sim.Duration(float64(budget)*g.cfg.HardLimit) && pg.Flags.Has(mem.FlagDirty):
		// Over budget: spend what remains only on the candidates whose
		// stay in PM is costliest.
		g.Admits++
		return true
	default:
		g.Rejects++
		g.m.Mem.Counters.AdmissionRejects++
		return false
	}
}

var _ machine.PromotionGate = (*BandwidthGate)(nil)
