package policy

import (
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// NimbleConfig tunes the Nimble page-selection baseline.
type NimbleConfig struct {
	// ScanInterval matches kpromoted's period for a fair comparison; the
	// paper uses 1 s for both systems (§V-C).
	ScanInterval sim.Duration
	// ScanBatch is pages examined per wakeup (1024 in the paper).
	ScanBatch int
	// Gate, when non-nil, is a promotion admission controller consulted
	// once per candidate before any migration work is spent. A rejected
	// candidate returns to its active list.
	Gate machine.PromotionGate
}

// DefaultNimbleConfig mirrors the paper's settings.
func DefaultNimbleConfig() NimbleConfig {
	return NimbleConfig{ScanInterval: 1 * sim.Second, ScanBatch: 1024}
}

// Nimble reimplements the page *selection* mechanism of Nimble as the paper
// did for its comparison (§II-D): Linux's stock CLOCK profiling (recency
// only — a single recent reference qualifies a page) with the most recently
// accessed pages of the lower tier exchanged into DRAM, single-threaded.
// Migration-mechanism optimizations (multi-threaded copy, THP exchange) are
// out of scope exactly as in the paper's comparison.
type Nimble struct {
	machine.Base
	cfg     NimbleConfig
	daemons []*sim.Daemon

	// Promotions counts pages moved up; exposed for Fig. 8 telemetry.
	Promotions int64

	// Reusable candidate buffers (allocation-free wakeups). Kept distinct
	// because makeRoom nests inside scan's candidate iteration via
	// promoteIsolated.
	promoteBuf []*mem.Page
	demoteBuf  []*mem.Page
}

// NewNimble returns the Nimble-selection baseline.
func NewNimble(cfg NimbleConfig) *Nimble {
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 1 * sim.Second
	}
	if cfg.ScanBatch <= 0 {
		cfg.ScanBatch = 1024
	}
	return &Nimble{cfg: cfg}
}

// Name implements machine.Policy. A gated instance reports its admission
// controller so bake-off tables distinguish the variants.
func (nb *Nimble) Name() string {
	if nb.cfg.Gate != nil {
		return "nimble+" + nb.cfg.Gate.Name()
	}
	return "nimble"
}

// SetScanInterval retunes the daemon period (Fig. 10 sweep).
func (nb *Nimble) SetScanInterval(d sim.Duration) {
	nb.cfg.ScanInterval = d
	for _, dm := range nb.daemons {
		dm.SetInterval(d)
	}
}

// Attach starts the per-node scanning daemon.
func (nb *Nimble) Attach(m *machine.Machine) {
	nb.Base.Attach(m)
	if nb.cfg.Gate != nil {
		nb.cfg.Gate.Attach(m)
	}
	for _, n := range m.Mem.Nodes {
		node := n.ID
		var d *sim.Daemon
		d = m.Clock.StartDaemon("nimble-scan", nb.cfg.ScanInterval, func(now sim.Time) {
			nb.scan(node)
			m.FinishDaemonPass(d)
		})
		nb.daemons = append(nb.daemons, d)
	}
}

// Stop halts the daemons.
func (nb *Nimble) Stop() {
	for _, d := range nb.daemons {
		d.Stop()
	}
}

// scan is one daemon wakeup: vanilla CLOCK aging, then promote every
// recently-referenced page found near the head of the active list — the
// recency-only selection that promotes more pages with a lower re-access
// rate than MULTI-CLOCK (Figs. 8 and 9).
func (nb *Nimble) scan(node mem.NodeID) {
	m := nb.M
	vec := m.Vecs[node]
	stats := vec.ScanCycleRecency(nb.cfg.ScanBatch)
	nb.ScanTax(stats)

	if m.Mem.Nodes[node].Tier == m.Mem.FastestTier() {
		return
	}
	candidates := vec.AppendActiveReferenced(nb.promoteBuf[:0], nb.cfg.ScanBatch, nb.cfg.ScanBatch)
	nb.promoteBuf = candidates[:0]
	if m.Metrics != nil {
		m.Metrics.QueueDepth("promote_queue_depth", len(candidates), m.Clock.Now())
	}
	for _, pg := range candidates {
		if nb.cfg.Gate != nil && !nb.cfg.Gate.Admit(pg, m.Clock.Now()) {
			// Refused by the admission gate: back to the active list
			// without spending a migration attempt.
			m.Vecs[pg.Node].Putback(pg)
			continue
		}
		if nb.promoteIsolated(pg) {
			nb.Promotions++
		} else {
			// No retry path in Nimble: a failed promotion is abandoned.
			if l := m.Lifecycle; l != nil {
				l.PromoteDropped(pg, m.Clock.Now())
			}
			m.Vecs[pg.Node].Putback(pg)
		}
	}
}

// promoteIsolated exchanges the page into the tier above it, demoting a
// cold page from that tier first if no free frame exists (Nimble's
// two-sided exchange, reduced to its placement effect).
func (nb *Nimble) promoteIsolated(pg *mem.Page) bool {
	m := nb.M
	up, ok := m.Mem.Above(m.Mem.Tier(pg))
	if !ok {
		return false
	}
	dst, ok := promoteDst(m, up, nb.makeRoom)
	if !ok {
		return false
	}
	return m.MigrateIsolated(pg, dst)
}

// makeRoom demotes cold pages (by its recency lists) from pressured nodes
// of tier t one tier down.
func (nb *Nimble) makeRoom(t mem.Tier) {
	nb.demoteBuf = relieveTier(nb.M, t, nb.cfg.ScanBatch, nb.demoteBuf, nil)
}

// Pressure reacts to allocation pressure on a demotion-capable tier like
// kswapd.
func (nb *Nimble) Pressure(node mem.NodeID) {
	if t := nb.M.Mem.Nodes[node].Tier; demotable(nb.M, t) {
		nb.makeRoom(t)
	}
}

var _ machine.Policy = (*Nimble)(nil)
