package policy

import (
	"multiclock/internal/lru"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// S3FIFOConfig tunes the S3-FIFO promote-candidate selector.
type S3FIFOConfig struct {
	// ScanInterval is the selector daemon's wakeup period.
	ScanInterval sim.Duration
	// ScanBatch bounds the queue entries processed per wakeup (and the
	// CLOCK aging batch on the demotion side).
	ScanBatch int
	// SmallFrac is the small queue's share of a PM node's frames
	// (default 0.1, the S3-FIFO paper's split).
	SmallFrac float64
	// PromoteFreq is the access count at which a main-queue page is
	// promoted to DRAM (default 2 — matching MULTI-CLOCK's two-touch bar;
	// frequencies saturate at 3 as in S3-FIFO).
	PromoteFreq uint8
}

// DefaultS3FIFOConfig matches the shared operating point of the bake-off.
func DefaultS3FIFOConfig() S3FIFOConfig {
	return S3FIFOConfig{
		ScanInterval: 1 * sim.Second,
		ScanBatch:    1024,
		SmallFrac:    0.1,
		PromoteFreq:  2,
	}
}

// Selector membership lives in the low bits of the state byte, the
// saturating access frequency (0..3) in the high nibble, and one "fresh"
// bit marks a page admitted by the very access being served (a birth
// fault): that access is the insertion itself, not a reuse, so the first
// frequency bump is absorbed. One map holds it all so the access fast path
// pays a single lookup.
const (
	s3None  uint8 = 0
	s3Small uint8 = 1
	s3Main  uint8 = 2
	s3Ghost uint8 = 3

	s3MemberMask uint8 = 0x07
	s3Fresh      uint8 = 0x08
	s3FreqShift        = 4
	s3FreqMax    uint8 = 3
)

// s3queues is the per-PM-node queue triple. The small and main queues hold
// PM-resident pages; the ghost queue holds identities of pages that left
// small without demonstrated reuse. All three are lazily invalidated: the
// state map is authoritative, and a popped entry whose recorded membership
// no longer names that queue is stale and skipped.
type s3queues struct {
	small, main, ghost []*mem.Page
	smallCap, ghostCap int
	mainCap            int
}

// S3FIFO selects promotion candidates with the S3-FIFO queue structure
// (small/main/ghost FIFOs with lazy promotion and quick demotion) instead
// of CLOCK aging: pages arriving on a PM node enter a small probationary
// FIFO; leaving it without a recorded access costs them a ghost entry,
// with one or more accesses they graduate to the main FIFO; a ghost hit —
// an access to a recently "quick-demoted" identity — re-enters main
// directly. Main-queue pages whose saturating access count reaches
// PromoteFreq migrate to DRAM. Arrivals are observed through the lru.Vec
// transition-hook surface; DRAM aging and the demotion side reuse the
// vanilla recency CLOCK.
type S3FIFO struct {
	machine.Base
	cfg     S3FIFOConfig
	daemons []*sim.Daemon

	// queues is indexed by NodeID; nil for DRAM nodes.
	queues []*s3queues
	// state maps each tracked page to membership|freq. Indexed only, never
	// iterated (determinism); entries die with the page or at ghost
	// eviction.
	state map[*mem.Page]uint8

	// Selector stats for the bake-off report.
	SmallToMain int64
	GhostHits   int64
	Promotions  int64

	promoteBuf []*mem.Page
	demoteBuf  []*mem.Page
}

// NewS3FIFO returns the S3-FIFO selector policy.
func NewS3FIFO(cfg S3FIFOConfig) *S3FIFO {
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 1 * sim.Second
	}
	if cfg.ScanBatch <= 0 {
		cfg.ScanBatch = 1024
	}
	if cfg.SmallFrac <= 0 || cfg.SmallFrac >= 1 {
		cfg.SmallFrac = 0.1
	}
	if cfg.PromoteFreq == 0 {
		cfg.PromoteFreq = 2
	}
	if cfg.PromoteFreq > s3FreqMax {
		cfg.PromoteFreq = s3FreqMax
	}
	return &S3FIFO{cfg: cfg, state: make(map[*mem.Page]uint8)}
}

// Name implements machine.Policy.
func (s *S3FIFO) Name() string { return "s3fifo" }

// SetScanInterval retunes the daemon period (interval sweeps).
func (s *S3FIFO) SetScanInterval(d sim.Duration) {
	s.cfg.ScanInterval = d
	for _, dm := range s.daemons {
		dm.SetInterval(d)
	}
}

// Attach sizes the per-PM-node queues, registers the arrival hook on each
// PM vec, and starts the per-node daemons.
func (s *S3FIFO) Attach(m *machine.Machine) {
	s.Base.Attach(m)
	s.queues = make([]*s3queues, len(m.Mem.Nodes))
	for _, n := range m.Mem.Nodes {
		node := n.ID
		if n.Tier != m.Mem.FastestTier() {
			smallCap := int(float64(n.Frames) * s.cfg.SmallFrac)
			if smallCap < 8 {
				smallCap = 8
			}
			s.queues[node] = &s3queues{
				smallCap: smallCap,
				mainCap:  n.Frames - smallCap,
				ghostCap: n.Frames / 2,
			}
			m.Vecs[node].AddHook(s)
		}
		var d *sim.Daemon
		d = m.Clock.StartDaemon("s3fifo-scan", s.cfg.ScanInterval, func(now sim.Time) {
			s.scan(node)
			m.FinishDaemonPass(d)
		})
		s.daemons = append(s.daemons, d)
	}
}

// Stop halts the daemons.
func (s *S3FIFO) Stop() {
	for _, d := range s.daemons {
		d.Stop()
	}
}

// PageTransition implements lru.Hook: PM arrivals enter the small queue.
// Only policy-internal state is touched, per the hook contract.
func (s *S3FIFO) PageTransition(pg *mem.Page, node mem.NodeID, from, to lru.State, cause lru.Cause) {
	q := s.queues[node]
	if q == nil {
		return
	}
	switch cause {
	case lru.CauseAdd:
		// Birth (or swap-in) on a PM node: the triggering access is the
		// insertion, not a reuse.
		s.admit(q, pg, true)
	case lru.CausePutback:
		// A page the machine putback on a PM vec it is not tracked on is
		// an arrival too (a demotion from DRAM); putbacks of pages already
		// tracked here — failed promotions, parked candidates — are not.
		// Any access after a demotion arrival is a genuine reuse.
		if s.state[pg]&s3MemberMask == s3None {
			s.admit(q, pg, false)
		}
	case lru.CauseDelete:
		// Unmap/swap-out: forget the page; stale queue entries resolve
		// lazily. (Descriptors are never recycled, so no ABA hazard.)
		delete(s.state, pg)
	}
}

// admit enters a base page into the small probationary queue with frequency
// zero. Compound pages stay outside the selector (they migrate only through
// the demotion machinery, as in the cache-oriented original).
func (s *S3FIFO) admit(q *s3queues, pg *mem.Page, fresh bool) {
	if pg.IsHuge() {
		return
	}
	v := s3Small
	if fresh {
		v |= s3Fresh
	}
	s.state[pg] = v
	q.small = append(q.small, pg)
}

// Access bumps the tracked page's saturating frequency; an access to a
// ghost identity is the S3-FIFO re-insertion signal and moves the page
// directly to the main queue.
func (s *S3FIFO) Access(pg *mem.Page, write bool) sim.Duration {
	if v, ok := s.state[pg]; ok {
		switch {
		case v&s3MemberMask == s3Ghost:
			// Ghost hit: the quick demotion was wrong, skip probation.
			s.GhostHits++
			s.state[pg] = s3Main | 1<<s3FreqShift
			if q := s.queues[pg.Node]; q != nil {
				q.main = append(q.main, pg)
			}
		case v&s3Fresh != 0:
			// The admitting access itself: absorbed, not a reuse.
			s.state[pg] = v &^ s3Fresh
		case v>>s3FreqShift < s3FreqMax:
			s.state[pg] = v + 1<<s3FreqShift
		}
	}
	return s.Base.Access(pg, write)
}

// PageFreed forgets a dying page.
func (s *S3FIFO) PageFreed(pg *mem.Page) {
	delete(s.state, pg)
}

// scan is one daemon wakeup. Every node runs vanilla CLOCK aging (the
// demotion side still wants a meaningful active/inactive split) and flushes
// any promote-list residue from supervised-access marking back to the
// active list — candidate selection belongs to the queues alone. PM nodes
// then run the queue maintenance and promotion pass.
func (s *S3FIFO) scan(node mem.NodeID) {
	m := s.M
	vec := m.Vecs[node]
	stats := vec.ScanCycleRecency(s.cfg.ScanBatch)

	flushed := vec.AppendPromote(s.promoteBuf[:0], -1)
	s.promoteBuf = flushed[:0]
	for _, pg := range flushed {
		lru.ClearPromote(pg)
		vec.Putback(pg)
	}
	stats.Scanned += len(flushed)

	q := s.queues[node]
	if q == nil {
		// Fastest tier: aging only, plus opportunistic pressure relief.
		s.ScanTax(stats)
		if m.Mem.Nodes[node].UnderLow() {
			s.makeRoom(m.Mem.Nodes[node].Tier)
		}
		return
	}

	stats.Scanned += s.evictSmall(q)
	stats.Scanned += s.promoteFromMain(q)
	s.ScanTax(stats)
}

// evictSmall drains the small queue down to its capacity: entries with
// demonstrated reuse graduate to main, the rest quick-demote to ghost. It
// returns the number of entries examined (daemon work accounting).
func (s *S3FIFO) evictSmall(q *s3queues) int {
	work := 0
	for len(q.small) > q.smallCap && work < s.cfg.ScanBatch {
		pg := q.small[0]
		q.small = q.small[1:]
		work++
		v, ok := s.state[pg]
		if !ok || v&s3MemberMask != s3Small {
			continue // stale: the page died or was re-admitted elsewhere
		}
		if v>>s3FreqShift > 0 {
			s.SmallToMain++
			s.state[pg] = s3Main | v&^s3MemberMask
			q.main = append(q.main, pg)
		} else {
			s.state[pg] = s3Ghost
			q.ghost = append(q.ghost, pg)
			s.trimGhost(q)
		}
	}
	return work
}

// trimGhost evicts the oldest ghost identities beyond capacity; an evicted
// identity is forgotten entirely.
func (s *S3FIFO) trimGhost(q *s3queues) {
	for len(q.ghost) > q.ghostCap {
		pg := q.ghost[0]
		q.ghost = q.ghost[1:]
		if s.state[pg] == s3Ghost {
			delete(s.state, pg)
		}
	}
}

// promoteFromMain examines up to ScanBatch main-queue entries: pages at or
// above the promotion frequency migrate to DRAM, the rest rotate to the
// tail (with a frequency decay when the queue is over capacity, the
// original's eviction pressure). Returns entries examined.
func (s *S3FIFO) promoteFromMain(q *s3queues) int {
	m := s.M
	limit := len(q.main)
	if limit > s.cfg.ScanBatch {
		limit = s.cfg.ScanBatch
	}
	depth := 0
	for i := 0; i < limit; i++ {
		pg := q.main[0]
		q.main = q.main[1:]
		v, ok := s.state[pg]
		if !ok || v&s3MemberMask != s3Main {
			continue // stale
		}
		freq := v >> s3FreqShift
		if freq < s.cfg.PromoteFreq || pg.Flags.Has(mem.FlagUnevictable) ||
			!pg.OnList() || pg.Flags.Has(mem.FlagIsolated) {
			// Not (or not yet) a candidate: rotate, decaying the recorded
			// frequency when the queue is over capacity so stale heat
			// cannot pin a page near the promotion bar forever.
			if len(q.main) >= q.mainCap && freq > 0 {
				v -= 1 << s3FreqShift
				s.state[pg] = v
			}
			q.main = append(q.main, pg)
			continue
		}
		depth++
		m.Vecs[pg.Node].Isolate(pg)
		if s.promoteIsolated(pg) {
			s.Promotions++
			delete(s.state, pg)
		} else {
			// Destination full: put the page back and keep it queued.
			m.Vecs[pg.Node].Putback(pg)
			q.main = append(q.main, pg)
		}
	}
	if m.Metrics != nil {
		m.Metrics.QueueDepth("promote_queue_depth", depth, m.Clock.Now())
	}
	return limit
}

// promoteIsolated exchanges the page into the tier above it, demoting cold
// pages from that tier first if no free frame exists.
func (s *S3FIFO) promoteIsolated(pg *mem.Page) bool {
	m := s.M
	up, ok := m.Mem.Above(m.Mem.Tier(pg))
	if !ok {
		return false
	}
	dst, ok := promoteDst(m, up, s.makeRoom)
	if !ok {
		return false
	}
	return m.MigrateIsolated(pg, dst)
}

// makeRoom demotes cold pages (by the recency lists) from pressured nodes
// of tier t one tier down.
func (s *S3FIFO) makeRoom(t mem.Tier) {
	s.demoteBuf = relieveTier(s.M, t, s.cfg.ScanBatch, s.demoteBuf, nil)
}

// Pressure reacts to allocation pressure on a demotion-capable tier like
// kswapd.
func (s *S3FIFO) Pressure(node mem.NodeID) {
	if t := s.M.Mem.Nodes[node].Tier; demotable(s.M, t) {
		s.makeRoom(t)
	}
}

var _ machine.Policy = (*S3FIFO)(nil)
var _ machine.Stopper = (*S3FIFO)(nil)
var _ lru.Hook = (*S3FIFO)(nil)
