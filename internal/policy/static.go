// Package policy implements the baseline tiering systems the paper
// evaluates against MULTI-CLOCK (§II-D, §V): static tiering, Nimble's
// recency-only page selection, AutoTiering-CPM/OPM with software
// hint-page-fault tracking, and persistent memory in Memory-mode. An
// AMP-style selector family (LRU/LFU/random) is provided as an extension.
package policy

import (
	"multiclock/internal/machine"
	"multiclock/internal/mem"
)

// Static is static tiering: pages are born in DRAM until it fills, then in
// PM, and never move for the rest of their lifetime (§II-D). It is the
// normalization baseline of every figure in the paper's evaluation.
type Static struct {
	machine.Base
}

// NewStatic returns the static-tiering policy.
func NewStatic() *Static { return &Static{} }

// Name implements machine.Policy.
func (s *Static) Name() string { return "static" }

var _ machine.Policy = (*Static)(nil)

// pickVictimNode returns the tier-t node with free frames above its min
// reserve, or NoNode. Shared by the migrating baselines.
func pickVictimNode(m *machine.Machine, t mem.Tier) mem.NodeID {
	id := m.Mem.PickNode(t)
	if id == mem.NoNode {
		return id
	}
	if m.Mem.Nodes[id].UnderMin() {
		return mem.NoNode
	}
	return id
}
