package policy

import (
	"multiclock/internal/machine"
	"multiclock/internal/mem"
)

// Tier-relative helpers shared by the migrating baselines. Policies in this
// package never name tiers: they navigate the machine's hierarchy with
// FastestTier/Above/Below, so the same code drives a two-tier DRAM/PM
// machine and a four-tier dram/cxl/pm/ssd one.

// demotable reports whether tier t has a frame-backed tier below it — i.e.
// whether pressure on t can be relieved by demotion rather than swap.
func demotable(m *machine.Machine, t mem.Tier) bool {
	down, ok := m.Mem.Below(t)
	return ok && len(m.Mem.TierNodes(down)) > 0
}

// promoteDst picks a promotion destination in tier `up`: a node with free
// frames above its reserve, demoting cold pages from the tier (via the
// policy's makeRoom) once when every node is at its reserve.
func promoteDst(m *machine.Machine, up mem.Tier, makeRoom func(mem.Tier)) (mem.NodeID, bool) {
	dst := pickVictimNode(m, up)
	if dst == mem.NoNode {
		makeRoom(up)
		dst = pickVictimNode(m, up)
		if dst == mem.NoNode {
			return mem.NoNode, false
		}
	}
	return dst, true
}

// relieveTier is the consolidated kswapd-style demotion scan every
// migrating baseline shares: for each node of tier t under its high
// watermark, rebalance the recency lists and demote up to `batch` cold
// victims one tier down — or swap them out when the tier below has no free
// frame (or is the durable swap tier). tryFirst, when non-nil, gets the
// first shot at each victim (Nomad's free shadow demotion); a true return
// consumes the victim. The returned slice is the reusable victim buffer.
func relieveTier(m *machine.Machine, t mem.Tier, batch int, buf []*mem.Page, tryFirst func(*mem.Page) bool) []*mem.Page {
	for _, id := range m.Mem.TierNodes(t) {
		n := m.Mem.Nodes[id]
		if !n.UnderHigh() {
			continue
		}
		vec := m.Vecs[id]
		need := n.WM.High - n.FreeFrames()
		if need > batch {
			need = batch
		}
		vec.BalanceActive(1, batch)
		victims := vec.AppendDemoteCandidates(buf[:0], need)
		for _, victim := range victims {
			if tryFirst != nil && tryFirst(victim) {
				continue
			}
			dst := m.Mem.PickNodeBelow(t)
			if dst == mem.NoNode || !m.MigrateIsolated(victim, dst) {
				m.SwapOut(victim)
			}
		}
		buf = victims[:0]
	}
	return buf
}
