package policy

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestNoHardcodedTierConstants pins the tier-relative API migration: policy
// sources must navigate the hierarchy through FastestTier/Above/Below and
// friends, never by naming mem.TierDRAM or mem.TierPM directly. Test files
// are exempt — they legitimately pin two-tier placement expectations.
func TestNoHardcodedTierConstants(t *testing.T) {
	banned := regexp.MustCompile(`\bmem\.Tier(DRAM|PM)\b`)
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Clean(name))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if banned.MatchString(line) {
				t.Errorf("%s:%d: hardcoded tier constant in policy source: %s",
					name, i+1, strings.TrimSpace(line))
			}
		}
	}
}
