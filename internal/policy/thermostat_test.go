package policy

import (
	"testing"

	"multiclock/internal/core"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// mcForTest builds a MULTI-CLOCK machine for the granularity contrast.
func mcForTest() (*core.MultiClock, *machine.Machine) {
	mc := core.New(core.Config{ScanInterval: 10 * sim.Millisecond})
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{1024}
	cfg.Mem.PMNodes = []int{4096}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	return mc, machine.New(cfg, mc)
}

func thermostatCfg() ThermostatConfig {
	cfg := DefaultThermostatConfig()
	cfg.ScanInterval = 10 * sim.Millisecond
	cfg.RegionPages = 64 // small regions so tests stay small
	cfg.SampleFrac = 0.2
	return cfg
}

func TestThermostatDefaults(t *testing.T) {
	cfg := DefaultThermostatConfig()
	if cfg.RegionPages != 512 {
		t.Fatal("regions should default to 2 MiB huge pages")
	}
	th := NewThermostat(ThermostatConfig{})
	if th.cfg.ScanInterval != 1*sim.Second || th.cfg.RegionPages != 512 || th.cfg.DemoteBatch != 8 {
		t.Fatalf("zero config not normalized: %+v", th.cfg)
	}
	if th.Name() != "thermostat" {
		t.Fatal("name")
	}
}

// TestThermostatDemotesColdRegions: untouched regions must be sampled,
// classified cold, and demoted wholesale.
func TestThermostatDemotesColdRegions(t *testing.T) {
	th := NewThermostat(thermostatCfg())
	m := newMachine(1024, 4096, th)
	as := m.NewSpace()
	v := as.Mmap(512, false, "data") // 8 regions of 64 pages
	for i := 0; i < 512; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	// Keep one region hot; leave the rest cold.
	hotBase := v.Start
	for round := 0; round < 20; round++ {
		for i := 0; i < 64; i++ {
			m.Access(as, hotBase+pagetable.VPN(i), false)
		}
		m.Compute(11 * sim.Millisecond)
	}
	if th.Demotions == 0 {
		t.Fatal("no cold regions demoted")
	}
	// The hot region must still be fully DRAM-resident.
	inPM := 0
	for i := 0; i < 64; i++ {
		if pg := as.Lookup(hotBase + pagetable.VPN(i)); pg != nil && m.Mem.Tier(pg) == mem.TierPM {
			inPM++
		}
	}
	if inPM > 8 {
		t.Fatalf("%d/64 hot-region pages demoted", inPM)
	}
	// Cold pages must have moved to PM.
	if m.Mem.Counters.Demotions < 64 {
		t.Fatalf("only %d pages demoted", m.Mem.Counters.Demotions)
	}
}

// TestThermostatCorrectsMisclassification: a demoted region that turns hot
// is promoted back.
func TestThermostatCorrectsMisclassification(t *testing.T) {
	cfg := thermostatCfg()
	cfg.SampleFrac = 0.3
	th := NewThermostat(cfg)
	m := newMachine(1024, 4096, th)
	as := m.NewSpace()
	v := as.Mmap(512, false, "data")
	for i := 0; i < 512; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	// Phase 1: everything idle → regions demoted.
	for round := 0; round < 20; round++ {
		m.Compute(11 * sim.Millisecond)
	}
	if th.Demotions == 0 {
		t.Skip("no demotions during idle phase")
	}
	// Phase 2: one demoted region becomes hot.
	target := v.Start + pagetable.VPN(128)
	if pg := as.Lookup(target); pg == nil || m.Mem.Tier(pg) != mem.TierPM {
		t.Skip("target region not in PM")
	}
	for round := 0; round < 30; round++ {
		for i := 0; i < 64; i++ {
			m.Access(as, target+pagetable.VPN(i%64), false)
		}
		m.Compute(11 * sim.Millisecond)
	}
	if th.Promotions == 0 {
		t.Fatal("misclassified hot region never promoted back")
	}
}

// TestThermostatGranularityTradeoff contrasts region- with base-page
// granularity on the pattern the paper targets: one hot page inside an
// otherwise cold region. Thermostat classifies and migrates the whole
// region, and the single page's faults are too sparse to trigger
// misclassification correction — the page can be stranded in PM.
// MULTI-CLOCK's base-page promote list recovers it.
func TestThermostatGranularityTradeoff(t *testing.T) {
	// Thermostat side.
	th := NewThermostat(thermostatCfg())
	m := newMachine(1024, 4096, th)
	as := m.NewSpace()
	v := as.Mmap(256, false, "data")
	for i := 0; i < 256; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	lone := v.Start + pagetable.VPN(64)
	for round := 0; round < 20; round++ {
		for rep := 0; rep < 32; rep++ {
			m.Access(as, lone, false)
		}
		m.Compute(11 * sim.Millisecond)
	}
	if th.Demotions == 0 {
		t.Fatal("thermostat never demoted a region")
	}
	// Wholesale migration: demotions moved whole regions of pages.
	if m.Mem.Counters.Demotions < 64 {
		t.Fatalf("expected region-wholesale demotion, got %d pages", m.Mem.Counters.Demotions)
	}
	loneUnderThermostat := false
	if pg := as.Lookup(lone); pg != nil && m.Mem.Tier(pg) == mem.TierDRAM {
		loneUnderThermostat = true
	}

	// MULTI-CLOCK side: identical pattern; the lone page must end in DRAM.
	mc2, m2 := mcForTest()
	as2 := m2.NewSpace()
	v2 := as2.Mmap(256, false, "data")
	for i := 0; i < 256; i++ {
		m2.Access(as2, v2.Start+pagetable.VPN(i), false)
	}
	// Push everything to PM with a filler churn, then heat the lone page.
	filler := as2.Mmap(1024, false, "filler")
	for i := 0; i < 1024; i++ {
		m2.Access(as2, filler.Start+pagetable.VPN(i), false)
	}
	lone2 := v2.Start + pagetable.VPN(64)
	for round := 0; round < 20; round++ {
		for rep := 0; rep < 32; rep++ {
			m2.Access(as2, lone2, false)
		}
		m2.Compute(11 * sim.Millisecond)
	}
	mc2.Stop()
	pg2 := as2.Lookup(lone2)
	if pg2 == nil || m2.Mem.Tier(pg2) != mem.TierDRAM {
		t.Fatal("multiclock did not keep/promote the lone hot page in DRAM")
	}
	// The contrast is informational when thermostat happens to keep it;
	// the hard assertions above (wholesale demotion, multiclock recovery)
	// are the trade-off's two sides.
	_ = loneUnderThermostat
}

func TestThermostatStop(t *testing.T) {
	th := NewThermostat(thermostatCfg())
	m := newMachine(256, 1024, th)
	as := m.NewSpace()
	fillOver(m, as, 100)
	th.Stop()
	scanned := m.Mem.Counters.PagesScanned
	m.Compute(10 * sim.Second)
	if m.Mem.Counters.PagesScanned != scanned {
		t.Fatal("stopped thermostat kept sampling")
	}
}
