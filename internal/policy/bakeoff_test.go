package policy

import (
	"testing"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// --- Nomad ---

func TestNomadDefaults(t *testing.T) {
	cfg := DefaultNomadConfig()
	if cfg.ScanInterval != 1*sim.Second || cfg.ScanBatch != 1024 {
		t.Fatalf("defaults: %+v", cfg)
	}
	nd := NewNomad(NomadConfig{})
	if nd.cfg.ScanInterval != 1*sim.Second || nd.cfg.ScanBatch != 1024 {
		t.Fatal("zero config not normalized")
	}
	if nd.Name() != "nomad" {
		t.Fatal("name")
	}
}

// nomadHotReads drives read-only heat at 16 PM pages for `rounds` daemon
// periods and returns the hot VPN set.
func nomadHotReads(t *testing.T, m *machine.Machine, rounds int) (*pagetable.AddressSpace, []pagetable.VPN) {
	t.Helper()
	as := m.NewSpace()
	v := fillOver(m, as, 400)
	hot := pmVPNs(m, as, v, 16)
	if len(hot) != 16 {
		t.Fatalf("setup: %d PM pages", len(hot))
	}
	for round := 0; round < rounds; round++ {
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
		m.Compute(1100 * sim.Millisecond)
	}
	return as, hot
}

func TestNomadShadowPromotionIsTwoPhase(t *testing.T) {
	nd := NewNomad(DefaultNomadConfig())
	m := newMachine(128, 1024, nd)
	as, hot := nomadHotReads(t, m, 8)

	if nd.TxBegins == 0 || nd.TxCommits == 0 {
		t.Fatalf("tx begins=%d commits=%d; two-phase protocol never ran", nd.TxBegins, nd.TxCommits)
	}
	if nd.TxBegins < nd.TxCommits {
		t.Fatalf("commits (%d) exceed begins (%d)", nd.TxCommits, nd.TxBegins)
	}
	if m.Mem.Counters.ShadowPromotes == 0 {
		t.Fatal("no shadow promotions recorded")
	}
	shadowed := 0
	for _, vpn := range hot {
		if pg := as.Lookup(vpn); pg != nil && m.Mem.Tier(pg) == mem.TierDRAM && pg.HasShadow() {
			shadowed++
		}
	}
	if shadowed == 0 {
		t.Fatal("no promoted page retains its PM shadow")
	}
	if m.Mem.ShadowFrames() == 0 {
		t.Fatal("system shadow accounting empty despite shadowed pages")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNomadWriteAbortsInflightTransaction(t *testing.T) {
	nd := NewNomad(DefaultNomadConfig())
	m := newMachine(128, 1024, nd)
	as := m.NewSpace()
	v := fillOver(m, as, 400)
	hot := pmVPNs(m, as, v, 16)
	if len(hot) != 16 {
		t.Fatalf("setup: %d PM pages", len(hot))
	}
	// Write-only heat: every page dirtied between begin and commit aborts
	// its transaction, so promotions happen — by the exclusive fallback —
	// but never commit a shadow.
	for round := 0; round < 8; round++ {
		for _, vpn := range hot {
			m.Access(as, vpn, true)
		}
		m.Compute(1100 * sim.Millisecond)
	}
	if nd.TxAborts == 0 {
		t.Fatal("write-only heat aborted no transactions")
	}
	if m.Mem.Counters.ShadowPromotes != 0 {
		t.Fatalf("%d shadow promotions committed despite every copy racing a write", m.Mem.Counters.ShadowPromotes)
	}
	if m.Mem.Counters.Promotions == 0 {
		t.Fatal("aborted transactions never fell back to exclusive migration")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNomadWriteInvalidatesShadow(t *testing.T) {
	nd := NewNomad(DefaultNomadConfig())
	m := newMachine(128, 1024, nd)
	as, hot := nomadHotReads(t, m, 8)
	if m.Mem.ShadowFrames() == 0 {
		t.Fatal("setup: no shadows committed")
	}
	for _, vpn := range hot {
		m.Access(as, vpn, true)
	}
	for _, vpn := range hot {
		if pg := as.Lookup(vpn); pg != nil && pg.HasShadow() {
			t.Fatal("written page still holds a shadow")
		}
	}
	if m.Mem.Counters.ShadowDrops == 0 {
		t.Fatal("no shadow drops recorded")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNomadCleanShadowedPagesDemoteForFree(t *testing.T) {
	nd := NewNomad(DefaultNomadConfig())
	m := newMachine(64, 1024, nd)
	as, _ := nomadHotReads(t, m, 8)
	if m.Mem.ShadowFrames() == 0 {
		t.Fatal("setup: no shadows committed")
	}
	// The shadowed pages go cold while fresh allocations (born in DRAM)
	// pressure the tier: demotion should find clean shadowed victims and
	// remap them for free.
	w := as.Mmap(256, false, "pressure")
	for round := 0; round < 10; round++ {
		for i := 0; i < 256; i++ {
			m.Access(as, w.Start+pagetable.VPN(i), false)
		}
		m.Compute(1100 * sim.Millisecond)
	}
	if m.Mem.Counters.ShadowHits == 0 {
		t.Fatalf("no free demotions: shadow hits=0 (free-demotes=%d, demotions=%d)",
			nd.FreeDemotes, m.Mem.Counters.Demotions)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNomadStop(t *testing.T) {
	nd := NewNomad(DefaultNomadConfig())
	m := newMachine(64, 64, nd)
	nd.Stop()
	m.Compute(5 * sim.Second)
	if m.Mem.Counters.PagesScanned != 0 {
		t.Fatal("stopped nomad scanned")
	}
}

// --- BandwidthGate ---

func TestBandwidthGateBudget(t *testing.T) {
	g := NewBandwidthGate(BandwidthGateConfig{Window: 1 * sim.Second, Budget: 0.1, HardLimit: 2})
	m := newMachine(64, 64, NewStatic())
	g.Attach(m)
	clean := &mem.Page{}
	dirty := &mem.Page{Flags: mem.FlagDirty}

	if !g.Admit(clean, 0) {
		t.Fatal("idle machine rejected a promotion")
	}
	// Spend past the soft budget (100 ms of a 1 s window): only dirty
	// pages pass.
	m.Mem.Counters.MigrationBusy = 150 * sim.Millisecond
	if g.Admit(clean, 0) {
		t.Fatal("clean page admitted over budget")
	}
	if !g.Admit(dirty, 0) {
		t.Fatal("dirty page rejected between budget and hard limit")
	}
	// Past the hard limit (200 ms) nothing passes.
	m.Mem.Counters.MigrationBusy = 250 * sim.Millisecond
	if g.Admit(dirty, 0) {
		t.Fatal("dirty page admitted past the hard limit")
	}
	if g.Rejects != 2 || m.Mem.Counters.AdmissionRejects != 2 {
		t.Fatalf("rejects=%d counter=%d, want 2", g.Rejects, m.Mem.Counters.AdmissionRejects)
	}
	// A new window resets the baseline: the busy time was spent in the
	// old window.
	if !g.Admit(clean, sim.Time(2*sim.Second)) {
		t.Fatal("fresh window still rejecting")
	}
}

func TestBandwidthGateDefaults(t *testing.T) {
	g := NewBandwidthGate(BandwidthGateConfig{})
	if g.cfg.Window != 1*sim.Second || g.cfg.Budget != 0.05 || g.cfg.HardLimit != 2 {
		t.Fatalf("zero config not normalized: %+v", g.cfg)
	}
	if g.Name() == "" {
		t.Fatal("name")
	}
}

func TestGatedNimbleRejectsUnderPressure(t *testing.T) {
	// A gate with a near-zero budget starves promotions as soon as any
	// migration (including demotions) has happened in the window.
	cfg := DefaultNimbleConfig()
	cfg.Gate = NewBandwidthGate(BandwidthGateConfig{Window: 10 * sim.Second, Budget: 0.000001})
	nb := NewNimble(cfg)
	m := newMachine(128, 1024, nb)
	as := m.NewSpace()
	v := fillOver(m, as, 400)
	hot := pmVPNs(m, as, v, 32)
	for round := 0; round < 6; round++ {
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
		m.Compute(1100 * sim.Millisecond)
	}
	if m.Mem.Counters.AdmissionRejects == 0 {
		t.Fatal("starved gate rejected nothing")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- S3-FIFO ---

func TestS3FIFODefaults(t *testing.T) {
	cfg := DefaultS3FIFOConfig()
	if cfg.ScanInterval != 1*sim.Second || cfg.ScanBatch != 1024 ||
		cfg.SmallFrac != 0.1 || cfg.PromoteFreq != 2 {
		t.Fatalf("defaults: %+v", cfg)
	}
	s := NewS3FIFO(S3FIFOConfig{})
	if s.cfg.ScanInterval != 1*sim.Second || s.cfg.PromoteFreq != 2 {
		t.Fatal("zero config not normalized")
	}
	if s.Name() != "s3fifo" {
		t.Fatal("name")
	}
}

func TestS3FIFOPromotesReusedPages(t *testing.T) {
	s := NewS3FIFO(DefaultS3FIFOConfig())
	m := newMachine(128, 1024, s)
	as := m.NewSpace()
	v := fillOver(m, as, 400)
	hot := pmVPNs(m, as, v, 16)
	if len(hot) != 16 {
		t.Fatalf("setup: %d PM pages", len(hot))
	}
	for round := 0; round < 8; round++ {
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
		m.Compute(1100 * sim.Millisecond)
	}
	if s.Promotions == 0 {
		t.Fatal("s3fifo promoted nothing")
	}
	promoted := 0
	for _, vpn := range hot {
		if pg := as.Lookup(vpn); pg != nil && m.Mem.Tier(pg) == mem.TierDRAM {
			promoted++
		}
	}
	if promoted < 12 {
		t.Fatalf("only %d/16 hot pages promoted", promoted)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestS3FIFOColdPagesStayPut(t *testing.T) {
	// Pages touched only at birth never leave the small→ghost path and
	// are never promoted.
	s := NewS3FIFO(DefaultS3FIFOConfig())
	m := newMachine(128, 1024, s)
	as := m.NewSpace()
	fillOver(m, as, 400)
	m.Compute(5 * sim.Second)
	if s.Promotions != 0 || m.Mem.Counters.Promotions != 0 {
		t.Fatalf("cold workload promoted %d pages", m.Mem.Counters.Promotions)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestS3FIFOGhostHitSkipsProbation(t *testing.T) {
	s := NewS3FIFO(DefaultS3FIFOConfig())
	m := newMachine(64, 256, s)
	as := m.NewSpace()
	v := fillOver(m, as, 220)
	pm := pmVPNs(m, as, v, 220)
	if len(pm) < 100 {
		t.Fatalf("setup: %d PM pages", len(pm))
	}
	// One daemon period with no reuse: the small queue (10%% of 256
	// frames) overflows and quick-demotes the excess to ghost.
	m.Compute(1100 * sim.Millisecond)
	// Touch every PM page once: ghost members jump straight to main.
	for _, vpn := range pm {
		m.Access(as, vpn, false)
	}
	if s.GhostHits == 0 {
		t.Fatal("no ghost hits after re-touching quick-demoted pages")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestS3FIFOSurvivesUnmapOfQueuedPages(t *testing.T) {
	s := NewS3FIFO(DefaultS3FIFOConfig())
	m := newMachine(64, 512, s)
	as := m.NewSpace()
	v := fillOver(m, as, 300)
	// Unmap everything while queue entries still reference the pages:
	// the stale entries must resolve lazily without touching dead pages.
	for i := 0; i < 300; i++ {
		m.Unmap(as, v.Start+pagetable.VPN(i))
	}
	m.Compute(5 * sim.Second)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestS3FIFOStop(t *testing.T) {
	s := NewS3FIFO(DefaultS3FIFOConfig())
	m := newMachine(64, 64, s)
	s.Stop()
	m.Compute(5 * sim.Second)
	if m.Mem.Counters.PagesScanned != 0 {
		t.Fatal("stopped s3fifo scanned")
	}
}
