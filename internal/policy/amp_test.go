package policy

import (
	"testing"

	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

func TestAMPNamesAndParsing(t *testing.T) {
	cases := map[string]AMPSelector{"amp-lru": AMPLRU, "amp-lfu": AMPLFU, "amp-random": AMPRandom}
	for name, sel := range cases {
		got, err := DefaultAMPName(name)
		if err != nil || got != sel {
			t.Fatalf("DefaultAMPName(%q) = %v, %v", name, got, err)
		}
		if sel.String() != name {
			t.Fatalf("selector %v stringifies to %q", sel, sel.String())
		}
		if NewAMP(DefaultAMPConfig(sel)).Name() != name {
			t.Fatalf("policy name for %v", sel)
		}
	}
	if _, err := DefaultAMPName("amp-mru"); err == nil {
		t.Fatal("unknown selector accepted")
	}
}

func TestAMPZeroConfigNormalized(t *testing.T) {
	a := NewAMP(AMPConfig{Selector: AMPLFU})
	if a.cfg.ScanInterval != 1*sim.Second || a.cfg.MigrateBatch != 512 {
		t.Fatalf("config not normalized: %+v", a.cfg)
	}
}

func TestAMPProfilesEveryAccess(t *testing.T) {
	a := NewAMP(DefaultAMPConfig(AMPLFU))
	m := newMachine(256, 1024, a)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	first := pg.LastUse
	m.Access(as, v.Start, false)
	m.Access(as, v.Start, true)
	if pg.Freq != 3 {
		t.Fatalf("Freq = %d, want 3 (exact profiling)", pg.Freq)
	}
	if pg.LastUse <= first {
		t.Fatal("LastUse not advancing with accesses")
	}
}

// TestAMPLFUPromotesHotPages: exact frequency selection must move a hot PM
// set to DRAM, exchanging against cold DRAM pages.
func TestAMPLFUPromotesHotPages(t *testing.T) {
	cfg := DefaultAMPConfig(AMPLFU)
	cfg.ScanInterval = 10 * sim.Millisecond
	a := NewAMP(cfg)
	m := newMachine(128, 1024, a)
	as := m.NewSpace()
	v := fillOver(m, as, 400)
	hot := pmVPNs(m, as, v, 16)
	if len(hot) != 16 {
		t.Fatalf("setup: %d PM pages", len(hot))
	}
	for round := 0; round < 12; round++ {
		for rep := 0; rep < 4; rep++ {
			for _, vpn := range hot {
				m.Access(as, vpn, false)
			}
		}
		m.Compute(11 * sim.Millisecond)
	}
	promoted := 0
	for _, vpn := range hot {
		if pg := as.Lookup(vpn); pg != nil && m.Mem.Tier(pg) == mem.TierDRAM {
			promoted++
		}
	}
	if promoted < 12 {
		t.Fatalf("LFU promoted %d/16 hot pages", promoted)
	}
	if a.Promotions == 0 {
		t.Fatal("promotion counter")
	}
}

// TestAMPLFUDoesNotDisplaceHotterPages: the exchange guard must refuse to
// demote a DRAM page hotter than the arriving one.
func TestAMPExchangeGuard(t *testing.T) {
	cfg := DefaultAMPConfig(AMPLFU)
	cfg.ScanInterval = 10 * sim.Millisecond
	a := NewAMP(cfg)
	m := newMachine(128, 1024, a)
	as := m.NewSpace()
	v := fillOver(m, as, 400)
	// Make every DRAM page very hot; PM pages mildly warm.
	var dramHot, pmWarm []pagetable.VPN
	as.WalkVMA(v, func(vpn pagetable.VPN, pg *mem.Page) {
		if m.Mem.Tier(pg) == mem.TierDRAM {
			dramHot = append(dramHot, vpn)
		} else if len(pmWarm) < 32 {
			pmWarm = append(pmWarm, vpn)
		}
	})
	for round := 0; round < 8; round++ {
		for _, vpn := range dramHot {
			m.Access(as, vpn, false)
			m.Access(as, vpn, false)
		}
		for _, vpn := range pmWarm {
			m.Access(as, vpn, false)
		}
		m.Compute(11 * sim.Millisecond)
	}
	// Warm PM pages must not displace hot DRAM pages.
	displaced := 0
	for _, vpn := range dramHot {
		if pg := as.Lookup(vpn); pg != nil && m.Mem.Tier(pg) == mem.TierPM {
			displaced++
		}
	}
	if displaced > len(dramHot)/10 {
		t.Fatalf("%d/%d hot DRAM pages displaced by warm PM pages", displaced, len(dramHot))
	}
}

func TestAMPRandomStillMigrates(t *testing.T) {
	cfg := DefaultAMPConfig(AMPRandom)
	cfg.ScanInterval = 10 * sim.Millisecond
	cfg.Seed = 9
	a := NewAMP(cfg)
	m := newMachine(128, 1024, a)
	as := m.NewSpace()
	fillOver(m, as, 400)
	m.Compute(100 * sim.Millisecond)
	if a.Promotions == 0 {
		t.Fatal("random selector never promoted")
	}
}

func TestAMPStop(t *testing.T) {
	a := NewAMP(DefaultAMPConfig(AMPLRU))
	m := newMachine(64, 256, a)
	as := m.NewSpace()
	fillOver(m, as, 100)
	a.Stop()
	scanned := m.Mem.Counters.PagesScanned
	m.Compute(10 * sim.Second)
	if m.Mem.Counters.PagesScanned != scanned {
		t.Fatal("stopped AMP kept scanning")
	}
}

func TestAMPLFUDecay(t *testing.T) {
	cfg := DefaultAMPConfig(AMPLFU)
	cfg.ScanInterval = 10 * sim.Millisecond
	a := NewAMP(cfg)
	m := newMachine(256, 1024, a)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	for i := 0; i < 99; i++ {
		m.Access(as, v.Start, false)
	}
	if pg.Freq != 100 {
		t.Fatalf("freq = %d", pg.Freq)
	}
	m.Compute(11 * sim.Millisecond) // one decay pass
	if pg.Freq != 50 {
		t.Fatalf("freq after decay = %d, want 50", pg.Freq)
	}
}
