package policy

import (
	"multiclock/internal/lru"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// ATMode selects the AutoTiering variant.
type ATMode int

const (
	// CPM is AutoTiering's conservative promotion approach: promote on
	// repeated hint faults, exchanging with an upper-tier page chosen
	// without coldness information when DRAM is full (§II-D). Its
	// performance therefore "highly depends on the initial placement of
	// the pages" (§V-C.1).
	CPM ATMode = iota
	// OPM adds the opportunistic demotion path: an N-bit per-page history
	// vector identifies cold upper-tier pages to demote proactively, at
	// the price of extra tracking overhead (§II-D).
	OPM
)

// String names the mode as the paper abbreviates it.
func (m ATMode) String() string {
	if m == CPM {
		return "at-cpm"
	}
	return "at-opm"
}

// ATConfig tunes the AutoTiering baseline.
type ATConfig struct {
	Mode ATMode
	// ScanInterval is the hint-fault scanner period.
	ScanInterval sim.Duration
	// PoisonFrac is the fraction of each address space's mapped pages
	// poisoned per interval. Software-fault tracking cannot afford full
	// coverage on large memories (the paper's core criticism, §II-D);
	// the default mirrors AutoNUMA's bounded scan rate relative to the
	// paper-scale footprint.
	PoisonFrac float64
	// PromoteWindow, when positive, requires a page's two most recent
	// hint faults to fall within the window before promotion. Zero (the
	// default behaviour of NUMA-balancing-derived designs) promotes on
	// the first hint fault — a page was touched while sampled, so it is
	// assumed misplaced and migrated in the fault path.
	PromoteWindow sim.Duration
	// HistBits is the length of OPM's per-page coldness vector.
	HistBits int
	// DemoteBatch caps OPM demotions per interval.
	DemoteBatch int
}

// DefaultATConfig mirrors the evaluation settings.
func DefaultATConfig(mode ATMode) ATConfig {
	return ATConfig{
		Mode:         mode,
		ScanInterval: 1 * sim.Second,
		PoisonFrac:   0.125,
		HistBits:     4,
		DemoteBatch:  1024,
	}
}

// AutoTiering implements both AT-CPM and AT-OPM. Page access tracking uses
// hint page faults: the scanner poisons a rotating sample of PTEs, and the
// next access to a poisoned page takes a software fault whose cost lands
// directly on the application — the overhead the paper identifies as these
// systems' weakness.
type AutoTiering struct {
	machine.Base
	cfg     ATConfig
	daemons []*sim.Daemon

	// cursor tracks the poisoning position per address space.
	cursor map[int32]pagetable.VPN

	// Promotions and Exchanges are exposed for analysis.
	Promotions int64
	Exchanges  int64
	Demotions  int64
}

// NewAutoTiering returns the policy for the given variant.
func NewAutoTiering(cfg ATConfig) *AutoTiering {
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 1 * sim.Second
	}
	if cfg.PoisonFrac <= 0 || cfg.PoisonFrac > 1 {
		cfg.PoisonFrac = 0.125
	}
	if cfg.HistBits <= 0 || cfg.HistBits > 8 {
		cfg.HistBits = 4
	}
	if cfg.DemoteBatch <= 0 {
		cfg.DemoteBatch = 1024
	}
	return &AutoTiering{cfg: cfg, cursor: make(map[int32]pagetable.VPN)}
}

// Name implements machine.Policy.
func (at *AutoTiering) Name() string { return at.cfg.Mode.String() }

// Attach starts the PTE-poisoning scanner.
func (at *AutoTiering) Attach(m *machine.Machine) {
	at.Base.Attach(m)
	var d *sim.Daemon
	d = m.Clock.StartDaemon("at-scan", at.cfg.ScanInterval, func(now sim.Time) {
		at.scan(now)
		m.FinishDaemonPass(d)
	})
	at.daemons = append(at.daemons, d)
}

// Stop halts the scanner.
func (at *AutoTiering) Stop() {
	for _, d := range at.daemons {
		d.Stop()
	}
}

// scan poisons the next slice of every address space and, for OPM, ages
// history bits and demotes cold DRAM pages.
func (at *AutoTiering) scan(now sim.Time) {
	m := at.M
	var demoteCands []*mem.Page
	for _, as := range m.Spaces() {
		id := as.ID
		budget := int(float64(as.Mapped()) * at.cfg.PoisonFrac)
		if budget == 0 && as.Mapped() > 0 {
			budget = 1
		}
		start := at.cursor[id]
		poisoned := 0
		var last pagetable.VPN
		walk := func(lo, hi pagetable.VPN) {
			as.Walk(lo, hi, func(vpn pagetable.VPN, pg *mem.Page) {
				if poisoned >= budget {
					return
				}
				last = vpn
				if pg.Flags.Has(mem.FlagUnevictable) {
					return
				}
				// OPM ages the page's history each time the scanner
				// passes it: shift in a zero; a hint fault sets bit 0.
				if at.cfg.Mode == OPM {
					pg.Hist = (pg.Hist << 1) & (1<<uint(at.cfg.HistBits) - 1)
					if pg.Hist == 0 && m.Mem.Tier(pg) == m.Mem.FastestTier() &&
						now-pg.LastHint > sim.Time(2*at.cfg.ScanInterval) {
						demoteCands = append(demoteCands, pg)
					}
				}
				pagetable.Poison(pg)
				poisoned++
				// Poisoning a PTE costs a TLB shootdown whose IPIs
				// disturb the running application.
				m.ChargeTax(300 * sim.Nanosecond)
			})
		}
		walk(start, pagetable.MaxVPN+1)
		if poisoned < budget {
			walk(0, start) // wrap around
		}
		at.cursor[id] = last + 1
		m.Mem.Counters.PagesScanned += int64(poisoned)
	}

	if at.cfg.Mode == OPM {
		at.demoteCold(demoteCands)
	}
}

// demoteCold moves history-cold fastest-tier pages one tier down, keeping
// promotion headroom (OPM's progressive demotion).
func (at *AutoTiering) demoteCold(cands []*mem.Page) {
	m := at.M
	fastest := m.Mem.FastestTier()
	budget := at.cfg.DemoteBatch
	for _, id := range m.Mem.TierNodes(fastest) {
		// Only demote while the node actually needs headroom.
		n := m.Mem.Nodes[id]
		target := 4 * n.WM.High
		for _, pg := range cands {
			if budget == 0 || n.FreeFrames() >= target {
				break
			}
			if pg.Node != id || !pg.OnList() {
				continue
			}
			dst := m.Mem.PickNodeBelow(fastest)
			if dst == mem.NoNode {
				return
			}
			m.Vecs[pg.Node].Isolate(pg)
			if m.MigrateIsolated(pg, dst) {
				at.Demotions++
				budget--
			} else {
				m.Vecs[pg.Node].Putback(pg)
			}
		}
	}
}

// HintFault handles a software fault on a poisoned PTE: record recency and
// promote lower-tier pages — on the first fault by default
// (NUMA-balancing-style migrate-on-fault), or on two faults within
// PromoteWindow when configured. The migration runs synchronously in fault
// context, so its full cost hits the application; that cost, plus the
// blind exchange victims under CPM, is what sinks these baselines (§V-C).
func (at *AutoTiering) HintFault(pg *mem.Page, write bool) {
	m := at.M
	now := m.Clock.Now()
	prev := pg.LastHint
	pg.LastHint = now
	pg.Hist |= 1

	src := m.Mem.Tier(pg)
	up, ok := m.Mem.Above(src)
	if !ok {
		return
	}
	if at.cfg.PromoteWindow > 0 && (prev == 0 || now-prev > sim.Time(at.cfg.PromoteWindow)) {
		return
	}
	// Qualifying fault: promote one tier up.
	dst := pickVictimNode(m, up)
	if dst == mem.NoNode {
		switch at.cfg.Mode {
		case CPM:
			// Conservative exchange: demote an upper-tier page chosen
			// without reference information — the oldest-born page of the
			// destination tier (its lists never age under fault-based
			// tracking). Under a skewed workload this regularly evicts hot
			// pages, which is the placement fragility §V-C.1 observes.
			if !at.exchangeVictim(up) {
				return
			}
		case OPM:
			// OPM relies on its proactive demotion for headroom; if none
			// exists this interval, skip.
			return
		}
		dst = pickVictimNode(m, up)
		if dst == mem.NoNode {
			return
		}
	}
	if !pg.OnList() {
		return
	}
	m.Vecs[pg.Node].Isolate(pg)
	if m.MigrateIsolated(pg, dst) {
		at.Promotions++
		// Synchronous migration in the fault path: the copy is not
		// daemon work, it blocks the faulting thread.
		m.Compute(m.Mem.Lat.PageCopy[src][up])
	} else {
		m.Vecs[pg.Node].Putback(pg)
	}
}

// exchangeVictim demotes one tier-t page picked blind (oldest birth) one
// tier down to make room, charging the faulting thread. Returns false when
// no victim exists.
func (at *AutoTiering) exchangeVictim(t mem.Tier) bool {
	m := at.M
	down, ok := m.Mem.Below(t)
	if !ok {
		return false
	}
	for _, id := range m.Mem.TierNodes(t) {
		vec := m.Vecs[id]
		// The inactive list is birth-ordered FIFO under AutoTiering (no
		// reference-bit aging), so its tail is simply the oldest page.
		for _, k := range []lru.Kind{lru.InactiveAnon, lru.InactiveFile} {
			l := vec.List(k)
			victim := l.Back()
			if victim == nil {
				continue
			}
			dst := m.Mem.PickNode(down)
			if dst == mem.NoNode {
				return false
			}
			vec.Isolate(victim)
			if m.MigrateIsolated(victim, dst) {
				at.Exchanges++
				m.Compute(m.Mem.Lat.PageCopy[t][down])
				return true
			}
			vec.Putback(victim)
		}
	}
	return false
}

var _ machine.Policy = (*AutoTiering)(nil)
