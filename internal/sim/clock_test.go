package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := NewClock()
	c.Advance(5 * Millisecond)
	if got := c.Now(); got != Time(5*Millisecond) {
		t.Fatalf("Now = %d, want %d", got, 5*Millisecond)
	}
	c.Advance(0)
	if got := c.Now(); got != Time(5*Millisecond) {
		t.Fatalf("Advance(0) moved time to %d", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestScheduleFiresAtDeadline(t *testing.T) {
	c := NewClock()
	var firedAt Time = -1
	c.Schedule(100, func() { firedAt = c.Now() })
	c.Advance(99)
	if firedAt != -1 {
		t.Fatalf("event fired early at %d", firedAt)
	}
	c.Advance(1)
	if firedAt != 100 {
		t.Fatalf("event fired at %d, want 100", firedAt)
	}
}

func TestEventsFireInDeadlineOrder(t *testing.T) {
	c := NewClock()
	var order []int
	c.Schedule(300, func() { order = append(order, 3) })
	c.Schedule(100, func() { order = append(order, 1) })
	c.Schedule(200, func() { order = append(order, 2) })
	c.Advance(1000)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestEqualDeadlineEventsFireFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(50, func() { order = append(order, i) })
	}
	c.Advance(50)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: order = %v", order)
		}
	}
}

func TestEventSeesItsDeadlineAsNow(t *testing.T) {
	c := NewClock()
	var seen Time
	c.Schedule(40, func() { seen = c.Now() })
	c.Advance(1000)
	if seen != 40 {
		t.Fatalf("event saw Now=%d, want 40", seen)
	}
	if c.Now() != 1000 {
		t.Fatalf("clock ended at %d, want 1000", c.Now())
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := NewClock()
	fired := false
	ev := c.Schedule(10, func() { fired = true })
	ev.Cancel()
	ev.Cancel() // idempotent
	c.Advance(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	c := NewClock()
	var times []Time
	c.Schedule(10, func() {
		times = append(times, c.Now())
		c.Schedule(10, func() { times = append(times, c.Now()) })
	})
	c.Advance(100)
	if len(times) != 2 || times[0] != 10 || times[1] != 20 {
		t.Fatalf("nested scheduling times = %v, want [10 20]", times)
	}
}

func TestScheduleAtPastFiresOnNextAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	fired := false
	c.ScheduleAt(50, func() { fired = true })
	c.Advance(1)
	if !fired {
		t.Fatal("past-deadline event did not fire")
	}
}

func TestAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(500)
	if c.Now() != 500 {
		t.Fatalf("AdvanceTo: now=%d", c.Now())
	}
	c.AdvanceTo(100) // past, no-op
	if c.Now() != 500 {
		t.Fatalf("AdvanceTo past moved clock to %d", c.Now())
	}
}

func TestPendingCountsUncancelled(t *testing.T) {
	c := NewClock()
	c.Schedule(10, func() {})
	ev := c.Schedule(20, func() {})
	ev.Cancel()
	if got := c.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

func TestDrainRunsEverything(t *testing.T) {
	c := NewClock()
	n := 0
	c.Schedule(10, func() { n++ })
	c.Schedule(10*Second, func() { n++ })
	c.Drain()
	if n != 2 {
		t.Fatalf("Drain ran %d events, want 2", n)
	}
	if c.Now() != Time(10*Second) {
		t.Fatalf("Drain ended at %d", c.Now())
	}
}

func TestDaemonPeriodicity(t *testing.T) {
	c := NewClock()
	var wakeups []Time
	d := c.StartDaemon("kpromoted", Second, func(now Time) {
		wakeups = append(wakeups, now)
	})
	c.Advance(3500 * Millisecond)
	if d.Runs != 3 {
		t.Fatalf("daemon ran %d times, want 3", d.Runs)
	}
	want := []Time{Time(Second), Time(2 * Second), Time(3 * Second)}
	for i, w := range want {
		if wakeups[i] != w {
			t.Fatalf("wakeups = %v, want %v", wakeups, want)
		}
	}
}

func TestDaemonStop(t *testing.T) {
	c := NewClock()
	d := c.StartDaemon("d", 100, func(Time) {})
	c.Advance(250)
	d.Stop()
	d.Stop() // idempotent
	c.Advance(1000)
	if d.Runs != 2 {
		t.Fatalf("stopped daemon ran %d times, want 2", d.Runs)
	}
}

func TestDaemonIntervalChange(t *testing.T) {
	c := NewClock()
	var wakeups []Time
	var d *Daemon
	d = c.StartDaemon("d", 100, func(now Time) {
		wakeups = append(wakeups, now)
		d.Interval = 200
	})
	c.Advance(500)
	want := []Time{100, 300, 500}
	if len(wakeups) != len(want) {
		t.Fatalf("wakeups = %v, want %v", wakeups, want)
	}
	for i := range want {
		if wakeups[i] != want[i] {
			t.Fatalf("wakeups = %v, want %v", wakeups, want)
		}
	}
}

func TestDaemonPostpone(t *testing.T) {
	c := NewClock()
	var wakeups []Time
	var d *Daemon
	d = c.StartDaemon("d", 100, func(now Time) {
		wakeups = append(wakeups, now)
		if len(wakeups) == 1 {
			// First pass overruns by 150: next wakeup lands at 350, then
			// the normal cadence resumes.
			d.Postpone(150)
		}
	})
	c.Advance(600)
	want := []Time{100, 350, 450, 550}
	if len(wakeups) != len(want) {
		t.Fatalf("wakeups = %v, want %v", wakeups, want)
	}
	for i := range want {
		if wakeups[i] != want[i] {
			t.Fatalf("wakeups = %v, want %v", wakeups, want)
		}
	}
}

func TestDaemonPostponeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Postpone did not panic")
		}
	}()
	c := NewClock()
	c.StartDaemon("d", 100, func(Time) {}).Postpone(-1)
}

func TestDaemonZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	NewClock().StartDaemon("bad", 0, func(Time) {})
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2500, "2.500µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int64(tc.d), got, tc.want)
		}
	}
}

func TestDurationSeconds(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
}

// Property: events always fire in (deadline, insertion) order regardless of
// insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(deadlines []uint16) bool {
		if len(deadlines) == 0 {
			return true
		}
		c := NewClock()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range deadlines {
			at := Time(d)
			i := i
			c.ScheduleAt(at, func() { fired = append(fired, rec{at, i}) })
		}
		c.Advance(Duration(1 << 20))
		if len(fired) != len(deadlines) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the heap never loses events.
func TestHeapConservationProperty(t *testing.T) {
	f := func(deadlines []uint8) bool {
		c := NewClock()
		n := 0
		for _, d := range deadlines {
			c.ScheduleAt(Time(d), func() { n++ })
		}
		c.Drain()
		return n == len(deadlines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
