// Package sim provides the discrete-event simulation engine that underpins
// the hybrid-memory machine: a virtual nanosecond clock, an event queue for
// simulated kernel daemons (kpromoted, kswapd, scanners), and deterministic
// pseudo-random streams.
//
// The engine is intentionally single-threaded. All state advances through
// explicit calls on the owning goroutine, which makes every simulation run
// bit-for-bit reproducible for a given seed — a property the test suite
// checks. Simulated concurrency (multiple daemons, one application thread)
// is expressed as interleaved events on the virtual clock, exactly as a
// trace-driven architectural simulator would do it.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenience duration units for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String formats a virtual duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// PassHook wraps every daemon wakeup on a clock. The hook must call run
// exactly once; it may observe state around the call (the machine uses it
// to attribute daemon-side work to the pass that charged it) but must not
// advance virtual time itself, or determinism guarantees break.
type PassHook interface {
	DaemonPass(d *Daemon, run func())
}

// Clock tracks virtual time and dispatches due events.
//
// The application (workload) side advances the clock by charging latencies
// with Advance; daemon-side work is scheduled as events which fire when the
// clock passes their deadline. The zero value is not usable; call NewClock.
type Clock struct {
	now    Time
	events eventHeap
	seq    uint64 // tie-breaker so equal-deadline events fire FIFO

	// daemons lists every daemon ever started on this clock in start order.
	// Construction is deterministic, so the index is a stable cross-run
	// identity — the checkpoint layer re-arms daemons by it.
	daemons []*Daemon

	// Hook, when non-nil, wraps every daemon wakeup (telemetry). Nil adds
	// no work to any path.
	Hook PassHook
}

// NewClock returns a clock positioned at time zero with an empty event queue.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves virtual time forward by d, firing any events whose deadline
// passes. Event callbacks run with the clock set to their deadline, so a
// daemon observes the time it was scheduled for, not the end of the
// application's charge. Negative durations are a programming error.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	target := c.now + Time(d)
	c.runUntil(target)
	c.now = target
}

// AdvanceTo moves the clock to an absolute time, firing due events.
// It is a no-op if t is in the past.
func (c *Clock) AdvanceTo(t Time) {
	if t <= c.now {
		return
	}
	c.runUntil(t)
	c.now = t
}

// runUntil fires every event with deadline <= target in deadline order.
func (c *Clock) runUntil(target Time) {
	for len(c.events) > 0 && c.events[0].at <= target {
		ev := c.events.pop()
		if ev.cancelled != nil && *ev.cancelled {
			continue
		}
		c.now = ev.at
		ev.fn()
	}
}

// Schedule registers fn to run when virtual time reaches now+d.
// It returns a handle that can cancel the event before it fires.
func (c *Clock) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.ScheduleAt(c.now+Time(d), fn)
}

// ScheduleAt registers fn to run at absolute virtual time t. Events scheduled
// in the past fire on the next Advance.
func (c *Clock) ScheduleAt(t Time, fn func()) *Event {
	c.seq++
	return c.scheduleExact(t, c.seq, fn)
}

// scheduleExact pushes an event with an explicit sequence number and does
// not advance the clock's sequence counter. The normal path always goes
// through ScheduleAt; checkpoint restore uses it to re-create a saved heap
// bit for bit (the saved clock sequence is restored separately).
func (c *Clock) scheduleExact(t Time, seq uint64, fn func()) *Event {
	cancelled := new(bool)
	c.events.push(scheduled{at: t, seq: seq, fn: fn, cancelled: cancelled})
	return &Event{clock: c, cancelled: cancelled, at: t, seq: seq}
}

// Pending reports the number of scheduled (uncancelled) events. Cancelled
// events still occupying the heap are not counted.
func (c *Clock) Pending() int {
	n := 0
	for _, ev := range c.events {
		if ev.cancelled == nil || !*ev.cancelled {
			n++
		}
	}
	return n
}

// Drain fires all remaining events in order regardless of horizon; useful in
// tests that want daemons to quiesce. The clock ends at the last deadline.
func (c *Clock) Drain() {
	for len(c.events) > 0 {
		ev := c.events.pop()
		if ev.cancelled != nil && *ev.cancelled {
			continue
		}
		c.now = ev.at
		ev.fn()
	}
}

// Event is a handle to a scheduled callback.
type Event struct {
	clock     *Clock
	cancelled *bool
	at        Time
	seq       uint64
}

// Cancel prevents the event from firing. Safe to call multiple times and
// after the event has fired.
func (e *Event) Cancel() {
	if e != nil && e.cancelled != nil {
		*e.cancelled = true
	}
}

// scheduled is one queued event.
type scheduled struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled *bool
}

// eventHeap is a binary min-heap on (at, seq). Hand-rolled rather than
// container/heap to avoid interface boxing on the simulator hot path.
type eventHeap []scheduled

func (h *eventHeap) push(ev scheduled) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h)[i].before((*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() scheduled {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old[last] = scheduled{} // release closure
	*h = old[:last]
	h.siftDown(0)
	return top
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h[left].before(h[smallest]) {
			smallest = left
		}
		if right < n && h[right].before(h[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

func (s scheduled) before(t scheduled) bool {
	if s.at != t.at {
		return s.at < t.at
	}
	return s.seq < t.seq
}

// Daemon is a periodic simulated kernel thread: its body runs every Interval
// of virtual time, mirroring kswapd/kpromoted wakeups. The body may adjust
// Interval between runs (used by the scan-interval sensitivity experiment).
type Daemon struct {
	Name     string
	Interval Duration
	Body     func(now Time)

	clock    *Clock
	ev       *Event
	stopped  bool
	postpone Duration // extra delay before the next wakeup (consumed by arm)
	Runs     int      // number of completed wakeups
}

// StartDaemon schedules a periodic daemon on the clock, first firing one
// interval from now. The returned daemon can be stopped and reports how many
// times it has run.
func (c *Clock) StartDaemon(name string, interval Duration, body func(now Time)) *Daemon {
	if interval <= 0 {
		panic("sim: daemon interval must be positive")
	}
	d := &Daemon{Name: name, Interval: interval, Body: body, clock: c}
	c.daemons = append(c.daemons, d)
	d.arm()
	return d
}

func (d *Daemon) arm() {
	delay := d.Interval + d.postpone
	d.postpone = 0
	d.ev = d.clock.Schedule(delay, d.fire)
}

// fire is one wakeup: run the body (through the pass hook when installed)
// and re-arm unless stopped.
func (d *Daemon) fire() {
	if d.stopped {
		return
	}
	if h := d.clock.Hook; h != nil {
		h.DaemonPass(d, func() { d.Body(d.clock.Now()) })
	} else {
		d.Body(d.clock.Now())
	}
	d.Runs++
	if !d.stopped {
		d.arm()
	}
}

// Stop halts the daemon; its body will not run again.
func (d *Daemon) Stop() {
	if d == nil || d.stopped {
		return
	}
	d.stopped = true
	d.ev.Cancel()
}

// Postpone delays the daemon's next wakeup by extra beyond its interval,
// modelling a pass that overran its scheduling budget. It accumulates and
// is consumed when the next wakeup is armed, so it only has effect when
// called from within the daemon's own body (before re-arming).
func (d *Daemon) Postpone(extra Duration) {
	if extra < 0 {
		panic("sim: negative Postpone")
	}
	d.postpone += extra
}

// SetInterval changes the period and reschedules the pending wakeup so the
// new cadence takes effect immediately rather than after the old interval
// elapses.
func (d *Daemon) SetInterval(interval Duration) {
	if interval <= 0 {
		panic("sim: daemon interval must be positive")
	}
	d.Interval = interval
	if !d.stopped {
		d.ev.Cancel()
		d.arm()
	}
}
