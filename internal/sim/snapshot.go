package sim

import "fmt"

// Checkpoint support. A snapshot is only taken at a quiescent boundary: the
// only live events on the heap are the armed daemons' next wakeups. At such
// a boundary the clock's full state is (now, seq) plus one (deadline, seq)
// pair per armed daemon, and a restored run replays bit for bit because the
// heap — including FIFO tie-breaker sequence numbers — is reconstructed
// exactly. Daemon identity across runs is the start index on the clock:
// construction is deterministic, so daemon i of the restored world is daemon
// i of the saved one (names are kept as a sanity check only, since several
// daemons may share one, e.g. per-node "kpromoted" threads).

// State returns the RNG's internal xoshiro256** state words.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the RNG's internal state (checkpoint restore).
func (r *RNG) SetState(s [4]uint64) { r.s = s }

// Daemons returns every daemon ever started on the clock, in start order.
// The slice is the clock's own registry; callers must not mutate it.
func (c *Clock) Daemons() []*Daemon { return c.daemons }

// Seq returns the clock's event sequence counter (the FIFO tie-breaker).
func (c *Clock) Seq() uint64 { return c.seq }

// NonDaemonPending counts live events on the heap that are not an armed
// daemon's next wakeup. A checkpoint requires this to be zero: one-shot
// Schedule events (e.g. a time-series sampler) hold closures that cannot be
// serialized, so their presence makes the clock non-quiescent.
func (c *Clock) NonDaemonPending() int {
	owned := make(map[uint64]bool, len(c.daemons))
	for _, d := range c.daemons {
		if !d.stopped && d.ev != nil && !*d.ev.cancelled {
			owned[d.ev.seq] = true
		}
	}
	n := 0
	for _, ev := range c.events {
		if (ev.cancelled == nil || !*ev.cancelled) && !owned[ev.seq] {
			n++
		}
	}
	return n
}

// RestoreTime moves the clock to an absolute (now, seq) without firing any
// events. Restore-only: the saved sequence is by construction at least as
// large as every pending event's, so monotonicity of future ScheduleAt calls
// is preserved.
func (c *Clock) RestoreTime(now Time, seq uint64) {
	if seq < c.seq {
		panic(fmt.Sprintf("sim: RestoreTime would rewind seq %d to %d", c.seq, seq))
	}
	c.now = now
	c.seq = seq
}

// DaemonState is one daemon's serializable state at a quiescent boundary.
type DaemonState struct {
	Name     string
	Interval Duration
	Runs     int
	Stopped  bool
	// At and Seq are the pending wakeup's deadline and heap tie-breaker;
	// meaningless when Stopped.
	At  Time
	Seq uint64
}

// State captures the daemon's serializable state. It must only be called at
// a quiescent boundary (the daemon armed or stopped, never mid-body): the
// postpone accumulator is consumed when the next wakeup is armed, so it is
// always zero here and is not part of the state.
func (d *Daemon) State() DaemonState {
	st := DaemonState{Name: d.Name, Interval: d.Interval, Runs: d.Runs, Stopped: d.stopped}
	if d.postpone != 0 {
		panic("sim: Daemon.State mid-body (postpone pending)")
	}
	if !d.stopped {
		st.At, st.Seq = d.ev.at, d.ev.seq
	}
	return st
}

// RestoreState rewinds a freshly-armed daemon to a saved state: the pending
// wakeup is cancelled and re-armed at the exact saved (deadline, seq).
// Restore-only; must run before the clock's own RestoreTime so the sanity
// checks in scheduleExact-based paths see a consistent view.
func (d *Daemon) RestoreState(st DaemonState) error {
	if st.Name != d.Name {
		return fmt.Errorf("sim: daemon state %q restored onto daemon %q", st.Name, d.Name)
	}
	d.Interval = st.Interval
	d.Runs = st.Runs
	if st.Stopped {
		d.Stop()
		return nil
	}
	d.ev.Cancel()
	d.ev = d.clock.scheduleExact(st.At, st.Seq, d.fire)
	return nil
}
