package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**). Every source of randomness in the simulator draws from an
// RNG seeded from the experiment seed, so runs are reproducible and
// independent subsystems can use split streams without correlation.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed nonzero state even for small seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent stream from this one, keyed by id. The parent
// stream is not perturbed, so subsystem construction order does not affect
// the numbers a subsystem sees.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(r.s[0] ^ (id+1)*0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
