package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds agreed on %d/100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	s1 := parent.Split(1)
	s2 := parent.Split(2)
	s1again := NewRNG(7).Split(1)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s1again.Uint64() {
			t.Fatal("Split(1) not reproducible")
		}
	}
	// Split must not perturb the parent.
	p2 := NewRNG(7)
	_ = p2.Split(9)
	parentFresh := NewRNG(7)
	if p2.Uint64() != parentFresh.Uint64() {
		t.Fatal("Split perturbed parent stream")
	}
	_ = s2
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestInt63nRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of uniforms = %v, want ≈0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		m := int(n%64) + 1
		xs := make([]int, m)
		for i := range xs {
			xs[i] = i
		}
		r.Shuffle(m, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, m)
		for _, v := range xs {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64Distribution(t *testing.T) {
	// Crude bit-balance check: each of the 64 bits should be set ~50% of
	// the time over many draws.
	r := NewRNG(23)
	const n = 20000
	var counts [64]int
	for i := 0; i < n; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			}
		}
	}
	for b, cnt := range counts {
		frac := float64(cnt) / n
		if frac < 0.47 || frac > 0.53 {
			t.Fatalf("bit %d set fraction %v, want ≈0.5", b, frac)
		}
	}
}
