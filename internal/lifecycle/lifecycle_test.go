package lifecycle

import (
	"testing"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/metrics"
	"multiclock/internal/pagetable"
)

// nullPolicy is static placement with base latency: the Fig. 4 ladder is
// driven by hand so each rung is attributable to one call.
type nullPolicy struct{ machine.Base }

func (*nullPolicy) Name() string { return "null" }

func testMachine(dram, pm int) *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{dram}
	cfg.Mem.PMNodes = []int{pm}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	return machine.New(cfg, &nullPolicy{})
}

// step is one expected (state, reason) rung of a timeline.
type step struct{ state, reason string }

// wantTimeline asserts a page's exported event sequence rung by rung.
func wantTimeline(t *testing.T, tr *Tracer, va uint64, want []step) {
	t.Helper()
	ex := tr.Export()
	var pg *metrics.PageTimeline
	for i := range ex.Pages {
		if ex.Pages[i].VA == va {
			pg = &ex.Pages[i]
		}
	}
	if pg == nil {
		t.Fatalf("page %#x not traced (have %d pages)", va, len(ex.Pages))
	}
	for i, ev := range pg.Events {
		if i >= len(want) {
			t.Fatalf("event %d: extra (%s, %s), want end of timeline", i, ev.State, ev.Reason)
		}
		if ev.State != want[i].state || ev.Reason != want[i].reason {
			t.Fatalf("event %d: (%s, %s), want (%s, %s)", i, ev.State, ev.Reason, want[i].state, want[i].reason)
		}
		if i > 0 && ev.At < pg.Events[i-1].At {
			t.Fatalf("event %d: time %d before predecessor %d", i, ev.At, pg.Events[i-1].At)
		}
	}
	if len(pg.Events) < len(want) {
		t.Fatalf("timeline has %d events, want %d: next missing rung (%s, %s)",
			len(pg.Events), len(want), want[len(pg.Events)].state, want[len(pg.Events)].reason)
	}
}

// TestFig4Ladder drives one page through the full Fig. 4 ladder by hand —
// birth, the reference climb (1)(6)(7)(10), promote refresh-spend and decay
// (11)(12), migration both directions, and unmapping — and asserts the
// tracer records exactly that walk, in order, with the refined reasons.
func TestFig4Ladder(t *testing.T) {
	m := testMachine(64, 64)
	tr := New(Config{}).Bind(m)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")

	// Fault + four supervised accesses climb inactive-unref → promote.
	for i := 0; i < 4; i++ {
		m.SupervisedAccess(as, v.Start, false)
	}
	pg := as.Lookup(v.Start)
	vec := m.Vecs[pg.Node]

	// Promote decay: the first scan spends the kept referenced bit (12),
	// the second drops the page back to active (11).
	if vec.DecayPromote(pg) {
		t.Fatal("referenced promote page decayed on first scan")
	}
	if !vec.DecayPromote(pg) {
		t.Fatal("unreferenced promote page survived second scan")
	}

	// Migrate DRAM → PM ("demoted"), PM → DRAM ("promoted").
	pmNode := m.Mem.TierNodes(mem.TierPM)[0]
	dramNode := m.Mem.TierNodes(mem.TierDRAM)[0]
	if !m.MigratePage(pg, pmNode) || !m.MigratePage(pg, dramNode) {
		t.Fatal("hand migrations failed")
	}
	m.Unmap(as, v.Start)

	wantTimeline(t, tr, v.Start.Addr(), []step{
		{"inactive-unref", "birth"},        // (5) fault-in
		{"inactive-ref", "access"},         // (1)
		{"active-unref", "access"},         // (6)
		{"active-ref", "access"},           // (7)
		{"promote-ref", "access"},          // (10), referenced kept on entry
		{"promote-unref", "promote-decay"}, // (12) refresh spent
		{"active-unref", "promote-decay"},  // (11) decay to active
		{"isolated", "isolate"},            // DRAM→PM migration begins
		{"active-unref", "putback"},        // lands on the PM vec
		{"active-unref", "demoted"},        // migration outcome, node = dst
		{"isolated", "isolate"},            // PM→DRAM migration begins
		{"active-unref", "putback"},
		{"active-unref", "promoted"},
		{"gone", "unmapped"}, // LRU delete during Unmap
		{"gone", "freed"},    // frame released
	})

	// The exported section must satisfy its own schema.
	if err := metrics.ValidateSections(tr.Export(), nil); err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
}

// TestPingPongCounted: a page migrated back and forth N times must carry
// Migrations == 2N (each round trip is two successful migrations), making it
// the top ping-pong candidate among otherwise idle pages.
func TestPingPongCounted(t *testing.T) {
	m := testMachine(64, 64)
	tr := New(Config{}).Bind(m)
	as := m.NewSpace()
	v := as.Mmap(8, false, "x")
	for i := uint64(0); i < 8; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	hot := as.Lookup(v.Start + 3)
	pm := m.Mem.TierNodes(mem.TierPM)[0]
	dram := m.Mem.TierNodes(mem.TierDRAM)[0]
	const trips = 5
	for i := 0; i < trips; i++ {
		if !m.MigratePage(hot, pm) || !m.MigratePage(hot, dram) {
			t.Fatal("migration failed")
		}
	}

	ex := tr.Export()
	var best *metrics.PageTimeline
	for i := range ex.Pages {
		if best == nil || ex.Pages[i].Migrations > best.Migrations {
			best = &ex.Pages[i]
		}
	}
	if best == nil || best.VA != hot.VA {
		t.Fatalf("top ping-ponger is %+v, want va %#x", best, hot.VA)
	}
	if best.Migrations != 2*trips {
		t.Fatalf("migrations = %d, want %d", best.Migrations, 2*trips)
	}
}

// TestFailedMigrationRecorded: a migration into a full node must record
// migrate-fail (and no migration count) while restoring the page.
func TestFailedMigrationRecorded(t *testing.T) {
	m := testMachine(64, 2)
	tr := New(Config{}).Bind(m)
	pm := m.Mem.TierNodes(mem.TierPM)[0]
	for m.Mem.Nodes[pm].FreeFrames() > 0 {
		m.Mem.AllocOn(pm, true)
	}
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	if m.MigratePage(pg, pm) {
		t.Fatal("migration into a full node succeeded")
	}

	ex := tr.Export()
	if len(ex.Pages) != 1 {
		t.Fatalf("pages traced = %d, want 1", len(ex.Pages))
	}
	p := ex.Pages[0]
	if p.Migrations != 0 {
		t.Fatalf("failed migration counted: %d", p.Migrations)
	}
	var sawFail, sawRestore bool
	for _, ev := range p.Events {
		if ev.Reason == "migrate-fail" {
			sawFail = true
		}
		if sawFail && ev.Reason == "putback" {
			sawRestore = true
		}
	}
	if !sawFail || !sawRestore {
		t.Fatalf("want migrate-fail then putback, got %+v", p.Events)
	}
}

// TestSwapOutRecordsDeath: the tracer must resolve the page identity on the
// swap path even though the page table clears pg.Space first.
func TestSwapOutRecordsDeath(t *testing.T) {
	m := testMachine(64, 64)
	tr := New(Config{}).Bind(m)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	m.Vecs[pg.Node].Isolate(pg)
	m.SwapOut(pg)

	ex := tr.Export()
	if len(ex.Pages) != 1 || ex.Pages[0].VA != v.Start.Addr() {
		t.Fatalf("swap-out lost the page identity: %+v", ex.Pages)
	}
	evs := ex.Pages[0].Events
	last := evs[len(evs)-1]
	if last.State != "gone" || last.Reason != "swap-out" {
		t.Fatalf("final event (%s, %s), want (gone, swap-out)", last.State, last.Reason)
	}
}

// TestSamplingBoundsAndDeterminism: SampleMod must trace a strict,
// deterministic subset; two identical runs export identical sections.
func TestSamplingBoundsAndDeterminism(t *testing.T) {
	run := func(mod uint64) *metrics.LifecycleExport {
		m := testMachine(256, 256)
		tr := New(Config{SampleMod: mod}).Bind(m)
		as := m.NewSpace()
		v := as.Mmap(128, false, "x")
		for i := uint64(0); i < 128; i++ {
			m.SupervisedAccess(as, v.Start+pagetable.VPN(i), false)
		}
		return tr.Export()
	}
	all, sampled := run(1), run(8)
	if len(all.Pages) != 128 {
		t.Fatalf("mod 1 traced %d pages, want 128", len(all.Pages))
	}
	if len(sampled.Pages) == 0 || len(sampled.Pages) >= len(all.Pages) {
		t.Fatalf("mod 8 traced %d of %d pages, want a strict non-empty subset", len(sampled.Pages), len(all.Pages))
	}
	again := run(8)
	if len(again.Pages) != len(sampled.Pages) {
		t.Fatalf("sampling not deterministic: %d vs %d pages", len(again.Pages), len(sampled.Pages))
	}
	for i := range again.Pages {
		if again.Pages[i].VA != sampled.Pages[i].VA || again.Pages[i].Space != sampled.Pages[i].Space {
			t.Fatal("sampling not deterministic: different pages")
		}
	}
}

// TestMemoryBounds: the page and per-page event caps must hold, be counted,
// and still produce a valid export.
func TestMemoryBounds(t *testing.T) {
	m := testMachine(256, 256)
	tr := New(Config{MaxPages: 4, MaxEventsPerPage: 3}).Bind(m)
	as := m.NewSpace()
	v := as.Mmap(16, false, "x")
	for i := uint64(0); i < 16; i++ {
		for j := 0; j < 5; j++ {
			m.SupervisedAccess(as, v.Start+pagetable.VPN(i), false)
		}
	}
	ex := tr.Export()
	if len(ex.Pages) != 4 {
		t.Fatalf("pages = %d, want MaxPages = 4", len(ex.Pages))
	}
	if ex.PagesDropped == 0 || ex.EventsDropped == 0 {
		t.Fatalf("drops not counted: pages=%d events=%d", ex.PagesDropped, ex.EventsDropped)
	}
	for _, p := range ex.Pages {
		if len(p.Events) > 3 {
			t.Fatalf("page %#x has %d events over cap", p.VA, len(p.Events))
		}
		// The head of the timeline survives: birth is event zero.
		if p.Events[0].Reason != "birth" {
			t.Fatalf("truncation lost the birth event: %+v", p.Events[0])
		}
	}
	if err := metrics.ValidateSections(ex, nil); err != nil {
		t.Fatalf("bounded export does not validate: %v", err)
	}
}

// TestExportIdempotent: Export must not mutate the tracer.
func TestExportIdempotent(t *testing.T) {
	m := testMachine(64, 64)
	tr := New(Config{}).Bind(m)
	as := m.NewSpace()
	v := as.Mmap(4, false, "x")
	for i := uint64(0); i < 4; i++ {
		m.SupervisedAccess(as, v.Start+pagetable.VPN(i), false)
	}
	a, b := tr.Export(), tr.Export()
	if len(a.Pages) != len(b.Pages) {
		t.Fatal("repeat export diverges")
	}
	for i := range a.Pages {
		if len(a.Pages[i].Events) != len(b.Pages[i].Events) {
			t.Fatal("repeat export diverges in events")
		}
	}
	// Mutating one export's slices must not leak into the next.
	if len(a.Pages) > 0 && len(a.Pages[0].Events) > 0 {
		a.Pages[0].Events[0].Reason = "tampered"
		if tr.Export().Pages[0].Events[0].Reason == "tampered" {
			t.Fatal("export aliases tracer memory")
		}
	}
}
