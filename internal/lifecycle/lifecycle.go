// Package lifecycle implements the per-page span tracer: every Fig. 4
// transition a traced page makes — LRU list movement, promote-candidate
// selection and decay, migration attempts and their outcomes, retry
// bookkeeping, eviction and death — is recorded as a virtual-time-stamped
// span event with a typed reason code.
//
// The tracer is purely observational. It installs through
// machine.SetLifecycle, never mutates pages or lists, and never advances
// virtual time, so an instrumented run's simulated timeline is identical
// to an uninstrumented one. Memory is bounded three ways: deterministic
// page-identity-hash sampling (SampleMod), a cap on traced pages
// (MaxPages), and a per-page event cap (MaxEventsPerPage). Sampling is a
// pure function of (space, virtual address), so the same pages are traced
// in every same-seed run regardless of parallelism.
package lifecycle

import (
	"sort"

	"multiclock/internal/lru"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/metrics"
	"multiclock/internal/sim"
)

// Config bounds the tracer's memory.
type Config struct {
	// SampleMod traces only pages whose identity hash is 0 mod SampleMod;
	// 0 or 1 traces every page.
	SampleMod uint64
	// MaxPages caps distinct traced pages (default 4096). Later pages are
	// counted in PagesDropped and their events discarded.
	MaxPages int
	// MaxEventsPerPage caps each page's timeline (default 512); events past
	// the cap are dropped (the head of the timeline is kept, so birth and
	// the first ladder climb always survive).
	MaxEventsPerPage int
}

// DefaultConfig returns the default bounds with sampling off.
func DefaultConfig() Config {
	return Config{SampleMod: 1, MaxPages: 4096, MaxEventsPerPage: 512}
}

// pageKey is the stable page identity: descriptor pointers are reused
// across free/fault, but (space, va) names the same application page
// across migrations and even across swap-out/refault.
type pageKey struct {
	space int32
	va    uint64
}

// pageTrace accumulates one page's timeline. A nil events slice with
// stub=true marks a page that arrived after MaxPages was hit.
type pageTrace struct {
	events     []metrics.SpanEvent
	migrations int64
	stub       bool
	truncated  bool
}

// Tracer records page lifecycle spans. It implements machine.Lifecycle
// (and, through it, lru.Hook). Single-threaded, like the machine it binds.
type Tracer struct {
	cfg   Config
	clock *sim.Clock
	mach  *machine.Machine

	pages map[pageKey]*pageTrace
	// byPtr remembers each sampled descriptor's identity: the page table
	// clears pg.Space before the delete/free hooks fire, so end-of-life
	// events resolve their key through the descriptor. Entries die with
	// the page (PageFreed / SwappedOut).
	byPtr         map[*mem.Page]pageKey
	tracked       int // non-stub entries in pages
	pagesDropped  int64
	eventsDropped int64
}

// New creates a tracer with cfg's bounds (zero fields take defaults).
func New(cfg Config) *Tracer {
	def := DefaultConfig()
	if cfg.SampleMod == 0 {
		cfg.SampleMod = def.SampleMod
	}
	if cfg.MaxPages <= 0 {
		cfg.MaxPages = def.MaxPages
	}
	if cfg.MaxEventsPerPage <= 0 {
		cfg.MaxEventsPerPage = def.MaxEventsPerPage
	}
	return &Tracer{
		cfg:   cfg,
		pages: make(map[pageKey]*pageTrace),
		byPtr: make(map[*mem.Page]pageKey),
	}
}

// Bind installs the tracer on the machine (machine.SetLifecycle wires the
// LRU vec hooks too) and returns it for chaining.
func (t *Tracer) Bind(m *machine.Machine) *Tracer {
	t.clock = m.Clock
	t.mach = m
	m.SetLifecycle(t)
	return t
}

// hashKey is a splitmix64-style mix of the page identity; its low bits are
// uniform enough that key.hash % SampleMod samples evenly.
func hashKey(k pageKey) uint64 {
	x := uint64(uint32(k.space))<<56 ^ k.va
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sampled reports whether this page identity is traced.
func (t *Tracer) sampled(k pageKey) bool {
	return t.cfg.SampleMod <= 1 || hashKey(k)%t.cfg.SampleMod == 0
}

// keyOf resolves a page's identity: directly while mapped, through the
// descriptor map once the page table has cleared pg.Space (unmap paths).
func (t *Tracer) keyOf(pg *mem.Page) (pageKey, bool) {
	if pg.Space >= 0 {
		return pageKey{space: pg.Space, va: pg.VA}, true
	}
	k, ok := t.byPtr[pg]
	return k, ok
}

// trace returns the page's accumulator, creating it within bounds; nil
// when the page is unsampled, unresolvable, or over the page cap.
func (t *Tracer) trace(pg *mem.Page) *pageTrace {
	k, ok := t.keyOf(pg)
	if !ok || !t.sampled(k) {
		return nil
	}
	t.byPtr[pg] = k
	pt := t.pages[k]
	if pt == nil {
		pt = &pageTrace{}
		if t.tracked >= t.cfg.MaxPages {
			pt.stub = true
			t.pagesDropped++
		} else {
			t.tracked++
		}
		t.pages[k] = pt
	}
	if pt.stub {
		t.eventsDropped++
		return nil
	}
	return pt
}

// record appends one span event to the page's timeline.
func (t *Tracer) record(pg *mem.Page, state lru.State, reason string, node mem.NodeID, now sim.Time) {
	pt := t.trace(pg)
	if pt == nil {
		return
	}
	if len(pt.events) >= t.cfg.MaxEventsPerPage {
		pt.truncated = true
		t.eventsDropped++
		return
	}
	pt.events = append(pt.events, metrics.SpanEvent{
		At: int64(now), State: state.String(), Reason: reason, Node: int(node),
	})
}

// PageTransition implements lru.Hook: list/state movement with the reason
// refined from the LRU cause and the states involved.
func (t *Tracer) PageTransition(pg *mem.Page, node mem.NodeID, from, to lru.State, cause lru.Cause) {
	now := t.clock.Now()
	reason := cause.String()
	switch cause {
	case lru.CauseAdd:
		if pg.BornAt == now {
			reason = "birth"
		}
	case lru.CauseDecay:
		if from == lru.StatePromoteUnref || from == lru.StatePromoteRef {
			reason = "promote-decay"
		}
	case lru.CauseIsolate:
		switch from {
		case lru.StatePromoteUnref, lru.StatePromoteRef:
			reason = "promote-select"
		case lru.StateInactiveUnref, lru.StateInactiveRef:
			reason = "demote-select"
		}
	case lru.CauseDelete:
		reason = "unmapped"
	}
	t.record(pg, to, reason, node, now)
}

// MigrationAttempt implements machine.Lifecycle.
func (t *Tracer) MigrationAttempt(pg *mem.Page, src, dst mem.NodeID, ok bool, now sim.Time) {
	if !ok {
		t.record(pg, lru.StateOf(pg), "migrate-fail", src, now)
		return
	}
	pt := t.trace(pg)
	if pt != nil {
		pt.migrations++
	}
	reason := "migrated"
	srcTier := t.mach.Mem.Nodes[src].Tier
	dstTier := t.mach.Mem.Nodes[dst].Tier
	switch {
	case dstTier < srcTier:
		reason = "promoted"
	case dstTier > srcTier:
		reason = "demoted"
	}
	t.record(pg, lru.StateOf(pg), reason, dst, now)
}

// PromoteRequeued implements machine.Lifecycle.
func (t *Tracer) PromoteRequeued(pg *mem.Page, attempt int, now sim.Time) {
	t.record(pg, lru.StateOf(pg), "promote-requeue", pg.Node, now)
}

// PromoteDropped implements machine.Lifecycle.
func (t *Tracer) PromoteDropped(pg *mem.Page, now sim.Time) {
	t.record(pg, lru.StateOf(pg), "promote-drop", pg.Node, now)
}

// DemoteRequeued implements machine.Lifecycle.
func (t *Tracer) DemoteRequeued(pg *mem.Page, attempt int, now sim.Time) {
	t.record(pg, lru.StateOf(pg), "demote-requeue", pg.Node, now)
}

// SwapFallback implements machine.Lifecycle.
func (t *Tracer) SwapFallback(pg *mem.Page, now sim.Time) {
	t.record(pg, lru.StateOf(pg), "swap-fallback", pg.Node, now)
}

// SwappedOut implements machine.Lifecycle.
func (t *Tracer) SwappedOut(pg *mem.Page, now sim.Time) {
	t.record(pg, lru.StateGone, "swap-out", pg.Node, now)
	delete(t.byPtr, pg)
}

// PageFreed implements machine.Lifecycle.
func (t *Tracer) PageFreed(pg *mem.Page, now sim.Time) {
	t.record(pg, lru.StateGone, "freed", pg.Node, now)
	delete(t.byPtr, pg)
}

// PagesTraced returns the number of pages with recorded timelines.
func (t *Tracer) PagesTraced() int { return t.tracked }

// Export snapshots the tracer as the wire-format lifecycle section, pages
// sorted by (space, va). Export does not mutate the tracer and may be
// called repeatedly.
func (t *Tracer) Export() *metrics.LifecycleExport {
	out := &metrics.LifecycleExport{
		SampleMod:        t.cfg.SampleMod,
		MaxPages:         t.cfg.MaxPages,
		MaxEventsPerPage: t.cfg.MaxEventsPerPage,
		PagesDropped:     t.pagesDropped,
		EventsDropped:    t.eventsDropped,
	}
	keys := make([]pageKey, 0, t.tracked)
	for k, pt := range t.pages {
		if !pt.stub {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].space != keys[j].space {
			return keys[i].space < keys[j].space
		}
		return keys[i].va < keys[j].va
	})
	for _, k := range keys {
		pt := t.pages[k]
		out.Pages = append(out.Pages, metrics.PageTimeline{
			Space:      k.space,
			VA:         k.va,
			Migrations: pt.migrations,
			Events:     append([]metrics.SpanEvent(nil), pt.events...),
		})
	}
	return out
}

// compile-time interface check
var _ machine.Lifecycle = (*Tracer)(nil)
