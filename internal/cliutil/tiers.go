package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"multiclock/internal/mem"
)

// ParseTierSpec parses the shared -tiers flag syntax into a memory
// topology: comma-separated name:frames entries, fastest tier first, e.g.
// "dram:1024,cxl:2048,pm:8192,ssd:*". Repeating a name in consecutive
// entries adds another NUMA node to that tier ("dram:512,dram:512" is a
// two-node DRAM tier); "*" in place of a frame count is only valid for the
// durable tier, which has no frames. Tier names come from
// mem.BuiltinTiers. Both CLIs route the spec through here so a bad spec
// fails with the same message no matter which binary saw it.
func ParseTierSpec(spec string) (mem.Topology, error) {
	var top mem.Topology
	if strings.TrimSpace(spec) == "" {
		return top, fmt.Errorf("-tiers: empty spec; want name:frames pairs like %q", "dram:1024,pm:4096")
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		name, frames, ok := strings.Cut(entry, ":")
		if !ok || name == "" || frames == "" {
			return top, fmt.Errorf("-tiers: entry %q must be name:frames (or name:* for the durable tier)", entry)
		}
		ts, known := mem.BuiltinTierSpec(name)
		if !known {
			return top, fmt.Errorf("-tiers: unknown tier %q (have %s)", name, strings.Join(mem.BuiltinTiers, ", "))
		}
		if frames == "*" {
			if !ts.Durable {
				return top, fmt.Errorf("-tiers: tier %q needs a frame count; \"*\" is only for the durable tier", name)
			}
		} else {
			if ts.Durable {
				return top, fmt.Errorf("-tiers: durable tier %q has no frames; write %s:*", name, name)
			}
			n, err := strconv.Atoi(frames)
			if err != nil || n <= 0 {
				return top, fmt.Errorf("-tiers: tier %q needs a positive frame count, got %q", name, frames)
			}
			ts.Nodes = []int{n}
		}
		// A repeat of the previous entry's name grows that tier by one node.
		if last := len(top.Tiers) - 1; last >= 0 && top.Tiers[last].Name == name {
			top.Tiers[last].Nodes = append(top.Tiers[last].Nodes, ts.Nodes...)
			continue
		}
		top.Tiers = append(top.Tiers, ts)
	}
	if err := top.Validate(); err != nil {
		return top, fmt.Errorf("-tiers: %v", err)
	}
	return top, nil
}
