package cliutil

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
)

// TestStartDebugStopsCleanly pins the -http endpoint lifecycle: it serves
// while running, a clean end-of-run stop is not counted as a serve
// failure, and the listener is actually released — the pre-fix code leaked
// it for the life of the process.
func TestStartDebugStopsCleanly(t *testing.T) {
	addr, stop, err := StartDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		stop()
		t.Fatalf("endpoint not serving: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		stop()
		t.Fatalf("/debug/vars: status %d", resp.StatusCode)
	}

	before := DebugServeFailures()
	stop() // blocks until the serve loop has exited
	if got := DebugServeFailures(); got != before {
		t.Fatalf("clean stop was counted as a serve failure (%d -> %d)", before, got)
	}

	// The port must be free again immediately.
	ln, err := net.Listen("tcp", addr.String())
	if err != nil {
		t.Fatalf("listener leaked after stop: %v", err)
	}
	ln.Close()

	// And the endpoint must be restartable on the same address.
	_, stop2, err := StartDebug(addr.String())
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	stop2()
}

// TestDebugEndpointOnBothBinaries proves -http is wired through both CLIs:
// each binary runs a tiny job with the endpoint enabled, announces the bound
// address, and exits cleanly (the listener did not hold the process open).
func TestDebugEndpointOnBothBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("builds both CLI binaries")
	}
	dir := t.TempDir()
	mcsim := buildCLI(t, dir, "multiclock/cmd/mcsim", "mcsim")
	mcbench := buildCLI(t, dir, "multiclock/cmd/mcbench", "mcbench")

	cases := []struct {
		name string
		bin  string
		args []string
	}{
		{"mcsim", mcsim, []string{"-policy", "static", "-workload", "C",
			"-records", "256", "-ops", "500", "-http", "127.0.0.1:0"}},
		{"mcbench", mcbench, []string{"-exp", "table1", "-quick", "-http", "127.0.0.1:0"}},
	}
	for _, c := range cases {
		code, stderr := runCLI(t, c.bin, c.args...)
		if code != 0 {
			t.Errorf("%s with -http exited %d\n%s", c.name, code, stderr)
		}
		if !strings.Contains(stderr, "debug endpoint on http://") {
			t.Errorf("%s did not announce the debug endpoint:\n%s", c.name, stderr)
		}
	}
}
