package cliutil

import (
	"bytes"
	"io"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestValidateExportFlags(t *testing.T) {
	cases := []struct {
		name      string
		series    time.Duration
		lifecycle uint64
		metrics   string
		slo       string
		traceOut  string
		wantErr   bool
	}{
		{"nothing", 0, 0, "", "", "", false},
		{"metrics only", 0, 0, "out.json", "", "", false},
		{"series with metrics", 10 * time.Millisecond, 0, "out.json", "", "", false},
		{"lifecycle with metrics", 0, 1, "out.json", "", "", false},
		{"slo with metrics", 0, 0, "out.json", "p99(x_ns) < 1us over 1ms", "", false},
		{"trace-out with metrics", 0, 0, "out.json", "", "t.json", false},
		{"series without metrics", 10 * time.Millisecond, 0, "", "", "", true},
		{"lifecycle without metrics", 0, 1, "", "", "", true},
		{"both without metrics", 10 * time.Millisecond, 1, "", "", "", true},
		{"slo without metrics", 0, 0, "", "p99(x_ns) < 1us over 1ms", "", true},
		{"trace-out without metrics", 0, 0, "", "", "t.json", true},
	}
	for _, c := range cases {
		err := ValidateExportFlags(c.series, c.lifecycle, c.metrics, c.slo, c.traceOut)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: got err=%v, want error=%v", c.name, err, c.wantErr)
		}
	}
}

func TestSnapshotFlagsValidate(t *testing.T) {
	cases := []struct {
		name      string
		f         SnapshotFlags
		series    time.Duration
		lifecycle uint64
		slo       string
		traceOut  string
		wantErr   bool
	}{
		{"nothing", SnapshotFlags{}, 0, 0, "", "", false},
		{"snapshot with cadence", SnapshotFlags{Snapshot: "s.mcsnap", SnapshotEvery: 5000}, 0, 0, "", "", false},
		{"audit with cadence", SnapshotFlags{Audit: "a.jsonl", SnapshotEvery: 5000}, 0, 0, "", "", false},
		{"restore alone", SnapshotFlags{Restore: "s.mcsnap"}, 0, 0, "", "", false},
		{"invariants alone", SnapshotFlags{InvariantsEvery: 1000}, 0, 0, "", "", false},
		{"invariants with series", SnapshotFlags{InvariantsEvery: 1000}, 10 * time.Millisecond, 0, "", "", false},
		{"invariants with slo", SnapshotFlags{InvariantsEvery: 1000}, 0, 0, "p99(x_ns) < 1us over 1ms", "", false},
		{"negative cadence", SnapshotFlags{SnapshotEvery: -1}, 0, 0, "", "", true},
		{"negative invariants", SnapshotFlags{InvariantsEvery: -1}, 0, 0, "", "", true},
		{"cadence without sink", SnapshotFlags{SnapshotEvery: 5000}, 0, 0, "", "", true},
		{"snapshot without cadence", SnapshotFlags{Snapshot: "s.mcsnap"}, 0, 0, "", "", true},
		{"audit without cadence", SnapshotFlags{Audit: "a.jsonl"}, 0, 0, "", "", true},
		{"snapshot with series", SnapshotFlags{Snapshot: "s.mcsnap", SnapshotEvery: 5000}, 10 * time.Millisecond, 0, "", "", true},
		{"restore with lifecycle", SnapshotFlags{Restore: "s.mcsnap"}, 0, 1, "", "", true},
		{"restore with slo", SnapshotFlags{Restore: "s.mcsnap"}, 0, 0, "p99(x_ns) < 1us over 1ms", "", true},
		{"snapshot with trace-out", SnapshotFlags{Snapshot: "s.mcsnap", SnapshotEvery: 5000}, 0, 0, "", "t.json", true},
	}
	for _, c := range cases {
		err := c.f.Validate(c.series, c.lifecycle, c.slo, c.traceOut)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: got err=%v, want error=%v", c.name, err, c.wantErr)
		}
	}
}

func TestSnapshotFlagsActive(t *testing.T) {
	cases := []struct {
		name string
		f    SnapshotFlags
		want bool
	}{
		{"zero", SnapshotFlags{}, false},
		{"invariants only", SnapshotFlags{InvariantsEvery: 100}, false},
		{"snapshot", SnapshotFlags{Snapshot: "s"}, true},
		{"cadence", SnapshotFlags{SnapshotEvery: 1}, true},
		{"restore", SnapshotFlags{Restore: "s"}, true},
		{"audit", SnapshotFlags{Audit: "a"}, true},
	}
	for _, c := range cases {
		if got := c.f.Active(); got != c.want {
			t.Errorf("%s: Active() = %v, want %v", c.name, got, c.want)
		}
	}
}

// buildCLI compiles one command into dir; the test working directory is
// inside the module, so import paths resolve.
func buildCLI(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) (code int, stderr string) {
	t.Helper()
	var errBuf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = &errBuf
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", bin, args, err)
	}
	return code, errBuf.String()
}

// TestCLIsFailIdentically proves mcsim and mcbench reject the same bad
// -series/-lifecycle combinations with the same exit code AND the same
// message, byte for byte — scripts should be able to match one string no
// matter which binary produced it.
func TestCLIsFailIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("builds both CLI binaries")
	}
	dir := t.TempDir()
	mcsim := buildCLI(t, dir, "multiclock/cmd/mcsim", "mcsim")
	mcbench := buildCLI(t, dir, "multiclock/cmd/mcbench", "mcbench")

	combos := [][]string{
		{"-series", "10ms"},
		{"-lifecycle", "1"},
		{"-series", "10ms", "-lifecycle", "1"},
		{"-slo", "p99(access_latency_dram_read_ns) < 400ns over 10ms"},
		{"-trace-out", "t.json"},
		// A malformed objective spec fails through the shared parser once
		// -metrics is present, so that message is identical too.
		{"-metrics", "m.json", "-slo", "p99(x < 400ns over 10ms"},
		// Bad -tiers specs fail through the shared parser, so the message
		// (tier set, frame-count complaint, duplicate) is also identical.
		{"-tiers", "hbm:64"},
		{"-tiers", "dram:0,pm:64"},
		{"-tiers", "dram:64,pm:64,dram:64"},
		{"-tiers", "ssd:*,dram:64"},
	}
	for _, extra := range combos {
		simCode, simMsg := runCLI(t, mcsim, extra...)
		benchCode, benchMsg := runCLI(t, mcbench, append([]string{"-exp", "fig5", "-quick"}, extra...)...)
		if simCode != ExitUsage || benchCode != ExitUsage {
			t.Errorf("%v: exit codes mcsim=%d mcbench=%d, want both %d", extra, simCode, benchCode, ExitUsage)
		}
		if simMsg != benchMsg {
			t.Errorf("%v: messages differ\n  mcsim:   %q\n  mcbench: %q", extra, simMsg, benchMsg)
		}
		if simMsg == "" {
			t.Errorf("%v: expected a usage message on stderr, got none", extra)
		}
	}

	// The flag error must win over everything else mcbench might do first
	// (experiment listing, the perf suite), so the combination fails the
	// same way regardless of the other flags on the line.
	code, msg := runCLI(t, mcbench, "-series", "10ms")
	if code != ExitUsage || msg == "" {
		t.Errorf("mcbench -series without -exp: exit=%d stderr=%q, want usage failure", code, msg)
	}
}
