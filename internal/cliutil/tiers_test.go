package cliutil

import (
	"strings"
	"testing"
)

func TestParseTierSpec(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		wantErr string   // substring of the error, "" for success
		tiers   []string // expected tier names in order
		nodes   [][]int  // expected per-tier node frame counts
	}{
		{
			name: "default pair", spec: "dram:1024,pm:4096",
			tiers: []string{"dram", "pm"}, nodes: [][]int{{1024}, {4096}},
		},
		{
			name: "three tier", spec: "dram:1024,cxl:2048,pm:8192",
			tiers: []string{"dram", "cxl", "pm"}, nodes: [][]int{{1024}, {2048}, {8192}},
		},
		{
			name: "four tier with durable", spec: "dram:1024,cxl:2048,pm:8192,ssd:*",
			tiers: []string{"dram", "cxl", "pm", "ssd"}, nodes: [][]int{{1024}, {2048}, {8192}, nil},
		},
		{
			name: "multi-node tier", spec: "dram:512,dram:512,pm:4096",
			tiers: []string{"dram", "pm"}, nodes: [][]int{{512, 512}, {4096}},
		},
		{
			name: "spaces tolerated", spec: " dram:64 , pm:256 ",
			tiers: []string{"dram", "pm"}, nodes: [][]int{{64}, {256}},
		},
		{name: "empty", spec: "", wantErr: "empty spec"},
		{name: "blank", spec: "   ", wantErr: "empty spec"},
		{name: "missing colon", spec: "dram1024", wantErr: `entry "dram1024" must be name:frames`},
		{name: "missing count", spec: "dram:", wantErr: "must be name:frames"},
		{name: "unknown tier", spec: "dram:64,hbm:64", wantErr: `unknown tier "hbm" (have dram, cxl, pm, ssd)`},
		{name: "zero frames", spec: "dram:0,pm:64", wantErr: `tier "dram" needs a positive frame count, got "0"`},
		{name: "negative frames", spec: "dram:-5,pm:64", wantErr: "positive frame count"},
		{name: "garbage frames", spec: "dram:abc,pm:64", wantErr: `got "abc"`},
		{name: "star on frame tier", spec: "dram:*,pm:64", wantErr: `"*" is only for the durable tier`},
		{name: "count on durable", spec: "dram:64,ssd:25", wantErr: `durable tier "ssd" has no frames`},
		{name: "duplicate tier", spec: "dram:64,pm:64,dram:64", wantErr: `duplicate tier "dram"`},
		{name: "durable not last", spec: "dram:64,ssd:*,pm:64", wantErr: `durable tier "ssd" must be the last tier`},
		{name: "durable only", spec: "ssd:*", wantErr: "no frame-backed tier"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			top, err := ParseTierSpec(c.spec)
			if c.wantErr != "" {
				if err == nil {
					t.Fatalf("ParseTierSpec(%q) = %+v, want error containing %q", c.spec, top, c.wantErr)
				}
				if !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("ParseTierSpec(%q) error = %q, want substring %q", c.spec, err, c.wantErr)
				}
				if !strings.HasPrefix(err.Error(), "-tiers: ") {
					t.Fatalf("ParseTierSpec(%q) error %q not prefixed with -tiers:", c.spec, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseTierSpec(%q): %v", c.spec, err)
			}
			if len(top.Tiers) != len(c.tiers) {
				t.Fatalf("got %d tiers, want %d (%+v)", len(top.Tiers), len(c.tiers), top)
			}
			for i, ts := range top.Tiers {
				if ts.Name != c.tiers[i] {
					t.Errorf("tier %d = %q, want %q", i, ts.Name, c.tiers[i])
				}
				if len(ts.Nodes) != len(c.nodes[i]) {
					t.Errorf("tier %q has %d nodes, want %d", ts.Name, len(ts.Nodes), len(c.nodes[i]))
					continue
				}
				for j, f := range ts.Nodes {
					if f != c.nodes[i][j] {
						t.Errorf("tier %q node %d = %d frames, want %d", ts.Name, j, f, c.nodes[i][j])
					}
				}
			}
		})
	}
}

// TestParseTierSpecRoundTrip pins Spec() and ParseTierSpec as inverses for
// every shape the flag accepts.
func TestParseTierSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"dram:1024,pm:4096",
		"dram:512,dram:512,pm:4096",
		"dram:1024,cxl:2048,pm:8192,ssd:*",
	} {
		top, err := ParseTierSpec(spec)
		if err != nil {
			t.Fatalf("ParseTierSpec(%q): %v", spec, err)
		}
		if got := top.Spec(); got != strings.ReplaceAll(spec, " ", "") {
			t.Errorf("round trip: %q -> %q", spec, got)
		}
	}
}
