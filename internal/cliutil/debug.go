package cliutil

import (
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"time"
)

// Wall-clock debug-endpoint counters exported on /debug/vars. These observe
// the host process only — the simulation itself is untouched, so enabling
// the endpoint cannot move a single virtual-time result.
var (
	debugStartUnixNano = expvar.NewInt("debug.start_unix_nano")
	// debugServeFailures counts post-bind serve failures of the debug
	// endpoint itself (distinct from the silent http.ErrServerClosed of a
	// clean end-of-run shutdown).
	debugServeFailures = expvar.NewInt("debug.serve_failures")
)

// DebugServeFailures reports the post-bind serve-failure count (tests pin
// that a clean stop is not counted as one).
func DebugServeFailures() int64 { return debugServeFailures.Value() }

// StartDebug binds the expvar/pprof endpoint on addr and serves it in the
// background. It returns the bound address and a stop function that closes
// the listener and waits for the serve loop to exit. A clean stop surfaces
// no error (http.Serve returns http.ErrServerClosed); any other serve
// failure after a successful bind is reported to stderr and counted on
// expvar, so a mid-run endpoint death is distinguishable from end-of-run
// shutdown.
func StartDebug(addr string) (net.Addr, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	// expvar and pprof both register on http.DefaultServeMux.
	srv := &http.Server{Handler: http.DefaultServeMux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			debugServeFailures.Add(1)
			fmt.Fprintf(os.Stderr, "debug endpoint failed: %v\n", err)
		}
	}()
	stop := func() {
		srv.Close()
		<-done
	}
	return ln.Addr(), stop, nil
}

// ServeDebug is the CLI entry shared by mcsim and mcbench: failure to bind
// is fatal — a user who asked for the endpoint should not silently profile
// nothing. prog prefixes the messages. The returned stop function closes
// the endpoint cleanly at end-of-run.
func ServeDebug(prog, addr string) (stop func()) {
	debugStartUnixNano.Set(time.Now().UnixNano())
	bound, stop, err := StartDebug(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: -http %s: %v\n", prog, addr, err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "%s: debug endpoint on http://%s/debug/pprof (expvar at /debug/vars)\n", prog, bound)
	return stop
}
