// Package cliutil holds flag-validation rules shared by the command-line
// front-ends (mcsim, mcbench), so the same bad flag combination fails with
// the same exit code and the same message no matter which binary saw it.
package cliutil

import (
	"errors"
	"flag"
	"time"
)

// ExitUsage is the exit code every CLI uses for an invalid flag
// combination.
const ExitUsage = 2

// errExportFlags is the canonical message for requesting the series or
// lifecycle instrumentation without a metrics export to carry it. The CLIs
// print it verbatim (no program-name prefix) so scripts can match one
// string across binaries.
var errExportFlags = errors.New("-series/-lifecycle ride the metrics export; set -metrics too")

// ValidateExportFlags checks the -series/-lifecycle/-metrics combination.
// Both instrumentation flags only surface through the metrics JSON export,
// so either without -metrics is a usage error.
func ValidateExportFlags(series time.Duration, lifecycleMod uint64, metricsOut string) error {
	if (series > 0 || lifecycleMod > 0) && metricsOut == "" {
		return errExportFlags
	}
	return nil
}

// SnapshotFlags holds the checkpoint/restore flag set shared by mcsim and
// mcbench: where to write snapshots, how often, what to restore, where the
// divergence-audit trail goes and how often to sweep the machine invariants.
type SnapshotFlags struct {
	Snapshot        string
	SnapshotEvery   int64
	Restore         string
	Audit           string
	InvariantsEvery int64
}

// Register installs the shared flag set on fs under the canonical names.
func (f *SnapshotFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Snapshot, "snapshot", "", "checkpoint the run to this file every -snapshot-every ops (and at completion)")
	fs.Int64Var(&f.SnapshotEvery, "snapshot-every", 0, "ops between checkpoints/audit fingerprints (requires -snapshot or -audit)")
	fs.StringVar(&f.Restore, "restore", "", "resume from this snapshot file instead of starting fresh")
	fs.StringVar(&f.Audit, "audit", "", "append per-subsystem state hashes to this JSONL file every -snapshot-every ops (see `mcmetrics diverge`)")
	fs.Int64Var(&f.InvariantsEvery, "invariants-every", 0, "run the machine invariant checker every N ops (0 = off)")
}

// Active reports whether any checkpoint/restore behavior was requested
// (-invariants-every alone does not make a run checkpointable).
func (f *SnapshotFlags) Active() bool {
	return f.Snapshot != "" || f.SnapshotEvery > 0 || f.Restore != "" || f.Audit != ""
}

// Validate checks the flag set's internal consistency and its interaction
// with the unserializable observability layers. Checkpoints capture the
// virtual clock, and one-shot -series/-lifecycle samplers schedule closures
// that cannot be serialized, so the combination is refused up front.
func (f *SnapshotFlags) Validate(series time.Duration, lifecycleMod uint64) error {
	if f.SnapshotEvery < 0 {
		return errors.New("-snapshot-every must be non-negative")
	}
	if f.InvariantsEvery < 0 {
		return errors.New("-invariants-every must be non-negative")
	}
	if f.SnapshotEvery > 0 && f.Snapshot == "" && f.Audit == "" {
		return errors.New("-snapshot-every needs -snapshot or -audit to do anything")
	}
	if (f.Snapshot != "" || f.Audit != "") && f.SnapshotEvery <= 0 {
		return errors.New("-snapshot/-audit need -snapshot-every N to set the checkpoint cadence")
	}
	if f.Active() && (series > 0 || lifecycleMod > 0) {
		return errors.New("-series/-lifecycle cannot be combined with checkpointing: one-shot samplers are not serializable")
	}
	return nil
}
