// Package cliutil holds flag-validation rules shared by the command-line
// front-ends (mcsim, mcbench), so the same bad flag combination fails with
// the same exit code and the same message no matter which binary saw it.
package cliutil

import (
	"errors"
	"time"
)

// ExitUsage is the exit code every CLI uses for an invalid flag
// combination.
const ExitUsage = 2

// errExportFlags is the canonical message for requesting the series or
// lifecycle instrumentation without a metrics export to carry it. The CLIs
// print it verbatim (no program-name prefix) so scripts can match one
// string across binaries.
var errExportFlags = errors.New("-series/-lifecycle ride the metrics export; set -metrics too")

// ValidateExportFlags checks the -series/-lifecycle/-metrics combination.
// Both instrumentation flags only surface through the metrics JSON export,
// so either without -metrics is a usage error.
func ValidateExportFlags(series time.Duration, lifecycleMod uint64, metricsOut string) error {
	if (series > 0 || lifecycleMod > 0) && metricsOut == "" {
		return errExportFlags
	}
	return nil
}
