// Package cliutil holds flag-validation rules shared by the command-line
// front-ends (mcsim, mcbench), so the same bad flag combination fails with
// the same exit code and the same message no matter which binary saw it.
package cliutil

import (
	"errors"
	"flag"
	"time"
)

// ExitUsage is the exit code every CLI uses for an invalid flag
// combination.
const ExitUsage = 2

// DefaultTraceRing is the structured-event ring capacity a CLI defaults to
// when -trace-out is requested without an explicit -trace-events: a Perfetto
// export without the event ring would carry no migrations, daemon passes or
// page faults.
const DefaultTraceRing = 65536

// errExportFlags is the canonical message for requesting instrumentation
// without a metrics export to carry it. The CLIs print it verbatim (no
// program-name prefix) so scripts can match one string across binaries.
var errExportFlags = errors.New("-series/-lifecycle/-slo/-trace-out ride the metrics export; set -metrics too")

// ValidateExportFlags checks the -series/-lifecycle/-slo/-trace-out/-metrics
// combination. The instrumentation flags only surface through (or render
// from) the metrics export, so any of them without -metrics is a usage
// error. The SLO spec itself is validated separately (slo.Parse); here only
// its presence matters.
func ValidateExportFlags(series time.Duration, lifecycleMod uint64, metricsOut, sloSpec, traceOut string) error {
	if (series > 0 || lifecycleMod > 0 || sloSpec != "" || traceOut != "") && metricsOut == "" {
		return errExportFlags
	}
	return nil
}

// TraceFlags holds the SLO/trace-export flag pair shared by mcsim and
// mcbench: a declarative latency-objective spec evaluated on the virtual
// clock, and a Perfetto trace file merging every recorded signal onto one
// virtual-time timeline.
type TraceFlags struct {
	SLO      string
	TraceOut string
}

// Register installs the shared flag pair on fs under the canonical names.
func (f *TraceFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.SLO, "slo", "", "evaluate latency objectives on the virtual clock, e.g. 'p99(access_latency_dram_read_ns) < 400ns over 10ms, 99.9%'; results ride the -metrics export (see `mcmetrics slo`)")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Perfetto/Chrome trace of the run's virtual-time timeline to this file (open in ui.perfetto.dev; requires -metrics)")
}

// SnapshotFlags holds the checkpoint/restore flag set shared by mcsim and
// mcbench: where to write snapshots, how often, what to restore, where the
// divergence-audit trail goes and how often to sweep the machine invariants.
type SnapshotFlags struct {
	Snapshot        string
	SnapshotEvery   int64
	Restore         string
	Audit           string
	InvariantsEvery int64
}

// Register installs the shared flag set on fs under the canonical names.
func (f *SnapshotFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Snapshot, "snapshot", "", "checkpoint the run to this file every -snapshot-every ops (and at completion)")
	fs.Int64Var(&f.SnapshotEvery, "snapshot-every", 0, "ops between checkpoints/audit fingerprints (requires -snapshot or -audit)")
	fs.StringVar(&f.Restore, "restore", "", "resume from this snapshot file instead of starting fresh")
	fs.StringVar(&f.Audit, "audit", "", "append per-subsystem state hashes to this JSONL file every -snapshot-every ops (see `mcmetrics diverge`)")
	fs.Int64Var(&f.InvariantsEvery, "invariants-every", 0, "run the machine invariant checker every N ops (0 = off)")
}

// Active reports whether any checkpoint/restore behavior was requested
// (-invariants-every alone does not make a run checkpointable).
func (f *SnapshotFlags) Active() bool {
	return f.Snapshot != "" || f.SnapshotEvery > 0 || f.Restore != "" || f.Audit != ""
}

// Validate checks the flag set's internal consistency and its interaction
// with the unserializable observability layers. Checkpoints capture the
// virtual clock, and one-shot -series/-lifecycle samplers (and the -slo
// engine's scheduled window ticks, and the -trace-out window log) schedule
// or accumulate state that cannot be serialized, so the combinations are
// refused up front.
func (f *SnapshotFlags) Validate(series time.Duration, lifecycleMod uint64, sloSpec, traceOut string) error {
	if f.SnapshotEvery < 0 {
		return errors.New("-snapshot-every must be non-negative")
	}
	if f.InvariantsEvery < 0 {
		return errors.New("-invariants-every must be non-negative")
	}
	if f.SnapshotEvery > 0 && f.Snapshot == "" && f.Audit == "" {
		return errors.New("-snapshot-every needs -snapshot or -audit to do anything")
	}
	if (f.Snapshot != "" || f.Audit != "") && f.SnapshotEvery <= 0 {
		return errors.New("-snapshot/-audit need -snapshot-every N to set the checkpoint cadence")
	}
	if f.Active() && (series > 0 || lifecycleMod > 0 || sloSpec != "" || traceOut != "") {
		return errors.New("-series/-lifecycle/-slo/-trace-out cannot be combined with checkpointing: one-shot samplers are not serializable")
	}
	return nil
}
