// Package pagecache models file-backed memory: files whose pages enter the
// machine's page cache on read/write and ride the *file* LRU lists. This
// exercises the supervised access path (§III-A.1 — the kernel calls
// mark_page_accessed itself on syscall I/O) and the file promote lists;
// MULTI-CLOCK manages "all types of pages, anonymous and file-backed"
// (§VI), which distinguishes it from NUMA-balancing-based tiering that
// handles anonymous pages only.
package pagecache

import (
	"fmt"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// File is one simulated file whose cached pages live on the machine.
type File struct {
	Name  string
	Pages int

	m   *machine.Machine
	as  *pagetable.AddressSpace
	vma *pagetable.VMA

	// Stats
	Reads, Writes   int64
	CacheMisses     int64
	WritebackBytes  int64
	readDiskLatency sim.Duration
}

// Cache is a set of files sharing one address space (the kernel's page
// cache is global; one space models it).
type Cache struct {
	m  *machine.Machine
	as *pagetable.AddressSpace

	files map[string]*File

	// DiskRead is the cost of filling a page-cache miss from storage.
	DiskRead sim.Duration

	flusher *sim.Daemon
	// FlushedPages counts pages cleaned by the background flusher.
	FlushedPages int64
}

// New creates a page cache on the machine.
func New(m *machine.Machine) *Cache {
	return &Cache{
		m:        m,
		as:       m.NewSpace(),
		files:    make(map[string]*File),
		DiskRead: 50 * sim.Microsecond,
	}
}

// StartFlusher installs a background writeback daemon (the kernel's
// flusher threads): every interval it cleans all dirty resident pages,
// charging storage-write time as daemon interference. Demoting or evicting
// a clean page is cheaper than a dirty one, so flushing interacts with
// tiering exactly as writeback interacts with reclaim.
func (c *Cache) StartFlusher(interval sim.Duration) {
	if c.flusher != nil {
		panic("pagecache: flusher already running")
	}
	c.flusher = c.m.Clock.StartDaemon("flusher", interval, func(now sim.Time) {
		for _, f := range c.files {
			n := f.flush()
			c.FlushedPages += int64(n)
			c.m.ChargeTax(sim.Duration(n) * 10 * sim.Microsecond)
		}
	})
}

// StopFlusher halts the daemon.
func (c *Cache) StopFlusher() {
	if c.flusher != nil {
		c.flusher.Stop()
		c.flusher = nil
	}
}

// Space returns the cache's address space.
func (c *Cache) Space() *pagetable.AddressSpace { return c.as }

// Open creates (or returns) a file of the given size in pages.
func (c *Cache) Open(name string, pages int) *File {
	if f, ok := c.files[name]; ok {
		if f.Pages != pages {
			panic(fmt.Sprintf("pagecache: %q reopened with different size", name))
		}
		return f
	}
	if pages <= 0 {
		panic("pagecache: file needs at least one page")
	}
	f := &File{
		Name:            name,
		Pages:           pages,
		m:               c.m,
		as:              c.as,
		vma:             c.as.Mmap(pages, true, "file:"+name),
		readDiskLatency: c.DiskRead,
	}
	c.files[name] = f
	return f
}

// page returns the VPN of page index i.
func (f *File) page(i int) pagetable.VPN {
	if i < 0 || i >= f.Pages {
		panic(fmt.Sprintf("pagecache: %q page %d out of [0,%d)", f.Name, i, f.Pages))
	}
	return f.vma.Start + pagetable.VPN(i)
}

// Cached reports whether page i is resident.
func (f *File) Cached(i int) bool { return f.as.Lookup(f.page(i)) != nil }

// touch performs one supervised access, charging a disk fill on a cache
// miss (the page was not resident).
func (f *File) touch(i int, write bool) *mem.Page {
	vpn := f.page(i)
	if f.as.Lookup(vpn) == nil {
		f.CacheMisses++
		f.m.Compute(f.readDiskLatency)
	}
	return f.m.SupervisedAccess(f.as, vpn, write)
}

// Read performs a syscall-style read of page i.
func (f *File) Read(i int) {
	f.Reads++
	f.touch(i, false)
}

// Write performs a syscall-style write of page i, dirtying it.
func (f *File) Write(i int) {
	f.Writes++
	f.touch(i, true)
}

// ReadRange reads pages [lo, hi).
func (f *File) ReadRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		f.Read(i)
	}
}

// flush cleans dirty pages without charging the caller's timeline (daemon
// context); it returns the count.
func (f *File) flush() int {
	n := 0
	f.as.Walk(f.vma.Start, f.vma.End, func(vpn pagetable.VPN, pg *mem.Page) {
		if pg.Flags.Has(mem.FlagDirty) {
			pg.ClearFlags(mem.FlagDirty)
			pg.HWDirty = false
			n++
		}
	})
	f.WritebackBytes += int64(n) * mem.PageSize
	return n
}

// Writeback synchronously cleans all resident dirty pages (fsync),
// charging storage-write time to the caller, and returns how many pages
// were written.
func (f *File) Writeback() int {
	n := f.flush()
	f.m.Compute(sim.Duration(n) * 10 * sim.Microsecond)
	return n
}

// Drop evicts every resident page of the file (echo 1 >
// /proc/sys/vm/drop_caches for one file).
func (f *File) Drop() {
	f.as.Walk(f.vma.Start, f.vma.End, func(vpn pagetable.VPN, pg *mem.Page) {
		f.m.Unmap(f.as, vpn)
	})
}

// Resident returns the number of cached pages.
func (f *File) Resident() int {
	n := 0
	f.as.Walk(f.vma.Start, f.vma.End, func(pagetable.VPN, *mem.Page) { n++ })
	return n
}
