package pagecache

import (
	"testing"

	"multiclock/internal/core"
	"multiclock/internal/lru"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

func newMachine(dram, pm int) (*machine.Machine, *core.MultiClock) {
	mc := core.New(core.Config{ScanInterval: 10 * sim.Millisecond})
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{dram}
	cfg.Mem.PMNodes = []int{pm}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	return machine.New(cfg, mc), mc
}

func TestOpenAndReopen(t *testing.T) {
	m, _ := newMachine(256, 1024)
	c := New(m)
	f := c.Open("data.db", 100)
	if f.Pages != 100 || f.Name != "data.db" {
		t.Fatal("open")
	}
	if c.Open("data.db", 100) != f {
		t.Fatal("reopen returned a different file")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch not caught")
		}
	}()
	c.Open("data.db", 200)
}

func TestOpenValidation(t *testing.T) {
	m, _ := newMachine(64, 64)
	c := New(m)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Open("empty", 0)
}

func TestReadFillsCache(t *testing.T) {
	m, _ := newMachine(256, 1024)
	c := New(m)
	f := c.Open("f", 10)
	if f.Cached(0) {
		t.Fatal("cold file has resident pages")
	}
	before := m.Clock.Now()
	f.Read(0)
	if !f.Cached(0) || f.Resident() != 1 {
		t.Fatal("read did not populate the cache")
	}
	if f.CacheMisses != 1 {
		t.Fatal("miss not counted")
	}
	// Miss costs a disk fill.
	if sim.Duration(m.Clock.Now()-before) < c.DiskRead {
		t.Fatal("disk fill not charged")
	}
	// Second read is a hit: cheap.
	before = m.Clock.Now()
	f.Read(0)
	if sim.Duration(m.Clock.Now()-before) >= c.DiskRead {
		t.Fatal("cache hit paid disk latency")
	}
	if f.CacheMisses != 1 {
		t.Fatal("hit counted as miss")
	}
}

func TestFilePagesAreFileBacked(t *testing.T) {
	m, _ := newMachine(256, 1024)
	c := New(m)
	f := c.Open("f", 4)
	f.Read(2)
	pg := c.Space().Lookup(f.page(2))
	if pg == nil || !pg.IsFile() {
		t.Fatal("page not file-backed")
	}
	// Supervised access advanced the file LRU immediately.
	if !pg.Flags.Has(mem.FlagReferenced) {
		t.Fatal("supervised read did not mark the page")
	}
}

// TestHotFilePagesClimbToFilePromoteList: repeated syscall reads must walk
// a file page up the ladder onto the *file* promote list — the supervised
// path needs no scanner.
func TestHotFilePagesClimbToFilePromoteList(t *testing.T) {
	m, _ := newMachine(256, 1024)
	c := New(m)
	f := c.Open("hot", 1)
	for i := 0; i < 4; i++ {
		f.Read(0)
	}
	pg := c.Space().Lookup(f.page(0))
	if !pg.Flags.Has(mem.FlagPromote) {
		t.Fatalf("hot file page not on promote list (flags %b)", pg.Flags)
	}
	if m.Vecs[pg.Node].Len(lru.PromoteFile) != 1 {
		t.Fatal("file promote list empty")
	}
}

// TestHotFilePagesPromoteAcrossTiers: a file page resident in PM that gets
// hot must be migrated to DRAM like any anonymous page (§VI: "a complete
// solution").
func TestHotFilePagesPromoteAcrossTiers(t *testing.T) {
	m, _ := newMachine(128, 1024)
	c := New(m)
	// Fill DRAM with a big cold file, pushing later files to PM.
	cold := c.Open("cold", 200)
	cold.ReadRange(0, 200)
	hot := c.Open("hot", 8)
	hot.ReadRange(0, 8)
	var pmPages int
	for i := 0; i < 8; i++ {
		if pg := c.Space().Lookup(hot.page(i)); m.Mem.Tier(pg) == mem.TierPM {
			pmPages++
		}
	}
	if pmPages == 0 {
		t.Skip("hot file landed entirely in DRAM")
	}
	for round := 0; round < 8; round++ {
		hot.ReadRange(0, 8)
		m.Compute(11 * sim.Millisecond)
	}
	inDRAM := 0
	for i := 0; i < 8; i++ {
		if pg := c.Space().Lookup(hot.page(i)); pg != nil && m.Mem.Tier(pg) == mem.TierDRAM {
			inDRAM++
		}
	}
	if inDRAM != 8 {
		t.Fatalf("only %d/8 hot file pages promoted to DRAM", inDRAM)
	}
	if m.Mem.Counters.Promotions == 0 {
		t.Fatal("no promotions counted")
	}
}

func TestWriteDirtiesAndWritebackCleans(t *testing.T) {
	m, _ := newMachine(256, 1024)
	c := New(m)
	f := c.Open("f", 10)
	f.Write(3)
	f.Write(7)
	pg := c.Space().Lookup(f.page(3))
	if !pg.Flags.Has(mem.FlagDirty) {
		t.Fatal("write did not dirty")
	}
	before := m.Clock.Now()
	if n := f.Writeback(); n != 2 {
		t.Fatalf("writeback cleaned %d pages, want 2", n)
	}
	if pg.Flags.Has(mem.FlagDirty) {
		t.Fatal("page still dirty")
	}
	if m.Clock.Now() == before {
		t.Fatal("writeback cost no time")
	}
	if f.Writeback() != 0 {
		t.Fatal("second writeback found dirty pages")
	}
	if f.WritebackBytes != 2*mem.PageSize {
		t.Fatal("writeback accounting")
	}
}

func TestDropEvicts(t *testing.T) {
	m, _ := newMachine(256, 1024)
	c := New(m)
	f := c.Open("f", 10)
	f.ReadRange(0, 10)
	used := m.Mem.Nodes[0].UsedFrames()
	f.Drop()
	if f.Resident() != 0 {
		t.Fatal("pages still resident after drop")
	}
	if m.Mem.Nodes[0].UsedFrames() >= used {
		t.Fatal("frames not released")
	}
	// Re-read misses again.
	misses := f.CacheMisses
	f.Read(0)
	if f.CacheMisses != misses+1 {
		t.Fatal("re-read after drop did not miss")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m, _ := newMachine(64, 64)
	c := New(m)
	f := c.Open("f", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.Read(4)
}

func TestBackgroundFlusher(t *testing.T) {
	m, _ := newMachine(256, 1024)
	c := New(m)
	f := c.Open("log", 16)
	c.StartFlusher(5 * sim.Millisecond)
	for i := 0; i < 16; i++ {
		f.Write(i)
	}
	m.Compute(6 * sim.Millisecond)
	if c.FlushedPages != 16 {
		t.Fatalf("flusher cleaned %d pages, want 16", c.FlushedPages)
	}
	pg := c.Space().Lookup(f.page(0))
	if pg.Flags.Has(mem.FlagDirty) {
		t.Fatal("page still dirty after flush interval")
	}
	// Re-dirty and verify periodic behaviour.
	f.Write(3)
	m.Compute(6 * sim.Millisecond)
	if c.FlushedPages != 17 {
		t.Fatalf("second flush count = %d", c.FlushedPages)
	}
	c.StopFlusher()
	f.Write(5)
	m.Compute(20 * sim.Millisecond)
	if c.FlushedPages != 17 {
		t.Fatal("stopped flusher kept cleaning")
	}
	// Double start is a programming error.
	c.StartFlusher(5 * sim.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double start")
		}
	}()
	c.StartFlusher(5 * sim.Millisecond)
}
