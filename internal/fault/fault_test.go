package fault

import (
	"strings"
	"testing"

	"multiclock/internal/sim"
)

func TestZeroRateInjectsNothingAndDrawsNothing(t *testing.T) {
	clock := sim.NewClock()
	f := New(clock, Config{Seed: 7})
	// Capture the RNG sequence by building a twin injector and exhausting
	// the same calls: if disabled kinds drew randomness, the sequences
	// would diverge once one kind is enabled later.
	for i := 0; i < 1000; i++ {
		if f.MigrationPinned() || f.TargetDenied() || f.AllocDenied(true) {
			t.Fatal("zero-rate injector injected a fault")
		}
		if f.AccessDelay(true, 300) != 0 || f.Overrun(100) != 0 {
			t.Fatal("zero-rate injector charged latency")
		}
	}
	if f.Counters.Total() != 0 {
		t.Fatalf("counters nonzero: %v", f.Counters)
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var f *Injector
	if f.MigrationPinned() || f.TargetDenied() || f.AllocDenied(true) {
		t.Fatal("nil injector injected")
	}
	if f.AccessDelay(true, 300) != 0 || f.Overrun(100) != 0 {
		t.Fatal("nil injector charged latency")
	}
}

func TestDeterministicSequence(t *testing.T) {
	run := func() ([]bool, Counters) {
		clock := sim.NewClock()
		f := New(clock, UniformRate(42, 0.1))
		var seq []bool
		for i := 0; i < 2000; i++ {
			seq = append(seq, f.MigrationPinned(), f.TargetDenied())
			clock.Advance(10 * sim.Microsecond)
		}
		return seq, f.Counters
	}
	s1, c1 := run()
	s2, c2 := run()
	if c1 != c2 {
		t.Fatalf("counters diverged: %v vs %v", c1, c2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("fault sequence diverged at %d", i)
		}
	}
	if c1.Total() == 0 {
		t.Fatal("rate 0.1 over 4000 trials injected nothing")
	}
}

func TestRateOneAlwaysInjects(t *testing.T) {
	f := New(sim.NewClock(), UniformRate(1, 1.0))
	for i := 0; i < 100; i++ {
		if !f.MigrationPinned() {
			t.Fatal("rate-1 injector skipped a fault")
		}
	}
	if f.Counters.Injected[MigratePinned] != 100 {
		t.Fatalf("pinned count = %d", f.Counters.Injected[MigratePinned])
	}
}

func TestPMSlowdownWindow(t *testing.T) {
	clock := sim.NewClock()
	cfg := Config{Seed: 3}
	cfg.Rates[PMSlowdown] = 1.0
	cfg.PMSlowdownFactor = 4
	cfg.PMSlowdownWindow = 1 * sim.Millisecond
	f := New(clock, cfg)

	// First access opens the window; extra = (4-1) × base.
	if d := f.AccessDelay(true, 300); d != 900 {
		t.Fatalf("slowdown delay = %v, want 900ns", d)
	}
	opened := f.Counters.Injected[PMSlowdown]
	if opened != 1 {
		t.Fatalf("windows opened = %d", opened)
	}
	// Inside the window: same penalty, no new window counted.
	clock.Advance(100 * sim.Microsecond)
	if d := f.AccessDelay(true, 300); d != 900 {
		t.Fatalf("in-window delay = %v", d)
	}
	if f.Counters.Injected[PMSlowdown] != opened {
		t.Fatal("in-window access opened another window")
	}
	// DRAM accesses never pay.
	if f.AccessDelay(false, 80) != 0 {
		t.Fatal("DRAM access charged a PM slowdown")
	}
	// Past the window a new one opens (rate 1).
	clock.Advance(2 * sim.Millisecond)
	if d := f.AccessDelay(true, 300); d != 900 {
		t.Fatalf("post-window delay = %v", d)
	}
	if f.Counters.Injected[PMSlowdown] != opened+1 {
		t.Fatal("expired window not reopened")
	}
}

func TestAllocStormOnlyNearWatermark(t *testing.T) {
	clock := sim.NewClock()
	cfg := Config{Seed: 5}
	cfg.Rates[AllocStorm] = 1.0
	cfg.StormWindow = 1 * sim.Millisecond
	f := New(clock, cfg)

	if f.AllocDenied(false) {
		t.Fatal("storm struck a node with plenty of memory")
	}
	if !f.AllocDenied(true) {
		t.Fatal("rate-1 storm did not strike near watermark")
	}
	// The storm persists inside its window and each denial is counted.
	clock.Advance(500 * sim.Microsecond)
	if !f.AllocDenied(true) {
		t.Fatal("storm did not persist within its window")
	}
	if f.AllocDenied(false) {
		t.Fatal("storm denial away from watermarks")
	}
	if got := f.Counters.Injected[AllocStorm]; got != 2 {
		t.Fatalf("storm denials = %d, want 2", got)
	}
}

func TestOverrunScalesInterval(t *testing.T) {
	cfg := Config{Seed: 9, OverrunFactor: 2}
	cfg.Rates[DaemonOverrun] = 1.0
	f := New(sim.NewClock(), cfg)
	if d := f.Overrun(10 * sim.Millisecond); d != 20*sim.Millisecond {
		t.Fatalf("overrun = %v, want 20ms", d)
	}
}

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("42,0.01")
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 42 || c.Rates[MigratePinned] != 0.01 || !c.Enabled() {
		t.Fatalf("parsed %+v", c)
	}
	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"42", "a,0.1", "1,x", "1,1.5", "1,-0.1", "1,0.1,2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestCountersString(t *testing.T) {
	var c Counters
	c.Injected[MigratePinned] = 3
	s := c.String()
	if !strings.Contains(s, "migrate-pinned=3") || !strings.Contains(s, "daemon-overrun=0") {
		t.Fatalf("report %q", s)
	}
}

func TestWindowLogRecordsOpens(t *testing.T) {
	clock := sim.NewClock()
	cfg := Config{Seed: 11}
	cfg.Rates[PMSlowdown] = 1.0
	cfg.Rates[AllocStorm] = 1.0
	cfg.PMSlowdownWindow = 1 * sim.Millisecond
	cfg.StormWindow = 2 * sim.Millisecond
	f := New(clock, cfg)
	f.EnableWindowLog(0) // default cap

	// Logging off until enabled; nil injector is safe.
	var nilInj *Injector
	nilInj.EnableWindowLog(10)
	if nilInj.Windows() != nil || nilInj.WindowsDropped() != 0 {
		t.Fatal("nil injector logged windows")
	}

	f.AccessDelay(true, 300) // opens a PM slowdown at t=0
	clock.Advance(100 * sim.Microsecond)
	f.AccessDelay(true, 300) // inside the window: no new entry
	f.AllocDenied(true)      // opens a storm at t=100µs
	clock.Advance(5 * sim.Millisecond)
	f.AccessDelay(true, 300) // reopens at t=5.1ms

	ws := f.Windows()
	if len(ws) != 3 {
		t.Fatalf("logged %d windows, want 3: %v", len(ws), ws)
	}
	want := []Window{
		{PMSlowdown, 0, sim.Time(1 * sim.Millisecond)},
		{AllocStorm, sim.Time(100 * sim.Microsecond), sim.Time(100*sim.Microsecond) + sim.Time(2*sim.Millisecond)},
		{PMSlowdown, sim.Time(5100 * sim.Microsecond), sim.Time(5100*sim.Microsecond) + sim.Time(1*sim.Millisecond)},
	}
	for i, w := range ws {
		if w != want[i] {
			t.Fatalf("window %d = %+v, want %+v", i, w, want[i])
		}
	}
	if f.WindowsDropped() != 0 {
		t.Fatalf("dropped = %d", f.WindowsDropped())
	}
}

func TestWindowLogCapDropsAndCounts(t *testing.T) {
	clock := sim.NewClock()
	cfg := Config{Seed: 13}
	cfg.Rates[PMSlowdown] = 1.0
	cfg.PMSlowdownWindow = 1 * sim.Microsecond
	f := New(clock, cfg)
	f.EnableWindowLog(2)
	for i := 0; i < 5; i++ {
		f.AccessDelay(true, 300)
		clock.Advance(10 * sim.Microsecond)
	}
	if len(f.Windows()) != 2 || f.WindowsDropped() != 3 {
		t.Fatalf("windows=%d dropped=%d, want 2/3", len(f.Windows()), f.WindowsDropped())
	}
}

func TestWindowLogOffIsFree(t *testing.T) {
	clock := sim.NewClock()
	cfg := Config{Seed: 17}
	cfg.Rates[PMSlowdown] = 1.0
	f := New(clock, cfg)
	f.AccessDelay(true, 300)
	if f.Windows() != nil || f.WindowsDropped() != 0 {
		t.Fatal("disabled window log recorded state")
	}
}
