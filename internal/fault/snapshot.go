package fault

import (
	"multiclock/internal/sim"
	"multiclock/internal/snapcodec"
)

// Checkpoint serialization. The injector's configuration is resolved
// deterministically at construction (New applies the same defaults for equal
// Configs), so only the mutable state travels: the private RNG stream, the
// open fault windows and the tallies.

// SnapshotState encodes the injector's mutable state.
func (f *Injector) SnapshotState(enc *snapcodec.Encoder) {
	st := f.rng.State()
	for _, w := range st {
		enc.U64(w)
	}
	enc.I64(int64(f.slowUntil))
	enc.I64(int64(f.stormUntil))
	for k := Kind(0); k < NumKinds; k++ {
		enc.I64(f.Counters.Injected[k])
	}
}

// RestoreState decodes into a freshly constructed injector of identical
// configuration.
func (f *Injector) RestoreState(dec *snapcodec.Decoder) error {
	var st [4]uint64
	for i := range st {
		st[i] = dec.U64()
	}
	if dec.Err() != nil {
		return dec.Err()
	}
	f.rng.SetState(st)
	f.slowUntil = sim.Time(dec.I64())
	f.stormUntil = sim.Time(dec.I64())
	for k := Kind(0); k < NumKinds; k++ {
		f.Counters.Injected[k] = dec.I64()
	}
	return dec.Err()
}
