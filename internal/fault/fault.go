// Package fault is a seeded, deterministic fault-injection layer for the
// simulated hybrid-memory machine. It models what real tiering kernels
// survive in production and a clean simulation never exercises: transient
// migrate_pages() failures (pinned pages, allocation denial on the target
// node), Optane media-slowdown windows that multiply PM access latency,
// daemon passes that overrun their scheduling interval, and allocation
// failure storms when a node is already near its watermarks.
//
// Every fault decision is a Bernoulli draw from the injector's own split
// RNG stream, so a given (seed, rate) produces the same fault sequence on
// every run — chaos runs are as reproducible as clean ones. A nil *Injector
// is valid everywhere and injects nothing, and a Config with all rates zero
// builds no injector at all, so the fault-free path is byte-for-byte the
// pre-injection simulator.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"multiclock/internal/sim"
)

// Kind names one injectable fault class.
type Kind uint8

const (
	// MigratePinned fails a migration as if the page were transiently
	// pinned (get_user_pages, DMA): the page cannot move this attempt but
	// remains usable in place.
	MigratePinned Kind = iota
	// MigrateTargetDenied fails the destination-node frame allocation of a
	// migration even though free frames exist (kernel: __alloc_pages
	// failure on the target node under concurrent pressure).
	MigrateTargetDenied
	// AllocStorm opens a window during which ordinary (non-emergency)
	// allocations fail on nodes already near their watermarks, forcing the
	// tier-fallback and emergency-reserve paths.
	AllocStorm
	// PMSlowdown opens a media-slowdown window during which PM accesses
	// cost a multiple of their normal latency (Optane's tail-latency
	// spikes under write-pending-queue pressure).
	PMSlowdown
	// DaemonOverrun makes one daemon pass exceed its wakeup interval: the
	// next wakeup is postponed by the overrun and the time is charged as
	// daemon interference.
	DaemonOverrun
	// NumKinds is the number of fault classes.
	NumKinds
)

var kindNames = [NumKinds]string{
	"migrate-pinned", "migrate-target-denied", "alloc-storm", "pm-slowdown", "daemon-overrun",
}

// String returns the fault class name used in reports.
func (k Kind) String() string {
	if k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Config describes an injection campaign. The zero value injects nothing.
type Config struct {
	// Seed drives the injector's private RNG stream; equal seeds give
	// identical fault sequences for identical workloads.
	Seed uint64

	// Rates is the per-opportunity injection probability of each kind in
	// [0,1]. An opportunity is one migration attempt, one near-watermark
	// allocation, one PM access outside a slowdown window, or one daemon
	// pass respectively.
	Rates [NumKinds]float64

	// PMSlowdownFactor multiplies PM access latency inside a slowdown
	// window (≥ 1). Zero defaults to 4, the order of Optane's observed
	// tail spikes.
	PMSlowdownFactor float64
	// PMSlowdownWindow is the virtual duration of one media-slowdown
	// window. Zero defaults to 5 ms.
	PMSlowdownWindow sim.Duration
	// StormWindow is the virtual duration of one allocation-failure storm.
	// Zero defaults to 2 ms.
	StormWindow sim.Duration
	// OverrunFactor sizes a daemon overrun as a multiple of the daemon's
	// interval. Zero defaults to 1.5.
	OverrunFactor float64
}

// Enabled reports whether any fault kind has a positive rate.
func (c Config) Enabled() bool {
	for _, r := range c.Rates {
		if r > 0 {
			return true
		}
	}
	return false
}

// UniformRate returns a Config injecting every fault kind at the same rate
// with default window and factor knobs — the shape behind the CLIs'
// "-chaos seed,rate" flag.
func UniformRate(seed uint64, rate float64) Config {
	c := Config{Seed: seed}
	for k := range c.Rates {
		c.Rates[k] = rate
	}
	return c
}

// ParseSpec parses the CLI fault specification "seed,rate" (e.g. "42,0.01")
// into a uniform-rate Config. The empty string parses to a disabled Config.
func ParseSpec(s string) (Config, error) {
	if s == "" {
		return Config{}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return Config{}, fmt.Errorf("fault: spec %q is not seed,rate", s)
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return Config{}, fmt.Errorf("fault: bad seed in %q: %v", s, err)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return Config{}, fmt.Errorf("fault: bad rate in %q: %v", s, err)
	}
	if rate < 0 || rate > 1 {
		return Config{}, fmt.Errorf("fault: rate %v outside [0,1]", rate)
	}
	return UniformRate(seed, rate), nil
}

// Counters tallies injected faults per kind.
type Counters struct {
	Injected [NumKinds]int64
}

// Total returns the number of injected faults across all kinds.
func (c *Counters) Total() int64 {
	var t int64
	for _, n := range c.Injected {
		t += n
	}
	return t
}

// String renders the tallies as one report line.
func (c *Counters) String() string {
	var b strings.Builder
	b.WriteString("faults injected:")
	for k := Kind(0); k < NumKinds; k++ {
		fmt.Fprintf(&b, " %s=%d", k, c.Injected[k])
	}
	return b.String()
}

// Injector draws fault decisions on behalf of the memory system, the
// machine and the tiering daemons. All methods are nil-safe: a nil receiver
// injects nothing, so consumers thread the pointer through unconditionally.
type Injector struct {
	cfg   Config
	rng   *sim.RNG
	clock *sim.Clock

	// Counters reports what was injected (read by tests and CLIs).
	Counters Counters

	slowUntil  sim.Time // end of the active PM slowdown window, if any
	stormUntil sim.Time // end of the active allocation storm, if any

	// Opt-in window log (EnableWindowLog): every opened degradation window,
	// for trace export. Off by default so metrics-only runs carry no extra
	// state; recording is passive either way (never advances the clock or
	// perturbs the RNG stream).
	logMax         int
	windows        []Window
	windowsDropped int64
}

// Window is one logged degradation interval: between Start and End (virtual
// time, end exclusive) the injector applied Kind to every opportunity.
type Window struct {
	Kind  Kind
	Start sim.Time
	End   sim.Time
}

// DefaultWindowLogCap bounds the window log when EnableWindowLog is given a
// non-positive cap.
const DefaultWindowLogCap = 4096

// EnableWindowLog turns on degradation-window recording, keeping at most max
// windows (DefaultWindowLogCap when max <= 0); later windows are dropped and
// counted. Nil-safe no-op.
func (f *Injector) EnableWindowLog(max int) {
	if f == nil {
		return
	}
	if max <= 0 {
		max = DefaultWindowLogCap
	}
	f.logMax = max
}

// Windows returns the logged degradation windows in open order (nil when
// logging is off or nothing opened).
func (f *Injector) Windows() []Window {
	if f == nil {
		return nil
	}
	return f.windows
}

// WindowsDropped reports how many windows the log's cap discarded.
func (f *Injector) WindowsDropped() int64 {
	if f == nil {
		return 0
	}
	return f.windowsDropped
}

// logWindow appends one opened window when logging is enabled.
func (f *Injector) logWindow(k Kind, start, end sim.Time) {
	if f.logMax == 0 {
		return
	}
	if len(f.windows) >= f.logMax {
		f.windowsDropped++
		return
	}
	f.windows = append(f.windows, Window{Kind: k, Start: start, End: end})
}

// New builds an injector on the given virtual clock. The RNG stream is
// split from the seed so it never correlates with workload randomness.
func New(clock *sim.Clock, cfg Config) *Injector {
	if cfg.PMSlowdownFactor < 1 {
		cfg.PMSlowdownFactor = 4
	}
	if cfg.PMSlowdownWindow <= 0 {
		cfg.PMSlowdownWindow = 5 * sim.Millisecond
	}
	if cfg.StormWindow <= 0 {
		cfg.StormWindow = 2 * sim.Millisecond
	}
	if cfg.OverrunFactor <= 0 {
		cfg.OverrunFactor = 1.5
	}
	return &Injector{cfg: cfg, rng: sim.NewRNG(cfg.Seed).Split(0xfa07), clock: clock}
}

// Config returns the injector's resolved configuration.
func (f *Injector) Config() Config { return f.cfg }

// roll draws one Bernoulli trial for kind k, counting a hit. Disabled kinds
// consume no randomness, so enabling one kind does not shift another's
// sequence.
func (f *Injector) roll(k Kind) bool {
	if f == nil {
		return false
	}
	r := f.cfg.Rates[k]
	if r <= 0 || f.rng.Float64() >= r {
		return false
	}
	f.Counters.Injected[k]++
	return true
}

// MigrationPinned reports whether this migration attempt should fail as a
// transiently pinned page.
func (f *Injector) MigrationPinned() bool { return f.roll(MigratePinned) }

// TargetDenied reports whether this migration's destination-frame
// allocation should be denied despite available frames.
func (f *Injector) TargetDenied() bool { return f.roll(MigrateTargetDenied) }

// AllocDenied reports whether an ordinary allocation should fail.
// nearWatermark is supplied by the caller (free frames below the low
// watermark); storms only strike — and only persist — near watermarks,
// where real allocation failure lives. Each denial is counted.
func (f *Injector) AllocDenied(nearWatermark bool) bool {
	if f == nil || !nearWatermark || f.cfg.Rates[AllocStorm] <= 0 {
		return false
	}
	now := f.clock.Now()
	if now < f.stormUntil {
		f.Counters.Injected[AllocStorm]++
		return true
	}
	if f.roll(AllocStorm) {
		f.stormUntil = now + sim.Time(f.cfg.StormWindow)
		f.logWindow(AllocStorm, now, f.stormUntil)
		return true
	}
	return false
}

// AccessDelay returns the extra latency one PM access pays: each access
// outside a slowdown window may open one (counted once per window); every
// access inside the window costs (factor−1)× its base latency extra. pm
// gates the draw so DRAM accesses consume no randomness.
func (f *Injector) AccessDelay(pm bool, base sim.Duration) sim.Duration {
	if f == nil || !pm || f.cfg.Rates[PMSlowdown] <= 0 {
		return 0
	}
	if f.clock.Now() >= f.slowUntil {
		if !f.roll(PMSlowdown) {
			return 0
		}
		now := f.clock.Now()
		f.slowUntil = now + sim.Time(f.cfg.PMSlowdownWindow)
		f.logWindow(PMSlowdown, now, f.slowUntil)
	}
	return sim.Duration(float64(base) * (f.cfg.PMSlowdownFactor - 1))
}

// Overrun returns the extra virtual time this daemon pass took beyond its
// budget, or zero. The caller postpones the daemon's next wakeup by the
// returned overrun and charges it as interference.
func (f *Injector) Overrun(interval sim.Duration) sim.Duration {
	if !f.roll(DaemonOverrun) {
		return 0
	}
	return sim.Duration(float64(interval) * f.cfg.OverrunFactor)
}
