// Package tracereplay records application access streams from a simulated
// machine and replays them — against any tiering policy, at original or
// maximum speed. Trace-driven evaluation complements the execution-driven
// workloads: a captured production-like trace can be re-run under every
// policy with identical access sequences, removing workload nondeterminism
// from comparisons.
//
// The format is a compact binary stream (little-endian):
//
//	magic "MCTR" | version u8 | record*
//	record: spaceID varint | vpn varint | flags u8 | dtNanos varint
//
// where dtNanos is the virtual time elapsed since the previous record and
// flags bit0 is write. Records are delta-encoded so steady workloads
// compress to a few bytes per access.
package tracereplay

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

var magic = [4]byte{'M', 'C', 'T', 'R'}

const version = 1

// Record is one trace event.
type Record struct {
	Space int32
	VPN   pagetable.VPN
	Write bool
	// Gap is the virtual time since the previous event.
	Gap sim.Duration
}

// Recorder is a machine.Observer that streams every application access to
// an io.Writer.
type Recorder struct {
	w    *bufio.Writer
	last sim.Time
	n    int64
	err  error
}

// NewRecorder writes a trace header and returns the observer.
func NewRecorder(w io.Writer) (*Recorder, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	return &Recorder{w: bw}, nil
}

// OnAccess implements machine.Observer.
func (r *Recorder) OnAccess(pg *mem.Page, write bool, now sim.Time) {
	if r.err != nil {
		return
	}
	var buf [3*binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(buf[:], uint64(pg.Space))
	n += binary.PutUvarint(buf[n:], uint64(pagetable.VPNOf(pg.VA)))
	flags := byte(0)
	if write {
		flags = 1
	}
	buf[n] = flags
	n++
	n += binary.PutUvarint(buf[n:], uint64(now-r.last))
	r.last = now
	if _, err := r.w.Write(buf[:n]); err != nil {
		r.err = err
		return
	}
	r.n++
}

// OnMigrate implements machine.Observer.
func (r *Recorder) OnMigrate(pg *mem.Page, from, to mem.NodeID, now sim.Time) {}

// OnFault implements machine.Observer.
func (r *Recorder) OnFault(pg *mem.Page, hint bool, now sim.Time) {}

// Records reports how many events were captured.
func (r *Recorder) Records() int64 { return r.n }

// Close flushes the stream and reports any deferred write error.
func (r *Recorder) Close() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Reader iterates a trace stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader validates the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("tracereplay: short header: %w", err)
	}
	if [4]byte{hdr[0], hdr[1], hdr[2], hdr[3]} != magic {
		return nil, errors.New("tracereplay: bad magic")
	}
	if hdr[4] != version {
		return nil, fmt.Errorf("tracereplay: unsupported version %d", hdr[4])
	}
	return &Reader{br: br}, nil
}

// Next returns the next record, or io.EOF.
func (t *Reader) Next() (Record, error) {
	space, err := binary.ReadUvarint(t.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	vpn, err := binary.ReadUvarint(t.br)
	if err != nil {
		return Record{}, truncated(err)
	}
	flags, err := t.br.ReadByte()
	if err != nil {
		return Record{}, truncated(err)
	}
	gap, err := binary.ReadUvarint(t.br)
	if err != nil {
		return Record{}, truncated(err)
	}
	return Record{
		Space: int32(space),
		VPN:   pagetable.VPN(vpn),
		Write: flags&1 != 0,
		Gap:   sim.Duration(gap),
	}, nil
}

// truncated normalizes mid-record EOFs so callers can distinguish a clean
// end of stream from a cut-off record.
func truncated(err error) error {
	if errors.Is(err, io.EOF) {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("tracereplay: truncated record: %w", err)
}

// Mode selects replay pacing.
type Mode int

const (
	// Timed reproduces the original inter-access gaps: between accesses
	// the replayer idles the machine, letting daemons fire on the
	// original cadence.
	Timed Mode = iota
	// Fast replays back-to-back (only access latencies advance time).
	Fast
)

// Result summarizes a replay.
type Result struct {
	Records int64
	Elapsed sim.Duration
}

// Replay re-executes a trace on the machine. Address spaces are created on
// demand (trace space IDs are mapped to fresh spaces); VMAs are sized lazily
// to cover the trace's VPN range per space.
func Replay(m *machine.Machine, r io.Reader, mode Mode) (Result, error) {
	tr, err := NewReader(r)
	if err != nil {
		return Result{}, err
	}
	type spaceState struct {
		as  *pagetable.AddressSpace
		max pagetable.VPN
		// base maps trace VPNs into the replay VMA.
		base pagetable.VPN
	}
	spaces := map[int32]*spaceState{}
	start := m.Clock.Now()
	deadline := start
	var n int64
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return Result{}, err
		}
		st, ok := spaces[rec.Space]
		if !ok {
			as := m.NewSpace()
			// One generous VMA per space: trace VPNs are offsets into it.
			vma := as.Mmap(1<<22, false, fmt.Sprintf("replay-%d", rec.Space))
			st = &spaceState{as: as, base: vma.Start}
			spaces[rec.Space] = st
		}
		if mode == Timed {
			// Pace to the original arrival process: the k-th access
			// starts no earlier than its original relative time, even if
			// the replay policy serves accesses faster.
			deadline += sim.Time(rec.Gap)
			if m.Clock.Now() < deadline {
				m.Compute(sim.Duration(deadline - m.Clock.Now()))
			}
		}
		m.Access(st.as, st.base+rec.VPN, rec.Write)
		n++
	}
	return Result{Records: n, Elapsed: sim.Duration(m.Clock.Now() - start)}, nil
}
