package tracereplay

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"multiclock/internal/core"
	"multiclock/internal/machine"
	"multiclock/internal/pagetable"
	"multiclock/internal/policy"
	"multiclock/internal/sim"
)

func newM(p machine.Policy) *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{512}
	cfg.Mem.PMNodes = []int{2048}
	cfg.OpCost = 0
	return machine.New(cfg, p)
}

// capture runs a small skewed workload under static tiering with a
// recorder attached and returns the trace bytes.
func capture(t *testing.T, accesses int) []byte {
	t.Helper()
	m := newM(policy.NewStatic())
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(rec)
	as := m.NewSpace()
	v := as.Mmap(800, false, "w")
	rng := sim.NewRNG(4)
	for i := 0; i < accesses; i++ {
		var idx int
		if rng.Intn(10) < 8 {
			idx = rng.Intn(100)
		} else {
			idx = rng.Intn(800)
		}
		m.Access(as, v.Start+pagetable.VPN(idx), rng.Intn(3) == 0)
		m.Compute(500 * sim.Nanosecond)
	}
	if rec.Records() != int64(accesses) {
		t.Fatalf("recorded %d, want %d", rec.Records(), accesses)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := capture(t, 1000)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var lastGapSum sim.Duration
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.VPN == 0 {
			t.Fatal("VPN 0 is never mapped")
		}
		lastGapSum += rec.Gap
		n++
	}
	if n != 1000 {
		t.Fatalf("read %d records, want 1000", n)
	}
	if lastGapSum <= 0 {
		t.Fatal("gaps did not accumulate")
	}
}

func TestCompactEncoding(t *testing.T) {
	data := capture(t, 1000)
	perRecord := float64(len(data)-5) / 1000
	if perRecord > 8 {
		t.Fatalf("%.1f bytes/record, want compact (<8)", perRecord)
	}
}

func TestReplayFast(t *testing.T) {
	data := capture(t, 2000)
	m := newM(policy.NewStatic())
	res, err := Replay(m, bytes.NewReader(data), Fast)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2000 {
		t.Fatalf("replayed %d", res.Records)
	}
	if got := m.Mem.Counters.TotalAccesses(); got == 0 {
		t.Fatal("replay issued no accesses")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestReplayTimedPreservesPacing(t *testing.T) {
	data := capture(t, 2000)
	mFast := newM(policy.NewStatic())
	fast, _ := Replay(mFast, bytes.NewReader(data), Fast)
	mTimed := newM(policy.NewStatic())
	timed, _ := Replay(mTimed, bytes.NewReader(data), Timed)
	if timed.Elapsed <= fast.Elapsed {
		t.Fatalf("timed replay (%v) not slower than fast (%v)", timed.Elapsed, fast.Elapsed)
	}
	// Original run: 2000 × ~500ns gaps ≈ 1ms minimum.
	if timed.Elapsed < 1*sim.Millisecond {
		t.Fatalf("timed replay too fast: %v", timed.Elapsed)
	}
}

// TestReplayAcrossPolicies: the same trace can drive any policy; under
// multiclock the daemons run during Timed replay and promote the hot set.
func TestReplayAcrossPolicies(t *testing.T) {
	// Record a longer skewed run so daemons have time to act on replay.
	m0 := newM(policy.NewStatic())
	var buf bytes.Buffer
	rec, _ := NewRecorder(&buf)
	m0.Attach(rec)
	as := m0.NewSpace()
	v := as.Mmap(800, false, "w")
	// Pre-fault in reverse so the later-hot low pages land in PM.
	for i := 799; i >= 0; i-- {
		m0.Access(as, v.Start+pagetable.VPN(i), false)
	}
	// Two phases with disjoint hot sets: phase 2's hot pages go cold in
	// phase 1 (demoted to PM) and must be promoted back — tier-friendly
	// bimodal pages.
	rng := sim.NewRNG(4)
	for i := 0; i < 30000; i++ {
		hotBase := 0
		if i >= 15000 {
			hotBase = 700
		}
		var idx int
		if rng.Intn(10) < 8 {
			idx = hotBase + rng.Intn(100)
		} else {
			idx = rng.Intn(800)
		}
		m0.Access(as, v.Start+pagetable.VPN(idx), false)
		m0.Compute(2 * sim.Microsecond)
	}
	rec.Close()

	mc := core.New(core.Config{ScanInterval: 5 * sim.Millisecond})
	m := newM(mc)
	res, err := Replay(m, bytes.NewReader(buf.Bytes()), Timed)
	if err != nil {
		t.Fatal(err)
	}
	mc.Stop()
	if res.Records != 30800 {
		t.Fatal("record count")
	}
	if m.Mem.Counters.Promotions == 0 {
		t.Fatal("multiclock replay promoted nothing on a skewed trace")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope!"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{'M', 'C', 'T', 'R', 99})); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	data := capture(t, 10)
	r, err := NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := r.Next()
		if errors.Is(err, io.EOF) {
			t.Fatal("truncation not detected")
		}
		if err != nil {
			return // got the truncation error
		}
	}
}

func TestReplayDeterminism(t *testing.T) {
	data := capture(t, 5000)
	run := func() sim.Duration {
		m := newM(policy.NewStatic())
		res, err := Replay(m, bytes.NewReader(data), Timed)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if run() != run() {
		t.Fatal("replay not deterministic")
	}
}
