// Package runner schedules independent simulation runs across a bounded
// worker pool. Each simulated machine is a self-contained, single-threaded
// discrete-event system — virtual time advances only through its own
// clock — so whole runs fan out across OS threads freely while every
// individual run stays serial and deterministic. Results are reassembled
// in submission order, which is what makes parallel experiment output
// byte-identical to sequential output for the same seed.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Workers resolves a requested parallelism degree against a task count:
// 0 or negative means GOMAXPROCS, and the result never exceeds n (extra
// workers would only idle).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// panicError wraps a worker panic so every runner entry point surfaces the
// same shape: which task blew up (index, and name when there is one) plus
// the original panic value.
func panicError(i int, name string, r any) error {
	if name != "" {
		return fmt.Errorf("runner: task %d (%s) panicked: %v", i, name, r)
	}
	return fmt.Errorf("runner: task %d panicked: %v", i, r)
}

// Map runs fn over every item on up to workers goroutines and returns the
// results in input order. fn must be self-contained: each call builds and
// drives its own simulated machine (or otherwise touches no shared state).
// With workers ≤ 1 the calls happen inline on the caller's goroutine, in
// order, so sequential behavior is exactly the pre-pool code path. A panic
// in any call is re-raised on the caller's goroutine — sequential or not,
// after the pool drains — wrapped as an error naming the task index.
func Map[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	n := len(items)
	if n == 0 {
		return nil
	}
	out := make([]R, n)
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panic(panicError(i, "", r))
			}
		}()
		out[i] = fn(i, items[i])
	}
	w := Workers(workers, n)
	if workers > 0 && workers <= 1 {
		w = 1
	}
	if w == 1 {
		for i := range items {
			call(i)
		}
		return out
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked error
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							err, ok := r.(error)
							if !ok {
								err = panicError(i, "", r)
							}
							panicOnce.Do(func() { panicked = err })
						}
					}()
					call(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// Task is one named unit of schedulable work with a typed result.
type Task[R any] struct {
	Name string
	Fn   func() (R, error)
}

// TaskResult pairs one task's output with its error and wall-clock time.
type TaskResult[R any] struct {
	Name  string
	Value R
	Err   error
	Wall  time.Duration
}

// Run executes tasks on up to workers goroutines and returns their results
// in submission order. One progress line per completed task — name, wall
// time, ok/error — is written to progress as tasks finish (nil silences
// it); completion order on the progress stream is nondeterministic, the
// returned slice is not. A panicking task is captured as an error so the
// remaining tasks still run.
func Run[R any](workers int, progress io.Writer, tasks []Task[R]) []TaskResult[R] {
	out := make([]TaskResult[R], len(tasks))
	Stream(workers, progress, tasks, func(i int, r TaskResult[R]) { out[i] = r })
	return out
}

// Stream is Run with ordered delivery: emit is called on the caller's
// goroutine once per task, in submission order, as soon as the task (and
// every task before it) has finished. This lets a CLI print experiment
// output incrementally while keeping stdout byte-identical to a
// sequential run.
func Stream[R any](workers int, progress io.Writer, tasks []Task[R], emit func(i int, r TaskResult[R])) {
	n := len(tasks)
	if n == 0 {
		return
	}
	w := Workers(workers, n)

	var mu sync.Mutex // serializes progress lines
	note := func(format string, args ...any) {
		if progress == nil {
			return
		}
		mu.Lock()
		fmt.Fprintf(progress, format, args...)
		mu.Unlock()
	}

	runOne := func(i int) TaskResult[R] {
		t := tasks[i]
		res := TaskResult[R]{Name: t.Name}
		start := time.Now()
		func() {
			defer func() {
				if r := recover(); r != nil {
					res.Err = panicError(i, t.Name, r)
				}
			}()
			res.Value, res.Err = t.Fn()
		}()
		res.Wall = time.Since(start)
		if res.Err != nil {
			note("[%d/%d] %s: %v (%.1fs)\n", i+1, n, t.Name, res.Err, res.Wall.Seconds())
		} else {
			note("[%d/%d] %s ok (%.1fs)\n", i+1, n, t.Name, res.Wall.Seconds())
		}
		return res
	}

	if w == 1 {
		for i := 0; i < n; i++ {
			emit(i, runOne(i))
		}
		return
	}

	// One buffered slot per task: workers post results as they finish,
	// the caller drains slots in submission order.
	slots := make([]chan TaskResult[R], n)
	for i := range slots {
		slots[i] = make(chan TaskResult[R], 1)
	}
	idx := make(chan int)
	for g := 0; g < w; g++ {
		go func() {
			for i := range idx {
				slots[i] <- runOne(i)
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
	}()
	for i := 0; i < n; i++ {
		emit(i, <-slots[i])
	}
}
