package runner

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4, 100); got != 4 {
		t.Fatalf("Workers(4,100) = %d", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8,3) = %d, want clamp to task count", got)
	}
	if got := Workers(0, 100); got < 1 {
		t.Fatalf("Workers(0,100) = %d, want ≥ 1 (GOMAXPROCS)", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Fatalf("Workers(-1,0) = %d, want floor 1", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 200)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 64} {
		got := Map(workers, items, func(i, v int) int {
			if i != v {
				t.Errorf("index %d got item %d", i, v)
			}
			return v * v
		})
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, nil, func(i, v int) int { return v }); got != nil {
		t.Fatalf("Map over nil = %v", got)
	}
}

func TestMapActuallyRunsConcurrently(t *testing.T) {
	// With 4 workers and 4 mutually-waiting tasks, all must be in flight
	// at once or the barrier below deadlocks (guarded by a timeout).
	const n = 4
	var entered atomic.Int32
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		Map(n, make([]struct{}, n), func(i int, _ struct{}) struct{} {
			if entered.Add(1) == n {
				close(release)
			}
			<-release
			return struct{}{}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("workers did not run concurrently")
	}
}

func TestMapPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic not propagated")
		}
	}()
	Map(4, []int{0, 1, 2, 3}, func(i, v int) int {
		if v == 2 {
			panic("boom")
		}
		return v
	})
}

func TestRunOrderTimingAndErrors(t *testing.T) {
	var buf bytes.Buffer
	tasks := []Task[string]{
		{Name: "a", Fn: func() (string, error) { return "ra", nil }},
		{Name: "b", Fn: func() (string, error) { return "", errors.New("nope") }},
		{Name: "c", Fn: func() (string, error) { panic("kaboom") }},
		{Name: "d", Fn: func() (string, error) { return "rd", nil }},
	}
	res := Run(3, &buf, tasks)
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Name != "a" || res[0].Value != "ra" || res[0].Err != nil {
		t.Fatalf("res[0] = %+v", res[0])
	}
	if res[1].Err == nil || res[1].Err.Error() != "nope" {
		t.Fatalf("res[1].Err = %v", res[1].Err)
	}
	if res[2].Err == nil || !strings.Contains(res[2].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured as error: %v", res[2].Err)
	}
	if res[3].Value != "rd" {
		t.Fatalf("task after panic did not run: %+v", res[3])
	}
	out := buf.String()
	for _, want := range []string{"a ok", "nope", "kaboom", "d ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress missing %q:\n%s", want, out)
		}
	}
}

func TestStreamEmitsInSubmissionOrder(t *testing.T) {
	const n = 50
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Name: fmt.Sprint(i), Fn: func() (int, error) { return i, nil }}
	}
	for _, workers := range []int{1, 4, 16} {
		next := 0
		Stream(workers, nil, tasks, func(i int, r TaskResult[int]) {
			if i != next {
				t.Fatalf("workers=%d: emitted %d, want %d", workers, i, next)
			}
			if r.Value != i {
				t.Fatalf("workers=%d: value %d at index %d", workers, r.Value, i)
			}
			next++
		})
		if next != n {
			t.Fatalf("workers=%d: emitted %d of %d", workers, next, n)
		}
	}
}

func TestMapPanicNamesTaskIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
				err, ok := r.(error)
				if !ok {
					t.Fatalf("workers=%d: panic value %T is not a wrapped error: %v", workers, r, r)
				}
				if !strings.Contains(err.Error(), "task 2") || !strings.Contains(err.Error(), "boom") {
					t.Fatalf("workers=%d: error %q does not name task 2", workers, err)
				}
			}()
			Map(workers, []int{0, 1, 2, 3}, func(i, v int) int {
				if v == 2 {
					panic("boom")
				}
				return v
			})
		}()
	}
}

func TestStreamPanicErrorNamesTask(t *testing.T) {
	tasks := []Task[int]{
		{Name: "fine", Fn: func() (int, error) { return 1, nil }},
		{Name: "bad", Fn: func() (int, error) { panic("kaboom") }},
	}
	for _, workers := range []int{1, 2} {
		res := Run(workers, nil, tasks)
		if res[1].Err == nil {
			t.Fatalf("workers=%d: panic not captured", workers)
		}
		msg := res[1].Err.Error()
		if !strings.Contains(msg, "task 1") || !strings.Contains(msg, "bad") || !strings.Contains(msg, "kaboom") {
			t.Fatalf("workers=%d: error %q does not identify the panicking task", workers, msg)
		}
		if res[0].Err != nil || res[0].Value != 1 {
			t.Fatalf("workers=%d: sibling task disturbed: %+v", workers, res[0])
		}
	}
}
