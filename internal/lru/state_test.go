package lru

import (
	"testing"

	"multiclock/internal/mem"
)

// recordingHook appends one tagged entry per observed transition.
type recordingHook struct {
	tag string
	log *[]string
}

func (r *recordingHook) PageTransition(pg *mem.Page, node mem.NodeID, from, to State, cause Cause) {
	*r.log = append(*r.log, r.tag+":"+cause.String())
}

func TestAddHookFanOut(t *testing.T) {
	v := NewVec(0)
	var log []string
	detachA := v.AddHook(&recordingHook{tag: "a", log: &log})
	detachB := v.AddHook(&recordingHook{tag: "b", log: &log})

	pg := anonPage()
	v.Add(pg)
	// Both observers see the add, in registration order.
	if len(log) != 2 || log[0] != "a:add" || log[1] != "b:add" {
		t.Fatalf("fan-out log = %v, want [a:add b:add]", log)
	}

	// Detaching one leaves the other observing.
	detachA()
	log = log[:0]
	v.Isolate(pg)
	if len(log) != 1 || log[0] != "b:isolate" {
		t.Fatalf("post-detach log = %v, want [b:isolate]", log)
	}

	// Detach is idempotent and independent per registration.
	detachA()
	detachB()
	log = log[:0]
	v.Putback(pg)
	if len(log) != 0 {
		t.Fatalf("all hooks detached but log = %v", log)
	}
}

func TestAddHookSameHookTwice(t *testing.T) {
	v := NewVec(0)
	var log []string
	h := &recordingHook{tag: "h", log: &log}
	detach1 := v.AddHook(h)
	v.AddHook(h)

	v.Add(anonPage())
	if len(log) != 2 {
		t.Fatalf("double-registered hook fired %d times, want 2", len(log))
	}

	// Detaching one registration leaves the other.
	detach1()
	log = log[:0]
	v.Add(anonPage())
	if len(log) != 1 {
		t.Fatalf("hook fired %d times after detaching one of two registrations, want 1", len(log))
	}
}

// With no hooks registered the emit path must stay on its nil fast path:
// preState returns the sentinel without decoding page flags.
func TestPreStateHooklessSentinel(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	if got := v.preState(pg); got != StateGone {
		t.Fatalf("hookless preState = %v, want StateGone sentinel", got)
	}
	detach := v.AddHook(&recordingHook{tag: "x", log: new([]string)})
	if got := v.preState(pg); got == StateGone {
		t.Fatal("preState still sentinel with a hook attached")
	}
	detach()
	if got := v.preState(pg); got != StateGone {
		t.Fatal("preState not back on the nil fast path after detach")
	}
}
