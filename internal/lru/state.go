package lru

import (
	"fmt"

	"multiclock/internal/mem"
)

// State is the observable position of a page in the Fig. 4 state machine:
// the list it sits on refined by its referenced bit. Unlike Kind, State
// also covers pages that are off the lists entirely (isolated for
// migration, or gone from LRU bookkeeping).
type State uint8

const (
	// StateGone: not on any list and not isolated — freshly allocated,
	// unmapped, or swapped out.
	StateGone State = iota
	StateInactiveUnref
	StateInactiveRef
	StateActiveUnref
	StateActiveRef
	StatePromoteUnref
	StatePromoteRef
	StateUnevictable
	// StateIsolated: detached for migration (FlagIsolated set).
	StateIsolated
	NumStates
)

var stateNames = [NumStates]string{
	"gone",
	"inactive-unref", "inactive-ref",
	"active-unref", "active-ref",
	"promote-unref", "promote-ref",
	"unevictable", "isolated",
}

// String returns the stable wire name used in lifecycle exports.
func (s State) String() string {
	if s >= NumStates {
		return fmt.Sprintf("State(%d)", uint8(s))
	}
	return stateNames[s]
}

// StateOf derives a page's Fig. 4 state from its flags alone.
func StateOf(pg *mem.Page) State {
	switch {
	case pg.Flags.Has(mem.FlagIsolated):
		return StateIsolated
	case !pg.Flags.Has(mem.FlagLRU):
		return StateGone
	case pg.Flags.Has(mem.FlagUnevictable):
		return StateUnevictable
	}
	ref := pg.Flags.Has(mem.FlagReferenced)
	switch {
	case pg.Flags.Has(mem.FlagPromote):
		if ref {
			return StatePromoteRef
		}
		return StatePromoteUnref
	case pg.Flags.Has(mem.FlagActive):
		if ref {
			return StateActiveRef
		}
		return StateActiveUnref
	default:
		if ref {
			return StateInactiveRef
		}
		return StateInactiveUnref
	}
}

// Cause names the LRU operation that produced a state transition.
type Cause uint8

const (
	// CauseAdd: the page entered this vec's lists (birth fault, huge-page
	// split, or arrival after migration via Add).
	CauseAdd Cause = iota
	// CauseAccess: MarkAccessed applied an observed access (Fig. 4
	// transitions 1, 6, 7, 10, 12).
	CauseAccess
	// CauseDecay: a scan window passed without access — referenced state
	// spent (2 and twins) or promote decay (11).
	CauseDecay
	// CauseDeactivate: active→inactive under the active:inactive ratio
	// limit (9).
	CauseDeactivate
	// CauseIsolate: detached from the lists for migration.
	CauseIsolate
	// CausePutback: an isolated page returned to the lists (migration
	// finished, failed, or was parked).
	CausePutback
	// CauseDelete: removed from the lists for unmap/free/swap-out.
	CauseDelete
	NumCauses
)

var causeNames = [NumCauses]string{
	"add", "access", "decay", "deactivate", "isolate", "putback", "delete",
}

// String returns the stable wire name used in lifecycle exports.
func (c Cause) String() string {
	if c >= NumCauses {
		return fmt.Sprintf("Cause(%d)", uint8(c))
	}
	return causeNames[c]
}

// Hook observes page state transitions on a vec. Implementations must be
// purely observational: they may not touch pages, lists, or virtual time.
// Self-transitions (from == to) are filtered out before the hook is called.
type Hook interface {
	PageTransition(pg *mem.Page, node mem.NodeID, from, to State, cause Cause)
}

// hookEntry is one registered observer; detach closures remove by entry
// pointer so the same Hook value can be registered twice and detached
// independently (and non-comparable Hook implementations stay legal).
type hookEntry struct{ h Hook }

// multiHook fans a transition out to several observers in registration
// order.
type multiHook []Hook

func (m multiHook) PageTransition(pg *mem.Page, node mem.NodeID, from, to State, cause Cause) {
	for _, h := range m {
		h.PageTransition(pg, node, from, to, cause)
	}
}

// AddHook registers a transition observer alongside any already attached and
// returns a function that detaches it again. Observers fire in registration
// order; with none registered the hot path pays only a nil check.
func (v *Vec) AddHook(h Hook) (detach func()) {
	e := &hookEntry{h: h}
	v.hooks = append(v.hooks, e)
	v.rebuildHook()
	return func() {
		for i, cur := range v.hooks {
			if cur == e {
				v.hooks = append(v.hooks[:i], v.hooks[i+1:]...)
				v.rebuildHook()
				return
			}
		}
	}
}

// rebuildHook recompiles the observer chain into the single hook slot the
// emit paths check.
func (v *Vec) rebuildHook() {
	switch len(v.hooks) {
	case 0:
		v.hook = nil
	case 1:
		v.hook = v.hooks[0].h
	default:
		m := make(multiHook, len(v.hooks))
		for i, e := range v.hooks {
			m[i] = e.h
		}
		v.hook = m
	}
}

// preState snapshots the page's state for a later emit. With no hook
// attached it skips the flag decode entirely — state bracketing is pure
// observability, and the access fast path must not pay for an observer
// that is not there.
func (v *Vec) preState(pg *mem.Page) State {
	if v.hook == nil {
		return StateGone
	}
	return StateOf(pg)
}

// emit reports a state change to the hook, suppressing self-transitions.
// from must come from preState on the same vec; the post-state is derived
// here so hookless vecs never compute it.
func (v *Vec) emit(pg *mem.Page, from State, cause Cause) {
	if v.hook == nil {
		return
	}
	if to := StateOf(pg); from != to {
		v.hook.PageTransition(pg, v.Node, from, to, cause)
	}
}

// spendReferenced clears the software referenced flag as a decay step,
// reporting the transition. The three scanner second-chance sites share it
// so referenced decay is observable everywhere it happens.
func (v *Vec) spendReferenced(pg *mem.Page) {
	if !pg.Flags.Has(mem.FlagReferenced) {
		return
	}
	from := v.preState(pg)
	pg.ClearFlags(mem.FlagReferenced)
	v.emit(pg, from, CauseDecay)
}
