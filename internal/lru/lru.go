// Package lru implements the per-node page lists and page-aging state
// machine of MULTI-CLOCK (paper §III and Fig. 4).
//
// Each memory node keeps the kernel's five LRU lists — anonymous
// inactive/active, file inactive/active, unevictable — plus the two lists
// MULTI-CLOCK introduces: anonymous promote and file promote. Pages move
// between the lists according to the Fig. 4 transitions:
//
//	inactive unreferenced ⇄ inactive referenced   (1,2)  access / aging
//	inactive referenced   → active unreferenced   (6)    activation
//	active unreferenced   ⇄ active referenced     (7,9')
//	active referenced     → promote               (10)   referenced again
//	promote (unaccessed)  → active unreferenced   (11)
//	promote (accessed)    → promote               (12)
//	active (cold, pressure) → inactive            (9)
//	inactive (cold, pressure) → demote/evict      (3,4)
//
// The lists are CLOCK-style: new and rotated pages enter at the head, the
// hand scans from the tail, and the hardware PTE accessed bit provides the
// reference information for unsupervised (mmap) accesses.
package lru

import (
	"fmt"
	"math"

	"multiclock/internal/mem"
)

// Kind names one of the per-node page lists.
type Kind int8

const (
	InactiveAnon Kind = iota
	ActiveAnon
	PromoteAnon
	InactiveFile
	ActiveFile
	PromoteFile
	Unevictable
	// NumKinds is the number of lists per node.
	NumKinds
)

var kindNames = [NumKinds]string{
	"anon_inactive", "anon_active", "anon_promote",
	"file_inactive", "file_active", "file_promote",
	"unevictable",
}

// String returns the kernel-style list name.
func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// IsPromote reports whether the kind is one of MULTI-CLOCK's promote lists.
func (k Kind) IsPromote() bool { return k == PromoteAnon || k == PromoteFile }

// IsActive reports whether the kind is an active list.
func (k Kind) IsActive() bool { return k == ActiveAnon || k == ActiveFile }

// IsInactive reports whether the kind is an inactive list.
func (k Kind) IsInactive() bool { return k == InactiveAnon || k == InactiveFile }

// Vec is the set of LRU lists for one node (the kernel's lruvec, extended
// with promote lists).
type Vec struct {
	Node  mem.NodeID
	lists [NumKinds]mem.PageList

	// Scanned counts pages examined by scanners on this vec.
	Scanned int64

	// hook is the compiled observer chain — nil, a single Hook, or a
	// multiHook fan-out — rebuilt by AddHook/detach so the hot-path nil
	// check in preState/emit stays a single comparison (see state.go).
	hook  Hook
	hooks []*hookEntry
}

// NewVec creates the list set for a node.
func NewVec(node mem.NodeID) *Vec {
	v := &Vec{Node: node}
	for k := Kind(0); k < NumKinds; k++ {
		v.lists[k].Name = fmt.Sprintf("node%d/%s", node, k)
	}
	return v
}

// List exposes one list (read-mostly; mutation should go through Vec
// methods so flags stay consistent).
func (v *Vec) List(k Kind) *mem.PageList { return &v.lists[k] }

// Len returns the population of one list.
func (v *Vec) Len(k Kind) int { return v.lists[k].Len() }

// TotalEvictable returns the number of pages on evictable lists.
func (v *Vec) TotalEvictable() int {
	n := 0
	for k := Kind(0); k < Unevictable; k++ {
		n += v.lists[k].Len()
	}
	return n
}

// kindFor derives the list a page belongs on from its flags.
func kindFor(pg *mem.Page) Kind {
	if pg.Flags.Has(mem.FlagUnevictable) {
		return Unevictable
	}
	file := pg.IsFile()
	switch {
	case pg.Flags.Has(mem.FlagPromote):
		if file {
			return PromoteFile
		}
		return PromoteAnon
	case pg.Flags.Has(mem.FlagActive):
		if file {
			return ActiveFile
		}
		return ActiveAnon
	default:
		if file {
			return InactiveFile
		}
		return InactiveAnon
	}
}

// KindOf reports which list the page currently sits on. The page must be on
// one of this vec's lists.
func (v *Vec) KindOf(pg *mem.Page) Kind {
	k := kindFor(pg)
	if pg.List() != &v.lists[k] {
		panic(fmt.Sprintf("lru: page flags say %v but page is on %q", k, pg.List().Name))
	}
	return k
}

// Add inserts a newly allocated (or newly putback after arrival from
// another node) page at the head of the list its flags select. New pages
// with clear flags land on the inactive list in the
// inactive-unreferenced state — Fig. 4 transition (5).
func (v *Vec) Add(pg *mem.Page) {
	if pg.OnList() {
		panic("lru: Add of page already on a list")
	}
	from := v.preState(pg)
	pg.SetFlags(mem.FlagLRU)
	pg.ClearFlags(mem.FlagIsolated)
	v.lists[kindFor(pg)].PushFront(pg)
	v.emit(pg, from, CauseAdd)
}

// Delete removes the page from its list for unmapping/freeing. Flags other
// than list-membership bookkeeping are left for the caller.
func (v *Vec) Delete(pg *mem.Page) {
	from := v.preState(pg)
	v.lists[v.KindOf(pg)].Remove(pg)
	pg.ClearFlags(mem.FlagLRU)
	v.emit(pg, from, CauseDelete)
}

// Isolate detaches the page for migration, setting FlagIsolated, mirroring
// isolate_lru_page. The page keeps its state flags so Putback can restore
// it to the right list (possibly on a different node's vec).
func (v *Vec) Isolate(pg *mem.Page) {
	from := v.preState(pg)
	v.lists[v.KindOf(pg)].Remove(pg)
	pg.ClearFlags(mem.FlagLRU)
	pg.SetFlags(mem.FlagIsolated)
	v.emit(pg, from, CauseIsolate)
}

// Putback returns an isolated page to the list its flags select on this
// vec (putback_lru_page). Used both when migration fails and to insert a
// migrated page on its destination node.
func (v *Vec) Putback(pg *mem.Page) {
	if !pg.Flags.Has(mem.FlagIsolated) {
		panic("lru: Putback of non-isolated page")
	}
	pg.ClearFlags(mem.FlagIsolated)
	pg.SetFlags(mem.FlagLRU)
	v.lists[kindFor(pg)].PushFront(pg)
	v.emit(pg, StateIsolated, CausePutback)
}

// MarkAccessed applies one observed access to the page's LRU state — the
// paper's extended mark_page_accessed (§IV), covering Fig. 4 transitions
// (1), (6), (7), (10) and (12). Supervised accesses call it directly;
// unsupervised accesses reach it through Age when a scanner finds the
// hardware accessed bit set.
func (v *Vec) MarkAccessed(pg *mem.Page) {
	if pg.Flags.Has(mem.FlagIsolated) || !pg.Flags.Has(mem.FlagLRU) {
		return // in-flight for migration; the access is simply missed
	}
	from := v.preState(pg)
	v.markAccessed(pg)
	v.emit(pg, from, CauseAccess)
}

// markAccessed is MarkAccessed without the transition hook bracketing.
func (v *Vec) markAccessed(pg *mem.Page) {
	switch k := v.KindOf(pg); {
	case k == Unevictable:
		// Locked pages don't age.
	case k.IsInactive():
		if !pg.Flags.Has(mem.FlagReferenced) {
			// (1) inactive unreferenced → inactive referenced.
			pg.SetFlags(mem.FlagReferenced)
		} else {
			// (6) inactive referenced → active unreferenced.
			v.lists[k].Remove(pg)
			pg.ClearFlags(mem.FlagReferenced)
			pg.SetFlags(mem.FlagActive)
			v.lists[kindFor(pg)].PushFront(pg)
		}
	case k.IsActive():
		if !pg.Flags.Has(mem.FlagReferenced) {
			// (7) active unreferenced → active referenced.
			pg.SetFlags(mem.FlagReferenced)
		} else {
			// (10) active referenced, referenced again → promote list.
			// This is MULTI-CLOCK's recency+frequency selection: the
			// page was recently accessed more than once. The referenced
			// state is kept on entry so the page survives one scan's
			// (11)-decay check before kpromoted collects it — without
			// the grace, pages that qualify between wakeups (supervised
			// accesses) would always decay before collection.
			v.lists[k].Remove(pg)
			pg.ClearFlags(mem.FlagActive)
			pg.SetFlags(mem.FlagPromote)
			v.lists[kindFor(pg)].PushFront(pg)
		}
	case k.IsPromote():
		// (12) accessed in promote state: stays, refreshed.
		pg.SetFlags(mem.FlagReferenced)
	}
}

// Age examines the hardware accessed bit (test-and-clear, like
// ptep_test_and_clear_young) and feeds any observed unsupervised access into
// MarkAccessed. It reports whether the page had been accessed since the
// last scan.
func (v *Vec) Age(pg *mem.Page) bool {
	v.Scanned++
	if pg.TestAndClearAccessed() {
		v.MarkAccessed(pg)
		return true
	}
	return false
}

// DecayPromote applies Fig. 4 transition (11): a promote-list page that was
// not accessed since the last scan returns to the active list in the
// unreferenced state. Returns true if the page was demoted out of promote
// state.
func (v *Vec) DecayPromote(pg *mem.Page) bool {
	k := v.KindOf(pg)
	if !k.IsPromote() {
		panic("lru: DecayPromote on non-promote page")
	}
	if pg.Flags.Has(mem.FlagReferenced) {
		// Was accessed during the window (12): clear for the next round.
		v.spendReferenced(pg)
		return false
	}
	from := v.preState(pg)
	v.lists[k].Remove(pg)
	pg.ClearFlags(mem.FlagPromote | mem.FlagReferenced)
	pg.SetFlags(mem.FlagActive)
	v.lists[kindFor(pg)].PushFront(pg)
	v.emit(pg, from, CauseDecay)
	return true
}

// ClearPromote drops a page out of promote state into active state without
// moving it between vecs; used when a promotion attempt fails (the paper
// moves unmigratable promote pages to the active list, §III-C). The page
// must be isolated.
func ClearPromote(pg *mem.Page) {
	if !pg.Flags.Has(mem.FlagIsolated) {
		panic("lru: ClearPromote on non-isolated page")
	}
	pg.ClearFlags(mem.FlagPromote | mem.FlagReferenced)
	pg.SetFlags(mem.FlagActive)
}

// RequeuePromote restores an isolated page to promote state so Putback
// returns it to the promote list instead of dropping it to active — the
// graceful-degradation requeue for promotions that failed transiently
// (pinned page, destination allocation denial). The referenced flag is set
// so the page survives exactly one scan's (11)-decay check per requeue;
// kpromoted re-requeues pages still in backoff each wakeup, so a page
// awaiting retry stays promote-listed for arbitrarily long backoffs while
// genuinely abandoned pages decay within one window. The page must be
// isolated.
func RequeuePromote(pg *mem.Page) {
	if !pg.Flags.Has(mem.FlagIsolated) {
		panic("lru: RequeuePromote on non-isolated page")
	}
	pg.ClearFlags(mem.FlagActive)
	pg.SetFlags(mem.FlagPromote | mem.FlagReferenced)
}

// CheckConsistency walks every list of the vec and verifies each resident
// page: its flags must select the list it sits on, it must be marked LRU
// and not isolated, it must reference a live frame, and it must live on
// this vec's node. It returns the number of frames covered by resident
// pages (compound pages count all their frames), which machine-level
// invariant checks reconcile against frame and PTE accounting.
func (v *Vec) CheckConsistency() (frames int, err error) {
	for k := Kind(0); k < NumKinds; k++ {
		l := &v.lists[k]
		for pg := l.Front(); pg != nil; pg = pg.Next() {
			if want := kindFor(pg); want != k {
				return frames, fmt.Errorf("lru: page flags select %v but page is on %v", want, k)
			}
			if !pg.Flags.Has(mem.FlagLRU) {
				return frames, fmt.Errorf("lru: page on %v without FlagLRU", k)
			}
			if pg.Flags.Has(mem.FlagIsolated) {
				return frames, fmt.Errorf("lru: isolated page on %v", k)
			}
			if pg.Node == mem.NoNode || pg.Frame == mem.NoFrame {
				return frames, fmt.Errorf("lru: freed page still on %v", k)
			}
			if pg.Node != v.Node {
				return frames, fmt.Errorf("lru: node %d page on node %d's %v list", pg.Node, v.Node, k)
			}
			frames += pg.Frames()
		}
	}
	return frames, nil
}

// Deactivate applies Fig. 4 transition (9): an active page that has stayed
// cold moves to the inactive list (unreferenced).
func (v *Vec) Deactivate(pg *mem.Page) {
	k := v.KindOf(pg)
	if !k.IsActive() {
		panic("lru: Deactivate on non-active page")
	}
	from := v.preState(pg)
	v.lists[k].Remove(pg)
	pg.ClearFlags(mem.FlagActive | mem.FlagReferenced)
	v.lists[kindFor(pg)].PushFront(pg)
	v.emit(pg, from, CauseDeactivate)
}

// ActiveRatioLimit returns the maximum allowed active:inactive ratio for a
// node of the given size, the PFRA heuristic the paper quotes as
// √(10·n):1 with n the node's memory in GiB (§III-C). Small nodes
// floor at 1.
func ActiveRatioLimit(frames int) float64 {
	gb := float64(frames) * float64(mem.PageSize) / (1 << 30)
	r := math.Sqrt(10 * gb)
	if r < 1 {
		return 1
	}
	return r
}
