package lru

import (
	"testing"

	"multiclock/internal/mem"
)

func TestScanCycleRecencyLadderStopsAtActive(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	// Access every window: vanilla CLOCK activates but never promotes.
	for round := 0; round < 6; round++ {
		pg.Accessed = true
		v.ScanCycleRecency(100)
	}
	if got := v.KindOf(pg); got != ActiveAnon {
		t.Fatalf("recency ladder ended at %v, want active (no promote list)", got)
	}
	if !pg.Flags.Has(mem.FlagReferenced) {
		t.Fatal("active page should be referenced after hot scans")
	}
}

func TestScanCycleRecencyDecay(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	pg.Accessed = true
	v.ScanCycleRecency(100) // inactive+ref
	if !pg.Flags.Has(mem.FlagReferenced) {
		t.Fatal("reference not recorded")
	}
	v.ScanCycleRecency(100) // idle window: decay
	if pg.Flags.Has(mem.FlagReferenced) {
		t.Fatal("idle window did not decay the reference")
	}
}

func TestScanCycleRecencyStats(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 20)
	for _, pg := range pages {
		pg.Accessed = true
	}
	s1 := v.ScanCycleRecency(100)
	if s1.Referenced != 20 || s1.Activated != 0 {
		t.Fatalf("first pass stats: %+v", s1)
	}
	for _, pg := range pages {
		pg.Accessed = true
	}
	s2 := v.ScanCycleRecency(100)
	if s2.Activated != 20 {
		t.Fatalf("second pass activations: %+v", s2)
	}
	if s2.ToPromote != 0 || s2.FromPromote != 0 {
		t.Fatal("recency scan must not touch promote state")
	}
	if v.ScanCycleRecency(0).Scanned != 0 {
		t.Fatal("zero budget scanned")
	}
}

func TestCollectActiveReferencedSelectsSingleTouch(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 10)
	// Activate all.
	for _, pg := range pages {
		pg.Accessed = true
	}
	v.ScanCycleRecency(100)
	for _, pg := range pages {
		pg.Accessed = true
	}
	v.ScanCycleRecency(100)
	// One fresh touch qualifies half of them for Nimble.
	for i := 0; i < 5; i++ {
		pages[i].Accessed = true
	}
	got := v.CollectActiveReferenced(100, 100)
	// Referenced flags from the activation scan also qualify — the
	// low-selectivity point. At least the 5 freshly touched are taken.
	if len(got) < 5 {
		t.Fatalf("collected %d, want ≥5", len(got))
	}
	for _, pg := range got {
		if !pg.Flags.Has(mem.FlagIsolated) {
			t.Fatal("candidate not isolated")
		}
		if pg.Flags.Has(mem.FlagReferenced) {
			t.Fatal("collection must spend the reference")
		}
	}
}

func TestCollectActiveReferencedBudgets(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 50)
	for _, pg := range pages {
		pg.Accessed = true
	}
	v.ScanCycleRecency(200)
	for _, pg := range pages {
		pg.Accessed = true
	}
	v.ScanCycleRecency(200)
	for _, pg := range pages {
		pg.Accessed = true
	}
	if got := v.CollectActiveReferenced(7, 100); len(got) != 7 {
		t.Fatalf("max budget: collected %d, want 7", len(got))
	}
	// Examination budget also bounds work.
	if got := v.CollectActiveReferenced(100, 3); len(got) > 3 {
		t.Fatalf("scan budget: collected %d", len(got))
	}
}

func TestClearPromoteRequiresIsolation(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	for i := 0; i < 4; i++ {
		v.MarkAccessed(pg)
	}
	cands := v.CollectPromote(-1)
	if len(cands) != 1 {
		t.Fatal("setup")
	}
	ClearPromote(cands[0])
	if cands[0].Flags.Has(mem.FlagPromote) || !cands[0].Flags.Has(mem.FlagActive) {
		t.Fatal("ClearPromote flags")
	}
	v.Putback(cands[0])
	if v.KindOf(cands[0]) != ActiveAnon {
		t.Fatal("cleared page should land on active")
	}
	// Non-isolated pages are rejected.
	pg2 := anonPage()
	v.Add(pg2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ClearPromote(pg2)
}

func TestVecListAccessor(t *testing.T) {
	v := NewVec(3)
	pg := anonPage()
	v.Add(pg)
	if v.List(InactiveAnon).Len() != 1 {
		t.Fatal("List accessor")
	}
}
