package lru

import (
	"testing"
	"testing/quick"

	"multiclock/internal/mem"
)

func anonPage() *mem.Page { return &mem.Page{Node: 0} }
func filePage() *mem.Page {
	pg := &mem.Page{Node: 0}
	pg.SetFlags(mem.FlagFile)
	return pg
}

// state returns a compact description of the Fig. 4 state of a page.
func state(v *Vec, pg *mem.Page) string {
	if !pg.OnList() {
		return "off-lru"
	}
	k := v.KindOf(pg)
	ref := ""
	if pg.Flags.Has(mem.FlagReferenced) {
		ref = "+ref"
	}
	return k.String() + ref
}

func TestKindNames(t *testing.T) {
	if InactiveAnon.String() != "anon_inactive" || PromoteFile.String() != "file_promote" {
		t.Fatal("kind names")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind")
	}
	if !PromoteAnon.IsPromote() || ActiveAnon.IsPromote() {
		t.Fatal("IsPromote")
	}
	if !ActiveFile.IsActive() || !InactiveFile.IsInactive() {
		t.Fatal("IsActive/IsInactive")
	}
}

func TestAddNewPageStartsInactiveUnreferenced(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg) // transition (5)
	if got := state(v, pg); got != "anon_inactive" {
		t.Fatalf("new page state = %q, want anon_inactive", got)
	}
	if !pg.Flags.Has(mem.FlagLRU) {
		t.Fatal("FlagLRU not set")
	}
	f := filePage()
	v.Add(f)
	if got := state(v, f); got != "file_inactive" {
		t.Fatalf("new file page state = %q", got)
	}
}

func TestAddLockedPageGoesUnevictable(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	pg.SetFlags(mem.FlagUnevictable)
	v.Add(pg)
	if v.KindOf(pg) != Unevictable {
		t.Fatal("mlocked page not on unevictable list")
	}
	// Accesses must not age unevictable pages.
	v.MarkAccessed(pg)
	v.MarkAccessed(pg)
	v.MarkAccessed(pg)
	if v.KindOf(pg) != Unevictable || pg.Flags.Has(mem.FlagPromote) {
		t.Fatal("unevictable page moved by accesses")
	}
}

func TestAddTwicePanics(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	v.Add(pg)
}

// TestFig4FullLadder drives a page through the complete promotion ladder:
// inactive,unref → (1) inactive,ref → (6) active,unref → (7) active,ref →
// (10) promote.
func TestFig4FullLadder(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)

	steps := []string{
		"anon_inactive+ref", // (1)
		"anon_active",       // (6) activation clears referenced
		"anon_active+ref",   // (7)
		"anon_promote+ref",  // (10) promote entry keeps its grace reference
	}
	for i, want := range steps {
		v.MarkAccessed(pg)
		if got := state(v, pg); got != want {
			t.Fatalf("after access %d: state = %q, want %q", i+1, got, want)
		}
	}
	// (12): accesses in promote state keep it there, referenced.
	v.MarkAccessed(pg)
	if got := state(v, pg); got != "anon_promote+ref" {
		t.Fatalf("(12) state = %q", got)
	}
	v.MarkAccessed(pg)
	if got := state(v, pg); got != "anon_promote+ref" {
		t.Fatalf("(12) repeat state = %q", got)
	}
}

func TestFig4FileLadder(t *testing.T) {
	v := NewVec(0)
	pg := filePage()
	v.Add(pg)
	for i := 0; i < 4; i++ {
		v.MarkAccessed(pg)
	}
	if got := state(v, pg); got != "file_promote+ref" {
		t.Fatalf("file ladder ends at %q, want file_promote+ref", got)
	}
}

func TestDecayPromoteUnaccessed(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	for i := 0; i < 4; i++ {
		v.MarkAccessed(pg)
	}
	// Entry carries one grace reference: the first decay check spends it.
	if v.DecayPromote(pg) {
		t.Fatal("grace reference not honoured")
	}
	// (11): still unaccessed → back to active,unref.
	if !v.DecayPromote(pg) {
		t.Fatal("unaccessed promote page did not decay")
	}
	if got := state(v, pg); got != "anon_active" {
		t.Fatalf("after decay: %q, want anon_active", got)
	}
}

func TestDecayPromoteAccessedStays(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	for i := 0; i < 5; i++ {
		v.MarkAccessed(pg) // ends promote+ref
	}
	if v.DecayPromote(pg) {
		t.Fatal("accessed promote page decayed")
	}
	// The reference was spent; a second decay with no access moves it out.
	if got := state(v, pg); got != "anon_promote" {
		t.Fatalf("after spending ref: %q", got)
	}
	if !v.DecayPromote(pg) {
		t.Fatal("second decay should fire")
	}
}

func TestDecayPromoteOnNonPromotePanics(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	v.DecayPromote(pg)
}

func TestDeactivate(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	v.MarkAccessed(pg)
	v.MarkAccessed(pg) // active
	v.Deactivate(pg)   // (9)
	if got := state(v, pg); got != "anon_inactive" {
		t.Fatalf("after deactivate: %q", got)
	}
}

func TestDeactivateNonActivePanics(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	v.Deactivate(pg)
}

func TestIsolatePutback(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	v.MarkAccessed(pg)
	v.MarkAccessed(pg) // active
	v.Isolate(pg)
	if pg.OnList() || !pg.Flags.Has(mem.FlagIsolated) {
		t.Fatal("Isolate state")
	}
	// Accesses during isolation are dropped, not crashes.
	v.MarkAccessed(pg)
	if pg.OnList() {
		t.Fatal("isolated page re-added by access")
	}
	// Putback restores by flags, possibly on another vec (migration).
	v2 := NewVec(1)
	v2.Putback(pg)
	if got := state(v2, pg); got != "anon_active" {
		t.Fatalf("after putback: %q", got)
	}
}

func TestPutbackNonIsolatedPanics(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	v.Putback(pg)
}

func TestDelete(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	v.Delete(pg)
	if pg.OnList() || pg.Flags.Has(mem.FlagLRU) {
		t.Fatal("Delete left page on list")
	}
}

func TestAgeReadsAndClearsHardwareBit(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	pg.Accessed = true
	if !v.Age(pg) {
		t.Fatal("Age missed the accessed bit")
	}
	if pg.Accessed {
		t.Fatal("Age did not clear the bit")
	}
	if got := state(v, pg); got != "anon_inactive+ref" {
		t.Fatalf("Age did not apply transition: %q", got)
	}
	if v.Age(pg) {
		t.Fatal("Age saw a cleared bit")
	}
	if v.Scanned != 2 {
		t.Fatalf("Scanned = %d, want 2", v.Scanned)
	}
}

func TestMarkAccessedOffLRUIsNoop(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.MarkAccessed(pg) // never added; must not panic
	if pg.OnList() {
		t.Fatal("no-op access added page")
	}
}

func TestKindOfMismatchPanics(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	pg.SetFlags(mem.FlagActive) // corrupt: flags no longer match the list
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on flag/list mismatch")
		}
	}()
	v.KindOf(pg)
}

func TestTotalEvictable(t *testing.T) {
	v := NewVec(0)
	for i := 0; i < 5; i++ {
		v.Add(anonPage())
	}
	locked := anonPage()
	locked.SetFlags(mem.FlagUnevictable)
	v.Add(locked)
	if got := v.TotalEvictable(); got != 5 {
		t.Fatalf("TotalEvictable = %d, want 5", got)
	}
}

func TestActiveRatioLimit(t *testing.T) {
	if r := ActiveRatioLimit(256); r != 1 {
		t.Fatalf("tiny node ratio = %v, want floor 1", r)
	}
	// 16 GiB → √160 ≈ 12.6
	frames := 16 << 30 / mem.PageSize
	r := ActiveRatioLimit(frames)
	if r < 12 || r > 13 {
		t.Fatalf("16GiB ratio = %v, want ≈12.6", r)
	}
	// Monotone in size.
	if ActiveRatioLimit(frames*4) <= r {
		t.Fatal("ratio not monotone")
	}
}

// Property: any access sequence leaves the page in exactly one valid state
// and on exactly one list, with flags consistent with the list.
func TestStateMachineConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		v := NewVec(0)
		pg := anonPage()
		v.Add(pg)
		for _, op := range ops {
			switch op % 5 {
			case 0, 1:
				v.MarkAccessed(pg)
			case 2:
				pg.Accessed = true
				v.Age(pg)
			case 3:
				if pg.OnList() && v.KindOf(pg).IsPromote() {
					v.DecayPromote(pg)
				}
			case 4:
				if pg.OnList() && v.KindOf(pg).IsActive() {
					v.Deactivate(pg)
				}
			}
			// Invariants: page on exactly one list, matching its flags.
			if !pg.OnList() {
				return false
			}
			k := v.KindOf(pg) // panics on inconsistency
			if k == Unevictable {
				return false
			}
			// Promote and Active flags are mutually exclusive.
			if pg.Flags.Has(mem.FlagPromote) && pg.Flags.Has(mem.FlagActive) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: pages are conserved across arbitrary aging — nothing is lost or
// duplicated by the state machine.
func TestPageConservationProperty(t *testing.T) {
	f := func(accessPattern []uint16, n uint8) bool {
		v := NewVec(0)
		count := int(n%50) + 1
		pages := make([]*mem.Page, count)
		for i := range pages {
			if i%3 == 0 {
				pages[i] = filePage()
			} else {
				pages[i] = anonPage()
			}
			v.Add(pages[i])
		}
		for _, a := range accessPattern {
			v.MarkAccessed(pages[int(a)%count])
		}
		total := 0
		for k := Kind(0); k < NumKinds; k++ {
			total += v.Len(k)
		}
		return total == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRequeuePromoteRestoresPromoteState(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	pg.SetFlags(mem.FlagActive | mem.FlagPromote)
	v.Add(pg)
	v.Isolate(pg)
	// A failed promotion first clears promote state (the drop-to-active
	// path), then the retry decision reverses it.
	ClearPromote(pg)
	RequeuePromote(pg)
	v.Putback(pg)
	if got := state(v, pg); got != "anon_promote+ref" {
		t.Fatalf("requeued page state = %q, want anon_promote+ref", got)
	}
	if _, err := v.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRequeuePromoteNonIsolatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	RequeuePromote(pg)
}

func TestCheckConsistencyCleanAndCorrupt(t *testing.T) {
	v := NewVec(0)
	pages := []*mem.Page{anonPage(), filePage(), anonPage()}
	for _, pg := range pages {
		v.Add(pg)
	}
	frames, err := v.CheckConsistency()
	if err != nil || frames != len(pages) {
		t.Fatalf("clean vec: frames=%d err=%v", frames, err)
	}

	// Flags disagreeing with list membership must be reported.
	pages[0].SetFlags(mem.FlagActive)
	if _, err := v.CheckConsistency(); err == nil {
		t.Fatal("kind mismatch not detected")
	}
	pages[0].ClearFlags(mem.FlagActive)

	// An isolated page riding a list must be reported.
	pages[1].SetFlags(mem.FlagIsolated)
	if _, err := v.CheckConsistency(); err == nil {
		t.Fatal("isolated page on list not detected")
	}
	pages[1].ClearFlags(mem.FlagIsolated)

	// A page from another node must be reported.
	pages[2].Node = 3
	if _, err := v.CheckConsistency(); err == nil {
		t.Fatal("foreign-node page not detected")
	}
}
