package lru

import (
	"fmt"

	"multiclock/internal/mem"
	"multiclock/internal/snapcodec"
)

// Checkpoint serialization for one node's LRU lists. At a quiescent
// snapshot point every resident page sits on exactly one list (machine-level
// invariants enforce used = on-lists + shadow frames), so the vec walk is
// the canonical enumeration of live page descriptors: each record is a full
// mem page state, written head→tail per list so restore reproduces exact
// CLOCK hand order.

// SnapshotState encodes the vec: the scan counter, then every list with its
// resident page records in head→tail order.
func (v *Vec) SnapshotState(enc *snapcodec.Encoder) {
	enc.I64(v.Scanned)
	for k := Kind(0); k < NumKinds; k++ {
		l := &v.lists[k]
		enc.Int(l.Len())
		for pg := l.Front(); pg != nil; pg = pg.Next() {
			mem.EncodePage(enc, pg)
		}
	}
}

// RestoreState rebuilds the vec's lists into an empty vec. newPage decodes
// one page record into a fresh registered descriptor (the caller wires it to
// mem.System.RestorePage plus its seq→page registry). Pages are appended
// with PushBack — head first — bypassing Add's flag transitions, because the
// records already carry the exact flags each page held at snapshot time; the
// flags are still cross-checked against the list they were recorded on.
func (v *Vec) RestoreState(dec *snapcodec.Decoder, newPage func(*snapcodec.Decoder) *mem.Page) error {
	v.Scanned = dec.I64()
	for k := Kind(0); k < NumKinds; k++ {
		n := dec.Int()
		if dec.Err() != nil {
			return dec.Err()
		}
		if n < 0 {
			return fmt.Errorf("lru: negative %v population %d", k, n)
		}
		for i := 0; i < n; i++ {
			pg := newPage(dec)
			if dec.Err() != nil {
				return dec.Err()
			}
			if want := kindFor(pg); want != k {
				return fmt.Errorf("lru: restored page flags select %v but page was recorded on %v", want, k)
			}
			if pg.Node != v.Node {
				return fmt.Errorf("lru: node %d page recorded on node %d's %v list", pg.Node, v.Node, k)
			}
			v.lists[k].PushBack(pg)
		}
	}
	return dec.Err()
}
