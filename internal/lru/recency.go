package lru

import "multiclock/internal/mem"

// markAccessedRecency is the unmodified kernel aging step: the same ladder
// as MarkAccessed up to the active list, but with no promote transition —
// pages saturate at active+referenced. Used by recency-only baselines
// (Nimble's page selection uses Linux's stock CLOCK profiling, §II-D).
func (v *Vec) markAccessedRecency(pg *mem.Page) {
	if pg.Flags.Has(mem.FlagIsolated) || !pg.Flags.Has(mem.FlagLRU) {
		return
	}
	switch k := v.KindOf(pg); {
	case k == Unevictable:
	case k.IsInactive():
		if !pg.Flags.Has(mem.FlagReferenced) {
			pg.SetFlags(mem.FlagReferenced)
		} else {
			v.lists[k].Remove(pg)
			pg.ClearFlags(mem.FlagReferenced)
			pg.SetFlags(mem.FlagActive)
			v.lists[kindFor(pg)].PushFront(pg)
		}
	default:
		// Active (or, defensively, promote): just refresh the reference.
		pg.SetFlags(mem.FlagReferenced)
	}
}

// ScanCycleRecency runs one CLOCK pass using only recency information: the
// vanilla PFRA aging with no promote list. Stats fields ToPromote and
// FromPromote stay zero.
func (v *Vec) ScanCycleRecency(batch int) ScanStats {
	var stats ScanStats
	var lens [Unevictable]int
	total := 0
	for k := Kind(0); k < Unevictable; k++ {
		lens[k] = v.lists[k].Len()
		total += lens[k]
	}
	if total == 0 || batch <= 0 {
		return stats
	}
	for k := Kind(0); k < Unevictable; k++ {
		if lens[k] == 0 {
			continue
		}
		quota := batch * lens[k] / total
		if quota == 0 {
			quota = 1
		}
		if quota > lens[k] {
			quota = lens[k]
		}
		l := &v.lists[k]
		for i := 0; i < quota; i++ {
			pg := l.Back()
			if pg == nil {
				break
			}
			stats.Scanned++
			v.Scanned++
			wasInactive := k.IsInactive()
			if pg.TestAndClearAccessed() {
				stats.Referenced++
				v.markAccessedRecency(pg)
				if wasInactive && kindFor(pg).IsActive() {
					stats.Activated++
				}
			} else if pg.Flags.Has(mem.FlagReferenced) {
				// Vanilla CLOCK decay: an idle window spends the
				// referenced state.
				pg.ClearFlags(mem.FlagReferenced)
			}
			if pg.List() == l {
				l.MoveToFront(pg)
			}
		}
	}
	return stats
}

// CollectActiveReferenced isolates up to max recently-referenced pages from
// the heads of the active lists: Nimble's promotion selection ("exchange
// the top most recently accessed pages in the upper tier", §II-D). A single
// recent reference qualifies a page, which is exactly the lower selectivity
// the paper contrasts with MULTI-CLOCK's two-touch promote list. At most
// budget pages are examined.
func (v *Vec) CollectActiveReferenced(max, budget int) []*mem.Page {
	return v.AppendActiveReferenced(nil, max, budget)
}

// AppendActiveReferenced is CollectActiveReferenced appending into buf.
func (v *Vec) AppendActiveReferenced(buf []*mem.Page, max, budget int) []*mem.Page {
	base := len(buf)
	for _, k := range [...]Kind{ActiveAnon, ActiveFile} {
		l := &v.lists[k]
		pg := l.Front()
		for pg != nil && budget > 0 && len(buf)-base < max {
			next := pg.Next()
			budget--
			v.Scanned++
			if pg.TestAndClearAccessed() || pg.Flags.Has(mem.FlagReferenced) {
				pg.ClearFlags(mem.FlagReferenced)
				v.Isolate(pg)
				buf = append(buf, pg)
			}
			pg = next
		}
	}
	return buf
}
