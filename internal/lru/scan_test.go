package lru

import (
	"testing"

	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// populate adds n anon pages and returns them.
func populate(v *Vec, n int) []*mem.Page {
	pages := make([]*mem.Page, n)
	for i := range pages {
		pages[i] = anonPage()
		v.Add(pages[i])
	}
	return pages
}

func TestScanCycleEmptyVec(t *testing.T) {
	v := NewVec(0)
	stats := v.ScanCycle(1024)
	if stats.Scanned != 0 {
		t.Fatal("scanned pages on empty vec")
	}
}

func TestScanCycleObservesHardwareBits(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 100)
	// Touch half the pages like the MMU would.
	for i := 0; i < 50; i++ {
		pages[i].Accessed = true
	}
	stats := v.ScanCycle(1000)
	if stats.Referenced != 50 {
		t.Fatalf("Referenced = %d, want 50", stats.Referenced)
	}
	// One observed access: inactive,unref → inactive,ref. No activation yet.
	if stats.Activated != 0 {
		t.Fatalf("Activated = %d, want 0 after single access", stats.Activated)
	}
	for i := 0; i < 50; i++ {
		if !pages[i].Flags.Has(mem.FlagReferenced) {
			t.Fatal("referenced flag missing")
		}
	}
}

func TestScanCycleActivatesOnSecondScan(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 10)
	for _, pg := range pages {
		pg.Accessed = true
	}
	v.ScanCycle(100)
	for _, pg := range pages {
		pg.Accessed = true
	}
	stats := v.ScanCycle(100)
	if stats.Activated != 10 {
		t.Fatalf("Activated = %d, want 10", stats.Activated)
	}
	for _, pg := range pages {
		if v.KindOf(pg) != ActiveAnon {
			t.Fatalf("page in %v, want active", v.KindOf(pg))
		}
	}
}

// TestScanCycleFullPromotionPipeline verifies that a page accessed in every
// scan window climbs to the promote list in four scans, while untouched
// pages stay inactive: the recency+frequency selection in action.
func TestScanCycleFullPromotionPipeline(t *testing.T) {
	v := NewVec(0)
	hot := populate(v, 8)
	cold := populate(v, 8)
	for round := 0; round < 4; round++ {
		for _, pg := range hot {
			pg.Accessed = true
		}
		v.ScanCycle(1000)
	}
	for _, pg := range hot {
		if v.KindOf(pg) != PromoteAnon {
			t.Fatalf("hot page in %v after 4 hot scans, want promote", v.KindOf(pg))
		}
	}
	for _, pg := range cold {
		if v.KindOf(pg) != InactiveAnon {
			t.Fatalf("cold page in %v, want inactive", v.KindOf(pg))
		}
	}
}

func TestScanCycleDecaysIdlePromotePages(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	for i := 0; i < 4; i++ {
		v.MarkAccessed(pg)
	}
	if v.KindOf(pg) != PromoteAnon {
		t.Fatal("setup: page not on promote list")
	}
	// First idle scan spends the entry's grace reference; the second
	// applies (11) promote → active.
	v.ScanCycle(100)
	stats := v.ScanCycle(100)
	if stats.FromPromote != 1 {
		t.Fatalf("FromPromote = %d, want 1", stats.FromPromote)
	}
	if v.KindOf(pg) != ActiveAnon {
		t.Fatalf("idle promote page in %v, want active", v.KindOf(pg))
	}
}

func TestScanCycleKeepsBusyPromotePages(t *testing.T) {
	v := NewVec(0)
	pg := anonPage()
	v.Add(pg)
	for i := 0; i < 4; i++ {
		v.MarkAccessed(pg)
	}
	pg.Accessed = true // accessed again since entering promote
	v.ScanCycle(100)
	if v.KindOf(pg) != PromoteAnon {
		t.Fatalf("busy promote page in %v, want promote (12)", v.KindOf(pg))
	}
}

func TestScanCycleRespectsBudget(t *testing.T) {
	v := NewVec(0)
	populate(v, 10000)
	stats := v.ScanCycle(1024)
	if stats.Scanned != 1024 {
		t.Fatalf("Scanned = %d, want exactly the 1024-page budget", stats.Scanned)
	}
}

// TestScanCycleBudgetConservedAcrossManyLists pins the budget-conservation
// contract: with one large list and several near-empty ones, the
// per-list quotas must still sum to the batch. The pre-fix code dropped
// the integer-division remainder and then bumped every zero quota to 1,
// scanning up to NumKinds-1 pages over budget per cycle.
func TestScanCycleBudgetConservedAcrossManyLists(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 1000) // inactive anon
	// One page on each remaining evictable list.
	for i := 0; i < 2; i++ {
		v.MarkAccessed(pages[0]) // → active anon
	}
	for i := 0; i < 4; i++ {
		v.MarkAccessed(pages[1]) // → promote anon
	}
	fi := filePage()
	v.Add(fi) // inactive file
	fa := filePage()
	v.Add(fa)
	for i := 0; i < 2; i++ {
		v.MarkAccessed(fa) // → active file
	}
	fp := filePage()
	v.Add(fp)
	for i := 0; i < 4; i++ {
		v.MarkAccessed(fp) // → promote file
	}
	if got := v.TotalEvictable(); got != 1003 {
		t.Fatalf("setup: evictable = %d, want 1003", got)
	}

	const batch = 8
	stats := v.ScanCycle(batch)
	if stats.Scanned > batch {
		t.Fatalf("Scanned = %d, budget was %d (budget not conserved)", stats.Scanned, batch)
	}
	if stats.Scanned < batch {
		t.Fatalf("Scanned = %d of %d, budget unspent despite 1003 available pages", stats.Scanned, batch)
	}
}

// TestScanCycleFullBudgetUse: the remainder redistribution must spend the
// whole budget whenever enough pages exist, and scan everything (once)
// when the budget exceeds the population.
func TestScanCycleFullBudgetUse(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 90)
	for i := 0; i < 30; i++ {
		v.MarkAccessed(pages[i])
		v.MarkAccessed(pages[i]) // 30 active, 60 inactive
	}
	// batch < total: exactly batch pages scanned (old code lost the
	// remainder: 7*60/90=4 plus 7*30/90=2 → 6 of 7).
	if got := v.ScanCycle(7).Scanned; got != 7 {
		t.Fatalf("Scanned = %d, want 7", got)
	}
	// batch ≥ total: every page scanned exactly once, never more.
	if got := v.ScanCycle(1000).Scanned; got != 90 {
		t.Fatalf("Scanned = %d, want all 90", got)
	}
}

func TestScanCycleSplitsBudgetProportionally(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 100)
	// Promote 50 pages to active.
	for i := 0; i < 50; i++ {
		v.MarkAccessed(pages[i])
		v.MarkAccessed(pages[i])
	}
	stats := v.ScanCycle(50)
	// Both lists must get a share (25 each, ±1 rounding).
	if stats.Scanned < 48 || stats.Scanned > 52 {
		t.Fatalf("Scanned = %d, want ≈50", stats.Scanned)
	}
}

func TestCollectPromote(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 6)
	f := filePage()
	v.Add(f)
	for _, pg := range append(pages[:3:3], f) {
		for i := 0; i < 4; i++ {
			v.MarkAccessed(pg)
		}
	}
	got := v.CollectPromote(-1)
	if len(got) != 4 {
		t.Fatalf("collected %d, want 4", len(got))
	}
	for _, pg := range got {
		if !pg.Flags.Has(mem.FlagIsolated) || pg.OnList() {
			t.Fatal("candidate not isolated")
		}
		if !pg.Flags.Has(mem.FlagPromote) {
			t.Fatal("candidate lost promote flag (needed for putback)")
		}
	}
	if v.Len(PromoteAnon)+v.Len(PromoteFile) != 0 {
		t.Fatal("promote lists not drained")
	}
}

func TestCollectPromoteMax(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 10)
	for _, pg := range pages {
		for i := 0; i < 4; i++ {
			v.MarkAccessed(pg)
		}
	}
	got := v.CollectPromote(3)
	if len(got) != 3 {
		t.Fatalf("collected %d, want 3", len(got))
	}
	if v.Len(PromoteAnon) != 7 {
		t.Fatalf("left %d on promote list, want 7", v.Len(PromoteAnon))
	}
}

func TestBalanceActiveEnforcesRatio(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 100)
	// Make 90 pages active, 10 inactive.
	for i := 0; i < 90; i++ {
		v.MarkAccessed(pages[i])
		v.MarkAccessed(pages[i])
	}
	if v.Len(ActiveAnon) != 90 {
		t.Fatalf("setup: active = %d", v.Len(ActiveAnon))
	}
	moved := v.BalanceActive(1.0, 1000)
	if moved == 0 {
		t.Fatal("nothing deactivated despite 9:1 ratio")
	}
	a, i := v.Len(ActiveAnon), v.Len(InactiveAnon)
	if float64(a) > 1.0*float64(i+1)+1 {
		t.Fatalf("ratio not enforced: active=%d inactive=%d", a, i)
	}
}

func TestBalanceActiveSecondChance(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 20)
	for _, pg := range pages {
		v.MarkAccessed(pg)
		v.MarkAccessed(pg) // all active
	}
	// All recently referenced via hardware bit: first pass spends bits.
	for _, pg := range pages {
		pg.Accessed = true
	}
	moved := v.BalanceActive(1.0, 20)
	if moved != 0 {
		t.Fatalf("referenced pages deactivated: %d", moved)
	}
	// Second pass with bits spent moves them.
	moved = v.BalanceActive(1.0, 20)
	if moved == 0 {
		t.Fatal("cold active pages kept despite ratio")
	}
}

func TestBalanceActiveBudget(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 100)
	for _, pg := range pages {
		v.MarkAccessed(pg)
		v.MarkAccessed(pg)
	}
	before := v.Scanned
	v.BalanceActive(0.0, 5)
	if v.Scanned-before > 10 { // 5 per type max
		t.Fatalf("budget exceeded: scanned %d", v.Scanned-before)
	}
}

func TestDemoteCandidatesTakesColdOnly(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 20)
	// Pages 0-9 hot (hardware bit), 10-19 cold.
	for i := 0; i < 10; i++ {
		pages[i].Accessed = true
	}
	got := v.DemoteCandidates(20)
	if len(got) != 10 {
		t.Fatalf("candidates = %d, want 10", len(got))
	}
	for _, pg := range got {
		for i := 0; i < 10; i++ {
			if pg == pages[i] {
				t.Fatal("hot page selected for demotion")
			}
		}
		if !pg.Flags.Has(mem.FlagIsolated) {
			t.Fatal("candidate not isolated")
		}
	}
}

func TestDemoteCandidatesSecondChanceForSoftRef(t *testing.T) {
	v := NewVec(0)
	pages := populate(v, 10)
	for _, pg := range pages {
		v.MarkAccessed(pg) // inactive+ref (software flag)
	}
	got := v.DemoteCandidates(10)
	if len(got) != 0 {
		t.Fatalf("soft-referenced pages demoted: %d", len(got))
	}
	// Their reference was spent; next pass takes them.
	got = v.DemoteCandidates(10)
	if len(got) != 10 {
		t.Fatalf("second pass candidates = %d, want 10", len(got))
	}
}

func TestDemoteCandidatesMax(t *testing.T) {
	v := NewVec(0)
	populate(v, 50)
	got := v.DemoteCandidates(7)
	if len(got) != 7 {
		t.Fatalf("candidates = %d, want 7", len(got))
	}
}

func TestDemoteCandidatesCoversFileList(t *testing.T) {
	v := NewVec(0)
	for i := 0; i < 5; i++ {
		v.Add(filePage())
	}
	got := v.DemoteCandidates(10)
	if len(got) != 5 {
		t.Fatalf("file candidates = %d, want 5", len(got))
	}
}

// TestScanCycleBudgetConservationProperty pins ScanCycle's budget contract
// across adversarial list shapes: for any distribution of pages over the six
// evictable lists and any batch, exactly min(batch, population) pages are
// examined — never more (the remainder hand-out must not over-assign) and
// never fewer (integer division must not strand budget). Every page carries
// a set hardware bit, so each examination observes a reference; a page
// examined twice in one pass (or a mid-pass arrival re-examined) would find
// its bit already cleared and show up as Referenced < Scanned.
func TestScanCycleBudgetConservationProperty(t *testing.T) {
	rng := sim.NewRNG(0xbadc0de)
	// Adversarial per-list sizes: empty, singletons, tiny, and large-skew
	// shapes that exercise both the remainder loop and the q > lens clamp.
	sizes := []int{0, 0, 1, 1, 2, 3, 5, 17, 200}
	for trial := 0; trial < 200; trial++ {
		v := NewVec(0)
		total := 0
		// Shape the six evictable lists: anon and file ladders, each with
		// inactive / active / promote populations.
		for _, file := range []bool{false, true} {
			for rung := 0; rung < 3; rung++ {
				n := sizes[rng.Intn(len(sizes))]
				total += n
				for i := 0; i < n; i++ {
					var pg *mem.Page
					if file {
						pg = filePage()
					} else {
						pg = anonPage()
					}
					v.Add(pg)
					// 0 MarkAccessed keeps it inactive; 2 makes it
					// active; 4 climbs to promote.
					for j := 0; j < 2*rung; j++ {
						v.MarkAccessed(pg)
					}
				}
			}
		}
		if got := v.TotalEvictable(); got != total {
			t.Fatalf("trial %d: setup placed %d evictable pages, want %d", trial, got, total)
		}
		// Every page referenced: transitions fire mid-pass (activations,
		// promote retentions) while the budget must still hold exactly.
		for k := Kind(0); k < Unevictable; k++ {
			for pg := v.List(k).Back(); pg != nil; pg = pg.Prev() {
				pg.Accessed = true
			}
		}
		batch := 0
		switch rng.Intn(5) {
		case 0:
			batch = 1
		case 1:
			batch = total + 1 + rng.Intn(10) // over-budget: full single pass
		case 2:
			batch = total // exact cover
		case 3:
			if total > 0 {
				batch = 1 + rng.Intn(total) // partial
			}
		case 4:
			batch = rng.Intn(2 * (total + 1))
		}
		stats := v.ScanCycle(batch)
		want := batch
		if total < want {
			want = total
		}
		if batch <= 0 {
			want = 0
		}
		if stats.Scanned != want {
			t.Fatalf("trial %d: Scanned = %d, want min(batch=%d, total=%d) = %d",
				trial, stats.Scanned, batch, total, want)
		}
		if stats.Referenced != stats.Scanned {
			t.Fatalf("trial %d: Referenced = %d != Scanned = %d — a page was examined twice in one pass",
				trial, stats.Referenced, stats.Scanned)
		}
		if got := v.TotalEvictable(); got != total {
			t.Fatalf("trial %d: population %d after scan, want %d (page leaked)", trial, got, total)
		}
		if _, err := v.CheckConsistency(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestScanStatsAdd(t *testing.T) {
	a := ScanStats{Scanned: 1, Referenced: 2, Activated: 3, ToPromote: 4, FromPromote: 5}
	b := a
	a.Add(b)
	if a.Scanned != 2 || a.Referenced != 4 || a.Activated != 6 || a.ToPromote != 8 || a.FromPromote != 10 {
		t.Fatalf("Add: %+v", a)
	}
}
