package lru

import "multiclock/internal/mem"

// ScanStats summarizes one scanner pass over a vec.
type ScanStats struct {
	Scanned     int // pages examined
	Referenced  int // pages whose hardware accessed bit was found set
	Activated   int // inactive → active transitions
	ToPromote   int // active → promote transitions (10)
	FromPromote int // promote → active decays (11)
}

// Add accumulates other into s.
func (s *ScanStats) Add(other ScanStats) {
	s.Scanned += other.Scanned
	s.Referenced += other.Referenced
	s.Activated += other.Activated
	s.ToPromote += other.ToPromote
	s.FromPromote += other.FromPromote
}

// ScanCycle runs one CLOCK pass over the vec's evictable lists with a total
// budget of batch pages (the paper sets 1024 pages per kpromoted run,
// §V-C). The budget is divided across lists in proportion to their
// populations. For each examined page the hardware accessed bit is read and
// cleared; observed accesses drive the Fig. 4 transitions, and unaccessed
// promote-list pages decay back to active (11). Pages that do not change
// lists rotate to the head, which is what makes the pass a CLOCK hand
// rather than a one-shot sweep.
func (v *Vec) ScanCycle(batch int) ScanStats {
	var stats ScanStats
	// Snapshot list lengths before scanning: transitions push pages onto
	// the heads of later lists, and those arrivals must not be re-examined
	// (or decayed) within the same pass.
	var lens [Unevictable]int
	total := 0
	for k := Kind(0); k < Unevictable; k++ {
		lens[k] = v.lists[k].Len()
		total += lens[k]
	}
	if total == 0 || batch <= 0 {
		return stats
	}
	// Proportional base quotas conserve the budget: integer division
	// leaves a remainder of fewer than NumKinds pages, which is handed
	// out one page at a time to the most populated lists first. The sum
	// of quotas is exactly min(batch, total) — the old quota==0→1 bump
	// could scan several pages over budget when many lists were
	// near-empty, and the discarded remainder could leave budget unspent.
	var quotas [Unevictable]int
	assigned := 0
	var order [Unevictable]Kind // populated lists, most populated first
	no := 0
	for k := Kind(0); k < Unevictable; k++ {
		if lens[k] == 0 {
			continue
		}
		q := batch * lens[k] / total
		if q > lens[k] {
			q = lens[k]
		}
		quotas[k] = q
		assigned += q
		// Stable insertion sort by descending length: ties keep kind
		// order, matching the previous sort.SliceStable without its
		// allocations (this runs every daemon wakeup).
		i := no
		for i > 0 && lens[order[i-1]] < lens[k] {
			order[i] = order[i-1]
			i--
		}
		order[i] = k
		no++
	}
	for rem := batch - assigned; rem > 0; {
		gave := false
		for _, k := range order[:no] {
			if rem == 0 {
				break
			}
			if quotas[k] < lens[k] {
				quotas[k]++
				rem--
				gave = true
			}
		}
		if !gave {
			break // every list fully covered; batch exceeds total
		}
	}
	for k := Kind(0); k < Unevictable; k++ {
		if quotas[k] > 0 {
			stats.Add(v.scanList(k, quotas[k]))
		}
	}
	return stats
}

// scanList examines up to n pages from the tail of list k.
func (v *Vec) scanList(k Kind, n int) ScanStats {
	var stats ScanStats
	l := &v.lists[k]
	for i := 0; i < n; i++ {
		pg := l.Back()
		if pg == nil {
			return stats
		}
		stats.Scanned++
		wasKind := k
		if v.Age(pg) {
			stats.Referenced++
			switch nowKind := kindFor(pg); {
			case wasKind.IsInactive() && nowKind.IsActive():
				stats.Activated++
			case wasKind.IsActive() && nowKind.IsPromote():
				stats.ToPromote++
			}
		} else if !k.IsPromote() && pg.Flags.Has(mem.FlagReferenced) {
			// Decay, Fig. 4 transition (2) (and its active-list twin):
			// a window with no access costs the page its referenced
			// state, so climbing the ladder requires accesses in
			// consecutive windows — frequency, not just recency.
			v.spendReferenced(pg)
		}
		if pg.List() == l {
			// No list transition fired; give the page its rotation so
			// the hand advances (or decay promote pages that went cold).
			if k.IsPromote() {
				if v.DecayPromote(pg) {
					stats.FromPromote++
					continue
				}
			}
			l.MoveToFront(pg)
		}
	}
	return stats
}

// CollectPromote isolates up to max pages from the promote lists (oldest
// first) and returns them ready for migration to a higher tier. This is
// kpromoted's selection step: everything on the promote list is a
// candidate, and all selected pages are promoted in the same run (§III-B).
// Pass max < 0 to take everything.
func (v *Vec) CollectPromote(max int) []*mem.Page {
	return v.AppendPromote(nil, max)
}

// AppendPromote is CollectPromote appending into buf, so daemons that run
// every wakeup can reuse one candidate buffer instead of allocating.
func (v *Vec) AppendPromote(buf []*mem.Page, max int) []*mem.Page {
	base := len(buf)
	for _, k := range [...]Kind{PromoteAnon, PromoteFile} {
		l := &v.lists[k]
		for !l.Empty() {
			if max >= 0 && len(buf)-base >= max {
				return buf
			}
			pg := l.Back()
			v.Isolate(pg)
			buf = append(buf, pg)
		}
	}
	return buf
}

// BalanceActive enforces the active:inactive ratio limit (√(10·n):1,
// §III-C): while an active list exceeds ratio × its inactive sibling,
// unreferenced pages from the active tail move to the inactive list —
// Fig. 4 transition (9) — and referenced ones get a second chance rotation.
// At most budget pages are examined; the number deactivated is returned.
func (v *Vec) BalanceActive(ratio float64, budget int) int {
	moved := 0
	for _, pair := range [...][2]Kind{{ActiveAnon, InactiveAnon}, {ActiveFile, InactiveFile}} {
		active, inactive := &v.lists[pair[0]], &v.lists[pair[1]]
		for budget > 0 && float64(active.Len()) > ratio*float64(inactive.Len()+1) {
			pg := active.Back()
			if pg == nil {
				break
			}
			budget--
			v.Scanned++
			if pg.TestAndClearAccessed() || pg.Flags.Has(mem.FlagReferenced) {
				// Second chance: stay active but spend the reference.
				v.spendReferenced(pg)
				active.MoveToFront(pg)
				continue
			}
			v.Deactivate(pg)
			moved++
		}
	}
	return moved
}

// DemoteCandidatesCold isolates up to max unreferenced pages from the
// inactive tails without spending any reference state: referenced pages
// are skipped, not aged. Used by repeat reclaim calls within one virtual
// instant, where no application access could have re-referenced anything
// since the last aging pass.
func (v *Vec) DemoteCandidatesCold(max int) []*mem.Page {
	return v.AppendDemoteCandidatesCold(nil, max)
}

// AppendDemoteCandidatesCold is DemoteCandidatesCold appending into buf.
func (v *Vec) AppendDemoteCandidatesCold(buf []*mem.Page, max int) []*mem.Page {
	base := len(buf)
	for _, k := range [...]Kind{InactiveAnon, InactiveFile} {
		for pg := v.lists[k].Back(); pg != nil && len(buf)-base < max; {
			prev := pg.Prev()
			v.Scanned++
			if !pg.Accessed && !pg.Flags.Has(mem.FlagReferenced) {
				v.Isolate(pg)
				buf = append(buf, pg)
			}
			pg = prev
		}
		if len(buf)-base >= max {
			break
		}
	}
	return buf
}

// DemoteCandidates scans the inactive tails for cold pages and isolates up
// to max of them for migration to a lower tier (or eviction). Pages with a
// set hardware bit or software referenced flag receive their second chance
// instead, exactly as shrink_inactive_list keeps referenced pages (§III-C).
// The scan examines at most one full pass over each inactive list.
func (v *Vec) DemoteCandidates(max int) []*mem.Page {
	return v.AppendDemoteCandidates(nil, max)
}

// AppendDemoteCandidates is DemoteCandidates appending into buf.
func (v *Vec) AppendDemoteCandidates(buf []*mem.Page, max int) []*mem.Page {
	base := len(buf)
	for _, k := range [...]Kind{InactiveAnon, InactiveFile} {
		l := &v.lists[k]
		for budget := l.Len(); budget > 0 && len(buf)-base < max; budget-- {
			pg := l.Back()
			if pg == nil {
				break
			}
			v.Scanned++
			if pg.TestAndClearAccessed() {
				// Observed unsupervised access: full aging step.
				v.MarkAccessed(pg)
				if pg.List() == l {
					l.MoveToFront(pg)
				}
				continue
			}
			if pg.Flags.Has(mem.FlagReferenced) {
				// Software-referenced: spend it, rotate.
				v.spendReferenced(pg)
				l.MoveToFront(pg)
				continue
			}
			v.Isolate(pg)
			buf = append(buf, pg)
		}
		if len(buf)-base >= max {
			break
		}
	}
	return buf
}
