package core

import (
	"reflect"
	"testing"

	"multiclock/internal/fault"
	"multiclock/internal/lru"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

func testMachine(dram, pm int, cfg Config) (*machine.Machine, *MultiClock) {
	mc := New(cfg)
	mcfg := machine.DefaultConfig()
	mcfg.Mem.DRAMNodes = []int{dram}
	mcfg.Mem.PMNodes = []int{pm}
	mcfg.OpCost = 0
	mcfg.CPUCachePages = 0
	m := machine.New(mcfg, mc)
	return m, mc
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ScanInterval != 1*sim.Second {
		t.Fatal("paper scan interval is 1s")
	}
	if cfg.ScanBatch != 1024 {
		t.Fatal("paper scan batch is 1024")
	}
	if cfg.PromoteMax >= 0 {
		t.Fatal("paper promotes all selected pages")
	}
}

func TestZeroConfigNormalized(t *testing.T) {
	mc := New(Config{})
	if mc.cfg.ScanInterval != 1*sim.Second || mc.cfg.ScanBatch != 1024 ||
		mc.cfg.DemoteRounds != 2 || mc.cfg.MinActiveRatio != 3 {
		t.Fatalf("zero config not normalized: %+v", mc.cfg)
	}
}

func TestAttachStartsDaemonPerNode(t *testing.T) {
	_, mc := testMachine(64, 256, DefaultConfig())
	if len(mc.daemons) != 2 {
		t.Fatalf("daemons = %d, want one per node", len(mc.daemons))
	}
	if mc.Name() != "multiclock" {
		t.Fatal("name")
	}
}

// pmResidents maps which of the given VPNs currently reside on the PM tier.
func pmResidents(m *machine.Machine, as *pagetable.AddressSpace, v *pagetable.VMA, max int) []pagetable.VPN {
	var out []pagetable.VPN
	as.WalkVMA(v, func(vpn pagetable.VPN, pg *mem.Page) {
		if len(out) < max && m.Mem.Tier(pg) == mem.TierPM {
			out = append(out, vpn)
		}
	})
	return out
}

// TestPromotionEndToEnd is the paper's core behaviour: pages residing in PM
// (after demotion placed them there) that become hot — bimodal
// "tier-friendly" pages, §II-A — must be promoted to DRAM by kpromoted.
func TestPromotionEndToEnd(t *testing.T) {
	m, _ := testMachine(256, 1024, DefaultConfig())
	as := m.NewSpace()

	// Allocate well beyond DRAM; demotion pushes the cold overflow to PM.
	region := as.Mmap(500, false, "data")
	for i := 0; i < 500; i++ {
		m.Access(as, region.Start+pagetable.VPN(i), false)
	}
	hotVPNs := pmResidents(m, as, region, 16)
	if len(hotVPNs) != 16 {
		t.Fatalf("setup: only %d PM residents", len(hotVPNs))
	}

	// Keep the hot set warm across many scan intervals: touch, let a scan
	// observe, repeat. Each interval the ladder advances one step, so
	// four intervals reach the promote list and the fifth migrates.
	for round := 0; round < 8; round++ {
		for _, vpn := range hotVPNs {
			m.Access(as, vpn, false)
		}
		m.Compute(1100 * sim.Millisecond)
	}

	promoted := 0
	for _, vpn := range hotVPNs {
		pg := as.Lookup(vpn)
		if pg == nil {
			t.Fatal("hot page vanished")
		}
		if m.Mem.Tier(pg) == mem.TierDRAM {
			promoted++
			// Promoted pages land on the DRAM active or promote list.
			if pg.Flags.Has(mem.FlagPromote) == pg.Flags.Has(mem.FlagActive) {
				t.Fatalf("promoted page flags wrong: %v", pg.Flags)
			}
		}
	}
	if promoted != 16 {
		t.Fatalf("promoted %d/16 hot PM pages", promoted)
	}
	if m.Mem.Counters.Promotions < 16 {
		t.Fatalf("promotion counter = %d", m.Mem.Counters.Promotions)
	}
}

// TestColdPagesStayInPM: single-touch pages must never be promoted — the
// frequency requirement that distinguishes MULTI-CLOCK from recency-only
// selection.
func TestColdPagesStayInPM(t *testing.T) {
	m, _ := testMachine(64, 512, DefaultConfig())
	as := m.NewSpace()
	filler := as.Mmap(80, false, "filler")
	for i := 0; i < 80; i++ {
		m.Access(as, filler.Start+pagetable.VPN(i), false)
	}
	cold := as.Mmap(64, false, "cold")
	var coldPages []*mem.Page
	for i := 0; i < 64; i++ {
		coldPages = append(coldPages, m.Access(as, cold.Start+pagetable.VPN(i), false))
	}
	// Touch each cold page at most once per several intervals.
	for round := 0; round < 6; round++ {
		m.Compute(3 * sim.Second)
		if round%3 == 0 {
			for i := 0; i < 64; i += 4 {
				m.Access(as, cold.Start+pagetable.VPN(i), false)
			}
		}
	}
	_ = coldPages
	if m.Mem.Counters.Promotions != 0 {
		t.Fatalf("promotions = %d, want 0 — single touches must never qualify", m.Mem.Counters.Promotions)
	}
}

// TestDemotionUnderPressure: allocating beyond DRAM must trigger watermark
// demotion of cold DRAM pages to PM rather than swaps. During the burst,
// allocations may overflow to PM births (kswapd races the allocator); by
// the next daemon wakeup the DRAM node must be back above its watermarks.
func TestDemotionUnderPressure(t *testing.T) {
	m, _ := testMachine(128, 1024, DefaultConfig())
	as := m.NewSpace()
	v := as.Mmap(400, false, "stream")
	for i := 0; i < 400; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	m.Compute(2200 * sim.Millisecond) // two daemon wakeups
	if m.Mem.Counters.Demotions == 0 {
		t.Fatal("no demotions despite DRAM oversubscription")
	}
	if m.Mem.Counters.SwapOuts != 0 {
		t.Fatalf("swapped %d pages with PM space free", m.Mem.Counters.SwapOuts)
	}
	// kswapd restores headroom up to the high watermark.
	n := m.Mem.Nodes[0]
	if n.FreeFrames() < n.WM.Low {
		t.Fatalf("DRAM free %d below low watermark %d after pressure", n.FreeFrames(), n.WM.Low)
	}
}

// TestPromotionDisplacesColdDRAM: when DRAM is full, promotions must force
// immediate demotions (§III-C) and still succeed.
func TestPromotionDisplacesColdDRAM(t *testing.T) {
	m, _ := testMachine(128, 1024, DefaultConfig())
	as := m.NewSpace()
	region := as.Mmap(400, false, "data")
	for i := 0; i < 400; i++ {
		m.Access(as, region.Start+pagetable.VPN(i), false)
	}
	demotionsBefore := m.Mem.Counters.Demotions
	// More hot PM pages than DRAM's free headroom, so promotions must
	// displace cold DRAM residents.
	hotVPNs := pmResidents(m, as, region, 96)
	if len(hotVPNs) != 96 {
		t.Fatalf("setup: %d PM residents", len(hotVPNs))
	}
	// Also keep a DRAM-resident set warm so DRAM never drains naturally:
	// promotions must displace cold DRAM pages instead.
	for round := 0; round < 10; round++ {
		for _, vpn := range hotVPNs {
			m.Access(as, vpn, false)
		}
		m.Compute(1100 * sim.Millisecond)
	}
	promoted := 0
	for _, vpn := range hotVPNs {
		pg := as.Lookup(vpn)
		if pg != nil && m.Mem.Tier(pg) == mem.TierDRAM {
			promoted++
		}
	}
	if promoted == 0 {
		t.Fatal("no hot pages promoted into a full DRAM tier")
	}
	if m.Mem.Counters.Demotions == demotionsBefore {
		t.Fatal("promotions into full DRAM did not trigger further demotions")
	}
}

// TestScanIntervalRetuning: SetScanInterval takes effect on running
// daemons (the Fig. 10 sweep depends on it).
func TestScanIntervalRetuning(t *testing.T) {
	m, mc := testMachine(64, 256, DefaultConfig())
	mc.SetScanInterval(100 * sim.Millisecond)
	runsBefore := mc.daemons[0].Runs
	m.Compute(1 * sim.Second)
	got := mc.daemons[0].Runs - runsBefore
	if got < 9 {
		t.Fatalf("daemon ran %d times in 1s at 100ms interval", got)
	}
}

func TestStopHaltsDaemons(t *testing.T) {
	m, mc := testMachine(64, 256, DefaultConfig())
	mc.Stop()
	m.Compute(10 * sim.Second)
	for _, d := range mc.daemons {
		if d.Runs != 0 {
			t.Fatal("stopped daemon ran")
		}
	}
}

// TestDRAMPromoteListDrainsToActive: on the top tier there is nowhere to
// promote; promote-list pages must return to the active list.
func TestDRAMPromoteListDrainsToActive(t *testing.T) {
	m, _ := testMachine(256, 256, DefaultConfig())
	as := m.NewSpace()
	v := as.Mmap(4, false, "hot")
	var pages []*mem.Page
	for i := 0; i < 4; i++ {
		pages = append(pages, m.Access(as, v.Start+pagetable.VPN(i), false))
	}
	// Drive them onto the DRAM promote list via supervised accesses.
	for round := 0; round < 4; round++ {
		for i := 0; i < 4; i++ {
			m.SupervisedAccess(as, v.Start+pagetable.VPN(i), false)
		}
	}
	if m.Vecs[0].Len(lru.PromoteAnon) == 0 {
		t.Fatal("setup: nothing on DRAM promote list")
	}
	m.Compute(1100 * sim.Millisecond) // one kpromoted run
	if m.Vecs[0].Len(lru.PromoteAnon) != 0 {
		t.Fatal("DRAM promote list not drained")
	}
	for _, pg := range pages {
		if m.Mem.Tier(pg) != mem.TierDRAM || !pg.Flags.Has(mem.FlagActive) {
			t.Fatal("page should be active in DRAM")
		}
	}
	if m.Mem.Counters.Promotions != 0 {
		t.Fatal("counted a promotion on the top tier")
	}
}

// TestOversubscribedMachineSwaps: when both tiers are full, MULTI-CLOCK
// falls back to swapping from the lowest tier without OOM.
func TestOversubscribedMachineSwaps(t *testing.T) {
	m, _ := testMachine(32, 32, DefaultConfig())
	as := m.NewSpace()
	v := as.Mmap(128, false, "huge")
	for i := 0; i < 128; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	if m.Mem.Counters.SwapOuts == 0 {
		t.Fatal("no swaps on a fully oversubscribed machine")
	}
	if m.Mem.Counters.OOMKills != 0 {
		t.Fatal("OOM")
	}
}

// TestWriteBiasOrdering: with WriteBias on, dirty promote-list pages are
// promoted before clean ones when DRAM headroom is scarce.
func TestWriteBiasPromotesDirtyFirst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteBias = true
	cfg.PromoteMax = 1 // force scarcity: one promotion per wakeup
	m, _ := testMachine(256, 1024, cfg)
	as := m.NewSpace()
	filler := as.Mmap(300, false, "filler")
	for i := 0; i < 300; i++ {
		m.Access(as, filler.Start+pagetable.VPN(i), false)
	}
	hot := as.Mmap(2, false, "hot")
	clean := m.Access(as, hot.Start, false)
	dirty := m.Access(as, hot.Start+1, true)
	for round := 0; round < 4; round++ {
		m.Access(as, hot.Start, false)
		m.Access(as, hot.Start+1, true)
		m.Compute(1100 * sim.Millisecond)
	}
	// Both climb the ladder together, but the dirty page must win the
	// single promotion slot first.
	if m.Mem.Tier(dirty) != mem.TierDRAM {
		t.Fatal("dirty page not promoted")
	}
	_ = clean
}

// TestDeterminism: identical runs produce identical virtual time and
// counters.
func TestDeterminism(t *testing.T) {
	run := func() (sim.Duration, mem.Counters) {
		m, _ := testMachine(128, 512, DefaultConfig())
		as := m.NewSpace()
		v := as.Mmap(300, false, "w")
		rng := sim.NewRNG(99)
		for i := 0; i < 5000; i++ {
			m.Access(as, v.Start+pagetable.VPN(rng.Intn(300)), rng.Intn(2) == 0)
			if i%100 == 0 {
				m.Compute(50 * sim.Millisecond)
			}
		}
		return m.Elapsed(), m.Mem.Counters
	}
	e1, c1 := run()
	e2, c2 := run()
	if e1 != e2 {
		t.Fatalf("elapsed differs: %v vs %v", e1, e2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("counters differ:\n%+v\n%+v", c1, c2)
	}
}

// TestFrameConservationUnderChurn: heavy promotion/demotion churn must
// never leak or duplicate frames.
func TestFrameConservationUnderChurn(t *testing.T) {
	m, _ := testMachine(64, 256, DefaultConfig())
	as := m.NewSpace()
	v := as.Mmap(200, false, "w")
	rng := sim.NewRNG(3)
	mapped := map[pagetable.VPN]bool{}
	for i := 0; i < 20000; i++ {
		vpn := v.Start + pagetable.VPN(rng.Intn(200))
		switch rng.Intn(10) {
		case 0:
			if mapped[vpn] {
				m.Unmap(as, vpn)
				delete(mapped, vpn)
			}
		default:
			m.Access(as, vpn, rng.Intn(3) == 0)
			mapped[vpn] = true
		}
		if i%500 == 0 {
			m.Compute(300 * sim.Millisecond)
		}
	}
	used := 0
	for _, n := range m.Mem.Nodes {
		used += n.UsedFrames()
	}
	// Swapped-out pages vanish from our map view only on re-access; count
	// live mappings instead.
	if used != as.Mapped() {
		t.Fatalf("frames used %d != PTEs mapped %d", used, as.Mapped())
	}
	onLists := 0
	for _, vec := range m.Vecs {
		onLists += vec.TotalEvictable() + vec.Len(lru.Unevictable)
	}
	if onLists != used {
		t.Fatalf("LRU population %d != frames used %d", onLists, used)
	}
}

// testChaosMachine builds a machine with the given fault-injection
// configuration attached.
func testChaosMachine(dram, pm int, cfg Config, fcfg fault.Config) (*machine.Machine, *MultiClock) {
	mc := New(cfg)
	mcfg := machine.DefaultConfig()
	mcfg.Mem.DRAMNodes = []int{dram}
	mcfg.Mem.PMNodes = []int{pm}
	mcfg.OpCost = 0
	mcfg.CPUCachePages = 0
	mcfg.Faults = fcfg
	m := machine.New(mcfg, mc)
	return m, mc
}

// TestPromoteRetryBackoff: when a promotion cannot migrate (here DRAM is
// pinned solid with mlocked pages), the failed page must be requeued onto
// the promote list for a bounded number of backoff retries, and only then
// dropped to the active list — never silently lost.
func TestPromoteRetryBackoff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PromoteRetryMax = 2
	cfg.PromoteBackoff = 1 * sim.Second
	m, mc := testMachine(64, 512, cfg)
	as := m.NewSpace()

	// Fill DRAM with unevictable pages so every promotion attempt fails:
	// makeRoomInDRAM cannot demote locked pages.
	pin := as.Mmap(64, false, "pin")
	pin.Locked = true
	for i := 0; i < 64; i++ {
		m.Access(as, pin.Start+pagetable.VPN(i), false)
	}
	// A hot set that lands in PM (DRAM is full) and earns promotion.
	hot := as.Mmap(32, false, "hot")
	for round := 0; round < 14; round++ {
		for i := 0; i < 32; i++ {
			m.Access(as, hot.Start+pagetable.VPN(i), false)
		}
		m.Compute(1100 * sim.Millisecond)
	}

	if mc.PromoteFails == 0 {
		t.Fatal("setup: promotions never failed despite pinned DRAM")
	}
	// A stray free frame may admit a promotion or two (watermark reserve
	// pushed one pin page to PM), but the tier as a whole must stay shut.
	if m.Mem.Counters.Promotions >= 8 {
		t.Fatalf("promoted %d pages out of a pinned-solid DRAM tier", m.Mem.Counters.Promotions)
	}
	if mc.PromoteRequeues == 0 {
		t.Fatal("failed promotions were never requeued for retry")
	}
	if mc.PromoteDrops == 0 {
		t.Fatal("retry budget never exhausted: pages must eventually drop to active")
	}
	// Every page that dropped spent its full budget first.
	if mc.PromoteRequeues < int64(cfg.PromoteRetryMax)*mc.PromoteDrops {
		t.Fatalf("requeues=%d < max(%d)*drops=%d: pages dropped early",
			mc.PromoteRequeues, cfg.PromoteRetryMax, mc.PromoteDrops)
	}
	// No hot page may vanish: still mapped, still in PM, on a list.
	for i := 0; i < 32; i++ {
		pg := as.Lookup(hot.Start + pagetable.VPN(i))
		if pg == nil {
			t.Fatalf("hot page %d vanished during retries", i)
		}
		if !pg.Flags.Has(mem.FlagLRU) || pg.Flags.Has(mem.FlagIsolated) {
			t.Fatalf("hot page %d leaked off the LRU: flags %v", i, pg.Flags)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDemoteRetrySwapFallback: under 100% pinned-migration injection,
// demotion candidates must be returned to their inactive list for the
// bounded retry budget and fall back to swap only after it is spent.
func TestDemoteRetrySwapFallback(t *testing.T) {
	fcfg := fault.Config{Seed: 42}
	fcfg.Rates[fault.MigratePinned] = 1.0
	m, mc := testChaosMachine(64, 512, DefaultConfig(), fcfg)

	// Fault injection present and retry knobs unset: Attach defaults them.
	if mc.cfg.PromoteRetryMax != 3 || mc.cfg.DemoteRetryMax != 2 {
		t.Fatalf("chaos retry defaults not applied: %+v", mc.cfg)
	}

	as := m.NewSpace()
	v := as.Mmap(300, false, "stream")
	for i := 0; i < 300; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	m.Compute(5 * sim.Second)

	if m.Mem.Counters.Demotions != 0 {
		t.Fatalf("%d demotions succeeded with pinned rate 1.0", m.Mem.Counters.Demotions)
	}
	if mc.DemoteRequeues == 0 {
		t.Fatal("failed demotions were never retried")
	}
	if mc.DemoteSwapFallbacks == 0 || m.Mem.Counters.SwapOuts == 0 {
		t.Fatalf("no swap fallback after retry exhaustion (fallbacks=%d swapouts=%d)",
			mc.DemoteSwapFallbacks, m.Mem.Counters.SwapOuts)
	}
	// Each fallback page spent its full DemoteRetryMax budget first.
	if mc.DemoteRequeues < int64(mc.cfg.DemoteRetryMax)*mc.DemoteSwapFallbacks {
		t.Fatalf("requeues=%d < max(%d)*fallbacks=%d: pages swapped early",
			mc.DemoteRequeues, mc.cfg.DemoteRetryMax, mc.DemoteSwapFallbacks)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRetryDisabledByNegativeConfig: negative retry maxima force the
// paper's original drop/swap-immediately behaviour even under injection.
func TestRetryDisabledByNegativeConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PromoteRetryMax = -1
	cfg.DemoteRetryMax = -1
	fcfg := fault.Config{Seed: 7}
	fcfg.Rates[fault.MigratePinned] = 1.0
	m, mc := testChaosMachine(64, 512, cfg, fcfg)
	if mc.retries != nil {
		t.Fatal("retry map allocated despite retries disabled")
	}
	as := m.NewSpace()
	v := as.Mmap(300, false, "stream")
	for i := 0; i < 300; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	m.Compute(3 * sim.Second)
	if mc.PromoteRequeues != 0 || mc.DemoteRequeues != 0 {
		t.Fatalf("requeues happened with retries disabled: p=%d d=%d",
			mc.PromoteRequeues, mc.DemoteRequeues)
	}
	if m.Mem.Counters.SwapOuts == 0 {
		t.Fatal("expected immediate swap fallback with retries disabled")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
