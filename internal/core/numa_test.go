package core

// NUMA coverage: the paper's testbed is a dual-socket machine where each
// socket contributes a DRAM node and (hot-plugged via DAX-KMEM) a PM node
// (§IV, §V-A); MULTI-CLOCK runs one kpromoted per node. These tests
// exercise the multi-node paths.

import (
	"testing"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

func numaMachine(dram, pm []int, cfg Config) (*machine.Machine, *MultiClock) {
	mc := New(cfg)
	mcfg := machine.DefaultConfig()
	mcfg.Mem.DRAMNodes = dram
	mcfg.Mem.PMNodes = pm
	mcfg.OpCost = 0
	mcfg.CPUCachePages = 0
	m := machine.New(mcfg, mc)
	return m, mc
}

func TestNUMATopologyConstruction(t *testing.T) {
	m, mc := numaMachine([]int{256, 256}, []int{1024, 1024}, DefaultConfig())
	if len(m.Mem.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(m.Mem.Nodes))
	}
	if len(mc.daemons) != 4 {
		t.Fatalf("kpromoted threads = %d, want one per node (§IV)", len(mc.daemons))
	}
	if got := m.Mem.TierCapacity(mem.TierDRAM); got != 512 {
		t.Fatalf("DRAM capacity %d", got)
	}
	if ids := m.Mem.TierNodes(mem.TierPM); len(ids) != 2 {
		t.Fatalf("PM nodes %v", ids)
	}
}

func TestNUMAAllocationSpillsAcrossNodes(t *testing.T) {
	m, _ := numaMachine([]int{64, 64}, []int{512}, DefaultConfig())
	as := m.NewSpace()
	v := as.Mmap(100, false, "spill")
	for i := 0; i < 100; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	// Both DRAM nodes should hold pages before any PM is used.
	if m.Mem.Nodes[0].UsedFrames() == 0 || m.Mem.Nodes[1].UsedFrames() == 0 {
		t.Fatalf("allocation did not spill across DRAM nodes: %d/%d used",
			m.Mem.Nodes[0].UsedFrames(), m.Mem.Nodes[1].UsedFrames())
	}
}

// TestNUMAPromotionFromBothPMNodes: hot pages resident on either PM node
// must be promoted, and promotions target the DRAM node with headroom.
func TestNUMAPromotionFromBothPMNodes(t *testing.T) {
	m, _ := numaMachine([]int{128, 128}, []int{512, 512}, DefaultConfig())
	as := m.NewSpace()
	v := as.Mmap(700, false, "data")
	for i := 0; i < 700; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	// Find hot candidates on each PM node.
	perNode := map[mem.NodeID][]pagetable.VPN{}
	as.WalkVMA(v, func(vpn pagetable.VPN, pg *mem.Page) {
		if m.Mem.Tier(pg) == mem.TierPM && len(perNode[pg.Node]) < 8 {
			perNode[pg.Node] = append(perNode[pg.Node], vpn)
		}
	})
	if len(perNode) < 2 {
		t.Skipf("overflow landed on %d PM nodes only", len(perNode))
	}
	var hot []pagetable.VPN
	for _, vpns := range perNode {
		hot = append(hot, vpns...)
	}
	for round := 0; round < 10; round++ {
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
		m.Compute(1100 * sim.Millisecond)
	}
	promoted := 0
	for _, vpn := range hot {
		if pg := as.Lookup(vpn); pg != nil && m.Mem.Tier(pg) == mem.TierDRAM {
			promoted++
		}
	}
	if promoted < len(hot)*3/4 {
		t.Fatalf("promoted %d/%d across PM nodes", promoted, len(hot))
	}
}

// TestNUMADemotionPerNode: pressure on one DRAM node demotes from that
// node without disturbing the other.
func TestNUMADemotionPerNode(t *testing.T) {
	m, mc := numaMachine([]int{128, 128}, []int{1024}, DefaultConfig())
	as := m.NewSpace()
	// Fill node 0 directly via the allocator, then trigger its pressure.
	for m.Mem.Nodes[0].FreeFrames() > m.Mem.Nodes[0].WM.Min {
		pg := m.Mem.AllocOn(0, false)
		if pg == nil {
			break
		}
		m.Vecs[0].Add(pg)
	}
	used1 := m.Mem.Nodes[1].UsedFrames()
	mc.Pressure(0)
	if m.Mem.Counters.Demotions == 0 {
		t.Fatal("no demotions from the pressured node")
	}
	if m.Mem.Nodes[1].UsedFrames() != used1 {
		t.Fatal("pressure on node 0 disturbed node 1")
	}
	if m.Mem.Nodes[0].FreeFrames() < m.Mem.Nodes[0].WM.High {
		t.Fatal("node 0 not restored to high watermark")
	}
	_ = as
}

// TestNUMAEndToEndThroughput: on the paper's 2+2 topology MULTI-CLOCK must
// still beat static tiering.
func TestNUMAEndToEndThroughput(t *testing.T) {
	run := func(cfg Config, static bool) float64 {
		var pol machine.Policy
		mc := New(cfg)
		pol = mc
		if static {
			pol = &staticForTest{}
		}
		mcfg := machine.DefaultConfig()
		mcfg.Mem.DRAMNodes = []int{256, 256}
		mcfg.Mem.PMNodes = []int{2048, 2048}
		mcfg.OpCost = 500 * sim.Nanosecond
		m := machine.New(mcfg, pol)
		as := m.NewSpace()
		v := as.Mmap(3000, false, "w")
		for i := 0; i < 3000; i++ {
			m.Access(as, v.Start+pagetable.VPN(i), false)
		}
		// Skewed steady state: 256 hot pages spread over the VMA. Warm up
		// long enough for the promotion ladder, then measure.
		rng := sim.NewRNG(5)
		const ops = 120000
		step := func() {
			var idx int
			if rng.Intn(10) < 8 {
				idx = rng.Intn(256) * 11 % 3000
			} else {
				idx = rng.Intn(3000)
			}
			m.Access(as, v.Start+pagetable.VPN(idx), rng.Intn(3) == 0)
			m.EndOp()
		}
		for i := 0; i < 2*ops; i++ {
			step()
		}
		start := m.Clock.Now()
		for i := 0; i < ops; i++ {
			step()
		}
		if !static {
			mc.Stop()
		}
		return float64(ops) / sim.Duration(m.Clock.Now()-start).Seconds()
	}
	cfg := DefaultConfig()
	cfg.ScanInterval = 10 * sim.Millisecond
	mcTP := run(cfg, false)
	stTP := run(cfg, true)
	if mcTP <= stTP {
		t.Fatalf("NUMA multiclock %.0f ≤ static %.0f", mcTP, stTP)
	}
}

// staticForTest avoids importing internal/policy (cycle-free minimal
// static baseline for the NUMA comparison).
type staticForTest struct{ machine.Base }

func (*staticForTest) Name() string { return "static" }
