package core

import (
	"fmt"
	"sort"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
	"multiclock/internal/snapcodec"
)

// Checkpoint serialization. The configuration (including Attach's
// deterministic retry defaults) is reproduced by the restore target's
// construction; the daemons' wakeup deadlines and adapted intervals are the
// clock section's business. What travels here is the per-page retry
// bookkeeping (sorted by page sequence — the map is indexed, never iterated),
// the per-node pressure-episode rate limiter, the policy counters, and the
// nested admission gate when one is configured.

// SnapshotState implements machine.StateSnapshotter.
func (mc *MultiClock) SnapshotState(enc *snapcodec.Encoder) error {
	enc.Bool(mc.retries != nil)
	type retryEntry struct {
		seq uint64
		st  *retryState
	}
	entries := make([]retryEntry, 0, len(mc.retries))
	for pg, st := range mc.retries {
		entries = append(entries, retryEntry{pg.Seq, st})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	enc.Int(len(entries))
	for _, e := range entries {
		enc.U64(e.seq)
		enc.U8(e.st.promoteFails)
		enc.U8(e.st.demoteFails)
		enc.I64(int64(e.st.nextTry))
	}

	ids := make([]mem.NodeID, 0, len(mc.lastDemote))
	for id := range mc.lastDemote {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	enc.Int(len(ids))
	for _, id := range ids {
		enc.I64(int64(id))
		enc.I64(int64(mc.lastDemote[id]))
	}

	for _, v := range []int64{
		mc.PromoteAttempts, mc.PromoteFails, mc.PromoteRequeues,
		mc.PromoteDrops, mc.DemoteRequeues, mc.DemoteSwapFallbacks,
	} {
		enc.I64(v)
	}
	enc.I64(int64(mc.MinIntervalSeen))

	return machine.SnapshotGate(enc, mc.cfg.Gate)
}

// RestoreState implements machine.StateSnapshotter; the policy must already
// be attached to its machine.
func (mc *MultiClock) RestoreState(dec *snapcodec.Decoder, reg *machine.PageRegistry) error {
	hasRetries := dec.Bool()
	n := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if hasRetries != (mc.retries != nil) {
		return fmt.Errorf("core: snapshot retry tracking %v, policy %v", hasRetries, mc.retries != nil)
	}
	for i := 0; i < n; i++ {
		seq := dec.U64()
		st := &retryState{
			promoteFails: dec.U8(),
			demoteFails:  dec.U8(),
			nextTry:      sim.Time(dec.I64()),
		}
		if dec.Err() != nil {
			return dec.Err()
		}
		pg, ok := reg.Live(seq)
		if !ok {
			return fmt.Errorf("core: snapshot retry state names unknown page %d", seq)
		}
		if _, dup := mc.retries[pg]; dup {
			return fmt.Errorf("core: snapshot repeats retry state for page %d", seq)
		}
		mc.retries[pg] = st
	}

	n = dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	for i := 0; i < n; i++ {
		id := mem.NodeID(dec.I64())
		t := sim.Time(dec.I64())
		if dec.Err() != nil {
			return dec.Err()
		}
		if id < 0 || int(id) >= len(mc.M.Mem.Nodes) {
			return fmt.Errorf("core: snapshot names unknown node %d", id)
		}
		mc.lastDemote[id] = t
	}

	for _, p := range []*int64{
		&mc.PromoteAttempts, &mc.PromoteFails, &mc.PromoteRequeues,
		&mc.PromoteDrops, &mc.DemoteRequeues, &mc.DemoteSwapFallbacks,
	} {
		*p = dec.I64()
	}
	mc.MinIntervalSeen = sim.Duration(dec.I64())

	return machine.RestoreGate(dec, reg, mc.cfg.Gate)
}

var _ machine.StateSnapshotter = (*MultiClock)(nil)
