package core

// Tests for kpromoted's promotion budget and the demotion rate limiter.

import (
	"testing"

	"multiclock/internal/lru"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

func TestPromoteMaxZeroMeansUnlimited(t *testing.T) {
	mc := New(Config{})
	if mc.cfg.PromoteMax != -1 {
		t.Fatalf("zero PromoteMax should normalize to promote-all, got %d", mc.cfg.PromoteMax)
	}
}

// TestPromoteBudgetKeepsSurplusOnPromoteList: with a cap of k per wakeup,
// surplus candidates remain on the promote list and are promoted by later
// wakeups rather than being dropped back to active.
func TestPromoteBudgetKeepsSurplusOnPromoteList(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScanInterval = 10 * sim.Millisecond
	cfg.PromoteMax = 4
	m, _ := testMachine(256, 1024, cfg)
	as := m.NewSpace()
	region := as.Mmap(500, false, "data")
	for i := 0; i < 500; i++ {
		m.Access(as, region.Start+pagetable.VPN(i), false)
	}
	hot := pmResidents(m, as, region, 16)
	if len(hot) != 16 {
		t.Fatalf("setup: %d PM residents", len(hot))
	}
	// Climb the ladder for all 16.
	for round := 0; round < 4; round++ {
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
		m.Compute(11 * sim.Millisecond)
	}
	// Some promoted already (4 per wakeup); the rest must be parked on
	// the promote list, not demoted to active.
	pmVec := m.Vecs[1]
	promoted := int(m.Mem.Counters.Promotions)
	parked := pmVec.Len(lru.PromoteAnon)
	if promoted == 0 {
		t.Fatal("no promotions under budget")
	}
	if promoted > 4*8 {
		t.Fatalf("budget exceeded: %d promotions", promoted)
	}
	// Keep the pages hot; within a few more wakeups everything promotes.
	for round := 0; round < 8; round++ {
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
		m.Compute(11 * sim.Millisecond)
	}
	inDRAM := 0
	for _, vpn := range hot {
		if pg := as.Lookup(vpn); pg != nil && m.Mem.Tier(pg) == mem.TierDRAM {
			inDRAM++
		}
	}
	if inDRAM != 16 {
		t.Fatalf("only %d/16 promoted after budgeted wakeups (parked was %d)", inDRAM, parked)
	}
}

// TestDemoteRateLimitSameInstant: repeat reclaim calls within one virtual
// instant must not age reference state twice — hot pages survive a
// promotion burst.
func TestDemoteRateLimitSameInstant(t *testing.T) {
	cfg := DefaultConfig()
	m, mc := testMachine(256, 1024, cfg)
	as := m.NewSpace()
	region := as.Mmap(400, false, "data")
	for i := 0; i < 400; i++ {
		m.Access(as, region.Start+pagetable.VPN(i), false)
	}
	// Exhaust DRAM's free headroom so the node is genuinely under its
	// watermarks when pressure fires.
	for m.Mem.Nodes[0].FreeFrames() > 1 {
		pg := m.Mem.AllocOn(0, true)
		if pg == nil {
			break
		}
		m.Vecs[0].Add(pg)
	}
	// Mark every DRAM page referenced (hardware bit set).
	dramVec := m.Vecs[0]
	for k := lru.Kind(0); k < lru.Unevictable; k++ {
		dramVec.List(k).Each(func(pg *mem.Page) { pg.Accessed = true })
	}
	demosBefore := m.Mem.Counters.Demotions
	// countReferenced tallies pages still holding protection (hardware
	// bit or software flag) on node 0.
	countReferenced := func() int {
		n := 0
		for k := lru.Kind(0); k < lru.Unevictable; k++ {
			dramVec.List(k).Each(func(pg *mem.Page) {
				if pg.Accessed || pg.Flags.Has(mem.FlagReferenced) {
					n++
				}
			})
		}
		return n
	}
	// One pressure episode may age and reclaim (direct-reclaim style).
	mc.Pressure(0)
	refAfterFirst := countReferenced()
	// Repeat calls at the same instant may harvest pages the first call
	// already aged to cold, but must not spend any further reference
	// state: no application access could have re-referenced anything.
	mc.Pressure(0)
	mc.Pressure(0)
	if got := countReferenced(); got < refAfterFirst {
		t.Fatalf("same-instant repeat pressure spent reference state: %d → %d", refAfterFirst, got)
	}
	// Spaced episodes are allowed to make progress again.
	m.Compute(1 * sim.Millisecond)
	mc.Pressure(0)
	m.Compute(1 * sim.Millisecond)
	mc.Pressure(0)
	if m.Mem.Counters.Demotions == demosBefore {
		t.Fatal("spaced pressure episodes made no progress")
	}
}

// TestWriteBiasOrderingUnit: with a budget of one, the dirty candidate is
// promoted before the clean one.
func TestWriteBiasOrderingUnit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScanInterval = 10 * sim.Millisecond
	cfg.WriteBias = true
	cfg.PromoteMax = 1
	m, _ := testMachine(256, 1024, cfg)
	as := m.NewSpace()
	region := as.Mmap(500, false, "data")
	for i := 0; i < 500; i++ {
		m.Access(as, region.Start+pagetable.VPN(i), false)
	}
	hot := pmResidents(m, as, region, 2)
	if len(hot) != 2 {
		t.Fatalf("setup: %d PM residents", len(hot))
	}
	cleanVPN, dirtyVPN := hot[0], hot[1]
	for round := 0; round < 4; round++ {
		m.Access(as, cleanVPN, false)
		m.Access(as, dirtyVPN, true)
		m.Compute(11 * sim.Millisecond)
	}
	dirty := as.Lookup(dirtyVPN)
	clean := as.Lookup(cleanVPN)
	if m.Mem.Tier(dirty) != mem.TierDRAM {
		t.Fatal("dirty page not promoted first")
	}
	// With budget 1/wakeup and both qualifying at the same wakeup, the
	// clean page promotes one wakeup later at the earliest; at this point
	// it may or may not have happened — no assertion beyond dirty-first.
	_ = clean
}

// TestAdaptiveIntervalReacts: under heavy promotion flow the interval
// shrinks toward the floor; once the tier quiesces it backs off toward the
// ceiling (§VII future work).
func TestAdaptiveIntervalReacts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScanInterval = 10 * sim.Millisecond
	cfg.Adaptive = true
	m, mc := testMachine(256, 1024, cfg)
	if mc.cfg.AdaptiveMin != cfg.ScanInterval/8 || mc.cfg.AdaptiveMax != cfg.ScanInterval*8 {
		t.Fatalf("adaptive bounds not derived: %+v", mc.cfg)
	}
	as := m.NewSpace()
	region := as.Mmap(500, false, "data")
	for i := 0; i < 500; i++ {
		m.Access(as, region.Start+pagetable.VPN(i), false)
	}
	hot := pmResidents(m, as, region, 64)
	if len(hot) < 32 {
		t.Fatalf("setup: %d PM residents", len(hot))
	}
	// The idle setup backs the daemon off toward its ceiling; heat the PM
	// set long enough for the slow cadence to notice the shift. The
	// promotion burst pulls the interval down transiently (MinIntervalSeen),
	// and once the burst is absorbed the daemon backs off again — both
	// halves of the §VII idea.
	for round := 0; round < 80; round++ {
		for _, vpn := range hot {
			m.Access(as, vpn, false)
		}
		m.Compute(11 * sim.Millisecond)
	}
	// The burst is one-shot, so one or two halvings happen from the
	// backed-off ceiling; what matters is that the daemon reacted at all.
	if mc.MinIntervalSeen == 0 || mc.MinIntervalSeen >= mc.cfg.AdaptiveMax {
		t.Fatalf("interval never shrank under promotion flow: min %v", mc.MinIntervalSeen)
	}
	// Quiesced (the burst is one-shot): the interval has backed off.
	pmDaemon := mc.daemons[1] // node 1 = PM
	m.Compute(500 * sim.Millisecond)
	if pmDaemon.Interval <= cfg.ScanInterval {
		t.Fatalf("interval did not back off when idle: %v", pmDaemon.Interval)
	}
	if pmDaemon.Interval > mc.cfg.AdaptiveMax {
		t.Fatalf("interval exceeded ceiling: %v", pmDaemon.Interval)
	}
}

// TestHugeDemotionSplitsOnFragmentation: a cold compound page whose
// migration to PM fails on fragmentation is split (split_huge_page) so its
// base pages can reclaim individually — the kernel's split-on-reclaim
// path.
func TestHugeDemotionSplitsOnFragmentation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScanInterval = 10 * sim.Millisecond
	m, _ := testMachine(1024, 1024, cfg)
	as := m.NewSpace()

	// Fragment PM completely: no order-9 block can ever form (alternating
	// frames stay allocated).
	pmNode := m.Mem.TierNodes(mem.TierPM)[0]
	var held []*mem.Page
	for {
		pg := m.Mem.AllocOn(pmNode, true)
		if pg == nil {
			break
		}
		held = append(held, pg)
	}
	for i := 0; i < len(held); i += 2 {
		m.Mem.Free(held[i])
	}

	// A huge allocation fills half of DRAM, then a base-page stream
	// pressures the node; the idle compound page becomes the demotion
	// candidate but cannot move wholesale into fragmented PM.
	huge := as.MmapHuge(512, "huge")
	hp := m.Access(as, huge.Start, false)
	if !hp.IsHuge() {
		t.Skip("huge fault fell back")
	}
	stream := as.Mmap(900, false, "stream")
	for round := 0; round < 6; round++ {
		for i := 0; i < 900; i++ {
			m.Access(as, stream.Start+pagetable.VPN(i), false)
		}
		m.Compute(11 * sim.Millisecond)
	}
	if m.Mem.Counters.HugeSplits == 0 {
		t.Fatal("cold huge page was never split under fragmented-PM pressure")
	}
	// After the split, base pages demote individually into the
	// fragmented PM holes.
	if m.Mem.Counters.Demotions == 0 {
		t.Fatal("no base-page demotions after the split")
	}
	// Every base page of the region is accounted for: still mapped, or
	// individually swapped out (the machine is oversubscribed, so swap is
	// expected — but only page by page, never as a 2 MiB unit).
	mapped := 0
	as.Walk(huge.Start, huge.End, func(vpn pagetable.VPN, pg *mem.Page) {
		if pg.IsHuge() {
			t.Fatal("compound mapping survived the split")
		}
		mapped++
	})
	if mapped+as.Swapped() < 512 {
		t.Fatalf("region pages lost: %d mapped + %d swapped", mapped, as.Swapped())
	}
}
