// Package core implements MULTI-CLOCK, the paper's dynamic tiering policy:
// per-node CLOCK-based page aging extended with a promote list that captures
// both recency and frequency (a page must be referenced while already
// active-referenced to qualify — i.e. recently accessed more than once), a
// kpromoted daemon that periodically migrates promote-list pages to the
// DRAM tier, and a kswapd-style demotion path that moves cold DRAM pages to
// PM under watermark pressure (paper §III, §IV).
package core

import (
	"multiclock/internal/lru"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// Config tunes MULTI-CLOCK.
type Config struct {
	// ScanInterval is kpromoted's wakeup period. The paper evaluates
	// 100 ms–60 s and selects 1 s (§V-E).
	ScanInterval sim.Duration
	// ScanBatch is the number of pages examined per wakeup; the paper
	// sets 1024 (§V-C).
	ScanBatch int
	// PromoteMax caps promotions per wakeup. Zero or negative promotes
	// every selected page, which is the paper's behaviour ("promotes all
	// the pages it selected", §III-B); positive values throttle.
	PromoteMax int
	// DemoteRounds bounds how many batch rounds one pressure episode may
	// run. Two rounds age pages (spend hardware bit, then referenced
	// flag) without forcibly evicting pages that are hot between
	// episodes; genuinely cold pages isolate on the first pass.
	DemoteRounds int
	// MinActiveRatio floors the active:inactive balance ratio. The
	// kernel's √(10·n) formula evaluates near 1 for our MiB-scale nodes,
	// but those nodes stand in for the paper's ~100 GiB tiers where the
	// ratio is ≈30; without the floor, tiny-node balancing deactivates
	// the hot set every pressure episode.
	MinActiveRatio float64
	// Adaptive enables the §VII future-work extension: each kpromoted
	// thread retunes its own interval from what its wakeups find — heavy
	// promotion flow halves the interval (the workload is shifting and
	// wants faster reaction), an idle wakeup doubles it (nothing to do,
	// stop paying scan overhead) — clamped to [AdaptiveMin, AdaptiveMax].
	Adaptive    bool
	AdaptiveMin sim.Duration
	AdaptiveMax sim.Duration
	// WriteBias, when positive, implements the §VII discussion extension:
	// a dirty page on the promote list is preferred for promotion by
	// ordering (writes to PM are the most expensive accesses). Zero keeps
	// the paper's read/write-oblivious behaviour.
	WriteBias bool

	// PromoteRetryMax bounds how many times a promote-list page whose
	// migration failed transiently (pinned page, destination allocation
	// denial) is requeued onto the promote list — with exponential backoff
	// in virtual time — before dropping to the active list for good. Zero
	// keeps the paper's behaviour (drop to active immediately, §III-C)
	// unless the machine injects faults, in which case Attach defaults it
	// to 3; negative forces the paper's behaviour even under injection.
	PromoteRetryMax int
	// PromoteBackoff is the wait before the first promotion retry; it
	// doubles per subsequent failure of the same page. Zero defaults to
	// ScanInterval.
	PromoteBackoff sim.Duration
	// DemoteRetryMax bounds how many times a demotion candidate whose
	// downward migration failed is returned to its inactive list before
	// demotion falls back to swapping it out. Zero falls back to swap
	// immediately (the pre-fault-model behaviour) unless the machine
	// injects faults, in which case Attach defaults it to 2; negative
	// forces immediate fallback.
	DemoteRetryMax int

	// Gate, when non-nil, is a promotion admission controller consulted
	// once per candidate before any migration work is spent (TierBPF-style
	// bandwidth control). A rejected candidate drops to the active list of
	// its tier exactly like an exhausted retry; it may requalify through
	// the ordinary two-touch path once the gate readmits.
	Gate machine.PromotionGate
}

// DefaultConfig returns the paper's operating point: 1 s interval, 1024
// pages per scan, unlimited promotions.
func DefaultConfig() Config {
	return Config{
		ScanInterval:   1 * sim.Second,
		ScanBatch:      1024,
		PromoteMax:     -1,
		DemoteRounds:   2,
		MinActiveRatio: 3,
	}
}

// reclaimCluster is the minimum batch one pressure episode tries to free,
// mirroring the kernel's clustered reclaim so kswapd work is amortized.
const reclaimCluster = 32

// retryState is the per-page bookkeeping behind bounded retries: how many
// times each direction of migration has transiently failed, and (for
// promotions) the virtual instant before which the page just waits on the
// promote list instead of spending another attempt.
type retryState struct {
	promoteFails uint8
	demoteFails  uint8
	nextTry      sim.Time
}

// MultiClock is the policy object. Create with New, pass to machine.New.
type MultiClock struct {
	machine.Base
	cfg     Config
	daemons []*sim.Daemon

	// retries tracks per-page transient-failure state for the bounded
	// requeue/backoff paths. Populated only when retries are enabled;
	// entries die with the page (PageFreed) or when it finally migrates
	// or falls back.
	retries map[*mem.Page]*retryState

	// lastDemote rate-limits pressure episodes to one per node per
	// virtual instant: a promotion burst would otherwise run many
	// episodes back to back with no application accesses in between to
	// re-reference hot pages, aging the whole node's reference state in
	// one tick and evicting its hot set (a single-timeline simulation
	// artifact a real kernel's concurrency doesn't have).
	lastDemote map[mem.NodeID]sim.Time

	// Stats beyond the machine counters.
	PromoteAttempts int64
	PromoteFails    int64
	// PromoteRequeues counts failed promotions requeued for retry;
	// PromoteDrops counts pages that exhausted their retries and fell to
	// the active list. DemoteRequeues/DemoteSwapFallbacks mirror them on
	// the demotion path.
	PromoteRequeues     int64
	PromoteDrops        int64
	DemoteRequeues      int64
	DemoteSwapFallbacks int64
	// MinIntervalSeen records the shortest interval the adaptive
	// extension reached (zero when never adapted downward).
	MinIntervalSeen sim.Duration

	// Reusable candidate buffers so every daemon wakeup is allocation
	// free. promoteBuf and demoteBuf must stay distinct: demoteFrom nests
	// inside kpromoted's candidate iteration (promoteIsolated →
	// makeRoomIn → demoteFrom), so one shared buffer would clobber
	// the outer loop. orderBuf serves the WriteBias reorder only.
	promoteBuf []*mem.Page
	demoteBuf  []*mem.Page
	orderBuf   []*mem.Page
}

// New returns a MULTI-CLOCK policy with the given configuration.
func New(cfg Config) *MultiClock {
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 1 * sim.Second
	}
	if cfg.ScanBatch <= 0 {
		cfg.ScanBatch = 1024
	}
	if cfg.PromoteMax <= 0 {
		cfg.PromoteMax = -1 // the paper's promote-all
	}
	if cfg.DemoteRounds <= 0 {
		cfg.DemoteRounds = 2
	}
	if cfg.MinActiveRatio <= 0 {
		cfg.MinActiveRatio = 3
	}
	if cfg.Adaptive {
		if cfg.AdaptiveMin <= 0 {
			cfg.AdaptiveMin = cfg.ScanInterval / 8
		}
		if cfg.AdaptiveMax <= 0 {
			cfg.AdaptiveMax = cfg.ScanInterval * 8
		}
	}
	return &MultiClock{cfg: cfg, lastDemote: make(map[mem.NodeID]sim.Time)}
}

// Name implements machine.Policy. A gated instance reports its admission
// controller so bake-off tables distinguish the variants.
func (mc *MultiClock) Name() string {
	if mc.cfg.Gate != nil {
		return "multiclock+" + mc.cfg.Gate.Name()
	}
	return "multiclock"
}

// Config returns the active configuration.
func (mc *MultiClock) Config() Config { return mc.cfg }

// Attach starts one kpromoted thread per node, following the kernel
// prototype's one-thread-per-node design to avoid lock contention (§IV).
func (mc *MultiClock) Attach(m *machine.Machine) {
	mc.Base.Attach(m)
	// Under fault injection, transient migration failures are expected
	// rather than exceptional, so bounded retries default on; a fault-free
	// machine keeps the paper's drop-immediately behaviour unless the
	// configuration asks otherwise.
	if m.Faults != nil {
		if mc.cfg.PromoteRetryMax == 0 {
			mc.cfg.PromoteRetryMax = 3
		}
		if mc.cfg.DemoteRetryMax == 0 {
			mc.cfg.DemoteRetryMax = 2
		}
	}
	if mc.cfg.PromoteRetryMax < 0 {
		mc.cfg.PromoteRetryMax = 0
	}
	if mc.cfg.DemoteRetryMax < 0 {
		mc.cfg.DemoteRetryMax = 0
	}
	if mc.cfg.PromoteBackoff <= 0 {
		mc.cfg.PromoteBackoff = mc.cfg.ScanInterval
	}
	if mc.cfg.PromoteRetryMax > 0 || mc.cfg.DemoteRetryMax > 0 {
		mc.retries = make(map[*mem.Page]*retryState)
	}
	if mc.cfg.Gate != nil {
		mc.cfg.Gate.Attach(m)
	}
	for _, n := range m.Mem.Nodes {
		node := n.ID
		var d *sim.Daemon
		d = m.Clock.StartDaemon("kpromoted", mc.cfg.ScanInterval, func(now sim.Time) {
			promoted := mc.kpromoted(node)
			if mc.cfg.Adaptive {
				mc.adapt(d, promoted)
			}
			m.FinishDaemonPass(d)
		})
		mc.daemons = append(mc.daemons, d)
	}
}

// PageFreed drops any retry bookkeeping for a page whose frame is being
// released, so the map never holds entries for dead pages.
func (mc *MultiClock) PageFreed(pg *mem.Page) {
	if len(mc.retries) != 0 {
		delete(mc.retries, pg)
	}
}

// adapt retunes one kpromoted thread's interval from its last wakeup's
// promotion flow (§VII future work).
func (mc *MultiClock) adapt(d *sim.Daemon, promoted int) {
	switch {
	case promoted > mc.cfg.ScanBatch/64:
		// The workload is moving pages across tiers: react faster.
		next := d.Interval / 2
		if next < mc.cfg.AdaptiveMin {
			next = mc.cfg.AdaptiveMin
		}
		d.Interval = next
		if mc.MinIntervalSeen == 0 || next < mc.MinIntervalSeen {
			mc.MinIntervalSeen = next
		}
	case promoted == 0:
		// Quiet tier: back off, saving scan overhead.
		next := d.Interval * 2
		if next > mc.cfg.AdaptiveMax {
			next = mc.cfg.AdaptiveMax
		}
		d.Interval = next
	}
}

// Stop halts all daemons (used by experiments that rebuild machines).
func (mc *MultiClock) Stop() {
	for _, d := range mc.daemons {
		d.Stop()
	}
}

// SetScanInterval retunes the wakeup period of every kpromoted thread,
// taking effect from each thread's next wakeup (used by the Fig. 10
// sensitivity sweep).
func (mc *MultiClock) SetScanInterval(d sim.Duration) {
	mc.cfg.ScanInterval = d
	for _, dm := range mc.daemons {
		dm.SetInterval(d)
	}
}

// kpromoted is one wakeup of the per-node daemon: scan the lists to update
// page states from the hardware reference bits, then migrate everything on
// the promote list to the next-higher tier (§III-B). It returns the number
// of pages promoted (consumed by the adaptive-interval extension).
func (mc *MultiClock) kpromoted(node mem.NodeID) int {
	m := mc.M
	vec := m.Vecs[node]
	stats := vec.ScanCycle(mc.cfg.ScanBatch)
	mc.ScanTax(stats)

	tier := m.Mem.Nodes[node].Tier
	candidates := vec.AppendPromote(mc.promoteBuf[:0], -1)
	mc.promoteBuf = candidates[:0]
	if m.Metrics != nil {
		m.Metrics.QueueDepth("promote_queue_depth", len(candidates), m.Clock.Now())
	}
	if tier == m.Mem.FastestTier() {
		// Top tier: nothing higher. Promote-list residents return to the
		// active list — they are simply the hottest pages where they are.
		for _, pg := range candidates {
			lru.ClearPromote(pg)
			vec.Putback(pg)
		}
		// Opportunistically keep the node healthy even without an
		// allocation trigger.
		if m.Mem.Nodes[node].UnderLow() {
			mc.demoteFrom(node, 0)
		}
		return 0
	}

	if mc.cfg.WriteBias {
		// §VII extension: promote dirty pages first so PM writes are the
		// accesses most likely to move to DRAM.
		ordered := mc.orderBuf[:0]
		for _, pg := range candidates {
			if pg.Flags.Has(mem.FlagDirty) {
				ordered = append(ordered, pg)
			}
		}
		for _, pg := range candidates {
			if !pg.Flags.Has(mem.FlagDirty) {
				ordered = append(ordered, pg)
			}
		}
		mc.orderBuf = ordered[:0]
		candidates = ordered
	}

	promoted := 0
	for _, pg := range candidates {
		if st := mc.retries[pg]; st != nil && st.nextTry > m.Clock.Now() {
			// Still backing off from an earlier transient failure: park
			// the page on the promote list without spending an attempt.
			// RequeuePromote re-arms the referenced flag so the wait
			// survives the next scan cycle's decay.
			lru.RequeuePromote(pg)
			vec.Putback(pg)
			continue
		}
		if mc.cfg.PromoteMax >= 0 && promoted >= mc.cfg.PromoteMax {
			// Budget spent: the page keeps its promote state and waits
			// for the next wakeup.
			vec.Putback(pg)
			continue
		}
		if mc.cfg.Gate != nil && !mc.cfg.Gate.Admit(pg, m.Clock.Now()) {
			// Refused by the admission gate: drop to the active list
			// without spending a migration attempt (the gate accounts the
			// rejection).
			lru.ClearPromote(pg)
			vec.Putback(pg)
			continue
		}
		mc.PromoteAttempts++
		// Promoted pages arrive in the DRAM active list: they earned
		// their heat. (Putback uses the flags, so rewrite them first.)
		lru.ClearPromote(pg)
		if mc.promoteIsolated(pg, len(candidates)) {
			promoted++
			delete(mc.retries, pg)
		} else {
			mc.PromoteFails++
			mc.retryPromote(pg)
		}
	}
	return promoted
}

// retryPromote decides where a failed promotion lands. While the page has
// retry budget it is requeued onto the promote list with exponential
// backoff in virtual time — a transiently pinned page or momentarily full
// destination should not cost the page its earned heat. Once the budget is
// exhausted it drops to the active list of its current tier, the paper's
// behaviour (§III-C).
func (mc *MultiClock) retryPromote(pg *mem.Page) {
	if mc.cfg.PromoteRetryMax > 0 {
		st := mc.retries[pg]
		if st == nil {
			st = &retryState{}
			mc.retries[pg] = st
		}
		if int(st.promoteFails) < mc.cfg.PromoteRetryMax {
			st.promoteFails++
			st.nextTry = mc.M.Clock.Now() + sim.Time(mc.cfg.PromoteBackoff<<(st.promoteFails-1))
			mc.PromoteRequeues++
			if l := mc.M.Lifecycle; l != nil {
				l.PromoteRequeued(pg, int(st.promoteFails), mc.M.Clock.Now())
			}
			lru.RequeuePromote(pg)
			mc.M.Vecs[pg.Node].Putback(pg)
			return
		}
		delete(mc.retries, pg)
		mc.PromoteDrops++
	}
	if l := mc.M.Lifecycle; l != nil {
		l.PromoteDropped(pg, mc.M.Clock.Now())
	}
	// Paper: pages that cannot migrate move to the active list of their
	// current tier (§III-C). ClearPromote already set the flags.
	mc.M.Vecs[pg.Node].Putback(pg)
}

// promoteIsolated migrates one isolated page to the tier above its current
// one, demoting cold pages from that tier first when it is under pressure
// ("promotions from the lower tier result in immediate page demotions from
// the higher tier", §III-C). demand sizes the room-making to the whole
// promotion batch.
func (mc *MultiClock) promoteIsolated(pg *mem.Page, demand int) bool {
	m := mc.M
	up, ok := m.Mem.Above(m.Mem.Tier(pg))
	if !ok {
		return false
	}
	dst := m.Mem.PickNode(up)
	if dst == mem.NoNode || m.Mem.Nodes[dst].UnderMin() {
		mc.makeRoomIn(up, demand)
		dst = m.Mem.PickNode(up)
		if dst == mem.NoNode {
			return false
		}
	}
	return m.MigrateIsolated(pg, dst)
}

// makeRoomIn demotes from every node of tier t under pressure, aiming to
// free about `demand` frames across the tier.
func (mc *MultiClock) makeRoomIn(t mem.Tier, demand int) {
	nodes := mc.M.Mem.TierNodes(t)
	perNode := demand/len(nodes) + 1
	for _, id := range nodes {
		if mc.M.Mem.Nodes[id].UnderHigh() {
			mc.demoteFrom(id, perNode)
		}
	}
}

// Pressure is the kswapd wakeup: an allocation pushed node below its low
// watermark.
func (mc *MultiClock) Pressure(node mem.NodeID) {
	mc.demoteFrom(node, 0)
}

// demoteFrom relieves pressure on one node: rebalance active/inactive by
// the √(10·n):1 rule (floored by MinActiveRatio), then migrate cold
// inactive pages down a tier — or swap them out if the node is already in
// the lowest tier (§III-C). extra raises the reclaim target beyond the
// high watermark (promotion demand).
//
// Reference state is spent at most once per virtual instant: repeat calls
// within the same instant can harvest pages that are already cold but must
// not age anything further, because no application access could have
// re-referenced a page in the meantime — without this, a promotion burst
// would strip a node's entire hot set of its protection in one tick (a
// single-timeline artifact real kernels' concurrency doesn't have).
func (mc *MultiClock) demoteFrom(node mem.NodeID, extra int) {
	m := mc.M
	n := m.Mem.Nodes[node]
	vec := m.Vecs[node]

	need := n.WM.High - n.FreeFrames() + reclaimCluster + extra
	if need > mc.cfg.ScanBatch {
		need = mc.cfg.ScanBatch
	}
	if need <= 0 || !n.UnderHigh() && extra == 0 {
		return
	}

	now := m.Clock.Now()
	candidates := mc.demoteBuf[:0]
	if mc.lastDemote[node] == now && now != 0 {
		candidates = vec.AppendDemoteCandidatesCold(candidates, need)
	} else {
		mc.lastDemote[node] = now
		ratio := lru.ActiveRatioLimit(n.Frames)
		if ratio < mc.cfg.MinActiveRatio {
			ratio = mc.cfg.MinActiveRatio
		}
		for round := 0; round < mc.cfg.DemoteRounds && len(candidates) < need; round++ {
			moved := vec.BalanceActive(ratio, mc.cfg.ScanBatch)
			m.Mem.Counters.PagesScanned += int64(moved)
			candidates = vec.AppendDemoteCandidates(candidates, need-len(candidates))
		}
	}

	lower, hasLower := m.Mem.Below(n.Tier)
	for _, pg := range candidates {
		if !hasLower {
			mc.evictIsolated(pg)
			continue
		}
		dst := m.Mem.PickNode(lower)
		if dst == mem.NoNode {
			// Lower tier full too (or durable, i.e. the swap device):
			// write back to storage instead.
			mc.evictIsolated(pg)
			continue
		}
		if !m.MigrateIsolated(pg, dst) {
			// A compound page may fail on fragmentation alone: split it
			// (split_huge_page) so its base pages reclaim individually.
			if pg.IsHuge() && pg.Space >= 0 {
				m.SplitHuge(pg)
				continue
			}
			mc.retryDemote(pg)
			continue
		}
		delete(mc.retries, pg)
	}
	mc.demoteBuf = candidates[:0]
}

// retryDemote returns a demotion candidate whose downward migration failed
// transiently to its inactive list for a bounded number of attempts; only
// after the budget is exhausted does demotion fall back to swapping the
// page out (synchronous writeback is strictly worse than a retried
// migration).
func (mc *MultiClock) retryDemote(pg *mem.Page) {
	if mc.cfg.DemoteRetryMax > 0 {
		st := mc.retries[pg]
		if st == nil {
			st = &retryState{}
			mc.retries[pg] = st
		}
		if int(st.demoteFails) < mc.cfg.DemoteRetryMax {
			st.demoteFails++
			mc.DemoteRequeues++
			if l := mc.M.Lifecycle; l != nil {
				l.DemoteRequeued(pg, int(st.demoteFails), mc.M.Clock.Now())
			}
			mc.M.Vecs[pg.Node].Putback(pg)
			return
		}
		delete(mc.retries, pg)
		mc.DemoteSwapFallbacks++
	}
	if l := mc.M.Lifecycle; l != nil {
		l.SwapFallback(pg, mc.M.Clock.Now())
	}
	mc.evictIsolated(pg)
}

// evictIsolated writes an isolated page to swap, splitting compound pages
// first so a single reclaim does not write 2 MiB synchronously.
func (mc *MultiClock) evictIsolated(pg *mem.Page) {
	if pg.IsHuge() && pg.Space >= 0 {
		mc.M.SplitHuge(pg)
		return
	}
	mc.M.SwapOut(pg)
}

// compile-time interface check
var _ machine.Policy = (*MultiClock)(nil)
