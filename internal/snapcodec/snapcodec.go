// Package snapcodec is the deterministic binary encoding the checkpoint
// layer serializes simulator state with. It is a dependency-free leaf so
// every subsystem package (mem, lru, machine, policy, fault, ...) can
// implement its own SnapshotState/RestoreState without import cycles.
//
// The format is deliberately primitive: fixed-width little-endian integers
// and length-prefixed byte strings, no varints, no framing. Equal state
// always encodes to equal bytes — section payloads double as the divergence
// auditor's hash input — and the decoder is sticky-error so restore code
// reads linearly and checks once at the end.
package snapcodec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports a read past the end of the payload.
var ErrTruncated = errors.New("snapcodec: truncated payload")

// Encoder appends fixed-width values to a growing buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded payload. The slice aliases the encoder's
// buffer; callers must not keep encoding afterwards.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Raw appends a length-prefixed byte string.
func (e *Encoder) Raw(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder reads fixed-width values from a payload. The first failed read
// latches an error; every later read returns zero values, so restore code
// can decode a whole section and check Err once.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder reads from b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Finish returns an error unless the payload was consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("snapcodec: %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b)-d.off < n {
		d.err = ErrTruncated
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean byte; any value other than 0 or 1 is an error.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = errors.New("snapcodec: invalid boolean")
		}
		return false
	}
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int64 into an int.
func (d *Decoder) Int() int { return int(d.I64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.bytes()) }

// Raw reads a length-prefixed byte string (copied, safe to retain).
func (d *Decoder) Raw() []byte { return append([]byte(nil), d.bytes()...) }

func (d *Decoder) bytes() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	return d.take(n)
}
