package snapcodec

import (
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.I64(-42)
	e.Int(1234)
	e.String("kpromoted")
	e.Raw([]byte{1, 2, 3})
	e.String("")

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip")
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := d.Int(); got != 1234 {
		t.Fatalf("Int = %d", got)
	}
	if got := d.String(); got != "kpromoted" {
		t.Fatalf("String = %q", got)
	}
	if got := d.Raw(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Raw = %v", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDeterministic(t *testing.T) {
	enc := func() []byte {
		e := NewEncoder()
		e.U64(99)
		e.String("x")
		return e.Bytes()
	}
	a, b := enc(), enc()
	if string(a) != string(b) {
		t.Fatal("equal state encoded to different bytes")
	}
}

func TestTruncation(t *testing.T) {
	e := NewEncoder()
	e.U64(5)
	e.String("hello")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.U64()
		_ = d.String()
		if err := d.Finish(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: Finish = %v, want ErrTruncated", cut, err)
		}
		// Sticky: reads after the error stay zero and do not panic.
		if d.U64() != 0 || d.String() != "" {
			t.Fatalf("cut=%d: reads after error not zero", cut)
		}
	}
}

func TestTrailingBytes(t *testing.T) {
	e := NewEncoder()
	e.U8(1)
	e.U8(2)
	d := NewDecoder(e.Bytes())
	d.U8()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish accepted trailing bytes")
	}
}

func TestInvalidBool(t *testing.T) {
	d := NewDecoder([]byte{9})
	d.Bool()
	if d.Err() == nil {
		t.Fatal("Bool accepted byte 9")
	}
}
