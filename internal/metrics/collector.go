package metrics

import (
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// Instrument names the collector populates. They are part of the export
// schema: the validator requires the histogram names on every run.
const (
	HistMigrationLatency = "migration_latency_ns"
	HistDaemonPassWork   = "daemon_pass_work_ns"
	HistPromoteQueue     = "promote_queue_depth"
	HistAccessDRAMRead   = "access_latency_dram_read_ns"
	HistAccessDRAMWrite  = "access_latency_dram_write_ns"
	HistAccessPMRead     = "access_latency_pm_read_ns"
	HistAccessPMWrite    = "access_latency_pm_write_ns"
)

// Collector adapts one machine's telemetry streams onto a Registry. It
// implements both machine.Observer (attach through the machine's observer
// registry for fault events) and machine.Telemetry (install with
// Machine.SetMetrics for latencies, migrations, daemon passes and queue
// depths). All recording is passive: no method advances virtual time.
type Collector struct {
	reg *Registry

	tierOf func(mem.NodeID) mem.Tier
	vmstat *mem.Counters
	now    func() sim.Time

	migLat     *Histogram
	passWork   *Histogram
	queueDepth *Histogram
	accessLat  [][2]*Histogram

	queueGauge *Gauge

	promotes   *Counter
	demotes    *Counter
	passes     *Counter
	minorFault *Counter
	hintFault  *Counter
}

// NewCollector builds a collector over reg, pre-resolving every instrument
// so the hot-path methods do no map lookups. Call Bind before wiring it to
// a machine.
func NewCollector(reg *Registry) *Collector {
	c := &Collector{
		reg:        reg,
		migLat:     reg.Histogram(HistMigrationLatency),
		passWork:   reg.Histogram(HistDaemonPassWork),
		queueDepth: reg.Histogram(HistPromoteQueue),
		queueGauge: reg.Gauge(HistPromoteQueue),
		promotes:   reg.Counter("promotions"),
		demotes:    reg.Counter("demotions"),
		passes:     reg.Counter("daemon_passes"),
		minorFault: reg.Counter("minor_faults"),
		hintFault:  reg.Counter("hint_faults"),
	}
	// Pre-resolve the default two-tier instruments; Bind re-sizes the table
	// to the machine's actual topology (these names coincide with the
	// topology-derived ones for any hierarchy starting dram/pm).
	c.accessLat = [][2]*Histogram{
		{reg.Histogram(HistAccessDRAMRead), reg.Histogram(HistAccessDRAMWrite)},
		{reg.Histogram(HistAccessPMRead), reg.Histogram(HistAccessPMWrite)},
	}
	return c
}

// Registry returns the collector's registry.
func (c *Collector) Registry() *Registry { return c.reg }

// Bind supplies the machine context the collector classifies events with
// (node→tier mapping, vmstat counters, clock) and returns the collector.
func (c *Collector) Bind(m *machine.Machine) *Collector {
	c.tierOf = func(id mem.NodeID) mem.Tier { return m.Mem.Nodes[id].Tier }
	c.vmstat = &m.Mem.Counters
	c.now = m.Clock.Now
	// Resolve one read/write histogram pair per tier of the machine's
	// topology ("access_latency_<tier>_read_ns"). For the default two-tier
	// hierarchy these are exactly the instruments NewCollector registered.
	tiers := m.Mem.Top.Tiers
	c.accessLat = make([][2]*Histogram, len(tiers))
	for i, ts := range tiers {
		c.accessLat[i][0] = c.reg.Histogram("access_latency_" + ts.Name + "_read_ns")
		c.accessLat[i][1] = c.reg.Histogram("access_latency_" + ts.Name + "_write_ns")
	}
	return c
}

// AccessLatency implements machine.Telemetry.
func (c *Collector) AccessLatency(tier mem.Tier, write bool, lat sim.Duration, now sim.Time) {
	w := 0
	if write {
		w = 1
	}
	if int(tier) >= len(c.accessLat) {
		return
	}
	if h := c.accessLat[tier][w]; h != nil {
		h.Observe(int64(lat))
	}
}

// Migration implements machine.Telemetry: histogram the copy cost, count
// and trace the direction.
func (c *Collector) Migration(from, to mem.NodeID, pages int, cost sim.Duration, now sim.Time) {
	c.migLat.Observe(int64(cost))
	kind := EventDemote
	if c.tierOf != nil && c.tierOf(to) < c.tierOf(from) {
		kind = EventPromote
	}
	if kind == EventPromote {
		c.promotes.Inc()
	} else {
		c.demotes.Inc()
	}
	if t := c.reg.events; t != nil {
		t.Add(Event{At: now, Kind: kind, From: int(from), To: int(to), Pages: pages})
	}
}

// DaemonPass implements machine.Telemetry.
func (c *Collector) DaemonPass(name string, work sim.Duration, now sim.Time) {
	c.passes.Inc()
	c.passWork.Observe(int64(work))
	if t := c.reg.events; t != nil {
		t.Add(Event{At: now, Kind: EventScan, From: -1, To: -1, Name: name, Work: work})
	}
}

// QueueDepth implements machine.Telemetry.
func (c *Collector) QueueDepth(name string, depth int, now sim.Time) {
	// Only the promote queue is pre-resolved today; unknown names resolve
	// through the registry so new producers keep working.
	if name == HistPromoteQueue {
		c.queueDepth.ObserveInt(depth)
		c.queueGauge.Set(int64(depth))
		return
	}
	c.reg.Histogram(name).ObserveInt(depth)
	c.reg.Gauge(name).Set(int64(depth))
}

// OnAccess implements machine.Observer. Access accounting arrives through
// AccessLatency (with cost attached), so this is a no-op.
func (c *Collector) OnAccess(pg *mem.Page, write bool, now sim.Time) {}

// OnMigrate implements machine.Observer. Migration accounting arrives
// through the Telemetry side (with cost attached), so this is a no-op.
func (c *Collector) OnMigrate(pg *mem.Page, from, to mem.NodeID, now sim.Time) {}

// OnFault implements machine.Observer: count and trace page faults.
func (c *Collector) OnFault(pg *mem.Page, hint bool, now sim.Time) {
	kind := EventFault
	if hint {
		kind = EventHintFault
		c.hintFault.Inc()
	} else {
		c.minorFault.Inc()
	}
	if t := c.reg.events; t != nil {
		t.Add(Event{At: now, Kind: kind, From: -1, To: -1, VA: pg.VA})
	}
}

// compile-time interface checks
var (
	_ machine.Observer  = (*Collector)(nil)
	_ machine.Telemetry = (*Collector)(nil)
)
