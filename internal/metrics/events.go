package metrics

import "multiclock/internal/sim"

// EventKind classifies one structured trace event.
type EventKind uint8

// The event kinds the machine and policies emit.
const (
	// EventPromote is a successful upward migration.
	EventPromote EventKind = iota
	// EventDemote is a successful downward migration.
	EventDemote
	// EventFault is a minor (first-touch) page fault.
	EventFault
	// EventHintFault is a software hint fault (poisoned-PTE trackers).
	EventHintFault
	// EventScan is one completed daemon pass.
	EventScan
	numEventKinds
)

// kindNames are the stable wire names of the event kinds.
var kindNames = [numEventKinds]string{"promote", "demote", "fault", "hint-fault", "scan"}

// String returns the stable wire name of the kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one structured trace record, stamped with virtual time. The
// auxiliary fields are kind-specific: migrations carry From/To/Pages, scans
// carry the daemon name and its pass work, faults carry the page VA.
type Event struct {
	At   sim.Time
	Kind EventKind
	// From and To are node IDs for migrations (-1 otherwise).
	From, To int
	// Pages is the frame count a migration moved.
	Pages int
	// VA is the faulting page's virtual address (faults only).
	VA uint64
	// Work is the raw daemon-side cost of a scan pass.
	Work sim.Duration
	// Name is the emitting daemon for scan events.
	Name string
}

// EventTrace is a fixed-capacity ring of the most recent events. When full,
// the oldest event is overwritten and the dropped count grows — bounded
// memory over arbitrarily long runs, like a kernel trace buffer.
type EventTrace struct {
	buf     []Event
	start   int // index of the oldest event
	n       int // live events in buf
	dropped int64
}

func newEventTrace(capacity int) *EventTrace {
	return &EventTrace{buf: make([]Event, capacity)}
}

// Add records one event, evicting the oldest when the ring is full.
func (t *EventTrace) Add(ev Event) {
	if len(t.buf) == 0 {
		t.dropped++
		return
	}
	if t.n == len(t.buf) {
		t.buf[t.start] = ev
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
		return
	}
	t.buf[(t.start+t.n)%len(t.buf)] = ev
	t.n++
}

// Len returns the number of live events.
func (t *EventTrace) Len() int { return t.n }

// Dropped returns how many events were evicted to make room.
func (t *EventTrace) Dropped() int64 { return t.dropped }

// Capacity returns the ring size.
func (t *EventTrace) Capacity() int { return len(t.buf) }

// Events returns the live events oldest-first.
func (t *EventTrace) Events() []Event {
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}
