package metrics

import (
	"fmt"

	"multiclock/internal/machine"
)

// This file defines the export sections added by the SLO/trace layer: the
// machine's node→tier topology (so trace renderers can label migration
// tracks), the injected-fault window log, and the SLO evaluation results.
// As with the lifecycle/series sections, the wire types live here so schema
// validation stays in one package; producers import metrics, never the
// reverse.

// NodeTier names one memory node's tier.
type NodeTier struct {
	Node int    `json:"node"`
	Tier string `json:"tier"`
}

// TopologyOf renders a machine's node→tier mapping as the topology section,
// sorted by node id (node ids are allocated in tier order, so this is also
// fastest-tier-first).
func TopologyOf(m *machine.Machine) []NodeTier {
	out := make([]NodeTier, len(m.Mem.Nodes))
	for i, n := range m.Mem.Nodes {
		out[i] = NodeTier{Node: int(n.ID), Tier: m.Mem.Top.Tiers[n.Tier].Name}
	}
	return out
}

// FaultWindowExport is one injected degradation interval: between StartNS
// and EndNS (virtual nanoseconds, end exclusive) the injector applied the
// named fault mode (pm_slowdown, alloc_storm).
type FaultWindowExport struct {
	Kind    string `json:"kind"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
}

// FaultsExport is the injected-fault window section of a run. Dropped
// counts windows discarded after the log's cap was reached.
type FaultsExport struct {
	Dropped int64               `json:"dropped,omitempty"`
	Windows []FaultWindowExport `json:"windows"`
}

// FaultsOf renders a machine's injected-fault window log as the faults
// section. Nil when the machine has no injector or recorded nothing, so
// fault-free runs carry no section at all.
func FaultsOf(m *machine.Machine) *FaultsExport {
	if m.Faults == nil {
		return nil
	}
	ws := m.Faults.Windows()
	dropped := m.Faults.WindowsDropped()
	if len(ws) == 0 && dropped == 0 {
		return nil
	}
	out := &FaultsExport{Dropped: dropped, Windows: make([]FaultWindowExport, len(ws))}
	for i, w := range ws {
		out.Windows[i] = FaultWindowExport{
			Kind: string(w.Kind), StartNS: int64(w.Start), EndNS: int64(w.End),
		}
	}
	return out
}

// validate checks the faults section: named, non-inverted windows in
// start-time order.
func (fe *FaultsExport) validate() error {
	if fe.Dropped < 0 {
		return fmt.Errorf("faults: negative dropped count")
	}
	prev := int64(-1)
	for i, w := range fe.Windows {
		if w.Kind == "" {
			return fmt.Errorf("faults: window %d has no kind", i)
		}
		if w.StartNS < 0 || w.EndNS <= w.StartNS {
			return fmt.Errorf("faults: window %d is empty or inverted (%d..%d)", i, w.StartNS, w.EndNS)
		}
		if w.StartNS < prev {
			return fmt.Errorf("faults: windows out of start-time order at %d", i)
		}
		prev = w.StartNS
	}
	return nil
}

// SLOAlertExport is one burn-rate alert interval: the objective's fast and
// slow burn rates both sat at or above the firing threshold for Windows
// consecutive evaluation windows spanning [StartNS, EndNS).
type SLOAlertExport struct {
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	Windows int   `json:"windows"`
	// Peak burn rates over the interval, in thousandths of the error budget
	// per budget-period (1000 = burning exactly the budget).
	PeakFastBurnMilli int64 `json:"peak_fast_burn_milli"`
	PeakSlowBurnMilli int64 `json:"peak_slow_burn_milli"`
}

// SLOObjectiveExport is one objective's evaluation: the parsed definition,
// the windowed compliance tally, the whole-run error-budget burn, and the
// alert timeline.
type SLOObjectiveExport struct {
	// Name is the objective as written in the spec (its canonical form).
	Name string `json:"name"`
	// Metric is the target histogram; QuantilePPM the quantile in parts per
	// million (990000 = p99); ThresholdNS the latency bound; WindowNS the
	// evaluation window; TargetPPM the required fraction of compliant
	// windows (999000 = 99.9%).
	Metric             string `json:"metric"`
	QuantilePPM        int64  `json:"quantile_ppm"`
	ThresholdNS        int64  `json:"threshold_ns"`
	WindowNS           int64  `json:"window_ns"`
	TargetPPM          int64  `json:"target_ppm"`
	BurnThresholdMilli int64  `json:"burn_threshold_milli"`
	// Windows is the number of evaluation windows (including the trailing
	// partial one); CompliantWindows how many met the quantile bound.
	Windows          int `json:"windows"`
	CompliantWindows int `json:"compliant_windows"`
	// TotalEvents/BadEvents tally the target metric's samples over the run
	// and how many (interpolated within buckets) exceeded the threshold.
	TotalEvents int64 `json:"total_events"`
	BadEvents   int64 `json:"bad_events"`
	// CompliancePPM is CompliantWindows/Windows in parts per million;
	// BudgetBurnMilli the whole-run error-budget consumption in thousandths
	// (1000 = the budget exactly spent). Met reports CompliancePPM ≥
	// TargetPPM.
	CompliancePPM   int64 `json:"compliance_ppm"`
	BudgetBurnMilli int64 `json:"budget_burn_milli"`
	Met             bool  `json:"met"`
	// Alerts are the merged burn-rate alert intervals, oldest first.
	Alerts []SLOAlertExport `json:"alerts,omitempty"`
}

// SLOExport is the SLO evaluation section of a run.
type SLOExport struct {
	// Spec is the canonical form of the objective spec the engine parsed.
	Spec       string               `json:"spec"`
	Objectives []SLOObjectiveExport `json:"objectives"`
}

// validate checks the slo section: a non-empty spec, well-formed objective
// definitions, tallies that reconcile, and time-ordered non-overlapping
// alert intervals.
func (se *SLOExport) validate() error {
	if se.Spec == "" {
		return fmt.Errorf("slo: empty spec")
	}
	if len(se.Objectives) == 0 {
		return fmt.Errorf("slo: no objectives")
	}
	for i, o := range se.Objectives {
		if o.Name == "" || o.Metric == "" {
			return fmt.Errorf("slo: objective %d missing name or metric", i)
		}
		if o.QuantilePPM <= 0 || o.QuantilePPM >= 1_000_000 {
			return fmt.Errorf("slo: objective %q: quantile_ppm %d outside (0, 1e6)", o.Name, o.QuantilePPM)
		}
		if o.ThresholdNS <= 0 || o.WindowNS <= 0 {
			return fmt.Errorf("slo: objective %q: non-positive threshold or window", o.Name)
		}
		if o.TargetPPM <= 0 || o.TargetPPM > 1_000_000 {
			return fmt.Errorf("slo: objective %q: target_ppm %d outside (0, 1e6]", o.Name, o.TargetPPM)
		}
		if o.BurnThresholdMilli <= 0 {
			return fmt.Errorf("slo: objective %q: non-positive burn threshold", o.Name)
		}
		if o.Windows < 0 || o.CompliantWindows < 0 || o.CompliantWindows > o.Windows {
			return fmt.Errorf("slo: objective %q: compliant windows %d outside [0, %d]",
				o.Name, o.CompliantWindows, o.Windows)
		}
		if o.TotalEvents < 0 || o.BadEvents < 0 || o.BadEvents > o.TotalEvents {
			return fmt.Errorf("slo: objective %q: bad events %d outside [0, %d]",
				o.Name, o.BadEvents, o.TotalEvents)
		}
		if o.CompliancePPM < 0 || o.CompliancePPM > 1_000_000 {
			return fmt.Errorf("slo: objective %q: compliance_ppm %d outside [0, 1e6]", o.Name, o.CompliancePPM)
		}
		if o.BudgetBurnMilli < 0 {
			return fmt.Errorf("slo: objective %q: negative budget burn", o.Name)
		}
		prevEnd := int64(-1)
		for j, a := range o.Alerts {
			if a.StartNS < 0 || a.EndNS <= a.StartNS {
				return fmt.Errorf("slo: objective %q: alert %d is empty or inverted (%d..%d)",
					o.Name, j, a.StartNS, a.EndNS)
			}
			if a.StartNS < prevEnd {
				return fmt.Errorf("slo: objective %q: alerts overlap at %d", o.Name, j)
			}
			prevEnd = a.EndNS
			if a.Windows < 1 {
				return fmt.Errorf("slo: objective %q: alert %d spans no windows", o.Name, j)
			}
			if a.PeakFastBurnMilli < o.BurnThresholdMilli || a.PeakSlowBurnMilli < o.BurnThresholdMilli {
				return fmt.Errorf("slo: objective %q: alert %d peaks below the firing threshold", o.Name, j)
			}
		}
	}
	return nil
}

// ValidateSLOSections checks the SLO-layer sections in isolation (either may
// be nil); the producers' tests use it the way lifecycle/timeseries use
// ValidateSections.
func ValidateSLOSections(se *SLOExport, fe *FaultsExport) error {
	if se != nil {
		if err := se.validate(); err != nil {
			return err
		}
	}
	if fe != nil {
		if err := fe.validate(); err != nil {
			return err
		}
	}
	return nil
}
