package metrics

import "fmt"

// This file defines the two optional per-run export sections added by the
// observability layer: per-page lifecycle span timelines (internal/lifecycle)
// and windowed time-series samples (internal/timeseries). The wire types
// live here so schema validation stays in one package; the producers import
// metrics, never the reverse.

// SpanEvent is one step of a page's walk through the Fig. 4 state machine:
// at virtual time At the page entered State on Node, because of Reason.
type SpanEvent struct {
	At     int64  `json:"at"`
	State  string `json:"state"`
	Reason string `json:"reason"`
	Node   int    `json:"node"`
}

// PageTimeline is one traced page's complete (sampled) event history,
// oldest-first. Migrations counts successful migrations, the ping-pong
// ranking key.
type PageTimeline struct {
	Space      int32       `json:"space"`
	VA         uint64      `json:"va"`
	Migrations int64       `json:"migrations"`
	Events     []SpanEvent `json:"events"`
}

// LifecycleExport is the per-page span section of a run.
type LifecycleExport struct {
	// SampleMod is the deterministic sampling modulus: a page is traced iff
	// hash(space,va) % SampleMod == 0 (1 traces everything).
	SampleMod uint64 `json:"sample_mod"`
	// MaxPages and MaxEventsPerPage are the memory bounds the tracer ran
	// with; PagesDropped / EventsDropped count what the bounds discarded.
	MaxPages         int   `json:"max_pages"`
	MaxEventsPerPage int   `json:"max_events_per_page"`
	PagesDropped     int64 `json:"pages_dropped,omitempty"`
	EventsDropped    int64 `json:"events_dropped,omitempty"`
	// Pages holds the traced timelines sorted by (space, va).
	Pages []PageTimeline `json:"pages"`
}

// NodeSample is one node's occupancy snapshot at a window boundary.
type NodeSample struct {
	Node int    `json:"node"`
	Tier string `json:"tier"`
	// Free is the node's free frames; LowDistance is free minus the low
	// watermark (negative means the node is under pressure).
	Free        int `json:"free_frames"`
	LowDistance int `json:"low_distance"`
	// Per-list populations (lru.Kind order).
	AnonInactive int `json:"anon_inactive"`
	AnonActive   int `json:"anon_active"`
	AnonPromote  int `json:"anon_promote"`
	FileInactive int `json:"file_inactive"`
	FileActive   int `json:"file_active"`
	FilePromote  int `json:"file_promote"`
	Unevictable  int `json:"unevictable"`
}

// WindowExport is one sampling window: end-of-window per-node occupancy
// plus machine-wide vmstat deltas over the window. Rates are left to
// renderers (delta ÷ window length) so the wire format stays all-integer.
type WindowExport struct {
	Index int   `json:"index"`
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`

	Nodes []NodeSample `json:"nodes"`

	ReadsDRAM    int64 `json:"reads_dram"`
	ReadsPM      int64 `json:"reads_pm"`
	WritesDRAM   int64 `json:"writes_dram"`
	WritesPM     int64 `json:"writes_pm"`
	Promotions   int64 `json:"promotions"`
	Demotions    int64 `json:"demotions"`
	MigrateFails int64 `json:"migrate_fails"`
	SwapOuts     int64 `json:"swap_outs"`
	SwapIns      int64 `json:"swap_ins"`
	PagesScanned int64 `json:"pages_scanned"`
}

// SeriesExport is the windowed time-series section of a run.
type SeriesExport struct {
	// WindowNS is the sampling period in virtual nanoseconds.
	WindowNS int64 `json:"window_ns"`
	// DroppedWindows counts windows discarded after the cap was reached.
	DroppedWindows int64          `json:"dropped_windows,omitempty"`
	Windows        []WindowExport `json:"windows"`
}

// validate checks the lifecycle section: positive bounds, (space,va)-sorted
// unique pages, and per-page time-ordered events with non-empty states and
// reasons.
func (le *LifecycleExport) validate() error {
	if le.SampleMod < 1 {
		return fmt.Errorf("lifecycle: sample_mod %d < 1", le.SampleMod)
	}
	if le.MaxPages < 1 || le.MaxEventsPerPage < 1 {
		return fmt.Errorf("lifecycle: non-positive bounds (max_pages=%d, max_events_per_page=%d)",
			le.MaxPages, le.MaxEventsPerPage)
	}
	if le.PagesDropped < 0 || le.EventsDropped < 0 {
		return fmt.Errorf("lifecycle: negative drop counts")
	}
	if len(le.Pages) > le.MaxPages {
		return fmt.Errorf("lifecycle: %d pages over max_pages %d", len(le.Pages), le.MaxPages)
	}
	for i, p := range le.Pages {
		if i > 0 {
			prev := le.Pages[i-1]
			if prev.Space > p.Space || (prev.Space == p.Space && prev.VA >= p.VA) {
				return fmt.Errorf("lifecycle: pages not sorted by unique (space, va) at index %d", i)
			}
		}
		if p.Migrations < 0 {
			return fmt.Errorf("lifecycle: page %d/%#x: negative migrations", p.Space, p.VA)
		}
		if len(p.Events) > le.MaxEventsPerPage {
			return fmt.Errorf("lifecycle: page %d/%#x: %d events over max %d",
				p.Space, p.VA, len(p.Events), le.MaxEventsPerPage)
		}
		at := int64(-1)
		for j, ev := range p.Events {
			if ev.At < at {
				return fmt.Errorf("lifecycle: page %d/%#x: events out of time order at %d", p.Space, p.VA, j)
			}
			at = ev.At
			if ev.State == "" || ev.Reason == "" {
				return fmt.Errorf("lifecycle: page %d/%#x: event %d missing state or reason", p.Space, p.VA, j)
			}
		}
	}
	return nil
}

// validate checks the series section: positive window, contiguous
// monotonically indexed windows, and non-negative deltas.
func (se *SeriesExport) validate() error {
	if se.WindowNS <= 0 {
		return fmt.Errorf("series: non-positive window_ns %d", se.WindowNS)
	}
	if se.DroppedWindows < 0 {
		return fmt.Errorf("series: negative dropped_windows")
	}
	end := int64(-1)
	for i, w := range se.Windows {
		if w.Index != i {
			return fmt.Errorf("series: window %d carries index %d", i, w.Index)
		}
		if i == 0 {
			if w.Start < 0 {
				return fmt.Errorf("series: first window starts before time zero")
			}
		} else if w.Start != end {
			return fmt.Errorf("series: window %d starts at %d, previous ended at %d", i, w.Start, end)
		}
		if w.End <= w.Start {
			return fmt.Errorf("series: window %d is empty or inverted (%d..%d)", i, w.Start, w.End)
		}
		end = w.End
		for _, d := range [...]int64{
			w.ReadsDRAM, w.ReadsPM, w.WritesDRAM, w.WritesPM, w.Promotions,
			w.Demotions, w.MigrateFails, w.SwapOuts, w.SwapIns, w.PagesScanned,
		} {
			if d < 0 {
				return fmt.Errorf("series: window %d has a negative delta", i)
			}
		}
		for j, n := range w.Nodes {
			if j > 0 && w.Nodes[j-1].Node >= n.Node {
				return fmt.Errorf("series: window %d nodes not sorted by unique id", i)
			}
			if n.Tier == "" {
				return fmt.Errorf("series: window %d node %d missing tier", i, n.Node)
			}
			if n.Free < 0 {
				return fmt.Errorf("series: window %d node %d: negative free frames", i, n.Node)
			}
		}
	}
	return nil
}

// ValidateSections checks the optional observability sections in isolation
// (either may be nil). Producers' tests use it to assert their exports are
// schema-valid without assembling a full export document.
func ValidateSections(le *LifecycleExport, se *SeriesExport) error {
	if le != nil {
		if err := le.validate(); err != nil {
			return err
		}
	}
	if se != nil {
		if err := se.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Accesses returns the window's total application memory accesses.
func (w *WindowExport) Accesses() int64 {
	return w.ReadsDRAM + w.ReadsPM + w.WritesDRAM + w.WritesPM
}

// DRAMHitRatio returns the fraction of the window's accesses served from
// DRAM (0 when the window saw no accesses).
func (w *WindowExport) DRAMHitRatio() float64 {
	total := w.Accesses()
	if total == 0 {
		return 0
	}
	return float64(w.ReadsDRAM+w.WritesDRAM) / float64(total)
}
