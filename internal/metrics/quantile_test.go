package metrics

import (
	"testing"

	"multiclock/internal/stats"
)

// quantileLevels are the levels the exporter publishes.
var quantileLevels = []float64{0.50, 0.90, 0.99, 0.999}

// lcg is a tiny deterministic generator for sample synthesis (no math/rand,
// so the fixtures below never drift across Go releases).
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

// TestQuantileInterpolationErrorBounds feeds several sample shapes through
// both the log2-bucketed Histogram and the exact internal/stats histogram,
// and bounds the interpolated estimate's error against the exact percentile.
// Two bounds are checked per (case, level):
//   - a hard structural bound: the estimate lies within the log2 bucket of
//     the exact percentile or one of its neighbours (rank definitions differ
//     by at most one sample between the two packages), clamped to [min,max];
//   - a per-case relative-error ceiling, pinned well below the ~2× worst
//     case a bucket-upper-bound estimate can reach.
//
// It also asserts the interpolated estimator is, in aggregate, no worse than
// the old conservative bucket-upper-bound estimate it replaced.
func TestQuantileInterpolationErrorBounds(t *testing.T) {
	cases := []struct {
		name    string
		samples func() []int64
		// maxRel is the allowed |est-exact| / max(exact, 1) per level.
		maxRel float64
	}{
		{
			name: "constant",
			samples: func() []int64 {
				out := make([]int64, 4096)
				for i := range out {
					out[i] = 777
				}
				return out
			},
			maxRel: 0, // min==max clamps to the exact value
		},
		{
			name: "uniform_1_to_1000",
			samples: func() []int64 {
				out := make([]int64, 1000)
				for i := range out {
					out[i] = int64(i + 1)
				}
				return out
			},
			maxRel: 0.05,
		},
		{
			name: "uniform_large",
			samples: func() []int64 {
				var r lcg = 42
				out := make([]int64, 8192)
				for i := range out {
					out[i] = int64(r.next() % 1_000_000)
				}
				return out
			},
			maxRel: 0.10,
		},
		{
			// Every sample sits on a bucket's lower edge, so the uniform
			// within-bucket assumption is maximally wrong: this is the
			// estimator's worst shape, bounded by the bucket width (~1×).
			// Odd count keeps the two packages' rank conventions aligned.
			name: "geometric",
			samples: func() []int64 {
				out := make([]int64, 1999)
				for i := range out {
					out[i] = int64(1) << (i % 20)
				}
				return out
			},
			maxRel: 1.01,
		},
		{
			name: "bimodal_latency",
			samples: func() []int64 {
				var r lcg = 7
				out := make([]int64, 10000)
				for i := range out {
					if r.next()%100 < 95 {
						out[i] = 80 + int64(r.next()%40) // fast path ~[80,120)
					} else {
						out[i] = 3000 + int64(r.next()%2000) // slow tail
					}
				}
				return out
			},
			maxRel: 0.35,
		},
		{
			// Odd count keeps the two packages' rank conventions aligned.
			name: "zeros_and_ones",
			samples: func() []int64 {
				out := make([]int64, 101)
				for i := range out {
					out[i] = int64(i % 2)
				}
				return out
			},
			maxRel: 0, // one-value buckets interpolate exactly
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			samples := tc.samples()
			var h Histogram
			var exact stats.Histogram
			exact.Reserve(len(samples))
			for _, v := range samples {
				h.Observe(v)
				exact.Add(float64(v))
			}
			var sumErrNew, sumErrOld float64
			for _, q := range quantileLevels {
				est := h.Quantile(q)
				ex := int64(exact.Percentile(q * 100))

				// Hard structural bound: est within the exact value's bucket
				// or a neighbour, clamped to the observed range.
				lo, hi := neighborhood(ex)
				if mn := h.min; lo < mn {
					lo = mn
				}
				if mx := h.max; hi > mx {
					hi = mx
				}
				if est < lo || est > hi {
					t.Errorf("q=%v: estimate %d outside bucket neighbourhood [%d, %d] of exact %d",
						q, est, lo, hi, ex)
				}

				// Per-case relative ceiling.
				den := ex
				if den < 1 {
					den = 1
				}
				rel := abs64(est-ex) / float64(den)
				if rel > tc.maxRel {
					t.Errorf("q=%v: estimate %d vs exact %d: relative error %.4f > %.4f",
						q, est, ex, rel, tc.maxRel)
				}
				sumErrNew += abs64(est - ex)

				// The estimator this replaced: the covering bucket's upper
				// bound, no clamping.
				sumErrOld += abs64(bucketMaxQuantile(&h, q) - ex)
			}
			if sumErrNew > sumErrOld {
				t.Errorf("interpolation total error %.0f exceeds old bucket-max estimator %.0f",
					sumErrNew, sumErrOld)
			}

			// Monotonicity across levels.
			prev := int64(-1)
			for _, q := range quantileLevels {
				v := h.Quantile(q)
				if v < prev {
					t.Fatalf("quantiles not monotone at q=%v", q)
				}
				prev = v
			}
		})
	}
}

// neighborhood returns the value range of v's log2 bucket widened by one
// bucket on each side.
func neighborhood(v int64) (lo, hi int64) {
	k := 0
	for u := bucketUpper(k); u < v; u = bucketUpper(k) {
		k++
	}
	if k > 0 {
		lo = bucketLower(k - 1)
	}
	hi = bucketUpper(k + 1)
	return lo, hi
}

// bucketMaxQuantile re-derives the pre-interpolation estimate: the covering
// bucket's inclusive upper bound.
func bucketMaxQuantile(h *Histogram, q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen int64
	for k, c := range h.counts {
		if c == 0 {
			continue
		}
		if seen+c > rank {
			return bucketUpper(k)
		}
		seen += c
	}
	return h.max
}

func abs64(v int64) float64 {
	if v < 0 {
		v = -v
	}
	return float64(v)
}

// TestBucketBoundsInverse pins BucketBounds as the exact inverse of the
// exported le key: for every bucket, BucketBounds(bucketUpper(k)) returns
// that bucket's [lower, upper] range.
func TestBucketBoundsInverse(t *testing.T) {
	for k := 0; k <= 64; k++ {
		le := bucketUpper(k)
		lo, hi := BucketBounds(le)
		wantLo, wantHi := bucketLower(k), bucketUpper(k)
		if k >= 63 {
			// Buckets 63 and 64 share the int64 ceiling as le; the mapping
			// resolves to bucket 63's range.
			wantLo, wantHi = bucketLower(63), bucketUpper(63)
		}
		if lo != wantLo || hi != wantHi {
			t.Fatalf("BucketBounds(%d) = [%d, %d], want [%d, %d] (bucket %d)",
				le, lo, hi, wantLo, wantHi, k)
		}
	}
	if lo, hi := BucketBounds(0); lo != 0 || hi != 0 {
		t.Fatalf("BucketBounds(0) = [%d, %d], want [0, 0]", lo, hi)
	}
}
