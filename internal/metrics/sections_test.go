package metrics

import "testing"

func validLifecycle() *LifecycleExport {
	return &LifecycleExport{
		SampleMod: 1, MaxPages: 4, MaxEventsPerPage: 8,
		Pages: []PageTimeline{
			{Space: 0, VA: 0x1000, Migrations: 1, Events: []SpanEvent{
				{At: 0, State: "inactive-unref", Reason: "birth", Node: 0},
				{At: 5, State: "inactive-ref", Reason: "access", Node: 0},
			}},
			{Space: 0, VA: 0x2000, Events: []SpanEvent{
				{At: 3, State: "inactive-unref", Reason: "birth", Node: 0},
			}},
		},
	}
}

func validSeries() *SeriesExport {
	return &SeriesExport{
		WindowNS: 1000,
		Windows: []WindowExport{
			{Index: 0, Start: 0, End: 1000, ReadsDRAM: 3, ReadsPM: 1,
				Nodes: []NodeSample{{Node: 0, Tier: "DRAM", Free: 10}, {Node: 1, Tier: "PM", Free: 20}}},
			{Index: 1, Start: 1000, End: 1500, WritesDRAM: 2,
				Nodes: []NodeSample{{Node: 0, Tier: "DRAM", Free: 9}, {Node: 1, Tier: "PM", Free: 20}}},
		},
	}
}

func TestSectionValidatorsAcceptValid(t *testing.T) {
	if err := ValidateSections(validLifecycle(), validSeries()); err != nil {
		t.Fatalf("valid sections rejected: %v", err)
	}
	if err := ValidateSections(nil, nil); err != nil {
		t.Fatalf("absent sections rejected: %v", err)
	}
}

func TestLifecycleValidatorCatches(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*LifecycleExport)
	}{
		{"zero sample_mod", func(le *LifecycleExport) { le.SampleMod = 0 }},
		{"zero max_pages", func(le *LifecycleExport) { le.MaxPages = 0 }},
		{"pages out of order", func(le *LifecycleExport) { le.Pages[0], le.Pages[1] = le.Pages[1], le.Pages[0] }},
		{"duplicate page", func(le *LifecycleExport) { le.Pages[1].VA = le.Pages[0].VA }},
		{"negative migrations", func(le *LifecycleExport) { le.Pages[0].Migrations = -1 }},
		{"events out of time order", func(le *LifecycleExport) { le.Pages[0].Events[1].At = -1 }},
		{"empty state", func(le *LifecycleExport) { le.Pages[0].Events[0].State = "" }},
		{"empty reason", func(le *LifecycleExport) { le.Pages[0].Events[0].Reason = "" }},
		{"over event cap", func(le *LifecycleExport) { le.MaxEventsPerPage = 1 }},
		{"over page cap", func(le *LifecycleExport) { le.MaxPages = 1 }},
	}
	for _, c := range cases {
		le := validLifecycle()
		c.break_(le)
		if err := ValidateSections(le, nil); err == nil {
			t.Fatalf("%s: corruption not caught", c.name)
		}
	}
}

func TestSeriesValidatorCatches(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*SeriesExport)
	}{
		{"zero window", func(se *SeriesExport) { se.WindowNS = 0 }},
		{"bad index", func(se *SeriesExport) { se.Windows[1].Index = 7 }},
		{"gap between windows", func(se *SeriesExport) { se.Windows[1].Start = 1200 }},
		{"empty window", func(se *SeriesExport) { se.Windows[1].End = se.Windows[1].Start }},
		{"negative delta", func(se *SeriesExport) { se.Windows[0].Promotions = -2 }},
		{"nodes out of order", func(se *SeriesExport) {
			w := &se.Windows[0]
			w.Nodes[0], w.Nodes[1] = w.Nodes[1], w.Nodes[0]
		}},
		{"missing tier", func(se *SeriesExport) { se.Windows[0].Nodes[0].Tier = "" }},
		{"negative free", func(se *SeriesExport) { se.Windows[0].Nodes[1].Free = -1 }},
	}
	for _, c := range cases {
		se := validSeries()
		c.break_(se)
		if err := ValidateSections(nil, se); err == nil {
			t.Fatalf("%s: corruption not caught", c.name)
		}
	}
}

func TestWindowDerivedStats(t *testing.T) {
	w := WindowExport{ReadsDRAM: 6, ReadsPM: 2, WritesDRAM: 1, WritesPM: 1}
	if w.Accesses() != 10 {
		t.Fatalf("accesses = %d, want 10", w.Accesses())
	}
	if got := w.DRAMHitRatio(); got != 0.7 {
		t.Fatalf("dram hit = %v, want 0.7", got)
	}
	var empty WindowExport
	if empty.DRAMHitRatio() != 0 {
		t.Fatal("empty window hit ratio must be 0")
	}
}
