// Package metrics is the virtual-clock-native observability layer: a
// per-machine registry of counters, gauges and log-bucketed histograms, a
// ring-buffered structured event trace stamped with virtual time, and
// deterministic JSON/CSV exporters. It exists to regenerate the paper's
// telemetry-heavy evaluation (promotion volumes over time, daemon overhead
// vs. scan period, access heatmaps) from a single instrumented run.
//
// Everything here is passive: recording a sample never advances the virtual
// clock or charges tax, so an instrumented run is bit-for-bit identical to
// an uninstrumented one on the simulation timeline — the same no-op
// discipline the fault-injection layer established. A registry is
// single-threaded like the machine it observes; the Pool coordinates many
// registries across concurrently simulated machines.
package metrics

import (
	"math/bits"
	"sort"
)

// Registry holds one machine's metric instruments, keyed by name. Handles
// are get-or-create: resolving the same name twice returns the same
// instrument, so producers need no registration ceremony.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	events   *EventTrace // nil when event tracing is disabled
}

// NewRegistry creates an empty registry. traceEvents sizes the structured
// event ring buffer; zero or negative disables event tracing entirely.
func NewRegistry(traceEvents int) *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	if traceEvents > 0 {
		r.events = newEventTrace(traceEvents)
	}
	return r
}

// Counter returns the counter with the given name, creating it at zero.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it at zero.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it empty.
func (r *Registry) Histogram(name string) *Histogram {
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Events returns the event trace, or nil when tracing is disabled.
func (r *Registry) Events() *EventTrace { return r.events }

// sortedNames returns map keys in lexical order (deterministic export).
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Counter is a monotonically increasing event count.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n (negative n panics: counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.v += n
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous level (queue depth, free frames). It remembers
// the last value set and the maximum ever seen.
type Gauge struct {
	last, max int64
	any       bool
}

// Set records the current level.
func (g *Gauge) Set(v int64) {
	g.last = v
	if !g.any || v > g.max {
		g.max = v
	}
	g.any = true
}

// Last returns the most recently set value.
func (g *Gauge) Last() int64 { return g.last }

// Max returns the largest value ever set.
func (g *Gauge) Max() int64 { return g.max }

// Histogram accumulates non-negative int64 samples (virtual-time durations
// in nanoseconds, queue depths) into logarithmic buckets: bucket k counts
// samples in [2^(k-1), 2^k-1], with bucket 0 counting exact zeros. Constant
// space, O(1) insert, and deterministic export — the shape the daemon-pass
// and migration-latency distributions need without keeping every sample.
type Histogram struct {
	counts [65]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// Observe records one sample. Negative samples clamp to zero (virtual-time
// durations are never negative; clamping keeps the exporter total-ordered).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// ObserveInt records an int sample.
func (h *Histogram) ObserveInt(v int) { h.Observe(int64(v)) }

// N returns the sample count.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the sample total.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// bucketUpper returns the inclusive upper bound of bucket k.
func bucketUpper(k int) int64 {
	if k == 0 {
		return 0
	}
	if k >= 63 {
		return int64(^uint64(0) >> 1) // 2^63-1: the int64 ceiling
	}
	return (int64(1) << k) - 1
}

// bucketLower returns the inclusive lower bound of bucket k.
func bucketLower(k int) int64 {
	if k <= 0 {
		return 0
	}
	return int64(1) << (k - 1)
}

// BucketBounds returns the inclusive [lower, upper] value range of exported
// bucket upper-bound le (the wire-format key): the log2 bucket whose upper
// bound is le. Consumers that re-derive within-bucket statistics from an
// export (the SLO engine, quantile re-estimation) share this one mapping.
func BucketBounds(le int64) (lo, hi int64) {
	if le <= 0 {
		return 0, 0
	}
	return le/2 + 1, le
}

// Counts returns a copy of the per-bucket sample counts, indexed by log2
// bucket (bucketUpper gives each index's upper bound). The SLO engine diffs
// successive snapshots to recover per-window distributions.
func (h *Histogram) Counts() [65]int64 { return h.counts }

// BucketRange returns the inclusive [lower, upper] value range of bucket k,
// the index into Counts.
func BucketRange(k int) (lo, hi int64) { return bucketLower(k), bucketUpper(k) }

// Quantile estimates the q-th quantile (0–1) from the buckets with linear
// interpolation inside the covering bucket (samples assumed uniform within
// a bucket's value range), clamped to the observed [min, max]. Returns 0
// with no samples. The estimate is never below the bucket's lower bound nor
// above its upper bound, so the error is bounded by the bucket width.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	// The extreme order statistics are tracked exactly; return them rather
	// than interpolating (so Quantile(0) == min and Quantile(1) == max).
	if rank <= 0 {
		return h.min
	}
	if rank >= h.n-1 {
		return h.max
	}
	var seen int64
	for k, c := range h.counts {
		if c == 0 {
			continue
		}
		if seen+c > rank {
			v := interpolate(bucketLower(k), bucketUpper(k), rank-seen, c)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		seen += c
	}
	return h.max
}

// interpolate places the pos-th of c samples (0-based) uniformly on the
// inclusive value range [lo, hi]: sample pos sits at the midpoint of its
// 1/c slice of the range. All-integer, so equal inputs give equal outputs
// on every platform.
func interpolate(lo, hi, pos, c int64) int64 {
	if c <= 1 || hi <= lo {
		return lo + (hi-lo)/2
	}
	return lo + ((hi-lo)*(2*pos+1))/(2*c)
}
