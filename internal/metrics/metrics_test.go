package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGaugeTracksLastAndMax(t *testing.T) {
	var g Gauge
	for _, v := range []int64{3, 9, 2} {
		g.Set(v)
	}
	if g.Last() != 2 || g.Max() != 9 {
		t.Fatalf("gauge last=%d max=%d, want 2/9", g.Last(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 8, -5} {
		h.Observe(v)
	}
	if h.N() != 6 || h.Sum() != 14 || h.min != 0 || h.max != 8 {
		t.Fatalf("n=%d sum=%d min=%d max=%d", h.N(), h.Sum(), h.min, h.max)
	}
	// -5 clamps to 0, so bucket 0 (exact zeros) holds two samples; 1 is in
	// bucket 1, {2,3} in bucket 2, 8 in bucket 4.
	want := map[int]int64{0: 2, 1: 1, 2: 2, 4: 1}
	for k, c := range h.counts {
		if c != want[k] {
			t.Fatalf("bucket %d = %d, want %d", k, c, want[k])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(100) // bucket 7: [64,127]
	}
	h.Observe(100000) // lone outlier
	// The p50 interpolates inside bucket 7 and clamps to the observed min,
	// which here recovers the exact sample value.
	if q := h.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %d, want 100 (interpolated, min-clamped)", q)
	}
	if q := h.Quantile(1); q != h.max {
		t.Fatalf("p100 = %d, want max %d", q, h.max)
	}
	if h.Quantile(0.5) > h.Quantile(0.999) {
		t.Fatal("quantiles not monotone")
	}
}

// TestHistogramBucketBoundaries pins the log2 bucketing rule at every edge:
// zero, one, and each power of two with its neighbours. Bucket k holds
// [2^(k-1), 2^k-1], so 2^k-1 is the last value of bucket k and 2^k the first
// of bucket k+1 — the exported LE bound must match exactly.
func TestHistogramBucketBoundaries(t *testing.T) {
	bucketOf := func(v int64) int {
		var h Histogram
		h.Observe(v)
		for k, c := range h.counts {
			if c != 0 {
				return k
			}
		}
		t.Fatalf("sample %d landed in no bucket", v)
		return -1
	}
	type edge struct {
		v      int64
		bucket int
	}
	cases := []edge{{0, 0}, {1, 1}}
	for k := uint(1); k <= 62; k++ {
		p := int64(1) << k
		cases = append(cases,
			edge{p - 1, int(k)},     // last value of bucket k
			edge{p, int(k) + 1},     // first value of bucket k+1
			edge{p + 1, int(k) + 1}, // still bucket k+1
		)
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Fatalf("Observe(%d) landed in bucket %d, want %d", c.v, got, c.bucket)
		}
		// The bucket's exported upper bound must cover the value…
		if ub := bucketUpper(c.bucket); ub < c.v {
			t.Fatalf("bucket %d upper bound %d < sample %d", c.bucket, ub, c.v)
		}
		// …and the previous bucket's must not.
		if c.bucket > 0 {
			if lb := bucketUpper(c.bucket - 1); lb >= c.v {
				t.Fatalf("bucket %d lower edge: previous bound %d >= sample %d", c.bucket, lb, c.v)
			}
		}
	}
}

func TestBucketUpperCaps(t *testing.T) {
	if bucketUpper(0) != 0 || bucketUpper(1) != 1 || bucketUpper(3) != 7 {
		t.Fatal("small bucket bounds")
	}
	if bucketUpper(64) != int64(^uint64(0)>>1) {
		t.Fatal("top bucket must cap at the int64 ceiling")
	}
}

func TestEventTraceRing(t *testing.T) {
	tr := newEventTrace(3)
	for i := 0; i < 5; i++ {
		tr.Add(Event{Pages: i})
	}
	if tr.Len() != 3 || tr.Dropped() != 2 || tr.Capacity() != 3 {
		t.Fatalf("len=%d dropped=%d cap=%d", tr.Len(), tr.Dropped(), tr.Capacity())
	}
	evs := tr.Events()
	for i, want := range []int{2, 3, 4} {
		if evs[i].Pages != want {
			t.Fatalf("event %d = %d, want %d (oldest-first)", i, evs[i].Pages, want)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry(0)
	if r.Counter("x") != r.Counter("x") || r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name must resolve to the same instrument")
	}
	if r.Events() != nil {
		t.Fatal("traceEvents=0 must disable the event ring")
	}
}

// sampleRun builds a schema-complete run through the real collector.
func sampleRun(label string, traceEvents int) RunExport {
	c := NewCollector(NewRegistry(traceEvents))
	c.Migration(1, 0, 1, 2000, 10)
	c.DaemonPass("kpromoted", 300, 20)
	c.QueueDepth(HistPromoteQueue, 4, 20)
	c.AccessLatency(0, false, 100, 30)
	return c.Run(label)
}

func TestExportJSONDeterministicAndValid(t *testing.T) {
	b1, err := ExportJSON(sampleRun("b", 8), sampleRun("a", 8))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ExportJSON(sampleRun("a", 8), sampleRun("b", 8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("export bytes depend on run order")
	}
	ex, err := ReadExport(b1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Runs) != 2 || ex.Runs[0].Label != "a" {
		t.Fatalf("runs = %+v", ex.Runs)
	}
	if ex.Runs[0].Trace == nil || len(ex.Runs[0].Trace.Events) != 2 {
		t.Fatal("trace events missing from export")
	}
}

func TestValidateRejectsCorruptDocuments(t *testing.T) {
	base := func() *Export {
		return &Export{Version: ExportVersion, Runs: []RunExport{sampleRun("a", 0)}}
	}
	cases := []struct {
		name  string
		wreck func(*Export)
	}{
		{"bad version", func(ex *Export) { ex.Version = 99 }},
		{"empty label", func(ex *Export) { ex.Runs[0].Label = "" }},
		{"bucket mismatch", func(ex *Export) { ex.Runs[0].Histograms[0].N += 3 }},
		{"missing required histogram", func(ex *Export) { ex.Runs[0].Histograms = ex.Runs[0].Histograms[:1] }},
		{"duplicate run", func(ex *Export) { ex.Runs = append(ex.Runs, ex.Runs[0]) }},
	}
	for _, tc := range cases {
		ex := base()
		tc.wreck(ex)
		if err := ex.Validate(); err == nil {
			t.Fatalf("%s: validation passed", tc.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("pristine document failed validation: %v", err)
	}
}

func TestExportCSV(t *testing.T) {
	csv := ExportCSV(sampleRun("a", 0))
	if !strings.HasPrefix(csv, "label,histogram,le,count,n,sum\n") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "a,"+HistMigrationLatency+",") {
		t.Fatalf("csv missing migration histogram:\n%s", csv)
	}
}

func TestPoolRejectsDuplicateLabels(t *testing.T) {
	p := NewPool(0)
	p.Collector("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label did not panic")
		}
	}()
	p.Collector("x")
}

func TestPoolExportSortsLabels(t *testing.T) {
	p := NewPool(0)
	for _, l := range []string{"z", "a", "m"} {
		c := p.Collector(l)
		c.Migration(1, 0, 1, 100, 1)
		c.DaemonPass("d", 10, 2)
	}
	runs := p.Runs()
	if len(runs) != 3 || runs[0].Label != "a" || runs[2].Label != "z" {
		t.Fatalf("pool runs out of order: %+v", runs)
	}
	if _, err := p.ExportJSON(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("pool len = %d", p.Len())
	}
}
