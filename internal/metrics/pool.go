package metrics

import (
	"fmt"
	"sync"
)

// Pool coordinates per-machine collectors across concurrently simulated
// machines (the benchmark runner fans cells out to goroutines). Each cell
// claims a uniquely labeled collector; the export sorts by label, so the
// file's bytes do not depend on goroutine scheduling.
type Pool struct {
	mu          sync.Mutex
	traceEvents int
	collectors  map[string]*Collector
	decorators  map[string][]func(*RunExport)
}

// NewPool creates a pool whose collectors each get an event ring of
// traceEvents entries (zero or negative disables event tracing).
func NewPool(traceEvents int) *Pool {
	return &Pool{traceEvents: traceEvents, collectors: make(map[string]*Collector)}
}

// Collector creates and returns the collector for label. Labels must be
// unique: a duplicate means two cells would interleave samples on one
// single-threaded registry, so it panics rather than corrupt data.
func (p *Pool) Collector(label string) *Collector {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.collectors[label]; ok {
		panic(fmt.Sprintf("metrics: duplicate pool label %q", label))
	}
	c := NewCollector(NewRegistry(p.traceEvents))
	p.collectors[label] = c
	return c
}

// Len returns how many collectors have been claimed.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.collectors)
}

// Decorate registers a function that amends label's run at snapshot time
// (Runs). The observability layers use it to attach their export sections
// lazily — a cell registers the decorator while it owns the machine, and
// the tracer/sampler is read only after the machine has quiesced.
func (p *Pool) Decorate(label string, fn func(*RunExport)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.collectors[label]; !ok {
		panic(fmt.Sprintf("metrics: Decorate of unclaimed pool label %q", label))
	}
	if p.decorators == nil {
		p.decorators = make(map[string][]func(*RunExport))
	}
	p.decorators[label] = append(p.decorators[label], fn)
}

// Runs snapshots every collector as a labeled run, sorted by label.
func (p *Pool) Runs() []RunExport {
	p.mu.Lock()
	defer p.mu.Unlock()
	runs := make([]RunExport, 0, len(p.collectors))
	for _, label := range sortedNames(p.collectors) {
		run := p.collectors[label].Run(label)
		for _, fn := range p.decorators[label] {
			fn(&run)
		}
		runs = append(runs, run)
	}
	return runs
}

// ExportJSON renders every collector as one canonical JSON document.
func (p *Pool) ExportJSON() ([]byte, error) {
	return ExportJSON(p.Runs()...)
}
