package metrics

import (
	"fmt"
	"sync"
)

// Pool coordinates per-machine collectors across concurrently simulated
// machines (the benchmark runner fans cells out to goroutines). Each cell
// claims a uniquely labeled collector; the export sorts by label, so the
// file's bytes do not depend on goroutine scheduling.
type Pool struct {
	mu          sync.Mutex
	traceEvents int
	collectors  map[string]*Collector
}

// NewPool creates a pool whose collectors each get an event ring of
// traceEvents entries (zero or negative disables event tracing).
func NewPool(traceEvents int) *Pool {
	return &Pool{traceEvents: traceEvents, collectors: make(map[string]*Collector)}
}

// Collector creates and returns the collector for label. Labels must be
// unique: a duplicate means two cells would interleave samples on one
// single-threaded registry, so it panics rather than corrupt data.
func (p *Pool) Collector(label string) *Collector {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.collectors[label]; ok {
		panic(fmt.Sprintf("metrics: duplicate pool label %q", label))
	}
	c := NewCollector(NewRegistry(p.traceEvents))
	p.collectors[label] = c
	return c
}

// Len returns how many collectors have been claimed.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.collectors)
}

// Runs snapshots every collector as a labeled run, sorted by label.
func (p *Pool) Runs() []RunExport {
	p.mu.Lock()
	defer p.mu.Unlock()
	runs := make([]RunExport, 0, len(p.collectors))
	for _, label := range sortedNames(p.collectors) {
		runs = append(runs, p.collectors[label].Run(label))
	}
	return runs
}

// ExportJSON renders every collector as one canonical JSON document.
func (p *Pool) ExportJSON() ([]byte, error) {
	return ExportJSON(p.Runs()...)
}
