package metrics

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ExportVersion is the schema version of the JSON export.
const ExportVersion = 1

// Export is the top-level JSON document: one file carries any number of
// labeled runs (one per simulated machine), sorted by label. All fields are
// integers or strings, so serialization is byte-deterministic.
type Export struct {
	Version int         `json:"version"`
	Runs    []RunExport `json:"runs"`
}

// RunExport is one machine's telemetry.
type RunExport struct {
	// Label identifies the run ("mcsim/multiclock", "fig10/nimble@10ms").
	Label string `json:"label"`
	// Now is the machine's virtual clock at export, in nanoseconds.
	Now int64 `json:"virtual_now_ns"`
	// Counters, Gauges and Histograms are the registry's instruments,
	// sorted by name. Vmstat is the machine's memory-system event counters
	// in their fixed declaration order.
	Counters   []NamedValue  `json:"counters"`
	Vmstat     []NamedValue  `json:"vmstat,omitempty"`
	Gauges     []GaugeExport `json:"gauges"`
	Histograms []HistExport  `json:"histograms"`
	// Trace is the structured event ring, oldest-first; omitted when event
	// tracing was disabled.
	Trace *TraceExport `json:"trace,omitempty"`
	// Series is the windowed time-series section (internal/timeseries);
	// omitted when sampling was disabled.
	Series *SeriesExport `json:"series,omitempty"`
	// Lifecycle is the per-page span section (internal/lifecycle); omitted
	// when span tracing was disabled.
	Lifecycle *LifecycleExport `json:"lifecycle,omitempty"`
	// Topology names the machine's memory nodes and their tiers; only
	// populated when a consumer needs node→tier resolution (the Perfetto
	// trace exporter), so pre-existing exports are byte-unchanged.
	Topology []NodeTier `json:"topology,omitempty"`
	// Faults is the injected-fault window log (internal/fault); omitted
	// unless window logging was enabled for trace export.
	Faults *FaultsExport `json:"faults,omitempty"`
	// SLO is the service-level-objective evaluation section (internal/slo);
	// omitted when no SLO spec was given.
	SLO *SLOExport `json:"slo,omitempty"`
}

// NamedValue is one counter.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeExport is one gauge's final and peak level.
type GaugeExport struct {
	Name string `json:"name"`
	Last int64  `json:"last"`
	Max  int64  `json:"max"`
}

// Bucket is one occupied histogram bucket: Count samples at values ≤ LE
// (and greater than the previous bucket's LE).
type Bucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistExport is one histogram. P50/P99/P999 are within-bucket linearly
// interpolated quantile estimates (Histogram.Quantile); the bucket list
// remains the exact record, so consumers preferring the old conservative
// upper-bound estimate can still derive it.
type HistExport struct {
	Name    string   `json:"name"`
	N       int64    `json:"n"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50"`
	P99     int64    `json:"p99"`
	P999    int64    `json:"p999"`
	Buckets []Bucket `json:"buckets"`
}

// TraceExport is the event ring.
type TraceExport struct {
	Capacity int           `json:"capacity"`
	Dropped  int64         `json:"dropped"`
	Events   []EventExport `json:"events"`
}

// EventExport is one trace event on the wire.
type EventExport struct {
	At    int64  `json:"at"`
	Kind  string `json:"kind"`
	From  int    `json:"from,omitempty"`
	To    int    `json:"to,omitempty"`
	Pages int    `json:"pages,omitempty"`
	VA    uint64 `json:"va,omitempty"`
	Work  int64  `json:"work,omitempty"`
	Name  string `json:"name,omitempty"`
}

// Run snapshots the collector's registry (and, when bound, the machine's
// vmstat counters and clock) as one labeled run.
func (c *Collector) Run(label string) RunExport {
	r := c.reg
	out := RunExport{Label: label}
	if c.now != nil {
		out.Now = int64(c.now())
	}
	for _, name := range sortedNames(r.counters) {
		out.Counters = append(out.Counters, NamedValue{Name: name, Value: r.counters[name].Value()})
	}
	if c.vmstat != nil {
		c.vmstat.Each(func(name string, v int64) {
			out.Vmstat = append(out.Vmstat, NamedValue{Name: name, Value: v})
		})
	}
	for _, name := range sortedNames(r.gauges) {
		g := r.gauges[name]
		out.Gauges = append(out.Gauges, GaugeExport{Name: name, Last: g.Last(), Max: g.Max()})
	}
	for _, name := range sortedNames(r.hists) {
		h := r.hists[name]
		he := HistExport{
			Name: name, N: h.n, Sum: h.sum, Min: h.min, Max: h.max,
			P50: h.Quantile(0.50), P99: h.Quantile(0.99), P999: h.Quantile(0.999),
		}
		for k, cnt := range h.counts {
			if cnt > 0 {
				he.Buckets = append(he.Buckets, Bucket{LE: bucketUpper(k), Count: cnt})
			}
		}
		out.Histograms = append(out.Histograms, he)
	}
	if t := r.events; t != nil {
		te := &TraceExport{Capacity: t.Capacity(), Dropped: t.Dropped()}
		for _, ev := range t.Events() {
			te.Events = append(te.Events, EventExport{
				At: int64(ev.At), Kind: ev.Kind.String(),
				From: ev.From, To: ev.To, Pages: ev.Pages,
				VA: ev.VA, Work: int64(ev.Work), Name: ev.Name,
			})
		}
		out.Trace = te
	}
	return out
}

// ExportJSON renders the runs as the canonical indented JSON document,
// sorted by label. Equal telemetry yields identical bytes.
func ExportJSON(runs ...RunExport) ([]byte, error) {
	sorted := append([]RunExport(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
	b, err := json.MarshalIndent(Export{Version: ExportVersion, Runs: sorted}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ExportCSV renders the runs' histograms as a flat CSV (label, histogram,
// bucket upper bound, count, plus summary rows) for external plotting.
func ExportCSV(runs ...RunExport) string {
	sorted := append([]RunExport(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
	var b strings.Builder
	b.WriteString("label,histogram,le,count,n,sum\n")
	for _, run := range sorted {
		for _, h := range run.Histograms {
			for _, bk := range h.Buckets {
				fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d\n", run.Label, h.Name, bk.LE, bk.Count, h.N, h.Sum)
			}
		}
	}
	return b.String()
}

// ParseError reports an export document that is not valid JSON — truncated,
// garbage, or carrying a mistyped field. Offset is the byte position the
// decoder reported (for a truncated file, the end of the data), or -1 when
// the underlying error carries none.
type ParseError struct {
	Offset int64
	Err    error
}

func (e *ParseError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("export is not valid JSON at byte offset %d: %v", e.Offset, e.Err)
	}
	return fmt.Sprintf("export is not valid JSON: %v", e.Err)
}

// Unwrap exposes the decoder's error for errors.Is/As.
func (e *ParseError) Unwrap() error { return e.Err }

// ReadExport parses and schema-checks an export document. Syntactically
// invalid input fails with a *ParseError carrying the byte offset; a
// well-formed document that violates the schema fails with Validate's error.
func ReadExport(data []byte) (*Export, error) {
	var ex Export
	if err := json.Unmarshal(data, &ex); err != nil {
		off := int64(-1)
		var syn *json.SyntaxError
		var typ *json.UnmarshalTypeError
		switch {
		case errors.As(err, &syn):
			off = syn.Offset
		case errors.As(err, &typ):
			off = typ.Offset
		}
		return nil, &ParseError{Offset: off, Err: err}
	}
	if err := ex.Validate(); err != nil {
		return nil, err
	}
	return &ex, nil
}

// requiredHistograms must exist (possibly empty) on every run: the
// evaluation's two headline distributions.
var requiredHistograms = []string{HistMigrationLatency, HistDaemonPassWork}

// Validate checks the document against the schema: supported version,
// label-sorted unique runs, name-sorted instruments, bucket counts that
// reconcile with sample counts, time-ordered events within capacity, and
// the presence of the required histograms.
func (ex *Export) Validate() error {
	if ex.Version != ExportVersion {
		return fmt.Errorf("metrics: unsupported export version %d (want %d)", ex.Version, ExportVersion)
	}
	for i, run := range ex.Runs {
		if run.Label == "" {
			return fmt.Errorf("metrics: run %d has an empty label", i)
		}
		if i > 0 && ex.Runs[i-1].Label >= run.Label {
			return fmt.Errorf("metrics: runs not sorted by unique label at %q", run.Label)
		}
		if run.Now < 0 {
			return fmt.Errorf("metrics: run %q: negative virtual_now_ns", run.Label)
		}
		if err := run.validate(); err != nil {
			return fmt.Errorf("metrics: run %q: %w", run.Label, err)
		}
	}
	return nil
}

func (run *RunExport) validate() error {
	for i, c := range run.Counters {
		if c.Name == "" || (i > 0 && run.Counters[i-1].Name >= c.Name) {
			return fmt.Errorf("counters not sorted by unique non-empty name at %d", i)
		}
		if c.Value < 0 {
			return fmt.Errorf("counter %q is negative", c.Name)
		}
	}
	for i, g := range run.Gauges {
		if g.Name == "" || (i > 0 && run.Gauges[i-1].Name >= g.Name) {
			return fmt.Errorf("gauges not sorted by unique non-empty name at %d", i)
		}
		if g.Last > g.Max {
			return fmt.Errorf("gauge %q: last %d exceeds max %d", g.Name, g.Last, g.Max)
		}
	}
	have := map[string]bool{}
	for i, h := range run.Histograms {
		if h.Name == "" || (i > 0 && run.Histograms[i-1].Name >= h.Name) {
			return fmt.Errorf("histograms not sorted by unique non-empty name at %d", i)
		}
		have[h.Name] = true
		var total int64
		prev := int64(-1)
		for _, bk := range h.Buckets {
			if bk.Count <= 0 {
				return fmt.Errorf("histogram %q: empty bucket exported at le=%d", h.Name, bk.LE)
			}
			if bk.LE <= prev {
				return fmt.Errorf("histogram %q: buckets not in ascending le order", h.Name)
			}
			prev = bk.LE
			total += bk.Count
		}
		if total != h.N {
			return fmt.Errorf("histogram %q: bucket counts sum to %d, n is %d", h.Name, total, h.N)
		}
		if h.N > 0 && (h.Min > h.Max || h.Sum < h.Min) {
			return fmt.Errorf("histogram %q: inconsistent min/max/sum", h.Name)
		}
		if h.N > 0 {
			if h.P50 < h.Min || h.P50 > h.P99 || h.P99 > h.P999 || h.P999 > h.Max {
				return fmt.Errorf("histogram %q: quantiles not ordered within [min, max]", h.Name)
			}
		} else if h.P50 != 0 || h.P99 != 0 || h.P999 != 0 {
			return fmt.Errorf("histogram %q: nonzero quantiles with no samples", h.Name)
		}
	}
	for _, name := range requiredHistograms {
		if !have[name] {
			return fmt.Errorf("missing required histogram %q", name)
		}
	}
	if t := run.Trace; t != nil {
		if len(t.Events) > t.Capacity {
			return fmt.Errorf("trace holds %d events over capacity %d", len(t.Events), t.Capacity)
		}
		if t.Dropped < 0 {
			return fmt.Errorf("trace dropped count is negative")
		}
		prev := int64(-1)
		for i, ev := range t.Events {
			if ev.At < prev {
				return fmt.Errorf("trace events out of time order at index %d", i)
			}
			prev = ev.At
			if ev.Kind == "" {
				return fmt.Errorf("trace event %d has no kind", i)
			}
		}
	}
	if s := run.Series; s != nil {
		if err := s.validate(); err != nil {
			return err
		}
	}
	if l := run.Lifecycle; l != nil {
		if err := l.validate(); err != nil {
			return err
		}
	}
	for i, n := range run.Topology {
		if i > 0 && run.Topology[i-1].Node >= n.Node {
			return fmt.Errorf("topology not sorted by unique node id at %d", i)
		}
		if n.Tier == "" {
			return fmt.Errorf("topology node %d missing tier", n.Node)
		}
	}
	if f := run.Faults; f != nil {
		if err := f.validate(); err != nil {
			return err
		}
	}
	if s := run.SLO; s != nil {
		if err := s.validate(); err != nil {
			return err
		}
	}
	return nil
}
