package metrics

import (
	"fmt"

	"multiclock/internal/sim"
	"multiclock/internal/snapcodec"
)

// Checkpoint serialization for one machine's registry. Instruments are
// written sorted by name (the registry maps are only ever iterated sorted, at
// export, so the canonical order is behaviorally exact) and restored with
// get-or-create semantics: instruments pre-resolved by the restore target's
// construction path keep their pointers and receive the snapshot values in
// place.

// SnapshotState encodes every instrument and the event ring.
func (r *Registry) SnapshotState(enc *snapcodec.Encoder) {
	names := sortedNames(r.counters)
	enc.Int(len(names))
	for _, name := range names {
		enc.String(name)
		enc.I64(r.counters[name].v)
	}
	names = sortedNames(r.gauges)
	enc.Int(len(names))
	for _, name := range names {
		g := r.gauges[name]
		enc.String(name)
		enc.I64(g.last)
		enc.I64(g.max)
		enc.Bool(g.any)
	}
	names = sortedNames(r.hists)
	enc.Int(len(names))
	for _, name := range names {
		h := r.hists[name]
		enc.String(name)
		for _, c := range h.counts {
			enc.I64(c)
		}
		enc.I64(h.n)
		enc.I64(h.sum)
		enc.I64(h.min)
		enc.I64(h.max)
	}
	if r.events == nil {
		enc.Bool(false)
		return
	}
	enc.Bool(true)
	t := r.events
	enc.Int(t.Capacity())
	enc.I64(t.dropped)
	enc.Int(t.n)
	for i := 0; i < t.n; i++ {
		ev := t.buf[(t.start+i)%len(t.buf)]
		enc.I64(int64(ev.At))
		enc.U8(uint8(ev.Kind))
		enc.I64(int64(ev.From))
		enc.I64(int64(ev.To))
		enc.Int(ev.Pages)
		enc.U64(ev.VA)
		enc.I64(int64(ev.Work))
		enc.String(ev.Name)
	}
}

// RestoreState decodes into a registry built with the same trace capacity.
func (r *Registry) RestoreState(dec *snapcodec.Decoder) error {
	n := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	for i := 0; i < n; i++ {
		name := dec.String()
		v := dec.I64()
		if dec.Err() != nil {
			return dec.Err()
		}
		r.Counter(name).v = v
	}
	n = dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	for i := 0; i < n; i++ {
		name := dec.String()
		last := dec.I64()
		max := dec.I64()
		any := dec.Bool()
		if dec.Err() != nil {
			return dec.Err()
		}
		g := r.Gauge(name)
		g.last, g.max, g.any = last, max, any
	}
	n = dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	for i := 0; i < n; i++ {
		name := dec.String()
		if dec.Err() != nil {
			return dec.Err()
		}
		h := r.Histogram(name)
		for k := range h.counts {
			h.counts[k] = dec.I64()
		}
		h.n = dec.I64()
		h.sum = dec.I64()
		h.min = dec.I64()
		h.max = dec.I64()
	}
	hasTrace := dec.Bool()
	if dec.Err() != nil {
		return dec.Err()
	}
	if hasTrace != (r.events != nil) {
		return fmt.Errorf("metrics: snapshot trace presence %v, registry %v", hasTrace, r.events != nil)
	}
	if !hasTrace {
		return dec.Err()
	}
	t := r.events
	capacity := dec.Int()
	dropped := dec.I64()
	live := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if capacity != t.Capacity() {
		return fmt.Errorf("metrics: snapshot trace capacity %d, registry %d", capacity, t.Capacity())
	}
	if live < 0 || live > capacity {
		return fmt.Errorf("metrics: snapshot trace holds %d of %d events", live, capacity)
	}
	t.start = 0
	t.n = live
	t.dropped = dropped
	for i := 0; i < live; i++ {
		ev := &t.buf[i]
		ev.At = sim.Time(dec.I64())
		ev.Kind = EventKind(dec.U8())
		ev.From = int(dec.I64())
		ev.To = int(dec.I64())
		ev.Pages = dec.Int()
		ev.VA = dec.U64()
		ev.Work = sim.Duration(dec.I64())
		ev.Name = dec.String()
	}
	return dec.Err()
}
