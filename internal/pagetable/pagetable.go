// Package pagetable models per-process virtual address spaces: VMAs created
// by mmap, a three-level radix page table mapping virtual page numbers to
// page descriptors, and the hardware-visible side effects of access (PTE
// accessed/dirty bits) that MULTI-CLOCK's scanners consume for unsupervised
// accesses (§III-A.2).
package pagetable

import (
	"fmt"

	"multiclock/internal/mem"
)

// PageShift is log2 of the page size.
const PageShift = 12

// VPN is a virtual page number (virtual address >> PageShift).
type VPN uint64

// Addr converts the VPN back to the base virtual address of its page.
func (v VPN) Addr() uint64 { return uint64(v) << PageShift }

// VPNOf returns the virtual page number containing address va.
func VPNOf(va uint64) VPN { return VPN(va >> PageShift) }

// Radix tree geometry: three levels of 512 entries cover 2^27 pages
// (512 GiB of virtual address space), ample for the simulation.
const (
	levelBits  = 9
	levelSize  = 1 << levelBits
	levelMask  = levelSize - 1
	maxVPNBits = 3 * levelBits
	// MaxVPN is the highest mappable virtual page number.
	MaxVPN = VPN(1<<maxVPNBits) - 1
)

type pteLeaf [levelSize]*mem.Page
type pmdNode [levelSize]*pteLeaf
type pgdNode [levelSize]*pmdNode

// HugePages is the number of base pages in a transparent huge page
// (2 MiB on x86).
const HugePages = 512

// VMA is one mapped virtual memory area. All pages of a VMA share the same
// backing type (anonymous or file) and lock status.
type VMA struct {
	Start, End VPN // [Start, End) in pages
	File       bool
	Locked     bool // mlock: pages become unevictable
	// Huge requests transparent-huge-page backing: faults populate
	// HugePages-aligned compound pages. The VMA is rounded up to a
	// HugePages multiple at creation.
	Huge bool
	Name string
}

// Pages returns the VMA length in pages.
func (v *VMA) Pages() int { return int(v.End - v.Start) }

// Contains reports whether vpn falls inside the VMA.
func (v *VMA) Contains(vpn VPN) bool { return vpn >= v.Start && vpn < v.End }

// AddressSpace is one process's virtual memory: its VMAs and page table.
type AddressSpace struct {
	ID   int32
	vmas []*VMA
	pgd  pgdNode

	nextVPN VPN // bump allocator for mmap placement
	mapped  int // populated PTE count

	// lookupTag/lookupLeaf memoize the last leaf node Lookup walked to
	// (tag is vpn>>levelBits + 1, so the zero value matches nothing).
	// Leaf nodes are never removed once installed — unmapping only clears
	// PTE slots inside them — so a memoized leaf pointer cannot go stale;
	// the PTE slot itself is re-read on every lookup.
	lookupTag  VPN
	lookupLeaf *pteLeaf

	// swapped records pages written to backing store; the next fault on
	// such a VPN is a major fault (swap-in).
	swapped map[VPN]bool
}

// New creates an empty address space. The ID tags page descriptors so
// reverse mapping (page → space) works.
func New(id int32) *AddressSpace {
	return &AddressSpace{
		ID:      id,
		nextVPN: 1, // skip page 0, keep NULL unmapped
		swapped: make(map[VPN]bool),
	}
}

// MarkSwapped records that vpn's contents live on backing store (set by
// the eviction path after writing the page out).
func (as *AddressSpace) MarkSwapped(vpn VPN) { as.swapped[vpn] = true }

// TakeSwapped reports and clears vpn's swap residency; a true return means
// the caller's fault is a major fault that must read the page back in.
func (as *AddressSpace) TakeSwapped(vpn VPN) bool {
	if as.swapped[vpn] {
		delete(as.swapped, vpn)
		return true
	}
	return false
}

// Swapped returns the number of swapped-out pages.
func (as *AddressSpace) Swapped() int { return len(as.swapped) }

// Mmap creates a VMA of npages with a one-page guard gap after the previous
// mapping, returning it. No pages are populated: population happens on first
// touch (demand paging), as with anonymous mmap.
func (as *AddressSpace) Mmap(npages int, file bool, name string) *VMA {
	if npages <= 0 {
		panic("pagetable: Mmap of non-positive length")
	}
	start := as.nextVPN
	end := start + VPN(npages)
	if end > MaxVPN {
		panic("pagetable: virtual address space exhausted")
	}
	as.nextVPN = end + 1 // guard page
	v := &VMA{Start: start, End: end, File: file, Name: name}
	as.vmas = append(as.vmas, v)
	return v
}

// MmapHuge creates a huge-page-backed VMA: size rounds up to a HugePages
// multiple and the start is HugePages-aligned so every fault populates one
// aligned compound page.
func (as *AddressSpace) MmapHuge(npages int, name string) *VMA {
	if npages <= 0 {
		panic("pagetable: MmapHuge of non-positive length")
	}
	npages = (npages + HugePages - 1) / HugePages * HugePages
	// Align the start.
	if rem := as.nextVPN % HugePages; rem != 0 {
		as.nextVPN += HugePages - rem
	}
	start := as.nextVPN
	end := start + VPN(npages)
	if end > MaxVPN {
		panic("pagetable: virtual address space exhausted")
	}
	as.nextVPN = end + 1
	v := &VMA{Start: start, End: end, Huge: true, Name: name}
	as.vmas = append(as.vmas, v)
	return v
}

// InstallRange maps the same compound page descriptor at n consecutive
// VPNs starting at base (the base pages of a huge page all resolve to one
// descriptor, like PTEs under one PMD).
func (as *AddressSpace) InstallRange(base VPN, pg *mem.Page, n int) {
	for i := 0; i < n; i++ {
		as.installOne(base+VPN(i), pg)
	}
	pg.VA = base.Addr()
	pg.Space = as.ID
}

// UnmapRange clears n PTEs from base, returning the descriptor that was
// mapped there (nil if empty). All n entries must map the same page.
func (as *AddressSpace) UnmapRange(base VPN, n int) *mem.Page {
	var pg *mem.Page
	for i := 0; i < n; i++ {
		got := as.unmapOne(base + VPN(i))
		if got != nil {
			if pg != nil && got != pg {
				panic("pagetable: UnmapRange spans different pages")
			}
			pg = got
		}
	}
	if pg != nil {
		pg.Space = -1
	}
	return pg
}

// FindVMA returns the VMA containing vpn, or nil.
func (as *AddressSpace) FindVMA(vpn VPN) *VMA {
	// Linear scan is fine: spaces have a handful of VMAs.
	for _, v := range as.vmas {
		if v.Contains(vpn) {
			return v
		}
	}
	return nil
}

// VMAs returns the current mappings.
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// Mapped returns the number of populated PTEs.
func (as *AddressSpace) Mapped() int { return as.mapped }

// Lookup returns the page mapped at vpn, or nil if the PTE is empty.
// Workloads have strong page locality, so the leaf node of the last lookup
// is memoized: repeat lookups under the same leaf skip the radix walk.
func (as *AddressSpace) Lookup(vpn VPN) *mem.Page {
	tag := (vpn >> levelBits) + 1
	if tag == as.lookupTag {
		return as.lookupLeaf[vpn&levelMask]
	}
	pmd := as.pgd[(vpn>>(2*levelBits))&levelMask]
	if pmd == nil {
		return nil
	}
	leaf := pmd[(vpn>>levelBits)&levelMask]
	if leaf == nil {
		return nil
	}
	as.lookupTag = tag
	as.lookupLeaf = leaf
	return leaf[vpn&levelMask]
}

// installOne populates a single PTE without touching the descriptor's
// reverse-mapping fields.
func (as *AddressSpace) installOne(vpn VPN, pg *mem.Page) {
	if vpn > MaxVPN {
		panic("pagetable: VPN out of range")
	}
	pmdIdx := (vpn >> (2 * levelBits)) & levelMask
	pmd := as.pgd[pmdIdx]
	if pmd == nil {
		pmd = new(pmdNode)
		as.pgd[pmdIdx] = pmd
	}
	leafIdx := (vpn >> levelBits) & levelMask
	leaf := pmd[leafIdx]
	if leaf == nil {
		leaf = new(pteLeaf)
		pmd[leafIdx] = leaf
	}
	if leaf[vpn&levelMask] != nil {
		panic(fmt.Sprintf("pagetable: PTE %#x already populated", vpn))
	}
	leaf[vpn&levelMask] = pg
	as.mapped++
}

// Install maps pg at vpn, populating intermediate levels. It panics on an
// already-populated PTE: the simulator never remaps without unmapping.
func (as *AddressSpace) Install(vpn VPN, pg *mem.Page) {
	as.installOne(vpn, pg)
	pg.VA = vpn.Addr()
	pg.Space = as.ID
}

// unmapOne clears a single PTE, returning the page it mapped (nil if
// empty) without touching reverse-mapping fields.
func (as *AddressSpace) unmapOne(vpn VPN) *mem.Page {
	pmd := as.pgd[(vpn>>(2*levelBits))&levelMask]
	if pmd == nil {
		return nil
	}
	leaf := pmd[(vpn>>levelBits)&levelMask]
	if leaf == nil {
		return nil
	}
	pg := leaf[vpn&levelMask]
	if pg != nil {
		leaf[vpn&levelMask] = nil
		as.mapped--
	}
	return pg
}

// Remap atomically points an existing PTE at a different page descriptor
// (huge-page splitting replaces the compound mapping with per-base-page
// mappings). Panics if the PTE was empty.
func (as *AddressSpace) Remap(vpn VPN, pg *mem.Page) {
	if as.unmapOne(vpn) == nil {
		panic(fmt.Sprintf("pagetable: Remap of empty PTE %#x", vpn))
	}
	as.installOne(vpn, pg)
}

// Unmap clears the PTE at vpn and returns the page that was mapped, or nil.
// The caller owns taking the page off LRU lists and freeing the frame.
func (as *AddressSpace) Unmap(vpn VPN) *mem.Page {
	pg := as.unmapOne(vpn)
	if pg != nil {
		pg.Space = -1
	}
	return pg
}

// Walk visits every populated PTE with vpn in [lo, hi) in ascending order.
// fn may unmap the current entry but must not create new mappings.
func (as *AddressSpace) Walk(lo, hi VPN, fn func(vpn VPN, pg *mem.Page)) {
	if hi > MaxVPN+1 {
		hi = MaxVPN + 1
	}
	for pgdIdx := lo >> (2 * levelBits); pgdIdx <= (hi-1)>>(2*levelBits) && pgdIdx < levelSize; pgdIdx++ {
		pmd := as.pgd[pgdIdx]
		if pmd == nil {
			continue
		}
		for pmdIdx := VPN(0); pmdIdx < levelSize; pmdIdx++ {
			leaf := pmd[pmdIdx]
			if leaf == nil {
				continue
			}
			base := pgdIdx<<(2*levelBits) | pmdIdx<<levelBits
			if base+levelSize <= lo || base >= hi {
				continue
			}
			for i := VPN(0); i < levelSize; i++ {
				vpn := base | i
				if vpn < lo || vpn >= hi {
					continue
				}
				if pg := leaf[i]; pg != nil {
					fn(vpn, pg)
				}
			}
		}
	}
}

// WalkVMA visits every populated PTE of the VMA.
func (as *AddressSpace) WalkVMA(v *VMA, fn func(vpn VPN, pg *mem.Page)) {
	as.Walk(v.Start, v.End, fn)
}

// Touch models the MMU side effect of an access: it sets the PTE accessed
// bit (and dirty on write). The fault path is the machine's job; Touch
// assumes the page is mapped.
func Touch(pg *mem.Page, write bool) {
	pg.Accessed = true
	if write {
		pg.HWDirty = true
		pg.SetFlags(mem.FlagDirty)
	}
}

// Poison sets the hint-fault poison on the PTE's page so the next access
// takes a software fault (AutoTiering/Thermostat-style tracking).
func Poison(pg *mem.Page) { pg.SetFlags(mem.FlagPoisoned) }

// Unpoison clears the hint-fault poison.
func Unpoison(pg *mem.Page) { pg.ClearFlags(mem.FlagPoisoned) }
