package pagetable

import (
	"testing"
	"testing/quick"

	"multiclock/internal/mem"
)

func TestVPNRoundTrip(t *testing.T) {
	va := uint64(0x12345000)
	vpn := VPNOf(va)
	if vpn.Addr() != va {
		t.Fatalf("round trip: %#x -> %v -> %#x", va, vpn, vpn.Addr())
	}
	if VPNOf(va+100) != vpn {
		t.Fatal("intra-page offset changed VPN")
	}
}

func TestMmapLayout(t *testing.T) {
	as := New(1)
	a := as.Mmap(10, false, "heap")
	b := as.Mmap(5, true, "file")
	if a.Pages() != 10 || b.Pages() != 5 {
		t.Fatal("VMA sizes")
	}
	if b.Start <= a.End-1 {
		t.Fatal("VMAs overlap")
	}
	if b.Start == a.End {
		t.Fatal("missing guard page")
	}
	if !a.Contains(a.Start) || a.Contains(a.End) {
		t.Fatal("Contains bounds")
	}
	if as.FindVMA(a.Start+3) != a || as.FindVMA(b.Start) != b {
		t.Fatal("FindVMA")
	}
	if as.FindVMA(a.End) != nil {
		t.Fatal("guard page has a VMA")
	}
	if len(as.VMAs()) != 2 {
		t.Fatal("VMAs()")
	}
}

func TestMmapZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(1).Mmap(0, false, "")
}

func TestInstallLookupUnmap(t *testing.T) {
	as := New(7)
	v := as.Mmap(100, false, "x")
	pg := &mem.Page{}
	as.Install(v.Start+5, pg)
	if as.Mapped() != 1 {
		t.Fatal("Mapped count")
	}
	if pg.Space != 7 || pg.VA != (v.Start+5).Addr() {
		t.Fatal("reverse mapping not recorded")
	}
	if as.Lookup(v.Start+5) != pg {
		t.Fatal("Lookup")
	}
	if as.Lookup(v.Start+6) != nil {
		t.Fatal("empty PTE returned a page")
	}
	got := as.Unmap(v.Start + 5)
	if got != pg || as.Mapped() != 0 || pg.Space != -1 {
		t.Fatal("Unmap")
	}
	if as.Unmap(v.Start+5) != nil {
		t.Fatal("double unmap returned a page")
	}
	if as.Unmap(MaxVPN) != nil {
		t.Fatal("unmap of never-touched region")
	}
}

func TestInstallDoubleMapPanics(t *testing.T) {
	as := New(1)
	v := as.Mmap(1, false, "")
	as.Install(v.Start, &mem.Page{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double map")
		}
	}()
	as.Install(v.Start, &mem.Page{})
}

func TestWalkOrderAndBounds(t *testing.T) {
	as := New(1)
	v := as.Mmap(2000, false, "big") // spans multiple leaves
	for i := 0; i < 2000; i += 3 {
		as.Install(v.Start+VPN(i), &mem.Page{})
	}
	var visited []VPN
	as.WalkVMA(v, func(vpn VPN, pg *mem.Page) {
		visited = append(visited, vpn)
	})
	if len(visited) != (2000+2)/3 {
		t.Fatalf("visited %d, want %d", len(visited), (2000+2)/3)
	}
	for i := 1; i < len(visited); i++ {
		if visited[i] <= visited[i-1] {
			t.Fatal("walk not ascending")
		}
	}
	// Sub-range walk.
	var sub []VPN
	as.Walk(v.Start+10, v.Start+20, func(vpn VPN, pg *mem.Page) { sub = append(sub, vpn) })
	for _, vpn := range sub {
		if vpn < v.Start+10 || vpn >= v.Start+20 {
			t.Fatalf("walk out of range: %v", vpn)
		}
	}
}

func TestWalkAllowsUnmap(t *testing.T) {
	as := New(1)
	v := as.Mmap(50, false, "")
	for i := 0; i < 50; i++ {
		as.Install(v.Start+VPN(i), &mem.Page{})
	}
	as.WalkVMA(v, func(vpn VPN, pg *mem.Page) { as.Unmap(vpn) })
	if as.Mapped() != 0 {
		t.Fatalf("Mapped = %d after unmapping walk", as.Mapped())
	}
}

func TestTouchSetsBits(t *testing.T) {
	pg := &mem.Page{}
	Touch(pg, false)
	if !pg.Accessed || pg.HWDirty {
		t.Fatal("read touch")
	}
	Touch(pg, true)
	if !pg.HWDirty || !pg.Flags.Has(mem.FlagDirty) {
		t.Fatal("write touch must dirty the page")
	}
}

func TestPoisonUnpoison(t *testing.T) {
	pg := &mem.Page{}
	Poison(pg)
	if !pg.Flags.Has(mem.FlagPoisoned) {
		t.Fatal("Poison")
	}
	Unpoison(pg)
	if pg.Flags.Has(mem.FlagPoisoned) {
		t.Fatal("Unpoison")
	}
}

// Property: Install/Lookup/Unmap behave like a map[VPN]*Page.
func TestPageTableMapEquivalence(t *testing.T) {
	f := func(keys []uint32, unmapEvery uint8) bool {
		as := New(1)
		model := map[VPN]*mem.Page{}
		step := int(unmapEvery%5) + 2
		for i, k := range keys {
			vpn := VPN(k) & MaxVPN
			if i%step == 0 {
				got := as.Unmap(vpn)
				want := model[vpn]
				if got != want {
					return false
				}
				delete(model, vpn)
				continue
			}
			if model[vpn] == nil {
				pg := &mem.Page{}
				as.Install(vpn, pg)
				model[vpn] = pg
			}
		}
		if as.Mapped() != len(model) {
			return false
		}
		for vpn, pg := range model {
			if as.Lookup(vpn) != pg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
