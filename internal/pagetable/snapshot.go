package pagetable

import "sort"

// Checkpoint accessors. An address space's VMAs and bump-allocator position
// are fully determined by the workload's construction-time Mmap calls — the
// store pre-reserves its arena, so no VMA is created after construction and
// restore only needs to verify the geometry, not replay it. The PTE tree and
// mapped count are rebuilt by re-installing the restored LRU-resident pages;
// only the swap residency set carries state of its own.

// NextVPN returns the mmap bump-allocator position (checkpoint verification).
func (as *AddressSpace) NextVPN() VPN { return as.nextVPN }

// SwappedVPNs returns the swapped-out VPNs in sorted order (the map is never
// iterated by the simulation, so the canonical form is behaviorally exact).
func (as *AddressSpace) SwappedVPNs() []VPN {
	out := make([]VPN, 0, len(as.swapped))
	for v := range as.swapped {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
