// Package snapshot implements deterministic checkpoint/restore for a whole
// simulated system: a versioned, checksummed container of named sections,
// each the canonical snapcodec encoding of one subsystem's state at a
// quiescent boundary. Equal state encodes to equal bytes, so the per-section
// checksums double as the divergence auditor's subsystem hashes.
//
// The quiescence contract: a snapshot may only be taken between application
// operations, when the only events pending on the virtual clock are the armed
// daemons' next wakeups (Clock.NonDaemonPending() == 0). One-shot Schedule
// closures — time-series samplers, lifecycle hooks — cannot be serialized, so
// harnesses refuse to combine those features with checkpointing.
//
// Restore never patches a live system. The caller reconstructs the target
// pristine — same configuration, same construction order — and Restore then
// overwrites the mutable state, rebuilding pointer identity through a
// Page.Seq registry, verifies the geometry it does not replay, and runs the
// machine's invariant checker before handing the system back.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"

	"multiclock/internal/snapcodec"
)

// Magic identifies a snapshot file.
const Magic = "MCSNAP"

// Version is the container format version. Version 2 prefixed the mem
// section with the tier-topology header (and versioned the soak config for
// the tier spec), so version-1 containers no longer decode.
const Version = 2

// Section names in container order.
const (
	SecConfig   = "config"
	SecClock    = "clock"
	SecMem      = "mem"
	SecLRU      = "lru"
	SecMachine  = "machine"
	SecFault    = "fault"
	SecPolicy   = "policy"
	SecStore    = "store"
	SecWorkload = "workload"
	SecMetrics  = "metrics"
)

// SectionOrder is the canonical section sequence of a capture.
var SectionOrder = []string{
	SecConfig, SecClock, SecMem, SecLRU, SecMachine,
	SecFault, SecPolicy, SecStore, SecWorkload, SecMetrics,
}

// ErrBadMagic reports a file that is not a snapshot at all.
var ErrBadMagic = errors.New("snapshot: bad magic (not a snapshot file)")

// ErrTruncatedFile reports a container cut short.
var ErrTruncatedFile = errors.New("snapshot: truncated file")

// VersionError reports a container written by an incompatible format version.
type VersionError struct {
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: format version %d (this build reads version %d)", e.Got, e.Want)
}

// CorruptError reports a section whose payload failed its checksum or did not
// decode cleanly. Section "file" means the whole-file checksum failed.
type CorruptError struct {
	Section string
	Err     error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("snapshot: section %q corrupt: %v", e.Section, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// ConfigMismatchError reports a snapshot taken under a different
// configuration than the restore target was built with.
type ConfigMismatchError struct {
	Reason string
}

func (e *ConfigMismatchError) Error() string {
	return "snapshot: configuration mismatch: " + e.Reason
}

// UnsupportedPolicyError reports a policy that does not implement
// checkpoint/restore.
type UnsupportedPolicyError struct {
	Policy string
}

func (e *UnsupportedPolicyError) Error() string {
	return fmt.Sprintf("snapshot: policy %q does not support checkpoint/restore", e.Policy)
}

// NotQuiescentError reports a capture attempted while non-daemon events were
// pending on the virtual clock.
type NotQuiescentError struct {
	Pending int
}

func (e *NotQuiescentError) Error() string {
	return fmt.Sprintf("snapshot: clock not quiescent (%d non-daemon events pending)", e.Pending)
}

// File is a parsed (or under-construction) snapshot container.
type File struct {
	Version  uint32
	order    []string
	sections map[string][]byte
	hashes   map[string]uint64
}

// NewFile returns an empty container at the current version.
func NewFile() *File {
	return &File{
		Version:  Version,
		sections: make(map[string][]byte),
		hashes:   make(map[string]uint64),
	}
}

// AddSection appends one named payload.
func (f *File) AddSection(name string, payload []byte) {
	if _, dup := f.sections[name]; dup {
		panic("snapshot: duplicate section " + name)
	}
	f.order = append(f.order, name)
	f.sections[name] = payload
	f.hashes[name] = fnvSum(payload)
}

// Section returns a named payload.
func (f *File) Section(name string) ([]byte, bool) {
	p, ok := f.sections[name]
	return p, ok
}

// Hash returns a section's fnv-1a checksum (the auditor's subsystem hash).
func (f *File) Hash(name string) uint64 { return f.hashes[name] }

// Sections returns the section names in container order.
func (f *File) Sections() []string { return f.order }

// Encode renders the container:
//
//	"MCSNAP" | u32 version | u32 nsections
//	  per section: string name | raw payload | u64 fnv-1a(payload)
//	u64 fnv-1a(everything above)
func (f *File) Encode() []byte {
	enc := snapcodec.NewEncoder()
	enc.U32(f.Version)
	enc.U32(uint32(len(f.order)))
	for _, name := range f.order {
		enc.String(name)
		enc.Raw(f.sections[name])
		enc.U64(f.hashes[name])
	}
	buf := append([]byte(Magic), enc.Bytes()...)
	return binary.LittleEndian.AppendUint64(buf, fnvSum(buf))
}

// WriteFile encodes and writes the container atomically (temp file in the
// same directory, then rename), so a process killed mid-checkpoint leaves
// the previous snapshot intact rather than a truncated file.
func (f *File) WriteFile(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, f.Encode(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Decode parses and verifies a container. Every checksum is checked here, so
// a File that decodes is internally consistent; section payloads may still
// fail semantic validation during Restore.
func Decode(data []byte) (*File, error) {
	if len(data) < len(Magic)+8 {
		return nil, ErrTruncatedFile
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if binary.LittleEndian.Uint64(tail) != fnvSum(body) {
		return nil, &CorruptError{Section: "file", Err: errors.New("whole-file checksum mismatch")}
	}
	dec := snapcodec.NewDecoder(body[len(Magic):])
	version := dec.U32()
	n := dec.U32()
	if dec.Err() != nil {
		return nil, ErrTruncatedFile
	}
	if version != Version {
		return nil, &VersionError{Got: version, Want: Version}
	}
	f := NewFile()
	for i := uint32(0); i < n; i++ {
		name := dec.String()
		payload := dec.Raw()
		sum := dec.U64()
		if dec.Err() != nil {
			return nil, ErrTruncatedFile
		}
		if _, dup := f.sections[name]; dup {
			return nil, &CorruptError{Section: name, Err: errors.New("duplicate section")}
		}
		if fnvSum(payload) != sum {
			return nil, &CorruptError{Section: name, Err: errors.New("section checksum mismatch")}
		}
		f.AddSection(name, payload)
	}
	if err := dec.Finish(); err != nil {
		return nil, ErrTruncatedFile
	}
	return f, nil
}

// ReadFile reads and verifies a snapshot file.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// fnvSum is fnv-1a 64 over b.
func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
