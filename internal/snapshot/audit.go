package snapshot

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The divergence auditor. A harness running with -audit captures the system
// at every checkpoint boundary and appends one JSONL record of per-section
// state hashes (the container's fnv-1a section checksums — equal state,
// equal bytes, equal hash). Two audit trails from runs that should be
// identical — straight vs restored, two builds, two hosts — are then
// bisected to the first diverging boundary and the subsystems that differ,
// turning "the reports differ" into "the policy section first diverged at op
// 41200, vtime 3.1s".

// AuditRecord is one checkpoint boundary's fingerprint.
type AuditRecord struct {
	// Op is the operation count at the boundary (machine.Ops).
	Op int64 `json:"op"`
	// VTime is the virtual clock in nanoseconds.
	VTime int64 `json:"vtime_ns"`
	// Hashes maps section name to its fnv-1a 64 state hash, hex-encoded.
	Hashes map[string]string `json:"hashes"`
}

// AuditFingerprint builds one record from a capture of the target.
func AuditFingerprint(t *Target) (AuditRecord, error) {
	f, err := Capture(t, nil)
	if err != nil {
		return AuditRecord{}, err
	}
	rec := AuditRecord{
		Op:     t.M.Ops,
		VTime:  int64(t.M.Clock.Now()),
		Hashes: make(map[string]string, len(f.Sections())),
	}
	for _, name := range f.Sections() {
		if name == SecConfig {
			continue // caller-opaque, not state
		}
		rec.Hashes[name] = fmt.Sprintf("%016x", f.Hash(name))
	}
	return rec, nil
}

// AuditWriter appends records to a JSONL stream.
type AuditWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewAuditWriter wraps w.
func NewAuditWriter(w io.Writer) *AuditWriter {
	bw := bufio.NewWriter(w)
	return &AuditWriter{w: bw, enc: json.NewEncoder(bw)}
}

// Append writes one record (json.Encoder emits map keys sorted, so equal
// records are byte-equal lines) and flushes it, so a process killed between
// checkpoints never loses an already-recorded boundary.
func (a *AuditWriter) Append(rec AuditRecord) error {
	if err := a.enc.Encode(rec); err != nil {
		return err
	}
	return a.w.Flush()
}

// Flush drains the buffer.
func (a *AuditWriter) Flush() error { return a.w.Flush() }

// ReadAudit parses a JSONL audit trail.
func ReadAudit(r io.Reader) ([]AuditRecord, error) {
	var recs []AuditRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec AuditRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("audit line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// Divergence locates the first difference between two audit trails.
type Divergence struct {
	// Index is the 0-based record index of the first difference; for trails
	// that agree on their common prefix it is the shorter trail's length.
	Index int
	// Op and VTime describe the diverging boundary in trail A (or B when A
	// is the shorter trail at a length divergence).
	Op    int64
	VTime int64
	// Sections lists the subsystems whose hashes differ at Index, sorted;
	// empty for a pure length divergence.
	Sections []string
	// LenA and LenB are the trail lengths.
	LenA, LenB int
}

func (d *Divergence) String() string {
	if d == nil {
		return "audit trails identical"
	}
	if len(d.Sections) == 0 {
		return fmt.Sprintf("trails agree for %d checkpoints, then lengths differ (%d vs %d)", d.Index, d.LenA, d.LenB)
	}
	return fmt.Sprintf("first divergence at checkpoint %d (op %d, vtime %dns): sections %v", d.Index, d.Op, d.VTime, d.Sections)
}

// Diverge bisects two trails to their first differing record. It returns nil
// when the trails are identical.
func Diverge(a, b []AuditRecord) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	// The trails are checkpoint-ordered, so binary search for the first
	// index where they disagree: if records match at i they match everywhere
	// before i only if divergence is monotone — which hash equality is not
	// guaranteed to be in theory, but a deterministic simulation that
	// diverges stays diverged (all downstream state compounds the change).
	// A linear verification pass below keeps the result exact regardless.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if recordsEqual(a[mid], b[mid]) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	first := lo
	// Verify: the binary search assumed monotonicity; scan the prefix to
	// catch a transient (non-compounding) divergence it may have skipped.
	for i := 0; i < first; i++ {
		if !recordsEqual(a[i], b[i]) {
			first = i
			break
		}
	}
	if first == n {
		if len(a) == len(b) {
			return nil
		}
		d := &Divergence{Index: n, LenA: len(a), LenB: len(b)}
		if n < len(a) {
			d.Op, d.VTime = a[n].Op, a[n].VTime
		} else {
			d.Op, d.VTime = b[n].Op, b[n].VTime
		}
		return d
	}
	d := &Divergence{Index: first, Op: a[first].Op, VTime: a[first].VTime, LenA: len(a), LenB: len(b)}
	seen := map[string]bool{}
	for name, h := range a[first].Hashes {
		if b[first].Hashes[name] != h {
			seen[name] = true
		}
	}
	for name := range b[first].Hashes {
		if _, ok := a[first].Hashes[name]; !ok {
			seen[name] = true
		}
	}
	if a[first].Op != b[first].Op || a[first].VTime != b[first].VTime {
		seen["boundary"] = true
	}
	for name := range seen {
		d.Sections = append(d.Sections, name)
	}
	sort.Strings(d.Sections)
	return d
}

func recordsEqual(a, b AuditRecord) bool {
	if a.Op != b.Op || a.VTime != b.VTime || len(a.Hashes) != len(b.Hashes) {
		return false
	}
	for name, h := range a.Hashes {
		if b.Hashes[name] != h {
			return false
		}
	}
	return true
}
