package snapshot

import (
	"errors"
	"fmt"

	"multiclock/internal/kvstore"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/metrics"
	"multiclock/internal/sim"
	"multiclock/internal/snapcodec"
	"multiclock/internal/ycsb"
)

// Target is one complete simulated system: everything Capture serializes and
// Restore rebuilds. The policy is reached through the machine; Metrics and
// Run may be nil (no telemetry, no workload in flight).
type Target struct {
	M       *machine.Machine
	Store   *kvstore.Store
	Client  *ycsb.Client
	Run     *ycsb.Run
	Metrics *metrics.Registry
}

// Capture serializes the target at a quiescent boundary into a container.
// The config payload is opaque to this layer: the harness that constructs
// targets writes whatever it needs to rebuild (and cross-check) an identical
// pristine system before Restore.
func Capture(t *Target, config []byte) (*File, error) {
	if n := t.M.Clock.NonDaemonPending(); n != 0 {
		return nil, &NotQuiescentError{Pending: n}
	}
	ps, ok := t.M.Policy.(machine.StateSnapshotter)
	if !ok {
		return nil, &UnsupportedPolicyError{Policy: t.M.Policy.Name()}
	}

	f := NewFile()
	f.AddSection(SecConfig, config)
	f.AddSection(SecClock, encodeClock(t.M.Clock))

	enc := snapcodec.NewEncoder()
	t.M.Mem.SnapshotState(enc)
	f.AddSection(SecMem, enc.Bytes())

	enc = snapcodec.NewEncoder()
	t.M.SnapshotLRUState(enc)
	f.AddSection(SecLRU, enc.Bytes())

	enc = snapcodec.NewEncoder()
	t.M.SnapshotMachineState(enc)
	f.AddSection(SecMachine, enc.Bytes())

	enc = snapcodec.NewEncoder()
	enc.Bool(t.M.Faults != nil)
	if t.M.Faults != nil {
		t.M.Faults.SnapshotState(enc)
	}
	f.AddSection(SecFault, enc.Bytes())

	enc = snapcodec.NewEncoder()
	enc.String(t.M.Policy.Name())
	if err := ps.SnapshotState(enc); err != nil {
		return nil, err
	}
	f.AddSection(SecPolicy, enc.Bytes())

	enc = snapcodec.NewEncoder()
	t.Store.SnapshotState(enc)
	f.AddSection(SecStore, enc.Bytes())

	enc = snapcodec.NewEncoder()
	t.Client.SnapshotState(enc)
	enc.Bool(t.Run != nil)
	if t.Run != nil {
		if err := t.Run.SnapshotState(enc); err != nil {
			return nil, err
		}
	}
	f.AddSection(SecWorkload, enc.Bytes())

	enc = snapcodec.NewEncoder()
	enc.Bool(t.Metrics != nil)
	if t.Metrics != nil {
		t.Metrics.SnapshotState(enc)
	}
	f.AddSection(SecMetrics, enc.Bytes())

	return f, nil
}

// Restore rebuilds a saved system's mutable state onto a pristine target of
// identical configuration (the caller read the config section and ran the
// same construction path). On success t.Run holds the restored in-flight
// workload (nil if none was running) and the machine passes its invariant
// checker; on error the target is unusable and must be discarded.
func Restore(t *Target, f *File) error {
	ps, ok := t.M.Policy.(machine.StateSnapshotter)
	if !ok {
		return &UnsupportedPolicyError{Policy: t.M.Policy.Name()}
	}
	reg := machine.NewPageRegistry()

	dec, err := sectionDecoder(f, SecMem)
	if err != nil {
		return err
	}
	if err := finish(dec, t.M.Mem.RestoreState(dec)); err != nil {
		return wrapSection(SecMem, err)
	}

	if dec, err = sectionDecoder(f, SecLRU); err != nil {
		return err
	}
	if err := finish(dec, t.M.RestoreLRUState(dec, reg)); err != nil {
		return wrapSection(SecLRU, err)
	}

	if dec, err = sectionDecoder(f, SecMachine); err != nil {
		return err
	}
	if err := finish(dec, t.M.RestoreMachineState(dec, reg)); err != nil {
		return wrapSection(SecMachine, err)
	}

	payload, _ := f.Section(SecClock)
	if payload == nil {
		return &CorruptError{Section: SecClock, Err: errors.New("section missing")}
	}
	if err := restoreClock(t.M.Clock, payload); err != nil {
		return wrapSection(SecClock, err)
	}

	if dec, err = sectionDecoder(f, SecFault); err != nil {
		return err
	}
	if err := finish(dec, restoreFault(t.M, dec)); err != nil {
		return wrapSection(SecFault, err)
	}

	if dec, err = sectionDecoder(f, SecPolicy); err != nil {
		return err
	}
	if err := finish(dec, restorePolicy(t.M, ps, dec, reg)); err != nil {
		return wrapSection(SecPolicy, err)
	}

	if dec, err = sectionDecoder(f, SecStore); err != nil {
		return err
	}
	if err := finish(dec, t.Store.RestoreState(dec)); err != nil {
		return wrapSection(SecStore, err)
	}

	if dec, err = sectionDecoder(f, SecWorkload); err != nil {
		return err
	}
	if err := finish(dec, restoreWorkload(t, dec)); err != nil {
		return wrapSection(SecWorkload, err)
	}

	if dec, err = sectionDecoder(f, SecMetrics); err != nil {
		return err
	}
	if err := finish(dec, restoreMetrics(t, dec)); err != nil {
		return wrapSection(SecMetrics, err)
	}

	if err := t.M.CheckInvariants(); err != nil {
		return fmt.Errorf("snapshot: restored state fails machine invariants: %w", err)
	}
	return nil
}

// encodeClock serializes the virtual clock and every daemon's armed state.
func encodeClock(c *sim.Clock) []byte {
	enc := snapcodec.NewEncoder()
	enc.I64(int64(c.Now()))
	enc.U64(c.Seq())
	ds := c.Daemons()
	enc.Int(len(ds))
	for _, d := range ds {
		st := d.State()
		enc.String(st.Name)
		enc.I64(int64(st.Interval))
		enc.Int(st.Runs)
		enc.Bool(st.Stopped)
		enc.I64(int64(st.At))
		enc.U64(st.Seq)
	}
	return enc.Bytes()
}

// restoreClock re-arms each daemon at its saved (deadline, sequence) — start
// order is the cross-run identity — then moves the clock itself. Daemons
// first: RestoreTime refuses to rewind the sequence counter.
func restoreClock(c *sim.Clock, payload []byte) error {
	dec := snapcodec.NewDecoder(payload)
	now := sim.Time(dec.I64())
	seq := dec.U64()
	n := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	ds := c.Daemons()
	if n != len(ds) {
		// The daemon roster is determined by construction (policy and
		// machine configuration), so a different roster means the snapshot
		// was taken under a different configuration.
		return &ConfigMismatchError{Reason: fmt.Sprintf("snapshot has %d daemons, target clock has %d", n, len(ds))}
	}
	for _, d := range ds {
		st := sim.DaemonState{
			Name:     dec.String(),
			Interval: sim.Duration(dec.I64()),
			Runs:     dec.Int(),
			Stopped:  dec.Bool(),
			At:       sim.Time(dec.I64()),
			Seq:      dec.U64(),
		}
		if dec.Err() != nil {
			return dec.Err()
		}
		if st.Name != d.State().Name {
			return &ConfigMismatchError{Reason: fmt.Sprintf("snapshot daemon %q, target daemon %q", st.Name, d.State().Name)}
		}
		if !st.Stopped && st.Seq > seq {
			return fmt.Errorf("daemon %q wakeup sequence %d exceeds clock sequence %d", st.Name, st.Seq, seq)
		}
		if err := d.RestoreState(st); err != nil {
			return err
		}
	}
	if err := dec.Finish(); err != nil {
		return err
	}
	if seq < c.Seq() {
		return fmt.Errorf("snapshot clock sequence %d rewinds target %d", seq, c.Seq())
	}
	c.RestoreTime(now, seq)
	return nil
}

func restoreFault(m *machine.Machine, dec *snapcodec.Decoder) error {
	has := dec.Bool()
	if dec.Err() != nil {
		return dec.Err()
	}
	if has != (m.Faults != nil) {
		return &ConfigMismatchError{Reason: fmt.Sprintf("snapshot fault injection %v, target %v", has, m.Faults != nil)}
	}
	if !has {
		return nil
	}
	return m.Faults.RestoreState(dec)
}

func restorePolicy(m *machine.Machine, ps machine.StateSnapshotter, dec *snapcodec.Decoder, reg *machine.PageRegistry) error {
	name := dec.String()
	if dec.Err() != nil {
		return dec.Err()
	}
	if name != m.Policy.Name() {
		return &ConfigMismatchError{Reason: fmt.Sprintf("snapshot policy %q, target %q", name, m.Policy.Name())}
	}
	return ps.RestoreState(dec, reg)
}

func restoreWorkload(t *Target, dec *snapcodec.Decoder) error {
	if err := t.Client.RestoreState(dec); err != nil {
		return err
	}
	inFlight := dec.Bool()
	if dec.Err() != nil {
		return dec.Err()
	}
	t.Run = nil
	if !inFlight {
		return nil
	}
	run, err := t.Client.RestoreRun(dec)
	if err != nil {
		return err
	}
	t.Run = run
	return nil
}

func restoreMetrics(t *Target, dec *snapcodec.Decoder) error {
	has := dec.Bool()
	if dec.Err() != nil {
		return dec.Err()
	}
	if has != (t.Metrics != nil) {
		return &ConfigMismatchError{Reason: fmt.Sprintf("snapshot telemetry %v, target %v", has, t.Metrics != nil)}
	}
	if !has {
		return nil
	}
	return t.Metrics.RestoreState(dec)
}

// sectionDecoder returns a decoder over a named section's payload.
func sectionDecoder(f *File, name string) (*snapcodec.Decoder, error) {
	p, ok := f.Section(name)
	if !ok {
		return nil, &CorruptError{Section: name, Err: errors.New("section missing")}
	}
	return snapcodec.NewDecoder(p), nil
}

// finish folds a restore error with exact-consumption checking.
func finish(dec *snapcodec.Decoder, err error) error {
	if err != nil {
		return err
	}
	return dec.Finish()
}

// wrapSection types a section-restore failure. Configuration and policy-
// support mismatches keep their own types (a memory-topology mismatch
// surfaces as a config mismatch naming the section); everything else
// decodes under a verified checksum yet fails semantic validation, which is
// corruption.
func wrapSection(name string, err error) error {
	var cm *ConfigMismatchError
	var up *UnsupportedPolicyError
	var tm *mem.TopologyMismatchError
	if errors.As(err, &cm) || errors.As(err, &up) {
		return err
	}
	if errors.As(err, &tm) {
		return &ConfigMismatchError{Reason: fmt.Sprintf("section %q: %s", name, tm.Error())}
	}
	return &CorruptError{Section: name, Err: err}
}
