package snapshot

import (
	"encoding/binary"
	"errors"
	"testing"
)

// sample builds a container with a few sections in canonical order.
func sample() *File {
	f := NewFile()
	f.AddSection(SecConfig, []byte("cfg-payload"))
	f.AddSection(SecClock, []byte{1, 2, 3, 4})
	f.AddSection(SecMem, nil)
	return f
}

func TestFileRoundTrip(t *testing.T) {
	f := sample()
	g, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if g.Version != Version {
		t.Fatalf("version %d, want %d", g.Version, Version)
	}
	want := []string{SecConfig, SecClock, SecMem}
	got := g.Sections()
	if len(got) != len(want) {
		t.Fatalf("sections %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("section order %v, want %v", got, want)
		}
		p, ok := g.Section(name)
		q, _ := f.Section(name)
		if !ok || string(p) != string(q) {
			t.Fatalf("section %q payload %q, want %q", name, p, q)
		}
		if g.Hash(name) != f.Hash(name) {
			t.Fatalf("section %q hash mismatch", name)
		}
	}
}

func TestFileBadMagic(t *testing.T) {
	data := sample().Encode()
	data[0] ^= 0xff
	if _, err := Decode(data); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Decode([]byte("not a snapshot at all, but long enough")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

// TestFileTruncationAtEveryPrefix: no prefix of a valid container may decode
// successfully, and none may panic — every cut is a typed error.
func TestFileTruncationAtEveryPrefix(t *testing.T) {
	data := sample().Encode()
	for n := 0; n < len(data); n++ {
		_, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(data))
		}
		var ce *CorruptError
		if !errors.Is(err, ErrTruncatedFile) && !errors.Is(err, ErrBadMagic) && !errors.As(err, &ce) {
			t.Fatalf("prefix %d: untyped error %v", n, err)
		}
	}
}

// TestFileBitFlips: flipping any single byte must fail the whole-file
// checksum (or a section checksum), never decode cleanly.
func TestFileBitFlips(t *testing.T) {
	orig := sample().Encode()
	for i := 0; i < len(orig); i++ {
		data := append([]byte(nil), orig...)
		data[i] ^= 0x40
		if _, err := Decode(data); err == nil {
			t.Fatalf("byte %d flipped, still decoded", i)
		}
	}
}

func TestFileVersionSkew(t *testing.T) {
	f := sample()
	f.Version = Version + 7
	data := f.Encode()
	_, err := Decode(data)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want VersionError", err)
	}
	if ve.Got != Version+7 || ve.Want != Version {
		t.Fatalf("VersionError = %+v", ve)
	}
}

func TestFileWholeFileChecksum(t *testing.T) {
	data := sample().Encode()
	// Corrupt only the trailing checksum; the body is intact.
	binary.LittleEndian.PutUint64(data[len(data)-8:], 0xdeadbeef)
	_, err := Decode(data)
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != "file" {
		t.Fatalf("err = %v, want whole-file CorruptError", err)
	}
}

func TestFileDuplicateSectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddSection did not panic")
		}
	}()
	f := NewFile()
	f.AddSection(SecMem, nil)
	f.AddSection(SecMem, nil)
}
