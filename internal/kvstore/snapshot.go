package kvstore

import (
	"fmt"
	"sort"

	"multiclock/internal/pagetable"
	"multiclock/internal/snapcodec"
)

// Checkpoint serialization. A restored store is constructed pristine with the
// same Config — New performs exactly two Mmaps and nothing else maps memory
// during the run, so the address-space geometry is reproduced by construction
// and only verified here. The mutable state travels: the arena bump pointer,
// each slab class's partial page and free list (exact LIFO order — allocItem
// pops from the tail), the item table (sorted by key; the map is never
// iterated during the run, so the canonical order is behaviorally exact) and
// the stats.

// SnapshotState encodes the store's mutable state.
func (s *Store) SnapshotState(enc *snapcodec.Encoder) {
	enc.Int(s.nbuckets)
	enc.Int(s.itemTouches)
	enc.Bool(s.hugeArena)
	enc.U64(uint64(s.bucketVMA.Start))
	enc.U64(uint64(s.arena.Start))
	enc.U64(uint64(s.arena.End))
	enc.U64(uint64(s.arenaNext))
	for i := range s.classes {
		c := &s.classes[i]
		enc.U64(uint64(c.cur))
		enc.Int(c.curUsed)
		enc.Int(len(c.free))
		for _, vpn := range c.free {
			enc.U64(uint64(vpn))
		}
	}
	keys := make([]uint64, 0, len(s.items))
	for k := range s.items {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	enc.Int(len(keys))
	for _, k := range keys {
		ref := s.items[k]
		enc.U64(k)
		enc.U64(uint64(ref.vpn))
		enc.I64(int64(ref.npages))
		enc.I64(int64(ref.class))
	}
	for _, v := range []int64{
		s.Stats.Gets, s.Stats.GetHits, s.Stats.Sets, s.Stats.Inserts,
		s.Stats.Deletes, s.Stats.RMWs, s.Stats.ScanRejects,
		s.Stats.BytesStored, s.Stats.EvictedForSpace,
	} {
		enc.I64(v)
	}
}

// RestoreState decodes into a freshly constructed store of identical
// configuration.
func (s *Store) RestoreState(dec *snapcodec.Decoder) error {
	nbuckets := dec.Int()
	touches := dec.Int()
	huge := dec.Bool()
	bucketStart := pagetable.VPN(dec.U64())
	arenaStart := pagetable.VPN(dec.U64())
	arenaEnd := pagetable.VPN(dec.U64())
	if dec.Err() != nil {
		return dec.Err()
	}
	if nbuckets != s.nbuckets || touches != s.itemTouches || huge != s.hugeArena {
		return fmt.Errorf("kvstore: snapshot geometry (buckets %d touches %d huge %v) does not match store (buckets %d touches %d huge %v)",
			nbuckets, touches, huge, s.nbuckets, s.itemTouches, s.hugeArena)
	}
	if bucketStart != s.bucketVMA.Start || arenaStart != s.arena.Start || arenaEnd != s.arena.End {
		return fmt.Errorf("kvstore: snapshot VMA layout does not match store")
	}
	s.arenaNext = pagetable.VPN(dec.U64())
	if s.arenaNext < s.arena.Start || s.arenaNext > s.arena.End {
		return fmt.Errorf("kvstore: snapshot arena pointer %d outside arena [%d, %d)", s.arenaNext, s.arena.Start, s.arena.End)
	}
	for i := range s.classes {
		c := &s.classes[i]
		c.cur = pagetable.VPN(dec.U64())
		c.curUsed = dec.Int()
		n := dec.Int()
		if dec.Err() != nil {
			return dec.Err()
		}
		if n < 0 || n > dec.Remaining()/8 {
			return fmt.Errorf("kvstore: snapshot claims %d free chunks in %d bytes", n, dec.Remaining())
		}
		if c.curUsed < 0 || c.curUsed > c.perPage {
			return fmt.Errorf("kvstore: snapshot class %d has %d of %d chunks used", i, c.curUsed, c.perPage)
		}
		c.free = c.free[:0]
		for j := 0; j < n; j++ {
			c.free = append(c.free, pagetable.VPN(dec.U64()))
		}
	}
	n := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if n < 0 || n > dec.Remaining()/32 {
		return fmt.Errorf("kvstore: snapshot claims %d items in %d bytes", n, dec.Remaining())
	}
	s.items = make(map[uint64]itemRef, n)
	for i := 0; i < n; i++ {
		k := dec.U64()
		ref := itemRef{
			vpn:    pagetable.VPN(dec.U64()),
			npages: int32(dec.I64()),
			class:  int8(dec.I64()),
		}
		if dec.Err() != nil {
			return dec.Err()
		}
		if _, dup := s.items[k]; dup {
			return fmt.Errorf("kvstore: snapshot repeats item key %d", k)
		}
		if ref.npages <= 0 || int(ref.class) >= len(classSizes) {
			return fmt.Errorf("kvstore: snapshot item %d has invalid layout", k)
		}
		s.items[k] = ref
	}
	for _, p := range []*int64{
		&s.Stats.Gets, &s.Stats.GetHits, &s.Stats.Sets, &s.Stats.Inserts,
		&s.Stats.Deletes, &s.Stats.RMWs, &s.Stats.ScanRejects,
		&s.Stats.BytesStored, &s.Stats.EvictedForSpace,
	} {
		*p = dec.I64()
	}
	return dec.Err()
}
