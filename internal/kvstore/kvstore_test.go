package kvstore

import (
	"errors"
	"testing"
	"testing/quick"

	"multiclock/internal/machine"
	"multiclock/internal/policy"
)

func newStore(items int) (*machine.Machine, *Store) {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{2048}
	cfg.Mem.PMNodes = []int{8192}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	m := machine.New(cfg, policy.NewStatic())
	return m, New(m, DefaultConfig(items))
}

func TestGetMissThenHit(t *testing.T) {
	m, s := newStore(1000)
	if s.Get(42) {
		t.Fatal("hit on empty store")
	}
	s.Insert(42, 1000)
	if !s.Get(42) {
		t.Fatal("miss after insert")
	}
	if s.Stats.Gets != 2 || s.Stats.GetHits != 1 || s.Stats.Inserts != 1 {
		t.Fatalf("stats: %+v", s.Stats)
	}
	if s.Items() != 1 {
		t.Fatal("item count")
	}
	_ = m
}

func TestAccessesAreSimulated(t *testing.T) {
	m, s := newStore(1000)
	before := m.Mem.Counters.TotalAccesses()
	s.Insert(1, 500)
	s.Get(1)
	delta := m.Mem.Counters.TotalAccesses() - before
	// Insert: bucket write + item write (+ faults count as accesses via
	// Touch on the same access) = 2; Get: bucket read + item read = 2.
	if delta != 4 {
		t.Fatalf("accesses = %d, want 4", delta)
	}
}

func TestSetOverwritesInPlace(t *testing.T) {
	_, s := newStore(1000)
	s.Insert(7, 900)
	mapped := s.Space().Mapped()
	s.Set(7, 800) // same 1024 class: in place
	if s.Space().Mapped() != mapped {
		t.Fatal("in-place set allocated")
	}
	if s.Items() != 1 {
		t.Fatal("item duplicated")
	}
}

func TestSetGrowsClass(t *testing.T) {
	_, s := newStore(1000)
	s.Insert(7, 100) // class 128
	s.Set(7, 3000)   // class 4096: reallocates
	if !s.Get(7) {
		t.Fatal("lost item after grow")
	}
}

func TestSetAbsentInserts(t *testing.T) {
	_, s := newStore(1000)
	s.Set(9, 100)
	if !s.Get(9) || s.Items() != 1 {
		t.Fatal("set-absent did not insert")
	}
}

func TestDelete(t *testing.T) {
	_, s := newStore(1000)
	s.Insert(1, 100)
	if !s.Delete(1) {
		t.Fatal("delete miss on present key")
	}
	if s.Delete(1) {
		t.Fatal("delete hit on absent key")
	}
	if s.Get(1) {
		t.Fatal("get after delete")
	}
}

func TestSlabReuseAfterDelete(t *testing.T) {
	_, s := newStore(1000)
	s.Insert(1, 100)
	ref1 := s.items[1]
	s.Delete(1)
	s.Insert(2, 100)
	if s.items[2].vpn != ref1.vpn {
		t.Fatal("freed chunk not reused")
	}
}

func TestReadModifyWrite(t *testing.T) {
	m, s := newStore(1000)
	s.Insert(5, 1000)
	before := m.Mem.Counters.TotalAccesses()
	if !s.ReadModifyWrite(5) {
		t.Fatal("rmw miss")
	}
	if got := m.Mem.Counters.TotalAccesses() - before; got != 3 {
		t.Fatalf("rmw accesses = %d, want 3 (bucket, read, write)", got)
	}
	if s.ReadModifyWrite(999) {
		t.Fatal("rmw hit on absent key")
	}
}

func TestScanUnsupported(t *testing.T) {
	_, s := newStore(1000)
	if err := s.Scan(0, 10); !errors.Is(err, ErrNoScan) {
		t.Fatalf("Scan error = %v", err)
	}
	if s.Stats.ScanRejects != 1 {
		t.Fatal("scan reject not counted")
	}
}

func TestLargeItemsSpanPages(t *testing.T) {
	_, s := newStore(1000)
	s.Insert(1, 3*4096+10)
	ref := s.items[1]
	if ref.npages != 4 || ref.class != -1 {
		t.Fatalf("large item ref: %+v", ref)
	}
	if !s.Get(1) {
		t.Fatal("large item get")
	}
	mapped := s.Space().Mapped()
	s.Delete(1)
	if s.Space().Mapped() != mapped-4 {
		t.Fatal("large item pages not released")
	}
}

func TestSlabPacking(t *testing.T) {
	_, s := newStore(1000)
	// 64-byte items: 64 fit per page.
	for i := uint64(0); i < 64; i++ {
		s.Insert(i, 60)
	}
	first := s.items[0].vpn
	for i := uint64(1); i < 64; i++ {
		if s.items[i].vpn != first {
			t.Fatalf("item %d not packed on first page", i)
		}
	}
	s.Insert(64, 60)
	if s.items[64].vpn == first {
		t.Fatal("65th item packed on full page")
	}
}

func TestClassFor(t *testing.T) {
	cases := map[int]int{1: 0, 64: 0, 65: 1, 1024: 4, 4096: 6, 4097: -1}
	for size, want := range cases {
		if got := classFor(size); got != want {
			t.Errorf("classFor(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestManyKeysNoCollisionLoss(t *testing.T) {
	_, s := newStore(10000)
	const n = 5000
	for i := uint64(0); i < n; i++ {
		s.Insert(i, 100+int(i%900))
	}
	if s.Items() != n {
		t.Fatalf("items = %d, want %d", s.Items(), n)
	}
	for i := uint64(0); i < n; i++ {
		if !s.Get(i) {
			t.Fatalf("key %d lost", i)
		}
	}
}

// Property: the store behaves like a map under arbitrary op sequences.
func TestStoreMapEquivalence(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Size uint16
	}
	f := func(ops []op) bool {
		_, s := newStore(1000)
		model := map[uint64]bool{}
		for _, o := range ops {
			key := uint64(o.Key % 32)
			size := int(o.Size%5000) + 1
			switch o.Kind % 4 {
			case 0:
				s.Insert(key, size)
				model[key] = true
			case 1:
				s.Set(key, size)
				model[key] = true
			case 2:
				if s.Delete(key) != model[key] {
					return false
				}
				delete(model, key)
			case 3:
				if s.Get(key) != model[key] {
					return false
				}
			}
		}
		if s.Items() != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigFloor(t *testing.T) {
	cfg := DefaultConfig(10)
	if cfg.Buckets < bucketsPerPage {
		t.Fatal("bucket floor")
	}
}

func TestHugeArenaStore(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{4096}
	cfg.Mem.PMNodes = []int{8192}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	m := machine.New(cfg, policy.NewStatic())
	scfg := DefaultConfig(2000)
	scfg.HugeArena = true
	s := New(m, scfg)
	for i := uint64(0); i < 2000; i++ {
		s.Insert(i, 1000)
	}
	for i := uint64(0); i < 2000; i++ {
		if !s.Get(i) {
			t.Fatalf("key %d lost in huge arena", i)
		}
	}
	// Item memory is huge-backed: far fewer faults than pages.
	if m.Mem.Counters.MinorFaults > 100 {
		t.Fatalf("minor faults = %d; huge arena should fault per region", m.Mem.Counters.MinorFaults)
	}
	// Large (page-spanning) items work and their frees do not unmap.
	s.Insert(9999, 3*4096)
	mapped := s.Space().Mapped()
	s.Delete(9999)
	if s.Space().Mapped() != mapped {
		t.Fatal("huge arena free unmapped pages out of a shared region")
	}
}
