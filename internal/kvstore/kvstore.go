// Package kvstore implements a memcached-like in-memory key-value store
// whose memory lives on the simulated machine: a paged hash table plus a
// slab allocator, with every operation issuing the page accesses the real
// server would (bucket probe, item read/write). It is the YCSB back-end of
// the evaluation (§V-B), including memcached's lack of SCAN support that
// makes workload E non-operational.
package kvstore

import (
	"errors"
	"fmt"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
)

// ErrNoScan reports that SCAN is not implemented, exactly like memcached.
var ErrNoScan = errors.New("kvstore: SCAN operations are not supported by this back-end")

// bucketBytes is the size of one hash-bucket header in the table.
const bucketBytes = 64

// bucketsPerPage is how many bucket headers share a page.
const bucketsPerPage = mem.PageSize / bucketBytes

// chunk size classes, memcached-style powers of two. Items larger than the
// biggest class span whole pages.
var classSizes = [...]int{64, 128, 256, 512, 1024, 2048, 4096}

// Config sizes the store.
type Config struct {
	// Buckets is the number of hash buckets; rounded up to a full page.
	Buckets int
	// ArenaPages bounds the slab arena (virtual reservation; pages are
	// demand-faulted). Zero picks a generous default.
	ArenaPages int
	// ItemTouches is how many cache-missing accesses reading or writing
	// one item page costs (copying a ~1 KiB value misses several lines).
	// Zero means 1.
	ItemTouches int
	// HugeArena backs the slab arena with transparent huge pages, the
	// configuration madvise(MADV_HUGEPAGE) would give a real memcached.
	// Tiering then operates at 2 MiB granularity over item memory.
	HugeArena bool
}

// DefaultConfig sizes the table for about n resident items.
func DefaultConfig(n int) Config {
	b := n / 4
	if b < bucketsPerPage {
		b = bucketsPerPage
	}
	return Config{Buckets: b, ItemTouches: 1}
}

type itemRef struct {
	vpn    pagetable.VPN
	npages int32
	class  int8
}

type slabClass struct {
	chunk   int
	perPage int
	free    []pagetable.VPN // one entry per free chunk, keyed by its page
	cur     pagetable.VPN   // current partial page, 0 = none
	curUsed int
}

// Stats counts store operations.
type Stats struct {
	Gets, GetHits   int64
	Sets, Inserts   int64
	Deletes, RMWs   int64
	ScanRejects     int64
	BytesStored     int64
	EvictedForSpace int64
}

// Store is the key-value store instance.
type Store struct {
	m  *machine.Machine
	as *pagetable.AddressSpace

	nbuckets  int
	bucketVMA *pagetable.VMA

	arena     *pagetable.VMA
	arenaNext pagetable.VPN

	classes     [len(classSizes)]slabClass
	items       map[uint64]itemRef
	itemTouches int
	hugeArena   bool

	Stats Stats
}

// New creates a store with its own address space on m.
func New(m *machine.Machine, cfg Config) *Store {
	if cfg.Buckets <= 0 {
		cfg = DefaultConfig(1 << 16)
	}
	nbuckets := (cfg.Buckets + bucketsPerPage - 1) / bucketsPerPage * bucketsPerPage
	arena := cfg.ArenaPages
	if arena <= 0 {
		arena = 1 << 20 // 4 GiB of virtual reservation; faulted on demand
	}
	touches := cfg.ItemTouches
	if touches <= 0 {
		touches = 1
	}
	s := &Store{
		m:           m,
		as:          m.NewSpace(),
		nbuckets:    nbuckets,
		items:       make(map[uint64]itemRef),
		itemTouches: touches,
		hugeArena:   cfg.HugeArena,
	}
	s.bucketVMA = s.as.Mmap(nbuckets/bucketsPerPage, false, "hashtable")
	if cfg.HugeArena {
		s.arena = s.as.MmapHuge(arena, "slab-arena")
	} else {
		s.arena = s.as.Mmap(arena, false, "slab-arena")
	}
	s.arenaNext = s.arena.Start
	for i, sz := range classSizes {
		s.classes[i] = slabClass{chunk: sz, perPage: mem.PageSize / sz}
	}
	return s
}

// Space exposes the store's address space (for telemetry and tests).
func (s *Store) Space() *pagetable.AddressSpace { return s.as }

// Items returns the number of stored records.
func (s *Store) Items() int { return len(s.items) }

// hash is splitmix64, well mixed for sequential keys.
func hash(key uint64) uint64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// bucketVPN returns the hash-table page holding key's bucket.
func (s *Store) bucketVPN(key uint64) pagetable.VPN {
	b := hash(key) % uint64(s.nbuckets)
	return s.bucketVMA.Start + pagetable.VPN(b/bucketsPerPage)
}

// classFor picks the smallest fitting size class, or -1 for page-spanning
// items.
func classFor(size int) int {
	for i, sz := range classSizes {
		if size <= sz {
			return i
		}
	}
	return -1
}

// allocItem carves space for one item and returns its reference.
func (s *Store) allocItem(size int) itemRef {
	ci := classFor(size)
	if ci < 0 {
		npages := (size + mem.PageSize - 1) / mem.PageSize
		ref := itemRef{vpn: s.arenaNext, npages: int32(npages), class: -1}
		s.arenaNext += pagetable.VPN(npages)
		s.checkArena()
		return ref
	}
	c := &s.classes[ci]
	if n := len(c.free); n > 0 {
		vpn := c.free[n-1]
		c.free = c.free[:n-1]
		return itemRef{vpn: vpn, npages: 1, class: int8(ci)}
	}
	if c.cur == 0 || c.curUsed >= c.perPage {
		c.cur = s.arenaNext
		s.arenaNext++
		s.checkArena()
		c.curUsed = 0
	}
	c.curUsed++
	return itemRef{vpn: c.cur, npages: 1, class: int8(ci)}
}

func (s *Store) checkArena() {
	if s.arenaNext >= s.arena.End {
		panic(fmt.Sprintf("kvstore: slab arena exhausted (%d pages)", s.arena.Pages()))
	}
}

// freeItem returns the item's space to its slab class. Page-spanning items
// release their pages back to the machine entirely — unless the arena is
// huge-backed, where unmapping base pages would tear whole regions out
// from under their neighbours; those pages stay resident like freed slab
// chunks do.
func (s *Store) freeItem(ref itemRef) {
	if ref.class < 0 {
		if !s.hugeArena {
			for i := pagetable.VPN(0); i < pagetable.VPN(ref.npages); i++ {
				s.m.Unmap(s.as, ref.vpn+i)
			}
		}
		return
	}
	c := &s.classes[ref.class]
	c.free = append(c.free, ref.vpn)
}

// touchItem performs the data accesses of reading or writing the item:
// itemTouches cache-line transfers per page of the item.
func (s *Store) touchItem(ref itemRef, write bool) {
	s.m.AccessRange(s.as, ref.vpn, int(ref.npages), write, s.itemTouches)
}

// Get looks the key up, touching the bucket page and, on a hit, the item's
// pages. Reports whether the key was present.
func (s *Store) Get(key uint64) bool {
	s.Stats.Gets++
	s.m.Access(s.as, s.bucketVPN(key), false)
	ref, ok := s.items[key]
	if !ok {
		return false
	}
	s.Stats.GetHits++
	s.touchItem(ref, false)
	return true
}

// Set stores a value of the given size under key, inserting if absent or
// overwriting in place when the size class still fits.
func (s *Store) Set(key uint64, size int) {
	s.Stats.Sets++
	s.m.Access(s.as, s.bucketVPN(key), false)
	ref, ok := s.items[key]
	if ok && fitsInPlace(ref, size) {
		s.touchItem(ref, true)
		return
	}
	if ok {
		s.freeItem(ref)
	}
	s.insertLocked(key, size)
}

// Insert adds a new record (YCSB insert). An existing key is overwritten.
func (s *Store) Insert(key uint64, size int) {
	s.Stats.Inserts++
	s.m.Access(s.as, s.bucketVPN(key), true) // chain update
	if old, ok := s.items[key]; ok {
		s.freeItem(old)
	}
	s.insertLocked(key, size)
}

func fitsInPlace(ref itemRef, size int) bool {
	if ref.class >= 0 {
		return size <= classSizes[ref.class]
	}
	return size <= int(ref.npages)*mem.PageSize
}

func (s *Store) insertLocked(key uint64, size int) {
	ref := s.allocItem(size)
	s.items[key] = ref
	s.Stats.BytesStored += int64(size)
	s.touchItem(ref, true)
}

// Delete removes the record, touching the bucket chain. Reports presence.
func (s *Store) Delete(key uint64) bool {
	s.Stats.Deletes++
	s.m.Access(s.as, s.bucketVPN(key), true)
	ref, ok := s.items[key]
	if !ok {
		return false
	}
	delete(s.items, key)
	s.freeItem(ref)
	return true
}

// ReadModifyWrite reads the record then writes it back (YCSB workload F).
// Reports whether the key existed.
func (s *Store) ReadModifyWrite(key uint64) bool {
	s.Stats.RMWs++
	s.m.Access(s.as, s.bucketVPN(key), false)
	ref, ok := s.items[key]
	if !ok {
		return false
	}
	s.touchItem(ref, false)
	s.touchItem(ref, true)
	return true
}

// Scan is unsupported: memcached has no range queries, which renders YCSB
// workload E non-operational (§V-B).
func (s *Store) Scan(startKey uint64, count int) error {
	s.Stats.ScanRejects++
	return ErrNoScan
}
