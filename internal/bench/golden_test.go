package bench

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multiclock/internal/graph"
	"multiclock/internal/kvstore"
	"multiclock/internal/machine"
	"multiclock/internal/metrics"
	"multiclock/internal/runner"
	"multiclock/internal/sim"
	"multiclock/internal/trace"
	"multiclock/internal/ycsb"
)

// The golden fixtures pin the access engine's observable output — reports
// and metrics exports — so fast-path changes (batching, allocation reuse,
// devirtualized dispatch) can be proven not to move a single virtual-time
// result. The fixtures were captured before the fast path landed; any
// optimization that changes a byte here changed simulation behavior.
//
// Regenerate (only for intentional behavior changes) with:
//
//	go test ./internal/bench -run TestGoldenAccessEngine -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden access-engine fixtures")

// goldenScale is a compact grid: big enough to exercise faulting, cache
// filtering, aging, promotion/demotion and swap pressure, small enough to
// run in a few seconds.
func goldenScale(pool *metrics.Pool) scale {
	return scale{
		Interval:       10 * sim.Millisecond,
		DRAMPages:      512,
		PMPages:        4096,
		Records:        4000,
		OpsPerWorkload: 40_000,
		Window:         200 * sim.Millisecond,
		Metrics:        pool,
		MetricsPrefix:  "golden/",
		Series:         20 * sim.Millisecond,
		Lifecycle:      31,
	}
}

// goldenYCSB runs the given workloads on a fresh instrumented machine and
// reports virtual-timeline results plus the full counter set.
func goldenYCSB(sc scale, system string, huge bool, workloads []ycsb.Workload) string {
	label := system
	if huge {
		label += "-huge"
	}
	p, err := NewPolicy(system, sc.Interval)
	if err != nil {
		panic(err)
	}
	m := machineFor(sc, 1, p)
	sc.instrument(m, label)
	storeCfg := kvstore.DefaultConfig(int(sc.Records))
	storeCfg.ItemTouches = 8
	storeCfg.HugeArena = huge
	store := kvstore.New(m, storeCfg)
	clientCfg := ycsb.DefaultClientConfig(sc.Records)
	clientCfg.Seed = 0x9c5b
	client := ycsb.NewClient(m, store, clientCfg)
	client.Load()
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", label)
	for _, w := range workloads {
		res := client.Run(w, sc.OpsPerWorkload)
		fmt.Fprintf(&b, "%s: tp=%.3f ops=%d p50=%v p95=%v p99=%v mean=%v\n",
			w.Name, res.Throughput, res.Ops, res.P50, res.P95, res.P99, res.MeanLatency)
	}
	fmt.Fprintf(&b, "%s\nelapsed=%v ops=%d\n", m.Mem.Counters.String(), m.Elapsed(), m.Ops)
	stopDaemons(p)
	return b.String()
}

// goldenGAPBS runs a small PageRank whose CSR exceeds DRAM.
func goldenGAPBS(sc scale, system string) string {
	p, err := NewPolicy(system, sc.Interval)
	if err != nil {
		panic(err)
	}
	gsc := sc
	gsc.DRAMPages = 256
	gsc.PMPages = 2048
	m := machineFor(gsc, 1, p)
	sc.instrument(m, system+"-pr")
	g := graph.Generate(m, graph.GenConfig{Vertices: 4000, Degree: 4, Kronecker: true, Seed: 1})
	m.AbsorbTax()
	start := m.Clock.Now()
	g.PageRank(2)
	var b strings.Builder
	fmt.Fprintf(&b, "== %s-pr ==\n", system)
	fmt.Fprintf(&b, "PR: time=%v\n%s\nelapsed=%v\n",
		sim.Duration(m.Clock.Now()-start), m.Mem.Counters.String(), m.Elapsed())
	stopDaemons(p)
	return b.String()
}

// goldenPattern drives the Fig. 1 rubis pattern (cache-hit heavy, compound
// phase behavior) on an instrumented machine.
func goldenPattern(sc scale, system string) string {
	p, err := NewPolicy(system, sc.Interval)
	if err != nil {
		panic(err)
	}
	gsc := sc
	gsc.DRAMPages = 256
	gsc.PMPages = 2048
	m := machineFor(gsc, 1, p)
	sc.instrument(m, system+"-pattern")
	as := m.NewSpace()
	trace.RunPattern(m, as, trace.PatternRUBiS, 100*sim.Millisecond, 7)
	var b strings.Builder
	fmt.Fprintf(&b, "== %s-pattern ==\n%s\nelapsed=%v ops=%d\n",
		system, m.Mem.Counters.String(), m.Elapsed(), m.Ops)
	stopDaemons(p)
	return b.String()
}

// goldenGrid runs the fixed cell set at the given parallelism and returns
// the concatenated report plus the canonical metrics export. Each cell is
// an independent single-threaded machine, so both outputs must be
// byte-identical at every parallelism level.
func goldenGrid(parallel int) (string, []byte) {
	pool := metrics.NewPool(16)
	sc := goldenScale(pool)
	cells := []struct {
		name string
		run  func() string
	}{
		{"multiclock", func() string {
			return goldenYCSB(sc, "multiclock", false, []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadD})
		}},
		{"nimble", func() string {
			return goldenYCSB(sc, "nimble", false, []ycsb.Workload{ycsb.WorkloadA})
		}},
		{"static", func() string {
			return goldenYCSB(sc, "static", false, []ycsb.Workload{ycsb.WorkloadA})
		}},
		{"multiclock-huge", func() string {
			return goldenYCSB(sc, "multiclock", true, []ycsb.Workload{ycsb.WorkloadA})
		}},
		{"multiclock-pr", func() string { return goldenGAPBS(sc, "multiclock") }},
		{"multiclock-pattern", func() string { return goldenPattern(sc, "multiclock") }},
	}
	outs := runner.Map(parallel, cells, func(i int, c struct {
		name string
		run  func() string
	}) string {
		return c.run()
	})
	report := strings.Join(outs, "\n")
	data, err := pool.ExportJSON()
	if err != nil {
		panic(err)
	}
	return report, data
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (run with -update-golden): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output diverged from the golden fixture (%d vs %d bytes).\n"+
			"The access engine changed observable behavior; if intentional, regenerate with -update-golden.\n"+
			"first divergence at byte %d", name, len(got), len(want), firstDiff(got, want))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestGoldenAccessEngine proves reports and metrics exports are
// byte-identical to the checked-in pre-fast-path fixtures, at -parallel 1,
// 2 and 4.
func TestGoldenAccessEngine(t *testing.T) {
	report, export := goldenGrid(1)
	checkGolden(t, "golden_report.txt", []byte(report))
	checkGolden(t, "golden_metrics.json", export)
	if *updateGolden {
		return
	}
	for _, par := range []int{2, 4} {
		r, e := goldenGrid(par)
		if r != report {
			t.Errorf("-parallel %d report differs from sequential run (first divergence at byte %d)",
				par, firstDiff([]byte(r), []byte(report)))
		}
		if !bytes.Equal(e, export) {
			t.Errorf("-parallel %d metrics export differs from sequential run (first divergence at byte %d)",
				par, firstDiff(e, export))
		}
	}
}

var _ = machine.DefaultConfig
