package bench

import (
	"fmt"
	"strings"

	"multiclock/internal/runner"
	"multiclock/internal/stats"
)

// BakeoffNames lists the policy bake-off comparison set: the paper's
// contenders plus the competitor policies implemented from related work —
// Nomad-style non-exclusive tiering, bandwidth-gated admission control on
// the MULTI-CLOCK daemons, and the S3-FIFO promote-candidate selector.
var BakeoffNames = []string{
	"static", "multiclock", "multiclock-gated", "nimble", "nomad", "s3fifo",
}

// Bakeoff runs the YCSB sequence over the bake-off comparison set and
// reports normalized throughput plus each policy's migration economy: how
// many pages it moved, what the moves cost, and the mechanism-specific
// counters (shadow copies, free demotions, admission rejections).
func Bakeoff(opt Options) string {
	sc := opt.scale()
	sc.MetricsPrefix = "bakeoff/"
	workloads := []string{"A", "B", "C", "F", "W", "D"}

	cells := runner.Map(opt.workers(), BakeoffNames, func(_ int, system string) ycsbRunResult {
		return ycsbRun(sc, opt.Seed, system, sc.Interval, false)
	})
	results := map[string]map[string]float64{}
	notes := map[string]string{}
	economy := map[string]string{}
	for i, system := range BakeoffNames {
		results[system] = cells[i].Throughput
		notes[system] = tierSummary(cells[i].Machine)
		c := &cells[i].Machine.Mem.Counters
		var extra []string
		if c.ShadowPromotes > 0 || c.ShadowHits > 0 || c.ShadowDrops > 0 {
			extra = append(extra, fmt.Sprintf("shadow: promotes=%d free-demotes=%d drops=%d",
				c.ShadowPromotes, c.ShadowHits, c.ShadowDrops))
		}
		if c.AdmissionRejects > 0 {
			extra = append(extra, fmt.Sprintf("admission-rejects=%d", c.AdmissionRejects))
		}
		economy[system] = fmt.Sprintf("promotions=%d demotions=%d migration-busy=%v",
			c.Promotions, c.Demotions, c.MigrationBusy)
		if len(extra) > 0 {
			economy[system] += "  " + strings.Join(extra, "  ")
		}
	}

	tb := stats.NewTable(
		"Policy bake-off — YCSB throughput normalized to static tiering (higher is better)",
		append([]string{"workload"}, BakeoffNames...)...)
	for _, w := range workloads {
		base := results["static"][w]
		row := []string{w}
		for _, system := range BakeoffNames {
			norm := 0.0
			if base > 0 {
				norm = results[system][w] / base
			}
			row = append(row, fmt.Sprintf("%.3f", norm))
		}
		tb.AddRow(row...)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nabsolute static throughput (ops/s): ")
	for _, w := range workloads {
		fmt.Fprintf(&b, "%s=%.0f ", w, results["static"][w])
	}
	b.WriteString("\n")
	for _, system := range BakeoffNames {
		fmt.Fprintf(&b, "%-17s %s\n", system, notes[system])
		fmt.Fprintf(&b, "%-17s %s\n", "", economy[system])
	}
	return b.String()
}
