package bench

// Chaos soak: drive the tiering policies under deterministic fault
// injection and assert the robustness contract — no panics, machine
// invariants hold after every injected fault, equal seeds reproduce runs
// bit for bit, zero-rate injection is a true no-op, and a 1%
// migration-failure rate costs at most a bounded factor of virtual time.

import (
	"reflect"
	"testing"

	"multiclock/internal/fault"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// chaosRun drives one randomized workload on one policy under the given
// injection config. Invariants are re-checked at the first op boundary
// after every injected fault, so a fault that corrupts state is caught at
// the event that follows it, not after the storm.
func chaosRun(t *testing.T, system string, seed uint64, ops int, fcfg fault.Config) (sim.Duration, mem.Counters, fault.Counters) {
	t.Helper()
	p, err := NewPolicy(system, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{128, 128}
	cfg.Mem.PMNodes = []int{512, 512}
	cfg.Seed = seed
	cfg.OpCost = 200 * sim.Nanosecond
	cfg.Faults = fcfg
	m := machine.New(cfg, p)
	as := m.NewSpace()
	v := as.Mmap(2000, false, "chaos")

	rng := sim.NewRNG(seed ^ 0xc4a05)
	var seen int64
	for i := 0; i < ops; i++ {
		switch rng.Intn(20) {
		case 0:
			m.Unmap(as, v.Start+pagetable.VPN(rng.Intn(2000)))
		case 1:
			// Idle long enough for daemons (and their faults) to run.
			m.Compute(sim.Duration(rng.Intn(20)) * sim.Millisecond)
		default:
			var idx int
			if rng.Intn(10) < 7 {
				idx = rng.Intn(200)
			} else {
				idx = rng.Intn(2000)
			}
			m.Access(as, v.Start+pagetable.VPN(idx), rng.Intn(3) == 0)
		}
		m.EndOp()
		if m.Faults != nil {
			if tot := m.Faults.Counters.Total(); tot != seen {
				seen = tot
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("%s seed=%d op=%d after %d injected faults: %v", system, seed, i, tot, err)
				}
			}
		}
	}
	stopDaemons(p)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("%s seed=%d final: %v", system, seed, err)
	}
	var fc fault.Counters
	if m.Faults != nil {
		fc = m.Faults.Counters
	}
	return m.Elapsed(), m.Mem.Counters, fc
}

func chaosOps(t *testing.T) int {
	if testing.Short() {
		return 1200
	}
	return 5000
}

// bakeoffExtras are the competitor policies outside the paper's comparison
// set; they ride every chaos contract the paper systems do.
var bakeoffExtras = []string{"nomad", "s3fifo", "multiclock-gated", "nimble-gated"}

// TestChaosSoak: every tiered system survives a uniform 1% injection
// campaign with its invariants intact, and the campaign actually fires.
func TestChaosSoak(t *testing.T) {
	systems := append(append([]string{}, SystemNames...), "memory-mode")
	systems = append(systems, bakeoffExtras...)
	ops := chaosOps(t)
	for _, system := range systems {
		system := system
		t.Run(system, func(t *testing.T) {
			t.Parallel() // each run builds its own machine
			for seed := uint64(1); seed <= 2; seed++ {
				_, _, fc := chaosRun(t, system, seed, ops, fault.UniformRate(seed, 0.01))
				if fc.Total() == 0 {
					t.Fatalf("seed=%d: campaign injected nothing", seed)
				}
			}
		})
	}
}

// TestChaosDeterminism: equal seeds reproduce a chaos run exactly — same
// virtual elapsed time, same memory counters, same fault tallies.
func TestChaosDeterminism(t *testing.T) {
	t.Parallel()
	for _, system := range []string{"multiclock", "nimble", "nomad", "s3fifo", "multiclock-gated"} {
		fcfg := fault.UniformRate(77, 0.02)
		e1, c1, f1 := chaosRun(t, system, 9, chaosOps(t)/2, fcfg)
		e2, c2, f2 := chaosRun(t, system, 9, chaosOps(t)/2, fcfg)
		if e1 != e2 || !reflect.DeepEqual(c1, c2) || f1 != f2 {
			t.Fatalf("%s: chaos run not reproducible:\n%v %+v %+v\nvs\n%v %+v %+v",
				system, e1, c1, f1, e2, c2, f2)
		}
	}
}

// TestChaosZeroRateIsNoOp: a config whose rates are all zero must build no
// injector at all and leave the run identical to one with no fault config,
// seed field set or not.
func TestChaosZeroRateIsNoOp(t *testing.T) {
	t.Parallel()
	p, _ := NewPolicy("multiclock", 5*sim.Millisecond)
	cfg := machine.DefaultConfig()
	cfg.Faults = fault.Config{Seed: 99} // seed set, every rate zero
	m := machine.New(cfg, p)
	if m.Faults != nil {
		t.Fatal("zero-rate config built an injector")
	}
	stopDaemons(p)

	ops := chaosOps(t) / 2
	for _, system := range append([]string{"multiclock"}, bakeoffExtras...) {
		e1, c1, f1 := chaosRun(t, system, 5, ops, fault.Config{})
		e2, c2, f2 := chaosRun(t, system, 5, ops, fault.Config{Seed: 99})
		if e1 != e2 || !reflect.DeepEqual(c1, c2) || f1 != f2 {
			t.Fatalf("%s: zero-rate run diverged from fault-free run: %v vs %v", system, e1, e2)
		}
		if f1.Total() != 0 || f2.Total() != 0 {
			t.Fatalf("%s: fault-free runs recorded injections", system)
		}
	}
}

// TestChaosThroughputBounded: a 1% transient-migration-failure rate (the
// tentpole's degradation budget) may cost virtual time, but within a small
// constant factor of the fault-free run — graceful degradation, not
// collapse.
func TestChaosThroughputBounded(t *testing.T) {
	t.Parallel()
	fcfg := fault.Config{Seed: 3}
	fcfg.Rates[fault.MigratePinned] = 0.005
	fcfg.Rates[fault.MigrateTargetDenied] = 0.005

	ops := chaosOps(t)
	clean, cc, _ := chaosRun(t, "multiclock", 11, ops, fault.Config{})
	faulty, fc, inj := chaosRun(t, "multiclock", 11, ops, fcfg)
	if inj.Total() == 0 {
		t.Skip("campaign injected nothing at this scale")
	}
	if faulty > 2*clean {
		t.Fatalf("1%% migration-failure rate cost %v vs fault-free %v (> 2x)", faulty, clean)
	}
	// The same op sequence ran to completion under faults. (Per-tier
	// counts may shift — placement changes what the modelled CPU cache
	// absorbs — but the op total is invariant.)
	if fc.TotalAccesses()+fc.CacheFiltered != cc.TotalAccesses()+cc.CacheFiltered {
		t.Fatalf("faulty run lost accesses: %d vs %d",
			fc.TotalAccesses()+fc.CacheFiltered, cc.TotalAccesses()+cc.CacheFiltered)
	}
}
