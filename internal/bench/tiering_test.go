package bench

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"multiclock/internal/kvstore"
	"multiclock/internal/metrics"
	"multiclock/internal/snapshot"
	"multiclock/internal/ycsb"
)

// fourTierSpec is the full hierarchy: DRAM over CXL-attached DRAM over PM,
// with the durable swap tier last.
const fourTierSpec = "dram:128,cxl:256,pm:1024,ssd:*"

// allPolicyNames is every system NewPolicy accepts.
var allPolicyNames = []string{
	"static", "multiclock", "nimble", "at-cpm", "at-opm", "memory-mode",
	"thermostat", "amp-lru", "amp-lfu", "amp-random", "nomad", "s3fifo",
	"multiclock-gated", "nimble-gated",
}

// runTiered drives one policy over YCSB A on an instrumented machine built
// from the tier spec and returns the report plus the metrics export.
func runTiered(t *testing.T, policy, tiers string) (string, []byte) {
	t.Helper()
	pool := metrics.NewPool(0)
	sc := scale{
		Interval:       5 * 1e6, // 5ms
		Records:        2_000,
		OpsPerWorkload: 20_000,
		Tiers:          tiers,
		Metrics:        pool,
		MetricsPrefix:  "tiered/",
	}
	p, err := NewPolicy(policy, sc.Interval)
	if err != nil {
		t.Fatalf("NewPolicy(%s): %v", policy, err)
	}
	m := machineFor(sc, 1, p)
	sc.instrument(m, policy)
	storeCfg := kvstore.DefaultConfig(int(sc.Records))
	storeCfg.ItemTouches = 8
	store := kvstore.New(m, storeCfg)
	clientCfg := ycsb.DefaultClientConfig(sc.Records)
	clientCfg.Seed = 0x9c5b
	client := ycsb.NewClient(m, store, clientCfg)
	client.Load()
	res := client.Run(ycsb.WorkloadA, sc.OpsPerWorkload)
	var b strings.Builder
	fmt.Fprintf(&b, "tp=%.3f p50=%v p99=%v\n%s\nelapsed=%v ops=%d\n",
		res.Throughput, res.P50, res.P99, m.Mem.Counters.String(), m.Elapsed(), m.Ops)
	stopDaemons(p)
	export, err := pool.ExportJSON()
	if err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	return b.String(), export
}

// TestFourTierAllPoliciesDeterministic is the acceptance run: every policy
// completes a 4-tier workload, twice, with byte-identical reports and
// metrics exports, and the export carries per-tier access-latency
// histograms for the new tiers.
func TestFourTierAllPoliciesDeterministic(t *testing.T) {
	for _, policy := range allPolicyNames {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			r1, e1 := runTiered(t, policy, fourTierSpec)
			r2, e2 := runTiered(t, policy, fourTierSpec)
			if r1 != r2 {
				t.Errorf("4-tier run is not deterministic:\n--- first\n%s\n--- second\n%s", r1, r2)
			}
			if !bytes.Equal(e1, e2) {
				t.Errorf("4-tier metrics export is not deterministic")
			}
			for _, name := range []string{
				"access_latency_dram_read_ns", "access_latency_cxl_read_ns",
				"access_latency_pm_read_ns", "access_latency_cxl_write_ns",
			} {
				if !bytes.Contains(e1, []byte(name)) {
					t.Errorf("metrics export lacks per-tier histogram %q", name)
				}
			}
		})
	}
}

// TestThreeTierSoakResumeIdentity extends the resume-identity matrix to an
// explicit 3-tier hierarchy: a session restored mid-run must finish with a
// byte-identical report and state fingerprint.
func TestThreeTierSoakResumeIdentity(t *testing.T) {
	for _, policy := range []string{"multiclock", "nomad", "s3fifo"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			cfg := testSoakConfig(policy, false)
			cfg.Tiers = "dram:128,cxl:256,pm:1024"
			straight, rec1, _ := runStraight(t, cfg)
			resumed, rec2, _ := resumeFromMidpoint(t, cfg, cfg.Ops/2)
			if straight != resumed {
				t.Errorf("resumed 3-tier report differs from straight run:\n--- straight\n%s\n--- resumed\n%s", straight, resumed)
			}
			diffFingerprints(t, rec1, rec2)
		})
	}
}

// TestSnapshotCrossTopologyRejected: restoring a 3-tier snapshot onto a
// 2-tier target fails with a ConfigMismatchError naming the mem section and
// the mismatch, never a partial restore.
func TestSnapshotCrossTopologyRejected(t *testing.T) {
	cfg := testSoakConfig("multiclock", false)
	cfg.Tiers = "dram:128,cxl:256,pm:1024"
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.RunUntil(1_000)
	f, err := s.Capture()
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}

	twoTier := testSoakConfig("multiclock", false)
	other, err := newPristine(twoTier)
	if err != nil {
		t.Fatalf("newPristine: %v", err)
	}
	var cm *snapshot.ConfigMismatchError
	err = snapshot.Restore(other.target(), f)
	if !errors.As(err, &cm) {
		t.Fatalf("Restore 3-tier snapshot onto 2-tier target = %v, want ConfigMismatchError", err)
	}
	for _, want := range []string{snapshot.SecMem, "topology mismatch"} {
		if !strings.Contains(cm.Error(), want) {
			t.Errorf("mismatch error %q does not name %q", cm, want)
		}
	}

	// The opposite direction is rejected the same way.
	s2, err := NewSession(twoTier)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s2.RunUntil(1_000)
	f2, err := s2.Capture()
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	other3, err := newPristine(cfg)
	if err != nil {
		t.Fatalf("newPristine: %v", err)
	}
	if err := snapshot.Restore(other3.target(), f2); !errors.As(err, &cm) {
		t.Fatalf("Restore 2-tier snapshot onto 3-tier target = %v, want ConfigMismatchError", err)
	}
}

// TestSnapshotVersion1Rejected: the topology header bumped the container
// format, so a version-1 file (pre-bump layout) is refused with a
// VersionError instead of being misparsed.
func TestSnapshotVersion1Rejected(t *testing.T) {
	if snapshot.Version < 2 {
		t.Fatalf("container version = %d, expected the tier-topology bump to 2+", snapshot.Version)
	}
	f := snapshot.NewFile()
	f.Version = 1
	f.AddSection(snapshot.SecConfig, []byte("x"))
	var ve *snapshot.VersionError
	if _, err := snapshot.Decode(f.Encode()); !errors.As(err, &ve) {
		t.Fatalf("Decode version-1 container = %v, want VersionError", err)
	}
	if ve.Got != 1 || ve.Want != snapshot.Version {
		t.Errorf("VersionError = got %d want %d, expected got 1 want %d", ve.Got, ve.Want, snapshot.Version)
	}
}

// TestGoldenTopologyPinned proves the explicit -tiers construction path is
// byte-identical to the legacy two-tier default by replaying the golden
// grid's multiclock cell through a spec-built topology and comparing it
// against the checked-in PR 6 fixture (which predates the tier API and must
// not be regenerated).
func TestGoldenTopologyPinned(t *testing.T) {
	sc := goldenScale(nil)
	sc.Tiers = fmt.Sprintf("dram:%d,pm:%d", sc.DRAMPages, sc.PMPages)
	got := goldenYCSB(sc, "multiclock", false, []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadD})

	full, err := os.ReadFile(goldenPath("golden_report.txt"))
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	idx := bytes.Index(full, []byte("\n== nimble =="))
	if idx < 0 {
		t.Fatalf("golden fixture lacks the nimble cell marker")
	}
	want := string(full[:idx])
	if got != want {
		t.Errorf("spec-built topology diverged from the checked-in two-tier fixture (first divergence at byte %d)",
			firstDiff([]byte(got), []byte(want)))
	}
}
