package bench

import (
	"strings"
	"testing"
)

func trendEntry(name string, quick bool, pps float64) TrendEntry {
	return TrendEntry{Name: name, Report: PerfReport{
		Schema: PerfSchema, Quick: quick,
		Workloads: []PerfResult{{Workload: "ycsb-a", Ops: 1, Accesses: 1, WallNS: 1, VirtualNS: 1, PagesPerSec: pps, NsPerAccess: 1}},
	}}
}

func TestSortTrendOrdering(t *testing.T) {
	entries := []TrendEntry{
		trendEntry("pr10", true, 1),
		trendEntry("nightly", true, 1),
		trendEntry("pr2", true, 1),
		trendEntry("baseline", true, 1),
		trendEntry("pr9", true, 1),
	}
	SortTrend(entries)
	var got []string
	for _, e := range entries {
		got = append(got, e.Name)
	}
	want := []string{"baseline", "pr2", "pr9", "pr10", "nightly"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFormatTrendMixedScale(t *testing.T) {
	// A full-scale report in a quick trajectory is flagged and its numbers
	// are excluded from the delta chain: pr3's delta compares against pr1,
	// not against the full-scale pr2.
	entries := []TrendEntry{
		trendEntry("pr1", true, 1000),
		trendEntry("pr2", false, 9999),
		trendEntry("pr3", true, 1100),
	}
	out := FormatTrend(entries)
	if !strings.Contains(out, "pr2[full]") {
		t.Fatalf("full-scale report not flagged:\n%s", out)
	}
	if !strings.Contains(out, "1100 (+10.0%)") {
		t.Fatalf("delta should skip the incomparable report:\n%s", out)
	}
	if strings.Contains(out, "9999 (") {
		t.Fatalf("incomparable report must not carry a delta:\n%s", out)
	}
}

func TestFormatTrendEmpty(t *testing.T) {
	if out := FormatTrend(nil); !strings.Contains(out, "no perf reports") {
		t.Fatalf("empty trajectory: %q", out)
	}
}
