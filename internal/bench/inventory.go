package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Table2 reinterprets the paper's Table II (lines of kernel code modified,
// per file) as this repository's inventory: Go lines per package under
// root. The paper changed 673+30 lines of an existing kernel; a
// reproduction builds the substrate too, so the interesting number is the
// whole-system size.
func Table2(root string) (string, error) {
	counts := map[string]int{}
	var walk func(dir, rel string) error
	walk = func(dir, rel string) error {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, ".") {
				continue
			}
			if e.IsDir() {
				if err := walk(dir+"/"+name, rel+name+"/"); err != nil {
					return err
				}
				continue
			}
			if !strings.HasSuffix(name, ".go") {
				continue
			}
			data, err := os.ReadFile(dir + "/" + name)
			if err != nil {
				return err
			}
			pkg := strings.TrimSuffix(rel, "/")
			if pkg == "" {
				pkg = "(root)"
			}
			counts[pkg] += strings.Count(string(data), "\n")
		}
		return nil
	}
	if err := walk(root, ""); err != nil {
		return "", err
	}
	pkgs := make([]string, 0, len(counts))
	for p := range counts {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	var b strings.Builder
	b.WriteString("Table II (reinterpreted) — Go lines per package in this reproduction\n")
	total := 0
	for _, p := range pkgs {
		fmt.Fprintf(&b, "%-28s %6d\n", p, counts[p])
		total += counts[p]
	}
	fmt.Fprintf(&b, "%-28s %6d\n", "TOTAL", total)
	b.WriteString("\n(the paper modified 673 new + 30 existing kernel lines — it got the\nrest of Linux for free; a reproduction builds the substrate too)\n")
	return b.String(), nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("go.mod not found above %s", dir)
		}
		abs = parent
	}
}
