package bench

import (
	"bytes"
	"strings"
	"testing"

	"multiclock/internal/metrics"
	"multiclock/internal/sim"
)

// runFig10Observed runs the quick Fig. 10 sweep with the full observability
// stack riding the metrics pool and returns (report text, export JSON).
func runFig10Observed(t *testing.T, parallel int) (string, []byte) {
	t.Helper()
	pool := metrics.NewPool(0)
	out := Fig10(Options{
		Quick: true, Seed: 1, Parallel: parallel,
		Metrics:   pool,
		Series:    10 * sim.Millisecond,
		Lifecycle: 64,
	})
	data, err := pool.ExportJSON()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	return out, data
}

// TestObservedExportDeterministicAcrossParallelism is the PR's acceptance
// golden: with the sampler and tracer enabled, both the experiment report
// and the full metrics export (series and lifecycle sections included) are
// byte-identical at every parallelism level, because instrumentation is
// strictly per-machine and sampling is a pure function of page identity.
func TestObservedExportDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	seqOut, seqJSON := runFig10Observed(t, 1)
	parOut, parJSON := runFig10Observed(t, 4)
	if seqOut != parOut {
		t.Fatal("fig10 report differs across parallelism with observability on")
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatal("observability export differs across parallelism")
	}
	ex, err := metrics.ReadExport(seqJSON)
	if err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
	withSeries, withSpans := 0, 0
	for _, r := range ex.Runs {
		if r.Series != nil && len(r.Series.Windows) > 0 {
			withSeries++
		}
		if r.Lifecycle != nil {
			withSpans++
		}
	}
	if withSeries != len(ex.Runs) || withSpans != len(ex.Runs) {
		t.Fatalf("sections missing: %d/%d series, %d/%d lifecycle",
			withSeries, len(ex.Runs), withSpans, len(ex.Runs))
	}
}

// TestObservabilityDoesNotMoveTheReport: the experiment's stdout with
// series+lifecycle enabled must equal the uninstrumented report — the
// observability layer must not shift a single virtual-time result.
func TestObservabilityDoesNotMoveTheReport(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	plain := Fig10(Options{Quick: true, Seed: 1, Parallel: 4})
	observed, _ := runFig10Observed(t, 4)
	if plain != observed {
		t.Fatal("enabling observability changed the fig10 report")
	}
}

// TestInstrumentRequiresPool: Series/Lifecycle without a pool are inert —
// scale.instrument must not panic or allocate samplers for uninstrumented
// cells.
func TestInstrumentRequiresPool(t *testing.T) {
	out := Fig2(Options{Quick: true, Seed: 1, Series: 10 * sim.Millisecond, Lifecycle: 1})
	if !strings.Contains(out, "fig2") && len(out) == 0 {
		t.Fatal("fig2 with orphan observability flags produced nothing")
	}
}
