package bench

import (
	"bytes"
	"strings"
	"testing"

	"multiclock/internal/fault"
	"multiclock/internal/metrics"
	"multiclock/internal/sim"
	"multiclock/internal/traceexport"
)

// runFig10Observed runs the quick Fig. 10 sweep with the full observability
// stack riding the metrics pool and returns (report text, export JSON).
func runFig10Observed(t *testing.T, parallel int) (string, []byte) {
	t.Helper()
	pool := metrics.NewPool(0)
	out := Fig10(Options{
		Quick: true, Seed: 1, Parallel: parallel,
		Metrics:   pool,
		Series:    10 * sim.Millisecond,
		Lifecycle: 64,
	})
	data, err := pool.ExportJSON()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	return out, data
}

// TestObservedExportDeterministicAcrossParallelism is the PR's acceptance
// golden: with the sampler and tracer enabled, both the experiment report
// and the full metrics export (series and lifecycle sections included) are
// byte-identical at every parallelism level, because instrumentation is
// strictly per-machine and sampling is a pure function of page identity.
func TestObservedExportDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	seqOut, seqJSON := runFig10Observed(t, 1)
	parOut, parJSON := runFig10Observed(t, 4)
	if seqOut != parOut {
		t.Fatal("fig10 report differs across parallelism with observability on")
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatal("observability export differs across parallelism")
	}
	ex, err := metrics.ReadExport(seqJSON)
	if err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
	withSeries, withSpans := 0, 0
	for _, r := range ex.Runs {
		if r.Series != nil && len(r.Series.Windows) > 0 {
			withSeries++
		}
		if r.Lifecycle != nil {
			withSpans++
		}
	}
	if withSeries != len(ex.Runs) || withSpans != len(ex.Runs) {
		t.Fatalf("sections missing: %d/%d series, %d/%d lifecycle",
			withSeries, len(ex.Runs), withSpans, len(ex.Runs))
	}
}

// TestObservabilityDoesNotMoveTheReport: the experiment's stdout with
// series+lifecycle enabled must equal the uninstrumented report — the
// observability layer must not shift a single virtual-time result.
func TestObservabilityDoesNotMoveTheReport(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	plain := Fig10(Options{Quick: true, Seed: 1, Parallel: 4})
	observed, _ := runFig10Observed(t, 4)
	if plain != observed {
		t.Fatal("enabling observability changed the fig10 report")
	}
}

// runFig10ChaosTraced runs the quick Fig. 10 sweep under fault injection
// with the whole trace/SLO stack on and returns (perfetto trace, export
// JSON).
func runFig10ChaosTraced(t *testing.T, parallel int) ([]byte, []byte) {
	t.Helper()
	pool := metrics.NewPool(65536)
	Fig10(Options{
		Quick: true, Seed: 1, Parallel: parallel,
		Chaos:     fault.UniformRate(42, 0.05),
		Metrics:   pool,
		Series:    10 * sim.Millisecond,
		Lifecycle: 64,
		// Deliberately unmeetable: every PM read exceeds 1ns, so the
		// burn rate pegs and the multi-window alert must fire.
		SLO:   "p99(access_latency_pm_read_ns) < 1ns over 1ms, 99.9%",
		Trace: true,
	})
	data, err := pool.ExportJSON()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	return traceexport.Build(pool.Runs()), data
}

// TestChaosTimelineGolden is the PR's acceptance fixture: a chaos run's
// exported virtual-time timeline visibly contains per-page lifecycle spans,
// daemon wakeup passes, migrations with tier labels, injected-fault windows
// and at least one SLO burn-rate alert — and both the trace and the export
// are byte-identical across parallelism levels.
func TestChaosTimelineGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	trace, data := runFig10ChaosTraced(t, 1)
	trace4, data4 := runFig10ChaosTraced(t, 4)
	if !bytes.Equal(trace, trace4) {
		t.Fatal("perfetto trace differs across parallelism")
	}
	if !bytes.Equal(data, data4) {
		t.Fatal("metrics export differs across parallelism with slo/trace on")
	}
	s := string(trace)
	for _, want := range []string{
		`"thread_name","args":{"name":"daemon `, // daemon track metadata
		` pass"`,                                // a daemon wakeup pass span
		`"thread_name","args":{"name":"page `,   // lifecycle page track
		`"name":"promote"`,                      // a migration instant...
		`"to_tier":"dram"`,                      // ...labeled with its tier
		`"name":"injected faults"`,              // injected-fault track
		`"name":"burn-rate alert"`,              // the SLO alert span
		`"name":"slo p99(access_latency_pm_read_ns) < 1ns over 1ms, 99.9%"`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("timeline missing %q", want)
		}
	}
	// At least one injected degradation window made it onto tid 210.
	if !strings.Contains(s, `"tid":210,"ts"`) {
		t.Fatal("no injected-fault window rendered")
	}

	// The export's slo section reconciles with the timeline: the objective
	// is violated and carries the alert the trace shows.
	ex, err := metrics.ReadExport(data)
	if err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
	alerts := 0
	for _, r := range ex.Runs {
		if r.SLO == nil {
			t.Fatalf("run %s missing slo section", r.Label)
		}
		for _, o := range r.SLO.Objectives {
			if o.Met {
				t.Fatalf("run %s: unmeetable objective reported met", r.Label)
			}
			alerts += len(o.Alerts)
		}
		if r.Faults == nil || len(r.Faults.Windows) == 0 {
			t.Fatalf("run %s recorded no injected-fault windows", r.Label)
		}
	}
	if alerts == 0 {
		t.Fatal("no burn-rate alert fired anywhere in the sweep")
	}
}

// TestInstrumentRequiresPool: Series/Lifecycle without a pool are inert —
// scale.instrument must not panic or allocate samplers for uninstrumented
// cells.
func TestInstrumentRequiresPool(t *testing.T) {
	out := Fig2(Options{Quick: true, Seed: 1, Series: 10 * sim.Millisecond, Lifecycle: 1})
	if !strings.Contains(out, "fig2") && len(out) == 0 {
		t.Fatal("fig2 with orphan observability flags produced nothing")
	}
}
