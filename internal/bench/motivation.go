package bench

import (
	"fmt"
	"strings"

	"multiclock/internal/pagetable"
	"multiclock/internal/runner"
	"multiclock/internal/sim"
	"multiclock/internal/stats"
	"multiclock/internal/trace"
)

// scalePattern rescales a preset's phase geometry (written against an
// implied 20-second execution) to the experiment's compressed duration, so
// tier-friendly pages still flip phases several times per run.
func scalePattern(p trace.Pattern, duration sim.Duration) trace.Pattern {
	p.Phase = sim.Duration(float64(p.Phase) * float64(duration) / float64(20*sim.Second))
	if p.Phase <= 0 {
		p.Phase = duration / 8
	}
	return p
}

// Fig1 regenerates the motivation heatmaps: access frequency of 50 sampled
// pages over time for the four workload patterns (RUBiS, SPECpower, xalan,
// lusearch analogues — see the substitution note in internal/trace). Each
// pattern runs on its own machine, so the four render in parallel.
func Fig1(opt Options) string {
	sc := opt.scale()
	duration := 20 * sc.Interval
	sections := runner.Map(opt.workers(), trace.Patterns, func(_ int, preset trace.Pattern) string {
		p := scalePattern(preset, duration)
		pol, _ := NewPolicy("static", sc.Interval)
		m := machineFor(sc, opt.Seed, pol)
		as := m.NewSpace()

		// Pre-plan the sample rows: the pattern VMA is the first mapping
		// in a fresh space, so its VPNs are deterministic. Run a probe
		// first to learn the VMA start.
		probeVMA := as.Mmap(1, false, "probe")
		sampleBase := probeVMA.End + 1 // the pattern VMA will start here
		rng := sim.NewRNG(opt.Seed ^ 77)
		var samples []pagetable.VPN
		for _, idx := range rng.Perm(p.Pages)[:50] {
			samples = append(samples, sampleBase+pagetable.VPN(idx))
		}
		h := trace.NewHeatmap(samples, []int32{as.ID}, duration/40)
		m.Attach(h)
		trace.RunPattern(m, as, p, duration, opt.Seed)

		return fmt.Sprintf("--- %s ---\n%s\n", p.Name, h.Render())
	})
	var b strings.Builder
	b.WriteString("Fig. 1 — page access heatmaps, 50 sampled pages × time windows\n")
	b.WriteString("(synthetic analogues of RUBiS/SPECpower/xalan/lusearch; see DESIGN.md)\n\n")
	for _, s := range sections {
		b.WriteString(s)
	}
	return b.String()
}

// Fig2 regenerates the observation/performance window frequency analysis:
// pages accessed multiple times in an observation window are accessed far
// more in the following performance window than single-access pages.
func Fig2(opt Options) string {
	sc := opt.scale()
	duration := 24 * sc.Interval
	rows := runner.Map(opt.workers(), trace.Patterns, func(_ int, preset trace.Pattern) []string {
		p := scalePattern(preset, duration)
		pol, _ := NewPolicy("static", sc.Interval)
		m := machineFor(sc, opt.Seed, pol)
		as := m.NewSpace()
		wf := trace.NewWindowFreq(2*sc.Interval, 2*sc.Interval)
		m.Attach(wf)
		trace.RunPattern(m, as, p, duration, opt.Seed)
		res := wf.Result()
		return []string{p.Name,
			fmt.Sprintf("%.2f", res.SingleMean),
			fmt.Sprintf("%.2f", res.MultiMean),
			fmt.Sprintf("%.1fx", safeDiv(res.MultiMean, res.SingleMean))}
	})
	tb := stats.NewTable(
		"Fig. 2 — mean performance-window accesses by observation-window class",
		"workload", "single-access pages", "multi-access pages", "ratio")
	for _, row := range rows {
		tb.AddRow(row...)
	}
	return tb.String() +
		"\nexpected shape: multi-access pages dominate — the basis of MULTI-CLOCK's\n" +
		"two-reference promote-list selection (§II-A)\n"
}
