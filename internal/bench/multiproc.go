package bench

import (
	"fmt"

	"multiclock/internal/pagetable"
	"multiclock/internal/runner"
	"multiclock/internal/sim"
	"multiclock/internal/stats"
)

// AblationMultiProc reproduces §II-D's motivating scenario for dynamic
// tiering: two processes race for DRAM. The early process allocates first
// and wins the fast tier; the late process's equally hot working set lands
// in PM. Under static tiering the loser is stuck for its lifetime
// "regardless of how the importance of the contained data changes"; a
// dynamic policy should converge both processes toward similar
// performance. Reported: per-process throughput and the fairness ratio
// (late/early), per policy.
func AblationMultiProc(opt Options) string {
	sc := opt.scale()
	systems := []string{"static", "nimble", "multiclock"}
	type raceRes struct{ early, late float64 }
	cells := runner.Map(opt.workers(), systems, func(_ int, system string) raceRes {
		early, late := multiProcRun(sc, opt.Seed, system)
		return raceRes{early, late}
	})
	tb := stats.NewTable(
		"Ablation — two-process DRAM allocation race (§II-D motivation)",
		"policy", "early proc (ops/s)", "late proc (ops/s)", "late/early")
	for i, system := range systems {
		tb.AddRow(system,
			fmt.Sprintf("%.0f", cells[i].early),
			fmt.Sprintf("%.0f", cells[i].late),
			fmt.Sprintf("%.3f", safeDiv(cells[i].late, cells[i].early)))
	}
	return tb.String() +
		"\nstatic tiering leaves the late process on PM forever; dynamic tiering\n" +
		"promotes its hot set and restores fairness\n"
}

// multiProcRun: process A allocates and heats its working set first;
// process B arrives after DRAM is taken. Both then run identical skewed
// loops; their throughputs are measured over the same virtual span by
// interleaving operations.
func multiProcRun(sc scale, seed uint64, system string) (early, late float64) {
	p, err := NewPolicy(system, sc.Interval)
	if err != nil {
		panic(err)
	}
	m := machineFor(sc, seed, p)

	const wset = 960 // pages per process; the early process alone ≈ DRAM
	procA := m.NewSpace()
	va := procA.Mmap(wset, false, "procA")
	procB := m.NewSpace()
	vb := procB.Mmap(wset, false, "procB")

	// A faults everything in first — and wins DRAM.
	for i := 0; i < wset; i++ {
		m.Access(procA, va.Start+pagetable.VPN(i), false)
	}
	// B arrives late; its pages are born in what's left (PM).
	for i := 0; i < wset; i++ {
		m.Access(procB, vb.Start+pagetable.VPN(i), false)
	}

	rng := sim.NewRNG(seed ^ 0x2e)
	// The hot quarter is striped across the whole working set so its
	// placement follows the allocation race, not page order.
	hot := func(r *sim.RNG) int {
		if r.Intn(10) < 8 {
			return r.Intn(wset/4) * 4
		}
		return r.Intn(wset)
	}

	// Interleave both processes' identical workloads; measure after a
	// warmup half.
	ops := int(sc.OpsPerWorkload / 4)
	run := func(measure bool) (ta, tb sim.Duration) {
		for i := 0; i < ops; i++ {
			start := m.Clock.Now()
			m.Access(procA, va.Start+pagetable.VPN(hot(rng)), rng.Intn(3) == 0)
			m.EndOp()
			mid := m.Clock.Now()
			m.Access(procB, vb.Start+pagetable.VPN(hot(rng)), rng.Intn(3) == 0)
			m.EndOp()
			if measure {
				ta += sim.Duration(mid - start)
				tb += sim.Duration(m.Clock.Now() - mid)
			}
		}
		return ta, tb
	}
	run(false) // warmup
	ta, tbd := run(true)
	stopDaemons(p)
	if ta > 0 {
		early = float64(ops) / ta.Seconds()
	}
	if tbd > 0 {
		late = float64(ops) / tbd.Seconds()
	}
	return early, late
}
