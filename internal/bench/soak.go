package bench

import (
	"fmt"
	"math"
	"os"
	"strings"

	"multiclock/internal/cliutil"
	"multiclock/internal/fault"
	"multiclock/internal/kvstore"
	"multiclock/internal/machine"
	"multiclock/internal/metrics"
	"multiclock/internal/sim"
	"multiclock/internal/snapcodec"
	"multiclock/internal/snapshot"
	"multiclock/internal/ycsb"
)

// The resumable soak harness. A Session is one checkpointable system — a
// machine, its policy, a kvstore and a YCSB client driving a fixed workload
// sequence — stepped one operation at a time so snapshots, audit fingerprints
// and invariant sweeps land exactly on quiescent op boundaries. The session's
// own progress (current workload, completed results) rides the snapshot's
// config section, so a restored session reproduces the remaining run — and
// the final report — byte for byte.

// SoakConfig fully determines a session: rebuilding from an equal config and
// restoring the snapshot sections yields an identical system.
type SoakConfig struct {
	// Policy is a NewPolicy system name; it must support checkpointing.
	Policy string
	// Workloads is the run order by YCSB workload name (e.g. ["A"] or the
	// paper sequence). The load phase always runs first.
	Workloads []string
	// Records is the load-phase record count; Ops is per workload.
	Records int64
	Ops     int64
	// DRAMPages and PMPages size the two memory nodes.
	DRAMPages int
	PMPages   int
	// Tiers, when non-empty, replaces the two-node machine with this
	// -tiers hierarchy spec (cliutil.ParseTierSpec syntax). The spec
	// travels in the snapshot config section, so a restored session
	// rebuilds the same hierarchy.
	Tiers string
	// Interval is the policy scan interval (0 = DefaultScanInterval).
	Interval sim.Duration
	// Seed drives the machine; the YCSB client derives its stream from it.
	Seed uint64
	// Chaos enables deterministic fault injection (zero value = off).
	Chaos fault.Config
	// Metrics collects a telemetry registry that snapshots with the run;
	// TraceEvents sizes its event ring.
	Metrics     bool
	TraceEvents int
}

// soakConfigVersion guards the config-section layout inside the container.
// Version 2 added the tier-hierarchy spec.
const soakConfigVersion = 2

// Session is one live checkpointable system.
type Session struct {
	Cfg SoakConfig

	M         *machine.Machine
	Policy    machine.Policy
	Store     *kvstore.Store
	Client    *ycsb.Client
	Reg       *metrics.Registry
	collector *metrics.Collector

	run     *ycsb.Run
	widx    int
	results []ycsb.RunResult
}

// NewSession builds and loads a fresh session.
func NewSession(cfg SoakConfig) (*Session, error) {
	s, err := newPristine(cfg)
	if err != nil {
		return nil, err
	}
	s.Client.Load()
	return s, nil
}

// newPristine runs the construction path shared by fresh sessions and restore
// targets: everything up to (but excluding) the load phase.
func newPristine(cfg SoakConfig) (*Session, error) {
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("bench: soak session needs at least one workload")
	}
	for _, name := range cfg.Workloads {
		if _, err := ycsb.ByName(name); err != nil {
			return nil, err
		}
	}
	if cfg.Records <= 0 || cfg.Ops <= 0 {
		return nil, fmt.Errorf("bench: soak session needs positive records and ops, got %d/%d", cfg.Records, cfg.Ops)
	}
	p, err := NewPolicy(cfg.Policy, cfg.Interval)
	if err != nil {
		return nil, err
	}
	mcfg := machine.DefaultConfig()
	mcfg.Mem.DRAMNodes = []int{cfg.DRAMPages}
	mcfg.Mem.PMNodes = []int{cfg.PMPages}
	if cfg.Tiers != "" {
		top, err := cliutil.ParseTierSpec(cfg.Tiers)
		if err != nil {
			return nil, fmt.Errorf("bench: soak tier spec: %w", err)
		}
		mcfg.Mem.Topology = &top
	}
	mcfg.Seed = cfg.Seed
	mcfg.OpCost = 1 * sim.Microsecond
	mcfg.Faults = cfg.Chaos
	m := machine.New(mcfg, p)

	s := &Session{Cfg: cfg, M: m, Policy: p}
	if cfg.Metrics {
		s.Reg = metrics.NewRegistry(cfg.TraceEvents)
		s.collector = metrics.NewCollector(s.Reg).Bind(m)
		m.SetMetrics(s.collector)
		m.Attach(s.collector)
	}

	storeCfg := kvstore.DefaultConfig(int(cfg.Records))
	storeCfg.ItemTouches = 8
	s.Store = kvstore.New(m, storeCfg)

	clientCfg := ycsb.DefaultClientConfig(cfg.Records)
	clientCfg.Seed = cfg.Seed ^ 0x9c5b
	s.Client = ycsb.NewClient(m, s.Store, clientCfg)
	return s, nil
}

// target bundles the session for the snapshot layer.
func (s *Session) target() *snapshot.Target {
	return &snapshot.Target{M: s.M, Store: s.Store, Client: s.Client, Run: s.run, Metrics: s.Reg}
}

// Capture snapshots the session (configuration, progress and full system
// state) into a container. The session must be at an op boundary.
func (s *Session) Capture() (*snapshot.File, error) {
	return snapshot.Capture(s.target(), s.encodeSessionState())
}

// Snapshot captures and writes the session to path.
func (s *Session) Snapshot(path string) error {
	f, err := s.Capture()
	if err != nil {
		return err
	}
	return f.WriteFile(path)
}

// Fingerprint hashes every subsystem for the divergence auditor.
func (s *Session) Fingerprint() (snapshot.AuditRecord, error) {
	return snapshot.AuditFingerprint(s.target())
}

// RestoreSession rebuilds a session from a decoded snapshot container: the
// config section names the construction recipe and the progress; the state
// sections overwrite the pristine system.
func RestoreSession(f *snapshot.File) (*Session, error) {
	payload, ok := f.Section(snapshot.SecConfig)
	if !ok {
		return nil, &snapshot.CorruptError{Section: snapshot.SecConfig, Err: fmt.Errorf("section missing")}
	}
	cfg, widx, results, err := decodeSessionState(payload)
	if err != nil {
		return nil, &snapshot.CorruptError{Section: snapshot.SecConfig, Err: err}
	}
	s, err := newPristine(cfg)
	if err != nil {
		return nil, err
	}
	t := s.target()
	if err := snapshot.Restore(t, f); err != nil {
		return nil, err
	}
	s.run = t.Run
	if widx > len(cfg.Workloads) || (widx < len(cfg.Workloads) && len(results) > widx) ||
		(s.run != nil && widx >= len(cfg.Workloads)) {
		return nil, &snapshot.CorruptError{Section: snapshot.SecConfig,
			Err: fmt.Errorf("progress (workload %d of %d, %d results) is inconsistent", widx, len(cfg.Workloads), len(results))}
	}
	s.widx = widx
	s.results = results
	return s, nil
}

// RestoreSessionFile reads, verifies and restores a snapshot file.
func RestoreSessionFile(path string) (*Session, error) {
	f, err := snapshot.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return RestoreSession(f)
}

// SoakHooks configures the soak loop's periodic work. All cadences count
// completed workload operations across the whole session, so a restored run
// lands on exactly the boundaries the straight run would.
type SoakHooks struct {
	// SnapshotPath, with SnapshotEvery, checkpoints to this file every N ops
	// (latest wins) and once more at session end.
	SnapshotPath  string
	SnapshotEvery int64
	// Audit appends a per-subsystem hash record at every SnapshotEvery
	// boundary (with or without SnapshotPath).
	Audit *snapshot.AuditWriter
	// InvariantsEvery sweeps the machine's conservation laws every N ops.
	InvariantsEvery int64
}

// opCount is the session-global completed-op position used for hook cadence.
func (s *Session) opCount() int64 {
	n := int64(s.widx) * s.Cfg.Ops
	if s.run != nil {
		n += s.run.Done()
	}
	return n
}

// Done reports whether every workload has finished.
func (s *Session) Done() bool { return s.widx >= len(s.Cfg.Workloads) }

// Run drives the session to completion under the hooks and returns the
// deterministic report. Stepping resumes exactly where a restored snapshot
// left off.
func (s *Session) Run(h SoakHooks) (string, error) {
	if h.SnapshotEvery > 0 {
		// Fail before the run, not at the first checkpoint.
		if _, ok := s.M.Policy.(machine.StateSnapshotter); !ok {
			return "", &snapshot.UnsupportedPolicyError{Policy: s.M.Policy.Name()}
		}
	}
	for !s.Done() {
		more := s.ensureRun().Step()
		if err := s.boundary(h); err != nil {
			return "", err
		}
		if !more {
			s.finishRun()
		}
	}
	stopDaemons(s.Policy)
	if h.SnapshotEvery > 0 && h.SnapshotPath != "" {
		if err := s.Snapshot(h.SnapshotPath); err != nil {
			return "", err
		}
	}
	if h.Audit != nil {
		if err := h.Audit.Flush(); err != nil {
			return "", err
		}
	}
	return s.Report(), nil
}

// ensureRun starts the current workload's run if none is in flight.
func (s *Session) ensureRun() *ycsb.Run {
	if s.run == nil {
		w, err := ycsb.ByName(s.Cfg.Workloads[s.widx])
		if err != nil {
			// Workload names were validated at construction.
			panic(err)
		}
		s.run = s.Client.StartRun(w, s.Cfg.Ops)
	}
	return s.run
}

// finishRun records the completed workload's result and advances.
func (s *Session) finishRun() {
	s.results = append(s.results, s.run.Finish())
	s.run = nil
	s.widx++
}

// RunUntil advances the session until opCount reaches n (or the session
// completes), with no hooks — the test and harness entry point for capturing
// a snapshot at an exact mid-run boundary. It performs exactly the operations
// Run would, so a Capture here equals the straight run's state at op n.
func (s *Session) RunUntil(n int64) {
	for !s.Done() && s.opCount() < n {
		more := s.ensureRun().Step()
		if !more {
			s.finishRun()
		}
	}
}

// Finish completes the remaining workloads with no hooks and returns the
// report (stopping the policy daemons).
func (s *Session) Finish() (string, error) {
	return s.Run(SoakHooks{})
}

// boundary runs the periodic hooks after one completed operation.
func (s *Session) boundary(h SoakHooks) error {
	done := s.opCount()
	if h.InvariantsEvery > 0 && done%h.InvariantsEvery == 0 {
		if err := s.M.CheckInvariants(); err != nil {
			return fmt.Errorf("bench: invariant sweep at op %d: %w", done, err)
		}
	}
	if h.SnapshotEvery > 0 && done%h.SnapshotEvery == 0 {
		if h.Audit != nil {
			rec, err := s.Fingerprint()
			if err != nil {
				return err
			}
			if err := h.Audit.Append(rec); err != nil {
				return err
			}
		}
		if h.SnapshotPath != "" {
			if err := s.Snapshot(h.SnapshotPath); err != nil {
				return err
			}
		}
	}
	return nil
}

// Report renders the session outcome; equal session state renders equal
// bytes, so a straight run and a restored run print identical reports.
func (s *Session) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soak: policy=%s workloads=%s records=%d ops/workload=%d seed=%d",
		s.Cfg.Policy, strings.Join(s.Cfg.Workloads, ","), s.Cfg.Records, s.Cfg.Ops, s.Cfg.Seed)
	if s.Cfg.Tiers != "" {
		fmt.Fprintf(&b, " tiers=%s", s.Cfg.Tiers)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-8s %14s %10s %10s %10s\n", "workload", "ops/s", "p50", "p95", "p99")
	for _, r := range s.results {
		if r.Unsupported {
			fmt.Fprintf(&b, "%-8s %14s\n", r.Workload, "unsupported")
			continue
		}
		fmt.Fprintf(&b, "%-8s %14.0f %10v %10v %10v\n", r.Workload, r.Throughput, r.P50, r.P95, r.P99)
	}
	fmt.Fprintf(&b, "\npolicy: %s\nvirtual time: %v\n", s.M.Policy.Name(), s.M.Elapsed())
	fmt.Fprintln(&b, &s.M.Mem.Counters)
	if s.M.Faults != nil {
		fmt.Fprintln(&b, s.M.Faults.Counters.String())
	}
	return b.String()
}

// MetricsRun exports the session's telemetry registry under label, or nil
// when the session collects none.
func (s *Session) MetricsRun(label string) *metrics.RunExport {
	if s.collector == nil {
		return nil
	}
	run := s.collector.Run(label)
	return &run
}

// SoakConfigFor derives a soak recipe from the benchmark scale: the paper's
// workload sequence at the Options sizing, with an optional per-workload op
// override for long runs.
func SoakConfigFor(policy string, opt Options, ops int64, metricsOn bool, traceEvents int) SoakConfig {
	sc := opt.sizes()
	if ops <= 0 {
		ops = sc.OpsPerWorkload
	}
	names := make([]string, 0, len(ycsb.PaperSequence))
	for _, w := range ycsb.PaperSequence {
		names = append(names, w.Name)
	}
	return SoakConfig{
		Policy:      policy,
		Workloads:   names,
		Records:     sc.Records,
		Ops:         ops,
		DRAMPages:   sc.DRAMPages,
		PMPages:     sc.PMPages,
		Tiers:       opt.Tiers,
		Interval:    sc.Interval,
		Seed:        opt.Seed,
		Chaos:       opt.Chaos,
		Metrics:     metricsOn,
		TraceEvents: traceEvents,
	}
}

// reconcileAudit rewrites an audit trail so that resuming from this session
// continues it exactly where a straight run would be: records past the
// restore point are dropped (the resumed run will regenerate them), and the
// restore boundary's own record is recomputed in case the dying run was
// killed between writing the snapshot and appending its fingerprint. A
// session restored at completion keeps the trail untouched — it is already
// complete and no further boundaries will fire.
func (s *Session) reconcileAudit(path string, every int64) error {
	var recs []snapshot.AuditRecord
	if f, err := os.Open(path); err == nil {
		recs, err = snapshot.ReadAudit(f)
		f.Close()
		if err != nil {
			return err
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	keep := recs
	if !s.Done() {
		cur, err := s.Fingerprint()
		if err != nil {
			return err
		}
		keep = keep[:0]
		for _, r := range recs {
			if r.Op < cur.Op {
				keep = append(keep, r)
			}
		}
		if n := s.opCount(); n > 0 && n%every == 0 {
			keep = append(keep, cur)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := snapshot.NewAuditWriter(f)
	for _, r := range keep {
		if err := w.Append(r); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RunSoakCLI is the checkpointable-run driver shared by the CLIs: build (or
// restore) a session, run it under the snapshot/audit/invariant cadence, and
// return the deterministic report plus the finished session (for metrics
// export). On restore the audit trail is first reconciled to the restore
// point, then opened in append mode, so a killed run's resumed trail
// continues the same file and still compares clean against a straight run.
func RunSoakCLI(cfg SoakConfig, restorePath string, hooks SoakHooks, auditPath string) (string, *Session, error) {
	var sess *Session
	var err error
	if restorePath != "" {
		// The snapshot's config section is the construction recipe; cfg is
		// ignored on restore.
		sess, err = RestoreSessionFile(restorePath)
	} else {
		sess, err = NewSession(cfg)
	}
	if err != nil {
		return "", nil, err
	}
	if restorePath != "" && auditPath != "" && hooks.SnapshotEvery > 0 {
		if err := sess.reconcileAudit(auditPath, hooks.SnapshotEvery); err != nil {
			return "", nil, err
		}
	}
	if auditPath != "" {
		af, err := os.OpenFile(auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return "", nil, err
		}
		defer af.Close()
		hooks.Audit = snapshot.NewAuditWriter(af)
	}
	report, err := sess.Run(hooks)
	if err != nil {
		return "", nil, err
	}
	if hooks.Audit != nil {
		if err := hooks.Audit.Flush(); err != nil {
			return "", nil, err
		}
	}
	return report, sess, nil
}

// encodeSessionState renders the config section: the construction recipe plus
// the session progress (completed results travel here so a restored session
// can finish the report).
func (s *Session) encodeSessionState() []byte {
	enc := snapcodec.NewEncoder()
	enc.U32(soakConfigVersion)
	c := &s.Cfg
	enc.String(c.Policy)
	enc.Int(len(c.Workloads))
	for _, w := range c.Workloads {
		enc.String(w)
	}
	enc.I64(c.Records)
	enc.I64(c.Ops)
	enc.Int(c.DRAMPages)
	enc.Int(c.PMPages)
	enc.String(c.Tiers)
	enc.I64(int64(c.Interval))
	enc.U64(c.Seed)
	enc.U64(c.Chaos.Seed)
	enc.Int(len(c.Chaos.Rates))
	for _, r := range c.Chaos.Rates {
		enc.U64(math.Float64bits(r))
	}
	enc.U64(math.Float64bits(c.Chaos.PMSlowdownFactor))
	enc.I64(int64(c.Chaos.PMSlowdownWindow))
	enc.Bool(c.Metrics)
	enc.Int(c.TraceEvents)

	enc.Int(s.widx)
	enc.Int(len(s.results))
	for _, r := range s.results {
		enc.String(r.Workload)
		enc.I64(r.Ops)
		enc.I64(int64(r.Elapsed))
		enc.U64(math.Float64bits(r.Throughput))
		enc.I64(int64(r.P50))
		enc.I64(int64(r.P95))
		enc.I64(int64(r.P99))
		enc.I64(int64(r.MeanLatency))
		enc.Bool(r.Unsupported)
	}
	return enc.Bytes()
}

// decodeSessionState parses the config section back into a recipe and the
// saved progress.
func decodeSessionState(payload []byte) (cfg SoakConfig, widx int, results []ycsb.RunResult, err error) {
	dec := snapcodec.NewDecoder(payload)
	fail := func(e error) (SoakConfig, int, []ycsb.RunResult, error) {
		return SoakConfig{}, 0, nil, e
	}
	if v := dec.U32(); dec.Err() == nil && v != soakConfigVersion {
		return fail(fmt.Errorf("soak config version %d (this build reads %d)", v, soakConfigVersion))
	}
	cfg.Policy = dec.String()
	nw := dec.Int()
	if dec.Err() != nil {
		return fail(dec.Err())
	}
	if nw <= 0 || nw > dec.Remaining() {
		return fail(fmt.Errorf("soak config claims %d workloads", nw))
	}
	for i := 0; i < nw; i++ {
		cfg.Workloads = append(cfg.Workloads, dec.String())
	}
	cfg.Records = dec.I64()
	cfg.Ops = dec.I64()
	cfg.DRAMPages = dec.Int()
	cfg.PMPages = dec.Int()
	cfg.Tiers = dec.String()
	cfg.Interval = sim.Duration(dec.I64())
	cfg.Seed = dec.U64()
	cfg.Chaos.Seed = dec.U64()
	nr := dec.Int()
	if dec.Err() != nil {
		return fail(dec.Err())
	}
	if nr != len(cfg.Chaos.Rates) {
		return fail(fmt.Errorf("soak config carries %d fault rates, this build has %d", nr, len(cfg.Chaos.Rates)))
	}
	for i := range cfg.Chaos.Rates {
		cfg.Chaos.Rates[i] = math.Float64frombits(dec.U64())
	}
	cfg.Chaos.PMSlowdownFactor = math.Float64frombits(dec.U64())
	cfg.Chaos.PMSlowdownWindow = sim.Duration(dec.I64())
	cfg.Metrics = dec.Bool()
	cfg.TraceEvents = dec.Int()

	widx = dec.Int()
	n := dec.Int()
	if dec.Err() != nil {
		return fail(dec.Err())
	}
	if widx < 0 || n < 0 || n > dec.Remaining() {
		return fail(fmt.Errorf("soak progress claims workload %d, %d results", widx, n))
	}
	for i := 0; i < n; i++ {
		var r ycsb.RunResult
		r.Workload = dec.String()
		r.Ops = dec.I64()
		r.Elapsed = sim.Duration(dec.I64())
		r.Throughput = math.Float64frombits(dec.U64())
		r.P50 = sim.Duration(dec.I64())
		r.P95 = sim.Duration(dec.I64())
		r.P99 = sim.Duration(dec.I64())
		r.MeanLatency = sim.Duration(dec.I64())
		r.Unsupported = dec.Bool()
		results = append(results, r)
	}
	if err := dec.Finish(); err != nil {
		return fail(err)
	}
	return cfg, widx, results, nil
}
