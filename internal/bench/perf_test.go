package bench

import (
	"strings"
	"testing"
	"time"
)

func perfReport(quick bool, seed uint64, workloads ...PerfResult) PerfReport {
	return PerfReport{Schema: PerfSchema, Quick: quick, Seed: seed, Go: "gotest", Workloads: workloads}
}

func perfResult(name string, pagesPerSec float64, virtualNS int64) PerfResult {
	return PerfResult{Workload: name, Ops: 1, Accesses: 1000, WallNS: 1000, VirtualNS: virtualNS, PagesPerSec: pagesPerSec, NsPerAccess: 1}
}

func TestComparePerfCleanPass(t *testing.T) {
	base := perfReport(true, 1, perfResult("ycsb-a", 1e6, 42), perfResult("gapbs", 2e6, 99))
	cur := perfReport(true, 1, perfResult("ycsb-a", 0.9e6, 42), perfResult("gapbs", 2.1e6, 99))
	if v := ComparePerf(cur, base, 5); len(v) != 0 {
		t.Fatalf("clean comparison reported violations: %v", v)
	}
}

func TestComparePerfRegression(t *testing.T) {
	base := perfReport(true, 1, perfResult("ycsb-a", 1e6, 42))
	cur := perfReport(true, 1, perfResult("ycsb-a", 1e5, 42))
	v := ComparePerf(cur, base, 5)
	if len(v) != 1 || !strings.Contains(v[0], "ycsb-a") {
		t.Fatalf("10x slowdown at 5x tolerance: violations = %v", v)
	}
}

// A workload the baseline measured but the current report dropped must be a
// violation, not a silent skip: a suite that stops running a workload would
// otherwise pass the perf gate with that workload's regressions unmeasured.
func TestComparePerfMissingWorkloadIsViolation(t *testing.T) {
	base := perfReport(true, 1, perfResult("ycsb-a", 1e6, 42), perfResult("gapbs", 2e6, 99), perfResult("kvstore", 3e6, 7))
	cur := perfReport(true, 1, perfResult("ycsb-a", 1e6, 42))
	v := ComparePerf(cur, base, 5)
	if len(v) != 2 {
		t.Fatalf("two dropped workloads, got %d violations: %v", len(v), v)
	}
	joined := strings.Join(v, "\n")
	for _, name := range []string{"gapbs", "kvstore"} {
		if !strings.Contains(joined, name) {
			t.Errorf("violations do not name dropped workload %q: %v", name, v)
		}
	}
	if !strings.Contains(joined, "missing") {
		t.Errorf("violations do not say the workload is missing: %v", v)
	}
}

// New workloads in the current report (absent from the baseline) are fine:
// the suite grew, and the next baseline refresh picks them up.
func TestComparePerfNewWorkloadAllowed(t *testing.T) {
	base := perfReport(true, 1, perfResult("ycsb-a", 1e6, 42))
	cur := perfReport(true, 1, perfResult("ycsb-a", 1e6, 42), perfResult("brand-new", 1, 1))
	if v := ComparePerf(cur, base, 5); len(v) != 0 {
		t.Fatalf("suite growth reported violations: %v", v)
	}
}

func TestComparePerfVirtualTimeMismatch(t *testing.T) {
	base := perfReport(true, 1, perfResult("ycsb-a", 1e6, 42))
	cur := perfReport(true, 1, perfResult("ycsb-a", 1e6, 43))
	v := ComparePerf(cur, base, 5)
	if len(v) != 1 || !strings.Contains(v[0], "virtual time") {
		t.Fatalf("virtual-time drift at the same seed: violations = %v", v)
	}
	// Different seeds legitimately produce different virtual times.
	cur.Seed = 2
	if v := ComparePerf(cur, base, 5); len(v) != 0 {
		t.Fatalf("virtual-time check fired across seeds: %v", v)
	}
}

func TestFillRatesZeroAccesses(t *testing.T) {
	r := PerfResult{Workload: "empty", WallNS: 5000}
	r.fillRates(5000 * time.Nanosecond)
	if r.PagesPerSec != 0 || r.NsPerAccess != 0 {
		t.Fatalf("zero accesses: pages/sec = %v, ns/access = %v, want 0, 0", r.PagesPerSec, r.NsPerAccess)
	}
}

// A run faster than the wall clock's granularity must still report finite,
// nonzero throughput — 0 pages/sec would read as an infinite slowdown
// against any baseline.
func TestFillRatesZeroWall(t *testing.T) {
	r := PerfResult{Workload: "fast", Accesses: 1000}
	r.fillRates(0)
	if r.PagesPerSec <= 0 {
		t.Fatalf("zero wall time: pages/sec = %v, want > 0", r.PagesPerSec)
	}
	if r.NsPerAccess <= 0 {
		t.Fatalf("zero wall time: ns/access = %v, want > 0", r.NsPerAccess)
	}
	if r.WallNS != 1 {
		t.Fatalf("zero wall time: WallNS = %d, want clamped to 1", r.WallNS)
	}
}

func TestFillRatesNormal(t *testing.T) {
	r := PerfResult{Workload: "normal", Accesses: 2000, WallNS: int64(time.Second)}
	r.fillRates(time.Second)
	if r.PagesPerSec != 2000 {
		t.Fatalf("pages/sec = %v, want 2000", r.PagesPerSec)
	}
	if r.NsPerAccess != float64(time.Second)/2000 {
		t.Fatalf("ns/access = %v, want %v", r.NsPerAccess, float64(time.Second)/2000)
	}
}
