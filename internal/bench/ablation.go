package bench

import (
	"fmt"

	"multiclock/internal/core"
	"multiclock/internal/kvstore"
	"multiclock/internal/machine"
	"multiclock/internal/pagetable"
	"multiclock/internal/runner"
	"multiclock/internal/sim"
	"multiclock/internal/stats"
	"multiclock/internal/ycsb"
)

// The ablation studies exercise the design choices DESIGN.md calls out.
// They go beyond the paper's figures but answer the questions its
// discussion raises (§V-E tuning, §VII future work).

// runMCWorkloadA runs YCSB-A under a custom MULTI-CLOCK configuration and
// returns throughput.
func runMCWorkloadA(sc scale, seed uint64, cfg core.Config, mcfg func(*machine.Config)) float64 {
	p := core.New(cfg)
	machineCfg := machine.DefaultConfig()
	machineCfg.Mem.DRAMNodes = []int{sc.DRAMPages}
	machineCfg.Mem.PMNodes = []int{sc.PMPages}
	machineCfg.Seed = seed
	machineCfg.OpCost = 1 * sim.Microsecond
	machineCfg.Faults = sc.Chaos
	if mcfg != nil {
		mcfg(&machineCfg)
	}
	m := machine.New(machineCfg, p)
	storeCfg := kvstore.DefaultConfig(int(sc.Records))
	storeCfg.ItemTouches = 8
	store := kvstore.New(m, storeCfg)
	clientCfg := ycsb.DefaultClientConfig(sc.Records)
	clientCfg.Seed = seed ^ 0x9c5b
	client := ycsb.NewClient(m, store, clientCfg)
	client.Load()
	res := client.Run(ycsb.WorkloadA, sc.OpsPerWorkload)
	p.Stop()
	return res.Throughput
}

// AblationPromoteList compares the full recency+frequency promote list
// against Nimble's recency-only selection and static tiering — isolating
// the paper's core design choice.
func AblationPromoteList(opt Options) string {
	sc := opt.scale()
	tps := runner.Map(opt.workers(), []string{"static", "multiclock", "nimble"}, func(_ int, system string) float64 {
		return ycsbOneWorkload(sc, opt.Seed, system, sc.Interval)
	})
	static, mc, nb := tps[0], tps[1], tps[2]
	tb := stats.NewTable(
		"Ablation — promote list (recency+frequency) vs recency-only selection, YCSB-A",
		"selector", "throughput (ops/s)", "vs static")
	tb.AddRow("static (no migration)", fmt.Sprintf("%.0f", static), "1.000")
	tb.AddRow("recency-only (nimble)", fmt.Sprintf("%.0f", nb), fmt.Sprintf("%.3f", safeDiv(nb, static)))
	tb.AddRow("recency+frequency (multiclock)", fmt.Sprintf("%.0f", mc), fmt.Sprintf("%.3f", safeDiv(mc, static)))
	return tb.String()
}

// AblationScanBatch sweeps kpromoted's pages-per-scan budget around the
// paper's 1024.
func AblationScanBatch(opt Options) string {
	sc := opt.scale()
	batches := []int{64, 256, 1024, 4096, 16384}
	// Cell 0 is the static baseline; cells 1.. sweep the batch size.
	tps := runner.Map(opt.workers(), append([]int{0}, batches...), func(_ int, batch int) float64 {
		if batch == 0 {
			return ycsbOneWorkload(sc, opt.Seed, "static", sc.Interval)
		}
		cfg := core.DefaultConfig()
		cfg.ScanInterval = sc.Interval
		cfg.ScanBatch = batch
		return runMCWorkloadA(sc, opt.Seed, cfg, nil)
	})
	static := tps[0]
	tb := stats.NewTable(
		"Ablation — scan batch size (pages per kpromoted run), YCSB-A",
		"batch", "throughput (ops/s)", "vs static")
	for i, batch := range batches {
		tp := tps[i+1]
		tb.AddRow(fmt.Sprintf("%d", batch), fmt.Sprintf("%.0f", tp), fmt.Sprintf("%.3f", safeDiv(tp, static)))
	}
	return tb.String() + "\npaper operating point: 1024 pages per scan (§V-C)\n"
}

// AblationDRAMRatio sweeps the DRAM:PM capacity ratio (§VII: "it will also
// be interesting to see the performance of MULTI-CLOCK with varying DRAM
// and PM ratios").
func AblationDRAMRatio(opt Options) string {
	sc := opt.scale()
	total := sc.DRAMPages + sc.PMPages
	ratios := []struct {
		name string
		dram int
	}{
		{"1:16", total / 17},
		{"1:8", total / 9},
		{"1:4", total / 5},
		{"1:2", total / 3},
		{"1:1", total / 2},
	}
	type ratioCell struct {
		dram   int
		system string
	}
	var cellDefs []ratioCell
	for _, r := range ratios {
		cellDefs = append(cellDefs, ratioCell{r.dram, "multiclock"}, ratioCell{r.dram, "static"})
	}
	tps := runner.Map(opt.workers(), cellDefs, func(_ int, c ratioCell) float64 {
		s2 := sc
		s2.DRAMPages = c.dram
		s2.PMPages = total - c.dram
		return ycsbOneWorkload(s2, opt.Seed, c.system, s2.Interval)
	})
	tb := stats.NewTable(
		"Ablation — DRAM:PM capacity ratio at fixed total capacity, YCSB-A",
		"ratio", "multiclock (ops/s)", "static (ops/s)", "mc/static")
	for i, r := range ratios {
		mc, st := tps[2*i], tps[2*i+1]
		tb.AddRow(r.name, fmt.Sprintf("%.0f", mc), fmt.Sprintf("%.0f", st), fmt.Sprintf("%.3f", safeDiv(mc, st)))
	}
	return tb.String() + "\nexpected shape: dynamic tiering matters most when DRAM is scarce\n"
}

// AblationAMP runs the comparison the paper could not (§II-D: AMP is
// emulator-only and could not be deployed on the real testbed): the AMP
// selectors — exact LRU, exact LFU, random — against MULTI-CLOCK's
// low-overhead approximation, on YCSB-A. The interesting outcome is how
// close CLOCK+promote-list gets to full-information selection at a
// fraction of the tracking cost.
func AblationAMP(opt Options) string {
	sc := opt.scale()
	systems := []string{"amp-random", "amp-lru", "amp-lfu", "multiclock"}
	type ampRes struct {
		tp      float64
		scanned int64
	}
	// Cell 0 is the static baseline (it never appears in the table body).
	cells := runner.Map(opt.workers(), append([]string{"static"}, systems...), func(_ int, system string) ampRes {
		if system == "static" {
			return ampRes{tp: ycsbOneWorkload(sc, opt.Seed, system, sc.Interval)}
		}
		p, err := NewPolicy(system, sc.Interval)
		if err != nil {
			panic(err)
		}
		m := machineFor(sc, opt.Seed, p)
		storeCfg := kvstore.DefaultConfig(int(sc.Records))
		storeCfg.ItemTouches = 8
		store := kvstore.New(m, storeCfg)
		clientCfg := ycsb.DefaultClientConfig(sc.Records)
		clientCfg.Seed = opt.Seed ^ 0xface
		client := ycsb.NewClient(m, store, clientCfg)
		client.Load()
		tp := client.Run(ycsb.WorkloadA, sc.OpsPerWorkload).Throughput
		stopDaemons(p)
		return ampRes{tp: tp, scanned: m.Mem.Counters.PagesScanned}
	})
	static := cells[0].tp
	tb := stats.NewTable(
		"Ablation — AMP selectors (full per-access profiling) vs MULTI-CLOCK, YCSB-A",
		"system", "throughput (ops/s)", "vs static", "pages scanned")
	for i, system := range systems {
		r := cells[i+1]
		tb.AddRow(system, fmt.Sprintf("%.0f", r.tp), fmt.Sprintf("%.3f", safeDiv(r.tp, static)),
			fmt.Sprintf("%d", r.scanned))
	}
	return tb.String() +
		"\nAMP scans and scores every in-memory page each interval (impractical in a\n" +
		"real kernel, §II-D); MULTI-CLOCK approximates it with a bounded CLOCK scan\n"
}

// AblationWriteAware compares the §VII write-aware extension (dirty pages
// promoted first) against the paper's read/write-oblivious default. YCSB
// cannot expose the difference (each record's read and write heat are
// symmetric), so this uses a microbenchmark with distinct read-hot and
// write-hot page sets in PM and a constrained promotion budget: the biased
// variant should spend the budget on the pages whose PM accesses are the
// costliest (writes).
func AblationWriteAware(opt Options) string {
	sc := opt.scale()
	run := func(writeBias bool) sim.Duration {
		cfg := core.DefaultConfig()
		cfg.ScanInterval = sc.Interval
		cfg.WriteBias = writeBias
		// Ordering only matters when promotion bandwidth is contended.
		cfg.PromoteMax = 16
		p := core.New(cfg)
		m := machineFor(sc, opt.Seed, p)
		as := m.NewSpace()

		// Map the hot sets first, then stream a large filler through DRAM
		// so demotion pushes the (momentarily cold) hot sets to PM.
		const hotN = 256
		readHot := as.Mmap(hotN, false, "read-hot")
		writeHot := as.Mmap(hotN, false, "write-hot")
		for i := 0; i < hotN; i++ {
			m.Access(as, readHot.Start+pagetable.VPN(i), false)
			m.Access(as, writeHot.Start+pagetable.VPN(i), true)
		}
		filler := as.Mmap(2*sc.DRAMPages, false, "filler")
		for round := 0; round < 3; round++ {
			for i := 0; i < filler.Pages(); i++ {
				m.Access(as, filler.Start+pagetable.VPN(i), false)
			}
			m.Compute(sc.Interval + sc.Interval/2)
		}
		rng := sim.NewRNG(opt.Seed ^ 0xab1e)
		start := m.Clock.Now()
		steps := int(4 * sc.OpsPerWorkload)
		for i := 0; i < steps; i++ {
			m.Access(as, readHot.Start+pagetable.VPN(rng.Intn(hotN)), false)
			m.Access(as, writeHot.Start+pagetable.VPN(rng.Intn(hotN)), true)
		}
		p.Stop()
		return sim.Duration(m.Clock.Now() - start)
	}
	times := runner.Map(opt.workers(), []bool{false, true}, func(_ int, writeBias bool) sim.Duration {
		return run(writeBias)
	})
	plain, biased := times[0], times[1]
	tb := stats.NewTable(
		"Ablation — write-aware promotion (§VII extension), read-hot vs write-hot sets",
		"variant", "virtual time", "speedup")
	tb.AddRow("oblivious (paper)", plain.String(), "1.000")
	tb.AddRow("write-biased", biased.String(), fmt.Sprintf("%.3f", safeDiv(float64(plain), float64(biased))))
	return tb.String() + "\nPM writes are the costliest accesses; promoting dirty pages first targets them\n"
}

// AblationGranularity runs the comparison Table I implies but the paper
// could not (Thermostat is not open source, §II-D): huge-page-region
// classification (Thermostat-style) against MULTI-CLOCK's base pages, on
// YCSB-A. Region granularity demotes wholesale and corrects
// misclassification slowly; base pages follow the actual hot set.
func AblationGranularity(opt Options) string {
	sc := opt.scale()
	systems := []string{"thermostat", "multiclock"}
	type granRes struct {
		tp            float64
		promos, demos int64
	}
	cells := runner.Map(opt.workers(), append([]string{"static"}, systems...), func(_ int, system string) granRes {
		if system == "static" {
			return granRes{tp: ycsbOneWorkload(sc, opt.Seed, system, sc.Interval)}
		}
		p, err := NewPolicy(system, sc.Interval)
		if err != nil {
			panic(err)
		}
		m := machineFor(sc, opt.Seed, p)
		storeCfg := kvstore.DefaultConfig(int(sc.Records))
		storeCfg.ItemTouches = 8
		store := kvstore.New(m, storeCfg)
		clientCfg := ycsb.DefaultClientConfig(sc.Records)
		clientCfg.Seed = opt.Seed ^ 0xface
		client := ycsb.NewClient(m, store, clientCfg)
		client.Load()
		tp := client.Run(ycsb.WorkloadA, sc.OpsPerWorkload).Throughput
		stopDaemons(p)
		return granRes{tp: tp, promos: m.Mem.Counters.Promotions, demos: m.Mem.Counters.Demotions}
	})
	static := cells[0].tp
	tb := stats.NewTable(
		"Ablation — tiering granularity: Thermostat-style 2 MiB regions vs base pages, YCSB-A",
		"system", "throughput (ops/s)", "vs static", "promos", "demos")
	for i, system := range systems {
		r := cells[i+1]
		tb.AddRow(system, fmt.Sprintf("%.0f", r.tp), fmt.Sprintf("%.3f", safeDiv(r.tp, static)),
			fmt.Sprintf("%d", r.promos), fmt.Sprintf("%d", r.demos))
	}
	return tb.String() +
		"\nzipfian heat is spread across pages: few 2 MiB regions are uniformly cold,\n" +
		"so region-granularity tiering finds little to move and strands hot pages in\n" +
		"PM when it does — the paper's case for base-page management (Table I)\n"
}

// AblationTHP compares base-page tiering against transparent-huge-page
// backing of the store's item memory (madvise(MADV_HUGEPAGE) style) under
// MULTI-CLOCK, on YCSB-A. THP shrinks the scanning population ~512× but
// migrates 2 MiB at a time and mixes hot and cold records inside each
// region — Table I's page-granularity axis (Thermostat/AMP are huge-page
// systems; MULTI-CLOCK manages all pages).
func AblationTHP(opt Options) string {
	sc := opt.scale()
	run := func(huge bool) (float64, int64, int64) {
		p, err := NewPolicy("multiclock", sc.Interval)
		if err != nil {
			panic(err)
		}
		m := machineFor(sc, opt.Seed, p)
		storeCfg := kvstore.DefaultConfig(int(sc.Records))
		storeCfg.ItemTouches = 8
		storeCfg.HugeArena = huge
		store := kvstore.New(m, storeCfg)
		clientCfg := ycsb.DefaultClientConfig(sc.Records)
		clientCfg.Seed = opt.Seed ^ 0xface
		client := ycsb.NewClient(m, store, clientCfg)
		client.Load()
		tp := client.Run(ycsb.WorkloadA, sc.OpsPerWorkload).Throughput
		stopDaemons(p)
		return tp, m.Mem.Counters.Promotions, m.Mem.Counters.PagesScanned
	}
	type thpRes struct {
		tp              float64
		promos, scanned int64
	}
	cells := runner.Map(opt.workers(), []bool{false, true}, func(_ int, huge bool) thpRes {
		tp, promos, scanned := run(huge)
		return thpRes{tp, promos, scanned}
	})
	baseTP, basePromos, baseScan := cells[0].tp, cells[0].promos, cells[0].scanned
	hugeTP, hugePromos, hugeScan := cells[1].tp, cells[1].promos, cells[1].scanned
	tb := stats.NewTable(
		"Ablation — base pages vs transparent huge pages for item memory, multiclock, YCSB-A",
		"backing", "throughput (ops/s)", "frames promoted", "pages scanned")
	tb.AddRow("base (4 KiB)", fmt.Sprintf("%.0f", baseTP), fmt.Sprintf("%d", basePromos), fmt.Sprintf("%d", baseScan))
	tb.AddRow("huge (2 MiB)", fmt.Sprintf("%.0f", hugeTP), fmt.Sprintf("%d", hugePromos), fmt.Sprintf("%d", hugeScan))
	tb.AddRow("huge/base", fmt.Sprintf("%.3f", safeDiv(hugeTP, baseTP)), "", "")
	return tb.String() +
		"\nzipfian heat spreads across records: every 2 MiB region is lukewarm, so\n" +
		"huge-grain tiering cannot separate hot from cold — the paper's base-page\n" +
		"management (Table I) is what makes the promote list effective\n"
}
