package bench

// Cross-policy system fuzzing: drive every tiering policy with randomized
// access/unmap/idle sequences and check the machine's global invariants
// after the storm. These catch state-machine leaks that unit tests of
// individual packages cannot see.

import (
	"reflect"
	"testing"
	"testing/quick"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// checkInvariants asserts the machine's global consistency via the
// production checker (machine.CheckInvariants layers LRU and page-table
// consistency on mem.CheckInvariants).
func checkInvariants(t *testing.T, m *machine.Machine) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// fuzzOne runs one randomized scenario on one policy.
func fuzzOne(t *testing.T, system string, seed uint64, ops int) {
	t.Helper()
	p, err := NewPolicy(system, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{128, 128}
	cfg.Mem.PMNodes = []int{512, 512}
	cfg.Seed = seed
	cfg.OpCost = 200 * sim.Nanosecond
	m := machine.New(cfg, p)
	as := m.NewSpace()
	v := as.Mmap(2000, false, "fuzz")
	locked := as.Mmap(8, false, "locked")
	locked.Locked = true
	rng := sim.NewRNG(seed)

	for i := 0; i < ops; i++ {
		switch rng.Intn(20) {
		case 0:
			// Unmap a random page.
			m.Unmap(as, v.Start+pagetable.VPN(rng.Intn(2000)))
		case 1:
			// Idle long enough for daemons to run.
			m.Compute(sim.Duration(rng.Intn(20)) * sim.Millisecond)
		case 2:
			// Touch mlocked memory.
			m.Access(as, locked.Start+pagetable.VPN(rng.Intn(8)), true)
		case 3:
			// Supervised access path.
			m.SupervisedAccess(as, v.Start+pagetable.VPN(rng.Intn(2000)), rng.Intn(2) == 0)
		default:
			// Skewed regular accesses.
			var idx int
			if rng.Intn(10) < 7 {
				idx = rng.Intn(200)
			} else {
				idx = rng.Intn(2000)
			}
			m.Access(as, v.Start+pagetable.VPN(idx), rng.Intn(3) == 0)
		}
		m.EndOp()
	}
	stopDaemons(p)
	checkInvariants(t, m)
}

func TestSystemInvariantsUnderFuzz(t *testing.T) {
	systems := append(append([]string{}, SystemNames...), "memory-mode", "amp-lfu", "amp-lru", "amp-random", "thermostat")
	ops := 8000
	if testing.Short() {
		ops = 1500
	}
	for _, system := range systems {
		system := system
		t.Run(system, func(t *testing.T) {
			t.Parallel() // each fuzzOne builds its own machine
			for seed := uint64(1); seed <= 3; seed++ {
				fuzzOne(t, system, seed, ops)
			}
		})
	}
}

// Property: simulation is deterministic for every policy — same seed,
// same elapsed time and counters.
func TestDeterminismAcrossPolicies(t *testing.T) {
	t.Parallel()
	run := func(system string, seed uint64) (sim.Duration, mem.Counters) {
		p, _ := NewPolicy(system, 5*sim.Millisecond)
		cfg := machine.DefaultConfig()
		cfg.Mem.DRAMNodes = []int{256}
		cfg.Mem.PMNodes = []int{1024}
		cfg.Seed = seed
		m := machine.New(cfg, p)
		as := m.NewSpace()
		v := as.Mmap(1500, false, "w")
		rng := sim.NewRNG(seed ^ 0xd)
		for i := 0; i < 3000; i++ {
			m.Access(as, v.Start+pagetable.VPN(rng.Intn(1500)), rng.Intn(2) == 0)
			m.EndOp()
		}
		stopDaemons(p)
		return m.Elapsed(), m.Mem.Counters
	}
	f := func(seed uint64, sysIdx uint8) bool {
		systems := []string{"static", "multiclock", "nimble", "at-cpm", "at-opm", "memory-mode", "amp-lfu"}
		system := systems[int(sysIdx)%len(systems)]
		e1, c1 := run(system, seed)
		e2, c2 := run(system, seed)
		return e1 == e2 && reflect.DeepEqual(c1, c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
