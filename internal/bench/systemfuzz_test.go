package bench

// Cross-policy system fuzzing: drive every tiering policy with randomized
// access/unmap/idle sequences and check the machine's global invariants
// after the storm. These catch state-machine leaks that unit tests of
// individual packages cannot see.

import (
	"testing"
	"testing/quick"

	"multiclock/internal/lru"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// checkInvariants asserts the machine's global consistency.
func checkInvariants(t *testing.T, m *machine.Machine) {
	t.Helper()

	used := 0
	for _, n := range m.Mem.Nodes {
		if n.FreeFrames() < 0 || n.FreeFrames() > n.Frames {
			t.Fatalf("node %d free frames out of range: %d/%d", n.ID, n.FreeFrames(), n.Frames)
		}
		used += n.UsedFrames()
	}

	mapped := 0
	for _, as := range m.Spaces() {
		mapped += as.Mapped()
	}
	if used != mapped {
		t.Fatalf("frames used %d != PTEs mapped %d (leak or double-map)", used, mapped)
	}

	onLists := 0
	for _, vec := range m.Vecs {
		for k := lru.Kind(0); k < lru.NumKinds; k++ {
			vec.List(k).Each(func(pg *mem.Page) {
				onLists++
				// KindOf panics if flags disagree with list membership.
				if got := vec.KindOf(pg); got != k {
					t.Fatalf("page on list %v reports kind %v", k, got)
				}
				if pg.Node == mem.NoNode || pg.Frame == mem.NoFrame {
					t.Fatal("freed page still on LRU")
				}
				if pg.Flags.Has(mem.FlagIsolated) {
					t.Fatal("isolated page on LRU")
				}
			})
		}
	}
	if onLists != used {
		t.Fatalf("LRU population %d != frames used %d", onLists, used)
	}

	c := &m.Mem.Counters
	var allocs, frees int64
	for tier := mem.Tier(0); tier < mem.NumTiers; tier++ {
		allocs += c.Allocs[tier]
		frees += c.Frees[tier]
	}
	if allocs-frees != int64(used) {
		t.Fatalf("alloc/free accounting: %d - %d != %d used", allocs, frees, used)
	}
}

// fuzzOne runs one randomized scenario on one policy.
func fuzzOne(t *testing.T, system string, seed uint64, ops int) {
	t.Helper()
	p, err := NewPolicy(system, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{128, 128}
	cfg.Mem.PMNodes = []int{512, 512}
	cfg.Seed = seed
	cfg.OpCost = 200 * sim.Nanosecond
	m := machine.New(cfg, p)
	as := m.NewSpace()
	v := as.Mmap(2000, false, "fuzz")
	locked := as.Mmap(8, false, "locked")
	locked.Locked = true
	rng := sim.NewRNG(seed)

	for i := 0; i < ops; i++ {
		switch rng.Intn(20) {
		case 0:
			// Unmap a random page.
			m.Unmap(as, v.Start+pagetable.VPN(rng.Intn(2000)))
		case 1:
			// Idle long enough for daemons to run.
			m.Compute(sim.Duration(rng.Intn(20)) * sim.Millisecond)
		case 2:
			// Touch mlocked memory.
			m.Access(as, locked.Start+pagetable.VPN(rng.Intn(8)), true)
		case 3:
			// Supervised access path.
			m.SupervisedAccess(as, v.Start+pagetable.VPN(rng.Intn(2000)), rng.Intn(2) == 0)
		default:
			// Skewed regular accesses.
			var idx int
			if rng.Intn(10) < 7 {
				idx = rng.Intn(200)
			} else {
				idx = rng.Intn(2000)
			}
			m.Access(as, v.Start+pagetable.VPN(idx), rng.Intn(3) == 0)
		}
		m.EndOp()
	}
	stopDaemons(p)
	checkInvariants(t, m)
}

func TestSystemInvariantsUnderFuzz(t *testing.T) {
	systems := append(append([]string{}, SystemNames...), "memory-mode", "amp-lfu", "amp-lru", "amp-random", "thermostat")
	ops := 8000
	if testing.Short() {
		ops = 1500
	}
	for _, system := range systems {
		system := system
		t.Run(system, func(t *testing.T) {
			t.Parallel() // each fuzzOne builds its own machine
			for seed := uint64(1); seed <= 3; seed++ {
				fuzzOne(t, system, seed, ops)
			}
		})
	}
}

// Property: simulation is deterministic for every policy — same seed,
// same elapsed time and counters.
func TestDeterminismAcrossPolicies(t *testing.T) {
	t.Parallel()
	run := func(system string, seed uint64) (sim.Duration, mem.Counters) {
		p, _ := NewPolicy(system, 5*sim.Millisecond)
		cfg := machine.DefaultConfig()
		cfg.Mem.DRAMNodes = []int{256}
		cfg.Mem.PMNodes = []int{1024}
		cfg.Seed = seed
		m := machine.New(cfg, p)
		as := m.NewSpace()
		v := as.Mmap(1500, false, "w")
		rng := sim.NewRNG(seed ^ 0xd)
		for i := 0; i < 3000; i++ {
			m.Access(as, v.Start+pagetable.VPN(rng.Intn(1500)), rng.Intn(2) == 0)
			m.EndOp()
		}
		stopDaemons(p)
		return m.Elapsed(), m.Mem.Counters
	}
	f := func(seed uint64, sysIdx uint8) bool {
		systems := []string{"static", "multiclock", "nimble", "at-cpm", "at-opm", "memory-mode", "amp-lfu"}
		system := systems[int(sysIdx)%len(systems)]
		e1, c1 := run(system, seed)
		e2, c2 := run(system, seed)
		return e1 == e2 && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
