package bench

// Determinism contract of the parallel runner: every experiment cell is an
// independent single-threaded simulated machine, so fanning cells out
// across goroutines must not change a byte of output. These tests run
// representative experiments sequentially and at -parallel 4 and compare
// the full rendered text.

import "testing"

func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	t.Parallel()
	// Fig5 fans out per system (the Fig. 5/6 cell pattern the runner was
	// built for); Fig10 fans out a 13-cell interval sweep; Bakeoff fans out
	// the competitor-policy set (nomad, s3fifo, the gated daemons).
	for _, exp := range []struct {
		name string
		fn   func(Options) string
	}{
		{"fig5", Fig5},
		{"fig10", Fig10},
		{"bakeoff", Bakeoff},
	} {
		exp := exp
		t.Run(exp.name, func(t *testing.T) {
			t.Parallel()
			seq := exp.fn(Options{Quick: true, Seed: 1, Parallel: 1})
			par := exp.fn(Options{Quick: true, Seed: 1, Parallel: 4})
			if seq != par {
				t.Errorf("parallel output differs from sequential:\n--- parallel=1 ---\n%s\n--- parallel=4 ---\n%s", seq, par)
			}
		})
	}
}

func TestParallelOutputByteIdenticalCheap(t *testing.T) {
	// Short-mode guard: Fig2 is fast enough to always verify the
	// contract, including under -race in CI.
	seq := Fig2(Options{Quick: true, Seed: 1, Parallel: 1})
	par := Fig2(Options{Quick: true, Seed: 1, Parallel: 4})
	if seq != par {
		t.Fatalf("parallel output differs from sequential:\n--- parallel=1 ---\n%s\n--- parallel=4 ---\n%s", seq, par)
	}
}

func TestOptionsWorkers(t *testing.T) {
	if got := (Options{}).workers(); got != 1 {
		t.Fatalf("default workers = %d, want sequential", got)
	}
	if got := (Options{Parallel: 1}).workers(); got != 1 {
		t.Fatalf("Parallel=1 workers = %d", got)
	}
	if got := (Options{Parallel: 6}).workers(); got != 6 {
		t.Fatalf("Parallel=6 workers = %d", got)
	}
	if got := (Options{Parallel: -1}).workers(); got != -1 {
		t.Fatalf("Parallel=-1 workers = %d, want passthrough for GOMAXPROCS resolution", got)
	}
}
