package bench

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"multiclock/internal/fault"
	"multiclock/internal/sim"
	"multiclock/internal/snapshot"
)

// snapshotPolicies are the systems the checkpoint layer must support
// (acceptance matrix of the snapshot work).
var snapshotPolicies = []string{
	"static", "multiclock", "nimble", "nomad", "s3fifo", "multiclock-gated", "nimble-gated",
}

func testSoakConfig(policy string, chaos bool) SoakConfig {
	cfg := SoakConfig{
		Policy:    policy,
		Workloads: []string{"A"},
		Records:   2_000,
		Ops:       6_000,
		DRAMPages: 128,
		PMPages:   1_024,
		Interval:  1 * sim.Millisecond,
		Seed:      1,
	}
	if chaos {
		cfg.Chaos = fault.UniformRate(42, 0.02)
	}
	return cfg
}

// runStraight completes a fresh session and returns its report and final
// fingerprint.
func runStraight(t *testing.T, cfg SoakConfig) (string, snapshot.AuditRecord, *Session) {
	t.Helper()
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	report, err := s.Run(SoakHooks{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rec, err := s.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	return report, rec, s
}

// resumeFromMidpoint runs a second session to the given op boundary, round-
// trips a snapshot through its byte encoding, restores, finishes, and returns
// the resumed report and final fingerprint.
func resumeFromMidpoint(t *testing.T, cfg SoakConfig, mid int64) (string, snapshot.AuditRecord, *Session) {
	t.Helper()
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.RunUntil(mid)
	f, err := s.Capture()
	if err != nil {
		t.Fatalf("Capture at op %d: %v", mid, err)
	}
	f2, err := snapshot.Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	r, err := RestoreSession(f2)
	if err != nil {
		t.Fatalf("RestoreSession: %v", err)
	}
	report, err := r.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	rec, err := r.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	return report, rec, r
}

func diffFingerprints(t *testing.T, a, b snapshot.AuditRecord) {
	t.Helper()
	if d := snapshot.Diverge([]snapshot.AuditRecord{a}, []snapshot.AuditRecord{b}); d != nil {
		t.Errorf("final state fingerprints differ: %v", d)
	}
}

// TestSoakResumeIdentity is the acceptance matrix: every snapshot-supported
// policy, with and without chaos, must resume from a mid-run snapshot to a
// byte-identical report and an identical per-subsystem state fingerprint.
func TestSoakResumeIdentity(t *testing.T) {
	for _, policy := range snapshotPolicies {
		for _, chaos := range []bool{false, true} {
			name := policy
			if chaos {
				name += "/chaos"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := testSoakConfig(policy, chaos)
				straight, rec1, _ := runStraight(t, cfg)
				resumed, rec2, _ := resumeFromMidpoint(t, cfg, cfg.Ops/2)
				if straight != resumed {
					t.Errorf("resumed report differs from straight run:\n--- straight\n%s\n--- resumed\n%s", straight, resumed)
				}
				diffFingerprints(t, rec1, rec2)
			})
		}
	}
}

// TestSoakResumeSequenceWithMetrics covers the multi-workload path (resuming
// with completed results in the config section) and the telemetry registry.
func TestSoakResumeSequenceWithMetrics(t *testing.T) {
	cfg := testSoakConfig("multiclock", true)
	cfg.Workloads = []string{"A", "B", "D"}
	cfg.Ops = 3_000
	cfg.Metrics = true
	cfg.TraceEvents = 32

	straight, rec1, s1 := runStraight(t, cfg)
	// Midpoint inside the second workload, so one completed result travels.
	resumed, rec2, s2 := resumeFromMidpoint(t, cfg, cfg.Ops+cfg.Ops/2)
	if straight != resumed {
		t.Errorf("resumed report differs from straight run:\n--- straight\n%s\n--- resumed\n%s", straight, resumed)
	}
	diffFingerprints(t, rec1, rec2)

	m1, m2 := s1.MetricsRun("x"), s2.MetricsRun("x")
	if m1 == nil || m2 == nil {
		t.Fatalf("missing metrics export (%v, %v)", m1 == nil, m2 == nil)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("metrics exports differ after resume:\n%+v\n%+v", m1, m2)
	}
}

// TestSoakRoundTripProperty is the randomized round-trip property: random
// (workload, policy, chaos seed, snapshot point) combinations must restore
// and finish identically, section hash by section hash.
func TestSoakRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	workloads := []string{"A", "B", "C", "D", "E", "F", "W"}
	for i := 0; i < 10; i++ {
		policy := snapshotPolicies[rng.Intn(len(snapshotPolicies))]
		w := workloads[rng.Intn(len(workloads))]
		chaosSeed := rng.Uint64()
		chaosOn := rng.Intn(2) == 1
		mid := 1 + rng.Int63n(5_999)
		name := policy + "/" + w
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := testSoakConfig(policy, false)
			cfg.Workloads = []string{w}
			cfg.Seed = rng.Uint64()%1000 + 1
			if chaosOn {
				cfg.Chaos = fault.UniformRate(chaosSeed, 0.03)
			}
			straight, rec1, _ := runStraight(t, cfg)
			resumed, rec2, _ := resumeFromMidpoint(t, cfg, mid)
			if straight != resumed {
				t.Errorf("resumed report differs (policy=%s workload=%s chaos=%v mid=%d):\n--- straight\n%s\n--- resumed\n%s",
					policy, w, chaosOn, mid, straight, resumed)
			}
			diffFingerprints(t, rec1, rec2)
		})
	}
}

// TestSoakHooksArePassive asserts checkpointing/auditing/invariant sweeps do
// not perturb the simulation: the report with all hooks on equals the report
// with none.
func TestSoakHooksArePassive(t *testing.T) {
	cfg := testSoakConfig("multiclock", true)
	plain, _, _ := runStraight(t, cfg)

	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	var audit bytes.Buffer
	hooked, err := s.Run(SoakHooks{
		SnapshotPath:    t.TempDir() + "/soak.mcsnap",
		SnapshotEvery:   1_500,
		Audit:           snapshot.NewAuditWriter(&audit),
		InvariantsEvery: 500,
	})
	if err != nil {
		t.Fatalf("Run with hooks: %v", err)
	}
	if plain != hooked {
		t.Errorf("hooks perturbed the run:\n--- plain\n%s\n--- hooked\n%s", plain, hooked)
	}
	recs, err := snapshot.ReadAudit(&audit)
	if err != nil {
		t.Fatalf("ReadAudit: %v", err)
	}
	if len(recs) != 4 {
		t.Errorf("audit trail has %d records, want 4", len(recs))
	}
}

// TestSoakAuditTrailMatchesAcrossRuns: two independent identical runs produce
// byte-identical audit trails; Diverge reports nil.
func TestSoakAuditTrailMatchesAcrossRuns(t *testing.T) {
	cfg := testSoakConfig("s3fifo", true)
	trail := func() []snapshot.AuditRecord {
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		var buf bytes.Buffer
		if _, err := s.Run(SoakHooks{SnapshotEvery: 1_000, Audit: snapshot.NewAuditWriter(&buf)}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		recs, err := snapshot.ReadAudit(&buf)
		if err != nil {
			t.Fatalf("ReadAudit: %v", err)
		}
		return recs
	}
	a, b := trail(), trail()
	if d := snapshot.Diverge(a, b); d != nil {
		t.Errorf("identical runs diverged: %v", d)
	}
	if len(a) == 0 {
		t.Error("empty audit trail")
	}
}

// TestSoakAuditReconcileAfterKill: a run killed at any instant around a
// checkpoint boundary leaves a recoverable trail. Whether the dying process
// appended the boundary's record before the snapshot landed, after, or the
// restored snapshot is older than the trail, RunSoakCLI reconciles the audit
// file on restore and the finished trail is byte-identical to a straight
// run's (and the report matches).
func TestSoakAuditReconcileAfterKill(t *testing.T) {
	cfg := testSoakConfig("multiclock", true)
	const every = 1_500 // boundaries at 1500, 3000, 4500, 6000
	dir := t.TempDir()

	ref := filepath.Join(dir, "straight.jsonl")
	wantReport, _, err := RunSoakCLI(cfg, "", SoakHooks{SnapshotEvery: every}, ref)
	if err != nil {
		t.Fatalf("straight RunSoakCLI: %v", err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(want, []byte("\n"))
	if len(lines) != 5 || len(lines[4]) != 0 { // 4 records + empty tail
		t.Fatalf("straight trail has %d lines, want 4", len(lines)-1)
	}

	// The "killed" run: snapshot on disk is at boundary 2 (op 3000).
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.RunUntil(2 * every)
	snap := filepath.Join(dir, "kill.mcsnap")
	if err := s.Snapshot(snap); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// keep = trail records surviving the kill: 1 (boundary record lost),
	// 2 (in sync), 3 (trail ahead of an older snapshot).
	for _, keep := range []int{1, 2, 3} {
		audit := filepath.Join(dir, fmt.Sprintf("trail-%d.jsonl", keep))
		if err := os.WriteFile(audit, bytes.Join(lines[:keep], nil), 0o644); err != nil {
			t.Fatal(err)
		}
		report, _, err := RunSoakCLI(cfg, snap, SoakHooks{SnapshotEvery: every}, audit)
		if err != nil {
			t.Fatalf("keep=%d: restore RunSoakCLI: %v", keep, err)
		}
		if report != wantReport {
			t.Errorf("keep=%d: resumed report differs from straight run", keep)
		}
		got, err := os.ReadFile(audit)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("keep=%d: reconciled trail differs:\n--- want\n%s--- got\n%s", keep, want, got)
		}
	}
}

// TestSoakUnsupportedPolicy: a policy without checkpoint support fails fast
// with the typed error.
func TestSoakUnsupportedPolicy(t *testing.T) {
	cfg := testSoakConfig("at-cpm", false)
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	var up *snapshot.UnsupportedPolicyError
	if _, err := s.Run(SoakHooks{SnapshotPath: t.TempDir() + "/x", SnapshotEvery: 100}); !errors.As(err, &up) {
		t.Fatalf("Run = %v, want UnsupportedPolicyError", err)
	}
	if _, err := s.Capture(); !errors.As(err, &up) {
		t.Fatalf("Capture = %v, want UnsupportedPolicyError", err)
	}
}

// TestSoakRestoreConfigMismatch: restoring a snapshot onto a target built
// with a different configuration is a typed mismatch, not a partial restore.
func TestSoakRestoreConfigMismatch(t *testing.T) {
	s, err := NewSession(testSoakConfig("multiclock", false))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.RunUntil(1_000)
	f, err := s.Capture()
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}

	other, err := newPristine(testSoakConfig("nimble", false))
	if err != nil {
		t.Fatalf("newPristine: %v", err)
	}
	tgt := other.target()
	var cm *snapshot.ConfigMismatchError
	if err := snapshot.Restore(tgt, f); !errors.As(err, &cm) {
		t.Fatalf("Restore onto nimble target = %v, want ConfigMismatchError", err)
	}
}

// TestSoakCaptureNotQuiescent: a pending one-shot event blocks capture with
// the typed error.
func TestSoakCaptureNotQuiescent(t *testing.T) {
	s, err := NewSession(testSoakConfig("multiclock", false))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.M.Clock.Schedule(1*sim.Second, func() {})
	var nq *snapshot.NotQuiescentError
	if _, err := s.Capture(); !errors.As(err, &nq) {
		t.Fatalf("Capture = %v, want NotQuiescentError", err)
	}
}

// TestSoakCorruptedSnapshotRejected: every byte-level corruption of a real
// snapshot is rejected with a typed error and never panics.
func TestSoakCorruptedSnapshotRejected(t *testing.T) {
	s, err := NewSession(testSoakConfig("nomad", true))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.RunUntil(2_000)
	f, err := s.Capture()
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	data := f.Encode()

	typed := func(err error) bool {
		var ce *snapshot.CorruptError
		var ve *snapshot.VersionError
		return errors.Is(err, snapshot.ErrBadMagic) || errors.Is(err, snapshot.ErrTruncatedFile) ||
			errors.As(err, &ce) || errors.As(err, &ve)
	}

	// Truncations at every length (sampled for speed).
	for cut := 0; cut < len(data); cut += 97 {
		if _, err := snapshot.Decode(data[:cut]); err == nil || !typed(err) {
			t.Fatalf("truncated at %d: err=%v, want typed rejection", cut, err)
		}
	}
	// Single-byte flips (sampled).
	for i := 0; i < len(data); i += 131 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		f2, err := snapshot.Decode(mut)
		if err == nil {
			// The flip must then fail semantic validation on restore.
			if _, err := RestoreSession(f2); err == nil {
				t.Fatalf("flip at %d restored silently", i)
			}
			continue
		}
		if !typed(err) {
			t.Fatalf("flip at %d: err=%v, want typed rejection", i, err)
		}
	}
	// Not a snapshot at all.
	if _, err := snapshot.Decode([]byte("definitely not a snapshot file")); !errors.Is(err, snapshot.ErrBadMagic) {
		t.Fatalf("garbage: err=%v, want ErrBadMagic", err)
	}
	if _, err := snapshot.Decode([]byte{1, 2}); !errors.Is(err, snapshot.ErrTruncatedFile) {
		t.Fatalf("tiny: err=%v, want ErrTruncatedFile", err)
	}
}

// TestSoakVersionSkewRejected: a future container version is refused with
// VersionError.
func TestSoakVersionSkewRejected(t *testing.T) {
	f := snapshot.NewFile()
	f.Version = snapshot.Version + 1
	f.AddSection(snapshot.SecConfig, []byte("x"))
	var ve *snapshot.VersionError
	if _, err := snapshot.Decode(f.Encode()); !errors.As(err, &ve) {
		t.Fatalf("Decode future version = %v, want VersionError", err)
	}
}

// TestSoakInvariantCadence: the sweep actually runs (a session with a broken
// cadence value of 1 still completes and reports clean).
func TestSoakInvariantSweepRuns(t *testing.T) {
	cfg := testSoakConfig("multiclock", true)
	cfg.Ops = 1_000
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := s.Run(SoakHooks{InvariantsEvery: 1}); err != nil {
		t.Fatalf("Run with per-op invariant sweep: %v", err)
	}
}

// TestDiverge exercises the bisecting auditor on synthetic trails.
func TestDiverge(t *testing.T) {
	mk := func(op int64, h string) snapshot.AuditRecord {
		return snapshot.AuditRecord{Op: op, VTime: op * 10, Hashes: map[string]string{"mem": h, "clock": "c"}}
	}
	a := []snapshot.AuditRecord{mk(1, "x"), mk(2, "y"), mk(3, "z")}
	b := []snapshot.AuditRecord{mk(1, "x"), mk(2, "y"), mk(3, "z")}
	if d := snapshot.Diverge(a, b); d != nil {
		t.Errorf("identical trails: %v", d)
	}
	b2 := []snapshot.AuditRecord{mk(1, "x"), mk(2, "Y"), mk(3, "z")}
	d := snapshot.Diverge(a, b2)
	if d == nil || d.Index != 1 || len(d.Sections) != 1 || d.Sections[0] != "mem" {
		t.Errorf("Diverge = %+v, want index 1 section mem", d)
	}
	if !strings.Contains(d.String(), "mem") {
		t.Errorf("String() = %q", d.String())
	}
	d = snapshot.Diverge(a, a[:2])
	if d == nil || d.Index != 2 || len(d.Sections) != 0 {
		t.Errorf("length divergence = %+v, want index 2", d)
	}
}
