package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"multiclock/internal/graph"
	"multiclock/internal/kvstore"
	"multiclock/internal/machine"
	"multiclock/internal/sim"
	"multiclock/internal/trace"
	"multiclock/internal/ycsb"
)

// PerfSchema identifies the perf-report JSON layout.
const PerfSchema = "mcbench/perf/v1"

// PerfResult is one workload's wall-clock measurement. Throughput is
// reported as simulated page accesses per wall-clock second ("pages/sec"):
// virtual-time results are byte-identical across machines by construction,
// so wall time per access is the whole story of simulator speed.
type PerfResult struct {
	Workload    string  `json:"workload"`
	Ops         int64   `json:"ops"`
	Accesses    int64   `json:"accesses"` // simulated accesses incl. cache-filtered
	WallNS      int64   `json:"wall_ns"`
	VirtualNS   int64   `json:"virtual_ns"`
	PagesPerSec float64 `json:"pages_per_sec"`
	NsPerAccess float64 `json:"ns_per_access"`
}

// PerfReport is the full perf-suite output, serialized to BENCH_*.json.
type PerfReport struct {
	Schema    string       `json:"schema"`
	Quick     bool         `json:"quick"`
	Seed      uint64       `json:"seed"`
	Go        string       `json:"go"`
	Workloads []PerfResult `json:"workloads"`
}

// perfAccesses totals the simulated application accesses a machine served,
// including those absorbed by the modelled CPU cache (they run the full
// lookup/aging path and are exactly as expensive for the simulator).
func perfAccesses(m *machine.Machine) int64 {
	c := &m.Mem.Counters
	return c.TotalAccesses() + c.CacheFiltered
}

// measure runs body against m and fills in the wall/virtual/throughput
// numbers for everything body did.
func measure(name string, m *machine.Machine, body func() int64) PerfResult {
	start := time.Now()
	ops := body()
	wall := time.Since(start)
	res := PerfResult{
		Workload:  name,
		Ops:       ops,
		Accesses:  perfAccesses(m),
		WallNS:    wall.Nanoseconds(),
		VirtualNS: int64(m.Clock.Now()),
	}
	res.fillRates(wall)
	return res
}

// fillRates derives the throughput fields from a raw wall-clock
// measurement. A run with no accesses has genuinely zero throughput; a run
// the wall clock's granularity swallowed is clamped to the finest
// measurable interval instead — leaving PagesPerSec at 0 there would make
// the fastest possible run read as an infinite slowdown against any
// baseline.
func (r *PerfResult) fillRates(wall time.Duration) {
	if r.Accesses <= 0 {
		r.PagesPerSec = 0
		r.NsPerAccess = 0
		return
	}
	if wall <= 0 {
		wall = 1
		r.WallNS = 1
	}
	r.PagesPerSec = float64(r.Accesses) / wall.Seconds()
	r.NsPerAccess = float64(r.WallNS) / float64(r.Accesses)
}

// perfYCSB measures one YCSB workload (load + run) on multiclock.
func perfYCSB(sc scale, seed uint64, w ycsb.Workload) PerfResult {
	p, err := NewPolicy("multiclock", sc.Interval)
	if err != nil {
		panic(err)
	}
	m := machineFor(sc, seed, p)
	storeCfg := kvstore.DefaultConfig(int(sc.Records))
	storeCfg.ItemTouches = 8
	store := kvstore.New(m, storeCfg)
	clientCfg := ycsb.DefaultClientConfig(sc.Records)
	clientCfg.Seed = seed ^ 0x9c5b
	client := ycsb.NewClient(m, store, clientCfg)
	res := measure("ycsb-"+strings.ToLower(w.Name), m, func() int64 {
		client.Load()
		client.Run(w, sc.OpsPerWorkload)
		return m.Ops
	})
	stopDaemons(p)
	return res
}

// perfGAPBS measures graph build + PageRank on multiclock.
func perfGAPBS(sc scale, seed uint64) PerfResult {
	p, err := NewPolicy("multiclock", sc.Interval)
	if err != nil {
		panic(err)
	}
	gsc := sc
	gsc.DRAMPages = sc.GraphDRAMPages
	gsc.PMPages = sc.GraphPMPages
	m := machineFor(gsc, seed, p)
	res := measure("gapbs", m, func() int64 {
		g := graph.Generate(m, graph.GenConfig{
			Vertices:  sc.GraphVertices,
			Degree:    sc.GraphDegree,
			Kronecker: true,
			Seed:      seed,
		})
		g.PageRank(sc.PRIters)
		return m.Ops
	})
	stopDaemons(p)
	return res
}

// perfKVStore measures a raw store churn loop: uniform get/set/delete with
// no distribution machinery, so the access engine dominates the wall clock.
func perfKVStore(sc scale, seed uint64) PerfResult {
	p, err := NewPolicy("multiclock", sc.Interval)
	if err != nil {
		panic(err)
	}
	m := machineFor(sc, seed, p)
	storeCfg := kvstore.DefaultConfig(int(sc.Records))
	storeCfg.ItemTouches = 8
	store := kvstore.New(m, storeCfg)
	rng := sim.NewRNG(seed ^ 0x6b76)
	res := measure("kvstore", m, func() int64 {
		for i := int64(0); i < sc.Records; i++ {
			store.Insert(uint64(i), 1000)
			m.EndOp()
		}
		n := uint64(sc.Records)
		for i := int64(0); i < sc.OpsPerWorkload; i++ {
			key := rng.Uint64() % n
			switch i % 4 {
			case 0, 1:
				store.Get(key)
			case 2:
				store.Set(key, 1000)
			default:
				store.ReadModifyWrite(key)
			}
			m.EndOp()
		}
		return m.Ops
	})
	stopDaemons(p)
	return res
}

// perfMotivation measures the Fig. 1 rubis pattern generator: a small
// population with heavy cache-hit traffic, the simulator's most
// access-engine-bound shape.
func perfMotivation(sc scale, seed uint64, duration sim.Duration) PerfResult {
	p, err := NewPolicy("multiclock", sc.Interval)
	if err != nil {
		panic(err)
	}
	gsc := sc
	gsc.DRAMPages = 256
	gsc.PMPages = 2048
	m := machineFor(gsc, seed, p)
	as := m.NewSpace()
	res := measure("motivation", m, func() int64 {
		trace.RunPattern(m, as, trace.PatternRUBiS, duration, seed)
		return m.Ops
	})
	stopDaemons(p)
	return res
}

// RunPerf executes the perf suite sequentially (wall-clock measurements
// need the machine to themselves) and returns the report.
func RunPerf(opt Options) PerfReport {
	sc := opt.scale()
	motivationDur := 4 * sim.Second
	if opt.Quick {
		motivationDur = 1 * sim.Second
	}
	rep := PerfReport{
		Schema: PerfSchema,
		Quick:  opt.Quick,
		Seed:   opt.Seed,
		Go:     runtime.Version(),
	}
	rep.Workloads = append(rep.Workloads,
		perfYCSB(sc, opt.Seed, ycsb.WorkloadA),
		perfYCSB(sc, opt.Seed, ycsb.WorkloadB),
		perfYCSB(sc, opt.Seed, ycsb.WorkloadC),
		perfGAPBS(sc, opt.Seed),
		perfKVStore(sc, opt.Seed),
		perfMotivation(sc, opt.Seed, motivationDur),
	)
	return rep
}

// MarshalPerf renders the report as stable, indented JSON.
func MarshalPerf(rep PerfReport) ([]byte, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParsePerf loads a BENCH_*.json report, validating the schema tag.
func ParsePerf(data []byte) (PerfReport, error) {
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: perf report: %w", err)
	}
	if rep.Schema != PerfSchema {
		return rep, fmt.Errorf("bench: perf report schema %q, want %q", rep.Schema, PerfSchema)
	}
	if len(rep.Workloads) == 0 {
		return rep, fmt.Errorf("bench: perf report has no workloads")
	}
	return rep, nil
}

// FormatPerf renders the report as a human-readable table.
func FormatPerf(rep PerfReport) string {
	var b strings.Builder
	mode := "full"
	if rep.Quick {
		mode = "quick"
	}
	fmt.Fprintf(&b, "perf suite (%s, seed %d, %s)\n", mode, rep.Seed, rep.Go)
	fmt.Fprintf(&b, "%-12s %12s %14s %12s %12s\n", "workload", "accesses", "pages/sec", "ns/access", "wall")
	for _, w := range rep.Workloads {
		fmt.Fprintf(&b, "%-12s %12d %14.0f %12.1f %12s\n",
			w.Workload, w.Accesses, w.PagesPerSec, w.NsPerAccess,
			time.Duration(w.WallNS).Round(time.Millisecond))
	}
	return b.String()
}

// ComparePerf checks cur against a baseline report: any workload present in
// both whose pages/sec fell below baseline/tolerance is a regression, and
// any workload the baseline measured that the current report dropped is a
// violation outright — a silently vanished workload would otherwise pass
// the gate with its regressions unmeasured. The tolerance is deliberately
// generous — CI machines vary severalfold — so a violation means the
// simulator genuinely got slower, not noisier. Virtual results are also
// cross-checked: same scale and seed must reproduce the baseline's virtual
// time exactly, which catches a perf "win" that moved simulation behavior.
func ComparePerf(cur, base PerfReport, tolerance float64) []string {
	var violations []string
	if tolerance <= 1 {
		tolerance = 1
	}
	if cur.Quick != base.Quick {
		return []string{fmt.Sprintf("scale mismatch: current quick=%v, baseline quick=%v — not comparable", cur.Quick, base.Quick)}
	}
	baseBy := make(map[string]PerfResult, len(base.Workloads))
	for _, w := range base.Workloads {
		baseBy[w.Workload] = w
	}
	curNames := make(map[string]bool, len(cur.Workloads))
	for _, w := range cur.Workloads {
		curNames[w.Workload] = true
	}
	for _, bw := range base.Workloads {
		if !curNames[bw.Workload] {
			violations = append(violations, fmt.Sprintf(
				"%s: measured by the baseline but missing from the current report — suite shrank",
				bw.Workload))
		}
	}
	for _, w := range cur.Workloads {
		bw, ok := baseBy[w.Workload]
		if !ok {
			continue
		}
		if floor := bw.PagesPerSec / tolerance; w.PagesPerSec < floor {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f pages/sec is below %.0f (baseline %.0f / tolerance %.1f×)",
				w.Workload, w.PagesPerSec, floor, bw.PagesPerSec, tolerance))
		}
		if cur.Seed == base.Seed && w.VirtualNS != bw.VirtualNS {
			violations = append(violations, fmt.Sprintf(
				"%s: virtual time %dns != baseline %dns at the same seed — simulation behavior moved",
				w.Workload, w.VirtualNS, bw.VirtualNS))
		}
	}
	return violations
}
