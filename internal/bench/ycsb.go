package bench

import (
	"fmt"
	"strings"

	"multiclock/internal/kvstore"
	"multiclock/internal/machine"
	"multiclock/internal/runner"
	"multiclock/internal/sim"
	"multiclock/internal/stats"
	"multiclock/internal/trace"
	"multiclock/internal/ycsb"
)

// ycsbRun executes the prescribed sequence (Load, A, B, C, F, W, D) on one
// freshly built system and returns per-workload throughput plus the
// machine (for counters) and optional telemetry.
type ycsbRunResult struct {
	Throughput map[string]float64
	Machine    *machine.Machine
	Tracker    *trace.PromotionTracker
}

func ycsbRun(sc scale, seed uint64, system string, interval sim.Duration, track bool) ycsbRunResult {
	p, err := NewPolicy(system, interval)
	if err != nil {
		panic(err)
	}
	m := machineFor(sc, seed, p)
	sc.instrument(m, system)
	var tracker *trace.PromotionTracker
	if track {
		tracker = trace.NewPromotionTracker(sc.Window).Bind(m)
		m.Attach(tracker)
	}
	storeCfg := kvstore.DefaultConfig(int(sc.Records))
	storeCfg.ItemTouches = 8
	store := kvstore.New(m, storeCfg)
	clientCfg := ycsb.DefaultClientConfig(sc.Records)
	clientCfg.Seed = seed ^ 0x9c5b
	client := ycsb.NewClient(m, store, clientCfg)
	client.Load()

	out := ycsbRunResult{Throughput: map[string]float64{}, Machine: m, Tracker: tracker}
	for _, w := range ycsb.PaperSequence {
		res := client.Run(w, sc.OpsPerWorkload)
		out.Throughput[w.Name] = res.Throughput
	}
	stopDaemons(p)
	return out
}

// Fig5 regenerates the YCSB throughput comparison: every workload of the
// prescribed sequence, every tiered system, normalized to static tiering.
func Fig5(opt Options) string {
	sc := opt.scale()
	sc.MetricsPrefix = "fig5/"
	workloads := []string{"A", "B", "C", "F", "W", "D"}

	// One schedulable cell per system; results keyed back by name.
	cells := runner.Map(opt.workers(), SystemNames, func(_ int, system string) ycsbRunResult {
		return ycsbRun(sc, opt.Seed, system, sc.Interval, false)
	})
	results := map[string]map[string]float64{}
	notes := map[string]string{}
	for i, system := range SystemNames {
		results[system] = cells[i].Throughput
		notes[system] = tierSummary(cells[i].Machine)
	}

	tb := stats.NewTable(
		"Fig. 5 — YCSB throughput normalized to static tiering (higher is better)",
		append([]string{"workload"}, SystemNames...)...)
	for _, w := range workloads {
		base := results["static"][w]
		row := []string{w}
		for _, system := range SystemNames {
			norm := 0.0
			if base > 0 {
				norm = results[system][w] / base
			}
			row = append(row, fmt.Sprintf("%.3f", norm))
		}
		tb.AddRow(row...)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nabsolute static throughput (ops/s): ")
	for _, w := range workloads {
		fmt.Fprintf(&b, "%s=%.0f ", w, results["static"][w])
	}
	b.WriteString("\nworkload E: non-operational — memcached back-end has no SCAN (§V-B)\n")
	for _, system := range SystemNames {
		fmt.Fprintf(&b, "%-12s %s\n", system, notes[system])
	}
	return b.String()
}

// Fig7 regenerates the Memory-mode comparison: workload footprint set to
// 4× the DRAM capacity; YCSB workloads plus PageRank, normalized to
// static.
func Fig7(opt Options) string {
	sc := opt.scale()
	sc.MetricsPrefix = "fig7/"
	// 4× DRAM: each 1000-byte record occupies ¼ page in its slab, so a
	// footprint of 4×DRAMPages pages needs 16 records per DRAM frame.
	sc.Records = int64(16 * sc.DRAMPages)
	workloads := []string{"A", "B", "C", "F", "W", "D"}

	// Six independent cells: a YCSB sequence and a PageRank run per
	// system, all scheduled together.
	type fig7Cell struct {
		system string
		pr     bool
	}
	var cellDefs []fig7Cell
	for _, system := range MemModeNames {
		cellDefs = append(cellDefs, fig7Cell{system, false})
	}
	for _, system := range MemModeNames {
		cellDefs = append(cellDefs, fig7Cell{system, true})
	}
	type fig7Res struct {
		tp     map[string]float64
		prTime float64
	}
	cells := runner.Map(opt.workers(), cellDefs, func(_ int, c fig7Cell) fig7Res {
		if c.pr {
			return fig7Res{prTime: gapbsKernelTime(sc, opt.Seed, c.system, "PR")}
		}
		return fig7Res{tp: ycsbRun(sc, opt.Seed, c.system, sc.Interval, false).Throughput}
	})
	results := map[string]map[string]float64{}
	times := map[string]float64{}
	for i, c := range cellDefs {
		if c.pr {
			times[c.system] = cells[i].prTime
		} else {
			results[c.system] = cells[i].tp
		}
	}

	tb := stats.NewTable(
		"Fig. 7a — YCSB at 4× DRAM footprint, normalized to static (higher is better)",
		append([]string{"workload"}, MemModeNames...)...)
	for _, w := range workloads {
		base := results["static"][w]
		row := []string{w}
		for _, system := range MemModeNames {
			norm := 0.0
			if base > 0 {
				norm = results[system][w] / base
			}
			row = append(row, fmt.Sprintf("%.3f", norm))
		}
		tb.AddRow(row...)
	}

	// Fig. 7b: PageRank execution time.
	tb2 := stats.NewTable(
		"Fig. 7b — PageRank execution time normalized to static (lower is better)",
		"kernel", MemModeNames[0], MemModeNames[1], MemModeNames[2])
	base := times["static"]
	row := []string{"PR"}
	for _, system := range MemModeNames {
		norm := 0.0
		if base > 0 {
			norm = times[system] / base
		}
		row = append(row, fmt.Sprintf("%.3f", norm))
	}
	tb2.AddRow(row...)
	return tb.String() + "\n" + tb2.String()
}

// Fig8 and Fig9 share one instrumented run of MULTI-CLOCK and Nimble. The
// metricsPrefix keeps their pool labels distinct when one pool collects
// both figures.
func promotionTelemetry(opt Options, metricsPrefix string) (mc, nb ycsbRunResult, sc scale) {
	sc = opt.scale()
	sc.MetricsPrefix = metricsPrefix
	cells := runner.Map(opt.workers(), []string{"multiclock", "nimble"}, func(_ int, system string) ycsbRunResult {
		return ycsbRun(sc, opt.Seed, system, sc.Interval, true)
	})
	return cells[0], cells[1], sc
}

// Fig8 regenerates the pages-promoted-per-window comparison between
// MULTI-CLOCK and Nimble.
func Fig8(opt Options) string {
	mc, nb, sc := promotionTelemetry(opt, "fig8/")
	mcS, nbS := mc.Tracker.Promotions(), nb.Tracker.Promotions()
	n := maxLen(mcS, nbS)
	tb := stats.NewTable(
		fmt.Sprintf("Fig. 8 — pages promoted per %v window", sc.Window),
		"window", "multiclock", "nimble")
	for i := 0; i < n; i++ {
		tb.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%.0f", at(mcS, i)), fmt.Sprintf("%.0f", at(nbS, i)))
	}
	tb.AddRow("total",
		fmt.Sprintf("%d", mc.Tracker.TotalPromotions()),
		fmt.Sprintf("%d", nb.Tracker.TotalPromotions()))
	return tb.String() +
		"\nexpected shape: nimble promotes more pages than multiclock (§V-D.1)\n"
}

// Fig9 regenerates the re-access percentage of recently promoted pages.
func Fig9(opt Options) string {
	mc, nb, sc := promotionTelemetry(opt, "fig9/")
	mcS, nbS := mc.Tracker.ReaccessPercent(), nb.Tracker.ReaccessPercent()
	n := maxLen(mcS, nbS)
	tb := stats.NewTable(
		fmt.Sprintf("Fig. 9 — %% of promoted pages re-accessed, per %v window", sc.Window),
		"window", "multiclock", "nimble")
	for i := 0; i < n; i++ {
		tb.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%.1f", at(mcS, i)), fmt.Sprintf("%.1f", at(nbS, i)))
	}
	tb.AddRow("mean",
		fmt.Sprintf("%.1f", mc.Tracker.MeanReaccessPercent()),
		fmt.Sprintf("%.1f", nb.Tracker.MeanReaccessPercent()))
	return tb.String() +
		"\nexpected shape: multiclock's promoted pages have a higher re-access rate (§V-D.2)\n"
}

// Fig10 regenerates the scanning-interval sensitivity study on YCSB
// workload A for MULTI-CLOCK and Nimble. Runs are measured after a warmup
// pass so the sweep isolates the steady-state trade-off the paper studies
// (scan overhead vs reaction lag), not warmup speed.
func Fig10(opt Options) string {
	sc := opt.scale()
	sc.MetricsPrefix = "fig10/"
	intervals := []sim.Duration{
		sc.Interval / 10,
		sc.Interval / 4,
		sc.Interval / 2,
		sc.Interval,
		5 * sc.Interval,
		60 * sc.Interval,
	}
	// The static baseline plus a multiclock and a nimble run per interval,
	// all independent machines.
	type sweepCell struct {
		system   string
		interval sim.Duration
	}
	cellDefs := []sweepCell{{"static", sc.Interval}}
	for _, iv := range intervals {
		cellDefs = append(cellDefs, sweepCell{"multiclock", iv}, sweepCell{"nimble", iv})
	}
	tps := runner.Map(opt.workers(), cellDefs, func(_ int, c sweepCell) float64 {
		return ycsbSteadyWorkloadA(sc, opt.Seed, c.system, c.interval)
	})
	tb := stats.NewTable(
		"Fig. 10 — YCSB-A throughput vs scan interval, normalized to static (higher is better)",
		"interval", "multiclock", "nimble")
	base := tps[0]
	for i, iv := range intervals {
		tb.AddRow(iv.String(),
			fmt.Sprintf("%.3f", safeDiv(tps[1+2*i], base)),
			fmt.Sprintf("%.3f", safeDiv(tps[2+2*i], base)))
	}
	return tb.String() +
		fmt.Sprintf("\npaper operating point: %v — the interval playing the paper's 1 s role\n"+
			"at this time compression (§V-E); shorter pays scan overhead, longer lags\n", sc.Interval)
}

// ycsbOneWorkload loads and runs only workload A, returning throughput.
func ycsbOneWorkload(sc scale, seed uint64, system string, interval sim.Duration) float64 {
	tp, _ := ycsbWorkloadA(sc, seed, system, interval, false)
	return tp
}

// ycsbSteadyWorkloadA measures workload A after an unmeasured warmup pass.
func ycsbSteadyWorkloadA(sc scale, seed uint64, system string, interval sim.Duration) float64 {
	_, tp := ycsbWorkloadA(sc, seed, system, interval, true)
	return tp
}

func ycsbWorkloadA(sc scale, seed uint64, system string, interval sim.Duration, warm bool) (cold, steady float64) {
	p, err := NewPolicy(system, interval)
	if err != nil {
		panic(err)
	}
	m := machineFor(sc, seed, p)
	sc.instrument(m, system+"@"+interval.String())
	storeCfg := kvstore.DefaultConfig(int(sc.Records))
	storeCfg.ItemTouches = 8
	store := kvstore.New(m, storeCfg)
	clientCfg := ycsb.DefaultClientConfig(sc.Records)
	clientCfg.Seed = seed ^ 0xface
	client := ycsb.NewClient(m, store, clientCfg)
	client.Load()
	res := client.Run(ycsb.WorkloadA, sc.OpsPerWorkload)
	cold = res.Throughput
	if warm {
		steady = client.Run(ycsb.WorkloadA, sc.OpsPerWorkload).Throughput
	}
	stopDaemons(p)
	return cold, steady
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func maxLen(a, b []float64) int {
	if len(a) > len(b) {
		return len(a)
	}
	return len(b)
}

func at(s []float64, i int) float64 {
	if i < len(s) {
		return s[i]
	}
	return 0
}
