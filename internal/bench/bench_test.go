package bench

// These tests assert the *shapes* each experiment must reproduce — the
// qualitative claims of the paper's evaluation — at quick scale. They are
// the repository's reproduction contract; EXPERIMENTS.md records the
// numbers.

import (
	"strings"
	"testing"

	"multiclock/internal/sim"
)

var quickOpt = Options{Quick: true, Seed: 1}

func TestNewPolicyNames(t *testing.T) {
	for _, name := range append(append([]string{}, SystemNames...), "memory-mode") {
		p, err := NewPolicy(name, 10*sim.Millisecond)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("bogus", 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunDispatcher(t *testing.T) {
	if _, err := Run("nope", quickOpt); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	names := Names()
	if len(names) < 12 {
		t.Fatalf("only %d experiments registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("Names not sorted")
		}
	}
}

func TestTable1MentionsEveryTechnique(t *testing.T) {
	out := Table1()
	for _, s := range []string{"static", "nimble", "at-cpm", "at-opm", "memory-mode", "multiclock", "recency+frequency"} {
		if !strings.Contains(out, s) {
			t.Fatalf("Table1 missing %q", s)
		}
	}
}

// --- Fig. 5 shape: the headline YCSB comparison ---

func ycsbShape(t *testing.T) (map[string]map[string]float64, scale) {
	t.Helper()
	sc := quickOpt.scale()
	results := map[string]map[string]float64{}
	for _, system := range SystemNames {
		results[system] = ycsbRun(sc, quickOpt.Seed, system, sc.Interval, false).Throughput
	}
	return results, sc
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	t.Parallel()
	results, _ := ycsbShape(t)
	workloads := []string{"A", "B", "C", "F", "W", "D"}
	for _, w := range workloads {
		static := results["static"][w]
		mc := results["multiclock"][w]
		nb := results["nimble"][w]
		cpm := results["at-cpm"][w]
		opm := results["at-opm"][w]
		// MULTI-CLOCK outperforms static tiering on every workload.
		if mc <= static {
			t.Errorf("workload %s: multiclock %.0f ≤ static %.0f", w, mc, static)
		}
		// MULTI-CLOCK outperforms Nimble's recency-only selection.
		if mc <= nb {
			t.Errorf("workload %s: multiclock %.0f ≤ nimble %.0f", w, mc, nb)
		}
		// MULTI-CLOCK far outperforms AT-CPM (paper: 260-677%).
		if mc < 1.3*cpm {
			t.Errorf("workload %s: multiclock %.0f not ≫ at-cpm %.0f", w, mc, cpm)
		}
		// MULTI-CLOCK outperforms AT-OPM (paper: 10-352%).
		if mc <= opm {
			t.Errorf("workload %s: multiclock %.0f ≤ at-opm %.0f", w, mc, opm)
		}
		// AT-OPM beats AT-CPM (history-driven demotion headroom).
		if opm <= cpm {
			t.Errorf("workload %s: at-opm %.0f ≤ at-cpm %.0f", w, opm, cpm)
		}
	}
	// Workload D is MULTI-CLOCK's best case vs static (paper: +132%, the
	// maximum across workloads).
	best, bestW := 0.0, ""
	for _, w := range workloads {
		gain := results["multiclock"][w] / results["static"][w]
		if gain > best {
			best, bestW = gain, w
		}
	}
	if bestW != "D" && bestW != "W" {
		t.Errorf("largest multiclock gain on %s (%.3f), expected D (or W)", bestW, best)
	}
}

// --- Figs. 8/9 shape: promotion count and quality ---

func TestPromotionTelemetryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	t.Parallel()
	mc, nb, _ := promotionTelemetry(quickOpt, "")
	// Nimble promotes more pages (Fig. 8)...
	if nb.Tracker.TotalPromotions() <= mc.Tracker.TotalPromotions() {
		t.Errorf("nimble promotions %d ≤ multiclock %d",
			nb.Tracker.TotalPromotions(), mc.Tracker.TotalPromotions())
	}
	// ...but a smaller fraction of them are re-accessed (Fig. 9; paper
	// reports ≈15 points of difference).
	mcRe := mc.Tracker.MeanReaccessPercent()
	nbRe := nb.Tracker.MeanReaccessPercent()
	if mcRe <= nbRe {
		t.Errorf("multiclock re-access %.1f%% ≤ nimble %.1f%%", mcRe, nbRe)
	}
	if mcRe-nbRe < 5 {
		t.Errorf("re-access gap %.1f points, want a clear margin", mcRe-nbRe)
	}
}

// --- Fig. 10 shape: interval sensitivity ---

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	t.Parallel()
	sc := quickOpt.scale()
	base := ycsbSteadyWorkloadA(sc, quickOpt.Seed, "static", sc.Interval)
	atOperating := ycsbSteadyWorkloadA(sc, quickOpt.Seed, "multiclock", sc.Interval)
	tooFast := ycsbSteadyWorkloadA(sc, quickOpt.Seed, "multiclock", sc.Interval/10)
	tooSlow := ycsbSteadyWorkloadA(sc, quickOpt.Seed, "multiclock", 60*sc.Interval)
	if atOperating <= base {
		t.Errorf("operating point %.0f ≤ static %.0f", atOperating, base)
	}
	// Scanning 10× too often pays overhead (§V-E context switches).
	if tooFast >= atOperating {
		t.Errorf("10× faster scanning %.0f ≥ operating %.0f", tooFast, atOperating)
	}
	// Scanning 60× too rarely lags the workload.
	if tooSlow >= atOperating {
		t.Errorf("60× slower scanning %.0f ≥ operating %.0f", tooSlow, atOperating)
	}
}

// --- Fig. 2 shape ---

func TestFig2Shape(t *testing.T) {
	out := Fig2(quickOpt)
	if !strings.Contains(out, "multi-access") {
		t.Fatalf("fig2 output: %s", out)
	}
	// Every pattern row must show a ratio > 1 (multi-access pages
	// dominate); the rendering puts "x" after each ratio.
	lines := strings.Split(out, "\n")
	rows := 0
	for _, ln := range lines {
		for _, p := range []string{"rubis", "specpower", "xalan", "lusearch"} {
			if strings.HasPrefix(ln, p) {
				rows++
				if strings.Contains(ln, " 0.") {
					t.Errorf("pattern %s ratio below 1: %s", p, ln)
				}
			}
		}
	}
	if rows != 4 {
		t.Fatalf("fig2 rows = %d, want 4", rows)
	}
}

// --- Fig. 1 shape ---

func TestFig1RendersFourHeatmaps(t *testing.T) {
	out := Fig1(quickOpt)
	if got := strings.Count(out, "heatmap:"); got != 4 {
		t.Fatalf("heatmaps rendered = %d, want 4", got)
	}
	for _, p := range []string{"rubis", "specpower", "xalan", "lusearch"} {
		if !strings.Contains(out, p) {
			t.Fatalf("missing %s", p)
		}
	}
}

// --- Fig. 7 shape ---

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	t.Parallel()
	sc := quickOpt.scale()
	sc.Records = int64(16 * sc.DRAMPages)
	static := ycsbRun(sc, quickOpt.Seed, "static", sc.Interval, false).Throughput
	mc := ycsbRun(sc, quickOpt.Seed, "multiclock", sc.Interval, false).Throughput
	mm := ycsbRun(sc, quickOpt.Seed, "memory-mode", sc.Interval, false).Throughput
	for _, w := range []string{"A", "D"} {
		// Both beat static at 4× footprint; multiclock is competitive
		// with memory-mode (paper: within 2%, up to 9% better).
		if mc[w] <= static[w] || mm[w] <= static[w] {
			t.Errorf("workload %s: mc %.0f / mm %.0f vs static %.0f", w, mc[w], mm[w], static[w])
		}
		if mc[w] < 0.95*mm[w] {
			t.Errorf("workload %s: multiclock %.0f far below memory-mode %.0f", w, mc[w], mm[w])
		}
	}
}

// --- GAPBS sanity (full Fig. 6 is exercised by the root benchmarks) ---

func TestGAPBSKernelRunnersProduceTime(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	t.Parallel()
	sc := quickOpt.scale()
	sc.GraphVertices = 8000
	sc.GraphDegree = 4
	for _, k := range gapbsKernels {
		tm := gapbsKernelTime(sc, quickOpt.Seed, "static", k)
		if tm <= 0 {
			t.Errorf("kernel %s reported no time", k)
		}
	}
}

func TestGAPBSUnknownKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	sc := quickOpt.scale()
	sc.GraphVertices = 100
	sc.GraphDegree = 2
	gapbsKernelTime(sc, 1, "static", "WAT")
}

// --- Ablations ---

func TestAblationWriteAwareShowsBenefit(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	t.Parallel()
	out := AblationWriteAware(quickOpt)
	if !strings.Contains(out, "write-biased") {
		t.Fatalf("output: %s", out)
	}
	// The speedup cell of the biased row must exceed 1.0.
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "write-biased") {
			if strings.Contains(ln, " 0.") || strings.Contains(ln, " 1.000") {
				t.Errorf("write bias showed no benefit: %s", ln)
			}
		}
	}
}

// --- multi-process allocation race (§II-D motivation) ---

func TestMultiProcFairnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	t.Parallel()
	sc := quickOpt.scale()
	stEarly, stLate := multiProcRun(sc, quickOpt.Seed, "static")
	mcEarly, mcLate := multiProcRun(sc, quickOpt.Seed, "multiclock")
	stFair := stLate / stEarly
	mcFair := mcLate / mcEarly
	if stFair > 0.92 {
		t.Errorf("static race not unfair enough: late/early = %.3f", stFair)
	}
	if mcFair < stFair+0.05 {
		t.Errorf("multiclock did not restore fairness: %.3f vs static %.3f", mcFair, stFair)
	}
	// The late process itself must be better off under multiclock.
	if mcLate <= stLate {
		t.Errorf("late process: multiclock %.0f ≤ static %.0f", mcLate, stLate)
	}
}

func TestScaleParameters(t *testing.T) {
	q := Options{Quick: true}.scale()
	f := Options{}.scale()
	if q.OpsPerWorkload >= f.OpsPerWorkload {
		t.Fatal("quick mode must be smaller")
	}
	if q.Interval != f.Interval {
		t.Fatal("both modes share the operating interval (time-compression note)")
	}
	if f.Window != 20*f.Interval || q.Window != 20*q.Interval {
		t.Fatal("telemetry window must be 20 intervals (≙ the paper's 20 s)")
	}
	if f.PMPages <= f.DRAMPages {
		t.Fatal("PM must dwarf DRAM")
	}
}

// --- Fig. 6 shape ---

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	t.Parallel()
	sc := quickOpt.scale()
	kernels := []string{"BFS", "SSSP", "PR", "CC", "BC", "TC"}
	for _, k := range kernels {
		static := gapbsKernelTime(sc, quickOpt.Seed, "static", k)
		mc := gapbsKernelTime(sc, quickOpt.Seed, "multiclock", k)
		norm := mc / static
		// MULTI-CLOCK never loses badly on GAPBS (within noise of static
		// on the streaming kernels, clearly ahead where per-vertex state
		// spills) — §V-C.1's "smaller gains than YCSB" shape.
		if norm > 1.08 {
			t.Errorf("kernel %s: multiclock %.3f× static (regression)", k, norm)
		}
	}
	// At least one kernel shows a clear win (the paper's SSSP/PR story).
	prStatic := gapbsKernelTime(sc, quickOpt.Seed, "static", "PR")
	prMC := gapbsKernelTime(sc, quickOpt.Seed, "multiclock", "PR")
	if prMC/prStatic > 0.95 {
		t.Errorf("PR gain missing: %.3f× static", prMC/prStatic)
	}
}

func TestTable2Inventory(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Table2(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range []string{"internal/core", "internal/lru", "internal/mem", "TOTAL"} {
		if !strings.Contains(out, pkg) {
			t.Fatalf("inventory missing %q:\n%s", pkg, out)
		}
	}
	if _, err := FindModuleRoot("/"); err == nil {
		t.Fatal("module root found at filesystem root")
	}
}
