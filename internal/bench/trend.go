package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TrendEntry is one checked-in perf report in the repository's trajectory:
// the short name derived from its filename (BENCH_pr9.json → "pr9") plus the
// parsed report.
type TrendEntry struct {
	Name   string
	Report PerfReport
}

// trendRank orders report names chronologically: "baseline" first, then prN
// by number, then anything else alphabetically after. Returns a major rank
// and the PR number (meaningful only for the pr bucket).
func trendRank(name string) (int, int) {
	if name == "baseline" {
		return 0, 0
	}
	if n, err := strconv.Atoi(strings.TrimPrefix(name, "pr")); err == nil && strings.HasPrefix(name, "pr") {
		return 1, n
	}
	return 2, 0
}

// SortTrend orders entries oldest→newest (baseline, pr1, pr2, ...; unknown
// names last, alphabetically).
func SortTrend(entries []TrendEntry) {
	sort.SliceStable(entries, func(i, j int) bool {
		mi, ni := trendRank(entries[i].Name)
		mj, nj := trendRank(entries[j].Name)
		if mi != mj {
			return mi < mj
		}
		if ni != nj {
			return ni < nj
		}
		return entries[i].Name < entries[j].Name
	})
}

// FormatTrend renders the per-workload pages/sec trajectory across the
// entries (assumed already sorted oldest→newest): one row per workload, one
// column per report, each later column annotated with its delta against the
// previous report that measured the workload. Reports at a different scale
// than the first are flagged in the header — their deltas compare different
// work and are suppressed.
func FormatTrend(entries []TrendEntry) string {
	var b strings.Builder
	if len(entries) == 0 {
		return "no perf reports\n"
	}
	refQuick := entries[0].Report.Quick
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
		if e.Report.Quick != refQuick {
			if e.Report.Quick {
				names[i] += "[quick]"
			} else {
				names[i] += "[full]"
			}
		}
	}
	mode := "full"
	if refQuick {
		mode = "quick"
	}
	fmt.Fprintf(&b, "perf trajectory (%s scale) — pages/sec per report, %% vs previous\n", mode)

	// Workload rows in first-appearance order across the trajectory.
	var workloads []string
	seen := map[string]bool{}
	for _, e := range entries {
		for _, w := range e.Report.Workloads {
			if !seen[w.Workload] {
				seen[w.Workload] = true
				workloads = append(workloads, w.Workload)
			}
		}
	}

	fmt.Fprintf(&b, "%-12s", "workload")
	for _, n := range names {
		fmt.Fprintf(&b, " %22s", n)
	}
	b.WriteString("\n")
	for _, wl := range workloads {
		fmt.Fprintf(&b, "%-12s", wl)
		prev := 0.0
		prevComparable := false
		for _, e := range entries {
			var cur *PerfResult
			for i := range e.Report.Workloads {
				if e.Report.Workloads[i].Workload == wl {
					cur = &e.Report.Workloads[i]
					break
				}
			}
			if cur == nil {
				fmt.Fprintf(&b, " %22s", "-")
				continue
			}
			cell := fmt.Sprintf("%.0f", cur.PagesPerSec)
			comparable := e.Report.Quick == refQuick
			if prevComparable && comparable && prev > 0 {
				cell += fmt.Sprintf(" (%+.1f%%)", 100*(cur.PagesPerSec-prev)/prev)
			}
			fmt.Fprintf(&b, " %22s", cell)
			if comparable {
				prev, prevComparable = cur.PagesPerSec, true
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
