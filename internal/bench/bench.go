// Package bench is the evaluation harness: one runner per table and figure
// of the paper (§II and §V), each regenerating the corresponding rows or
// series on the simulated machine. cmd/mcbench and the repository's
// testing.B benchmarks both drive this package.
//
// Time scaling: the paper's runs last minutes of wall-clock per workload
// with a 1-second kpromoted interval — hundreds of scan periods per
// workload. Simulated runs compress that: a few virtual seconds carry the
// whole run, so the daemon interval playing the role of the paper's 1 s is
// 10 ms here (the interval the Fig. 10 sweep confirms as the operating
// optimum at this compression). The derived telemetry window stays at 20
// intervals (≙ the paper's 20 s). Full mode differs from quick mode in op
// counts, footprints and graph sizes — ~10× more scan periods per
// workload — not in the interval itself. The shapes under comparison (who
// wins, by what factor, where crossovers sit) depend on periods elapsed,
// not absolute seconds; EXPERIMENTS.md records the mapping.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"multiclock/internal/cliutil"
	"multiclock/internal/core"
	"multiclock/internal/fault"
	"multiclock/internal/lifecycle"
	"multiclock/internal/machine"
	"multiclock/internal/metrics"
	"multiclock/internal/policy"
	"multiclock/internal/sim"
	"multiclock/internal/slo"
	"multiclock/internal/timeseries"
)

// DefaultScanInterval is the promotion-daemon period when none is given:
// the paper's kpromoted runs every 1 s (§V-E). This is the single home of
// that default — the facade and every experiment defer to it.
const DefaultScanInterval = 1 * sim.Second

// Options selects the run scale.
type Options struct {
	// Quick shrinks op counts and daemon intervals ~10× for CI-speed
	// runs; Full reproduces the paper-scale interval of 1 s.
	Quick bool
	Seed  uint64
	// Parallel is the maximum number of simulated machines in flight at
	// once within an experiment. 0 and 1 both mean sequential; negative
	// means GOMAXPROCS. Each sub-run (system×workload cell) is an
	// independent single-threaded machine, so output is byte-identical
	// at every setting: cells are scheduled across goroutines but their
	// results reassemble in presentation order.
	Parallel int
	// Chaos configures deterministic fault injection on every machine the
	// experiment builds. The zero value disables injection entirely and
	// reproduces fault-free output bit for bit.
	Chaos fault.Config
	// Metrics, when non-nil, collects per-machine telemetry from the
	// experiments that support it (the YCSB family: figs. 5 and 7–10) into
	// labeled registries for deterministic export. Nil collects nothing
	// and leaves every simulation untouched.
	Metrics *metrics.Pool
	// Series, when positive, additionally samples every instrumented
	// machine's per-node occupancy and windowed vmstat deltas on this
	// virtual-time period; the series rides the run's metrics export.
	// Requires Metrics.
	Series sim.Duration
	// Lifecycle, when positive, additionally traces per-page Fig. 4 spans
	// on every instrumented machine with this deterministic sampling
	// modulus (1 traces every page); the timelines ride the run's metrics
	// export. Requires Metrics.
	Lifecycle uint64
	// Tiers, when non-empty, replaces the default two-tier machine with the
	// hierarchy this -tiers spec describes (cliutil.ParseTierSpec syntax,
	// e.g. "dram:1024,cxl:2048,pm:8192") on every machine the experiments
	// build. Callers validate the spec up front; machineFor panics on a bad
	// one.
	Tiers string
	// SLO, when non-empty, evaluates the declarative latency objectives it
	// describes (slo.Parse syntax) on every instrumented machine's virtual
	// clock; the results ride the run's metrics export. Callers validate the
	// spec up front; instrument panics on a bad one. Requires Metrics.
	SLO string
	// Trace, when set, additionally records what only the Perfetto trace
	// export consumes: the machine's node→tier topology and the injected
	// fault-injection window log. Both ride the run's metrics export as
	// extra sections. Requires Metrics.
	Trace bool
}

// workers resolves Parallel for runner.Map.
func (o Options) workers() int {
	if o.Parallel == 0 {
		return 1
	}
	return o.Parallel
}

// DefaultOptions returns full-scale settings.
func DefaultOptions() Options { return Options{Seed: 1} }

// SystemNames lists the tiered systems compared in Figs. 5 and 6, in
// presentation order.
var SystemNames = []string{"static", "multiclock", "nimble", "at-cpm", "at-opm"}

// MemModeNames lists the Fig. 7 comparison set.
var MemModeNames = []string{"static", "multiclock", "memory-mode"}

// NewPolicy constructs a policy by name with the given daemon interval;
// a non-positive interval means DefaultScanInterval.
func NewPolicy(name string, interval sim.Duration) (machine.Policy, error) {
	if interval <= 0 {
		interval = DefaultScanInterval
	}
	switch name {
	case "static":
		return policy.NewStatic(), nil
	case "multiclock":
		cfg := core.DefaultConfig()
		cfg.ScanInterval = interval
		return core.New(cfg), nil
	case "nimble":
		cfg := policy.DefaultNimbleConfig()
		cfg.ScanInterval = interval
		return policy.NewNimble(cfg), nil
	case "at-cpm", "at-opm":
		mode := policy.CPM
		if name == "at-opm" {
			mode = policy.OPM
		}
		cfg := policy.DefaultATConfig(mode)
		cfg.ScanInterval = interval
		return policy.NewAutoTiering(cfg), nil
	case "memory-mode":
		return policy.NewMemoryMode(), nil
	case "thermostat":
		cfg := policy.DefaultThermostatConfig()
		cfg.ScanInterval = interval
		return policy.NewThermostat(cfg), nil
	case "amp-lru", "amp-lfu", "amp-random":
		sel, err := policy.DefaultAMPName(name)
		if err != nil {
			return nil, err
		}
		cfg := policy.DefaultAMPConfig(sel)
		cfg.ScanInterval = interval
		return policy.NewAMP(cfg), nil
	case "nomad":
		cfg := policy.DefaultNomadConfig()
		cfg.ScanInterval = interval
		return policy.NewNomad(cfg), nil
	case "s3fifo":
		cfg := policy.DefaultS3FIFOConfig()
		cfg.ScanInterval = interval
		return policy.NewS3FIFO(cfg), nil
	case "multiclock-gated":
		cfg := core.DefaultConfig()
		cfg.ScanInterval = interval
		cfg.Gate = policy.NewBandwidthGate(policy.DefaultBandwidthGateConfig())
		return core.New(cfg), nil
	case "nimble-gated":
		cfg := policy.DefaultNimbleConfig()
		cfg.ScanInterval = interval
		cfg.Gate = policy.NewBandwidthGate(policy.DefaultBandwidthGateConfig())
		return policy.NewNimble(cfg), nil
	default:
		return nil, fmt.Errorf("bench: unknown system %q", name)
	}
}

// scale bundles the size parameters one Options implies.
type scale struct {
	Interval       sim.Duration
	DRAMPages      int
	PMPages        int
	Records        int64
	OpsPerWorkload int64
	// Window is the telemetry window (the paper's 20 s = 20 intervals).
	Window sim.Duration
	// Graph scale for the GAPBS experiments (their memory is sized
	// separately so the CSR exceeds DRAM like the paper's graphs do).
	GraphVertices  int
	GraphDegree    int
	GraphDRAMPages int
	GraphPMPages   int
	PRIters        int
	BFSTrials      int
	BCSources      int
	// Chaos passes the Options fault-injection config through to every
	// machine the experiment builds.
	Chaos fault.Config
	// Metrics and MetricsPrefix thread the Options telemetry pool through
	// to each cell; collectors are claimed under Prefix+cell labels. Both
	// must be set for a cell to instrument itself.
	Metrics       *metrics.Pool
	MetricsPrefix string
	// Series, Lifecycle, SLO and Trace thread the observability knobs
	// through to each instrumented cell (see Options).
	Series    sim.Duration
	Lifecycle uint64
	SLO       string
	Trace     bool
	// Tiers is the Options tier spec, applied by machineFor.
	Tiers string
}

// instrument claims a collector labeled sc.MetricsPrefix+label, binds it to
// m and installs it as both observer and telemetry sink. No-op (and no
// allocation) when the experiment carries no pool or no prefix.
func (sc scale) instrument(m *machine.Machine, label string) {
	if sc.Metrics == nil || sc.MetricsPrefix == "" {
		return
	}
	full := sc.MetricsPrefix + label
	c := sc.Metrics.Collector(full).Bind(m)
	m.SetMetrics(c)
	m.Attach(c)
	// The observability layers export at pool-snapshot time (after the
	// cell's machine has quiesced), so they attach as run decorators.
	if sc.Series > 0 {
		sp := timeseries.New(m, sc.Series, 0)
		sc.Metrics.Decorate(full, func(r *metrics.RunExport) { r.Series = sp.Export() })
	}
	if sc.Lifecycle > 0 {
		tr := lifecycle.New(lifecycle.Config{SampleMod: sc.Lifecycle}).Bind(m)
		sc.Metrics.Decorate(full, func(r *metrics.RunExport) { r.Lifecycle = tr.Export() })
	}
	if sc.SLO != "" {
		sp, err := slo.Parse(sc.SLO)
		if err != nil {
			panic("bench: " + err.Error())
		}
		eng := slo.New(m.Clock, c.Registry(), sp, 0)
		sc.Metrics.Decorate(full, func(r *metrics.RunExport) { r.SLO = eng.Export() })
	}
	if sc.Trace {
		// Tier labels and injected-fault windows only matter to the trace
		// renderer, so they record (and change export bytes) only on request.
		m.Faults.EnableWindowLog(0)
		sc.Metrics.Decorate(full, func(r *metrics.RunExport) {
			r.Topology = metrics.TopologyOf(m)
			r.Faults = metrics.FaultsOf(m)
		})
	}
}

func (o Options) scale() scale {
	sc := o.sizes()
	sc.Chaos = o.Chaos
	sc.Metrics = o.Metrics
	sc.Series = o.Series
	sc.Lifecycle = o.Lifecycle
	sc.SLO = o.SLO
	sc.Trace = o.Trace
	sc.Tiers = o.Tiers
	return sc
}

func (o Options) sizes() scale {
	if o.Quick {
		return scale{
			Interval:       10 * sim.Millisecond,
			DRAMPages:      1024,
			PMPages:        8192,
			Records:        16_000,
			OpsPerWorkload: 120_000,
			Window:         200 * sim.Millisecond,
			GraphVertices:  48_000,
			GraphDegree:    6,
			GraphDRAMPages: 512,
			GraphPMPages:   8192,
			PRIters:        3,
			BFSTrials:      2,
			BCSources:      6,
		}
	}
	return scale{
		Interval:  10 * sim.Millisecond,
		DRAMPages: 1024,
		// PM holds the initial footprint plus workload D's inserted
		// records (~15k pages at full scale) without touching swap.
		PMPages:        24_576,
		Records:        24_000,
		OpsPerWorkload: 1_200_000,
		Window:         200 * sim.Millisecond,
		GraphVertices:  96_000,
		GraphDegree:    8,
		GraphDRAMPages: 1024,
		GraphPMPages:   16_384,
		PRIters:        5,
		BFSTrials:      3,
		BCSources:      8,
	}
}

// machineFor builds the standard two-node experiment machine, or the
// explicit hierarchy when the scale carries a tier spec.
func machineFor(sc scale, seed uint64, p machine.Policy) *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{sc.DRAMPages}
	cfg.Mem.PMNodes = []int{sc.PMPages}
	if sc.Tiers != "" {
		top, err := cliutil.ParseTierSpec(sc.Tiers)
		if err != nil {
			panic("bench: " + err.Error())
		}
		cfg.Mem.Topology = &top
	}
	cfg.Seed = seed
	cfg.OpCost = 1 * sim.Microsecond
	cfg.Faults = sc.Chaos
	return machine.New(cfg, p)
}

// stopDaemons halts a policy's daemons so abandoned machines cost nothing.
func stopDaemons(p machine.Policy) {
	if st, ok := p.(machine.Stopper); ok {
		st.Stop()
	}
}

// Experiments maps experiment ids to their runners, for the CLI.
var Experiments = map[string]func(Options) string{
	"fig1":                 Fig1,
	"fig2":                 Fig2,
	"table1":               func(Options) string { return Table1() },
	"fig5":                 Fig5,
	"fig6":                 Fig6,
	"fig7":                 Fig7,
	"fig8":                 Fig8,
	"fig9":                 Fig9,
	"fig10":                Fig10,
	"ablation-promote":     AblationPromoteList,
	"ablation-batch":       AblationScanBatch,
	"ablation-ratio":       AblationDRAMRatio,
	"ablation-write":       AblationWriteAware,
	"ablation-amp":         AblationAMP,
	"ablation-granularity": AblationGranularity,
	"ablation-thp":         AblationTHP,
	"ablation-multiproc":   AblationMultiProc,
	"bakeoff":              Bakeoff,
}

// Names returns the experiment ids in sorted order.
func Names() []string {
	out := make([]string, 0, len(Experiments))
	for k := range Experiments {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(name string, opt Options) (string, error) {
	fn, ok := Experiments[name]
	if !ok {
		return "", fmt.Errorf("bench: unknown experiment %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return fn(opt), nil
}

// Table1 prints the qualitative technique-comparison matrix (paper
// Table I); the properties of our implementations, asserted by the test
// suite, are restated here.
func Table1() string {
	var b strings.Builder
	b.WriteString("Table I — comparison of memory tiering techniques (as implemented here)\n")
	b.WriteString(`
technique   tracking            selection(promo)    demotion   numa  space-ovh  pages
----------  ------------------  ------------------  ---------  ----  ---------  -----
static      n/a                 n/a                 n/a        yes   none       all
nimble      reference bit       recency             recency    no    none       all
at-cpm      software hint fault fault recency       none       yes   none       all
at-opm      software hint fault fault recency       n-bit hist yes   n bits/pg  all
amp-*       full profiling      lru/lfu/random      same       no    cnt/page   all
thermostat  software hint fault region fault rate   cold regio yes   per-region huge
memory-mode hw cache tags       n/a (dram hidden)   n/a        yes   tags       all
multiclock  reference bit       recency+frequency   recency    yes   none       all
`)
	b.WriteString("\nmulticlock key insight: low-overhead recency+frequency via the promote list.\n")
	return b.String()
}

// tierCounters summarizes where accesses landed (used in several reports).
func tierSummary(m *machine.Machine) string {
	c := &m.Mem.Counters
	return fmt.Sprintf("DRAM-hit=%.1f%% promos=%d demos=%d hintfaults=%d swaps=%d",
		100*c.DRAMHitRatio(), c.Promotions, c.Demotions, c.HintFaults, c.SwapOuts)
}
