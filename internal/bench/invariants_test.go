package bench

import (
	"testing"

	"multiclock/internal/fault"
	"multiclock/internal/kvstore"
	"multiclock/internal/lru"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/runner"
	"multiclock/internal/sim"
	"multiclock/internal/ycsb"
)

// countingObserver tallies events and optionally mutates the machine's
// attachment set from inside its own callbacks.
type countingObserver struct {
	accesses int64
	onAccess func(n int64)
}

func (o *countingObserver) OnAccess(pg *mem.Page, write bool, now sim.Time) {
	o.accesses++
	if o.onAccess != nil {
		o.onAccess(o.accesses)
	}
}
func (o *countingObserver) OnMigrate(pg *mem.Page, from, to mem.NodeID, now sim.Time) {}
func (o *countingObserver) OnFault(pg *mem.Page, hint bool, now sim.Time)             {}

// soakScale is a small grid that still faults, migrates, and swaps.
func soakScale() scale {
	return scale{
		Interval:       10 * sim.Millisecond,
		DRAMPages:      256,
		PMPages:        1024,
		Records:        2000,
		OpsPerWorkload: 20_000,
	}
}

// TestAttachDetachAroundRunningWorkloads exercises observer churn around
// live workloads on many machines at once. Run under -race it proves
// machines share no attachment state; on each machine it pins the
// dispatch-snapshot semantics — an observer can detach itself or attach a
// new observer from inside OnAccess without corrupting the fan-out.
func TestAttachDetachAroundRunningWorkloads(t *testing.T) {
	sc := soakScale()
	type cell struct{ steady, late int64 }
	outs := runner.Map(4, []uint64{1, 2, 3, 4}, func(i int, seed uint64) cell {
		p, err := NewPolicy("multiclock", sc.Interval)
		if err != nil {
			t.Error(err)
			return cell{}
		}
		defer stopDaemons(p)
		m := machineFor(sc, seed, p)

		steady := &countingObserver{}
		m.Attach(steady)

		// Detaches itself mid-dispatch after 100 events.
		var detachSelf func()
		self := &countingObserver{}
		self.onAccess = func(n int64) {
			if n == 100 {
				detachSelf()
			}
		}
		detachSelf = m.Attach(self)

		// Attaches a fresh observer mid-dispatch at event 50.
		late := &countingObserver{}
		adder := &countingObserver{}
		adder.onAccess = func(n int64) {
			if n == 50 {
				m.Attach(late)
			}
		}
		detachAdder := m.Attach(adder)

		store := kvstore.New(m, kvstore.DefaultConfig(int(sc.Records)))
		client := ycsb.NewClient(m, store, ycsb.DefaultClientConfig(sc.Records))
		client.Load()
		client.Run(ycsb.WorkloadA, sc.OpsPerWorkload)

		detachAdder()
		detachAdder() // idempotent
		return cell{steady: steady.accesses, late: late.accesses}
	})
	for i, c := range outs {
		if c.steady == 0 {
			t.Errorf("machine %d: steady observer saw no accesses", i)
		}
		if c.late == 0 || c.late >= c.steady {
			t.Errorf("machine %d: observer attached mid-run saw %d of %d accesses", i, c.late, c.steady)
		}
	}
}

// TestLRUAccountingAfterChaosSoak soaks one machine under deterministic
// fault injection, then checks the residency identity: every distinct page
// descriptor mapped in some address space sits on exactly one LRU list, so
// the sum over nodes of TotalEvictable plus the unevictable population
// must equal the number of distinct resident pages.
func TestLRUAccountingAfterChaosSoak(t *testing.T) {
	chaos, err := fault.ParseSpec("42,0.02")
	if err != nil {
		t.Fatal(err)
	}
	sc := soakScale()
	sc.Chaos = chaos
	p, err := NewPolicy("multiclock", sc.Interval)
	if err != nil {
		t.Fatal(err)
	}
	defer stopDaemons(p)
	m := machineFor(sc, 7, p)

	storeCfg := kvstore.DefaultConfig(int(sc.Records))
	storeCfg.HugeArena = true
	store := kvstore.New(m, storeCfg)
	client := ycsb.NewClient(m, store, ycsb.DefaultClientConfig(sc.Records))
	client.Load()
	client.Run(ycsb.WorkloadA, sc.OpsPerWorkload)
	client.Run(ycsb.WorkloadW, sc.OpsPerWorkload)

	if m.Mem.Counters.MinorFaults == 0 {
		t.Fatal("soak did not fault")
	}

	resident := map[*mem.Page]struct{}{}
	for _, as := range m.Spaces() {
		as.Walk(0, pagetable.MaxVPN+1, func(vpn pagetable.VPN, pg *mem.Page) {
			if pg != nil && pg.Node != mem.NoNode {
				resident[pg] = struct{}{}
			}
		})
	}
	onLRU := 0
	for _, v := range m.Vecs {
		if v == nil {
			continue
		}
		onLRU += v.TotalEvictable() + v.Len(lru.Unevictable)
	}
	if onLRU != len(resident) {
		t.Fatalf("LRU accounting diverged after chaos soak: %d pages on LRU lists, %d distinct resident pages",
			onLRU, len(resident))
	}
	// The per-vec structural check must agree too.
	for id, v := range m.Vecs {
		if v == nil {
			continue
		}
		if _, err := v.CheckConsistency(); err != nil {
			t.Errorf("vec %d: %v", id, err)
		}
	}
}

var _ machine.Observer = (*countingObserver)(nil)
