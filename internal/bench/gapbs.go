package bench

import (
	"fmt"
	"strings"

	"multiclock/internal/graph"
	"multiclock/internal/machine"
	"multiclock/internal/runner"
	"multiclock/internal/sim"
	"multiclock/internal/stats"
)

// gapbsKernels lists the six workloads in the paper's presentation order.
var gapbsKernels = []string{"BFS", "SSSP", "PR", "CC", "BC", "TC"}

// runKernel executes one GAPBS kernel for the given number of trials and
// returns the mean virtual execution time per trial, which is what GAPBS
// reports (§V-B: "the average execution time taken per trial").
func runKernel(m *machine.Machine, g *graph.Graph, kernel string, sc scale, seed uint64) sim.Duration {
	rng := sim.NewRNG(seed ^ 0xbadc)
	trials := sc.BFSTrials
	var total sim.Duration
	run := func(body func()) {
		m.AbsorbTax() // bill load-phase daemon work to the load, not the trial
		start := m.Clock.Now()
		body()
		total += sim.Duration(m.Clock.Now() - start)
	}
	switch kernel {
	case "BFS":
		for i := 0; i < trials; i++ {
			src := int32(rng.Intn(g.N))
			run(func() { g.BFS(src) })
		}
	case "SSSP":
		for i := 0; i < trials; i++ {
			src := int32(rng.Intn(g.N))
			run(func() { g.SSSP(src, 64) })
		}
	case "PR":
		trials = 1
		run(func() { g.PageRank(sc.PRIters) })
	case "CC":
		trials = 1
		run(func() { g.CC() })
	case "BC":
		trials = 1
		sources := make([]int32, sc.BCSources)
		for i := range sources {
			sources[i] = int32(rng.Intn(g.N))
		}
		run(func() { g.BC(sources) })
	case "TC":
		trials = 1
		run(func() { g.TC() })
	default:
		panic("bench: unknown kernel " + kernel)
	}
	return total / sim.Duration(trials)
}

// gapbsKernelTime builds a fresh system, loads the graph, runs one kernel,
// and returns its mean trial time in virtual seconds.
func gapbsKernelTime(sc scale, seed uint64, system, kernel string) float64 {
	p, err := NewPolicy(system, sc.Interval)
	if err != nil {
		panic(err)
	}
	gsc := sc
	gsc.DRAMPages = sc.GraphDRAMPages
	gsc.PMPages = sc.GraphPMPages
	m := machineFor(gsc, seed, p)
	g := graph.Generate(m, graph.GenConfig{
		Vertices:  sc.GraphVertices,
		Degree:    sc.GraphDegree,
		Kronecker: true,
		Seed:      seed,
	})
	t := runKernel(m, g, kernel, sc, seed)
	stopDaemons(p)
	return t.Seconds()
}

// Fig6 regenerates the GAPBS comparison: execution time of all six kernels
// under every tiered system, normalized to static tiering (lower is
// better).
func Fig6(opt Options) string {
	sc := opt.scale()
	// 30 independent cells: every system×kernel pair builds and loads its
	// own graph machine.
	type fig6Cell struct {
		system, kernel string
	}
	var cellDefs []fig6Cell
	for _, system := range SystemNames {
		for _, k := range gapbsKernels {
			cellDefs = append(cellDefs, fig6Cell{system, k})
		}
	}
	times := runner.Map(opt.workers(), cellDefs, func(_ int, c fig6Cell) float64 {
		return gapbsKernelTime(sc, opt.Seed, c.system, c.kernel)
	})
	results := map[string]map[string]float64{}
	for i, c := range cellDefs {
		if results[c.system] == nil {
			results[c.system] = map[string]float64{}
		}
		results[c.system][c.kernel] = times[i]
	}
	tb := stats.NewTable(
		"Fig. 6 — GAPBS execution time normalized to static tiering (lower is better)",
		append([]string{"kernel"}, SystemNames...)...)
	for _, k := range gapbsKernels {
		base := results["static"][k]
		row := []string{k}
		for _, system := range SystemNames {
			row = append(row, fmt.Sprintf("%.3f", safeDiv(results[system][k], base)))
		}
		tb.AddRow(row...)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nabsolute static trial time (s): ")
	for _, k := range gapbsKernels {
		fmt.Fprintf(&b, "%s=%.3f ", k, results["static"][k])
	}
	b.WriteString("\nexpected shape: gains smaller than YCSB — the graph's hot data is " +
		"allocated first and already DRAM-resident (§V-C.1)\n")
	return b.String()
}
