// Package ycsb generates the Yahoo! Cloud Serving Benchmark workloads
// (§V-B): the standard key-choice distributions (uniform, zipfian,
// scrambled zipfian, latest), the core workloads A–F plus the paper's
// custom 100%-write workload W, a load phase, and the prescribed execution
// sequence Load, A, B, C, F, W, D.
package ycsb

import (
	"math"

	"multiclock/internal/sim"
)

// ZipfianConstant is YCSB's default skew parameter.
const ZipfianConstant = 0.99

// Chooser picks record indices in [0, count) with some popularity
// distribution. Count may grow over the run (inserts).
type Chooser interface {
	// Next returns a record index in [0, Count()).
	Next(rng *sim.RNG) int64
	// Grow informs the chooser the key space expanded to n records.
	Grow(n int64)
}

// Uniform chooses keys uniformly.
type Uniform struct{ n int64 }

// NewUniform returns a uniform chooser over n records.
func NewUniform(n int64) *Uniform { return &Uniform{n: n} }

// Next implements Chooser.
func (u *Uniform) Next(rng *sim.RNG) int64 { return rng.Int63n(u.n) }

// Grow implements Chooser.
func (u *Uniform) Grow(n int64) {
	if n > u.n {
		u.n = n
	}
}

// Zipfian is the Gray et al. incremental zipfian generator used by YCSB:
// item 0 is the most popular. It supports a growing item count with an
// incrementally maintained zeta.
type Zipfian struct {
	items                            int64
	theta, alpha, zetan, eta, zeta2t float64
	countForZeta                     int64
}

// NewZipfian returns a zipfian chooser over n items with the default
// constant.
func NewZipfian(n int64) *Zipfian { return NewZipfianTheta(n, ZipfianConstant) }

// NewZipfianTheta returns a zipfian chooser with skew theta in (0,1).
func NewZipfianTheta(n int64, theta float64) *Zipfian {
	if n <= 0 {
		panic("ycsb: zipfian over empty key space")
	}
	z := &Zipfian{items: n, theta: theta}
	z.zeta2t = zetaRange(0, 2, theta, 0)
	z.alpha = 1 / (1 - theta)
	z.zetan = zetaRange(0, n, theta, 0)
	z.countForZeta = n
	z.eta = z.etaVal()
	return z
}

func (z *Zipfian) etaVal() float64 {
	return (1 - pow(2/float64(z.items), 1-z.theta)) / (1 - z.zeta2t/z.zetan)
}

// zetaRange computes zeta(en) incrementally from a prior value at st.
func zetaRange(st, en int64, theta, initial float64) float64 {
	sum := initial
	for i := st; i < en; i++ {
		sum += 1 / pow(float64(i+1), theta)
	}
	return sum
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// Next implements Chooser following the YCSB ZipfianGenerator algorithm.
func (z *Zipfian) Next(rng *sim.RNG) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.items) * pow(z.eta*u-z.eta+1, z.alpha))
}

// Grow implements Chooser, extending zeta incrementally like YCSB's
// allowitemcountdecrease=false path.
func (z *Zipfian) Grow(n int64) {
	if n <= z.items {
		return
	}
	z.zetan = zetaRange(z.countForZeta, n, z.theta, z.zetan)
	z.countForZeta = n
	z.items = n
	z.eta = z.etaVal()
}

// Items returns the current key-space size.
func (z *Zipfian) Items() int64 { return z.items }

// Scrambled wraps a zipfian so popularity is spread uniformly over the key
// space (YCSB's ScrambledZipfianGenerator): without it the hottest keys
// would be the first-loaded (and thus DRAM-resident) ones, hiding the
// tiering effect.
type Scrambled struct {
	z *Zipfian
	n int64
}

// NewScrambled returns a scrambled-zipfian chooser over n records.
func NewScrambled(n int64) *Scrambled {
	return &Scrambled{z: NewZipfian(n), n: n}
}

// Next implements Chooser.
func (s *Scrambled) Next(rng *sim.RNG) int64 {
	v := s.z.Next(rng)
	return int64(fnv64(uint64(v)) % uint64(s.n))
}

// Grow implements Chooser.
func (s *Scrambled) Grow(n int64) {
	if n > s.n {
		s.n = n
		s.z.Grow(n)
	}
}

// Latest favors recently inserted records (YCSB SkewedLatestGenerator),
// the distribution of workload D.
type Latest struct {
	z *Zipfian
	n int64
}

// NewLatest returns a latest-skewed chooser over n records.
func NewLatest(n int64) *Latest {
	return &Latest{z: NewZipfian(n), n: n}
}

// Next implements Chooser: the most recent record is the most popular.
func (l *Latest) Next(rng *sim.RNG) int64 {
	off := l.z.Next(rng)
	return l.n - 1 - off
}

// Grow implements Chooser.
func (l *Latest) Grow(n int64) {
	if n > l.n {
		l.n = n
		l.z.Grow(n)
	}
}

// fnv64 is the FNV-1a hash YCSB uses for key scrambling.
func fnv64(v uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 0x100000001B3
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}
