package ycsb

import (
	"testing"
	"testing/quick"

	"multiclock/internal/sim"
)

func TestRunResultLatencyPercentiles(t *testing.T) {
	_, c := newClient(2000)
	c.Load()
	res := c.Run(WorkloadA, 5000)
	if res.MeanLatency <= 0 || res.P50 <= 0 {
		t.Fatalf("latencies not measured: %+v", res)
	}
	if !(res.P50 <= res.P95 && res.P95 <= res.P99) {
		t.Fatalf("percentile ordering broken: p50=%v p95=%v p99=%v", res.P50, res.P95, res.P99)
	}
	// Throughput and mean latency must be consistent: one op takes about
	// elapsed/ops.
	approx := sim.Duration(int64(res.Elapsed) / res.Ops)
	if res.MeanLatency < approx/2 || res.MeanLatency > approx*2 {
		t.Fatalf("mean latency %v inconsistent with elapsed/ops %v", res.MeanLatency, approx)
	}
}

func TestLatencyTailReflectsTierMix(t *testing.T) {
	// On a machine whose footprint spills to PM, the p99 operation should
	// be noticeably slower than the p50 (PM-heavy ops and fault spikes).
	_, c := newClient(12000) // ~3000 item pages vs 2048-page DRAM
	c.Load()
	res := c.Run(WorkloadA, 20000)
	if res.P99 <= res.P50 {
		t.Fatalf("no tail: p50=%v p99=%v", res.P50, res.P99)
	}
}

// Property: choosers never leave their advertised range even while
// growing.
func TestChooserRangeProperty(t *testing.T) {
	f := func(seed uint64, growths []uint8) bool {
		rng := sim.NewRNG(seed)
		n := int64(100)
		choosers := []Chooser{NewUniform(n), NewZipfian(n), NewScrambled(n), NewLatest(n)}
		for _, g := range growths {
			n += int64(g % 40)
			for _, ch := range choosers {
				ch.Grow(n)
				for i := 0; i < 16; i++ {
					v := ch.Next(rng)
					if v < 0 || v >= n {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfianThetaVariants(t *testing.T) {
	// Lower theta = flatter distribution: item 0's share must shrink.
	share := func(theta float64) float64 {
		z := NewZipfianTheta(1000, theta)
		rng := sim.NewRNG(7)
		hits := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			if z.Next(rng) == 0 {
				hits++
			}
		}
		return float64(hits) / draws
	}
	steep := share(0.99)
	flat := share(0.5)
	if steep <= flat {
		t.Fatalf("theta ordering broken: 0.99→%v, 0.5→%v", steep, flat)
	}
}
