package ycsb

import (
	"math"
	"testing"

	"multiclock/internal/kvstore"
	"multiclock/internal/machine"
	"multiclock/internal/policy"
	"multiclock/internal/sim"
)

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(1000)
	rng := sim.NewRNG(1)
	counts := make([]int64, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 should be by far the most popular (≈1/zetan ≈ 13%).
	frac0 := float64(counts[0]) / draws
	if frac0 < 0.08 || frac0 > 0.2 {
		t.Fatalf("item 0 frequency %v, want ≈0.13", frac0)
	}
	if counts[0] <= counts[500] {
		t.Fatal("no skew")
	}
	// Top 10% of items should draw the majority of accesses.
	var top int64
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if float64(top)/draws < 0.6 {
		t.Fatalf("top-10%% share %v, want majority", float64(top)/draws)
	}
}

func TestZipfianGrow(t *testing.T) {
	z := NewZipfian(100)
	zetaBefore := z.zetan
	z.Grow(200)
	if z.Items() != 200 {
		t.Fatal("Grow")
	}
	if z.zetan <= zetaBefore {
		t.Fatal("zeta must grow")
	}
	// Incremental zeta equals recomputed zeta.
	fresh := NewZipfian(200)
	if math.Abs(z.zetan-fresh.zetan) > 1e-9 {
		t.Fatalf("incremental zeta %v != fresh %v", z.zetan, fresh.zetan)
	}
	z.Grow(50) // shrink is ignored
	if z.Items() != 200 {
		t.Fatal("shrink should be ignored")
	}
}

func TestZipfianEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewZipfian(0)
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	s := NewScrambled(1000)
	rng := sim.NewRNG(2)
	counts := make(map[int64]int64)
	for i := 0; i < 100000; i++ {
		v := s.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// The hottest key should NOT be key 0 specifically (scrambling), and
	// skew should persist.
	var hottest int64
	var hotKey int64
	for k, c := range counts {
		if c > hottest {
			hottest, hotKey = c, k
		}
	}
	if hottest < 5000 {
		t.Fatalf("scrambling destroyed skew: max count %d", hottest)
	}
	if hotKey == 0 {
		t.Fatal("hottest key is 0; scrambling suspect")
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	l := NewLatest(1000)
	rng := sim.NewRNG(3)
	var recent int64
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := l.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		if v >= 900 {
			recent++
		}
	}
	if float64(recent)/draws < 0.5 {
		t.Fatalf("recent-10%% share %v, want majority", float64(recent)/draws)
	}
	l.Grow(2000)
	for i := 0; i < 1000; i++ {
		if v := l.Next(rng); v < 0 || v >= 2000 {
			t.Fatalf("after grow, out of range: %d", v)
		}
	}
}

func TestUniform(t *testing.T) {
	u := NewUniform(100)
	rng := sim.NewRNG(4)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[u.Next(rng)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("key %d count %d, not uniform", i, c)
		}
	}
}

func TestWorkloadProportionsSumToOne(t *testing.T) {
	for _, w := range []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF, WorkloadW} {
		sum := w.ReadProp + w.UpdateProp + w.InsertProp + w.RMWProp + w.ScanProp
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("workload %s proportions sum to %v", w.Name, sum)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("D")
	if err != nil || w.Dist != DistLatest {
		t.Fatal("ByName D")
	}
	if _, err := ByName("Z"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPaperSequenceOrder(t *testing.T) {
	names := ""
	for _, w := range PaperSequence {
		names += w.Name
	}
	if names != "ABCFWD" {
		t.Fatalf("sequence = %s, want ABCFWD (D last, §V-B)", names)
	}
}

func newClient(records int64) (*machine.Machine, *Client) {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{2048}
	cfg.Mem.PMNodes = []int{8192}
	m := machine.New(cfg, policy.NewStatic())
	store := kvstore.New(m, kvstore.DefaultConfig(int(records)))
	return m, NewClient(m, store, DefaultClientConfig(records))
}

func TestClientLoadPhase(t *testing.T) {
	m, c := newClient(1000)
	c.Load()
	if c.Records() != 1000 {
		t.Fatal("records after load")
	}
	if m.Ops != 1000 {
		t.Fatal("load ops")
	}
}

func TestClientRunBeforeLoadPanics(t *testing.T) {
	_, c := newClient(100)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Run(WorkloadA, 10)
}

func TestClientRunWorkloadA(t *testing.T) {
	_, c := newClient(2000)
	c.Load()
	res := c.Run(WorkloadA, 5000)
	if res.Ops != 5000 || res.Unsupported {
		t.Fatalf("result: %+v", res)
	}
	if res.Throughput <= 0 || res.Elapsed <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	st := c.store.Stats
	ratio := float64(st.Gets) / float64(st.Gets+st.Sets)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("A read ratio %v, want ≈0.5", ratio)
	}
}

func TestClientWorkloadDInsertsGrow(t *testing.T) {
	_, c := newClient(2000)
	c.Load()
	c.Run(WorkloadD, 5000)
	if c.Records() <= 2000 {
		t.Fatal("D did not insert")
	}
	grown := c.Records() - 2000
	if grown < 150 || grown > 350 { // ≈5% of 5000
		t.Fatalf("D inserted %d records, want ≈250", grown)
	}
}

func TestClientWorkloadENonOperational(t *testing.T) {
	_, c := newClient(1000)
	c.Load()
	res := c.Run(WorkloadE, 1000)
	if !res.Unsupported {
		t.Fatal("E should be unsupported on memcached")
	}
	if res.Throughput != 0 {
		t.Fatal("unsupported workload must not report throughput")
	}
}

func TestClientWorkloadWAllWrites(t *testing.T) {
	_, c := newClient(1000)
	c.Load()
	c.Run(WorkloadW, 2000)
	st := c.store.Stats
	if st.Sets != 2000 {
		t.Fatalf("W sets = %d, want 2000", st.Sets)
	}
	if st.Gets != 0 {
		t.Fatal("W performed reads")
	}
}

func TestClientWorkloadFRMW(t *testing.T) {
	_, c := newClient(1000)
	c.Load()
	c.Run(WorkloadF, 2000)
	st := c.store.Stats
	if st.RMWs == 0 {
		t.Fatal("F performed no RMWs")
	}
	ratio := float64(st.RMWs) / 2000
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("F rmw ratio %v", ratio)
	}
}

func TestClientDeterminism(t *testing.T) {
	run := func() float64 {
		_, c := newClient(1000)
		c.Load()
		return c.Run(WorkloadA, 3000).Throughput
	}
	if run() != run() {
		t.Fatal("same seed, different throughput")
	}
}

func TestDefaultClientConfig(t *testing.T) {
	cfg := DefaultClientConfig(5)
	if cfg.RecordSize != 1000 || cfg.Records != 5 {
		t.Fatalf("%+v", cfg)
	}
}

func TestNewClientValidation(t *testing.T) {
	m, _ := newClient(10)
	store := kvstore.New(m, kvstore.DefaultConfig(10))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero records")
		}
	}()
	NewClient(m, store, ClientConfig{Records: 0})
}
