package ycsb

import (
	"fmt"
	"math"

	"multiclock/internal/sim"
	"multiclock/internal/snapcodec"
)

// Checkpoint serialization for the client and an in-flight run. The client's
// configuration is supplied by the restore target's construction; only the
// mutable state travels. Choosers are encoded type-tagged with their exact
// float state (math.Float64bits) — the zipfian's zetan/eta are accumulated
// incrementally under Grow, so recomputing them from the item count would not
// reproduce the same bits.

const (
	chooserUniform   = 0
	chooserScrambled = 1
	chooserLatest    = 2
	chooserZipfian   = 3
)

// SnapshotState encodes the client's mutable state.
func (c *Client) SnapshotState(enc *snapcodec.Encoder) {
	st := c.rng.State()
	for _, w := range st {
		enc.U64(w)
	}
	enc.I64(c.records)
	enc.Bool(c.loaded)
}

// RestoreState decodes into a freshly constructed client of identical
// configuration.
func (c *Client) RestoreState(dec *snapcodec.Decoder) error {
	var st [4]uint64
	for i := range st {
		st[i] = dec.U64()
	}
	if dec.Err() != nil {
		return dec.Err()
	}
	c.rng.SetState(st)
	c.records = dec.I64()
	c.loaded = dec.Bool()
	return dec.Err()
}

// SnapshotState encodes an in-flight run at an operation boundary.
func (r *Run) SnapshotState(enc *snapcodec.Encoder) error {
	enc.String(r.w.Name)
	enc.I64(r.ops)
	enc.I64(r.done)
	enc.I64(r.startOps)
	enc.I64(int64(r.start))
	enc.Bool(r.unsupported)
	r.lat.SnapshotState(enc)
	return encodeChooser(enc, r.chooser)
}

// RestoreRun decodes an in-flight run bound to this client. The client must
// already be restored (the run's chooser state is independent, but Step reads
// c.records and c.rng).
func (c *Client) RestoreRun(dec *snapcodec.Decoder) (*Run, error) {
	name := dec.String()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	w, err := ByName(name)
	if err != nil {
		return nil, err
	}
	r := &Run{c: c, w: w}
	r.ops = dec.I64()
	r.done = dec.I64()
	r.startOps = dec.I64()
	r.start = sim.Time(dec.I64())
	r.unsupported = dec.Bool()
	if err := r.lat.RestoreState(dec); err != nil {
		return nil, err
	}
	if r.chooser, err = decodeChooser(dec); err != nil {
		return nil, err
	}
	if r.done < 0 || r.done > r.ops {
		return nil, fmt.Errorf("ycsb: snapshot run completed %d of %d ops", r.done, r.ops)
	}
	return r, dec.Err()
}

func encodeChooser(enc *snapcodec.Encoder, ch Chooser) error {
	switch v := ch.(type) {
	case *Uniform:
		enc.U8(chooserUniform)
		enc.I64(v.n)
	case *Scrambled:
		enc.U8(chooserScrambled)
		enc.I64(v.n)
		encodeZipfian(enc, v.z)
	case *Latest:
		enc.U8(chooserLatest)
		enc.I64(v.n)
		encodeZipfian(enc, v.z)
	case *Zipfian:
		enc.U8(chooserZipfian)
		encodeZipfian(enc, v)
	default:
		return fmt.Errorf("ycsb: chooser %T is not serializable", ch)
	}
	return nil
}

func decodeChooser(dec *snapcodec.Decoder) (Chooser, error) {
	tag := dec.U8()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	switch tag {
	case chooserUniform:
		return &Uniform{n: dec.I64()}, dec.Err()
	case chooserScrambled:
		s := &Scrambled{n: dec.I64()}
		var err error
		if s.z, err = decodeZipfian(dec); err != nil {
			return nil, err
		}
		return s, nil
	case chooserLatest:
		l := &Latest{n: dec.I64()}
		var err error
		if l.z, err = decodeZipfian(dec); err != nil {
			return nil, err
		}
		return l, nil
	case chooserZipfian:
		return decodeZipfian(dec)
	default:
		return nil, fmt.Errorf("ycsb: unknown chooser tag %d", tag)
	}
}

func encodeZipfian(enc *snapcodec.Encoder, z *Zipfian) {
	enc.I64(z.items)
	enc.I64(z.countForZeta)
	for _, f := range []float64{z.theta, z.alpha, z.zetan, z.eta, z.zeta2t} {
		enc.U64(math.Float64bits(f))
	}
}

func decodeZipfian(dec *snapcodec.Decoder) (*Zipfian, error) {
	z := &Zipfian{}
	z.items = dec.I64()
	z.countForZeta = dec.I64()
	z.theta = math.Float64frombits(dec.U64())
	z.alpha = math.Float64frombits(dec.U64())
	z.zetan = math.Float64frombits(dec.U64())
	z.eta = math.Float64frombits(dec.U64())
	z.zeta2t = math.Float64frombits(dec.U64())
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	if z.items <= 0 {
		return nil, fmt.Errorf("ycsb: snapshot zipfian over %d items", z.items)
	}
	return z, nil
}
