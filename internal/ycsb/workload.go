package ycsb

import (
	"fmt"

	"multiclock/internal/kvstore"
	"multiclock/internal/machine"
	"multiclock/internal/sim"
	"multiclock/internal/stats"
)

// Distribution names a key-choice distribution.
type Distribution int8

const (
	// DistZipfian is scrambled zipfian, YCSB's requestdistribution=zipfian.
	DistZipfian Distribution = iota
	// DistLatest favors recent inserts (workload D).
	DistLatest
	// DistUniform chooses keys uniformly (workload E's scan starts).
	DistUniform
)

// Workload is a YCSB operation mix.
type Workload struct {
	Name string
	// Operation proportions; must sum to 1.
	ReadProp, UpdateProp, InsertProp, RMWProp, ScanProp float64
	Dist                                                Distribution
}

// The six standard workloads and the paper's custom workload W (§V-B).
var (
	// WorkloadA is 50% reads, 50% updates.
	WorkloadA = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5, Dist: DistZipfian}
	// WorkloadB is 95% reads, 5% updates.
	WorkloadB = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05, Dist: DistZipfian}
	// WorkloadC is read-only.
	WorkloadC = Workload{Name: "C", ReadProp: 1, Dist: DistZipfian}
	// WorkloadD reads recent inserts: 95% reads, 5% inserts, latest
	// distribution — the paper's best case for MULTI-CLOCK (§V-C.1).
	WorkloadD = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Dist: DistLatest}
	// WorkloadE is short range scans, non-operational on memcached.
	WorkloadE = Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05, Dist: DistUniform}
	// WorkloadF is read-modify-write.
	WorkloadF = Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5, Dist: DistZipfian}
	// WorkloadW is the paper's custom 100%-write workload.
	WorkloadW = Workload{Name: "W", UpdateProp: 1, Dist: DistZipfian}
)

// PaperSequence is the prescribed execution order: the load phase runs
// once, then A, B, C, F, W, and finally D (because D changes the record
// count), §V-B.
var PaperSequence = []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadF, WorkloadW, WorkloadD}

// ByName returns the named workload (A–F or W).
func ByName(name string) (Workload, error) {
	for _, w := range []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF, WorkloadW} {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// ClientConfig sizes a benchmark client.
type ClientConfig struct {
	// Records is the load-phase record count.
	Records int64
	// RecordSize is bytes per record; YCSB's default is ten 100-byte
	// fields ≈ 1000 bytes.
	RecordSize int
	// Seed feeds the client's private random stream.
	Seed uint64
}

// DefaultClientConfig returns the standard record shape.
func DefaultClientConfig(records int64) ClientConfig {
	return ClientConfig{Records: records, RecordSize: 1000, Seed: 42}
}

// Client drives a kvstore with YCSB workloads on a machine's virtual
// timeline.
type Client struct {
	store *kvstore.Store
	m     *machine.Machine
	rng   *sim.RNG
	cfg   ClientConfig

	records int64
	loaded  bool
}

// NewClient creates a client bound to a store.
func NewClient(m *machine.Machine, store *kvstore.Store, cfg ClientConfig) *Client {
	if cfg.Records <= 0 {
		panic("ycsb: Records must be positive")
	}
	if cfg.RecordSize <= 0 {
		cfg.RecordSize = 1000
	}
	return &Client{store: store, m: m, rng: sim.NewRNG(cfg.Seed), cfg: cfg}
}

// Records returns the current record count (grows under workload D).
func (c *Client) Records() int64 { return c.records }

// Load runs the load phase: inserting Records sequential keys.
func (c *Client) Load() {
	for i := int64(0); i < c.cfg.Records; i++ {
		c.store.Insert(uint64(i), c.cfg.RecordSize)
		c.m.EndOp()
	}
	c.records = c.cfg.Records
	c.loaded = true
}

// RunResult reports one workload execution.
type RunResult struct {
	Workload string
	Ops      int64
	Elapsed  sim.Duration
	// Throughput is operations per virtual second.
	Throughput float64
	// Per-operation latency percentiles on the virtual timeline, as the
	// real YCSB reports.
	P50, P95, P99 sim.Duration
	MeanLatency   sim.Duration
	// Unsupported is set when the back-end rejected the workload's
	// operations (workload E on memcached).
	Unsupported bool
}

// Run executes ops operations of workload w and reports throughput
// measured on the virtual clock. Load must have run first.
func (c *Client) Run(w Workload, ops int64) RunResult {
	r := c.StartRun(w, ops)
	for r.Step() {
	}
	return r.Finish()
}

// Run is one in-flight workload execution, stepped one operation at a time.
// Client.Run drives it to completion in a tight loop; resumable harnesses
// (the soak driver, the checkpoint layer) step it explicitly so every op
// boundary is a quiescent point where a snapshot can be taken.
type Run struct {
	c       *Client
	w       Workload
	chooser Chooser

	ops, done   int64
	startOps    int64
	start       sim.Time
	unsupported bool
	lat         stats.Histogram
}

// StartRun begins a workload execution of ops operations. Load must have run
// first.
func (c *Client) StartRun(w Workload, ops int64) *Run {
	if !c.loaded {
		panic("ycsb: Run before Load")
	}
	r := &Run{
		c: c, w: w, chooser: c.chooserFor(w),
		ops: ops, startOps: c.m.Ops, start: c.m.Clock.Now(),
	}
	r.lat.Reserve(int(ops))
	return r
}

// Workload returns the run's operation mix.
func (r *Run) Workload() Workload { return r.w }

// Done returns completed operations; Ops returns the target count.
func (r *Run) Done() int64 { return r.done }

// Ops returns the run's target operation count.
func (r *Run) Ops() int64 { return r.ops }

// Step executes one operation. It returns false once the run is complete
// (target reached, or the back-end rejected the workload); further calls are
// no-ops.
func (r *Run) Step() bool {
	if r.done >= r.ops || r.unsupported {
		return false
	}
	c, w := r.c, r.w
	opStart := c.m.Clock.Now()
	p := c.rng.Float64()
	switch {
	case p < w.ReadProp:
		c.store.Get(uint64(r.chooser.Next(c.rng)))
	case p < w.ReadProp+w.UpdateProp:
		c.store.Set(uint64(r.chooser.Next(c.rng)), c.cfg.RecordSize)
	case p < w.ReadProp+w.UpdateProp+w.InsertProp:
		key := uint64(c.records)
		c.records++
		r.chooser.Grow(c.records)
		c.store.Insert(key, c.cfg.RecordSize)
	case p < w.ReadProp+w.UpdateProp+w.InsertProp+w.RMWProp:
		c.store.ReadModifyWrite(uint64(r.chooser.Next(c.rng)))
	default:
		if err := c.store.Scan(uint64(r.chooser.Next(c.rng)), 100); err != nil {
			r.unsupported = true
		}
	}
	c.m.EndOp()
	r.lat.Add(float64(c.m.Clock.Now() - opStart))
	r.done++
	return r.done < r.ops && !r.unsupported
}

// Finish computes the run's result.
func (r *Run) Finish() RunResult {
	c := r.c
	elapsed := sim.Duration(c.m.Clock.Now() - r.start)
	res := RunResult{
		Workload:    r.w.Name,
		Ops:         c.m.Ops - r.startOps,
		Elapsed:     elapsed,
		Unsupported: r.unsupported,
		P50:         sim.Duration(r.lat.Percentile(50)),
		P95:         sim.Duration(r.lat.Percentile(95)),
		P99:         sim.Duration(r.lat.Percentile(99)),
		MeanLatency: sim.Duration(r.lat.Mean()),
	}
	if elapsed > 0 && !r.unsupported {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	return res
}

// chooserFor builds the key chooser for one workload run over the current
// record count.
func (c *Client) chooserFor(w Workload) Chooser {
	switch w.Dist {
	case DistLatest:
		return NewLatest(c.records)
	case DistUniform:
		return NewUniform(c.records)
	default:
		return NewScrambled(c.records)
	}
}
