package ycsb

import (
	"fmt"

	"multiclock/internal/kvstore"
	"multiclock/internal/machine"
	"multiclock/internal/sim"
	"multiclock/internal/stats"
)

// Distribution names a key-choice distribution.
type Distribution int8

const (
	// DistZipfian is scrambled zipfian, YCSB's requestdistribution=zipfian.
	DistZipfian Distribution = iota
	// DistLatest favors recent inserts (workload D).
	DistLatest
	// DistUniform chooses keys uniformly (workload E's scan starts).
	DistUniform
)

// Workload is a YCSB operation mix.
type Workload struct {
	Name string
	// Operation proportions; must sum to 1.
	ReadProp, UpdateProp, InsertProp, RMWProp, ScanProp float64
	Dist                                                Distribution
}

// The six standard workloads and the paper's custom workload W (§V-B).
var (
	// WorkloadA is 50% reads, 50% updates.
	WorkloadA = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5, Dist: DistZipfian}
	// WorkloadB is 95% reads, 5% updates.
	WorkloadB = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05, Dist: DistZipfian}
	// WorkloadC is read-only.
	WorkloadC = Workload{Name: "C", ReadProp: 1, Dist: DistZipfian}
	// WorkloadD reads recent inserts: 95% reads, 5% inserts, latest
	// distribution — the paper's best case for MULTI-CLOCK (§V-C.1).
	WorkloadD = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Dist: DistLatest}
	// WorkloadE is short range scans, non-operational on memcached.
	WorkloadE = Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05, Dist: DistUniform}
	// WorkloadF is read-modify-write.
	WorkloadF = Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5, Dist: DistZipfian}
	// WorkloadW is the paper's custom 100%-write workload.
	WorkloadW = Workload{Name: "W", UpdateProp: 1, Dist: DistZipfian}
)

// PaperSequence is the prescribed execution order: the load phase runs
// once, then A, B, C, F, W, and finally D (because D changes the record
// count), §V-B.
var PaperSequence = []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadF, WorkloadW, WorkloadD}

// ByName returns the named workload (A–F or W).
func ByName(name string) (Workload, error) {
	for _, w := range []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF, WorkloadW} {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// ClientConfig sizes a benchmark client.
type ClientConfig struct {
	// Records is the load-phase record count.
	Records int64
	// RecordSize is bytes per record; YCSB's default is ten 100-byte
	// fields ≈ 1000 bytes.
	RecordSize int
	// Seed feeds the client's private random stream.
	Seed uint64
}

// DefaultClientConfig returns the standard record shape.
func DefaultClientConfig(records int64) ClientConfig {
	return ClientConfig{Records: records, RecordSize: 1000, Seed: 42}
}

// Client drives a kvstore with YCSB workloads on a machine's virtual
// timeline.
type Client struct {
	store *kvstore.Store
	m     *machine.Machine
	rng   *sim.RNG
	cfg   ClientConfig

	records int64
	loaded  bool
}

// NewClient creates a client bound to a store.
func NewClient(m *machine.Machine, store *kvstore.Store, cfg ClientConfig) *Client {
	if cfg.Records <= 0 {
		panic("ycsb: Records must be positive")
	}
	if cfg.RecordSize <= 0 {
		cfg.RecordSize = 1000
	}
	return &Client{store: store, m: m, rng: sim.NewRNG(cfg.Seed), cfg: cfg}
}

// Records returns the current record count (grows under workload D).
func (c *Client) Records() int64 { return c.records }

// Load runs the load phase: inserting Records sequential keys.
func (c *Client) Load() {
	for i := int64(0); i < c.cfg.Records; i++ {
		c.store.Insert(uint64(i), c.cfg.RecordSize)
		c.m.EndOp()
	}
	c.records = c.cfg.Records
	c.loaded = true
}

// RunResult reports one workload execution.
type RunResult struct {
	Workload string
	Ops      int64
	Elapsed  sim.Duration
	// Throughput is operations per virtual second.
	Throughput float64
	// Per-operation latency percentiles on the virtual timeline, as the
	// real YCSB reports.
	P50, P95, P99 sim.Duration
	MeanLatency   sim.Duration
	// Unsupported is set when the back-end rejected the workload's
	// operations (workload E on memcached).
	Unsupported bool
}

// Run executes ops operations of workload w and reports throughput
// measured on the virtual clock. Load must have run first.
func (c *Client) Run(w Workload, ops int64) RunResult {
	if !c.loaded {
		panic("ycsb: Run before Load")
	}
	chooser := c.chooserFor(w)
	startOps := c.m.Ops
	start := c.m.Clock.Now()
	unsupported := false
	var lat stats.Histogram
	lat.Reserve(int(ops))

	for i := int64(0); i < ops; i++ {
		opStart := c.m.Clock.Now()
		p := c.rng.Float64()
		switch {
		case p < w.ReadProp:
			c.store.Get(uint64(chooser.Next(c.rng)))
		case p < w.ReadProp+w.UpdateProp:
			c.store.Set(uint64(chooser.Next(c.rng)), c.cfg.RecordSize)
		case p < w.ReadProp+w.UpdateProp+w.InsertProp:
			key := uint64(c.records)
			c.records++
			chooser.Grow(c.records)
			c.store.Insert(key, c.cfg.RecordSize)
		case p < w.ReadProp+w.UpdateProp+w.InsertProp+w.RMWProp:
			c.store.ReadModifyWrite(uint64(chooser.Next(c.rng)))
		default:
			if err := c.store.Scan(uint64(chooser.Next(c.rng)), 100); err != nil {
				unsupported = true
			}
		}
		c.m.EndOp()
		lat.Add(float64(c.m.Clock.Now() - opStart))
		if unsupported {
			break
		}
	}

	elapsed := sim.Duration(c.m.Clock.Now() - start)
	res := RunResult{
		Workload:    w.Name,
		Ops:         c.m.Ops - startOps,
		Elapsed:     elapsed,
		Unsupported: unsupported,
		P50:         sim.Duration(lat.Percentile(50)),
		P95:         sim.Duration(lat.Percentile(95)),
		P99:         sim.Duration(lat.Percentile(99)),
		MeanLatency: sim.Duration(lat.Mean()),
	}
	if elapsed > 0 && !unsupported {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	return res
}

// chooserFor builds the key chooser for one workload run over the current
// record count.
func (c *Client) chooserFor(w Workload) Chooser {
	switch w.Dist {
	case DistLatest:
		return NewLatest(c.records)
	case DistUniform:
		return NewUniform(c.records)
	default:
		return NewScrambled(c.records)
	}
}
