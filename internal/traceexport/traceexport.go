// Package traceexport renders metrics export documents as deterministic
// Chrome-trace-event JSON that opens directly in ui.perfetto.dev, merging
// every recorded signal onto the single virtual-time timeline: per-page
// lifecycle spans, daemon wakeup passes, migrations with tier labels, page
// faults, injected-fault windows, and SLO burn-rate alerts.
//
// The exporter is post-hoc: it consumes the wire-format []metrics.RunExport
// (either in-process at the end of a run, or re-read from a metrics JSON
// file by `mcmetrics perfetto`), so it can never perturb a simulation.
// Output is byte-deterministic — events are emitted by a hand-written
// serializer in a fixed structural order with fixed key order, timestamps
// rendered as exact "<µs>.<ns-remainder>" decimals — so equal exports
// produce equal trace bytes at every -parallel level.
//
// Track/ID stability rules (also documented in DESIGN.md): each run becomes
// one process, pid = 1 + the run's position in label-sorted order. Within a
// process, thread IDs are fixed by category, not by appearance order:
//
//	tid 1+t    migrations into tier t (topology order; tid 90 when the
//	           export carries no topology section)
//	tid 100+i  daemon pass tracks, one per daemon name in sorted order
//	tid 200    page faults (minor + hint)
//	tid 210    injected-fault windows
//	tid 300+i  SLO objective alert tracks, in spec order
//	tid 1000+i lifecycle page span tracks, in (space, va) order
//
// Adding a new category takes a new fixed tid range; existing tids never
// move, so saved Perfetto UI queries keep working across exporter versions.
package traceexport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"multiclock/internal/metrics"
)

// Fixed thread IDs per category (see the package comment).
const (
	tidMigrationBase  = 1   // + tier index
	tidMigrationFlat  = 90  // no topology section
	tidDaemonBase     = 100 // + sorted daemon-name index
	tidFaults         = 200
	tidInjected       = 210
	tidSLOBase        = 300 // + objective index
	tidLifecycleBase  = 1000
	instantScopeValue = "t" // thread-scoped instants
)

// Build renders the runs as one Chrome-trace-event JSON document. Runs are
// label-sorted (the same order metrics.ExportJSON writes), so the same
// telemetry always yields the same bytes.
func Build(runs []metrics.RunExport) []byte {
	sorted := append([]metrics.RunExport(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })

	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	w := &writer{b: &b}
	for i := range sorted {
		emitRun(w, &sorted[i], i+1)
	}
	b.WriteString("\n]}\n")
	return []byte(b.String())
}

// writer joins events with ",\n" without a trailing comma.
type writer struct {
	b   *strings.Builder
	any bool
}

func (w *writer) event(s string) {
	if w.any {
		w.b.WriteString(",\n")
	}
	w.any = true
	w.b.WriteString(s)
}

// ts renders virtual nanoseconds as the trace format's microsecond
// timestamp, exactly: "<µs>.<3-digit ns remainder>".
func ts(ns int64) string {
	if ns < 0 {
		ns = 0
	}
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// jstr renders s as a JSON string literal without HTML escaping (objective
// names contain "<", which must stay readable in the Perfetto UI).
func jstr(s string) string {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(s)
	return strings.TrimSuffix(b.String(), "\n")
}

// meta emits a metadata record naming a process or (tid >= 0) a thread.
func meta(w *writer, pid, tid int, kind, name string) {
	if tid >= 0 {
		w.event(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":%q,\"args\":{\"name\":%s}}",
			pid, tid, kind, jstr(name)))
		return
	}
	w.event(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"name\":%q,\"args\":{\"name\":%s}}",
		pid, kind, jstr(name)))
}

// complete emits a complete ("X") event; args must be a JSON object literal
// or empty.
func complete(w *writer, pid, tid int, startNS, durNS int64, name, args string) {
	if durNS < 0 {
		durNS = 0
	}
	if args == "" {
		args = "{}"
	}
	w.event(fmt.Sprintf("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%s,\"args\":%s}",
		pid, tid, ts(startNS), ts(durNS), jstr(name), args))
}

// instant emits a thread-scoped instant ("i") event.
func instant(w *writer, pid, tid int, atNS int64, name, args string) {
	if args == "" {
		args = "{}"
	}
	w.event(fmt.Sprintf("{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"s\":%q,\"name\":%s,\"args\":%s}",
		pid, tid, ts(atNS), instantScopeValue, jstr(name), args))
}

// counter emits a counter ("C") event.
func counter(w *writer, pid int, atNS int64, name string, value int64) {
	w.event(fmt.Sprintf("{\"ph\":\"C\",\"pid\":%d,\"ts\":%s,\"name\":%s,\"args\":{\"value\":%d}}",
		pid, ts(atNS), jstr(name), value))
}

// emitRun renders one run as one trace process.
func emitRun(w *writer, run *metrics.RunExport, pid int) {
	meta(w, pid, -1, "process_name", run.Label)

	tierOfNode, tierNames := tierMap(run)
	daemons := daemonNames(run)

	// Thread metadata first, in tid order, so the track layout is explicit
	// even for categories that end up with no events.
	if len(tierNames) > 0 {
		for t, name := range tierNames {
			meta(w, pid, tidMigrationBase+t, "thread_name", "migrations → "+name)
		}
	} else {
		meta(w, pid, tidMigrationFlat, "thread_name", "migrations")
	}
	for i, d := range daemons {
		meta(w, pid, tidDaemonBase+i, "thread_name", "daemon "+d)
	}
	meta(w, pid, tidFaults, "thread_name", "page faults")
	meta(w, pid, tidInjected, "thread_name", "injected faults")
	if run.SLO != nil {
		for i, o := range run.SLO.Objectives {
			meta(w, pid, tidSLOBase+i, "thread_name", "slo "+o.Name)
		}
	}
	if run.Lifecycle != nil {
		for i, p := range run.Lifecycle.Pages {
			meta(w, pid, tidLifecycleBase+i, "thread_name",
				fmt.Sprintf("page %d/0x%x", p.Space, p.VA))
		}
	}

	// Structured trace events: migrations, daemon passes, page faults.
	if run.Trace != nil {
		daemonTid := make(map[string]int, len(daemons))
		for i, d := range daemons {
			daemonTid[d] = tidDaemonBase + i
		}
		for _, ev := range run.Trace.Events {
			switch ev.Kind {
			case "promote", "demote":
				tid := tidMigrationFlat
				dstTier := ""
				if t, ok := tierOfNode[ev.To]; ok {
					tid = tidMigrationBase + t
					dstTier = tierNames[t]
				}
				args := fmt.Sprintf("{\"from_node\":%d,\"to_node\":%d,\"pages\":%d",
					ev.From, ev.To, ev.Pages)
				if dstTier != "" {
					srcTier := ""
					if t, ok := tierOfNode[ev.From]; ok {
						srcTier = tierNames[t]
					}
					args += fmt.Sprintf(",\"from_tier\":%s,\"to_tier\":%s",
						jstr(srcTier), jstr(dstTier))
				}
				args += "}"
				instant(w, pid, tid, ev.At, ev.Kind, args)
			case "scan":
				start := ev.At - ev.Work
				complete(w, pid, daemonTid[ev.Name], start, ev.Work,
					ev.Name+" pass", fmt.Sprintf("{\"work_ns\":%d}", ev.Work))
			case "fault", "hint-fault":
				instant(w, pid, tidFaults, ev.At, ev.Kind,
					fmt.Sprintf("{\"va\":\"0x%x\"}", ev.VA))
			}
		}
	}

	// Injected degradation windows.
	if run.Faults != nil {
		for _, fw := range run.Faults.Windows {
			complete(w, pid, tidInjected, fw.StartNS, fw.EndNS-fw.StartNS, fw.Kind, "")
		}
	}

	// SLO burn-rate alerts, one track per objective.
	if run.SLO != nil {
		for i, o := range run.SLO.Objectives {
			for _, a := range o.Alerts {
				complete(w, pid, tidSLOBase+i, a.StartNS, a.EndNS-a.StartNS,
					"burn-rate alert",
					fmt.Sprintf("{\"windows\":%d,\"peak_fast_burn_milli\":%d,\"peak_slow_burn_milli\":%d}",
						a.Windows, a.PeakFastBurnMilli, a.PeakSlowBurnMilli))
			}
		}
	}

	// Lifecycle spans: each state is a complete event lasting until the next
	// transition; the final state (no known end) renders as an instant.
	if run.Lifecycle != nil {
		for i, p := range run.Lifecycle.Pages {
			tid := tidLifecycleBase + i
			for j, ev := range p.Events {
				args := fmt.Sprintf("{\"reason\":%s,\"node\":%d}", jstr(ev.Reason), ev.Node)
				if j+1 < len(p.Events) {
					complete(w, pid, tid, ev.At, p.Events[j+1].At-ev.At, ev.State, args)
				} else {
					instant(w, pid, tid, ev.At, ev.State, args)
				}
			}
		}
	}

	// Time-series windows as counter tracks: per-node free frames and the
	// window's DRAM hit ratio (ppm), stamped at each window's end.
	if run.Series != nil {
		for _, win := range run.Series.Windows {
			for _, n := range win.Nodes {
				counter(w, pid, win.End,
					fmt.Sprintf("free_frames node%d (%s)", n.Node, n.Tier), int64(n.Free))
			}
			hitPPM := int64(0)
			if total := win.Accesses(); total > 0 {
				hitPPM = (win.ReadsDRAM + win.WritesDRAM) * 1_000_000 / total
			}
			counter(w, pid, win.End, "dram_hit_ppm", hitPPM)
		}
	}
}

// tierMap resolves the run's topology section into node→tier-index and the
// tier name list (unique tiers in node order). Empty when the run carries no
// topology.
func tierMap(run *metrics.RunExport) (map[int]int, []string) {
	if len(run.Topology) == 0 {
		return nil, nil
	}
	nodeTier := make(map[int]int, len(run.Topology))
	var names []string
	index := map[string]int{}
	for _, nt := range run.Topology {
		t, ok := index[nt.Tier]
		if !ok {
			t = len(names)
			index[nt.Tier] = t
			names = append(names, nt.Tier)
		}
		nodeTier[nt.Node] = t
	}
	return nodeTier, names
}

// daemonNames collects the sorted distinct daemon names from scan events.
func daemonNames(run *metrics.RunExport) []string {
	if run.Trace == nil {
		return nil
	}
	seen := map[string]bool{}
	for _, ev := range run.Trace.Events {
		if ev.Kind == "scan" && ev.Name != "" && !seen[ev.Name] {
			seen[ev.Name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
