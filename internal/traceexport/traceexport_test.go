package traceexport

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"multiclock/internal/metrics"
)

// syntheticRun builds a run export exercising every trace category.
func syntheticRun(label string) metrics.RunExport {
	return metrics.RunExport{
		Label: label,
		Now:   20_000_000,
		Topology: []metrics.NodeTier{
			{Node: 0, Tier: "dram"}, {Node: 1, Tier: "pm"}, {Node: 2, Tier: "pm"},
		},
		Trace: &metrics.TraceExport{
			Capacity: 16,
			Events: []metrics.EventExport{
				{At: 1_000, Kind: "fault", From: -1, To: -1, VA: 0x1000},
				{At: 2_500, Kind: "promote", From: 1, To: 0, Pages: 1},
				{At: 4_000, Kind: "scan", From: -1, To: -1, Name: "kpromoted", Work: 1_500},
				{At: 6_000, Kind: "demote", From: 0, To: 2, Pages: 3},
				{At: 7_000, Kind: "hint-fault", From: -1, To: -1, VA: 0x2000},
				{At: 9_000, Kind: "scan", From: -1, To: -1, Name: "kswapd", Work: 2_000},
			},
		},
		Lifecycle: &metrics.LifecycleExport{
			SampleMod: 1, MaxPages: 8, MaxEventsPerPage: 8,
			Pages: []metrics.PageTimeline{
				{Space: 1, VA: 0x1000, Migrations: 1, Events: []metrics.SpanEvent{
					{At: 1_000, State: "inactive", Reason: "birth", Node: 1},
					{At: 2_500, State: "active", Reason: "promoted", Node: 0},
				}},
			},
		},
		Series: &metrics.SeriesExport{
			WindowNS: 10_000_000,
			Windows: []metrics.WindowExport{{
				Index: 0, Start: 0, End: 10_000_000,
				Nodes: []metrics.NodeSample{
					{Node: 0, Tier: "dram", Free: 100},
					{Node: 1, Tier: "pm", Free: 900},
				},
				ReadsDRAM: 75, ReadsPM: 25,
			}},
		},
		Faults: &metrics.FaultsExport{
			Windows: []metrics.FaultWindowExport{
				{Kind: "pm-slowdown", StartNS: 3_000, EndNS: 5_003_000},
				{Kind: "alloc-storm", StartNS: 8_000_000, EndNS: 10_000_000},
			},
		},
		SLO: &metrics.SLOExport{
			Spec: "p99(lat_ns) < 1µs over 1ms, 99.9%",
			Objectives: []metrics.SLOObjectiveExport{{
				Name: "p99(lat_ns) < 1µs over 1ms, 99.9%", Metric: "lat_ns",
				QuantilePPM: 990_000, ThresholdNS: 1_000, WindowNS: 1_000_000,
				TargetPPM: 999_000, BurnThresholdMilli: 6_000,
				Windows: 20, CompliantWindows: 17, TotalEvents: 2_000, BadEvents: 150,
				CompliancePPM: 850_000, BudgetBurnMilli: 7_500,
				Alerts: []metrics.SLOAlertExport{
					{StartNS: 6_000_000, EndNS: 9_000_000, Windows: 3,
						PeakFastBurnMilli: 50_000, PeakSlowBurnMilli: 8_000},
				},
			}},
		},
	}
}

func TestBuildIsValidJSONWithAllCategories(t *testing.T) {
	out := Build([]metrics.RunExport{syntheticRun("mcsim/multiclock")})
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// Every category must be present on the timeline.
	for _, want := range []string{
		`"process_name"`, `"migrations → dram"`, `"migrations → pm"`,
		`"daemon kpromoted"`, `"daemon kswapd"`, `"kpromoted pass"`,
		`"page faults"`, `"injected faults"`, `"pm-slowdown"`, `"alloc-storm"`,
		`"burn-rate alert"`, `"page 1/0x1000"`, `"inactive"`, `"active"`,
		`"promote"`, `"demote"`, `"hint-fault"`, `"dram_hit_ppm"`,
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("trace missing %s", want)
		}
	}
	// Well-formed events: every non-metadata record carries a timestamp;
	// complete events carry durations.
	for _, ev := range doc.TraceEvents {
		ph := ev["ph"].(string)
		if ph == "M" {
			continue
		}
		if _, ok := ev["ts"]; !ok {
			t.Fatalf("event without ts: %v", ev)
		}
		if ph == "X" {
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event without dur: %v", ev)
			}
		}
	}
}

func TestTimestampRendering(t *testing.T) {
	// 2500 ns = 2.500 µs; 1_000_000 ns = 1000.000 µs; clamped negatives.
	for _, c := range []struct {
		ns   int64
		want string
	}{{0, "0.000"}, {1, "0.001"}, {999, "0.999"}, {2_500, "2.500"},
		{1_000_000, "1000.000"}, {-5, "0.000"}} {
		if got := ts(c.ns); got != c.want {
			t.Fatalf("ts(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestStableTrackIDs(t *testing.T) {
	out := string(Build([]metrics.RunExport{syntheticRun("a")}))
	// The tier tracks take tid 1+tierIndex; daemons 100+sortedIndex; the
	// objective track 300; the lifecycle page 1000. Pinned so saved UI
	// queries survive exporter changes.
	for _, want := range []string{
		`{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"migrations → dram"}}`,
		`{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"migrations → pm"}}`,
		`{"ph":"M","pid":1,"tid":100,"name":"thread_name","args":{"name":"daemon kpromoted"}}`,
		`{"ph":"M","pid":1,"tid":101,"name":"thread_name","args":{"name":"daemon kswapd"}}`,
		`{"ph":"M","pid":1,"tid":200,"name":"thread_name","args":{"name":"page faults"}}`,
		`{"ph":"M","pid":1,"tid":210,"name":"thread_name","args":{"name":"injected faults"}}`,
		`{"ph":"M","pid":1,"tid":300,"name":"thread_name","args":{"name":"slo p99(lat_ns) < 1µs over 1ms, 99.9%"}}`,
		`{"ph":"M","pid":1,"tid":1000,"name":"thread_name","args":{"name":"page 1/0x1000"}}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing pinned track metadata %s", want)
		}
	}
}

func TestRunsSortByLabelForStablePIDs(t *testing.T) {
	a := Build([]metrics.RunExport{syntheticRun("zeta"), syntheticRun("alpha")})
	b := Build([]metrics.RunExport{syntheticRun("alpha"), syntheticRun("zeta")})
	if !bytes.Equal(a, b) {
		t.Fatal("input order leaked into the trace bytes")
	}
	if !strings.Contains(string(a),
		`{"ph":"M","pid":1,"name":"process_name","args":{"name":"alpha"}}`) {
		t.Fatal("label-sorted first run did not take pid 1")
	}
	if !strings.Contains(string(a),
		`{"ph":"M","pid":2,"name":"process_name","args":{"name":"zeta"}}`) {
		t.Fatal("label-sorted second run did not take pid 2")
	}
}

func TestNoTopologyFallsBackToFlatMigrationTrack(t *testing.T) {
	run := syntheticRun("x")
	run.Topology = nil
	out := string(Build([]metrics.RunExport{run}))
	if !strings.Contains(out, `{"ph":"M","pid":1,"tid":90,"name":"thread_name","args":{"name":"migrations"}}`) {
		t.Fatal("flat migration track missing")
	}
	if strings.Contains(out, "migrations → ") {
		t.Fatal("tier tracks present without a topology section")
	}
}

func TestDeterministicBytes(t *testing.T) {
	runs := []metrics.RunExport{syntheticRun("a"), syntheticRun("b")}
	if !bytes.Equal(Build(runs), Build(runs)) {
		t.Fatal("equal inputs produced different trace bytes")
	}
}

func TestScanPassStartClampsToZero(t *testing.T) {
	run := metrics.RunExport{
		Label: "x",
		Trace: &metrics.TraceExport{
			Capacity: 4,
			Events: []metrics.EventExport{
				// Work exceeds the event timestamp: the pass started before
				// t=0 on the recorded timeline; its start clamps to zero.
				{At: 500, Kind: "scan", Name: "kpromoted", Work: 2_000},
			},
		},
	}
	out := string(Build([]metrics.RunExport{run}))
	if !strings.Contains(out, `"ts":0.000,"dur":2.000,"name":"kpromoted pass"`) {
		t.Fatalf("clamped pass not found:\n%s", out)
	}
}

func TestEmptyExport(t *testing.T) {
	out := Build(nil)
	var doc map[string]interface{}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("empty build is not JSON: %v\n%s", err, out)
	}
}
