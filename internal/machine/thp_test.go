package machine

// Transparent-huge-page coverage: compound pages on the buddy allocator,
// single-descriptor mapping of 512 base VPNs, whole-region migration and
// swap, and THP's fragmentation fallback.

import (
	"testing"

	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

func thpMachine(dram, pm int) *Machine {
	cfg := DefaultConfig()
	cfg.Mem.DRAMNodes = []int{dram}
	cfg.Mem.PMNodes = []int{pm}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	return New(cfg, &nullPolicy{})
}

func TestHugeFaultPopulatesWholeRegion(t *testing.T) {
	m := thpMachine(2048, 2048)
	as := m.NewSpace()
	v := as.MmapHuge(1000, "heap") // rounds to 1024
	if v.Pages() != 1024 || v.Start%pagetable.HugePages != 0 {
		t.Fatalf("huge VMA shape: start=%d pages=%d", v.Start, v.Pages())
	}
	pg := m.Access(as, v.Start+7, false)
	if !pg.IsHuge() || pg.Order != mem.MaxOrder || pg.Frames() != 512 {
		t.Fatalf("expected a 2 MiB compound page, got order %d", pg.Order)
	}
	// Every VPN of the region resolves to the same descriptor.
	for i := 0; i < 512; i++ {
		if as.Lookup(v.Start+pagetable.VPN(i)) != pg {
			t.Fatalf("vpn %d maps elsewhere", i)
		}
	}
	if as.Mapped() != 512 {
		t.Fatalf("mapped PTEs = %d", as.Mapped())
	}
	// One fault, 512 frames, one LRU entry.
	if m.Mem.Counters.MinorFaults != 1 {
		t.Fatalf("minor faults = %d, want 1", m.Mem.Counters.MinorFaults)
	}
	if m.Mem.Nodes[0].UsedFrames() != 512 {
		t.Fatalf("frames used = %d", m.Mem.Nodes[0].UsedFrames())
	}
	if m.Vecs[0].TotalEvictable() != 1 {
		t.Fatal("compound page should be one LRU entry")
	}
	// The frame block is huge-aligned.
	if int(pg.Frame)%512 != 0 {
		t.Fatalf("compound frame %d misaligned", pg.Frame)
	}
}

func TestHugeSecondRegionFaultsSeparately(t *testing.T) {
	m := thpMachine(4096, 2048)
	as := m.NewSpace()
	v := as.MmapHuge(1024, "heap")
	a := m.Access(as, v.Start, false)
	b := m.Access(as, v.Start+512, false)
	if a == b {
		t.Fatal("two regions share a descriptor")
	}
	if m.Mem.Counters.MinorFaults != 2 {
		t.Fatal("fault count")
	}
}

func TestHugeMigrationMovesBlock(t *testing.T) {
	m := thpMachine(2048, 2048)
	as := m.NewSpace()
	v := as.MmapHuge(512, "heap")
	pg := m.Access(as, v.Start, false)
	pm := m.Mem.TierNodes(mem.TierPM)[0]
	before := m.Mem.Counters.MigrationBusy
	if !m.MigratePage(pg, pm) {
		t.Fatal("huge migration failed")
	}
	if pg.Node != pm || m.Mem.Nodes[pm].UsedFrames() != 512 {
		t.Fatal("block not moved")
	}
	// Copy cost scales with the region size.
	if got := m.Mem.Counters.MigrationBusy - before; got < 512*m.Mem.Lat.PageCopy[mem.TierDRAM][mem.TierPM] {
		t.Fatalf("huge copy cost %v too small", got)
	}
	// Demotion counter weights frames.
	if m.Mem.Counters.Demotions != 512 {
		t.Fatalf("demotions = %d, want 512 (frame-weighted)", m.Mem.Counters.Demotions)
	}
	// Accesses through any VPN still work and hit PM.
	m.Access(as, v.Start+100, false)
	if m.Mem.Counters.Reads[mem.TierPM] == 0 {
		t.Fatal("post-migration access not served from PM")
	}
}

func TestHugeMigrationFailsWhenFragmented(t *testing.T) {
	m := thpMachine(2048, 1024)
	as := m.NewSpace()
	// Fragment PM: allocate all of it as base pages, free every other one.
	pmNode := m.Mem.TierNodes(mem.TierPM)[0]
	var frames []*mem.Page
	for {
		pg := m.Mem.AllocOn(pmNode, true)
		if pg == nil {
			break
		}
		frames = append(frames, pg)
	}
	for i := 0; i < len(frames); i += 2 {
		m.Mem.Free(frames[i])
	}
	v := as.MmapHuge(512, "heap")
	pg := m.Access(as, v.Start, false)
	if m.MigratePage(pg, pmNode) {
		t.Fatal("huge migration into fully fragmented node succeeded")
	}
	if !pg.OnList() || pg.Node != 0 {
		t.Fatal("failed migration did not restore the compound page")
	}
}

func TestHugeFallbackToBasePagesUnderFragmentation(t *testing.T) {
	m := thpMachine(1024, 1024)
	as := m.NewSpace()
	// Consume DRAM and PM such that no order-9 block exists anywhere:
	// allocate everything as base pages, free alternating frames.
	for _, id := range []mem.NodeID{0, 1} {
		var held []*mem.Page
		for {
			pg := m.Mem.AllocOn(id, true)
			if pg == nil {
				break
			}
			held = append(held, pg)
		}
		for i := 0; i < len(held); i += 2 {
			m.Mem.Free(held[i])
		}
	}
	v := as.MmapHuge(512, "heap")
	pg := m.Access(as, v.Start, false)
	if pg.IsHuge() {
		t.Fatal("huge fault succeeded despite full fragmentation")
	}
	if as.Mapped() != 1 {
		t.Fatalf("fallback mapped %d PTEs, want 1 base page", as.Mapped())
	}
}

func TestHugeUnmapReleasesEverything(t *testing.T) {
	m := thpMachine(2048, 1024)
	as := m.NewSpace()
	v := as.MmapHuge(512, "heap")
	m.Access(as, v.Start+13, false)
	m.Unmap(as, v.Start+400) // any covered vpn unmaps the region
	if as.Mapped() != 0 {
		t.Fatalf("mapped = %d after huge unmap", as.Mapped())
	}
	if m.Mem.Nodes[0].UsedFrames() != 0 {
		t.Fatal("frames leaked")
	}
	if m.Vecs[0].TotalEvictable() != 0 {
		t.Fatal("LRU entry leaked")
	}
	// Buddy coalescing restored the full block.
	if m.Mem.Nodes[0].FreeBlocks()[mem.MaxOrder] != 2048/512 {
		t.Fatal("block not coalesced")
	}
}

func TestHugeSwapOutAndBack(t *testing.T) {
	m := thpMachine(2048, 1024)
	as := m.NewSpace()
	v := as.MmapHuge(512, "heap")
	pg := m.Access(as, v.Start, false)
	m.Vecs[pg.Node].Isolate(pg)
	m.SwapOut(pg)
	if as.Mapped() != 0 {
		t.Fatal("huge swap left mappings")
	}
	if m.Mem.Counters.SwapOuts != 512 {
		t.Fatalf("swap-outs = %d, want 512 (frame-weighted)", m.Mem.Counters.SwapOuts)
	}
	// Re-access takes major-fault costs for the region.
	before := m.Clock.Now()
	pg2 := m.Access(as, v.Start+3, false)
	if pg2 == pg {
		t.Fatal("descriptor reused")
	}
	if m.Mem.Counters.SwapIns != 512 {
		t.Fatalf("swap-ins = %d, want 512", m.Mem.Counters.SwapIns)
	}
	if sim.Duration(m.Clock.Now()-before) < 512*m.Mem.Lat.SwapIn {
		t.Fatal("major fault cost not charged for the region")
	}
}

func TestHugePagesRideTheLRUStateMachine(t *testing.T) {
	m := thpMachine(2048, 1024)
	as := m.NewSpace()
	v := as.MmapHuge(512, "heap")
	pg := m.Access(as, v.Start, false)
	// Supervised accesses climb the same ladder — one descriptor.
	for i := 0; i < 4; i++ {
		m.SupervisedAccess(as, v.Start+pagetable.VPN(i*17), false)
	}
	if !pg.Flags.Has(mem.FlagPromote) {
		t.Fatalf("hot huge page not on promote list (flags %b)", pg.Flags)
	}
}

func TestSplitHuge(t *testing.T) {
	m := thpMachine(2048, 1024)
	as := m.NewSpace()
	v := as.MmapHuge(512, "heap")
	pg := m.Access(as, v.Start, true) // dirty compound page
	m.Vecs[pg.Node].Isolate(pg)
	bases := m.SplitHuge(pg)
	if len(bases) != 512 {
		t.Fatalf("split produced %d pages", len(bases))
	}
	if m.Mem.Counters.HugeSplits != 1 {
		t.Fatal("split not counted")
	}
	// Every VPN now maps its own base descriptor over the original frames.
	for i := 0; i < 512; i++ {
		bp := as.Lookup(v.Start + pagetable.VPN(i))
		if bp == nil || bp.IsHuge() {
			t.Fatalf("vpn %d not base-mapped", i)
		}
		if bp.Frame != bases[0].Frame+mem.FrameID(i) {
			t.Fatalf("vpn %d frame %d misordered", i, bp.Frame)
		}
		if !bp.Flags.Has(mem.FlagDirty) {
			t.Fatal("dirtiness lost in split")
		}
		if !bp.OnList() {
			t.Fatal("base page not on LRU")
		}
	}
	if as.Mapped() != 512 {
		t.Fatal("PTE count changed")
	}
	// Frames stay allocated; freeing one base page returns one frame.
	used := m.Mem.Nodes[0].UsedFrames()
	if used != 512 {
		t.Fatalf("frames used = %d", used)
	}
	m.Unmap(as, v.Start+7)
	if m.Mem.Nodes[0].UsedFrames() != 511 {
		t.Fatal("base free after split broken")
	}
	// Base pages can now migrate individually.
	bp := as.Lookup(v.Start + 100)
	if !m.MigratePage(bp, m.Mem.TierNodes(mem.TierPM)[0]) {
		t.Fatal("split base page cannot migrate")
	}
}
