package machine

import (
	"testing"

	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// nullPolicy is the minimal policy for machine-level tests: static
// placement with base latency.
type nullPolicy struct{ Base }

func (nullPolicy) Name() string { return "null" }

func testMachine(dram, pm int) *Machine {
	cfg := DefaultConfig()
	cfg.Mem.DRAMNodes = []int{dram}
	cfg.Mem.PMNodes = []int{pm}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	return New(cfg, &nullPolicy{})
}

func TestNewMachineWiring(t *testing.T) {
	m := testMachine(100, 400)
	if len(m.Vecs) != 2 {
		t.Fatalf("vecs = %d, want 2", len(m.Vecs))
	}
	if m.Clock.Now() != 0 {
		t.Fatal("clock not at zero")
	}
	if m.Policy.Name() != "null" {
		t.Fatal("policy not attached")
	}
}

func TestBadInterferencePanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DaemonInterference = 2
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(cfg, &nullPolicy{})
}

func TestAccessFaultsInPage(t *testing.T) {
	m := testMachine(100, 400)
	as := m.NewSpace()
	v := as.Mmap(10, false, "heap")

	before := m.Clock.Now()
	pg := m.Access(as, v.Start, false)
	if pg == nil || as.Lookup(v.Start) != pg {
		t.Fatal("fault did not populate the PTE")
	}
	if m.Mem.Counters.MinorFaults != 1 {
		t.Fatal("minor fault not counted")
	}
	if !pg.OnList() {
		t.Fatal("new page not on LRU")
	}
	if m.Mem.Tier(pg) != mem.TierDRAM {
		t.Fatal("page not born in DRAM")
	}
	if !pg.Accessed {
		t.Fatal("hardware bit not set")
	}
	elapsed := sim.Duration(m.Clock.Now() - before)
	want := m.Mem.Lat.MinorFault + m.Mem.Lat.Read[mem.TierDRAM]
	if elapsed != want {
		t.Fatalf("fault+read cost %v, want %v", elapsed, want)
	}
}

func TestAccessChargesTierLatency(t *testing.T) {
	m := testMachine(100, 400)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	m.Access(as, v.Start, false) // fault
	before := m.Clock.Now()
	m.Access(as, v.Start, false)
	if got := sim.Duration(m.Clock.Now() - before); got != m.Mem.Lat.Read[mem.TierDRAM] {
		t.Fatalf("read cost %v, want DRAM read", got)
	}
	before = m.Clock.Now()
	m.Access(as, v.Start, true)
	if got := sim.Duration(m.Clock.Now() - before); got != m.Mem.Lat.Write[mem.TierDRAM] {
		t.Fatalf("write cost %v, want DRAM write", got)
	}
	if m.Mem.Counters.Reads[mem.TierDRAM] != 2 || m.Mem.Counters.Writes[mem.TierDRAM] != 1 {
		t.Fatal("access counters")
	}
}

func TestAccessWriteDirties(t *testing.T) {
	m := testMachine(10, 10)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, true)
	if !pg.Flags.Has(mem.FlagDirty) || !pg.HWDirty {
		t.Fatal("write did not dirty the page")
	}
}

func TestAccessUnmappedPanics(t *testing.T) {
	m := testMachine(10, 10)
	as := m.NewSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("segfault not detected")
		}
	}()
	m.Access(as, 12345, false)
}

func TestFileVMAPagesAreFileBacked(t *testing.T) {
	m := testMachine(10, 10)
	as := m.NewSpace()
	v := as.Mmap(1, true, "file")
	pg := m.Access(as, v.Start, false)
	if !pg.IsFile() {
		t.Fatal("file VMA produced anonymous page")
	}
}

func TestLockedVMAPagesUnevictable(t *testing.T) {
	m := testMachine(10, 10)
	as := m.NewSpace()
	v := as.Mmap(1, false, "locked")
	v.Locked = true
	pg := m.Access(as, v.Start, false)
	if !pg.Flags.Has(mem.FlagUnevictable) {
		t.Fatal("locked page evictable")
	}
}

func TestHintFaultPath(t *testing.T) {
	m := testMachine(100, 100)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	pagetable.Poison(pg)
	before := m.Clock.Now()
	m.Access(as, v.Start, false)
	if pg.Flags.Has(mem.FlagPoisoned) {
		t.Fatal("poison not cleared by fault")
	}
	if m.Mem.Counters.HintFaults != 1 {
		t.Fatal("hint fault not counted")
	}
	got := sim.Duration(m.Clock.Now() - before)
	want := m.Mem.Lat.HintFault + m.Mem.Lat.Read[mem.TierDRAM]
	if got != want {
		t.Fatalf("hint fault cost %v, want %v", got, want)
	}
}

func TestSupervisedAccessAdvancesLRU(t *testing.T) {
	m := testMachine(100, 100)
	as := m.NewSpace()
	v := as.Mmap(1, true, "f")
	pg := m.SupervisedAccess(as, v.Start, false)
	if !pg.Flags.Has(mem.FlagReferenced) {
		t.Fatal("supervised access did not mark the page")
	}
	if pg.Accessed {
		t.Fatal("supervised access left the hardware bit for the scanner")
	}
	m.SupervisedAccess(as, v.Start, false)
	if !pg.Flags.Has(mem.FlagActive) {
		t.Fatal("second supervised access did not activate")
	}
}

func TestEndOpThroughput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem.DRAMNodes = []int{10}
	cfg.Mem.PMNodes = []int{10}
	cfg.OpCost = 1 * sim.Microsecond
	m := New(cfg, &nullPolicy{})
	for i := 0; i < 1000; i++ {
		m.EndOp()
	}
	if m.Ops != 1000 {
		t.Fatal("ops")
	}
	if got := m.Elapsed(); got != 1*sim.Millisecond {
		t.Fatalf("elapsed %v, want 1ms", got)
	}
	want := 1000 / (1 * sim.Millisecond).Seconds()
	if got := m.Throughput(); got != want {
		t.Fatalf("throughput %v, want %v", got, want)
	}
}

func TestThroughputZeroTime(t *testing.T) {
	m := testMachine(10, 10)
	if m.Throughput() != 0 {
		t.Fatal("throughput at t=0 should be 0")
	}
}

func TestMigratePageMovesBetweenVecs(t *testing.T) {
	m := testMachine(100, 100)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	pmNode := m.Mem.TierNodes(mem.TierPM)[0]
	if !m.MigratePage(pg, pmNode) {
		t.Fatal("migration failed")
	}
	if pg.Node != pmNode {
		t.Fatal("page not on PM node")
	}
	if m.Vecs[0].TotalEvictable() != 0 || m.Vecs[pmNode].TotalEvictable() != 1 {
		t.Fatal("vecs not updated")
	}
	if !pg.OnList() {
		t.Fatal("page fell off LRU after migration")
	}
	// The migration tax lands on the next access.
	before := m.Clock.Now()
	m.Access(as, v.Start, false)
	got := sim.Duration(m.Clock.Now() - before)
	if got <= m.Mem.Lat.Read[mem.TierPM] {
		t.Fatalf("migration tax not charged: access cost %v", got)
	}
}

func TestMigratePageUnevictableFails(t *testing.T) {
	m := testMachine(100, 100)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	v.Locked = true
	pg := m.Access(as, v.Start, false)
	if m.MigratePage(pg, 1) {
		t.Fatal("migrated an mlocked page")
	}
}

func TestMigratePageFullDestinationRestores(t *testing.T) {
	m := testMachine(100, 3)
	as := m.NewSpace()
	// Fill PM completely.
	pmNode := m.Mem.TierNodes(mem.TierPM)[0]
	for m.Mem.Nodes[pmNode].FreeFrames() > 0 {
		m.Mem.AllocOn(pmNode, true)
	}
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	if m.MigratePage(pg, pmNode) {
		t.Fatal("migration into full node succeeded")
	}
	if !pg.OnList() || pg.Node != 0 {
		t.Fatal("failed migration did not restore the page")
	}
}

func TestUnmapFreesEverything(t *testing.T) {
	m := testMachine(100, 100)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	m.Access(as, v.Start, false)
	used := m.Mem.Nodes[0].UsedFrames()
	m.Unmap(as, v.Start)
	if m.Mem.Nodes[0].UsedFrames() != used-1 {
		t.Fatal("frame not freed")
	}
	if as.Lookup(v.Start) != nil {
		t.Fatal("PTE not cleared")
	}
	if m.Vecs[0].TotalEvictable() != 0 {
		t.Fatal("LRU not cleaned")
	}
	m.Unmap(as, v.Start) // idempotent
}

func TestSwapOutDestroysMapping(t *testing.T) {
	m := testMachine(100, 100)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	m.Vecs[pg.Node].Isolate(pg)
	m.SwapOut(pg)
	if as.Lookup(v.Start) != nil {
		t.Fatal("swapped page still mapped")
	}
	if m.Mem.Counters.SwapOuts != 1 {
		t.Fatal("swap not counted")
	}
	// Re-access faults a fresh page.
	pg2 := m.Access(as, v.Start, false)
	if pg2 == pg {
		t.Fatal("swap-in reused the descriptor")
	}
}

func TestDirectReclaimOnFullMachine(t *testing.T) {
	m := testMachine(16, 16)
	as := m.NewSpace()
	v := as.Mmap(64, false, "big")
	// Touch twice as many pages as the machine has frames: base policy
	// must swap cold pages to keep going.
	for i := 0; i < 64; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	if m.Mem.Counters.SwapOuts == 0 {
		t.Fatal("no swaps despite oversubscription")
	}
	if m.Mem.Counters.OOMKills != 0 {
		t.Fatal("OOM hit")
	}
}

type recObserver struct {
	accesses, migrations, faults, hints int
}

func (r *recObserver) OnAccess(pg *mem.Page, write bool, now sim.Time) { r.accesses++ }
func (r *recObserver) OnMigrate(pg *mem.Page, from, to mem.NodeID, now sim.Time) {
	r.migrations++
}
func (r *recObserver) OnFault(pg *mem.Page, hint bool, now sim.Time) {
	if hint {
		r.hints++
	} else {
		r.faults++
	}
}

func TestObserverHooks(t *testing.T) {
	m := testMachine(100, 100)
	obs := &recObserver{}
	m.Attach(obs)
	as := m.NewSpace()
	v := as.Mmap(2, false, "x")
	pg := m.Access(as, v.Start, false)
	m.Access(as, v.Start, false)
	pagetable.Poison(pg)
	m.Access(as, v.Start, false)
	m.MigratePage(pg, 1)
	if obs.accesses != 3 || obs.faults != 1 || obs.hints != 1 || obs.migrations != 1 {
		t.Fatalf("observer: %+v", obs)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	m := testMachine(10, 10)
	m.Compute(5 * sim.Microsecond)
	if m.Elapsed() != 5*sim.Microsecond {
		t.Fatal("Compute")
	}
}

func TestSpacesRegistry(t *testing.T) {
	m := testMachine(10, 10)
	a := m.NewSpace()
	b := m.NewSpace()
	if a.ID != 0 || b.ID != 1 {
		t.Fatal("space IDs")
	}
	if m.Space(0) != a || m.Space(1) != b || len(m.Spaces()) != 2 {
		t.Fatal("registry")
	}
}
