package machine

import (
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// Telemetry receives machine-level timing telemetry that the event-shaped
// Observer interface cannot carry: latencies, migration costs, daemon pass
// work, and policy queue depths. All methods run synchronously on the
// simulation thread and must not advance virtual time — telemetry is free
// on the virtual timeline by construction.
type Telemetry interface {
	// AccessLatency reports the device-level cost of one application
	// access that reached the memory system (cache-filtered accesses are
	// not reported).
	AccessLatency(tier mem.Tier, write bool, lat sim.Duration, now sim.Time)
	// Migration reports one successful migration and its daemon-side copy
	// cost.
	Migration(from, to mem.NodeID, pages int, cost sim.Duration, now sim.Time)
	// DaemonPass reports one completed daemon wakeup and the raw
	// (pre-interference) daemon-side work it charged.
	DaemonPass(name string, work sim.Duration, now sim.Time)
	// QueueDepth reports a policy queue length observed during a daemon
	// pass (e.g. the promote-list depth per kpromoted wakeup).
	QueueDepth(name string, depth int, now sim.Time)
}

// obsSlot wraps one attached observer so detach can identify it without
// comparing Observer interface values (which may hold uncomparable types).
type obsSlot struct {
	o Observer
}

// Attach registers an observer; every attached observer receives every
// event, in attach order. The returned detach function removes exactly this
// attachment and is idempotent. Attaching nil is a no-op.
func (m *Machine) Attach(o Observer) (detach func()) {
	if o == nil {
		return func() {}
	}
	slot := &obsSlot{o: o}
	m.observers = append(m.observers, slot)
	m.rebuildObserver()
	return func() {
		for i, s := range m.observers {
			if s == slot {
				m.observers = append(m.observers[:i:i], m.observers[i+1:]...)
				m.rebuildObserver()
				return
			}
		}
	}
}

// Observers returns the currently attached observers in attach order.
func (m *Machine) Observers() []Observer {
	out := make([]Observer, len(m.observers))
	for i, s := range m.observers {
		out[i] = s.o
	}
	return out
}

// rebuildObserver recompiles the fan-out target the hot path dispatches to:
// nil with no observers (the proven no-op configuration), the observer
// itself with one, a fan-out list otherwise.
func (m *Machine) rebuildObserver() {
	switch len(m.observers) {
	case 0:
		m.observer = nil
	case 1:
		m.observer = m.observers[0].o
	default:
		fo := make(multiObserver, len(m.observers))
		for i, s := range m.observers {
			fo[i] = s.o
		}
		m.observer = fo
	}
}

// multiObserver fans events out to several observers in attach order.
type multiObserver []Observer

// OnAccess implements Observer.
func (mo multiObserver) OnAccess(pg *mem.Page, write bool, now sim.Time) {
	for _, o := range mo {
		o.OnAccess(pg, write, now)
	}
}

// OnMigrate implements Observer.
func (mo multiObserver) OnMigrate(pg *mem.Page, from, to mem.NodeID, now sim.Time) {
	for _, o := range mo {
		o.OnMigrate(pg, from, to, now)
	}
}

// OnFault implements Observer.
func (mo multiObserver) OnFault(pg *mem.Page, hint bool, now sim.Time) {
	for _, o := range mo {
		o.OnFault(pg, hint, now)
	}
}

// SetMetrics installs (or, with nil, removes) the telemetry sink and the
// daemon-pass hook that feeds it. With no sink installed the machine runs
// exactly as before the telemetry layer existed.
func (m *Machine) SetMetrics(t Telemetry) {
	m.Metrics = t
	if t != nil {
		m.Clock.Hook = m
	} else {
		m.Clock.Hook = nil
	}
}

// DaemonPass implements sim.PassHook: it brackets one daemon wakeup and
// reports the raw daemon-side work charged during the body (scanning,
// page copies, swap writeback) to the telemetry sink.
func (m *Machine) DaemonPass(d *sim.Daemon, run func()) {
	start := m.daemonWork
	run()
	if m.Metrics != nil {
		m.Metrics.DaemonPass(d.Name, m.daemonWork-start, m.Clock.Now())
	}
}
