package machine

import (
	"testing"

	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// cachedMachine builds a machine with a tiny CPU cache for deterministic
// hit/miss sequences.
func cachedMachine(capacity int) *Machine {
	cfg := DefaultConfig()
	cfg.Mem.DRAMNodes = []int{512}
	cfg.Mem.PMNodes = []int{512}
	cfg.OpCost = 0
	cfg.CPUCachePages = capacity
	return New(cfg, &nullPolicy{})
}

func TestCacheHitCostsCacheLatency(t *testing.T) {
	m := cachedMachine(4)
	as := m.NewSpace()
	v := as.Mmap(8, false, "x")
	m.Access(as, v.Start, false) // fault + miss
	before := m.Clock.Now()
	m.Access(as, v.Start, false) // hit
	if got := sim.Duration(m.Clock.Now() - before); got != m.Config().CacheHit {
		t.Fatalf("cache hit cost %v, want %v", got, m.Config().CacheHit)
	}
	if m.Mem.Counters.CacheFiltered != 1 {
		t.Fatal("filtered counter")
	}
	// Filtered accesses do not count as memory reads.
	if m.Mem.Counters.Reads[mem.TierDRAM] != 1 {
		t.Fatalf("DRAM reads = %d, want 1", m.Mem.Counters.Reads[mem.TierDRAM])
	}
}

func TestCacheLRUEviction(t *testing.T) {
	m := cachedMachine(2)
	as := m.NewSpace()
	v := as.Mmap(3, false, "x")
	a, b, c := v.Start, v.Start+1, v.Start+2
	m.Access(as, a, false) // cache: [a]
	m.Access(as, b, false) // cache: [b a]
	m.Access(as, c, false) // evicts a: [c b]
	before := m.Mem.Counters.Reads[mem.TierDRAM]
	m.Access(as, a, false) // miss again
	if m.Mem.Counters.Reads[mem.TierDRAM] != before+1 {
		t.Fatal("evicted page should miss")
	}
	before = m.Mem.Counters.Reads[mem.TierDRAM]
	m.Access(as, c, false) // still cached
	if m.Mem.Counters.Reads[mem.TierDRAM] != before {
		t.Fatal("resident page should hit")
	}
}

func TestCacheInvalidationOnMigrate(t *testing.T) {
	m := cachedMachine(8)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	m.Access(as, v.Start, false) // cached
	if !m.MigratePage(pg, m.Mem.TierNodes(mem.TierPM)[0]) {
		t.Fatal("migration failed")
	}
	reads := m.Mem.Counters.Reads[mem.TierPM]
	m.Access(as, v.Start, false)
	if m.Mem.Counters.Reads[mem.TierPM] != reads+1 {
		t.Fatal("migrated page served from stale cache")
	}
}

func TestCacheHugePagesCachePerFrame(t *testing.T) {
	m := cachedMachine(4)
	as := m.NewSpace()
	v := as.MmapHuge(512, "huge")
	m.Access(as, v.Start, false) // fault whole region; vpn 0 cached
	reads := m.Mem.Counters.Reads[mem.TierDRAM]
	m.Access(as, v.Start+100, false) // same descriptor, different frame
	if m.Mem.Counters.Reads[mem.TierDRAM] != reads+1 {
		t.Fatal("huge page cached by descriptor, not frame")
	}
	reads = m.Mem.Counters.Reads[mem.TierDRAM]
	m.Access(as, v.Start+100, false) // now frame-cached
	if m.Mem.Counters.Reads[mem.TierDRAM] != reads {
		t.Fatal("frame-level hit missing")
	}
}

func TestAccessNChargesLines(t *testing.T) {
	m := testMachine(64, 64) // cache disabled fixture
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	m.Access(as, v.Start, false)
	before := m.Clock.Now()
	m.AccessN(as, v.Start, false, 8)
	want := 8 * m.Mem.Lat.Read[mem.TierDRAM]
	if got := sim.Duration(m.Clock.Now() - before); got != want {
		t.Fatalf("AccessN(8) cost %v, want %v", got, want)
	}
	if m.Mem.Counters.Reads[mem.TierDRAM] != 1+8 {
		t.Fatal("line-weighted read counting")
	}
	// Non-positive clamps to one line.
	before = m.Clock.Now()
	m.AccessN(as, v.Start, false, 0)
	if got := sim.Duration(m.Clock.Now() - before); got != m.Mem.Lat.Read[mem.TierDRAM] {
		t.Fatalf("AccessN(0) cost %v", got)
	}
}

func TestAbsorbTax(t *testing.T) {
	m := testMachine(64, 64)
	m.chargeDirect(5 * sim.Microsecond)
	before := m.Clock.Now()
	m.AbsorbTax()
	if got := sim.Duration(m.Clock.Now() - before); got != 5*sim.Microsecond {
		t.Fatalf("AbsorbTax advanced %v", got)
	}
	// Idempotent when empty.
	before = m.Clock.Now()
	m.AbsorbTax()
	if m.Clock.Now() != before {
		t.Fatal("empty AbsorbTax advanced time")
	}
}

func TestSwapInChargesMajorFault(t *testing.T) {
	m := testMachine(64, 64)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	m.Vecs[pg.Node].Isolate(pg)
	m.SwapOut(pg)
	before := m.Clock.Now()
	m.Access(as, v.Start, false)
	if m.Mem.Counters.SwapIns != 1 {
		t.Fatal("swap-in not counted")
	}
	if got := sim.Duration(m.Clock.Now() - before); got < m.Mem.Lat.SwapIn {
		t.Fatalf("major fault cost %v < SwapIn %v", got, m.Mem.Lat.SwapIn)
	}
	if as.Swapped() != 0 {
		t.Fatal("swap residency not cleared")
	}
}

func TestPageCacheUnitInvalidate(t *testing.T) {
	c := newPageCache(4)
	pg1, pg2 := &mem.Page{}, &mem.Page{}
	if c.Touch(pg1, 0) {
		t.Fatal("first touch hit")
	}
	c.Touch(pg1, 1)
	c.Touch(pg2, 0)
	if !c.Touch(pg1, 0) {
		t.Fatal("expected hit")
	}
	c.Invalidate(pg1) // removes both sub-frames
	if c.Touch(pg1, 0) || c.Touch(pg1, 1) {
		t.Fatal("invalidated entries hit")
	}
	if !c.Touch(pg2, 0) {
		t.Fatal("unrelated entry lost")
	}
	_ = pagetable.HugePages
}

// Invalidating a base page must only touch that page's own residency: the
// compound sub-frame index is keyed per page, so another page's cached huge
// frames are neither scanned nor disturbed.
func TestPageCacheBasePageInvalidateIsPerPage(t *testing.T) {
	c := newPageCache(16)
	huge, base := &mem.Page{}, &mem.Page{}
	for sub := int32(1); sub <= 8; sub++ {
		c.Touch(huge, sub)
	}
	c.Touch(base, 0)
	c.Invalidate(base)
	if len(c.sub) != 1 || len(c.sub[huge]) != 8 {
		t.Fatalf("base-page invalidate disturbed compound residency: %d pages, %d frames", len(c.sub), len(c.sub[huge]))
	}
	for sub := int32(1); sub <= 8; sub++ {
		if !c.Touch(huge, sub) {
			t.Fatalf("huge sub-frame %d lost after unrelated invalidate", sub)
		}
	}
	if c.Touch(base, 0) {
		t.Fatal("invalidated base page still cached")
	}
}

// The per-page residency index must not leak: eviction and invalidation
// prune empty per-page entries so the map tracks only pages with cached
// compound frames.
func TestPageCacheCompoundResidencyPruned(t *testing.T) {
	c := newPageCache(2)
	a, b := &mem.Page{}, &mem.Page{}
	c.Touch(a, 1)
	c.Touch(a, 2)
	c.Touch(b, 1) // capacity 2: evicts a's sub 1
	c.Touch(b, 2) // evicts a's sub 2 — a now has no residency
	if _, ok := c.sub[a]; ok {
		t.Fatalf("evicted page still indexed: %v", c.sub[a])
	}
	c.Invalidate(b)
	if len(c.sub) != 0 {
		t.Fatalf("residency index not empty after invalidate: %v", c.sub)
	}
	if len(c.free) != 2 {
		t.Fatalf("slab slots leaked: %d free, want 2", len(c.free))
	}
}
