// Package machine assembles the simulated hybrid-memory computer: the
// virtual clock, the physical memory system, per-node LRU vectors, process
// address spaces, and a pluggable tiering policy. Workloads drive it through
// Access/Compute calls; the machine translates, faults, charges latency on
// the virtual timeline, and lets the policy's daemons interleave exactly as
// kernel threads would.
package machine

import (
	"fmt"

	"multiclock/internal/fault"
	"multiclock/internal/lru"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// Config describes a machine.
type Config struct {
	Mem  mem.Config
	Seed uint64

	// DaemonInterference is the fraction of daemon-side work (scanning and
	// page copying) charged to the application timeline, modelling memory
	// bandwidth contention and context switches. The paper observes that
	// over-frequent kpromoted scheduling costs application performance
	// (§III-B, §V-E); this knob is how that cost manifests.
	DaemonInterference float64

	// OpCost is the default CPU time per workload operation outside of
	// memory accesses (request parsing, hashing, ...). Workloads may charge
	// more via Compute.
	OpCost sim.Duration

	// Faults configures deterministic fault injection (chaos testing):
	// transient migration failures, PM media-slowdown windows, daemon
	// overruns and allocation storms. The zero value (all rates zero)
	// builds no injector and leaves every path exactly as without it.
	Faults fault.Config

	// CPUCachePages models the CPU cache hierarchy as an LRU set of
	// recently-touched pages: accesses to them cost CacheHit instead of
	// memory latency. Without it, small always-hot structures (a graph
	// kernel's per-vertex arrays, a store's bucket headers) would be
	// charged DRAM/PM latency on every access that real hardware serves
	// from L2/L3. Zero disables the filter.
	CPUCachePages int
	// CacheHit is the cost of a cache-filtered access.
	CacheHit sim.Duration
}

// DefaultConfig returns a machine with the default memory layout and
// calibrated overheads.
func DefaultConfig() Config {
	return Config{
		Mem:                mem.DefaultConfig(),
		Seed:               1,
		DaemonInterference: 0.4,
		OpCost:             1500 * sim.Nanosecond,
		CPUCachePages:      64, // ≈256 KiB of page-granular reach
		CacheHit:           20 * sim.Nanosecond,
	}
}

// Observer receives simulation telemetry. All methods are called
// synchronously on the simulation thread. Observers attach through
// Machine.Attach; any number may be attached at once and each receives
// every event in attach order.
type Observer interface {
	// OnAccess fires for every application memory access after the page is
	// resident.
	OnAccess(pg *mem.Page, write bool, now sim.Time)
	// OnMigrate fires after a successful migration.
	OnMigrate(pg *mem.Page, from, to mem.NodeID, now sim.Time)
	// OnFault fires for minor faults (hint=false) and hint faults (true).
	OnFault(pg *mem.Page, hint bool, now sim.Time)
}

// Machine is the simulated computer.
type Machine struct {
	Clock *sim.Clock
	Mem   *mem.System
	// Vecs holds one LRU vector per node, indexed by NodeID. All policies
	// share this structure; reference-bit policies drive it, others ignore
	// it (pages still ride the lists so eviction always works).
	Vecs   []*lru.Vec
	Policy Policy
	RNG    *sim.RNG

	// Faults is the machine's fault injector, or nil when injection is
	// disabled. mem.System shares the same injector.
	Faults *fault.Injector

	// Metrics is the optional telemetry sink (install via SetMetrics). Nil
	// leaves every path exactly as without the telemetry layer.
	Metrics Telemetry

	// Lifecycle is the optional per-page span sink (install via
	// SetLifecycle, which also wires the LRU vec hooks). Nil leaves every
	// path exactly as without the instrumentation layer.
	Lifecycle Lifecycle
	// lifecycleDetach unhooks the current lifecycle sink from the vec
	// hook chains when it is replaced or removed.
	lifecycleDetach []func()

	// observers is the attach-ordered registry; observer is the compiled
	// fan-out target the hot path dispatches to (nil when empty).
	observers []*obsSlot
	observer  Observer

	spaces []*pagetable.AddressSpace

	cache *pageCache

	cfg Config

	// pendingTax is latency accrued by daemon work that the next
	// application access will absorb (TLB shootdowns, bandwidth
	// contention).
	pendingTax sim.Duration

	// daemonWork accumulates raw (pre-interference) daemon-side cost; the
	// pass hook reads deltas of it to time individual daemon wakeups.
	daemonWork sim.Duration

	// Ops counts completed workload operations (for throughput).
	Ops int64
}

// New builds a machine running the given policy. The policy's Attach hook
// runs immediately so its daemons start at time zero.
func New(cfg Config, p Policy) *Machine {
	if cfg.DaemonInterference < 0 || cfg.DaemonInterference > 1 {
		panic("machine: DaemonInterference must be in [0,1]")
	}
	m := &Machine{
		Clock:  sim.NewClock(),
		RNG:    sim.NewRNG(cfg.Seed),
		Policy: p,
		cfg:    cfg,
	}
	m.Mem = mem.NewSystem(m.Clock, cfg.Mem)
	if cfg.Faults.Enabled() {
		m.Faults = fault.New(m.Clock, cfg.Faults)
		m.Mem.Faults = m.Faults
	}
	m.Vecs = make([]*lru.Vec, len(m.Mem.Nodes))
	for i := range m.Vecs {
		m.Vecs[i] = lru.NewVec(mem.NodeID(i))
	}
	if cfg.CPUCachePages > 0 {
		m.cache = newPageCache(cfg.CPUCachePages)
	}
	p.Attach(m)
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// NewSpace creates a process address space.
func (m *Machine) NewSpace() *pagetable.AddressSpace {
	as := pagetable.New(int32(len(m.spaces)))
	m.spaces = append(m.spaces, as)
	return as
}

// Space returns the address space with the given ID.
func (m *Machine) Space(id int32) *pagetable.AddressSpace {
	return m.spaces[id]
}

// Spaces returns every address space on the machine.
func (m *Machine) Spaces() []*pagetable.AddressSpace { return m.spaces }

// Compute charges pure CPU time to the application timeline.
func (m *Machine) Compute(d sim.Duration) {
	m.Clock.Advance(d)
}

// EndOp marks one workload operation complete, charging the configured
// per-op CPU cost.
func (m *Machine) EndOp() {
	m.Ops++
	if m.cfg.OpCost > 0 {
		m.Clock.Advance(m.cfg.OpCost)
	}
}

// ChargeTax adds daemon-side cost to be absorbed by the application
// timeline on its next access, scaled by the interference factor.
func (m *Machine) ChargeTax(d sim.Duration) {
	m.daemonWork += d
	m.pendingTax += sim.Duration(float64(d) * m.cfg.DaemonInterference)
}

// chargeDirect adds full-cost latency (e.g. TLB shootdown) to the pending
// application charge.
func (m *Machine) chargeDirect(d sim.Duration) {
	m.pendingTax += d
}

// AbsorbTax pays any accrued daemon tax on the timeline immediately.
// Harnesses call it at phase boundaries so costs from a setup phase are not
// billed to the first access of a measured region.
func (m *Machine) AbsorbTax() {
	if m.pendingTax > 0 {
		m.Clock.Advance(m.pendingTax)
		m.pendingTax = 0
	}
}

// Access performs one application memory access to vpn in space as,
// faulting the page in if needed, applying hint-fault costs, setting the
// hardware accessed/dirty bits, and advancing the virtual clock by the
// policy-determined latency. It returns the page for convenience.
//
// This is the unsupervised (mmap) access path: the OS learns about it only
// through the accessed bit (§III-A.2).
func (m *Machine) Access(as *pagetable.AddressSpace, vpn pagetable.VPN, write bool) *mem.Page {
	return m.AccessN(as, vpn, write, 1)
}

// AccessN is Access for an operation that touches lines of the page: it
// costs lines cache-line transfers (reading a ~1 KiB record misses many
// lines of one page). If the page sits in the modelled CPU cache the whole
// access is served there.
//
// Accounting contract (pinned by accounting_test.go): each iteration of the
// thrash-retry fault loop charges Lat.MinorFault exactly once and fault()
// increments Counters.MinorFaults exactly once, so fault latency and fault
// counters always move in lockstep. Cache-filtered accesses charge the
// CacheHit cost and count CacheFiltered but are deliberately not reported
// to Metrics.AccessLatency — that sink carries device-level memory-system
// cost, and a CPU-cache hit never reaches the memory system.
func (m *Machine) AccessN(as *pagetable.AddressSpace, vpn pagetable.VPN, write bool, lines int) *mem.Page {
	if lines < 1 {
		lines = 1
	}
	pg := as.Lookup(vpn)
	var lat sim.Duration
	for attempt := 0; pg == nil || pg.Node == mem.NoNode; attempt++ {
		// Fault the page in. In a severely oversubscribed machine the
		// pressure handling inside the fault can reclaim the page it
		// just created; retry a bounded number of times.
		if attempt == 3 {
			panic("machine: page reclaimed immediately after fault three times (thrashing)")
		}
		pg = m.fault(as, vpn)
		lat += m.Mem.Lat.MinorFault
	}
	if pg.Flags.Has(mem.FlagPoisoned) {
		pagetable.Unpoison(pg)
		lat += m.Mem.Lat.HintFault
		m.Mem.Counters.HintFaults++
		m.Policy.HintFault(pg, write)
		if m.observer != nil {
			m.observer.OnFault(pg, true, m.Clock.Now())
		}
	}
	pagetable.Touch(pg, write)
	var sub int32
	if pg.IsHuge() {
		sub = int32(vpn % pagetable.HugePages)
	}
	if m.cache != nil && m.cache.Touch(pg, sub) {
		// Served by the CPU cache hierarchy: no memory-system traffic.
		m.Mem.Counters.CacheFiltered += int64(lines)
		lat += sim.Duration(lines) * m.cfg.CacheHit
	} else {
		tier := m.Mem.Tier(pg)
		if write {
			m.Mem.Counters.Writes[tier] += int64(lines)
		} else {
			m.Mem.Counters.Reads[tier] += int64(lines)
		}
		dev := sim.Duration(lines) * m.Policy.Access(pg, write)
		if m.Faults != nil {
			// Injected PM media-slowdown window: accesses inside it pay a
			// multiple of the tier's base latency (Optane tail spikes).
			dev += sim.Duration(lines) * m.Faults.AccessDelay(
				tier == mem.TierPM, m.Mem.Lat.AccessCost(tier, write))
		}
		lat += dev
		if m.Metrics != nil {
			m.Metrics.AccessLatency(tier, write, dev, m.Clock.Now())
		}
	}
	if m.pendingTax > 0 {
		lat += m.pendingTax
		m.pendingTax = 0
	}
	if m.observer != nil {
		m.observer.OnAccess(pg, write, m.Clock.Now())
	}
	m.Clock.Advance(lat)
	return pg
}

// AccessBatch performs the accesses in order, each with the full per-access
// semantics of AccessN: faults, hint costs, cache filtering, observer
// callbacks, and an individual clock advance per element. Batching amortizes
// driver-loop overhead; it never coalesces charges, so a batch produces
// byte-identical results to the equivalent AccessN loop. Returns the page of
// the last access (nil for an empty batch).
func (m *Machine) AccessBatch(as *pagetable.AddressSpace, vpns []pagetable.VPN, write bool, lines int) *mem.Page {
	var pg *mem.Page
	for _, vpn := range vpns {
		pg = m.AccessN(as, vpn, write, lines)
	}
	return pg
}

// AccessRange touches n consecutive pages starting at base, with AccessBatch
// semantics (one full-cost access per page, in ascending order). It is the
// natural driver for sequential record touches and initialization sweeps.
func (m *Machine) AccessRange(as *pagetable.AddressSpace, base pagetable.VPN, n int, write bool, lines int) *mem.Page {
	var pg *mem.Page
	for i := 0; i < n; i++ {
		pg = m.AccessN(as, base+pagetable.VPN(i), write, lines)
	}
	return pg
}

// SupervisedAccess performs an access mediated by the OS (read()/write()
// style on the page cache): in addition to everything Access does, the
// kernel calls mark_page_accessed immediately (§III-A.1), so the LRU state
// advances without waiting for a scanner.
func (m *Machine) SupervisedAccess(as *pagetable.AddressSpace, vpn pagetable.VPN, write bool) *mem.Page {
	pg := m.Access(as, vpn, write)
	pg.TestAndClearAccessed() // the OS consumed this access itself
	m.Vecs[pg.Node].MarkAccessed(pg)
	return pg
}

// fault populates vpn with a fresh page following the policy's allocation
// order, reclaiming if the whole machine is full.
func (m *Machine) fault(as *pagetable.AddressSpace, vpn pagetable.VPN) *mem.Page {
	vma := as.FindVMA(vpn)
	if vma == nil {
		panic(fmt.Sprintf("machine: segfault — access to unmapped vpn %#x in space %d", vpn, as.ID))
	}
	if vma.Huge {
		return m.faultHuge(as, vpn, vma)
	}
	order := m.Policy.AllocOrder()
	pg := m.Mem.Alloc(order)
	if pg == nil {
		// Machine full: direct reclaim, then retry. OOM-kill is a panic
		// because experiments must be sized to avoid it.
		if m.Policy.DirectReclaim(1) == 0 {
			m.Mem.Counters.OOMKills++
			panic("machine: out of memory and nothing reclaimable (OOM)")
		}
		pg = m.Mem.Alloc(order)
		if pg == nil {
			m.Mem.Counters.OOMKills++
			panic("machine: out of memory after reclaim (OOM)")
		}
	}
	if vma.File {
		pg.SetFlags(mem.FlagFile)
	}
	if vma.Locked {
		pg.SetFlags(mem.FlagUnevictable)
	}
	if as.TakeSwapped(vpn) {
		// Major fault: the contents must be read back from backing
		// store before the access completes.
		m.Mem.Counters.SwapIns++
		m.chargeDirect(m.Mem.Lat.SwapIn)
	}
	m.Mem.Counters.MinorFaults++
	as.Install(vpn, pg)
	// The faulting access is about to complete; the MMU sets the accessed
	// bit as part of resolving it, which also shields the newborn page
	// from the reclaim triggered below.
	pg.Accessed = true
	m.Vecs[pg.Node].Add(pg)
	m.Policy.PageBirth(pg)
	if m.observer != nil {
		m.observer.OnFault(pg, false, m.Clock.Now())
	}
	// Birth can push a node below its low watermark; let the policy react
	// (kswapd wakeup).
	if m.Mem.Nodes[pg.Node].UnderLow() {
		m.Policy.Pressure(pg.Node)
	}
	return pg
}

// faultHuge populates an aligned transparent huge page covering vpn. When
// no contiguous block is available (fragmentation or pressure) it falls
// back to base pages for this fault, as THP does.
func (m *Machine) faultHuge(as *pagetable.AddressSpace, vpn pagetable.VPN, vma *pagetable.VMA) *mem.Page {
	base := vpn - vpn%pagetable.HugePages
	for _, t := range m.Policy.AllocOrder() {
		for _, id := range m.Mem.TierNodes(t) {
			pg := m.Mem.AllocBlockOn(id, mem.MaxOrder, false)
			if pg == nil {
				continue
			}
			if vma.Locked {
				pg.SetFlags(mem.FlagUnevictable)
			}
			// Major-fault cost for any part of the region on swap.
			for i := 0; i < pagetable.HugePages; i++ {
				if as.TakeSwapped(base + pagetable.VPN(i)) {
					m.Mem.Counters.SwapIns++
					m.chargeDirect(m.Mem.Lat.SwapIn)
				}
			}
			m.Mem.Counters.MinorFaults++
			as.InstallRange(base, pg, pagetable.HugePages)
			pg.Accessed = true
			m.Vecs[pg.Node].Add(pg)
			m.Policy.PageBirth(pg)
			if m.observer != nil {
				m.observer.OnFault(pg, false, m.Clock.Now())
			}
			if m.Mem.Nodes[pg.Node].UnderLow() {
				m.Policy.Pressure(pg.Node)
			}
			return pg
		}
	}
	// No contiguous block anywhere: fall back to one base page.
	hugeSave := vma.Huge
	vma.Huge = false
	pg := m.fault(as, vpn)
	vma.Huge = hugeSave
	return pg
}

// Unmap releases the page at vpn: off the LRU, out of the page table, frame
// freed. For a compound page the whole aligned region is released. No-op if
// the PTE is empty.
func (m *Machine) Unmap(as *pagetable.AddressSpace, vpn pagetable.VPN) {
	if probe := as.Lookup(vpn); probe != nil && probe.IsHuge() {
		base := pagetable.VPNOf(probe.VA)
		pg := as.UnmapRange(base, probe.Frames())
		if pg == nil {
			return
		}
		if pg.OnList() {
			m.Vecs[pg.Node].Delete(pg)
		}
		pg.ClearFlags(mem.FlagIsolated)
		if m.cache != nil {
			m.cache.Invalidate(pg)
		}
		if m.Lifecycle != nil {
			m.Lifecycle.PageFreed(pg, m.Clock.Now())
		}
		m.Policy.PageFreed(pg)
		m.Mem.Free(pg)
		return
	}
	pg := as.Unmap(vpn)
	if pg == nil {
		return
	}
	if pg.OnList() {
		m.Vecs[pg.Node].Delete(pg)
	}
	pg.ClearFlags(mem.FlagIsolated)
	if m.cache != nil {
		m.cache.Invalidate(pg)
	}
	if m.Lifecycle != nil {
		m.Lifecycle.PageFreed(pg, m.Clock.Now())
	}
	m.Policy.PageFreed(pg)
	m.Mem.Free(pg)
}

// MigratePage isolates pg from its LRU, migrates it to dst, and returns it
// to dst's LRU (flags preserved). Daemon-side cost is charged as tax; the
// full TLB-shootdown tax lands on the application. Returns false and
// restores the page when migration is impossible.
func (m *Machine) MigratePage(pg *mem.Page, dst mem.NodeID) bool {
	if pg.Flags.Has(mem.FlagUnevictable) || !pg.OnList() {
		m.Mem.Counters.MigrateFails++
		m.lifecycleMigration(pg, pg.Node, dst, false)
		return false
	}
	src := pg.Node
	m.Vecs[src].Isolate(pg)
	res := m.Mem.Migrate(pg, dst)
	if !res.OK {
		m.lifecycleMigration(pg, src, dst, false)
		m.Vecs[src].Putback(pg)
		return false
	}
	m.Vecs[dst].Putback(pg)
	m.finishMigration(pg, src, dst, res)
	return true
}

// MigrateIsolated migrates a page the caller has already isolated (e.g. a
// demote candidate). On success the page is putback on dst; on failure the
// caller keeps ownership of the still-isolated page and must put it back or
// free it. Unevictable pages fail.
func (m *Machine) MigrateIsolated(pg *mem.Page, dst mem.NodeID) bool {
	if pg.Flags.Has(mem.FlagUnevictable) {
		m.Mem.Counters.MigrateFails++
		m.lifecycleMigration(pg, pg.Node, dst, false)
		return false
	}
	src := pg.Node
	res := m.Mem.Migrate(pg, dst)
	if !res.OK {
		m.lifecycleMigration(pg, src, dst, false)
		return false
	}
	m.Vecs[dst].Putback(pg)
	m.finishMigration(pg, src, dst, res)
	return true
}

// finishMigration applies the shared post-migration accounting.
func (m *Machine) finishMigration(pg *mem.Page, src, dst mem.NodeID, res mem.MigrationResult) {
	m.ChargeTax(res.Cost)
	m.chargeDirect(res.Tax)
	if m.cache != nil {
		// Moving the frame invalidates cached copies.
		m.cache.Invalidate(pg)
	}
	if m.Metrics != nil {
		m.Metrics.Migration(src, dst, pg.Frames(), res.Cost, m.Clock.Now())
	}
	m.lifecycleMigration(pg, src, dst, true)
	if m.observer != nil {
		m.observer.OnMigrate(pg, src, dst, m.Clock.Now())
	}
}

// SplitHuge breaks an isolated compound page into base pages
// (split_huge_page): the 512 PTEs are remapped to individual descriptors
// which join the LRU in the compound page's state, after which they age,
// migrate and swap independently. Returns the base pages.
func (m *Machine) SplitHuge(pg *mem.Page) []*mem.Page {
	if !pg.IsHuge() {
		panic("machine: SplitHuge of a base page")
	}
	if pg.Space < 0 {
		panic("machine: SplitHuge of an unmapped page")
	}
	as := m.spaces[pg.Space]
	base := pagetable.VPNOf(pg.VA)
	if m.cache != nil {
		m.cache.Invalidate(pg)
	}
	bases := m.Mem.Split(pg)
	for i, bp := range bases {
		as.Remap(base+pagetable.VPN(i), bp)
		bp.ClearFlags(mem.FlagLRU)
		m.Vecs[bp.Node].Add(bp)
	}
	// Remapping flushes the region's TLB entries once; the page-table
	// rewrite itself is daemon-side work.
	m.chargeDirect(m.Mem.Lat.MigrationTax)
	m.ChargeTax(sim.Duration(len(bases)) * m.Mem.Lat.DaemonScanPage)
	return bases
}

// SwapOut writes an isolated page to backing store and frees its frame: the
// last-resort path when the lowest tier is under pressure (§III-C). The
// page's mapping is destroyed; a future access faults a fresh page.
func (m *Machine) SwapOut(pg *mem.Page) {
	if !pg.Flags.Has(mem.FlagIsolated) {
		panic("machine: SwapOut of non-isolated page")
	}
	if pg.Space >= 0 {
		space := m.spaces[pg.Space]
		base := pagetable.VPNOf(pg.VA)
		if pg.IsHuge() {
			space.UnmapRange(base, pg.Frames())
			for i := 0; i < pg.Frames(); i++ {
				space.MarkSwapped(base + pagetable.VPN(i))
			}
		} else {
			space.Unmap(base)
			space.MarkSwapped(base)
		}
	}
	pg.ClearFlags(mem.FlagIsolated)
	m.Mem.Counters.SwapOuts += int64(pg.Frames())
	m.ChargeTax(m.Mem.Lat.SwapOut * sim.Duration(pg.Frames()))
	if m.cache != nil {
		m.cache.Invalidate(pg)
	}
	if m.Lifecycle != nil {
		m.Lifecycle.SwappedOut(pg, m.Clock.Now())
	}
	m.Policy.PageFreed(pg)
	m.Mem.Free(pg)
}

// FinishDaemonPass applies injected daemon-overrun faults to the daemon
// whose body is currently running: when the injector decides this pass
// exceeded its budget, the next wakeup is postponed by the overrun and the
// extra time is charged as daemon interference. Policies call it at the
// end of each periodic daemon body; with injection disabled it is free.
func (m *Machine) FinishDaemonPass(d *sim.Daemon) {
	if m.Faults == nil {
		return
	}
	if extra := m.Faults.Overrun(d.Interval); extra > 0 {
		d.Postpone(extra)
		m.ChargeTax(extra)
	}
}

// CheckInvariants verifies the machine's global consistency at a quiescent
// point (between events, when no page is legitimately isolated in a daemon
// pass): the memory system's conservation laws hold, every LRU-resident
// page's flags agree with its list and node, no isolated or freed page
// rides a list, and frames in use reconcile with both LRU population and
// installed PTEs. Chaos and fuzz tests run it after injected faults.
func (m *Machine) CheckInvariants() error {
	if err := m.Mem.CheckInvariants(); err != nil {
		return err
	}
	used := 0
	for _, n := range m.Mem.Nodes {
		used += n.UsedFrames()
	}
	onLists := 0
	for _, vec := range m.Vecs {
		frames, err := vec.CheckConsistency()
		if err != nil {
			return fmt.Errorf("machine: node %d: %w", vec.Node, err)
		}
		onLists += frames
	}
	// Shadow copies (non-exclusive tiering) hold frames that are neither
	// LRU-resident nor mapped: used frames reconcile as LRU population
	// plus shadows, and PTEs reconcile against the LRU population alone.
	shadow := m.Mem.ShadowFrames()
	if onLists+shadow != used {
		return fmt.Errorf("machine: LRU population %d + %d shadow frames != %d frames used (leaked isolated page?)", onLists, shadow, used)
	}
	mapped := 0
	for _, as := range m.spaces {
		mapped += as.Mapped()
	}
	if mapped != onLists {
		return fmt.Errorf("machine: PTEs mapped %d != %d LRU-resident frames (leak or double-map)", mapped, onLists)
	}
	return nil
}

// Elapsed returns total virtual time.
func (m *Machine) Elapsed() sim.Duration { return sim.Duration(m.Clock.Now()) }

// Throughput returns completed operations per virtual second.
func (m *Machine) Throughput() float64 {
	secs := m.Elapsed().Seconds()
	if secs == 0 {
		return 0
	}
	return float64(m.Ops) / secs
}
