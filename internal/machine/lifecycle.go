package machine

import (
	"multiclock/internal/lru"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// Lifecycle observes per-page events that the LRU state machine alone
// cannot see: migration attempts and their outcomes, policy-level retry
// bookkeeping (promote/demote requeues, drops, swap fallbacks), and the
// page's end of life. Together with lru.Hook (which it embeds) a Lifecycle
// implementation sees every Fig. 4 transition a page makes.
//
// All methods run synchronously on the simulation thread and must be
// purely observational — no page mutation, no virtual-time advance.
type Lifecycle interface {
	lru.Hook

	// MigrationAttempt fires once per attempted migration, successful or
	// not. src is the node the page was on when the attempt started.
	MigrationAttempt(pg *mem.Page, src, dst mem.NodeID, ok bool, now sim.Time)

	// PromoteRequeued fires when a failed promotion is parked for a
	// backoff retry (attempt counts prior failures, starting at 1).
	PromoteRequeued(pg *mem.Page, attempt int, now sim.Time)
	// PromoteDropped fires when a promotion candidate is abandoned — out
	// of retries, retries disabled, or the policy has no retry path.
	PromoteDropped(pg *mem.Page, now sim.Time)
	// DemoteRequeued fires when a failed demotion is parked for retry.
	DemoteRequeued(pg *mem.Page, attempt int, now sim.Time)
	// SwapFallback fires when a demotion gives up on migration and falls
	// back to swapping the page out.
	SwapFallback(pg *mem.Page, now sim.Time)

	// SwappedOut fires when the page is written to backing store and its
	// frame freed.
	SwappedOut(pg *mem.Page, now sim.Time)
	// PageFreed fires when the page is unmapped and its frame freed.
	PageFreed(pg *mem.Page, now sim.Time)
}

// SetLifecycle installs (or, with nil, removes) the lifecycle observer on
// the machine and every LRU vec. Like SetMetrics, a nil sink leaves every
// path exactly as without the instrumentation layer. The vec hooks are
// shared with policy-internal observers (e.g. the S3-FIFO selector), so the
// lifecycle sink registers alongside them rather than replacing them.
func (m *Machine) SetLifecycle(l Lifecycle) {
	for _, d := range m.lifecycleDetach {
		d()
	}
	m.lifecycleDetach = nil
	m.Lifecycle = l
	if l == nil {
		return
	}
	for _, v := range m.Vecs {
		m.lifecycleDetach = append(m.lifecycleDetach, v.AddHook(l))
	}
}

// lifecycleMigration reports a migration attempt to the lifecycle sink.
func (m *Machine) lifecycleMigration(pg *mem.Page, src, dst mem.NodeID, ok bool) {
	if m.Lifecycle != nil {
		m.Lifecycle.MigrationAttempt(pg, src, dst, ok, m.Clock.Now())
	}
}
