package machine

// Machine-level failure-path coverage: MigratePage restoring pages on
// natural and injected failures, OOM-kill accounting, and the injector
// lifecycle.

import (
	"strings"
	"testing"

	"multiclock/internal/fault"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
)

func testFaultMachine(dram, pm int, fcfg fault.Config) *Machine {
	cfg := DefaultConfig()
	cfg.Mem.DRAMNodes = []int{dram}
	cfg.Mem.PMNodes = []int{pm}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	cfg.Faults = fcfg
	return New(cfg, &nullPolicy{})
}

// TestMigratePageDestinationFullRestoresPage: a migration whose
// destination node has no free frame must fail and return the page to its
// source LRU list — never leak it isolated.
func TestMigratePageDestinationFullRestoresPage(t *testing.T) {
	m := testMachine(16, 16)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	if pg.Node != 0 {
		t.Fatalf("setup: page born on node %d", pg.Node)
	}

	// Exhaust the destination node down to zero free frames.
	var hold []*mem.Page
	for {
		p := m.Mem.AllocOn(1, true)
		if p == nil {
			break
		}
		hold = append(hold, p)
	}
	failsBefore := m.Mem.Counters.MigrateFails
	if m.MigratePage(pg, 1) {
		t.Fatal("migration into a full node succeeded")
	}
	if m.Mem.Counters.MigrateFails != failsBefore+1 {
		t.Fatalf("MigrateFails = %d, want %d", m.Mem.Counters.MigrateFails, failsBefore+1)
	}
	if pg.Node != 0 || !pg.OnList() || pg.Flags.Has(mem.FlagIsolated) {
		t.Fatalf("page not restored to its source list: node=%d onList=%v flags=%v",
			pg.Node, pg.OnList(), pg.Flags)
	}
	// KindOf panics if the flags disagree with list membership.
	_ = m.Vecs[0].KindOf(pg)

	for _, p := range hold {
		m.Mem.Free(p)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMigratePageInjectedPinnedRestoresPage is the injected-fault twin:
// rate-1.0 pinned-page injection fails the migration with the destination
// wide open, and the page must land back on its source list.
func TestMigratePageInjectedPinnedRestoresPage(t *testing.T) {
	fcfg := fault.Config{Seed: 9}
	fcfg.Rates[fault.MigratePinned] = 1.0
	m := testFaultMachine(16, 16, fcfg)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)

	if m.MigratePage(pg, 1) {
		t.Fatal("migration succeeded under rate-1.0 pinned injection")
	}
	if pg.Node != 0 || !pg.OnList() || pg.Flags.Has(mem.FlagIsolated) {
		t.Fatalf("page not restored: node=%d onList=%v flags=%v", pg.Node, pg.OnList(), pg.Flags)
	}
	if m.Faults.Counters.Injected[fault.MigratePinned] != 1 {
		t.Fatalf("injector counted %d", m.Faults.Counters.Injected[fault.MigratePinned])
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInjectorLifecycle: a zero config builds no injector; an enabled one
// builds an injector shared with the memory system.
func TestInjectorLifecycle(t *testing.T) {
	if m := testMachine(8, 8); m.Faults != nil || m.Mem.Faults != nil {
		t.Fatal("fault-free machine built an injector")
	}
	fcfg := fault.Config{Seed: 1}
	fcfg.Rates[fault.PMSlowdown] = 0.5
	m := testFaultMachine(8, 8, fcfg)
	if m.Faults == nil || m.Mem.Faults != m.Faults {
		t.Fatal("enabled config did not share one injector with the memory system")
	}
}

// TestOOMKillCounterAndConsistency: when nothing is reclaimable the
// machine OOM-panics; the kill is counted and the machine state at the
// point of the kill is still internally consistent (the failed fault
// installed nothing).
func TestOOMKillCounterAndConsistency(t *testing.T) {
	m := testMachine(16, 16)
	as := m.NewSpace()
	v := as.Mmap(64, false, "big")
	v.Locked = true // unevictable: direct reclaim can free nothing

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("machine never OOMed")
		}
		if !strings.Contains(r.(string), "OOM") {
			t.Fatalf("unexpected panic: %v", r)
		}
		if m.Mem.Counters.OOMKills != 1 {
			t.Fatalf("OOMKills = %d, want 1", m.Mem.Counters.OOMKills)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("machine inconsistent after OOM kill: %v", err)
		}
	}()
	for i := 0; i < 64; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
}
