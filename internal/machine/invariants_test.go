package machine

import (
	"strings"
	"testing"

	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
)

// These tests pin the CheckInvariants ↔ lru.CheckConsistency wiring: a
// healthy machine passes, and each class of hand-made corruption is caught
// with an attributable error. Chaos and fuzz suites rely on this detector.

func populated(t *testing.T) (*Machine, []*mem.Page) {
	t.Helper()
	m := testMachine(64, 64)
	as := m.NewSpace()
	v := as.Mmap(8, false, "x")
	pages := make([]*mem.Page, 8)
	for i := 0; i < 8; i++ {
		pages[i] = m.SupervisedAccess(as, v.Start+pagetable.VPN(i), false)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("healthy machine fails invariants: %v", err)
	}
	return m, pages
}

func TestInvariantsCatchFlagListMismatch(t *testing.T) {
	m, pages := populated(t)
	// Flip a resident page's flags without moving it between lists: the
	// flags now select a different list than the one it sits on.
	pages[0].SetFlags(mem.FlagActive)
	err := m.CheckInvariants()
	if err == nil {
		t.Fatal("flag/list mismatch not caught")
	}
	if !strings.Contains(err.Error(), "node 0") {
		t.Fatalf("error does not attribute the node: %v", err)
	}
}

func TestInvariantsCatchLeakedIsolatedPage(t *testing.T) {
	m, pages := populated(t)
	// Isolate a page and "forget" to put it back — the daemon bug class
	// graceful degradation must never create.
	m.Vecs[pages[1].Node].Isolate(pages[1])
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("leaked isolated page not caught")
	}
	m.Vecs[pages[1].Node].Putback(pages[1])
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("putback did not restore consistency: %v", err)
	}
}

func TestInvariantsCatchLostLRUFlag(t *testing.T) {
	m, pages := populated(t)
	pages[2].ClearFlags(mem.FlagLRU)
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("list-resident page without FlagLRU not caught")
	}
}
