package machine

import (
	"fmt"

	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
	"multiclock/internal/snapcodec"
)

// StateSnapshotter is implemented by policies (and nested components such as
// admission gates) that support deterministic checkpoint/restore. Snapshot
// encodes the component's full mutable state at a quiescent point; Restore
// decodes it into a freshly constructed component of identical configuration,
// resolving page references through the registry. Policies that cannot be
// checkpointed simply do not implement the interface; the snapshot layer
// reports them as unsupported instead of silently dropping state.
type StateSnapshotter interface {
	SnapshotState(enc *snapcodec.Encoder) error
	RestoreState(dec *snapcodec.Decoder, pages *PageRegistry) error
}

// PageRegistry resolves serialized page references (Page.Seq) back to
// descriptors during restore. Live pages — those on an LRU list at the
// snapshot point — are registered as the LRU section decodes. Policy
// structures may also hold stale references to pages that have since died
// (S3-FIFO queues, Nomad's shadowed list are lazily pruned); those restore to
// "zombie" descriptors: unique per-Seq placeholders carrying the dead-page
// sentinels, so staleness checks (pointer identity, HasShadow, map misses)
// behave exactly as they would on the original dead descriptor.
type PageRegistry struct {
	live    map[uint64]*mem.Page
	zombies map[uint64]*mem.Page
}

// NewPageRegistry returns an empty registry.
func NewPageRegistry() *PageRegistry {
	return &PageRegistry{live: make(map[uint64]*mem.Page)}
}

// AddLive registers a restored resident page under its Seq.
func (r *PageRegistry) AddLive(pg *mem.Page) error {
	if _, dup := r.live[pg.Seq]; dup {
		return fmt.Errorf("machine: two live pages share seq %d", pg.Seq)
	}
	r.live[pg.Seq] = pg
	return nil
}

// Live returns the live page registered under seq.
func (r *PageRegistry) Live(seq uint64) (*mem.Page, bool) {
	pg, ok := r.live[seq]
	return pg, ok
}

// Resolve returns the live page for seq, or (for a reference to a page that
// died before the snapshot) a zombie descriptor — created once per Seq, so
// aliased references stay aliased.
func (r *PageRegistry) Resolve(seq uint64) *mem.Page {
	if pg, ok := r.live[seq]; ok {
		return pg
	}
	if pg, ok := r.zombies[seq]; ok {
		return pg
	}
	pg := &mem.Page{
		Seq:         seq,
		Node:        mem.NoNode,
		Frame:       mem.NoFrame,
		Space:       -1,
		ShadowNode:  mem.NoNode,
		ShadowFrame: mem.NoFrame,
	}
	if r.zombies == nil {
		r.zombies = make(map[uint64]*mem.Page)
	}
	r.zombies[seq] = pg
	return pg
}

// SnapshotLRUState encodes every node's LRU vector. At a quiescent point the
// lists enumerate every resident page (machine invariants pin
// used = on-lists + shadow frames), so this section carries all live page
// descriptors.
func (m *Machine) SnapshotLRUState(enc *snapcodec.Encoder) {
	enc.Int(len(m.Vecs))
	for _, v := range m.Vecs {
		v.SnapshotState(enc)
	}
}

// RestoreLRUState rebuilds the LRU vectors on a pristine machine: each
// decoded page gets a fresh descriptor, is registered in the page registry,
// and has its PTEs re-installed into its (pre-existing) address space.
func (m *Machine) RestoreLRUState(dec *snapcodec.Decoder, reg *PageRegistry) error {
	if n := dec.Int(); n != len(m.Vecs) {
		if dec.Err() != nil {
			return dec.Err()
		}
		return fmt.Errorf("machine: snapshot has %d LRU vectors, machine has %d", n, len(m.Vecs))
	}
	var relinkErr error
	newPage := func(d *snapcodec.Decoder) *mem.Page {
		pg := m.Mem.RestorePage(d)
		if relinkErr == nil && d.Err() == nil {
			relinkErr = m.relinkRestored(pg, reg)
		}
		return pg
	}
	for _, v := range m.Vecs {
		if err := v.RestoreState(dec, newPage); err != nil {
			return err
		}
		if relinkErr != nil {
			return relinkErr
		}
	}
	return dec.Err()
}

// relinkRestored validates a decoded resident page and re-establishes its
// external references: the seq registry and its page-table entries. Bounds
// are checked explicitly so a structurally invalid snapshot fails with an
// error instead of a panic deeper in.
func (m *Machine) relinkRestored(pg *mem.Page, reg *PageRegistry) error {
	if int(pg.Order) > mem.MaxOrder {
		return fmt.Errorf("machine: restored page seq %d has order %d", pg.Seq, pg.Order)
	}
	if pg.Node < 0 || int(pg.Node) >= len(m.Mem.Nodes) {
		return fmt.Errorf("machine: restored page seq %d on unknown node %d", pg.Seq, pg.Node)
	}
	if n := m.Mem.Nodes[pg.Node]; pg.Frame < 0 || int(pg.Frame)+pg.Frames() > n.Frames {
		return fmt.Errorf("machine: restored page seq %d spans frames %d+%d beyond node %d", pg.Seq, pg.Frame, pg.Frames(), pg.Node)
	}
	if err := reg.AddLive(pg); err != nil {
		return err
	}
	// Every LRU-resident page is mapped at a quiescent point (invariant:
	// mapped PTEs == LRU population).
	if pg.Space < 0 || int(pg.Space) >= len(m.spaces) {
		return fmt.Errorf("machine: restored page seq %d in unknown space %d", pg.Seq, pg.Space)
	}
	as := m.spaces[pg.Space]
	base := pagetable.VPNOf(pg.VA)
	if base+pagetable.VPN(pg.Frames())-1 > pagetable.MaxVPN {
		return fmt.Errorf("machine: restored page seq %d maps past the address space", pg.Seq)
	}
	for i := 0; i < pg.Frames(); i++ {
		if as.Lookup(base+pagetable.VPN(i)) != nil {
			return fmt.Errorf("machine: restored PTE %#x already populated", base+pagetable.VPN(i))
		}
	}
	if pg.IsHuge() {
		as.InstallRange(base, pg, pg.Frames())
	} else {
		as.Install(base, pg)
	}
	return nil
}

// SnapshotMachineState encodes the machine scalars, the CPU-cache model and
// per-space swap/geometry state. The LRU section must be restored first: the
// cache references pages by Seq and the per-space mapped counts verify
// against the re-installed PTEs.
func (m *Machine) SnapshotMachineState(enc *snapcodec.Encoder) {
	enc.I64(m.Ops)
	st := m.RNG.State()
	for _, w := range st {
		enc.U64(w)
	}
	enc.I64(int64(m.pendingTax))
	enc.I64(int64(m.daemonWork))
	if m.cache == nil {
		enc.Bool(false)
	} else {
		enc.Bool(true)
		m.cache.snapshot(enc)
	}
	enc.Int(len(m.spaces))
	for _, as := range m.spaces {
		enc.U64(uint64(as.NextVPN()))
		enc.Int(len(as.VMAs()))
		enc.Int(as.Mapped())
		sw := as.SwappedVPNs()
		enc.Int(len(sw))
		for _, v := range sw {
			enc.U64(uint64(v))
		}
	}
}

// RestoreMachineState decodes the machine section. The address spaces and
// their VMAs must already exist (the restore target is constructed by the
// same workload-setup path as the original run); geometry fields are
// verified, not replayed.
func (m *Machine) RestoreMachineState(dec *snapcodec.Decoder, reg *PageRegistry) error {
	m.Ops = dec.I64()
	var st [4]uint64
	for i := range st {
		st[i] = dec.U64()
	}
	if dec.Err() != nil {
		return dec.Err()
	}
	m.RNG.SetState(st)
	m.pendingTax = sim.Duration(dec.I64())
	m.daemonWork = sim.Duration(dec.I64())
	hasCache := dec.Bool()
	if dec.Err() != nil {
		return dec.Err()
	}
	if hasCache != (m.cache != nil) {
		return fmt.Errorf("machine: snapshot CPU cache presence %v, machine %v", hasCache, m.cache != nil)
	}
	if hasCache {
		if err := m.cache.restore(dec, reg); err != nil {
			return err
		}
	}
	nspaces := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if nspaces != len(m.spaces) {
		return fmt.Errorf("machine: snapshot has %d address spaces, machine has %d", nspaces, len(m.spaces))
	}
	for _, as := range m.spaces {
		nextVPN := pagetable.VPN(dec.U64())
		vmas := dec.Int()
		mapped := dec.Int()
		nsw := dec.Int()
		if dec.Err() != nil {
			return dec.Err()
		}
		if nextVPN != as.NextVPN() || vmas != len(as.VMAs()) {
			return fmt.Errorf("machine: space %d geometry differs (snapshot nextVPN %#x/%d VMAs, machine %#x/%d)",
				as.ID, nextVPN, vmas, as.NextVPN(), len(as.VMAs()))
		}
		if mapped != as.Mapped() {
			return fmt.Errorf("machine: space %d has %d mapped PTEs after restore, snapshot recorded %d", as.ID, as.Mapped(), mapped)
		}
		if nsw < 0 {
			return fmt.Errorf("machine: space %d swap population %d", as.ID, nsw)
		}
		for i := 0; i < nsw; i++ {
			as.MarkSwapped(pagetable.VPN(dec.U64()))
		}
	}
	return dec.Err()
}

// snapshot encodes the CPU-cache model: hit counters plus the cached
// (page, sub-frame) units in LRU order, tail (least recent) first. Slot
// indexes are not serialized — slot assignment is behaviorally invisible —
// so the encoding is canonical.
func (c *pageCache) snapshot(enc *snapcodec.Encoder) {
	enc.I64(c.Hits)
	enc.I64(c.Misses)
	enc.Int(c.cap - len(c.free))
	for idx := c.tail; idx >= 0; idx = c.nodes[idx].prev {
		k := c.nodes[idx].key
		enc.U64(k.pg.Seq)
		enc.U32(uint32(k.sub))
	}
}

// restore rebuilds the cache into an empty slab: entries decode tail-first
// and push to the front, reproducing the exact LRU order. Cached pages are
// always live (migration, swap and free all invalidate).
func (c *pageCache) restore(dec *snapcodec.Decoder, reg *PageRegistry) error {
	c.Hits = dec.I64()
	c.Misses = dec.I64()
	n := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if n < 0 || n > c.cap {
		return fmt.Errorf("machine: snapshot caches %d of %d slots", n, c.cap)
	}
	for i := 0; i < n; i++ {
		seq := dec.U64()
		sub := int32(dec.U32())
		if dec.Err() != nil {
			return dec.Err()
		}
		pg, ok := reg.Live(seq)
		if !ok {
			return fmt.Errorf("machine: CPU cache references non-resident page seq %d", seq)
		}
		idx := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		c.nodes[idx].key = cacheKey{pg, sub}
		c.pushFront(idx)
		if sub == 0 {
			if pg.CacheHint != 0 {
				return fmt.Errorf("machine: page seq %d cached twice", seq)
			}
			pg.CacheHint = idx + 1
		} else {
			if c.sub == nil {
				c.sub = make(map[*mem.Page]map[int32]int32, c.cap)
			}
			frames := c.sub[pg]
			if frames == nil {
				frames = make(map[int32]int32, 4)
				c.sub[pg] = frames
			}
			if _, dup := frames[sub]; dup {
				return fmt.Errorf("machine: page seq %d sub-frame %d cached twice", seq, sub)
			}
			frames[sub] = idx
		}
	}
	return dec.Err()
}

// SnapshotGate encodes a nested admission gate (presence-tagged), requiring
// it to support checkpointing when present. Shared by the gated policies.
func SnapshotGate(enc *snapcodec.Encoder, gate PromotionGate) error {
	if gate == nil {
		enc.Bool(false)
		return nil
	}
	enc.Bool(true)
	gs, ok := gate.(StateSnapshotter)
	if !ok {
		return fmt.Errorf("machine: admission gate %s does not support checkpointing", gate.Name())
	}
	return gs.SnapshotState(enc)
}

// RestoreGate decodes the nested gate section, cross-checking presence.
func RestoreGate(dec *snapcodec.Decoder, reg *PageRegistry, gate PromotionGate) error {
	hasGate := dec.Bool()
	if dec.Err() != nil {
		return dec.Err()
	}
	if hasGate != (gate != nil) {
		return fmt.Errorf("machine: snapshot gate presence %v does not match policy", hasGate)
	}
	if !hasGate {
		return nil
	}
	gs, ok := gate.(StateSnapshotter)
	if !ok {
		return fmt.Errorf("machine: admission gate %s does not support checkpointing", gate.Name())
	}
	return gs.RestoreState(dec, reg)
}
