package machine

import "multiclock/internal/mem"

// Shadow-copy migration wrappers (Nomad-style non-exclusive tiering): the
// machine-level counterparts of MigrateIsolated for the two shadow paths,
// carrying the same cache, telemetry and lifecycle accounting so observers
// cannot tell a shadow migration from a regular one except by its cost.

// PromoteShadowIsolated promotes a page the caller has already isolated to
// dst, retaining the source frame as a shadow copy. On success the page is
// putback on dst's LRU; on failure the caller keeps ownership of the
// still-isolated page. Unevictable pages fail; compound pages must take the
// regular migration path.
func (m *Machine) PromoteShadowIsolated(pg *mem.Page, dst mem.NodeID) bool {
	if pg.Flags.Has(mem.FlagUnevictable) {
		m.Mem.Counters.MigrateFails++
		m.lifecycleMigration(pg, pg.Node, dst, false)
		return false
	}
	src := pg.Node
	res := m.Mem.PromoteWithShadow(pg, dst)
	if !res.OK {
		m.lifecycleMigration(pg, src, dst, false)
		return false
	}
	m.Vecs[dst].Putback(pg)
	m.finishMigration(pg, src, dst, res)
	return true
}

// DemoteShadowIsolated demotes an isolated clean shadowed page for free by
// remapping it onto its retained shadow frame: no page copy, only the
// remap/TLB tax. On success the page is putback on the shadow node's LRU;
// on failure (no shadow held) the caller keeps the isolated page.
func (m *Machine) DemoteShadowIsolated(pg *mem.Page) bool {
	if !pg.HasShadow() {
		return false
	}
	src := pg.Node
	res := m.Mem.DemoteToShadow(pg)
	dst := pg.Node
	m.Vecs[dst].Putback(pg)
	m.finishMigration(pg, src, dst, res)
	return true
}
