package machine

import (
	"testing"

	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

// These tests pin the AccessN accounting contract so fast-path work cannot
// silently decouple latency charges from their counters:
//
//   - Every iteration of the thrash-retry fault loop charges Lat.MinorFault
//     exactly once, and every fault() call increments Counters.MinorFaults
//     exactly once — one attempt, one charge, one count. A swap-in re-fault
//     additionally counts SwapIns and charges Lat.SwapIn via the pending
//     direct charge, which the same AccessN call folds into its latency.
//
//   - Cache-filtered accesses bypass Metrics.AccessLatency by design (the
//     sink reports device-level memory-system cost; a CPU-cache hit never
//     reaches the memory system). They still count CacheFiltered and charge
//     the CacheHit cost on the timeline.

// TestFaultLatencyMatchesFaultCounters zeroes every latency except the
// minor-fault and swap-in costs, then thrashes a 4x-oversubscribed machine
// for several rounds so pages are reclaimed and re-faulted repeatedly. The
// only virtual time that can pass is fault accounting, so the clock must
// equal MinorFaults*MinorFault + SwapIns*SwapIn exactly. A retry-loop
// charge without a counter increment — or a counted fault that never
// charged — breaks the equality.
func TestFaultLatencyMatchesFaultCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem.DRAMNodes = []int{16}
	cfg.Mem.PMNodes = []int{16}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	cfg.Mem.Latency = mem.LatencyModel{
		MinorFault: 1500 * sim.Nanosecond,
		SwapIn:     60 * sim.Microsecond,
	}
	m := New(cfg, &nullPolicy{})
	as := m.NewSpace()
	v := as.Mmap(128, false, "big")
	for round := 0; round < 4; round++ {
		for i := 0; i < 128; i++ {
			m.AccessN(as, v.Start+pagetable.VPN(i), i%3 == 0, 4)
		}
	}
	c := &m.Mem.Counters
	if c.SwapOuts == 0 || c.SwapIns == 0 {
		t.Fatalf("test did not thrash: %d swap-outs, %d swap-ins", c.SwapOuts, c.SwapIns)
	}
	want := sim.Duration(c.MinorFaults)*(1500*sim.Nanosecond) +
		sim.Duration(c.SwapIns)*(60*sim.Microsecond)
	if got := m.Elapsed(); got != want {
		t.Fatalf("virtual time %v != MinorFaults(%d)*MinorFault + SwapIns(%d)*SwapIn = %v — fault latency and fault counters diverged",
			got, c.MinorFaults, c.SwapIns, want)
	}
}

// latRecorder counts Telemetry.AccessLatency reports.
type latRecorder struct {
	accesses int
	total    sim.Duration
}

func (r *latRecorder) AccessLatency(tier mem.Tier, write bool, lat sim.Duration, now sim.Time) {
	r.accesses++
	r.total += lat
}
func (r *latRecorder) Migration(from, to mem.NodeID, pages int, cost sim.Duration, now sim.Time) {}
func (r *latRecorder) DaemonPass(name string, work sim.Duration, now sim.Time)                   {}
func (r *latRecorder) QueueDepth(name string, depth int, now sim.Time)                           {}

// TestCacheFilteredAccessesBypassMetrics pins the documented contract:
// accesses absorbed by the modelled CPU cache are invisible to the
// AccessLatency sink (no memory-system traffic happened) but are still
// counted in CacheFiltered and still advance the clock by the CacheHit
// cost. Latency seen by the sink is device cost only.
func TestCacheFilteredAccessesBypassMetrics(t *testing.T) {
	m := cachedMachine(4)
	rec := &latRecorder{}
	m.SetMetrics(rec)
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")

	m.Access(as, v.Start, false) // fault + cache miss: reported
	if rec.accesses != 1 {
		t.Fatalf("miss reported %d times, want 1", rec.accesses)
	}
	if rec.total != m.Mem.Lat.Read[mem.TierDRAM] {
		t.Fatalf("reported device cost %v, want DRAM read %v", rec.total, m.Mem.Lat.Read[mem.TierDRAM])
	}

	before := m.Clock.Now()
	m.Access(as, v.Start, false) // cache hit: filtered, not reported
	if rec.accesses != 1 {
		t.Fatalf("cache-filtered access reached Metrics.AccessLatency (%d reports, want 1)", rec.accesses)
	}
	if m.Mem.Counters.CacheFiltered != 1 {
		t.Fatalf("CacheFiltered = %d, want 1", m.Mem.Counters.CacheFiltered)
	}
	if got := sim.Duration(m.Clock.Now() - before); got != m.Config().CacheHit {
		t.Fatalf("filtered access advanced clock by %v, want CacheHit %v", got, m.Config().CacheHit)
	}
}
