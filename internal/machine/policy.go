package machine

import (
	"multiclock/internal/lru"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

// Policy is a tiering policy: it decides where pages are born, what an
// access costs, and how pages move between tiers over time (via daemons it
// installs in Attach). Implementations: MULTI-CLOCK (internal/core) and the
// baselines (internal/policy).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string

	// Attach wires the policy to its machine and starts its daemons.
	// Called exactly once, from New.
	Attach(m *Machine)

	// AllocOrder is the tier fallback order for page birth.
	AllocOrder() []mem.Tier

	// PageBirth runs after a fresh page is mapped and on the LRU.
	PageBirth(pg *mem.Page)

	// PageFreed runs before a page's frame is released.
	PageFreed(pg *mem.Page)

	// HintFault runs when an application access trips a poisoned PTE
	// (software-fault access tracking). Only fault-based policies poison
	// pages, so most implementations never see this call.
	HintFault(pg *mem.Page, write bool)

	// Access returns the device latency for one application access to pg.
	// Most policies return the tier's base cost; Memory-mode replaces it
	// with its cache model.
	Access(pg *mem.Page, write bool) sim.Duration

	// Pressure notifies the policy that node fell below its low watermark
	// after an allocation (the kswapd wakeup path).
	Pressure(node mem.NodeID)

	// DirectReclaim synchronously frees at least n frames anywhere in the
	// machine when allocation has failed everywhere, returning the number
	// actually freed. Zero means OOM.
	DirectReclaim(n int) int
}

// PromotionGate is a pluggable admission controller for promotions
// (TierBPF-style): scanning daemons consult it with each candidate before
// spending migration bandwidth. Implementations must be deterministic in
// virtual time — Admit may read the machine's counters and clock but must
// not mutate pages or lists. A rejected candidate is returned to its LRU by
// the caller; the gate records the rejection in Counters.AdmissionRejects.
type PromotionGate interface {
	// Name identifies the gate in reports.
	Name() string

	// Attach wires the gate to the machine whose promotions it arbitrates.
	// Called once, before any Admit.
	Attach(m *Machine)

	// Admit reports whether promoting pg is worth its bandwidth right now.
	Admit(pg *mem.Page, now sim.Time) bool
}

// Stopper is implemented by policies that run daemons: Stop halts them so
// abandoned machines cost nothing. Callers that tear systems down should
// type-assert once against this interface instead of enumerating concrete
// policy types.
type Stopper interface {
	Stop()
}

// Base provides the default behaviour shared by every policy: DRAM-first
// birth, base tier latency, and swap-based direct reclaim from the lowest
// tier. Embed it and override what differs.
type Base struct {
	M *Machine

	// reclaimBuf is reused across DirectReclaim calls so repeated direct
	// reclaim under sustained pressure does not allocate. SwapOut never
	// re-enters reclaim, so one buffer is safe.
	reclaimBuf []*mem.Page
}

// Attach stores the machine reference. Policies embedding Base should call
// this from their own Attach before installing daemons.
func (b *Base) Attach(m *Machine) { b.M = m }

// AllocOrder births pages in the fastest tier while it lasts, then each
// slower tier in turn (§II-A).
func (b *Base) AllocOrder() []mem.Tier { return b.M.Mem.BirthOrder() }

// PageBirth is a no-op.
func (b *Base) PageBirth(pg *mem.Page) {}

// PageFreed is a no-op.
func (b *Base) PageFreed(pg *mem.Page) {}

// HintFault is a no-op: reference-bit policies never poison PTEs.
func (b *Base) HintFault(pg *mem.Page, write bool) {}

// Access charges the base latency of the page's tier.
func (b *Base) Access(pg *mem.Page, write bool) sim.Duration {
	return b.M.Mem.Lat.AccessCost(b.M.Mem.Tier(pg), write)
}

// Pressure is a no-op: static tiering does not react to watermarks.
func (b *Base) Pressure(node mem.NodeID) {}

// DirectReclaim swaps cold pages out of the lowest tier (and, failing
// that, any tier), the shared last-resort eviction path (§III-C). Several
// aging rounds may be needed: the first pass over recently-touched pages
// only spends their reference bits (second chance).
func (b *Base) DirectReclaim(n int) int {
	freed := 0
	for round := 0; round < 4 && freed < n; round++ {
		for t := b.M.Mem.NumTiers() - 1; t >= 0 && freed < n; t-- {
			for _, id := range b.M.Mem.TierNodes(mem.Tier(t)) {
				vec := b.M.Vecs[id]
				// Push active pages toward inactive so sustained
				// pressure always makes progress.
				vec.BalanceActive(0, n-freed)
				victims := vec.AppendDemoteCandidates(b.reclaimBuf[:0], n-freed)
				for _, pg := range victims {
					b.M.SwapOut(pg)
					freed++
				}
				b.reclaimBuf = victims[:0]
				if freed >= n {
					break
				}
			}
		}
	}
	return freed
}

// ScanTax charges the daemon-side cost of one scanning wakeup — the fixed
// wakeup disturbance plus per-page examination — to the machine's
// interference account.
func (b *Base) ScanTax(stats lru.ScanStats) {
	b.M.Mem.Counters.PagesScanned += int64(stats.Scanned)
	b.M.ChargeTax(b.M.Mem.Lat.DaemonWakeup +
		sim.Duration(stats.Scanned)*b.M.Mem.Lat.DaemonScanPage)
}
