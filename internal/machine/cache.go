package machine

import "multiclock/internal/mem"

// pageCache is a small fully-associative LRU of recently-touched 4 KiB
// frames, modelling the CPU cache hierarchy's reach at page granularity.
// It filters the latency charged for accesses — hits cost Config.CacheHit —
// without hiding them from the paging hardware (the PTE accessed bit is
// still set, as the TLB fill does on real machines). Compound (huge) pages
// are cached per covered base frame, not per descriptor: a 2 MiB page does
// not fit in the cache just because its descriptor was seen.
//
// The cache sits on the access fast path, so it is allocation-free after
// construction: nodes live in a fixed slab, the LRU list links slot
// indexes, and a base page's slot is found through Page.CacheHint in O(1)
// with no map. Only sub-frames of compound pages (sub != 0) — which have no
// per-frame descriptor to carry a hint — fall back to a small map, keyed by
// page so invalidation only ever visits the page's own residency: a base
// page's Invalidate must stay O(1) no matter how many compound frames other
// pages have cached.
type pageCache struct {
	cap   int
	nodes []cacheNode
	free  []int32 // unused slab slots
	sub   map[*mem.Page]map[int32]int32
	head  int32 // most recently used; -1 when empty
	tail  int32

	Hits, Misses int64
}

// cacheKey identifies one base-frame-sized unit.
type cacheKey struct {
	pg  *mem.Page
	sub int32 // base-frame index within a compound page; 0 for base pages
}

// cacheNode is one slab slot on the LRU list; prev/next are slot indexes,
// -1 terminated.
type cacheNode struct {
	key        cacheKey
	prev, next int32
}

func newPageCache(capacity int) *pageCache {
	c := &pageCache{
		cap:   capacity,
		nodes: make([]cacheNode, capacity),
		free:  make([]int32, 0, capacity),
		head:  -1,
		tail:  -1,
	}
	for i := capacity - 1; i >= 0; i-- {
		c.free = append(c.free, int32(i))
	}
	return c
}

// Touch records an access to the page's sub-frame and reports a hit.
func (c *pageCache) Touch(pg *mem.Page, sub int32) bool {
	if sub == 0 {
		if idx := pg.CacheHint - 1; idx >= 0 {
			c.Hits++
			c.moveToFront(idx)
			return true
		}
	} else if idx, ok := c.sub[pg][sub]; ok {
		c.Hits++
		c.moveToFront(idx)
		return true
	}
	c.Misses++
	var idx int32
	if n := len(c.free); n > 0 {
		idx = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		// Full: reuse the least-recently-used slot.
		idx = c.tail
		c.unlink(idx)
		c.dropKey(c.nodes[idx].key)
	}
	c.nodes[idx].key = cacheKey{pg, sub}
	c.pushFront(idx)
	if sub == 0 {
		pg.CacheHint = idx + 1
	} else {
		if c.sub == nil {
			c.sub = make(map[*mem.Page]map[int32]int32, c.cap)
		}
		frames := c.sub[pg]
		if frames == nil {
			frames = make(map[int32]int32, 4)
			c.sub[pg] = frames
		}
		frames[sub] = idx
	}
	return false
}

// Invalidate drops every cached frame of the page (migration or free).
func (c *pageCache) Invalidate(pg *mem.Page) {
	if idx := pg.CacheHint - 1; idx >= 0 {
		c.release(idx)
	}
	// Only this page's compound residency is visited (release prunes the
	// entries as it goes); pages with none pay nothing.
	for _, idx := range c.sub[pg] {
		c.release(idx)
	}
}

// release unlinks a slot, clears its reverse index, and returns it to the
// free list.
func (c *pageCache) release(idx int32) {
	c.unlink(idx)
	c.dropKey(c.nodes[idx].key)
	c.nodes[idx].key = cacheKey{}
	c.free = append(c.free, idx)
}

// dropKey clears the reverse index entry (hint or sub map) for a key whose
// slot is being evicted or released.
func (c *pageCache) dropKey(k cacheKey) {
	if k.sub == 0 {
		k.pg.CacheHint = 0
	} else if frames := c.sub[k.pg]; frames != nil {
		delete(frames, k.sub)
		if len(frames) == 0 {
			delete(c.sub, k.pg)
		}
	}
}

func (c *pageCache) pushFront(idx int32) {
	n := &c.nodes[idx]
	n.prev = -1
	n.next = c.head
	if c.head >= 0 {
		c.nodes[c.head].prev = idx
	} else {
		c.tail = idx
	}
	c.head = idx
}

func (c *pageCache) unlink(idx int32) {
	n := &c.nodes[idx]
	if n.prev >= 0 {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next >= 0 {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = -1, -1
}

func (c *pageCache) moveToFront(idx int32) {
	if c.head == idx {
		return
	}
	c.unlink(idx)
	c.pushFront(idx)
}
