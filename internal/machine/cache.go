package machine

import "multiclock/internal/mem"

// pageCache is a small fully-associative LRU of recently-touched 4 KiB
// frames, modelling the CPU cache hierarchy's reach at page granularity.
// It filters the latency charged for accesses — hits cost Config.CacheHit —
// without hiding them from the paging hardware (the PTE accessed bit is
// still set, as the TLB fill does on real machines). Compound (huge) pages
// are cached per covered base frame, not per descriptor: a 2 MiB page does
// not fit in the cache just because its descriptor was seen.
type pageCache struct {
	cap   int
	index map[cacheKey]*cacheNode
	head  *cacheNode // most recently used
	tail  *cacheNode

	Hits, Misses int64
}

// cacheKey identifies one base-frame-sized unit.
type cacheKey struct {
	pg  *mem.Page
	sub int32 // base-frame index within a compound page; 0 for base pages
}

type cacheNode struct {
	key        cacheKey
	prev, next *cacheNode
}

func newPageCache(capacity int) *pageCache {
	return &pageCache{cap: capacity, index: make(map[cacheKey]*cacheNode, capacity+1)}
}

// Touch records an access to the page's sub-frame and reports a hit.
func (c *pageCache) Touch(pg *mem.Page, sub int32) bool {
	key := cacheKey{pg, sub}
	if n, ok := c.index[key]; ok {
		c.Hits++
		c.moveToFront(n)
		return true
	}
	c.Misses++
	n := &cacheNode{key: key}
	c.index[key] = n
	c.pushFront(n)
	if len(c.index) > c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.index, evict.key)
	}
	return false
}

// Invalidate drops every cached frame of the page (migration or free).
func (c *pageCache) Invalidate(pg *mem.Page) {
	for n := c.head; n != nil; {
		next := n.next
		if n.key.pg == pg {
			c.unlink(n)
			delete(c.index, n.key)
		}
		n = next
	}
}

func (c *pageCache) pushFront(n *cacheNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	} else {
		c.tail = n
	}
	c.head = n
}

func (c *pageCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *pageCache) moveToFront(n *cacheNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
