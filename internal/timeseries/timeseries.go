// Package timeseries implements the windowed occupancy sampler behind the
// Fig. 6 and Fig. 9 curves: a fixed-period virtual-time schedule that, at
// each window boundary, snapshots every node's LRU list populations and
// free-frame headroom and differences the machine's vmstat counters over
// the window (promotion/demotion/retry flow, per-tier traffic).
//
// The sampler is purely observational. It re-arms itself with plain
// clock.Schedule calls — not a sim.Daemon, so it neither shows up in
// daemon-pass telemetry nor changes how policy daemons interleave — and a
// cancelled pending sample can never advance the clock (Drain skips
// cancelled events). Scheduling extra events does not perturb the relative
// order of the simulation's own events, so an instrumented run's timeline
// is identical to an uninstrumented one.
package timeseries

import (
	"multiclock/internal/lru"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/metrics"
	"multiclock/internal/sim"
)

// DefaultMaxWindows bounds the recorded series (~65k windows; at the
// paper's 1 s scan interval that is 18 virtual hours of 1 s windows).
const DefaultMaxWindows = 1 << 16

// Sampler records one machine's windowed time series.
type Sampler struct {
	m          *machine.Machine
	window     sim.Duration
	maxWindows int

	windows []metrics.WindowExport
	dropped int64

	// start and base are the current window's opening time and counter
	// snapshot; ev is the pending boundary event.
	start sim.Time
	base  mem.Counters
	ev    *sim.Event
}

// New starts sampling m every window of virtual time (maxWindows <= 0
// takes DefaultMaxWindows). The first window opens at the current virtual
// time. Call Stop before draining the clock if the series should end
// earlier.
func New(m *machine.Machine, window sim.Duration, maxWindows int) *Sampler {
	if window <= 0 {
		panic("timeseries: non-positive window")
	}
	if maxWindows <= 0 {
		maxWindows = DefaultMaxWindows
	}
	s := &Sampler{
		m:          m,
		window:     window,
		maxWindows: maxWindows,
		start:      m.Clock.Now(),
		base:       m.Mem.Counters.Clone(),
	}
	s.ev = m.Clock.Schedule(window, s.tick)
	return s
}

// Window returns the sampling period.
func (s *Sampler) Window() sim.Duration { return s.window }

// tick closes the current window and re-arms the next boundary.
func (s *Sampler) tick() {
	now := s.m.Clock.Now()
	s.close(now)
	s.start = now
	s.base = s.m.Mem.Counters.Clone()
	s.ev = s.m.Clock.Schedule(s.window, s.tick)
}

// close records the window [s.start, end) against the current machine
// state without touching the sampler's baseline.
func (s *Sampler) close(end sim.Time) {
	if len(s.windows) >= s.maxWindows {
		s.dropped++
		return
	}
	s.windows = append(s.windows, s.snapshot(end))
}

// snapshot builds the wire-format window for [s.start, end).
func (s *Sampler) snapshot(end sim.Time) metrics.WindowExport {
	c := &s.m.Mem.Counters
	w := metrics.WindowExport{
		Index: len(s.windows),
		Start: int64(s.start),
		End:   int64(end),

		ReadsDRAM:    c.Reads[0] - s.base.Reads[0],
		WritesDRAM:   c.Writes[0] - s.base.Writes[0],
		Promotions:   c.Promotions - s.base.Promotions,
		Demotions:    c.Demotions - s.base.Demotions,
		MigrateFails: c.MigrateFails - s.base.MigrateFails,
		SwapOuts:     c.SwapOuts - s.base.SwapOuts,
		SwapIns:      c.SwapIns - s.base.SwapIns,
		PagesScanned: c.PagesScanned - s.base.PagesScanned,
	}
	// The lower-tier traffic columns aggregate every tier below the fastest
	// (the PM tier in the default hierarchy, CXL+PM+… in deeper ones).
	for t := 1; t < len(c.Reads); t++ {
		w.ReadsPM += c.Reads[t] - s.base.Reads[t]
		w.WritesPM += c.Writes[t] - s.base.Writes[t]
	}
	for _, n := range s.m.Mem.Nodes {
		vec := s.m.Vecs[n.ID]
		free := n.FreeFrames()
		w.Nodes = append(w.Nodes, metrics.NodeSample{
			Node:         int(n.ID),
			Tier:         s.m.Mem.TierName(n.Tier),
			Free:         free,
			LowDistance:  free - n.WM.Low,
			AnonInactive: vec.Len(lru.InactiveAnon),
			AnonActive:   vec.Len(lru.ActiveAnon),
			AnonPromote:  vec.Len(lru.PromoteAnon),
			FileInactive: vec.Len(lru.InactiveFile),
			FileActive:   vec.Len(lru.ActiveFile),
			FilePromote:  vec.Len(lru.PromoteFile),
			Unevictable:  vec.Len(lru.Unevictable),
		})
	}
	return w
}

// Stop cancels the pending boundary event. The clock's Drain skips
// cancelled events, so a stopped sampler can never advance virtual time.
func (s *Sampler) Stop() { s.ev.Cancel() }

// Export snapshots the series as the wire-format section, synthesizing a
// trailing partial window up to the current virtual instant when time has
// passed since the last boundary. Export does not mutate the sampler and
// may be called repeatedly.
func (s *Sampler) Export() *metrics.SeriesExport {
	out := &metrics.SeriesExport{
		WindowNS:       int64(s.window),
		DroppedWindows: s.dropped,
		Windows:        append([]metrics.WindowExport(nil), s.windows...),
	}
	if now := s.m.Clock.Now(); now > s.start && len(s.windows) < s.maxWindows {
		out.Windows = append(out.Windows, s.snapshot(now))
	}
	return out
}
