package timeseries

import (
	"testing"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/metrics"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
)

type nullPolicy struct{ machine.Base }

func (*nullPolicy) Name() string { return "null" }

func testMachine(dram, pm int) *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{dram}
	cfg.Mem.PMNodes = []int{pm}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	return machine.New(cfg, &nullPolicy{})
}

// TestWindowsTileTheRun: windows must be contiguous, indexed, and exactly
// cover virtual time; the export must self-validate.
func TestWindowsTileTheRun(t *testing.T) {
	m := testMachine(64, 64)
	s := New(m, 1*sim.Millisecond, 0)
	as := m.NewSpace()
	v := as.Mmap(16, false, "x")
	for i := 0; i < 16; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
		m.Compute(250 * sim.Microsecond)
	}
	ex := s.Export()
	if err := metrics.ValidateSections(nil, ex); err != nil {
		t.Fatalf("series does not validate: %v", err)
	}
	if len(ex.Windows) < 4 {
		t.Fatalf("4ms of work produced %d windows of 1ms", len(ex.Windows))
	}
	if last := ex.Windows[len(ex.Windows)-1]; last.End != int64(m.Clock.Now()) {
		t.Fatalf("trailing partial window ends at %d, clock at %d", last.End, int64(m.Clock.Now()))
	}
}

// TestWindowDeltasSumToTotals: summing each per-window delta across the
// series must reproduce the machine's cumulative counters — windows neither
// lose nor double-count flow.
func TestWindowDeltasSumToTotals(t *testing.T) {
	m := testMachine(32, 64)
	s := New(m, 1*sim.Millisecond, 0)
	as := m.NewSpace()
	v := as.Mmap(24, false, "x")
	pm := m.Mem.TierNodes(mem.TierPM)[0]
	dram := m.Mem.TierNodes(mem.TierDRAM)[0]
	for i := 0; i < 24; i++ {
		pg := m.Access(as, v.Start+pagetable.VPN(i), i%3 == 0)
		m.Compute(300 * sim.Microsecond)
		if i%2 == 0 {
			m.MigratePage(pg, pm)
		} else if i%5 == 0 {
			m.MigratePage(pg, dram)
		}
	}
	var reads, writes, promos, demos int64
	for _, w := range s.Export().Windows {
		reads += w.ReadsDRAM + w.ReadsPM
		writes += w.WritesDRAM + w.WritesPM
		promos += w.Promotions
		demos += w.Demotions
	}
	c := &m.Mem.Counters
	if got := c.Reads[mem.TierDRAM] + c.Reads[mem.TierPM]; reads != got {
		t.Fatalf("windowed reads %d, machine %d", reads, got)
	}
	if got := c.Writes[mem.TierDRAM] + c.Writes[mem.TierPM]; writes != got {
		t.Fatalf("windowed writes %d, machine %d", writes, got)
	}
	if promos != c.Promotions || demos != c.Demotions {
		t.Fatalf("windowed migrations %d/%d, machine %d/%d", promos, demos, c.Promotions, c.Demotions)
	}
}

// TestOccupancySnapshot: the final window's node samples must agree with
// the live vecs and node free counts.
func TestOccupancySnapshot(t *testing.T) {
	m := testMachine(64, 64)
	s := New(m, 1*sim.Millisecond, 0)
	as := m.NewSpace()
	v := as.Mmap(10, false, "x")
	for i := 0; i < 10; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	m.Compute(500 * sim.Microsecond)
	ex := s.Export()
	last := ex.Windows[len(ex.Windows)-1]
	if len(last.Nodes) != len(m.Mem.Nodes) {
		t.Fatalf("window samples %d nodes, machine has %d", len(last.Nodes), len(m.Mem.Nodes))
	}
	for _, ns := range last.Nodes {
		n := m.Mem.Nodes[ns.Node]
		if ns.Free != n.FreeFrames() || ns.Tier != n.Tier.String() {
			t.Fatalf("node %d sample %+v disagrees with live node", ns.Node, ns)
		}
		vec := m.Vecs[ns.Node]
		if ns.AnonInactive != vec.Len(0) {
			t.Fatalf("node %d anon_inactive %d, vec %d", ns.Node, ns.AnonInactive, vec.Len(0))
		}
	}
	// All ten pages are resident somewhere on the anon lists.
	total := 0
	for _, ns := range last.Nodes {
		total += ns.AnonInactive + ns.AnonActive + ns.AnonPromote
	}
	if total != 10 {
		t.Fatalf("anon list populations sum to %d, want 10", total)
	}
}

// TestExportBeforeAnyTime: a sampler exported at its opening instant has no
// windows at all — not even a synthesized empty trailing one — and the empty
// section still validates.
func TestExportBeforeAnyTime(t *testing.T) {
	m := testMachine(16, 16)
	s := New(m, 1*sim.Millisecond, 0)
	ex := s.Export()
	if len(ex.Windows) != 0 {
		t.Fatalf("zero elapsed time produced %d windows", len(ex.Windows))
	}
	if ex.WindowNS != int64(1*sim.Millisecond) || ex.DroppedWindows != 0 {
		t.Fatalf("empty export header wrong: %+v", ex)
	}
	if err := metrics.ValidateSections(nil, ex); err != nil {
		t.Fatalf("empty series does not validate: %v", err)
	}
}

// TestZeroAccessMidRunWindow: a window the workload slept through must still
// be recorded — contiguous with its neighbors, all flow deltas zero, node
// occupancy carried over — rather than skipped or merged away.
func TestZeroAccessMidRunWindow(t *testing.T) {
	m := testMachine(64, 64)
	s := New(m, 1*sim.Millisecond, 0)
	as := m.NewSpace()
	v := as.Mmap(8, false, "x")
	// Window 0: touch every page. Window 1: pure idle. Window 2: touch again.
	for i := 0; i < 8; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	m.Compute(1 * sim.Millisecond) // closes window 0
	m.Compute(1 * sim.Millisecond) // closes window 1, untouched
	for i := 0; i < 8; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	m.Compute(500 * sim.Microsecond)
	ex := s.Export()
	if err := metrics.ValidateSections(nil, ex); err != nil {
		t.Fatalf("series does not validate: %v", err)
	}
	if len(ex.Windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(ex.Windows))
	}
	for i := 1; i < len(ex.Windows); i++ {
		if ex.Windows[i].Start != ex.Windows[i-1].End {
			t.Fatalf("window %d not contiguous: starts %d after end %d",
				i, ex.Windows[i].Start, ex.Windows[i-1].End)
		}
	}
	idle := ex.Windows[1]
	if idle.Accesses() != 0 || idle.Promotions != 0 || idle.Demotions != 0 || idle.PagesScanned != 0 {
		t.Fatalf("idle window carries flow: %+v", idle)
	}
	// Occupancy is a point-in-time snapshot, not a delta: the 8 resident
	// pages must still show on the idle window's node samples.
	total := 0
	for _, ns := range idle.Nodes {
		total += ns.AnonInactive + ns.AnonActive + ns.AnonPromote
	}
	if total != 8 {
		t.Fatalf("idle window anon occupancy %d, want 8", total)
	}
	if ex.Windows[0].Accesses() == 0 || ex.Windows[2].Accesses() == 0 {
		t.Fatalf("active windows lost their accesses: %+v / %+v", ex.Windows[0], ex.Windows[2])
	}
}

// TestMaxWindowsCap: the cap must hold and drops must be counted.
func TestMaxWindowsCap(t *testing.T) {
	m := testMachine(16, 16)
	s := New(m, 1*sim.Millisecond, 3)
	m.Compute(10 * sim.Millisecond)
	ex := s.Export()
	if len(ex.Windows) != 3 {
		t.Fatalf("windows = %d, want cap 3", len(ex.Windows))
	}
	if ex.DroppedWindows == 0 {
		t.Fatal("over-cap windows not counted as dropped")
	}
}

// TestStopHaltsSampling: no boundary may close after Stop, and the stopped
// sampler's pending event must not advance time under Drain.
func TestStopHaltsSampling(t *testing.T) {
	m := testMachine(16, 16)
	s := New(m, 1*sim.Millisecond, 0)
	m.Compute(2500 * sim.Microsecond)
	s.Stop()
	n := len(s.Export().Windows)
	before := m.Clock.Now()
	m.Compute(5 * sim.Millisecond)
	if got := len(s.Export().Windows); got != n {
		t.Fatalf("stopped sampler recorded %d new windows", got-n)
	}
	if m.Clock.Now() != before+sim.Time(5*sim.Millisecond) {
		t.Fatal("stopped sampler moved the clock")
	}
}

// TestExportIdempotent: repeated exports must agree and the synthesized
// trailing window must not leak into sampler state.
func TestExportIdempotent(t *testing.T) {
	m := testMachine(16, 16)
	s := New(m, 1*sim.Millisecond, 0)
	m.Compute(1500 * sim.Microsecond)
	a, b := s.Export(), s.Export()
	if len(a.Windows) != len(b.Windows) {
		t.Fatalf("repeat export diverges: %d vs %d windows", len(a.Windows), len(b.Windows))
	}
	for i := range a.Windows {
		if a.Windows[i].Start != b.Windows[i].Start || a.Windows[i].End != b.Windows[i].End {
			t.Fatalf("window %d differs across exports", i)
		}
	}
}
