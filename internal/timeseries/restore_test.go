// External test package: it drives the sampler through the bench soak
// harness's checkpoint/restore path, and internal/bench itself imports
// timeseries.
package timeseries_test

import (
	"reflect"
	"testing"

	"multiclock/internal/bench"
	"multiclock/internal/metrics"
	"multiclock/internal/sim"
	"multiclock/internal/snapshot"
	"multiclock/internal/timeseries"
)

// TestSamplerAcrossSnapshotRestore pins the contract the CLIs enforce by
// refusing -series alongside checkpointing: a sampler does not serialize,
// so the supported pattern is attaching a fresh one to the restored system.
// The fresh sampler must open its first window at the restored virtual
// instant (not at zero), count only post-restore flow, and stay passive —
// the restored run's virtual timeline must match a sampler-free replay
// exactly.
func TestSamplerAcrossSnapshotRestore(t *testing.T) {
	cfg := bench.SoakConfig{
		Policy:    "multiclock",
		Workloads: []string{"A"},
		Records:   1_000,
		Ops:       3_000,
		DRAMPages: 128,
		PMPages:   1_024,
		Interval:  1 * sim.Millisecond,
		Seed:      1,
	}
	s, err := bench.NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.RunUntil(1_500)
	f, err := s.Capture()
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	data := f.Encode()

	restore := func(attach bool) (*bench.Session, *timeseries.Sampler) {
		g, err := snapshot.Decode(data)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		r, err := bench.RestoreSession(g)
		if err != nil {
			t.Fatalf("RestoreSession: %v", err)
		}
		var sp *timeseries.Sampler
		if attach {
			sp = timeseries.New(r.M, 1*sim.Millisecond, 0)
		}
		return r, sp
	}

	r1, sp := restore(true)
	resumedAt := r1.M.Clock.Now()
	if resumedAt == 0 {
		t.Fatal("restored session resumed at virtual time zero")
	}
	base := r1.M.Mem.Counters.Clone()
	if _, err := r1.Run(bench.SoakHooks{}); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	ex := sp.Export()
	if err := metrics.ValidateSections(nil, ex); err != nil {
		t.Fatalf("post-restore series does not validate: %v", err)
	}
	if len(ex.Windows) == 0 {
		t.Fatal("post-restore sampler recorded nothing")
	}
	if got := ex.Windows[0].Start; got != int64(resumedAt) {
		t.Fatalf("first window opens at %d, restore point was %d", got, int64(resumedAt))
	}
	// The windowed deltas must tile exactly the post-restore flow — none of
	// the pre-checkpoint history may leak into the fresh sampler.
	var reads int64
	for _, w := range ex.Windows {
		reads += w.ReadsDRAM + w.ReadsPM
	}
	c := &r1.M.Mem.Counters
	var want int64
	for tier := range c.Reads {
		want += c.Reads[tier] - base.Reads[tier]
	}
	if reads != want {
		t.Fatalf("windowed reads %d, post-restore machine delta %d", reads, want)
	}

	// Passivity: a second restore without a sampler must land on the same
	// virtual instant with the same counters.
	r2, _ := restore(false)
	if _, err := r2.Run(bench.SoakHooks{}); err != nil {
		t.Fatalf("sampler-free resumed run: %v", err)
	}
	if r1.M.Clock.Now() != r2.M.Clock.Now() {
		t.Fatalf("sampler moved the clock: %d vs %d", r1.M.Clock.Now(), r2.M.Clock.Now())
	}
	if !reflect.DeepEqual(*c, r2.M.Mem.Counters) {
		t.Fatal("sampler changed the machine's counters")
	}
}
