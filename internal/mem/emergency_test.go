package mem

// Emergency-reserve, OOM-adjacent accounting and injected-fault coverage
// for the allocator and migration paths.

import (
	"testing"

	"multiclock/internal/fault"
)

func TestEmergencyReserveAccounting(t *testing.T) {
	s := testSystem(32, 32)
	n := s.Nodes[0]

	// Ordinary allocations stop at the min watermark without ever being
	// counted as emergency dips.
	for s.AllocOn(0, false) != nil {
	}
	if free := n.FreeFrames(); free != n.WM.Min {
		t.Fatalf("ordinary allocation drained to %d free, want min watermark %d", free, n.WM.Min)
	}
	if s.Counters.EmergencyAllocs != 0 {
		t.Fatalf("EmergencyAllocs = %d before any emergency allocation", s.Counters.EmergencyAllocs)
	}

	// Every allocation from here on dips into the reserve and is counted.
	dips := int64(0)
	for s.AllocOn(0, true) != nil {
		dips++
	}
	if dips != int64(n.WM.Min) {
		t.Fatalf("emergency path yielded %d frames, want the full reserve %d", dips, n.WM.Min)
	}
	if s.Counters.EmergencyAllocs != dips {
		t.Fatalf("EmergencyAllocs = %d, want %d", s.Counters.EmergencyAllocs, dips)
	}
	if n.FreeFrames() != 0 {
		t.Fatalf("reserve not fully drained: %d free", n.FreeFrames())
	}

	// An emergency-capable allocation on a healthy node is not a dip.
	if pg := s.AllocOn(1, true); pg == nil {
		t.Fatal("healthy node refused allocation")
	}
	if s.Counters.EmergencyAllocs != dips {
		t.Fatalf("healthy-node allocation counted as dip: %d", s.Counters.EmergencyAllocs)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariantsDetectsCounterDrift(t *testing.T) {
	s := testSystem(16, 16)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("fresh system inconsistent: %v", err)
	}
	if pg := s.AllocOn(0, false); pg == nil {
		t.Fatal("alloc failed")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after alloc: %v", err)
	}
	s.Counters.Allocs[TierDRAM]++ // simulate lost accounting
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("counter drift not detected")
	}
}

// TestInjectedMigrationFaultsLeavePageIntact: pinned-page and
// target-denied injections must fail the migration exactly like a natural
// destination-full failure — source frame kept, descriptor untouched,
// MigrateFails counted — with the page still owned by the caller.
func TestInjectedMigrationFaultsLeavePageIntact(t *testing.T) {
	for _, kind := range []fault.Kind{fault.MigratePinned, fault.MigrateTargetDenied} {
		s := testSystem(16, 16)
		fcfg := fault.Config{Seed: 5}
		fcfg.Rates[kind] = 1.0
		s.Faults = fault.New(s.Clock(), fcfg)

		pg := s.AllocOn(0, false)
		pg.SetFlags(FlagIsolated)
		node, frame := pg.Node, pg.Frame
		res := s.Migrate(pg, 1)
		if res.OK {
			t.Fatalf("%v: migration succeeded at rate 1.0", kind)
		}
		if pg.Node != node || pg.Frame != frame {
			t.Fatalf("%v: failed migration moved the page: %d/%d -> %d/%d",
				kind, node, frame, pg.Node, pg.Frame)
		}
		if !pg.Flags.Has(FlagIsolated) {
			t.Fatalf("%v: page no longer isolated after failed attempt", kind)
		}
		if s.Counters.MigrateFails != 1 {
			t.Fatalf("%v: MigrateFails = %d, want 1", kind, s.Counters.MigrateFails)
		}
		if got := s.Faults.Counters.Injected[kind]; got != 1 {
			t.Fatalf("%v: injector counted %d", kind, got)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// TestInjectedAllocStormOnlyNearWatermark: storms must not deny
// allocations on healthy nodes, and must deny them (and count each
// denial) once the node is near its low watermark.
func TestInjectedAllocStormOnlyNearWatermark(t *testing.T) {
	s := testSystem(64, 64)
	fcfg := fault.Config{Seed: 11}
	fcfg.Rates[fault.AllocStorm] = 1.0
	s.Faults = fault.New(s.Clock(), fcfg)
	n := s.Nodes[0]

	for n.FreeFrames() >= n.WM.Low+1 {
		if s.AllocOn(0, false) == nil {
			t.Fatalf("storm denied a healthy allocation at %d free (low=%d)", n.FreeFrames(), n.WM.Low)
		}
	}
	if s.AllocOn(0, false) != nil {
		t.Fatal("near-watermark allocation survived a rate-1.0 storm")
	}
	if s.Faults.Counters.Injected[fault.AllocStorm] == 0 {
		t.Fatal("storm denial not counted")
	}
	// The emergency path ignores storms entirely.
	if s.AllocOn(0, true) == nil {
		t.Fatal("storm denied an emergency allocation")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
