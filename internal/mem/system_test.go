package mem

import (
	"testing"
	"testing/quick"

	"multiclock/internal/sim"
)

func testSystem(dram, pm int) *System {
	cfg := DefaultConfig()
	cfg.DRAMNodes = []int{dram}
	cfg.PMNodes = []int{pm}
	return NewSystem(sim.NewClock(), cfg)
}

func TestNewSystemLayout(t *testing.T) {
	s := testSystem(100, 400)
	if len(s.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(s.Nodes))
	}
	if s.Nodes[0].Tier != TierDRAM || s.Nodes[1].Tier != TierPM {
		t.Fatal("tier assignment wrong")
	}
	if s.TierCapacity(TierDRAM) != 100 || s.TierCapacity(TierPM) != 400 {
		t.Fatal("capacity wrong")
	}
	if s.TierFree(TierDRAM) != 100 {
		t.Fatal("initial free wrong")
	}
}

func TestNewSystemRequiresDRAM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no-DRAM config did not panic")
		}
	}()
	NewSystem(sim.NewClock(), Config{PMNodes: []int{10}})
}

func TestAllocBornInDRAM(t *testing.T) {
	s := testSystem(100, 400)
	pg := s.Alloc(DefaultOrder())
	if pg == nil {
		t.Fatal("alloc failed")
	}
	if s.Tier(pg) != TierDRAM {
		t.Fatalf("first page born in %v, want DRAM", s.Tier(pg))
	}
	if s.Counters.Allocs[TierDRAM] != 1 {
		t.Fatal("alloc counter")
	}
}

func TestAllocFallsBackToPM(t *testing.T) {
	s := testSystem(50, 200)
	sawPM := false
	for i := 0; i < 200; i++ {
		pg := s.Alloc(DefaultOrder())
		if pg == nil {
			t.Fatalf("alloc %d failed with PM space left", i)
		}
		if s.Tier(pg) == TierPM {
			sawPM = true
		}
	}
	if !sawPM {
		t.Fatal("never fell back to PM")
	}
	// DRAM should be left with only its min reserve.
	if free := s.Nodes[0].FreeFrames(); free > s.Nodes[0].WM.Min {
		t.Fatalf("DRAM free %d above min reserve %d while PM used", free, s.Nodes[0].WM.Min)
	}
}

func TestAllocExhaustsEverything(t *testing.T) {
	s := testSystem(20, 30)
	n := 0
	for {
		pg := s.Alloc(DefaultOrder())
		if pg == nil {
			break
		}
		n++
		if n > 100 {
			t.Fatal("allocated more pages than frames exist")
		}
	}
	if n != 50 {
		t.Fatalf("allocated %d pages, want 50 (reserves must be usable as last resort)", n)
	}
}

func TestAllocOnRespectsReserve(t *testing.T) {
	s := testSystem(100, 100)
	node := s.Nodes[0]
	for node.FreeFrames() > node.WM.Min {
		if s.AllocOn(0, false) == nil {
			t.Fatal("alloc failed above reserve")
		}
	}
	if s.AllocOn(0, false) != nil {
		t.Fatal("non-emergency alloc dipped into reserve")
	}
	if s.AllocOn(0, true) == nil {
		t.Fatal("emergency alloc should use reserve")
	}
}

func TestFreeReturnsFrame(t *testing.T) {
	s := testSystem(10, 10)
	pg := s.Alloc(DefaultOrder())
	free := s.Nodes[0].FreeFrames()
	s.Free(pg)
	if s.Nodes[0].FreeFrames() != free+1 {
		t.Fatal("frame not returned")
	}
	if s.Counters.Frees[TierDRAM] != 1 {
		t.Fatal("free counter")
	}
	if pg.Node != NoNode || pg.Frame != NoFrame {
		t.Fatal("freed page still names a frame")
	}
}

func TestFreeOnListPanics(t *testing.T) {
	s := testSystem(10, 10)
	pg := s.Alloc(DefaultOrder())
	l := &PageList{Name: "l"}
	l.PushBack(pg)
	defer func() {
		if recover() == nil {
			t.Fatal("freeing a listed page did not panic")
		}
	}()
	s.Free(pg)
}

func TestMigratePromotes(t *testing.T) {
	s := testSystem(100, 100)
	pg := s.AllocOn(1, false) // PM
	pg.SetFlags(FlagIsolated)
	res := s.Migrate(pg, 0)
	if !res.OK {
		t.Fatal("migration failed")
	}
	if s.Tier(pg) != TierDRAM {
		t.Fatal("page not on DRAM after promotion")
	}
	if s.Counters.Promotions != 1 || s.Counters.Demotions != 0 {
		t.Fatalf("promotion counters: %+v", s.Counters)
	}
	if pg.PromotedAt != s.clock.Now() {
		t.Fatal("PromotedAt not stamped")
	}
	if res.Cost <= 0 || res.Tax <= 0 {
		t.Fatal("migration must cost time")
	}
	// Frame accounting balanced.
	if s.Nodes[1].FreeFrames() != 100 || s.Nodes[0].FreeFrames() != 99 {
		t.Fatal("frame accounting after migration")
	}
}

func TestMigrateDemotes(t *testing.T) {
	s := testSystem(100, 100)
	pg := s.AllocOn(0, false)
	pg.SetFlags(FlagIsolated)
	if res := s.Migrate(pg, 1); !res.OK {
		t.Fatal("demotion failed")
	}
	if s.Counters.Demotions != 1 {
		t.Fatal("demotion counter")
	}
}

func TestMigrateUnevictableFails(t *testing.T) {
	s := testSystem(100, 100)
	pg := s.AllocOn(1, false)
	pg.SetFlags(FlagIsolated | FlagUnevictable)
	if res := s.Migrate(pg, 0); res.OK {
		t.Fatal("unevictable page migrated")
	}
	if s.Counters.MigrateFails != 1 {
		t.Fatal("fail counter")
	}
}

func TestMigrateNotIsolatedPanics(t *testing.T) {
	s := testSystem(100, 100)
	pg := s.AllocOn(1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("migrating non-isolated page did not panic")
		}
	}()
	s.Migrate(pg, 0)
}

func TestMigrateToFullNodeFails(t *testing.T) {
	s := testSystem(5, 100)
	for s.Nodes[0].FreeFrames() > 0 {
		s.AllocOn(0, true)
	}
	pg := s.AllocOn(1, false)
	pg.SetFlags(FlagIsolated)
	if res := s.Migrate(pg, 0); res.OK {
		t.Fatal("migration into full node succeeded")
	}
	if s.Tier(pg) != TierPM {
		t.Fatal("failed migration moved the page")
	}
}

func TestMigrateSameNodeNoop(t *testing.T) {
	s := testSystem(10, 10)
	pg := s.AllocOn(0, false)
	pg.SetFlags(FlagIsolated)
	res := s.Migrate(pg, 0)
	if !res.OK || s.Counters.Promotions+s.Counters.Demotions != 0 {
		t.Fatal("same-node migration should be a free no-op")
	}
}

func TestPickNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DRAMNodes = []int{10, 50}
	cfg.PMNodes = []int{20}
	s := NewSystem(sim.NewClock(), cfg)
	if got := s.PickNode(TierDRAM); got != 1 {
		t.Fatalf("PickNode chose %d, want 1 (more free)", got)
	}
	// Exhaust all of DRAM.
	for s.TierFree(TierDRAM) > 0 {
		if s.AllocOn(0, true) == nil && s.AllocOn(1, true) == nil {
			break
		}
	}
	if got := s.PickNode(TierDRAM); got != NoNode {
		t.Fatalf("PickNode on full tier = %d, want NoNode", got)
	}
}

func TestWatermarkOrdering(t *testing.T) {
	f := func(frames uint16) bool {
		n := int(frames%10000) + 2
		wm := DefaultWatermarks().compute(n)
		return wm.Min >= 1 && wm.Min < wm.Low && wm.Low < wm.High
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWatermarkPressureSignals(t *testing.T) {
	s := testSystem(1000, 1000)
	n := s.Nodes[0]
	if n.UnderLow() || n.UnderHigh() || n.UnderMin() {
		t.Fatal("fresh node under pressure")
	}
	for n.FreeFrames() >= n.WM.Low {
		s.AllocOn(0, true)
	}
	if !n.UnderLow() || !n.UnderHigh() {
		t.Fatal("node below low watermark not flagged")
	}
}

// Property: alloc/free sequences never lose or duplicate frames.
func TestFrameConservationProperty(t *testing.T) {
	f := func(ops []bool, seed uint64) bool {
		s := testSystem(32, 32)
		rng := sim.NewRNG(seed)
		var live []*Page
		for _, alloc := range ops {
			if alloc || len(live) == 0 {
				if pg := s.Alloc(DefaultOrder()); pg != nil {
					live = append(live, pg)
				}
			} else {
				i := rng.Intn(len(live))
				s.Free(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			used := s.Nodes[0].UsedFrames() + s.Nodes[1].UsedFrames()
			if used != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCountersReport(t *testing.T) {
	s := testSystem(10, 10)
	s.Counters.Reads[TierDRAM] = 75
	s.Counters.Reads[TierPM] = 25
	if got := s.Counters.DRAMHitRatio(); got != 0.75 {
		t.Fatalf("DRAMHitRatio = %v, want 0.75", got)
	}
	if got := s.Counters.TotalAccesses(); got != 100 {
		t.Fatalf("TotalAccesses = %d", got)
	}
	if s.Counters.String() == "" {
		t.Fatal("empty report")
	}
	var zero Counters
	if zero.DRAMHitRatio() != 0 {
		t.Fatal("zero counters hit ratio")
	}
}

func TestLatencyModelDefaults(t *testing.T) {
	m := DefaultLatency()
	if m.Read[TierPM] <= m.Read[TierDRAM] {
		t.Fatal("PM reads must be slower than DRAM")
	}
	if m.Write[TierPM] <= m.Read[TierPM] {
		t.Fatal("PM writes must be slower than PM reads (asymmetric)")
	}
	if m.AccessCost(TierDRAM, false) != m.Read[TierDRAM] {
		t.Fatal("AccessCost read")
	}
	if m.AccessCost(TierPM, true) != m.Write[TierPM] {
		t.Fatal("AccessCost write")
	}
	if m.PageCopy[TierPM][TierDRAM] <= m.PageCopy[TierDRAM][TierDRAM] {
		t.Fatal("PM-involved copies must cost more")
	}
}

func TestAllocBlockOn(t *testing.T) {
	s := testSystem(2048, 1024)
	pg := s.AllocBlockOn(0, MaxOrder, false)
	if pg == nil || pg.Order != MaxOrder || pg.Frames() != 512 {
		t.Fatal("huge block allocation")
	}
	if !pg.IsHuge() {
		t.Fatal("IsHuge")
	}
	if s.Counters.Allocs[TierDRAM] != 512 {
		t.Fatal("frame-weighted alloc counter")
	}
	if s.Nodes[0].FreeFrames() != 2048-512 {
		t.Fatal("free accounting")
	}
	s.Free(pg)
	if s.Nodes[0].FreeFrames() != 2048 || s.Counters.Frees[TierDRAM] != 512 {
		t.Fatal("huge free accounting")
	}
}

func TestAllocBlockOnReserve(t *testing.T) {
	s := testSystem(600, 64)
	// 600 frames: one 512-block exists; non-emergency must respect the
	// min reserve relative to the block size.
	n := s.Nodes[0]
	for n.FreeFrames() > n.WM.Min+511 {
		if s.AllocOn(0, false) == nil {
			break
		}
	}
	if s.AllocBlockOn(0, MaxOrder, false) != nil {
		t.Fatal("huge alloc dipped into reserve")
	}
}

func TestMigrateHugeCountsFrames(t *testing.T) {
	s := testSystem(1024, 1024)
	pg := s.AllocBlockOn(1, MaxOrder, false)
	pg.SetFlags(FlagIsolated)
	res := s.Migrate(pg, 0)
	if !res.OK {
		t.Fatal("huge migration failed")
	}
	if s.Counters.Promotions != 512 {
		t.Fatalf("promotions = %d, want 512", s.Counters.Promotions)
	}
	if res.Cost < 512*s.Lat.PageCopy[TierPM][TierDRAM] {
		t.Fatal("huge copy cost")
	}
}
