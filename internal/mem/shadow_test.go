package mem

import "testing"

// shadowPage allocates a PM page and isolates it, the precondition for the
// shadow migration ops.
func shadowPage(t *testing.T, s *System) *Page {
	t.Helper()
	pm := s.TierNodes(TierPM)[0]
	pg := s.AllocOn(pm, false)
	if pg == nil {
		t.Fatal("PM alloc failed")
	}
	pg.SetFlags(FlagIsolated)
	return pg
}

func TestPromoteWithShadowRetainsSource(t *testing.T) {
	s := testSystem(100, 400)
	pg := shadowPage(t, s)
	srcNode, srcFrame := pg.Node, pg.Frame
	pmFree := s.TierFree(TierPM)

	res := s.PromoteWithShadow(pg, s.TierNodes(TierDRAM)[0])
	if !res.OK {
		t.Fatalf("shadow promotion failed: %+v", res)
	}
	if s.Tier(pg) != TierDRAM {
		t.Fatalf("page on %v, want DRAM", s.Tier(pg))
	}
	if !pg.HasShadow() || pg.ShadowNode != srcNode || pg.ShadowFrame != srcFrame {
		t.Fatalf("shadow not retained: node=%d frame=%d", pg.ShadowNode, pg.ShadowFrame)
	}
	if s.TierFree(TierPM) != pmFree {
		t.Fatalf("PM free moved from %d to %d — source frame was freed", pmFree, s.TierFree(TierPM))
	}
	if s.ShadowFrames() != 1 {
		t.Fatalf("ShadowFrames = %d, want 1", s.ShadowFrames())
	}
	if s.Counters.Promotions != 1 || s.Counters.ShadowPromotes != 1 {
		t.Fatalf("counters: promotions=%d shadow_promotes=%d", s.Counters.Promotions, s.Counters.ShadowPromotes)
	}
	if res.Cost != s.Lat.PageCopy[TierPM][TierDRAM] {
		t.Fatalf("copy cost %v, want %v", res.Cost, s.Lat.PageCopy[TierPM][TierDRAM])
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDemoteToShadowIsFree(t *testing.T) {
	s := testSystem(100, 400)
	pg := shadowPage(t, s)
	srcNode, srcFrame := pg.Node, pg.Frame
	if !s.PromoteWithShadow(pg, s.TierNodes(TierDRAM)[0]).OK {
		t.Fatal("promotion failed")
	}
	dramFree := s.TierFree(TierDRAM)

	res := s.DemoteToShadow(pg)
	if !res.OK {
		t.Fatalf("shadow demotion failed: %+v", res)
	}
	if res.Cost != 0 {
		t.Fatalf("free demotion charged copy cost %v", res.Cost)
	}
	if pg.Node != srcNode || pg.Frame != srcFrame {
		t.Fatalf("page at (%d,%d), want original shadow (%d,%d)", pg.Node, pg.Frame, srcNode, srcFrame)
	}
	if pg.HasShadow() || s.ShadowFrames() != 0 {
		t.Fatal("shadow state not cleared")
	}
	if s.TierFree(TierDRAM) != dramFree+1 {
		t.Fatal("DRAM frame not freed")
	}
	if s.Counters.Demotions != 1 || s.Counters.ShadowHits != 1 {
		t.Fatalf("counters: demotions=%d shadow_hits=%d", s.Counters.Demotions, s.Counters.ShadowHits)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDropShadowReleasesFrame(t *testing.T) {
	s := testSystem(100, 400)
	pg := shadowPage(t, s)
	if !s.PromoteWithShadow(pg, s.TierNodes(TierDRAM)[0]).OK {
		t.Fatal("promotion failed")
	}
	pmFree := s.TierFree(TierPM)

	s.DropShadow(pg)
	if pg.HasShadow() || s.ShadowFrames() != 0 {
		t.Fatal("shadow not dropped")
	}
	if s.TierFree(TierPM) != pmFree+1 {
		t.Fatal("shadow frame not released")
	}
	if s.Counters.ShadowDrops != 1 {
		t.Fatalf("shadow_drops = %d, want 1", s.Counters.ShadowDrops)
	}
	// Idempotent: dropping again is a no-op.
	s.DropShadow(pg)
	if s.Counters.ShadowDrops != 1 || s.TierFree(TierPM) != pmFree+1 {
		t.Fatal("second DropShadow was not a no-op")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeReleasesShadowToo(t *testing.T) {
	s := testSystem(100, 400)
	pg := shadowPage(t, s)
	if !s.PromoteWithShadow(pg, s.TierNodes(TierDRAM)[0]).OK {
		t.Fatal("promotion failed")
	}
	pg.ClearFlags(FlagIsolated)
	s.Free(pg)
	if s.ShadowFrames() != 0 {
		t.Fatal("Free leaked the shadow frame")
	}
	if s.TierFree(TierDRAM) != 100 || s.TierFree(TierPM) != 400 {
		t.Fatalf("frames not fully returned: DRAM %d/100 PM %d/400", s.TierFree(TierDRAM), s.TierFree(TierPM))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateDropsStaleShadow(t *testing.T) {
	s := testSystem(100, 400)
	pg := shadowPage(t, s)
	if !s.PromoteWithShadow(pg, s.TierNodes(TierDRAM)[0]).OK {
		t.Fatal("promotion failed")
	}
	// A regular migration (here a demotion that cannot use the shadow
	// path) ends the non-exclusive residency.
	if !s.Migrate(pg, s.TierNodes(TierPM)[0]).OK {
		t.Fatal("migration failed")
	}
	if pg.HasShadow() || s.ShadowFrames() != 0 {
		t.Fatal("regular migration kept the shadow")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPromoteWithShadowTransientFailureLeavesPageIntact(t *testing.T) {
	// A full destination node behaves like Migrate's natural failure: the
	// page stays on its source frame with no shadow state.
	s := testSystem(1, 400) // DRAM node so small its frame is gone after one alloc
	dram := s.TierNodes(TierDRAM)[0]
	if s.AllocOn(dram, true) == nil {
		t.Fatal("setup alloc failed")
	}
	pg := shadowPage(t, s)
	srcNode, srcFrame := pg.Node, pg.Frame
	res := s.PromoteWithShadow(pg, dram)
	if res.OK {
		t.Fatal("promotion into a full node succeeded")
	}
	if pg.Node != srcNode || pg.Frame != srcFrame || pg.HasShadow() {
		t.Fatal("failed promotion mutated the page")
	}
	if s.Counters.MigrateFails != 1 {
		t.Fatalf("migrate_fails = %d, want 1", s.Counters.MigrateFails)
	}
}
