package mem

import (
	"fmt"
	"strings"

	"multiclock/internal/sim"
)

// Counters are vmstat-style event counts for one System. Policies and the
// machine increment them; the benchmark harness and telemetry read them.
type Counters struct {
	// Per-tier application access counts.
	Reads  [NumTiers]int64
	Writes [NumTiers]int64

	// CacheFiltered counts accesses absorbed by the modelled CPU cache
	// hierarchy; they never reach the memory system and are excluded from
	// the per-tier counts above.
	CacheFiltered int64

	Allocs      [NumTiers]int64
	Frees       [NumTiers]int64
	MinorFaults int64
	HintFaults  int64

	// Promotions moves a page to a higher tier; Demotions the reverse.
	Promotions int64
	Demotions  int64
	// MigrateFails counts migrations abandoned for lack of a destination
	// frame or a pinned page.
	MigrateFails int64

	SwapOuts int64
	SwapIns  int64
	OOMKills int64
	// EmergencyAllocs counts allocations that succeeded only by dipping
	// into a node's emergency reserve (free frames at or below the min
	// watermark) — the §III-C pressure-relief path that injected
	// allocation storms exercise.
	EmergencyAllocs int64
	// HugeSplits counts compound pages broken into base pages (reclaim
	// splitting).
	HugeSplits int64

	// PagesScanned counts pages examined by list scanners (daemon work).
	PagesScanned int64

	// MigrationBusy is total virtual time daemons spent copying pages.
	MigrationBusy sim.Duration

	// Non-exclusive tiering (Nomad-style shadow copies): promotions that
	// retained the source frame as a shadow, free demotions served by
	// remapping onto a still-valid shadow, and shadows released (a write
	// invalidated the replica, PM pressure reclaimed it, or the page
	// died).
	ShadowPromotes int64
	ShadowHits     int64
	ShadowDrops    int64

	// AdmissionRejects counts promotions refused by a migration admission
	// gate (TierBPF-style bandwidth control).
	AdmissionRejects int64
}

// DRAMHitRatio returns the fraction of application accesses served from
// DRAM, the primary explanatory metric for tiering performance.
func (c *Counters) DRAMHitRatio() float64 {
	dram := c.Reads[TierDRAM] + c.Writes[TierDRAM]
	total := dram + c.Reads[TierPM] + c.Writes[TierPM]
	if total == 0 {
		return 0
	}
	return float64(dram) / float64(total)
}

// TotalAccesses returns the number of simulated application accesses.
func (c *Counters) TotalAccesses() int64 {
	var t int64
	for i := Tier(0); i < NumTiers; i++ {
		t += c.Reads[i] + c.Writes[i]
	}
	return t
}

// Each visits every counter as a name/value pair in a fixed order, the
// iteration the metrics exporter serializes as the vmstat section. Names are
// snake_case and stable across releases; additions append here.
func (c *Counters) Each(f func(name string, v int64)) {
	f("reads_dram", c.Reads[TierDRAM])
	f("reads_pm", c.Reads[TierPM])
	f("writes_dram", c.Writes[TierDRAM])
	f("writes_pm", c.Writes[TierPM])
	f("cache_filtered", c.CacheFiltered)
	f("allocs_dram", c.Allocs[TierDRAM])
	f("allocs_pm", c.Allocs[TierPM])
	f("frees_dram", c.Frees[TierDRAM])
	f("frees_pm", c.Frees[TierPM])
	f("minor_faults", c.MinorFaults)
	f("hint_faults", c.HintFaults)
	f("promotions", c.Promotions)
	f("demotions", c.Demotions)
	f("migrate_fails", c.MigrateFails)
	f("swap_outs", c.SwapOuts)
	f("swap_ins", c.SwapIns)
	f("oom_kills", c.OOMKills)
	f("emergency_allocs", c.EmergencyAllocs)
	f("huge_splits", c.HugeSplits)
	f("pages_scanned", c.PagesScanned)
	f("migration_busy_ns", int64(c.MigrationBusy))
	// Shadow and admission counters only exist for the competitor policies
	// that drive them; they are emitted only when nonzero so the export of
	// every run that predates (or doesn't use) those policies — including
	// the checked-in golden fixtures — stays byte-identical.
	if c.ShadowPromotes != 0 {
		f("shadow_promotes", c.ShadowPromotes)
	}
	if c.ShadowHits != 0 {
		f("shadow_hits", c.ShadowHits)
	}
	if c.ShadowDrops != 0 {
		f("shadow_drops", c.ShadowDrops)
	}
	if c.AdmissionRejects != 0 {
		f("admission_rejects", c.AdmissionRejects)
	}
}

// String renders the counters as a compact multi-line report.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accesses: DRAM r=%d w=%d, PM r=%d w=%d (DRAM hit %.1f%%)\n",
		c.Reads[TierDRAM], c.Writes[TierDRAM], c.Reads[TierPM], c.Writes[TierPM],
		100*c.DRAMHitRatio())
	fmt.Fprintf(&b, "allocs: DRAM=%d PM=%d  frees: DRAM=%d PM=%d  minor faults=%d hint faults=%d\n",
		c.Allocs[TierDRAM], c.Allocs[TierPM], c.Frees[TierDRAM], c.Frees[TierPM],
		c.MinorFaults, c.HintFaults)
	fmt.Fprintf(&b, "promotions=%d demotions=%d migrate-fails=%d swapouts=%d oom=%d scanned=%d migration-busy=%s",
		c.Promotions, c.Demotions, c.MigrateFails, c.SwapOuts, c.OOMKills, c.PagesScanned,
		c.MigrationBusy)
	if c.ShadowPromotes != 0 || c.ShadowHits != 0 || c.ShadowDrops != 0 || c.AdmissionRejects != 0 {
		fmt.Fprintf(&b, "\nshadow: promotes=%d free-demotes=%d drops=%d  admission-rejects=%d",
			c.ShadowPromotes, c.ShadowHits, c.ShadowDrops, c.AdmissionRejects)
	}
	return b.String()
}
