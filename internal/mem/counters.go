package mem

import (
	"fmt"
	"strings"

	"multiclock/internal/sim"
)

// Counters are vmstat-style event counts for one System. Policies and the
// machine increment them; the benchmark harness and telemetry read them.
// The per-tier slices are sized to the system's topology by NewSystem; a
// zero-value Counters has none and reports zero everywhere.
type Counters struct {
	// Per-tier application access counts, indexed by Tier.
	Reads  []int64
	Writes []int64

	// CacheFiltered counts accesses absorbed by the modelled CPU cache
	// hierarchy; they never reach the memory system and are excluded from
	// the per-tier counts above.
	CacheFiltered int64

	Allocs      []int64
	Frees       []int64
	MinorFaults int64
	HintFaults  int64

	// Promotions moves a page to a higher tier; Demotions the reverse.
	Promotions int64
	Demotions  int64
	// MigrateFails counts migrations abandoned for lack of a destination
	// frame or a pinned page.
	MigrateFails int64

	SwapOuts int64
	SwapIns  int64
	OOMKills int64
	// EmergencyAllocs counts allocations that succeeded only by dipping
	// into a node's emergency reserve (free frames at or below the min
	// watermark) — the §III-C pressure-relief path that injected
	// allocation storms exercise.
	EmergencyAllocs int64
	// HugeSplits counts compound pages broken into base pages (reclaim
	// splitting).
	HugeSplits int64

	// PagesScanned counts pages examined by list scanners (daemon work).
	PagesScanned int64

	// MigrationBusy is total virtual time daemons spent copying pages.
	MigrationBusy sim.Duration

	// Non-exclusive tiering (Nomad-style shadow copies): promotions that
	// retained the source frame as a shadow, free demotions served by
	// remapping onto a still-valid shadow, and shadows released (a write
	// invalidated the replica, PM pressure reclaimed it, or the page
	// died).
	ShadowPromotes int64
	ShadowHits     int64
	ShadowDrops    int64

	// AdmissionRejects counts promotions refused by a migration admission
	// gate (TierBPF-style bandwidth control).
	AdmissionRejects int64

	// names are the lower-case tier labels in tier order, driving the
	// per-tier naming of Each and String.
	names []string
}

// newCounters returns counters sized (and labeled) for the topology.
func newCounters(top Topology) Counters {
	n := len(top.Tiers)
	c := Counters{
		Reads:  make([]int64, n),
		Writes: make([]int64, n),
		Allocs: make([]int64, n),
		Frees:  make([]int64, n),
		names:  make([]string, n),
	}
	for i, ts := range top.Tiers {
		c.names[i] = ts.Name
	}
	return c
}

// Clone returns an independent copy. A plain struct copy shares the
// per-tier slices with the original; callers snapshotting a baseline (the
// time-series sampler) must use Clone.
func (c *Counters) Clone() Counters {
	out := *c
	out.Reads = append([]int64(nil), c.Reads...)
	out.Writes = append([]int64(nil), c.Writes...)
	out.Allocs = append([]int64(nil), c.Allocs...)
	out.Frees = append([]int64(nil), c.Frees...)
	return out
}

// DRAMHitRatio returns the fraction of application accesses served from
// the fastest tier (DRAM in every calibrated topology), the primary
// explanatory metric for tiering performance.
func (c *Counters) DRAMHitRatio() float64 {
	if len(c.Reads) == 0 {
		return 0
	}
	fast := c.Reads[0] + c.Writes[0]
	var total int64
	for i := range c.Reads {
		total += c.Reads[i] + c.Writes[i]
	}
	if total == 0 {
		return 0
	}
	return float64(fast) / float64(total)
}

// TotalAccesses returns the number of simulated application accesses.
func (c *Counters) TotalAccesses() int64 {
	var t int64
	for i := range c.Reads {
		t += c.Reads[i] + c.Writes[i]
	}
	return t
}

// Each visits every counter as a name/value pair in a fixed order, the
// iteration the metrics exporter serializes as the vmstat section. Names
// are snake_case and stable across releases: per-tier families carry the
// tier label ("reads_dram", "reads_pm", …) in tier order, so any given
// topology always exports the same names; additions append here.
func (c *Counters) Each(f func(name string, v int64)) {
	for i, name := range c.names {
		f("reads_"+name, c.Reads[i])
	}
	for i, name := range c.names {
		f("writes_"+name, c.Writes[i])
	}
	f("cache_filtered", c.CacheFiltered)
	for i, name := range c.names {
		f("allocs_"+name, c.Allocs[i])
	}
	for i, name := range c.names {
		f("frees_"+name, c.Frees[i])
	}
	f("minor_faults", c.MinorFaults)
	f("hint_faults", c.HintFaults)
	f("promotions", c.Promotions)
	f("demotions", c.Demotions)
	f("migrate_fails", c.MigrateFails)
	f("swap_outs", c.SwapOuts)
	f("swap_ins", c.SwapIns)
	f("oom_kills", c.OOMKills)
	f("emergency_allocs", c.EmergencyAllocs)
	f("huge_splits", c.HugeSplits)
	f("pages_scanned", c.PagesScanned)
	f("migration_busy_ns", int64(c.MigrationBusy))
	// Shadow and admission counters only exist for the competitor policies
	// that drive them; they are emitted only when nonzero so the export of
	// every run that predates (or doesn't use) those policies — including
	// the checked-in golden fixtures — stays byte-identical.
	if c.ShadowPromotes != 0 {
		f("shadow_promotes", c.ShadowPromotes)
	}
	if c.ShadowHits != 0 {
		f("shadow_hits", c.ShadowHits)
	}
	if c.ShadowDrops != 0 {
		f("shadow_drops", c.ShadowDrops)
	}
	if c.AdmissionRejects != 0 {
		f("admission_rejects", c.AdmissionRejects)
	}
}

// display renders tier i's report label ("DRAM", "PM", "CXL").
func (c *Counters) display(i int) string { return strings.ToUpper(c.names[i]) }

// String renders the counters as a compact multi-line report, one access
// and alloc/free column per tier.
func (c *Counters) String() string {
	var b strings.Builder
	b.WriteString("accesses: ")
	for i := range c.names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s r=%d w=%d", c.display(i), c.Reads[i], c.Writes[i])
	}
	if len(c.names) > 0 {
		fmt.Fprintf(&b, " (%s hit %.1f%%)", c.display(0), 100*c.DRAMHitRatio())
	}
	b.WriteString("\nallocs:")
	for i := range c.names {
		fmt.Fprintf(&b, " %s=%d", c.display(i), c.Allocs[i])
	}
	b.WriteString("  frees:")
	for i := range c.names {
		fmt.Fprintf(&b, " %s=%d", c.display(i), c.Frees[i])
	}
	fmt.Fprintf(&b, "  minor faults=%d hint faults=%d\n", c.MinorFaults, c.HintFaults)
	fmt.Fprintf(&b, "promotions=%d demotions=%d migrate-fails=%d swapouts=%d oom=%d scanned=%d migration-busy=%s",
		c.Promotions, c.Demotions, c.MigrateFails, c.SwapOuts, c.OOMKills, c.PagesScanned,
		c.MigrationBusy)
	if c.ShadowPromotes != 0 || c.ShadowHits != 0 || c.ShadowDrops != 0 || c.AdmissionRejects != 0 {
		fmt.Fprintf(&b, "\nshadow: promotes=%d free-demotes=%d drops=%d  admission-rejects=%d",
			c.ShadowPromotes, c.ShadowHits, c.ShadowDrops, c.AdmissionRejects)
	}
	return b.String()
}
