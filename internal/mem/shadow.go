package mem

// Shadow-copy migration (Nomad-style non-exclusive tiering): a promotion
// may retain the source frame as a shadow copy of the page instead of
// freeing it. While the page stays clean the shadow remains a valid replica,
// which makes the eventual demotion free — remap to the retained frame, no
// page copy. A write invalidates the replica; the owning policy is
// responsible for dropping the shadow at (or before) the write, so a page
// with HasShadow() is by protocol clean with respect to its shadow.
//
// Accounting: a shadowed page occupies two frame sets — the primary
// (Node/Frame, on the LRU and mapped) and the shadow (allocated, off-LRU,
// unmapped). System.ShadowFrames() reports the latter so machine-level
// invariant checks can reconcile used = LRU-resident + shadow.

// ShadowFrames returns the number of frames currently held by shadow
// copies across the system.
func (s *System) ShadowFrames() int { return s.shadowFrames }

// PromoteWithShadow migrates pg to node dst like Migrate, but retains the
// source frame as a shadow copy instead of freeing it. The page must be
// isolated, evictable, a base page (compound pages cannot shadow — callers
// fall back to Migrate), and must not already hold a shadow. The same
// transient fault injections as Migrate apply; a failed attempt leaves the
// page untouched on its source frame.
func (s *System) PromoteWithShadow(pg *Page, dst NodeID) MigrationResult {
	if pg.Flags.Has(FlagUnevictable) {
		s.Counters.MigrateFails++
		return MigrationResult{}
	}
	if !pg.Flags.Has(FlagIsolated) {
		panic("mem: shadow-promoting a page that is not isolated from the LRU")
	}
	if pg.OnList() {
		panic("mem: shadow-promoting a page still on a list")
	}
	if pg.IsHuge() {
		panic("mem: shadow-promoting a compound page")
	}
	if pg.HasShadow() {
		panic("mem: shadow-promoting a page that already has a shadow")
	}
	src := pg.Node
	if src == dst {
		return MigrationResult{OK: true, From: src, To: dst}
	}
	if s.Faults.MigrationPinned() || s.Faults.TargetDenied() {
		s.Counters.MigrateFails++
		return MigrationResult{From: src, To: dst}
	}
	dn := s.Nodes[dst]
	f := dn.alloc.Alloc(0)
	if f == NoFrame {
		s.Counters.MigrateFails++
		return MigrationResult{From: src, To: dst}
	}
	// The source frame is not freed: it becomes the shadow. Only the
	// destination allocation enters the conservation ledger, so
	// allocs - frees still equals frames in use (primary + shadow).
	s.Counters.Allocs[dn.Tier]++
	pg.ShadowNode = src
	pg.ShadowFrame = pg.Frame
	s.shadowFrames++
	pg.Node = dst
	pg.Frame = f

	sn := s.Nodes[src]
	cost := s.Lat.PageCopy[sn.Tier][dn.Tier]
	s.Counters.MigrationBusy += cost
	if dn.Tier < sn.Tier {
		s.Counters.Promotions++
		pg.PromotedAt = s.clock.Now()
	}
	s.Counters.ShadowPromotes++
	return MigrationResult{OK: true, From: src, To: dst, Cost: cost, Tax: s.Lat.MigrationTax}
}

// DemoteToShadow demotes a clean shadowed page for free: the page is
// remapped onto its retained shadow frame, the primary frame is freed, and
// no page copy is charged (only the caller-side remap/TLB tax). The page
// must be isolated and hold a shadow. This is the payoff of non-exclusive
// tiering: demotion of an unmodified page costs no bandwidth.
func (s *System) DemoteToShadow(pg *Page) MigrationResult {
	if !pg.Flags.Has(FlagIsolated) {
		panic("mem: shadow-demoting a page that is not isolated from the LRU")
	}
	if pg.OnList() {
		panic("mem: shadow-demoting a page still on a list")
	}
	if !pg.HasShadow() {
		panic("mem: shadow-demoting a page with no shadow")
	}
	src := pg.Node
	dst := pg.ShadowNode
	sn := s.Nodes[src]
	sn.alloc.Free(pg.Frame, 0)
	s.Counters.Frees[sn.Tier]++
	pg.Node = dst
	pg.Frame = pg.ShadowFrame
	pg.ShadowNode = NoNode
	pg.ShadowFrame = NoFrame
	s.shadowFrames--
	if s.Nodes[dst].Tier > sn.Tier {
		s.Counters.Demotions++
	}
	s.Counters.ShadowHits++
	return MigrationResult{OK: true, From: src, To: dst, Cost: 0, Tax: s.Lat.MigrationTax}
}

// DropShadow releases the page's shadow frame (a write invalidated the
// replica, lower-tier pressure reclaimed it, or the page is dying). No-op
// without a shadow, so callers need not check first.
func (s *System) DropShadow(pg *Page) {
	if !pg.HasShadow() {
		return
	}
	n := s.Nodes[pg.ShadowNode]
	n.alloc.Free(pg.ShadowFrame, 0)
	s.Counters.Frees[n.Tier]++
	pg.ShadowNode = NoNode
	pg.ShadowFrame = NoFrame
	s.shadowFrames--
	s.Counters.ShadowDrops++
}
