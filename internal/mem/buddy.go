package mem

import "fmt"

// MaxOrder is the largest buddy block: 2^9 frames = 2 MiB, the huge-page
// size on x86 — the granularity a THP extension would allocate at.
const MaxOrder = 9

// buddy is a binary-buddy frame allocator for one node, the analogue of
// the kernel's zone free lists in mm/page_alloc.c: per-order free lists,
// block splitting on allocation and buddy coalescing on free.
type buddy struct {
	frames int
	free   [MaxOrder + 1][]FrameID
	// state[f] encodes frame f's role: stateAllocated, or order+1 when f
	// heads a free block of that order, or stateTail when f is inside a
	// free block headed elsewhere.
	state    []uint8
	nfree    int
	perOrder [MaxOrder + 1]int
}

const (
	stateAllocated uint8 = 0
	stateTail      uint8 = 0xff
)

// newBuddy covers [0, frames) greedily with maximal aligned blocks.
func newBuddy(frames int) *buddy {
	b := &buddy{frames: frames, state: make([]uint8, frames)}
	for i := range b.state {
		b.state[i] = stateTail
	}
	f := 0
	for f < frames {
		o := MaxOrder
		for o > 0 && (f&(1<<o-1) != 0 || f+(1<<o) > frames) {
			o--
		}
		b.insert(FrameID(f), o)
		f += 1 << o
	}
	b.nfree = frames
	return b
}

// insert adds a free block without coalescing.
func (b *buddy) insert(f FrameID, order int) {
	b.free[order] = append(b.free[order], f)
	b.state[f] = uint8(order) + 1
	for i := int(f) + 1; i < int(f)+(1<<order); i++ {
		b.state[i] = stateTail
	}
	b.perOrder[order]++
}

// removeFrom deletes block f from the order's free list.
func (b *buddy) removeFrom(f FrameID, order int) {
	list := b.free[order]
	for i, v := range list {
		if v == f {
			list[i] = list[len(list)-1]
			b.free[order] = list[:len(list)-1]
			b.perOrder[order]--
			return
		}
	}
	panic(fmt.Sprintf("mem: buddy block %d missing from order-%d list", f, order))
}

// Alloc returns the first frame of a 2^order block, or NoFrame.
func (b *buddy) Alloc(order int) FrameID {
	if order < 0 || order > MaxOrder {
		panic("mem: buddy order out of range")
	}
	o := order
	for o <= MaxOrder && len(b.free[o]) == 0 {
		o++
	}
	if o > MaxOrder {
		return NoFrame
	}
	// Pop the lowest-addressed block for deterministic, kernel-like
	// low-memory-first behaviour.
	list := b.free[o]
	best := 0
	for i, v := range list {
		if v < list[best] {
			best = i
		}
	}
	f := list[best]
	list[best] = list[len(list)-1]
	b.free[o] = list[:len(list)-1]
	b.perOrder[o]--

	// Split down to the requested order, returning upper halves.
	for o > order {
		o--
		b.insert(f+FrameID(1<<o), o)
	}
	b.state[f] = stateAllocated
	for i := int(f) + 1; i < int(f)+(1<<order); i++ {
		b.state[i] = stateAllocated
	}
	b.nfree -= 1 << order
	return f
}

// Free returns a 2^order block and coalesces with free buddies.
func (b *buddy) Free(f FrameID, order int) {
	if order < 0 || order > MaxOrder {
		panic("mem: buddy order out of range")
	}
	if int(f)&(1<<order-1) != 0 {
		panic(fmt.Sprintf("mem: freeing misaligned order-%d block at %d", order, f))
	}
	if int(f)+(1<<order) > b.frames {
		panic("mem: freeing past end of node")
	}
	if b.state[f] != stateAllocated {
		panic(fmt.Sprintf("mem: double free of frame %d", f))
	}
	b.nfree += 1 << order
	for order < MaxOrder {
		bud := f ^ FrameID(1<<order)
		if int(bud)+(1<<order) > b.frames || b.state[bud] != uint8(order)+1 {
			break
		}
		b.removeFrom(bud, order)
		b.state[bud] = stateTail
		if bud < f {
			f = bud
		}
		order++
	}
	b.insert(f, order)
}

// FreeFrames reports free frames.
func (b *buddy) FreeFrames() int { return b.nfree }

// FreeBlocks reports free block counts per order (diagnostics and
// fragmentation tests).
func (b *buddy) FreeBlocks() [MaxOrder + 1]int { return b.perOrder }
